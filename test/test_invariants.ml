(* Whole-pipeline invariants, checked on randomly generated AADL models:
   structural properties every correct translation must satisfy, and
   temporal sanity of the explored state spaces. *)

let translate_specs ?protocol specs =
  let root = Aadl.Instantiate.of_string (Gen.periodic_system specs) in
  let options =
    {
      Translate.Pipeline.default_options with
      quantum = Some (Aadl.Time.of_ms 1);
      force_protocol = protocol;
    }
  in
  Translate.Pipeline.translate ~options root

let lts_of tr =
  Versa.Lts.build tr.Translate.Pipeline.defs tr.Translate.Pipeline.system

let gen_specs =
  QCheck2.Gen.(
    let* seed = int_range 0 10_000 in
    let* n = int_range 1 3 in
    let* u10 = int_range 3 10 in
    return (Gen.random_specs ~seed ~n ~u:(float_of_int u10 /. 10.0)))

(* The translated system term is closed and every definition instantiates. *)
let prop_translation_well_formed =
  QCheck2.Test.make ~name:"translated system is closed and instantiable"
    ~count:40 gen_specs (fun specs ->
      let tr = translate_specs specs in
      Acsr.Proc.is_ground tr.Translate.Pipeline.system
      && Acsr.Defs.fold
           (fun d acc ->
             acc
             && Acsr.Proc.is_ground
                  (Acsr.Defs.instantiate tr.Translate.Pipeline.defs
                     d.Acsr.Defs.name
                     (List.map (fun _ -> 0) d.Acsr.Defs.formals)))
           tr.Translate.Pipeline.defs true)

(* Deterministic workloads (cmin = cmax) under a fixed-priority policy with
   distinct priorities have a deterministic prioritized schedule: at most
   one timed successor per state. *)
let prop_deterministic_schedule =
  QCheck2.Test.make ~name:"RM schedule is deterministic per state" ~count:30
    gen_specs (fun specs ->
      let tr = translate_specs ~protocol:Aadl.Props.Rate_monotonic specs in
      let lts = lts_of tr in
      let ok = ref true in
      for s = 0 to Versa.Lts.num_states lts - 1 do
        let timed =
          Array.to_list (Versa.Lts.successors lts s)
          |> List.filter (fun (step, _) -> Acsr.Step.is_timed step)
        in
        if List.length timed > 1 then ok := false
      done;
      !ok)

(* No zeno confinement: from every expanded state, a timed step or a
   deadlock is reachable through instantaneous steps only — the system can
   never be trapped in an infinite instantaneous loop with no exit. *)
let no_zeno_confinement lts =
  let n = Versa.Lts.num_states lts in
  let ok = ref true in
  for s = 0 to n - 1 do
    if not (Versa.Lts.is_deadlock lts s) then begin
      (* BFS through instantaneous edges looking for a timed edge *)
      let visited = Hashtbl.create 8 in
      let rec search frontier =
        match frontier with
        | [] -> false
        | x :: rest ->
            if Hashtbl.mem visited x then search rest
            else begin
              Hashtbl.add visited x ();
              let succs = Versa.Lts.successors lts x in
              if
                Array.exists (fun (step, _) -> Acsr.Step.is_timed step) succs
                || Versa.Lts.is_deadlock lts x
              then true
              else
                search
                  (rest
                  @ (Array.to_list succs |> List.map snd))
            end
      in
      if not (search [ s ]) then ok := false
    end
  done;
  !ok

let prop_no_zeno_confinement =
  QCheck2.Test.make ~name:"timed progress reachable from every state"
    ~count:30 gen_specs (fun specs ->
      no_zeno_confinement (lts_of (translate_specs specs)))

(* The same invariants hold for the richer fixture models. *)
let test_fixtures_invariants () =
  List.iter
    (fun (name, text) ->
      let root = Aadl.Instantiate.of_string text in
      let tr = Translate.Pipeline.translate root in
      Alcotest.(check bool) (name ^ " closed") true
        (Acsr.Proc.is_ground tr.Translate.Pipeline.system);
      let lts = lts_of tr in
      Alcotest.(check bool)
        (name ^ " no zeno confinement")
        true (no_zeno_confinement lts))
    [
      ("cruise control", Gen.cruise_control ());
      ("event driven", Gen.event_driven ());
      ("modal", Gen.modal_system ());
      ("hierarchical", Gen.hierarchical_system ());
      ("shared data", Gen.shared_data_system ());
      ("avionics", Gen.avionics ());
    ]

(* Verdicts are stable under re-analysis (no hidden global state). *)
let prop_analysis_idempotent =
  QCheck2.Test.make ~name:"analysis is reproducible" ~count:20 gen_specs
    (fun specs ->
      let run () =
        let root = Aadl.Instantiate.of_string (Gen.periodic_system specs) in
        let r = Analysis.Schedulability.analyze root in
        ( Analysis.Schedulability.is_schedulable r,
          Versa.Explorer.num_states r.Analysis.Schedulability.exploration )
      in
      run () = run ())

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_translation_well_formed;
      prop_deterministic_schedule;
      prop_no_zeno_confinement;
      prop_analysis_idempotent;
    ]

let () =
  Alcotest.run "invariants"
    [
      ( "fixtures",
        [ Alcotest.test_case "all fixture models" `Quick test_fixtures_invariants ] );
      ("random models", qcheck_cases);
    ]
