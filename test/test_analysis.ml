(* Tests for the analysis layer: schedulability verdicts via state
   exploration, agreement with the classical baselines (RTA, EDF demand
   analysis, utilization bounds, deterministic simulation), failing-
   scenario raising, latency observers, and queue overflow handling. *)

module Str_replace = struct
  let replace pat repl s =
    let plen = String.length pat in
    let buf = Buffer.create (String.length s) in
    let i = ref 0 in
    while !i <= String.length s - plen do
      if String.sub s !i plen = pat then begin
        Buffer.add_string buf repl;
        i := !i + plen
      end
      else begin
        Buffer.add_char buf s.[!i];
        incr i
      end
    done;
    Buffer.add_string buf (String.sub s !i (String.length s - !i));
    Buffer.contents buf
end

let analyze ?protocol ?(quantum = Aadl.Time.of_ms 1) text =
  let root = Aadl.Instantiate.of_string text in
  let options =
    {
      Analysis.Schedulability.default_options with
      translation_options =
        {
          Translate.Pipeline.default_options with
          force_protocol = protocol;
          quantum = Some quantum;
        };
    }
  in
  Analysis.Schedulability.analyze ~options root

let tasks_of ?(quantum = Aadl.Time.of_ms 1) text =
  (Translate.Workload.extract ~quantum (Aadl.Instantiate.of_string text))
    .Translate.Workload.tasks

(* {1 Verdicts on the reference task sets} *)

let test_light_schedulable_everywhere () =
  List.iter
    (fun protocol ->
      let r = analyze ~protocol (Gen.periodic_system Gen.light_set) in
      Alcotest.(check bool)
        (Aadl.Props.scheduling_protocol_to_string protocol)
        true
        (Analysis.Schedulability.is_schedulable r))
    [
      Aadl.Props.Rate_monotonic;
      Aadl.Props.Deadline_monotonic;
      Aadl.Props.Edf;
      Aadl.Props.Llf;
    ]

let test_crossover_rm_fails_edf_passes () =
  let rm = analyze ~protocol:Aadl.Props.Rate_monotonic (Gen.periodic_system Gen.crossover_set) in
  let edf = analyze ~protocol:Aadl.Props.Edf (Gen.periodic_system Gen.crossover_set) in
  let llf = analyze ~protocol:Aadl.Props.Llf (Gen.periodic_system Gen.crossover_set) in
  Alcotest.(check bool) "RM misses" false
    (Analysis.Schedulability.is_schedulable rm);
  Alcotest.(check bool) "EDF meets" true
    (Analysis.Schedulability.is_schedulable edf);
  Alcotest.(check bool) "LLF meets" true
    (Analysis.Schedulability.is_schedulable llf)

let test_overloaded_fails_everywhere () =
  List.iter
    (fun protocol ->
      let r = analyze ~protocol (Gen.periodic_system Gen.overloaded_set) in
      Alcotest.(check bool)
        (Aadl.Props.scheduling_protocol_to_string protocol)
        false
        (Analysis.Schedulability.is_schedulable r))
    [ Aadl.Props.Rate_monotonic; Aadl.Props.Edf ]

(* {1 Failing scenarios} *)

let test_scenario_contents () =
  let r = analyze ~protocol:Aadl.Props.Rate_monotonic (Gen.periodic_system Gen.crossover_set) in
  match r.Analysis.Schedulability.verdict with
  | Analysis.Schedulability.Not_schedulable { scenario; _ } ->
      (* the violation is t2's first deadline at t=7 *)
      Alcotest.(check int) "violation at t=7" 7
        scenario.Analysis.Raise_trace.violation_time;
      let all_happenings =
        List.concat_map
          (fun q -> q.Analysis.Raise_trace.happenings)
          scenario.Analysis.Raise_trace.quanta
      in
      Alcotest.(check bool) "dispatches of both threads reported" true
        (List.exists
           (function
             | Analysis.Raise_trace.Dispatched [ "t1_i" ] -> true
             | _ -> false)
           all_happenings
        && List.exists
             (function
               | Analysis.Raise_trace.Dispatched [ "t2_i" ] -> true
               | _ -> false)
             all_happenings);
      Alcotest.(check bool) "t1 completions reported" true
        (List.exists
           (function
             | Analysis.Raise_trace.Completed [ "t1_i" ] -> true
             | _ -> false)
           all_happenings);
      Alcotest.(check bool) "t2 never completes" true
        (not
           (List.exists
              (function
                | Analysis.Raise_trace.Completed [ "t2_i" ] -> true
                | _ -> false)
              all_happenings))
  | _ -> Alcotest.fail "expected a failing scenario"

let test_all_scenarios_exhaustive () =
  let text = Gen.periodic_system Gen.overloaded_set in
  let root = Aadl.Instantiate.of_string text in
  let options =
    { Analysis.Schedulability.default_options with all_violations = true }
  in
  let r = Analysis.Schedulability.analyze ~options root in
  Alcotest.(check bool) "several violation states found" true
    (List.length (Analysis.Schedulability.all_scenarios r) >= 1)

(* {1 Baseline: RTA} *)

let test_rta_crossover () =
  let tasks = tasks_of (Gen.periodic_system Gen.crossover_set) in
  let r = Analysis.Rta.analyze ~protocol:Aadl.Props.Rate_monotonic tasks in
  Alcotest.(check bool) "applicable" true r.Analysis.Rta.applicable;
  Alcotest.(check bool) "not schedulable" false r.Analysis.Rta.schedulable;
  (* t1's response is its own cet; t2's recurrence diverges past 7 *)
  let t1 =
    List.find
      (fun (tr : Analysis.Rta.task_result) ->
        tr.Analysis.Rta.task.Translate.Workload.path = [ "t1_i" ])
      r.Analysis.Rta.per_task
  in
  Alcotest.(check (option int)) "t1 response 2" (Some 2) t1.Analysis.Rta.response

let test_rta_exact_response_times () =
  (* classic example: T1(1,4), T2(2,6): R1=1, R2=3 *)
  let text =
    Gen.periodic_system
      [
        Gen.simple_spec ~name:"t1" ~period_ms:4 ~cet_ms:1 ();
        Gen.simple_spec ~name:"t2" ~period_ms:6 ~cet_ms:2 ();
      ]
  in
  let r =
    Analysis.Rta.analyze ~protocol:Aadl.Props.Rate_monotonic (tasks_of text)
  in
  let resp name =
    (List.find
       (fun (tr : Analysis.Rta.task_result) ->
         tr.Analysis.Rta.task.Translate.Workload.path = [ name ])
       r.Analysis.Rta.per_task)
      .Analysis.Rta.response
  in
  Alcotest.(check (option int)) "R1" (Some 1) (resp "t1_i");
  Alcotest.(check (option int)) "R2" (Some 3) (resp "t2_i")

let test_rta_not_applicable_to_edf () =
  let tasks = tasks_of (Gen.periodic_system Gen.light_set) in
  let r = Analysis.Rta.analyze ~protocol:Aadl.Props.Edf tasks in
  Alcotest.(check bool) "not applicable" false r.Analysis.Rta.applicable

(* {1 Baseline: EDF demand} *)

let test_edf_demand_crossover () =
  let r = Analysis.Edf_demand.analyze (tasks_of (Gen.periodic_system Gen.crossover_set)) in
  Alcotest.(check bool) "schedulable under EDF" true
    r.Analysis.Edf_demand.schedulable

let test_edf_demand_overloaded () =
  let r = Analysis.Edf_demand.analyze (tasks_of (Gen.periodic_system Gen.overloaded_set)) in
  Alcotest.(check bool) "not schedulable" false r.Analysis.Edf_demand.schedulable

(* {1 Baseline: utilization bounds} *)

let test_utilization_verdicts () =
  let u_light = Analysis.Utilization.rate_monotonic (tasks_of (Gen.periodic_system Gen.light_set)) in
  Alcotest.(check bool) "light under LL bound" true
    (u_light.Analysis.Utilization.verdict = Analysis.Utilization.Schedulable);
  let u_cross = Analysis.Utilization.rate_monotonic (tasks_of (Gen.periodic_system Gen.crossover_set)) in
  Alcotest.(check bool) "crossover above bound but below 1" true
    (u_cross.Analysis.Utilization.verdict = Analysis.Utilization.Unknown);
  let u_over = Analysis.Utilization.edf (tasks_of (Gen.periodic_system Gen.overloaded_set)) in
  Alcotest.(check bool) "overloaded beyond 1" true
    (u_over.Analysis.Utilization.verdict = Analysis.Utilization.Overloaded)

let test_ll_bound_values () =
  Alcotest.(check (float 1e-6)) "n=1" 1.0 (Analysis.Utilization.ll_bound 1);
  Alcotest.(check (float 1e-4)) "n=2" 0.8284 (Analysis.Utilization.ll_bound 2)

(* {1 Baseline: simulator} *)

let test_simulator_misses_match_rm () =
  let tasks = tasks_of (Gen.periodic_system Gen.crossover_set) in
  let sim =
    Analysis.Simulator.simulate ~protocol:Aadl.Props.Rate_monotonic tasks
  in
  Alcotest.(check bool) "RM misses in simulation too" false
    sim.Analysis.Simulator.schedulable;
  let sim_edf = Analysis.Simulator.simulate ~protocol:Aadl.Props.Edf tasks in
  Alcotest.(check bool) "EDF simulation meets" true
    sim_edf.Analysis.Simulator.schedulable

let test_simulator_response_times () =
  let text =
    Gen.periodic_system
      [
        Gen.simple_spec ~name:"t1" ~period_ms:4 ~cet_ms:1 ();
        Gen.simple_spec ~name:"t2" ~period_ms:6 ~cet_ms:2 ();
      ]
  in
  let sim =
    Analysis.Simulator.simulate ~protocol:Aadl.Props.Rate_monotonic
      (tasks_of text)
  in
  Alcotest.(check (option int)) "worst response of t2" (Some 3)
    (Analysis.Simulator.worst_response sim [ "t2_i" ])

let test_simulator_timeline_busy () =
  let sim =
    Analysis.Simulator.simulate ~protocol:Aadl.Props.Edf
      (tasks_of (Gen.periodic_system Gen.crossover_set))
  in
  let busy =
    Array.fold_left
      (fun n slot ->
        match slot with Analysis.Simulator.Running _ -> n + 1 | _ -> n)
      0 sim.Analysis.Simulator.timeline
  in
  (* demand over the hyperperiod 35: 7*2 + 5*4 = 34 *)
  Alcotest.(check int) "busy quanta = total demand" 34 busy

(* {1 Observed response times (exploration vs RTA)} *)

(* pin the quantum so observed quanta and RTA quanta agree *)
let response_options =
  {
    Analysis.Response.default_options with
    Analysis.Latency.translation_options =
      {
        Translate.Pipeline.default_options with
        quantum = Some (Aadl.Time.of_ms 1);
      };
  }

let test_observed_equals_rta () =
  let text =
    Gen.periodic_system
      [
        Gen.simple_spec ~name:"t1" ~period_ms:4 ~cet_ms:1 ();
        Gen.simple_spec ~name:"t2" ~period_ms:6 ~cet_ms:2 ();
      ]
  in
  let root = Aadl.Instantiate.of_string text in
  let rta =
    Analysis.Rta.analyze ~protocol:Aadl.Props.Rate_monotonic (tasks_of text)
  in
  List.iter
    (fun (tr : Analysis.Rta.task_result) ->
      let obs =
        Analysis.Response.worst_response ~options:response_options
          ~thread:tr.Analysis.Rta.task.Translate.Workload.path root
      in
      Alcotest.(check (option int))
        (Fmt.str "observed = RTA for %a" Aadl.Instance.pp_path
           tr.Analysis.Rta.task.Translate.Workload.path)
        tr.Analysis.Rta.response obs.Analysis.Response.response)
    rta.Analysis.Rta.per_task

let test_observed_none_when_missing () =
  let root =
    Aadl.Instantiate.of_string (Gen.periodic_system Gen.crossover_set)
  in
  let obs =
    Analysis.Response.worst_response ~options:response_options
      ~thread:[ "t2_i" ] root
  in
  Alcotest.(check (option int)) "t2 misses under RM" None
    obs.Analysis.Response.response

let prop_observed_equals_rta =
  QCheck2.Test.make ~name:"observed response = RTA response (RM)" ~count:6
    QCheck2.Gen.(int_range 0 1000)
    (fun seed ->
      let specs = Gen.random_specs ~seed ~n:2 ~u:0.7 in
      let text = Gen.periodic_system specs in
      let root = Aadl.Instantiate.of_string text in
      let rta =
        Analysis.Rta.analyze ~protocol:Aadl.Props.Rate_monotonic
          (tasks_of text)
      in
      (not rta.Analysis.Rta.applicable)
      || List.for_all
           (fun (tr : Analysis.Rta.task_result) ->
             let obs =
               Analysis.Response.worst_response ~options:response_options
                 ~thread:tr.Analysis.Rta.task.Translate.Workload.path root
             in
             obs.Analysis.Response.response = tr.Analysis.Rta.response)
           rta.Analysis.Rta.per_task)

(* {1 Sensitivity analysis (breakdown execution time)} *)

let test_breakdown_matches_rta_slack () =
  (* T1(1,4), T2(2,6) under RM: t2's breakdown is the largest C2 with
     response <= 6: C2=3 gives R2=3+ceil/..=... check against RTA *)
  let text =
    Gen.periodic_system
      [
        Gen.simple_spec ~name:"t1" ~period_ms:4 ~cet_ms:1 ();
        Gen.simple_spec ~name:"t2" ~period_ms:6 ~cet_ms:2 ();
      ]
  in
  let root = Aadl.Instantiate.of_string text in
  let b = Analysis.Sensitivity.breakdown ~thread:[ "t2_i" ] root in
  Alcotest.(check int) "original" 2 b.Analysis.Sensitivity.original_cmax;
  (* exact check via RTA: find the largest C2 with RTA schedulable *)
  let rta_ok c2 =
    let tasks =
      tasks_of
        (Gen.periodic_system
           [
             Gen.simple_spec ~name:"t1" ~period_ms:4 ~cet_ms:1 ();
             Gen.simple_spec ~name:"t2" ~period_ms:6 ~cet_ms:c2 ();
           ])
    in
    (Analysis.Rta.analyze ~protocol:Aadl.Props.Rate_monotonic tasks)
      .Analysis.Rta.schedulable
  in
  let rec largest c = if c < 1 then 0 else if rta_ok c then c else largest (c - 1) in
  Alcotest.(check (option int)) "breakdown = RTA breakdown"
    (Some (largest 6)) b.Analysis.Sensitivity.breakdown_cmax

let test_breakdown_recovers_overload () =
  (* the overloaded set becomes feasible once t2 shrinks to 2 quanta *)
  let root =
    Aadl.Instantiate.of_string (Gen.periodic_system Gen.overloaded_set)
  in
  let b = Analysis.Sensitivity.breakdown ~thread:[ "t2_i" ] root in
  Alcotest.(check (option int)) "breakdown at full utilization" (Some 2)
    b.Analysis.Sensitivity.breakdown_cmax;
  Alcotest.(check (option int)) "negative slack" (Some (-1))
    b.Analysis.Sensitivity.slack

let test_breakdown_none_when_infeasible () =
  (* t1 saturates the processor alone: no cet of t2 can fit *)
  let text =
    Gen.periodic_system
      [
        Gen.simple_spec ~name:"t1" ~period_ms:4 ~cet_ms:4 ();
        Gen.simple_spec ~name:"t2" ~period_ms:4 ~cet_ms:1 ();
      ]
  in
  let root = Aadl.Instantiate.of_string text in
  let b = Analysis.Sensitivity.breakdown ~thread:[ "t2_i" ] root in
  Alcotest.(check (option int)) "no feasible cet" None
    b.Analysis.Sensitivity.breakdown_cmax

let test_with_cet_override () =
  let root =
    Aadl.Instantiate.of_string (Gen.periodic_system Gen.light_set)
  in
  let quantum = Aadl.Time.of_ms 1 in
  let root' =
    Analysis.Sensitivity.with_cet ~quantum ~thread:[ "t1_i" ] ~cet:3 root
  in
  let wl = Translate.Workload.extract ~quantum root' in
  let t1 = Option.get (Translate.Workload.find_task wl [ "t1_i" ]) in
  Alcotest.(check int) "cet overridden" 3 t1.Translate.Workload.cmax;
  let t2 = Option.get (Translate.Workload.find_task wl [ "t2_i" ]) in
  Alcotest.(check int) "other threads untouched" 2 t2.Translate.Workload.cmax

(* {1 Latency observers} *)

let test_latency_met_and_violated () =
  let root = Aadl.Instantiate.of_string (Gen.periodic_system Gen.light_set) in
  let ok =
    Analysis.Latency.check ~from_thread:[ "t2_i" ] ~to_thread:[ "t2_i" ]
      ~bound:(Aadl.Time.of_ms 6) root
  in
  Alcotest.(check bool) "t2 completes within its period" true
    (ok.Analysis.Latency.verdict = Analysis.Latency.Latency_met);
  let tight =
    Analysis.Latency.check ~from_thread:[ "t2_i" ] ~to_thread:[ "t2_i" ]
      ~bound:(Aadl.Time.of_ms 2) root
  in
  match tight.Analysis.Latency.verdict with
  | Analysis.Latency.Latency_violated { scenario; _ } ->
      Alcotest.(check bool) "scenario nonempty" true
        (scenario.Analysis.Raise_trace.quanta <> [])
  | _ -> Alcotest.fail "expected a latency violation for a 2ms bound"

let test_latency_unknown_thread () =
  let root = Aadl.Instantiate.of_string (Gen.periodic_system Gen.light_set) in
  Alcotest.(check bool) "raises" true
    (try
       ignore
         (Analysis.Latency.check ~from_thread:[ "nope" ] ~to_thread:[ "t1_i" ]
            ~bound:(Aadl.Time.of_ms 4) root);
       false
     with Analysis.Latency.Error _ -> true)

(* {1 Event-driven models and queues} *)

let test_event_driven_schedulable () =
  let r = analyze (Gen.event_driven ()) in
  Alcotest.(check bool) "schedulable" true
    (Analysis.Schedulability.is_schedulable r)

let test_queue_overflow_error_detected () =
  (* a queue of size 1 with Error overflow: the producer (8 ms) outpaces a
     handler with 16 ms minimum separation, so the queue must overflow *)
  let text =
    Gen.event_driven ~queue_size:1 ~overflow:"Error" ()
    |> Str_replace.replace "Period => 4 ms;" "Period => 16 ms;"
  in
  let r = analyze text in
  Alcotest.(check bool) "overflow error is a violation" false
    (Analysis.Schedulability.is_schedulable r)

let test_queue_overflow_drop_absorbs () =
  (* the same overloading producer, but dropping policies: the overflow
     is absorbed (events are lost, no deadline is missed), so the very
     model that Error rejects stays schedulable under both drop
     policies *)
  List.iter
    (fun overflow ->
      let text =
        Gen.event_driven ~queue_size:1 ~overflow ()
        |> Str_replace.replace "Period => 4 ms;" "Period => 16 ms;"
      in
      let r = analyze text in
      Alcotest.(check bool)
        (overflow ^ " absorbs the overflow")
        true
        (Analysis.Schedulability.is_schedulable r))
    [ "DropNewest"; "DropOldest" ]

let test_queue_overflow_drop_policies_coincide () =
  (* the queue process abstracts contents to a fill counter, so dropping
     the newest or the oldest event must generate the same state space *)
  let explore overflow =
    let text =
      Gen.event_driven ~queue_size:1 ~overflow ()
      |> Str_replace.replace "Period => 4 ms;" "Period => 16 ms;"
    in
    let r = analyze text in
    ( Versa.Explorer.num_states r.Analysis.Schedulability.exploration,
      Versa.Explorer.num_transitions r.Analysis.Schedulability.exploration )
  in
  let newest = explore "DropNewest" and oldest = explore "DropOldest" in
  Alcotest.(check (pair int int)) "identical state spaces" newest oldest

(* {1 Shared data across processors (access connections)} *)

let test_shared_data_contention_detected () =
  (* data demand 2+3 of every 4 quanta: unschedulable, although each
     processor in isolation is fine — per-processor RTA cannot see it *)
  let r = analyze (Gen.shared_data_system ()) in
  Alcotest.(check bool) "exploration rejects" false
    (Analysis.Schedulability.is_schedulable r);
  let wl = r.Analysis.Schedulability.translation.Translate.Pipeline.workload in
  List.iter
    (fun (_, tasks) ->
      let rta = Analysis.Rta.analyze ~protocol:Aadl.Props.Rate_monotonic tasks in
      Alcotest.(check bool) "per-processor RTA is fooled" true
        rta.Analysis.Rta.schedulable)
    wl.Translate.Workload.by_processor

let test_shared_data_feasible_when_light () =
  let r = analyze (Gen.shared_data_system ~t2_cet_ms:1 ()) in
  Alcotest.(check bool) "schedulable" true
    (Analysis.Schedulability.is_schedulable r)

let test_shared_data_in_scenario () =
  let r = analyze (Gen.shared_data_system ()) in
  match r.Analysis.Schedulability.verdict with
  | Analysis.Schedulability.Not_schedulable { scenario; _ } ->
      let uses_data =
        List.exists
          (fun q ->
            match q.Analysis.Raise_trace.usage with
            | Some u -> u.Analysis.Raise_trace.data <> []
            | None -> false)
          scenario.Analysis.Raise_trace.quanta
      in
      Alcotest.(check bool) "scenario shows shared-data usage" true uses_data
  | _ -> Alcotest.fail "expected a violation"

let test_shared_data_workload_extraction () =
  let root = Aadl.Instantiate.of_string (Gen.shared_data_system ()) in
  let wl = Translate.Workload.extract ~quantum:(Aadl.Time.of_ms 1) root in
  let w = Option.get (Translate.Workload.find_task wl [ "w" ]) in
  Alcotest.(check (list (list string))) "writer shares sd" [ [ "sd" ] ]
    w.Translate.Workload.data_shared;
  let sd = Aadl.Instance.find_exn root [ "sd" ] in
  Alcotest.(check bool) "ceiling protocol parsed" true
    (Aadl.Props.concurrency_control sd.Aadl.Instance.props
    = Aadl.Props.Priority_ceiling)

(* {1 Agreement properties (qcheck)} *)

let gen_taskset =
  QCheck2.Gen.(
    let* seed = int_range 0 10_000 in
    let* n = int_range 2 3 in
    let* u10 = int_range 5 11 in
    return (Gen.random_specs ~seed ~n ~u:(float_of_int u10 /. 10.0)))

let acsr_verdict protocol specs =
  let r = analyze ~protocol (Gen.periodic_system specs) in
  match r.Analysis.Schedulability.verdict with
  | Analysis.Schedulability.Schedulable -> true
  | Analysis.Schedulability.Not_schedulable _ -> false
  | Analysis.Schedulability.Inconclusive _ -> false

let prop_acsr_agrees_with_rta =
  QCheck2.Test.make ~name:"ACSR verdict = RTA verdict (RM)" ~count:25
    gen_taskset (fun specs ->
      let tasks = tasks_of (Gen.periodic_system specs) in
      let rta = Analysis.Rta.analyze ~protocol:Aadl.Props.Rate_monotonic tasks in
      (not rta.Analysis.Rta.applicable)
      || acsr_verdict Aadl.Props.Rate_monotonic specs
         = rta.Analysis.Rta.schedulable)

let prop_acsr_agrees_with_edf_demand =
  QCheck2.Test.make ~name:"ACSR verdict = demand analysis (EDF)" ~count:25
    gen_taskset (fun specs ->
      let tasks = tasks_of (Gen.periodic_system specs) in
      let dem = Analysis.Edf_demand.analyze tasks in
      (not dem.Analysis.Edf_demand.applicable)
      || acsr_verdict Aadl.Props.Edf specs = dem.Analysis.Edf_demand.schedulable)

let prop_acsr_agrees_with_simulator =
  QCheck2.Test.make ~name:"ACSR verdict = simulation (RM, deterministic)"
    ~count:25 gen_taskset (fun specs ->
      let tasks = tasks_of (Gen.periodic_system specs) in
      let sim =
        Analysis.Simulator.simulate ~protocol:Aadl.Props.Rate_monotonic tasks
      in
      acsr_verdict Aadl.Props.Rate_monotonic specs
      = sim.Analysis.Simulator.schedulable)

let prop_ll_bound_implies_acsr_schedulable =
  QCheck2.Test.make ~name:"LL bound implies exploration verdict" ~count:25
    gen_taskset (fun specs ->
      let tasks = tasks_of (Gen.periodic_system specs) in
      let u = Analysis.Utilization.rate_monotonic tasks in
      u.Analysis.Utilization.verdict <> Analysis.Utilization.Schedulable
      || acsr_verdict Aadl.Props.Rate_monotonic specs)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_observed_equals_rta;
      prop_acsr_agrees_with_rta;
      prop_acsr_agrees_with_edf_demand;
      prop_acsr_agrees_with_simulator;
      prop_ll_bound_implies_acsr_schedulable;
    ]

let () =
  Alcotest.run "analysis"
    [
      ( "verdicts",
        [
          Alcotest.test_case "light schedulable" `Quick
            test_light_schedulable_everywhere;
          Alcotest.test_case "crossover rm/edf" `Quick
            test_crossover_rm_fails_edf_passes;
          Alcotest.test_case "overloaded fails" `Quick
            test_overloaded_fails_everywhere;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "contents" `Quick test_scenario_contents;
          Alcotest.test_case "all scenarios" `Quick
            test_all_scenarios_exhaustive;
        ] );
      ( "rta",
        [
          Alcotest.test_case "crossover" `Quick test_rta_crossover;
          Alcotest.test_case "exact responses" `Quick
            test_rta_exact_response_times;
          Alcotest.test_case "edf not applicable" `Quick
            test_rta_not_applicable_to_edf;
        ] );
      ( "edf demand",
        [
          Alcotest.test_case "crossover" `Quick test_edf_demand_crossover;
          Alcotest.test_case "overloaded" `Quick test_edf_demand_overloaded;
        ] );
      ( "utilization",
        [
          Alcotest.test_case "verdicts" `Quick test_utilization_verdicts;
          Alcotest.test_case "ll bound" `Quick test_ll_bound_values;
        ] );
      ( "simulator",
        [
          Alcotest.test_case "misses match" `Quick
            test_simulator_misses_match_rm;
          Alcotest.test_case "response times" `Quick
            test_simulator_response_times;
          Alcotest.test_case "timeline busy" `Quick
            test_simulator_timeline_busy;
        ] );
      ( "response",
        [
          Alcotest.test_case "observed equals rta" `Quick
            test_observed_equals_rta;
          Alcotest.test_case "none when missing" `Quick
            test_observed_none_when_missing;
        ] );
      ( "sensitivity",
        [
          Alcotest.test_case "breakdown matches rta" `Quick
            test_breakdown_matches_rta_slack;
          Alcotest.test_case "recovers overload" `Quick
            test_breakdown_recovers_overload;
          Alcotest.test_case "none when infeasible" `Quick
            test_breakdown_none_when_infeasible;
          Alcotest.test_case "with_cet override" `Quick test_with_cet_override;
        ] );
      ( "latency",
        [
          Alcotest.test_case "met and violated" `Quick
            test_latency_met_and_violated;
          Alcotest.test_case "unknown thread" `Quick
            test_latency_unknown_thread;
        ] );
      ( "shared data",
        [
          Alcotest.test_case "cross-processor contention" `Quick
            test_shared_data_contention_detected;
          Alcotest.test_case "feasible when light" `Quick
            test_shared_data_feasible_when_light;
          Alcotest.test_case "scenario shows data" `Quick
            test_shared_data_in_scenario;
          Alcotest.test_case "workload extraction" `Quick
            test_shared_data_workload_extraction;
        ] );
      ( "queues",
        [
          Alcotest.test_case "event driven ok" `Quick
            test_event_driven_schedulable;
          Alcotest.test_case "overflow error" `Quick
            test_queue_overflow_error_detected;
          Alcotest.test_case "overflow drop absorbs" `Quick
            test_queue_overflow_drop_absorbs;
          Alcotest.test_case "drop policies coincide" `Quick
            test_queue_overflow_drop_policies_coincide;
        ] );
      ("agreement", qcheck_cases);
    ]
