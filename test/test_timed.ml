(* Tests for the simulated-time harness: the virtual clock and
   discrete-event scheduler (ordering, tie-breaking, sleep/await,
   auto-advance), traces carrying virtual timestamps, virtual-budget
   degradation in the service layer (second-scale deadlines in
   wall-clock milliseconds), real-vs-simulated verdict agreement on
   every example model, and the fault-injectable RPC fabric (drops,
   duplication, reordering, seeded replay determinism, single-flight
   deduplication across retries). *)

let light = Gen.periodic_system Gen.light_set
let overloaded = Gen.periodic_system Gen.overloaded_set

(* Real elapsed seconds around [f], measured on the real clock
   explicitly — the ambient clock is usually a simulator here. *)
let real_elapsed f =
  let t0 = Timed.Clock.now Timed.Clock.real in
  let r = f () in
  (r, Timed.Clock.now Timed.Clock.real -. t0)

(* {1 Clock and scheduler} *)

let test_clock_real_and_ambient () =
  Alcotest.(check bool)
    "real is not virtual" false
    (Timed.Clock.is_virtual Timed.Clock.real);
  Alcotest.(check bool)
    "ambient defaults to real" false
    (Timed.Clock.is_virtual (Timed.Clock.current ()));
  let sim = Timed.Sim.create ~start:41.5 () in
  Timed.Sim.with_clock sim (fun () ->
      Alcotest.(check bool)
        "installed clock is virtual" true
        (Timed.Clock.is_virtual (Timed.Clock.current ()));
      Alcotest.(check (float 1e-9))
        "gettimeofday reads virtual time" 41.5
        (Timed.Clock.gettimeofday ()));
  Alcotest.(check bool)
    "previous clock restored" false
    (Timed.Clock.is_virtual (Timed.Clock.current ()))

let test_auto_advance () =
  let sim = Timed.Sim.create ~auto_advance:0.01 () in
  let c = Timed.Sim.clock sim in
  let t1 = Timed.Clock.now c in
  let t2 = Timed.Clock.now c in
  Alcotest.(check (float 1e-9)) "each observation costs 10ms" 0.01 (t2 -. t1);
  Alcotest.(check (float 1e-9))
    "Sim.now does not auto-advance" (Timed.Sim.now sim) (Timed.Sim.now sim);
  Timed.Sim.set_auto_advance sim 0.;
  let t3 = Timed.Clock.now c in
  let t4 = Timed.Clock.now c in
  Alcotest.(check (float 1e-9)) "advance disabled" 0. (t4 -. t3)

let test_sim_event_order_and_ties () =
  let sim = Timed.Sim.create () in
  let trace = ref [] in
  let mark tag () = trace := (tag, Timed.Sim.now sim) :: !trace in
  (* scheduled out of timestamp order; same-time events keep schedule
     order (sequence-number tie-breaking) *)
  Timed.Sim.schedule sim ~at:2.0 (mark "c");
  Timed.Sim.schedule sim ~at:1.0 (mark "a");
  Timed.Sim.schedule sim ~at:2.0 (mark "d");
  Timed.Sim.schedule sim ~at:1.5 (mark "b");
  Alcotest.(check int) "four pending" 4 (Timed.Sim.pending sim);
  Timed.Sim.run_until_quiescent sim;
  Alcotest.(check (list (pair string (float 1e-9))))
    "events in (time, seq) order"
    [ ("a", 1.0); ("b", 1.5); ("c", 2.0); ("d", 2.0) ]
    (List.rev !trace);
  Alcotest.(check int) "queue drained" 0 (Timed.Sim.pending sim);
  Alcotest.(check int) "four ran" 4 (Timed.Sim.events_run sim);
  Alcotest.(check (float 1e-9)) "time is the last event's" 2.0
    (Timed.Sim.now sim)

let test_sim_sleep_and_nested_schedule () =
  let sim = Timed.Sim.create () in
  let trace = ref [] in
  let mark tag = trace := (tag, Timed.Sim.now sim) :: !trace in
  Timed.Sim.schedule sim (fun () ->
      mark "start";
      Timed.Sim.sleep sim 1.25;
      mark "after-sleep";
      (* a task scheduled from inside a task, in the past: clamped to
         the current instant *)
      Timed.Sim.schedule sim ~at:0.5 (fun () -> mark "clamped");
      Timed.Sim.sleep_until sim 3.0;
      mark "end");
  Timed.Sim.run_until_quiescent sim;
  Alcotest.(check (list (pair string (float 1e-9))))
    "suspensions resume at the right virtual times"
    [ ("start", 0.); ("after-sleep", 1.25); ("clamped", 1.25); ("end", 3.0) ]
    (List.rev !trace)

let test_sim_advance () =
  let sim = Timed.Sim.create () in
  let hits = ref 0 in
  Timed.Sim.schedule sim ~at:1.0 (fun () -> incr hits);
  Timed.Sim.schedule sim ~at:5.0 (fun () -> incr hits);
  Timed.Sim.advance sim 2.0;
  Alcotest.(check int) "only the due event ran" 1 !hits;
  Alcotest.(check (float 1e-9)) "time moved exactly 2s" 2.0 (Timed.Sim.now sim);
  Timed.Sim.run_until_quiescent sim;
  Alcotest.(check int) "the rest ran" 2 !hits

let test_ivar_await_fill_and_timeout () =
  let sim = Timed.Sim.create () in
  let iv = Timed.Sim.ivar () in
  let got = ref None in
  let timed_out = ref None in
  Timed.Sim.schedule sim (fun () -> got := Timed.Sim.await sim iv);
  Timed.Sim.schedule sim (fun () ->
      let r = Timed.Sim.await sim ~timeout:1.0 iv in
      timed_out := Some (r, Timed.Sim.now sim));
  Timed.Sim.schedule sim ~at:2.0 (fun () -> Timed.Sim.fill sim iv 42);
  Timed.Sim.run_until_quiescent sim;
  Alcotest.(check (option int)) "await sees the fill" (Some 42) !got;
  (match !timed_out with
  | Some (None, t) -> Alcotest.(check (float 1e-9)) "timeout fired at +1s" 1.0 t
  | _ -> Alcotest.fail "awaiting with a 1s timeout must time out");
  (* filling twice is a no-op *)
  Timed.Sim.fill sim iv 43;
  Alcotest.(check (option int)) "first fill wins" (Some 42) (Timed.Sim.peek iv)

(* {1 Traces carry virtual time} *)

let contains text needle =
  let n = String.length needle and m = String.length text in
  let rec go i = i + n <= m && (String.sub text i n = needle || go (i + 1)) in
  go 0

let test_trace_virtual_timestamps () =
  let sim = Timed.Sim.create () in
  Timed.Sim.with_clock sim @@ fun () ->
  Obs.Trace.start ();
  Timed.Sim.schedule sim ~at:1.0 (fun () ->
      Obs.Span.with_ ~name:"virtual.span" (fun () -> Timed.Sim.sleep sim 2.5));
  Timed.Sim.run_until_quiescent sim;
  Obs.Trace.stop ();
  let text = Obs.Trace.to_string () in
  (* the span starts 1 virtual second after the trace epoch and lasts
     2.5 virtual seconds — microsecond fields in the Chrome JSON *)
  Alcotest.(check bool) "span recorded" true (contains text "virtual.span");
  Alcotest.(check bool)
    "ts is virtual" true
    (contains text "\"ts\": 1000000.000");
  Alcotest.(check bool)
    "dur is virtual" true
    (contains text "\"dur\": 2500000.000")

(* {1 Virtual budgets through the service layer} *)

(* The timeout scenario that used to need real seconds: a 2.5 s budget
   on the avionics model, with every clock observation costing 10
   virtual ms.  The budget expires after 250 observations — deep inside
   the exploration — so the runner degrades to the analytic ladder,
   deterministically, in wall-clock milliseconds. *)
let test_runner_degrades_on_virtual_timeout () =
  let run_once () =
    let sim = Timed.Sim.create ~auto_advance:0.01 () in
    Timed.Sim.with_clock sim @@ fun () ->
    Service.Runner.run Service.Runner.default_config
      (Service.Job.request ~id:"starved" ~timeout_s:2.5
         (Service.Job.Inline (Gen.avionics ())))
  in
  let o, wall = real_elapsed run_once in
  Alcotest.(check bool) "degraded" true o.Service.Job.degraded;
  (match o.Service.Job.verdict with
  | Service.Job.Bounded _ | Service.Job.Unknown _ -> ()
  | v ->
      Alcotest.failf "expected a degraded verdict, got %s"
        (Service.Job.verdict_tag v));
  Alcotest.(check bool)
    "virtual wall_s accounts for the burnt budget" true
    (o.Service.Job.wall_s >= 2.5);
  Alcotest.(check bool)
    "2.5s virtual budget costs wall-clock milliseconds" true (wall < 2.0);
  (* determinism: a fresh simulator truncates at exactly the same point *)
  let o2 = run_once () in
  Alcotest.(check int)
    "identical truncation state count" o.Service.Job.states
    o2.Service.Job.states;
  Alcotest.(check string)
    "identical degraded verdict"
    (Service.Job.verdict_tag o.Service.Job.verdict)
    (Service.Job.verdict_tag o2.Service.Job.verdict)

(* Scheduler wait/run bookkeeping, cancellation and single-flight
   coalescing run under the simulator unchanged — including with 4
   worker domains reading the virtual clock concurrently. *)
let test_scheduler_under_virtual_clock () =
  let sim = Timed.Sim.create () in
  Timed.Sim.with_clock sim @@ fun () ->
  let config = Service.Runner.with_cache Service.Runner.default_config in
  let s = Service.Scheduler.create ~workers:4 config in
  for i = 1 to 6 do
    ignore
      (Service.Scheduler.submit s
         (Service.Job.request ~id:(string_of_int i)
            (Service.Job.Inline overloaded)))
  done;
  let victim =
    Service.Scheduler.submit s
      (Service.Job.request ~id:"victim" (Service.Job.Inline light))
  in
  Service.Scheduler.cancel victim;
  let outcomes = Service.Scheduler.run_all s in
  let by_tag tag =
    List.length
      (List.filter
         (fun (o : Service.Job.outcome) ->
           Service.Job.verdict_tag o.Service.Job.verdict = tag)
         outcomes)
  in
  Alcotest.(check int) "six verdicts" 6 (by_tag "not_schedulable");
  Alcotest.(check int) "one cancelled" 1 (by_tag "cancelled");
  let k = Service.Lru.counters (Option.get config.Service.Runner.cache) in
  Alcotest.(check int) "single-flight: one exploration" 1 k.Service.Lru.misses;
  Alcotest.(check int) "five coalesced hits" 5 k.Service.Lru.hits

(* {1 Real vs simulated clock: verdict agreement on every example} *)

let example_models_dir () =
  List.find_opt Sys.file_exists [ "../examples/models"; "examples/models" ]

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let describe (r : Analysis.Schedulability.t) =
  match r.Analysis.Schedulability.verdict with
  | Analysis.Schedulability.Schedulable -> "schedulable"
  | Analysis.Schedulability.Not_schedulable { scenario; _ } ->
      Fmt.str "not schedulable: %a" Analysis.Raise_trace.pp scenario
  | Analysis.Schedulability.Inconclusive why -> "inconclusive: " ^ why

let test_example_models_real_vs_sim () =
  match example_models_dir () with
  | None -> Alcotest.fail "examples/models not found (missing dune deps?)"
  | Some dir ->
      let models =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".aadl")
        |> List.sort compare
      in
      Alcotest.(check bool) "found example models" true (models <> []);
      List.iter
        (fun file ->
          let root =
            Aadl.Instantiate.of_string (read_file (Filename.concat dir file))
          in
          let analyze () =
            Analysis.Schedulability.analyze
              ~options:
                {
                  Analysis.Schedulability.default_options with
                  max_states = 300_000;
                }
              root
          in
          let real = analyze () in
          let sim = Timed.Sim.create ~auto_advance:1e-4 () in
          let simulated = Timed.Sim.with_clock sim analyze in
          Alcotest.(check string)
            (file ^ ": verdict and scenario agree")
            (describe real) (describe simulated);
          Alcotest.(check int)
            (file ^ ": states agree")
            (Versa.Explorer.num_states real.Analysis.Schedulability.exploration)
            (Versa.Explorer.num_states
               simulated.Analysis.Schedulability.exploration))
        models

(* {1 Fabric} *)

(* run one client task to quiescence and hand back what it produced *)
let with_client sim f =
  let result = ref None in
  Timed.Sim.schedule sim (fun () -> result := Some (f ()));
  Timed.Sim.run_until_quiescent sim;
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "client task did not run"

let test_fabric_ideal_roundtrip () =
  let sim = Timed.Sim.create () in
  let fabric = Timed.Fabric.create sim in
  Timed.Fabric.serve fabric "upcase" String.uppercase_ascii;
  let reply =
    with_client sim (fun () ->
        Timed.Fabric.call fabric ~src:"client" ~dst:"upcase" "hello")
  in
  Alcotest.(check bool) "reply" true (reply = Ok "HELLO");
  (match
     with_client sim (fun () ->
         Timed.Fabric.call fabric ~src:"client" ~dst:"nowhere" "x")
   with
  | Error (Timed.Fabric.No_endpoint "nowhere") -> ()
  | _ -> Alcotest.fail "unknown endpoint must be reported");
  Alcotest.(check (float 1e-9))
    "ideal links cost no virtual time" 0. (Timed.Sim.now sim)

let test_fabric_delay_and_timeout () =
  let sim = Timed.Sim.create () in
  let fabric = Timed.Fabric.create sim in
  Timed.Fabric.serve fabric "echo" Fun.id;
  Timed.Fabric.link fabric ~src:"client" ~dst:"echo"
    { Timed.Fabric.ideal with delay = 0.3 };
  Timed.Fabric.link fabric ~src:"echo" ~dst:"client"
    { Timed.Fabric.ideal with delay = 0.2 };
  let reply, at =
    with_client sim (fun () ->
        let r = Timed.Fabric.call fabric ~src:"client" ~dst:"echo" "ping" in
        (r, Timed.Sim.now sim))
  in
  Alcotest.(check bool) "reply arrives" true (reply = Ok "ping");
  Alcotest.(check (float 1e-9)) "after both one-way delays" 0.5 at;
  (* a timeout shorter than the round trip expires at exactly now+t *)
  let r2, at2 =
    with_client sim (fun () ->
        let t0 = Timed.Sim.now sim in
        let r =
          Timed.Fabric.call fabric ~timeout:0.25 ~src:"client" ~dst:"echo"
            "pong"
        in
        (r, Timed.Sim.now sim -. t0))
  in
  Alcotest.(check bool) "timed out" true (r2 = Error Timed.Fabric.Timeout);
  Alcotest.(check (float 1e-9)) "at the timeout instant" 0.25 at2;
  (* the abandoned reply still arrives later and is logged as late *)
  let late =
    List.filter
      (fun (e : Timed.Fabric.event) ->
        e.Timed.Fabric.kind = Timed.Fabric.Reply_late)
      (Timed.Fabric.log fabric)
  in
  Alcotest.(check int) "late reply logged" 1 (List.length late)

let test_fabric_drop_and_duplicate () =
  let sim = Timed.Sim.create () in
  let fabric = Timed.Fabric.create ~seed:7 sim in
  let handled = ref 0 in
  Timed.Fabric.serve fabric "svc" (fun p ->
      incr handled;
      p);
  (* certain drop on the request link *)
  Timed.Fabric.link fabric ~src:"client" ~dst:"svc"
    { Timed.Fabric.ideal with drop = 1.0 };
  let r =
    with_client sim (fun () ->
        Timed.Fabric.call fabric ~timeout:1.0 ~src:"client" ~dst:"svc" "lost")
  in
  Alcotest.(check bool)
    "dropped call times out" true
    (r = Error Timed.Fabric.Timeout);
  Alcotest.(check int) "handler never ran" 0 !handled;
  (* certain duplication: the handler runs twice (at-least-once
     delivery), the caller still gets exactly one reply *)
  Timed.Fabric.link fabric ~src:"client" ~dst:"svc"
    { Timed.Fabric.ideal with duplicate = 1.0; delay = 0.01 };
  let r2 =
    with_client sim (fun () ->
        Timed.Fabric.call fabric ~timeout:1.0 ~src:"client" ~dst:"svc" "twice")
  in
  Alcotest.(check bool) "one reply" true (r2 = Ok "twice");
  Alcotest.(check int) "handler ran per delivered copy" 2 !handled;
  let dups =
    List.filter
      (fun (e : Timed.Fabric.event) ->
        e.Timed.Fabric.kind = Timed.Fabric.Duplicate)
      (Timed.Fabric.log fabric)
  in
  Alcotest.(check bool) "duplicate logged" true (dups <> [])

let test_fabric_reordering () =
  let sim = Timed.Sim.create () in
  let fabric = Timed.Fabric.create ~seed:3 sim in
  let arrivals = ref [] in
  Timed.Fabric.serve fabric "sink" (fun p ->
      arrivals := p :: !arrivals;
      p);
  Timed.Fabric.link fabric ~src:"client" ~dst:"sink"
    { Timed.Fabric.ideal with reorder = 0.5 };
  (* fire-and-forget senders: distinct tasks, so all sends happen
     back-to-back at t=0 without awaiting each other *)
  for i = 0 to 19 do
    Timed.Sim.schedule sim (fun () ->
        ignore
          (Timed.Fabric.call fabric ~timeout:10. ~src:"client" ~dst:"sink"
             (Printf.sprintf "m%02d" i)))
  done;
  Timed.Sim.run_until_quiescent sim;
  let order = List.rev !arrivals in
  Alcotest.(check int) "all delivered" 20 (List.length order);
  Alcotest.(check bool)
    "deliveries overtook each other" true
    (order <> List.sort compare order)

(* {1 Seeded fault matrix: replay determinism and verdict agreement} *)

type scenario = {
  seed : int;
  req_faults : Timed.Fabric.faults;
  rep_faults : Timed.Fabric.faults;
  calls : (string * float option) list;  (* payload, timeout *)
}

let faults_gen =
  QCheck.Gen.(
    map
      (fun (delay, jitter, drop, duplicate, reorder) ->
        { Timed.Fabric.delay; jitter; drop; duplicate; reorder })
      (tup5
         (float_bound_inclusive 0.05)
         (float_bound_inclusive 0.02)
         (float_bound_inclusive 0.5)
         (float_bound_inclusive 0.5)
         (float_bound_inclusive 0.5)))

let scenario_gen =
  QCheck.Gen.(
    map
      (fun (seed, req_faults, rep_faults, payloads) ->
        let calls =
          List.mapi (fun i p -> (Printf.sprintf "%s-%d" p i, Some 0.2)) payloads
        in
        { seed; req_faults; rep_faults; calls })
      (tup4 (int_bound 10_000) faults_gen faults_gen
         (list_size (1 -- 15) (string_size ~gen:printable (1 -- 6)))))

let pp_scenario s =
  Fmt.str "seed=%d calls=%d req={d=%.3f j=%.3f drop=%.2f dup=%.2f ro=%.2f}"
    s.seed (List.length s.calls) s.req_faults.Timed.Fabric.delay
    s.req_faults.Timed.Fabric.jitter s.req_faults.Timed.Fabric.drop
    s.req_faults.Timed.Fabric.duplicate s.req_faults.Timed.Fabric.reorder

let run_scenario s =
  let sim = Timed.Sim.create () in
  let fabric = Timed.Fabric.create ~seed:s.seed sim in
  Timed.Fabric.serve fabric "svc" String.uppercase_ascii;
  Timed.Fabric.link fabric ~src:"client" ~dst:"svc" s.req_faults;
  Timed.Fabric.link fabric ~src:"svc" ~dst:"client" s.rep_faults;
  let results = ref [] in
  (* one sequential client: each call awaits its reply or timeout
     before the next goes out *)
  Timed.Sim.schedule sim (fun () ->
      List.iter
        (fun (payload, timeout) ->
          let r =
            Timed.Fabric.call fabric ?timeout ~src:"client" ~dst:"svc" payload
          in
          results := r :: !results)
        s.calls);
  Timed.Sim.run_until_quiescent sim;
  (List.rev !results, Timed.Fabric.log_lines fabric, Timed.Sim.events_run sim)

(* Replay determinism: a fault schedule is a pure function of the seed
   and the link configuration — two runs are bit-identical, down to the
   full delivery log and the number of scheduler events. *)
let qcheck_fault_schedule_replays =
  QCheck.Test.make ~count:60 ~name:"fault schedule replays bit-identically"
    (QCheck.make ~print:pp_scenario scenario_gen)
    (fun s ->
      let r1, log1, n1 = run_scenario s in
      let r2, log2, n2 = run_scenario s in
      r1 = r2 && log1 = log2 && n1 = n2)

(* Whatever the fault schedule, an [Ok] reply is exactly the handler's
   answer for that call's payload — duplication and reordering never
   cross-wire calls. *)
let qcheck_fault_replies_uncorrupted =
  QCheck.Test.make ~count:60 ~name:"replies are uncorrupted under faults"
    (QCheck.make ~print:pp_scenario scenario_gen)
    (fun s ->
      let results, _, _ = run_scenario s in
      List.for_all2
        (fun (payload, _) r ->
          match r with
          | Ok reply -> reply = String.uppercase_ascii payload
          | Error Timed.Fabric.Timeout -> true
          | Error (Timed.Fabric.No_endpoint _) -> false)
        s.calls results)

(* The motivating property: an analysis service behind a faulty link,
   clients retrying on timeout.  Whatever gets dropped, duplicated or
   reordered, single-flight leasing means a model is explored at most
   once, and every verdict that does come back agrees with the model's
   true verdict. *)
let qcheck_single_flight_under_faults =
  let gen =
    QCheck.Gen.(
      tup3 (int_bound 10_000)
        (float_bound_inclusive 0.4)
        (float_bound_inclusive 0.6))
  in
  let print (seed, drop, duplicate) =
    Printf.sprintf "seed=%d drop=%.2f dup=%.2f" seed drop duplicate
  in
  QCheck.Test.make ~count:8
    ~name:"dropped-then-retried requests never explore twice"
    (QCheck.make ~print gen)
    (fun (seed, drop, duplicate) ->
      let sim = Timed.Sim.create () in
      Timed.Sim.with_clock sim @@ fun () ->
      let fabric = Timed.Fabric.create ~seed sim in
      let config = Service.Runner.with_cache Service.Runner.default_config in
      let models = [ ("light", light); ("overloaded", overloaded) ] in
      let explorations = ref 0 in
      Timed.Fabric.serve fabric "verdicts" (fun name ->
          let o =
            Service.Runner.run config
              (Service.Job.request ~id:name
                 (Service.Job.Inline (List.assoc name models)))
          in
          if not o.Service.Job.cached then incr explorations;
          Service.Job.verdict_tag o.Service.Job.verdict);
      Timed.Fabric.link fabric ~src:"client" ~dst:"verdicts"
        { Timed.Fabric.ideal with delay = 0.005; drop; duplicate };
      Timed.Fabric.link fabric ~src:"verdicts" ~dst:"client"
        { Timed.Fabric.ideal with delay = 0.005; drop };
      (* every model requested by three clients, each retrying up to 5
         times — duplicate-heavy traffic over a lossy link *)
      let answers = ref [] in
      List.iter
        (fun (name, _) ->
          for _client = 1 to 3 do
            Timed.Sim.schedule sim (fun () ->
                let rec attempt n =
                  if n > 0 then
                    match
                      Timed.Fabric.call fabric ~timeout:0.1 ~src:"client"
                        ~dst:"verdicts" name
                    with
                    | Ok tag -> answers := (name, tag) :: !answers
                    | Error _ -> attempt (n - 1)
                in
                attempt 5)
          done)
        models;
      Timed.Sim.run_until_quiescent sim;
      let expected =
        [ ("light", "schedulable"); ("overloaded", "not_schedulable") ]
      in
      let misses =
        (Service.Lru.counters (Option.get config.Service.Runner.cache))
          .Service.Lru.misses
      in
      (* at most one exploration per distinct model, no matter how many
         duplicated deliveries the handler saw ... *)
      misses <= List.length models
      && !explorations <= List.length models
      (* ... and every answer that made it back is the true verdict *)
      && List.for_all
           (fun (name, tag) -> List.assoc name expected = tag)
           !answers)

let () =
  Alcotest.run "timed"
    [
      ( "clock",
        [
          Alcotest.test_case "real and ambient" `Quick
            test_clock_real_and_ambient;
          Alcotest.test_case "auto-advance" `Quick test_auto_advance;
        ] );
      ( "sim",
        [
          Alcotest.test_case "event order and ties" `Quick
            test_sim_event_order_and_ties;
          Alcotest.test_case "sleep and nested schedule" `Quick
            test_sim_sleep_and_nested_schedule;
          Alcotest.test_case "advance" `Quick test_sim_advance;
          Alcotest.test_case "ivar await/fill/timeout" `Quick
            test_ivar_await_fill_and_timeout;
        ] );
      ( "obs",
        [
          Alcotest.test_case "traces carry virtual time" `Quick
            test_trace_virtual_timestamps;
        ] );
      ( "service",
        [
          Alcotest.test_case "2.5s budget degrades in milliseconds" `Quick
            test_runner_degrades_on_virtual_timeout;
          Alcotest.test_case "scheduler runs under virtual clock" `Quick
            test_scheduler_under_virtual_clock;
          Alcotest.test_case "real vs sim verdicts on example models" `Quick
            test_example_models_real_vs_sim;
        ] );
      ( "fabric",
        [
          Alcotest.test_case "ideal roundtrip" `Quick
            test_fabric_ideal_roundtrip;
          Alcotest.test_case "delay and timeout" `Quick
            test_fabric_delay_and_timeout;
          Alcotest.test_case "drop and duplicate" `Quick
            test_fabric_drop_and_duplicate;
          Alcotest.test_case "reordering" `Quick test_fabric_reordering;
        ] );
      ( "faults",
        [
          QCheck_alcotest.to_alcotest qcheck_fault_schedule_replays;
          QCheck_alcotest.to_alcotest qcheck_fault_replies_uncorrupted;
          QCheck_alcotest.to_alcotest qcheck_single_flight_under_faults;
        ] );
    ]
