(* Tests for the analysis service layer: the JSON codec, the LRU verdict
   cache, content-addressed cache keys, the runner (cache hits return the
   stored verdict and scenario without re-exploration; exhausted budgets
   degrade to analytic bounds instead of hanging), the priority
   scheduler with cancellation, and the analytic fallback ladder. *)

let light = Gen.periodic_system Gen.light_set
let overloaded = Gen.periodic_system Gen.overloaded_set

(* {1 JSON} *)

let test_json_roundtrip () =
  List.iter
    (fun text ->
      match Service.Json.parse text with
      | Error msg -> Alcotest.failf "%s: %s" text msg
      | Ok v ->
          Alcotest.(check string) text text (Service.Json.to_string v))
    [
      "null";
      "true";
      "[1,-2,3]";
      {|{"a":1,"b":[true,false,null],"c":{"d":"x"}}|};
      {|"line\nbreak \"quoted\" back\\slash"|};
      "[]";
      "{}";
    ]

let test_json_escapes () =
  (match Service.Json.parse {|"Aé€"|} with
  | Ok (Service.Json.String s) ->
      Alcotest.(check string) "utf-8 decoding" "A\xc3\xa9\xe2\x82\xac" s
  | Ok _ | Error _ -> Alcotest.fail "\\u escapes");
  match Service.Json.parse (Service.Json.to_string (Service.Json.String "\x01\ttab")) with
  | Ok (Service.Json.String s) -> Alcotest.(check string) "control chars" "\x01\ttab" s
  | Ok _ | Error _ -> Alcotest.fail "control-char round-trip"

let test_json_numbers () =
  (match Service.Json.parse "[0.5,1e3,-2.25]" with
  | Ok (Service.Json.List [ a; b; c ]) ->
      Alcotest.(check (option (float 1e-9)))
        "floats"
        (Some 0.5) (Service.Json.to_float a);
      Alcotest.(check (option (float 1e-9))) "exp" (Some 1000.)
        (Service.Json.to_float b);
      Alcotest.(check (option (float 1e-9)))
        "negative" (Some (-2.25)) (Service.Json.to_float c)
  | Ok _ | Error _ -> Alcotest.fail "number forms");
  Alcotest.(check (option int))
    "integral float as int" (Some 7)
    (Option.bind (Result.to_option (Service.Json.parse "7.0")) Service.Json.to_int)

let test_json_errors () =
  List.iter
    (fun text ->
      match Service.Json.parse text with
      | Ok _ -> Alcotest.failf "%S should not parse" text
      | Error _ -> ())
    [ ""; "{"; "[1,]"; {|{"a" 1}|}; "tru"; "1 2"; {|"unterminated|}; "nul" ]

(* {1 LRU cache} *)

let test_lru_basics () =
  let c = Service.Lru.create ~capacity:2 in
  Alcotest.(check (option int)) "miss on empty" None (Service.Lru.find c "a");
  Service.Lru.add c "a" 1;
  Service.Lru.add c "b" 2;
  Alcotest.(check (option int)) "hit a" (Some 1) (Service.Lru.find c "a");
  (* "b" is now least recently used; adding "c" evicts it *)
  Service.Lru.add c "c" 3;
  Alcotest.(check (option int)) "b evicted" None (Service.Lru.find c "b");
  Alcotest.(check (option int)) "a kept" (Some 1) (Service.Lru.find c "a");
  Alcotest.(check (option int)) "c kept" (Some 3) (Service.Lru.find c "c");
  let k = Service.Lru.counters c in
  Alcotest.(check int) "hits" 3 k.Service.Lru.hits;
  Alcotest.(check int) "misses" 2 k.Service.Lru.misses;
  Alcotest.(check int) "evictions" 1 k.Service.Lru.evictions;
  Alcotest.(check int) "size" 2 k.Service.Lru.size

let test_lru_replace_is_not_eviction () =
  let c = Service.Lru.create ~capacity:2 in
  Service.Lru.add c "a" 1;
  Service.Lru.add c "a" 10;
  Alcotest.(check (option int)) "replaced" (Some 10) (Service.Lru.find c "a");
  Alcotest.(check int)
    "no eviction" 0
    (Service.Lru.counters c).Service.Lru.evictions;
  Alcotest.(check int) "one entry" 1 (Service.Lru.length c)

let test_lru_capacity_clamped () =
  let c = Service.Lru.create ~capacity:0 in
  Alcotest.(check int) "clamped to 1" 1 (Service.Lru.capacity c);
  Service.Lru.add c "a" 1;
  Service.Lru.add c "b" 2;
  Alcotest.(check int) "never over capacity" 1 (Service.Lru.length c)

let test_lru_single_flight () =
  let c = Service.Lru.create ~capacity:4 in
  (match Service.Lru.find_or_lease c "a" with
  | `Lease -> ()
  | `Hit _ -> Alcotest.fail "first probe must take the lease");
  Service.Lru.fulfill c "a" 1;
  (match Service.Lru.find_or_lease c "a" with
  | `Hit v -> Alcotest.(check int) "fulfilled value" 1 v
  | `Lease -> Alcotest.fail "fulfilled key must hit");
  (* an abandoned lease stores nothing and hands the key back *)
  (match Service.Lru.find_or_lease c "b" with
  | `Lease -> Service.Lru.abandon c "b"
  | `Hit _ -> Alcotest.fail "fresh key must take the lease");
  (match Service.Lru.find_or_lease c "b" with
  | `Lease -> Service.Lru.abandon c "b"
  | `Hit _ -> Alcotest.fail "abandoned key must lease again");
  let k = Service.Lru.counters c in
  Alcotest.(check int) "hits" 1 k.Service.Lru.hits;
  Alcotest.(check int) "misses" 3 k.Service.Lru.misses

(* {1 Cache keys} *)

let test_key_stability_and_divergence () =
  let root = Aadl.Instantiate.of_string light in
  let req = Service.Job.request ~id:"x" (Service.Job.Inline light) in
  let k1 = Service.Key.of_request root req in
  let k2 =
    Service.Key.of_request root
      (Service.Job.request ~id:"completely-different-id" ~priority:9
         (Service.Job.Inline light))
  in
  Alcotest.(check string) "id and priority do not key" k1 k2;
  let k_edf =
    Service.Key.of_request root
      (Service.Job.request ~id:"x" ~protocol:Aadl.Props.Edf
         (Service.Job.Inline light))
  in
  Alcotest.(check bool) "protocol keys" true (k1 <> k_edf);
  let k_budget =
    Service.Key.of_request root
      (Service.Job.request ~id:"x" ~max_states:7 (Service.Job.Inline light))
  in
  Alcotest.(check bool) "state budget keys" true (k1 <> k_budget);
  let other = Aadl.Instantiate.of_string overloaded in
  Alcotest.(check bool)
    "model keys" true
    (k1 <> Service.Key.of_request other req)

(* {1 Runner: cache hits and graceful degradation} *)

let test_runner_cache_hit_identical () =
  (* the same unschedulable model twice: the second run must be a cache
     hit carrying the identical verdict AND raised scenario *)
  let config = Service.Runner.with_cache Service.Runner.default_config in
  let req id = Service.Job.request ~id (Service.Job.Inline overloaded) in
  let first = Service.Runner.run config (req "first") in
  let second = Service.Runner.run config (req "second") in
  Alcotest.(check bool) "first not cached" false first.Service.Job.cached;
  Alcotest.(check bool) "second cached" true second.Service.Job.cached;
  Alcotest.(check string) "ids echoed" "second" second.Service.Job.id;
  (match (first.Service.Job.verdict, second.Service.Job.verdict) with
  | ( Service.Job.Not_schedulable { violation_time = t1; scenario = s1 },
      Service.Job.Not_schedulable { violation_time = t2; scenario = s2 } ) ->
      Alcotest.(check int) "same violation time" t1 t2;
      Alcotest.(check string) "same raised scenario" s1 s2
  | _ -> Alcotest.fail "expected two not_schedulable verdicts");
  Alcotest.(check int)
    "same states metadata" first.Service.Job.states second.Service.Job.states;
  let cache = Option.get config.Service.Runner.cache in
  let k = Service.Lru.counters cache in
  Alcotest.(check int) "exactly one hit" 1 k.Service.Lru.hits;
  Alcotest.(check int) "one miss" 1 k.Service.Lru.misses

let test_runner_degrades_on_timeout () =
  (* the largest example model with a zero wall-clock budget: the
     exploration truncates at its first merge step and the runner falls
     back to the analytic ladder — a qualified verdict, never a hang *)
  let req =
    Service.Job.request ~id:"starved" ~timeout_s:0.
      (Service.Job.Inline (Gen.avionics ()))
  in
  let o = Service.Runner.run Service.Runner.default_config req in
  Alcotest.(check bool) "degraded" true o.Service.Job.degraded;
  match o.Service.Job.verdict with
  | Service.Job.Bounded _ | Service.Job.Unknown _ -> ()
  | v -> Alcotest.failf "expected a degraded verdict, got %s" (Service.Job.verdict_tag v)

let test_runner_failure_is_an_outcome () =
  let o =
    Service.Runner.run Service.Runner.default_config
      (Service.Job.request ~id:"broken"
         (Service.Job.Inline "system s end s; garbage"))
  in
  match o.Service.Job.verdict with
  | Service.Job.Failed _ -> ()
  | v -> Alcotest.failf "expected error, got %s" (Service.Job.verdict_tag v)

(* {1 Scheduler} *)

let test_scheduler_priority_order_and_submission_output () =
  let config = Service.Runner.default_config in
  let s = Service.Scheduler.create config in
  let submit id priority =
    ignore
      (Service.Scheduler.submit s
         (Service.Job.request ~id ~priority (Service.Job.Inline light)))
  in
  submit "low" 0;
  submit "high" 5;
  submit "mid" 3;
  let outcomes = Service.Scheduler.run_all s in
  Alcotest.(check (list string))
    "outcomes in submission order" [ "low"; "high"; "mid" ]
    (List.map (fun (o : Service.Job.outcome) -> o.Service.Job.id) outcomes);
  (* priority decides execution order: with a fresh shared cache and
     equal models, exactly the first-executed job misses *)
  let config = Service.Runner.with_cache Service.Runner.default_config in
  let s = Service.Scheduler.create config in
  let h_low =
    Service.Scheduler.submit s
      (Service.Job.request ~id:"low" ~priority:0 (Service.Job.Inline light))
  in
  let h_high =
    Service.Scheduler.submit s
      (Service.Job.request ~id:"high" ~priority:9 (Service.Job.Inline light))
  in
  ignore (Service.Scheduler.run_all s);
  let cached h =
    (Option.get (Service.Scheduler.outcome h)).Service.Job.cached
  in
  Alcotest.(check bool) "high-priority ran first" false (cached h_high);
  Alcotest.(check bool) "low-priority hit its result" true (cached h_low)

let test_scheduler_parallel_agrees () =
  let run workers =
    let s = Service.Scheduler.create ~workers Service.Runner.default_config in
    List.iteri
      (fun i text ->
        ignore
          (Service.Scheduler.submit s
             (Service.Job.request
                ~id:(string_of_int i)
                (Service.Job.Inline text))))
      [ light; overloaded; Gen.cruise_control (); light ];
    List.map
      (fun (o : Service.Job.outcome) ->
        (o.Service.Job.id, Service.Job.verdict_tag o.Service.Job.verdict))
      (Service.Scheduler.run_all s)
  in
  Alcotest.(check (list (pair string string)))
    "1 vs 4 workers" (run 1) (run 4)

let test_scheduler_concurrent_duplicates_coalesce () =
  (* six duplicates on four workers: single-flight leasing means exactly
     one exploration happens no matter how the workers interleave, so
     the counters are as deterministic as a sequential run *)
  let config = Service.Runner.with_cache Service.Runner.default_config in
  let s = Service.Scheduler.create ~workers:4 config in
  for i = 1 to 6 do
    ignore
      (Service.Scheduler.submit s
         (Service.Job.request
            ~id:(string_of_int i)
            (Service.Job.Inline overloaded)))
  done;
  let outcomes = Service.Scheduler.run_all s in
  let cached_flags =
    List.map (fun (o : Service.Job.outcome) -> o.Service.Job.cached) outcomes
  in
  Alcotest.(check int)
    "exactly one exploration" 1
    (List.length (List.filter not cached_flags));
  let tags =
    List.sort_uniq compare
      (List.map
         (fun (o : Service.Job.outcome) ->
           Service.Job.verdict_tag o.Service.Job.verdict)
         outcomes)
  in
  Alcotest.(check (list string)) "all verdicts agree" [ "not_schedulable" ] tags;
  let k = Service.Lru.counters (Option.get config.Service.Runner.cache) in
  Alcotest.(check int) "five hits" 5 k.Service.Lru.hits;
  Alcotest.(check int) "one miss" 1 k.Service.Lru.misses

let test_scheduler_cancellation () =
  let s = Service.Scheduler.create Service.Runner.default_config in
  let h =
    Service.Scheduler.submit s
      (Service.Job.request ~id:"victim" (Service.Job.Inline light))
  in
  Service.Scheduler.cancel h;
  let outcomes = Service.Scheduler.run_all s in
  match (List.hd outcomes).Service.Job.verdict with
  | Service.Job.Cancelled -> ()
  | v -> Alcotest.failf "expected cancelled, got %s" (Service.Job.verdict_tag v)

(* {1 Request decoding} *)

let test_request_of_json () =
  let parse text =
    Result.bind (Service.Json.parse text) Service.Job.request_of_json
  in
  (match parse {|{"id":"a","file":"m.aadl","protocol":"edf","timeout_s":2.5,"priority":3}|} with
  | Ok r ->
      Alcotest.(check string) "id" "a" r.Service.Job.id;
      (match r.Service.Job.source with
      | Service.Job.File f -> Alcotest.(check string) "file" "m.aadl" f
      | Service.Job.Inline _ -> Alcotest.fail "expected file source");
      Alcotest.(check bool)
        "protocol" true
        (r.Service.Job.protocol = Some Aadl.Props.Edf);
      Alcotest.(check (option (float 1e-9)))
        "timeout" (Some 2.5) r.Service.Job.timeout_s;
      Alcotest.(check int) "priority" 3 r.Service.Job.priority
  | Error msg -> Alcotest.fail msg);
  List.iter
    (fun text ->
      match parse text with
      | Ok _ -> Alcotest.failf "%S should be rejected" text
      | Error _ -> ())
    [
      {|{"file":"m.aadl"}|};
      {|{"id":"a"}|};
      {|{"id":"a","file":"m.aadl","model":"..."}|};
      {|{"id":"a","file":"m.aadl","protocol":"round-robin"}|};
      {|{"id":"a","file":"m.aadl","priority":"urgent"}|};
      {|[1,2]|};
    ]

let test_manifest_lines () =
  let text =
    "# comment\n\
     {\"id\":\"a\",\"file\":\"one.aadl\"}\n\
     \n\
     {\"id\":\"b\",\"model\":\"inline\"}\n"
  in
  (match Service.Job.parse_manifest text with
  | Ok [ a; b ] ->
      Alcotest.(check string) "first" "a" a.Service.Job.id;
      Alcotest.(check string) "second" "b" b.Service.Job.id
  | Ok _ -> Alcotest.fail "expected two requests"
  | Error msg -> Alcotest.fail msg);
  match Service.Job.parse_manifest "{\"id\":\"a\",\"file\":\"x\"}\nnot json\n" with
  | Error msg ->
      Alcotest.(check bool)
        "error names the line" true
        (String.length msg >= 7 && String.sub msg 0 7 = "line 2:")
  | Ok _ -> Alcotest.fail "bad line must fail"

(* {1 Analytic fallback ladder} *)

let workload_of ?protocol text =
  let root = Aadl.Instantiate.of_string text in
  ignore protocol;
  Translate.Workload.extract ~quantum:(Aadl.Time.of_ms 1) root

let test_fallback_schedulable () =
  let fb = Analysis.Fallback.analyze (workload_of light) in
  match fb.Analysis.Fallback.verdict with
  | Analysis.Fallback.Likely_schedulable _ -> ()
  | v -> Alcotest.failf "expected likely_schedulable, got %s"
           (Analysis.Fallback.verdict_name v)

let test_fallback_unschedulable () =
  let fb = Analysis.Fallback.analyze (workload_of overloaded) in
  match fb.Analysis.Fallback.verdict with
  | Analysis.Fallback.Analytically_unschedulable _ -> ()
  | v -> Alcotest.failf "expected analytically_unschedulable, got %s"
           (Analysis.Fallback.verdict_name v)

let test_fallback_edf_crossover () =
  (* the crossover set is over the RM utilization bound but under 1:
     EDF demand analysis accepts what the RM ladder cannot prove *)
  let wl = workload_of (Gen.periodic_system Gen.crossover_set) in
  let fb = Analysis.Fallback.analyze ~force_protocol:Aadl.Props.Edf wl in
  (match fb.Analysis.Fallback.verdict with
  | Analysis.Fallback.Likely_schedulable _ -> ()
  | v -> Alcotest.failf "EDF: expected likely_schedulable, got %s"
           (Analysis.Fallback.verdict_name v));
  let hier =
    Analysis.Fallback.analyze ~force_protocol:Aadl.Props.Hierarchical wl
  in
  match hier.Analysis.Fallback.verdict with
  | Analysis.Fallback.Unknown _ -> ()
  | v -> Alcotest.failf "hierarchical: expected unknown, got %s"
           (Analysis.Fallback.verdict_name v)

let () =
  Alcotest.run "service"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "escapes" `Quick test_json_escapes;
          Alcotest.test_case "numbers" `Quick test_json_numbers;
          Alcotest.test_case "errors" `Quick test_json_errors;
        ] );
      ( "lru",
        [
          Alcotest.test_case "hit/miss/evict" `Quick test_lru_basics;
          Alcotest.test_case "replace" `Quick test_lru_replace_is_not_eviction;
          Alcotest.test_case "capacity clamp" `Quick test_lru_capacity_clamped;
          Alcotest.test_case "single flight" `Quick test_lru_single_flight;
        ] );
      ( "key",
        [
          Alcotest.test_case "stability and divergence" `Quick
            test_key_stability_and_divergence;
        ] );
      ( "runner",
        [
          Alcotest.test_case "cache hit identical" `Quick
            test_runner_cache_hit_identical;
          Alcotest.test_case "degrades on timeout" `Quick
            test_runner_degrades_on_timeout;
          Alcotest.test_case "failure is an outcome" `Quick
            test_runner_failure_is_an_outcome;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "priority and output order" `Quick
            test_scheduler_priority_order_and_submission_output;
          Alcotest.test_case "parallel agrees" `Quick
            test_scheduler_parallel_agrees;
          Alcotest.test_case "duplicates coalesce" `Quick
            test_scheduler_concurrent_duplicates_coalesce;
          Alcotest.test_case "cancellation" `Quick test_scheduler_cancellation;
        ] );
      ( "requests",
        [
          Alcotest.test_case "decoding" `Quick test_request_of_json;
          Alcotest.test_case "manifest" `Quick test_manifest_lines;
        ] );
      ( "fallback",
        [
          Alcotest.test_case "schedulable" `Quick test_fallback_schedulable;
          Alcotest.test_case "unschedulable" `Quick test_fallback_unschedulable;
          Alcotest.test_case "edf crossover and hierarchical" `Quick
            test_fallback_edf_crossover;
        ] );
    ]
