(* Tests for the analysis service layer: the JSON codec, the LRU verdict
   cache, content-addressed cache keys, the runner (cache hits return the
   stored verdict and scenario without re-exploration; exhausted budgets
   degrade to analytic bounds instead of hanging), the priority
   scheduler with cancellation, and the analytic fallback ladder. *)

let light = Gen.periodic_system Gen.light_set
let overloaded = Gen.periodic_system Gen.overloaded_set

(* {1 JSON} *)

let test_json_roundtrip () =
  List.iter
    (fun text ->
      match Service.Json.parse text with
      | Error msg -> Alcotest.failf "%s: %s" text msg
      | Ok v ->
          Alcotest.(check string) text text (Service.Json.to_string v))
    [
      "null";
      "true";
      "[1,-2,3]";
      {|{"a":1,"b":[true,false,null],"c":{"d":"x"}}|};
      {|"line\nbreak \"quoted\" back\\slash"|};
      "[]";
      "{}";
    ]

let test_json_escapes () =
  (match Service.Json.parse {|"Aé€"|} with
  | Ok (Service.Json.String s) ->
      Alcotest.(check string) "utf-8 decoding" "A\xc3\xa9\xe2\x82\xac" s
  | Ok _ | Error _ -> Alcotest.fail "\\u escapes");
  match Service.Json.parse (Service.Json.to_string (Service.Json.String "\x01\ttab")) with
  | Ok (Service.Json.String s) -> Alcotest.(check string) "control chars" "\x01\ttab" s
  | Ok _ | Error _ -> Alcotest.fail "control-char round-trip"

let test_json_numbers () =
  (match Service.Json.parse "[0.5,1e3,-2.25]" with
  | Ok (Service.Json.List [ a; b; c ]) ->
      Alcotest.(check (option (float 1e-9)))
        "floats"
        (Some 0.5) (Service.Json.to_float a);
      Alcotest.(check (option (float 1e-9))) "exp" (Some 1000.)
        (Service.Json.to_float b);
      Alcotest.(check (option (float 1e-9)))
        "negative" (Some (-2.25)) (Service.Json.to_float c)
  | Ok _ | Error _ -> Alcotest.fail "number forms");
  Alcotest.(check (option int))
    "integral float as int" (Some 7)
    (Option.bind (Result.to_option (Service.Json.parse "7.0")) Service.Json.to_int)

let test_json_errors () =
  List.iter
    (fun text ->
      match Service.Json.parse text with
      | Ok _ -> Alcotest.failf "%S should not parse" text
      | Error _ -> ())
    [ ""; "{"; "[1,]"; {|{"a" 1}|}; "tru"; "1 2"; {|"unterminated|}; "nul" ]

(* Property: [to_string] escapes any byte string — control characters,
   backslashes, invalid UTF-8 — into a form [parse] maps back to the
   identical bytes.  The printer passes bytes >= 0x80 through raw (JSON
   strings are "UTF-8" by convention but the codec must not corrupt
   what it is given), so arbitrary bytes round-trip exactly. *)
let qcheck_json_string_roundtrip =
  QCheck.Test.make ~count:500 ~name:"string escape round-trip"
    QCheck.(string_gen (Gen.char_range '\x00' '\xff'))
    (fun s ->
      match Service.Json.parse (Service.Json.to_string (Service.Json.String s)) with
      | Ok (Service.Json.String s') -> String.equal s s'
      | Ok _ | Error _ -> false)

(* Property: a \uXXXX escape (any BMP scalar value) parses to its UTF-8
   encoding, and the decoded string survives a reprint/reparse cycle. *)
let qcheck_json_u_escape_roundtrip =
  QCheck.Test.make ~count:500 ~name:"\\u escape decode + round-trip"
    QCheck.(
      make
        Gen.(
          (* skip the surrogate range: lone surrogates are not scalars *)
          map
            (fun n -> if n >= 0xD800 && n <= 0xDFFF then n land 0xFF else n)
            (int_range 1 0xFFFF)))
    (fun cp ->
      let literal = Printf.sprintf "\"\\u%04x\"" cp in
      match Service.Json.parse literal with
      | Ok (Service.Json.String s) -> (
          match
            Service.Json.parse
              (Service.Json.to_string (Service.Json.String s))
          with
          | Ok (Service.Json.String s') -> String.equal s s'
          | Ok _ | Error _ -> false)
      | Ok _ | Error _ -> false)

(* Property: any JSON value the printer can emit reparses to an equal
   value (strings drawn from full byte range, ints, nesting). *)
let qcheck_json_value_roundtrip =
  let gen_value =
    QCheck.Gen.(
      sized @@ fix (fun self n ->
          let leaf =
            oneof
              [
                return Service.Json.Null;
                map (fun b -> Service.Json.Bool b) bool;
                map (fun i -> Service.Json.Int i) small_signed_int;
                map
                  (fun s -> Service.Json.String s)
                  (string_size ~gen:(char_range '\x00' '\xff') (0 -- 10));
              ]
          in
          if n <= 0 then leaf
          else
            frequency
              [
                (3, leaf);
                ( 1,
                  map
                    (fun l -> Service.Json.List l)
                    (list_size (0 -- 4) (self (n / 2))) );
                ( 1,
                  map
                    (fun kvs -> Service.Json.Obj kvs)
                    (list_size (0 -- 4)
                       (pair
                          (string_size ~gen:(char_range '\x00' '\xff') (0 -- 6))
                          (self (n / 2)))) );
              ]))
  in
  QCheck.Test.make ~count:300 ~name:"value print/parse round-trip"
    (QCheck.make gen_value)
    (fun v ->
      match Service.Json.parse (Service.Json.to_string v) with
      | Ok v' -> v = v'
      | Error _ -> false)

(* {1 LRU cache} *)

let test_lru_basics () =
  let c = Service.Lru.create ~capacity:2 in
  Alcotest.(check (option int)) "miss on empty" None (Service.Lru.find c "a");
  Service.Lru.add c "a" 1;
  Service.Lru.add c "b" 2;
  Alcotest.(check (option int)) "hit a" (Some 1) (Service.Lru.find c "a");
  (* "b" is now least recently used; adding "c" evicts it *)
  Service.Lru.add c "c" 3;
  Alcotest.(check (option int)) "b evicted" None (Service.Lru.find c "b");
  Alcotest.(check (option int)) "a kept" (Some 1) (Service.Lru.find c "a");
  Alcotest.(check (option int)) "c kept" (Some 3) (Service.Lru.find c "c");
  let k = Service.Lru.counters c in
  Alcotest.(check int) "hits" 3 k.Service.Lru.hits;
  Alcotest.(check int) "misses" 2 k.Service.Lru.misses;
  Alcotest.(check int) "evictions" 1 k.Service.Lru.evictions;
  Alcotest.(check int) "size" 2 k.Service.Lru.size

let test_lru_replace_is_not_eviction () =
  let c = Service.Lru.create ~capacity:2 in
  Service.Lru.add c "a" 1;
  Service.Lru.add c "a" 10;
  Alcotest.(check (option int)) "replaced" (Some 10) (Service.Lru.find c "a");
  Alcotest.(check int)
    "no eviction" 0
    (Service.Lru.counters c).Service.Lru.evictions;
  Alcotest.(check int) "one entry" 1 (Service.Lru.length c)

let test_lru_capacity_clamped () =
  let c = Service.Lru.create ~capacity:0 in
  Alcotest.(check int) "clamped to 1" 1 (Service.Lru.capacity c);
  Service.Lru.add c "a" 1;
  Service.Lru.add c "b" 2;
  Alcotest.(check int) "never over capacity" 1 (Service.Lru.length c)

let test_lru_single_flight () =
  let c = Service.Lru.create ~capacity:4 in
  (match Service.Lru.find_or_lease c "a" with
  | `Lease -> ()
  | `Hit _ -> Alcotest.fail "first probe must take the lease");
  Service.Lru.fulfill c "a" 1;
  (match Service.Lru.find_or_lease c "a" with
  | `Hit v -> Alcotest.(check int) "fulfilled value" 1 v
  | `Lease -> Alcotest.fail "fulfilled key must hit");
  (* an abandoned lease stores nothing and hands the key back *)
  (match Service.Lru.find_or_lease c "b" with
  | `Lease -> Service.Lru.abandon c "b"
  | `Hit _ -> Alcotest.fail "fresh key must take the lease");
  (match Service.Lru.find_or_lease c "b" with
  | `Lease -> Service.Lru.abandon c "b"
  | `Hit _ -> Alcotest.fail "abandoned key must lease again");
  let k = Service.Lru.counters c in
  Alcotest.(check int) "hits" 1 k.Service.Lru.hits;
  Alcotest.(check int) "misses" 3 k.Service.Lru.misses

(* {1 Cache keys} *)

let test_key_stability_and_divergence () =
  let root = Aadl.Instantiate.of_string light in
  let req = Service.Job.request ~id:"x" (Service.Job.Inline light) in
  let k1 = Service.Key.of_request root req in
  let k2 =
    Service.Key.of_request root
      (Service.Job.request ~id:"completely-different-id" ~priority:9
         (Service.Job.Inline light))
  in
  Alcotest.(check string)
    "id and priority do not key" k1.Service.Key.merkle k2.Service.Key.merkle;
  let k_edf =
    Service.Key.of_request root
      (Service.Job.request ~id:"x" ~protocol:Aadl.Props.Edf
         (Service.Job.Inline light))
  in
  Alcotest.(check bool)
    "protocol keys" true
    (k1.Service.Key.merkle <> k_edf.Service.Key.merkle);
  let k_budget =
    Service.Key.of_request root
      (Service.Job.request ~id:"x" ~max_states:7 (Service.Job.Inline light))
  in
  Alcotest.(check bool)
    "state budget keys" true
    (k1.Service.Key.merkle <> k_budget.Service.Key.merkle);
  (* an options-only change keeps every fragment leaf identical — the
     attribution signal for "same system, different budget" *)
  Alcotest.(check (list string))
    "options-only miss has no changed fragments" []
    (Service.Key.changed_fragments ~prev:k1 k_budget);
  let other = Aadl.Instantiate.of_string overloaded in
  Alcotest.(check bool)
    "model keys" true
    (k1.Service.Key.merkle
    <> (Service.Key.of_request other req).Service.Key.merkle)

let test_key_merkle_attribution () =
  (* perturb one thread's execution time: same structure digest, and the
     leaf diff names exactly that thread's fragment *)
  let base = Gen.periodic_system Gen.light_set in
  let edited =
    Gen.periodic_system
      [
        Gen.simple_spec ~name:"t1" ~period_ms:4 ~cet_ms:1 ();
        Gen.simple_spec ~name:"t2" ~period_ms:6 ~cet_ms:3 ();
      ]
  in
  let req = Service.Job.request ~id:"x" (Service.Job.Inline base) in
  let k_base = Service.Key.of_request (Aadl.Instantiate.of_string base) req in
  let k_edit = Service.Key.of_request (Aadl.Instantiate.of_string edited) req in
  Alcotest.(check bool)
    "fragment leaves present" true
    (k_base.Service.Key.fragments <> []);
  Alcotest.(check string)
    "same structure" k_base.Service.Key.structure k_edit.Service.Key.structure;
  Alcotest.(check bool)
    "different merkle" true
    (k_base.Service.Key.merkle <> k_edit.Service.Key.merkle);
  Alcotest.(check (list string))
    "miss attributed to the edited thread" [ "thread:t2_i" ]
    (Service.Key.changed_fragments ~prev:k_base k_edit);
  (* an untranslatable model falls back to the whole-instance key *)
  let broken =
    Aadl.Instantiate.of_string
      "system root\nend root;\nsystem implementation root.impl\nend root.impl;"
  in
  let k_broken = Service.Key.of_request broken req in
  Alcotest.(check string)
    "untranslatable fallback" "untranslatable" k_broken.Service.Key.structure

(* {1 Runner: cache hits and graceful degradation} *)

let test_runner_cache_hit_identical () =
  (* the same unschedulable model twice: the second run must be a cache
     hit carrying the identical verdict AND raised scenario *)
  let config = Service.Runner.with_cache Service.Runner.default_config in
  let req id = Service.Job.request ~id (Service.Job.Inline overloaded) in
  let first = Service.Runner.run config (req "first") in
  let second = Service.Runner.run config (req "second") in
  Alcotest.(check bool) "first not cached" false first.Service.Job.cached;
  Alcotest.(check bool) "second cached" true second.Service.Job.cached;
  Alcotest.(check string) "ids echoed" "second" second.Service.Job.id;
  (match (first.Service.Job.verdict, second.Service.Job.verdict) with
  | ( Service.Job.Not_schedulable { violation_time = t1; scenario = s1 },
      Service.Job.Not_schedulable { violation_time = t2; scenario = s2 } ) ->
      Alcotest.(check int) "same violation time" t1 t2;
      Alcotest.(check string) "same raised scenario" s1 s2
  | _ -> Alcotest.fail "expected two not_schedulable verdicts");
  Alcotest.(check int)
    "same states metadata" first.Service.Job.states second.Service.Job.states;
  let cache = Option.get config.Service.Runner.cache in
  let k = Service.Lru.counters cache in
  Alcotest.(check int) "exactly one hit" 1 k.Service.Lru.hits;
  Alcotest.(check int) "one miss" 1 k.Service.Lru.misses

let test_runner_attribution () =
  (* four jobs through one cached config: base (novel miss), base again
     (hit), a bigger state budget (options-only miss), an edited thread
     (miss attributed to that thread's fragment) *)
  let base = Gen.periodic_system Gen.light_set in
  let edited =
    Gen.periodic_system
      [
        Gen.simple_spec ~name:"t1" ~period_ms:4 ~cet_ms:1 ();
        Gen.simple_spec ~name:"t2" ~period_ms:6 ~cet_ms:3 ();
      ]
  in
  let config = Service.Runner.with_cache Service.Runner.default_config in
  let run id ?max_states text =
    ignore
      (Service.Runner.run config
         (Service.Job.request ~id ?max_states (Service.Job.Inline text)))
  in
  run "a" base;
  run "b" base;
  run "c" ~max_states:9_999_999 base;
  run "d" edited;
  let c = Service.Runner.attribution_counters config in
  Alcotest.(check int) "one novel miss" 1 c.Service.Runner.novel;
  Alcotest.(check int) "one options-only miss" 1 c.Service.Runner.options_only;
  Alcotest.(check (list (pair string int)))
    "edited thread charged with one miss"
    [ ("thread:t2_i", 1) ]
    c.Service.Runner.changed_components;
  let k = Service.Lru.counters (Option.get config.Service.Runner.cache) in
  Alcotest.(check int) "one hit" 1 k.Service.Lru.hits;
  Alcotest.(check int) "three misses" 3 k.Service.Lru.misses

let check_degraded (o : Service.Job.outcome) =
  Alcotest.(check bool) "degraded" true o.Service.Job.degraded;
  match o.Service.Job.verdict with
  | Service.Job.Bounded _ | Service.Job.Unknown _ -> ()
  | v ->
      Alcotest.failf "expected a degraded verdict, got %s"
        (Service.Job.verdict_tag v)

let test_runner_degrades_on_timeout () =
  (* the largest example model with a second-scale budget, on the
     virtual clock: every clock observation costs 10 virtual ms, so the
     2.5 s budget expires deterministically partway through the
     exploration and the runner falls back to the analytic ladder — a
     qualified verdict, never a hang, in wall-clock milliseconds *)
  let req =
    Service.Job.request ~id:"starved" ~timeout_s:2.5
      (Service.Job.Inline (Gen.avionics ()))
  in
  let sim = Timed.Sim.create ~auto_advance:0.01 () in
  let o =
    Timed.Sim.with_clock sim (fun () ->
        Service.Runner.run Service.Runner.default_config req)
  in
  check_degraded o;
  Alcotest.(check bool)
    "the job consumed its virtual budget" true
    (o.Service.Job.wall_s >= 2.5);
  (* the degenerate real-clock case: a zero budget truncates at the
     first merge step *)
  let o0 =
    Service.Runner.run Service.Runner.default_config
      (Service.Job.request ~id:"starved0" ~timeout_s:0.
         (Service.Job.Inline (Gen.avionics ())))
  in
  check_degraded o0

let test_runner_failure_is_an_outcome () =
  let o =
    Service.Runner.run Service.Runner.default_config
      (Service.Job.request ~id:"broken"
         (Service.Job.Inline "system s end s; garbage"))
  in
  match o.Service.Job.verdict with
  | Service.Job.Failed _ -> ()
  | v -> Alcotest.failf "expected error, got %s" (Service.Job.verdict_tag v)

(* {1 Scheduler} *)

let test_scheduler_priority_order_and_submission_output () =
  let config = Service.Runner.default_config in
  let s = Service.Scheduler.create config in
  let submit id priority =
    ignore
      (Service.Scheduler.submit s
         (Service.Job.request ~id ~priority (Service.Job.Inline light)))
  in
  submit "low" 0;
  submit "high" 5;
  submit "mid" 3;
  let outcomes = Service.Scheduler.run_all s in
  Alcotest.(check (list string))
    "outcomes in submission order" [ "low"; "high"; "mid" ]
    (List.map (fun (o : Service.Job.outcome) -> o.Service.Job.id) outcomes);
  (* priority decides execution order: with a fresh shared cache and
     equal models, exactly the first-executed job misses *)
  let config = Service.Runner.with_cache Service.Runner.default_config in
  let s = Service.Scheduler.create config in
  let h_low =
    Service.Scheduler.submit s
      (Service.Job.request ~id:"low" ~priority:0 (Service.Job.Inline light))
  in
  let h_high =
    Service.Scheduler.submit s
      (Service.Job.request ~id:"high" ~priority:9 (Service.Job.Inline light))
  in
  ignore (Service.Scheduler.run_all s);
  let cached h =
    (Option.get (Service.Scheduler.outcome h)).Service.Job.cached
  in
  Alcotest.(check bool) "high-priority ran first" false (cached h_high);
  Alcotest.(check bool) "low-priority hit its result" true (cached h_low)

let test_scheduler_parallel_agrees () =
  let run workers =
    let s = Service.Scheduler.create ~workers Service.Runner.default_config in
    List.iteri
      (fun i text ->
        ignore
          (Service.Scheduler.submit s
             (Service.Job.request
                ~id:(string_of_int i)
                (Service.Job.Inline text))))
      [ light; overloaded; Gen.cruise_control (); light ];
    List.map
      (fun (o : Service.Job.outcome) ->
        (o.Service.Job.id, Service.Job.verdict_tag o.Service.Job.verdict))
      (Service.Scheduler.run_all s)
  in
  Alcotest.(check (list (pair string string)))
    "1 vs 4 workers" (run 1) (run 4)

let test_scheduler_concurrent_duplicates_coalesce () =
  (* six duplicates on four workers: single-flight leasing means exactly
     one exploration happens no matter how the workers interleave, so
     the counters are as deterministic as a sequential run *)
  let config = Service.Runner.with_cache Service.Runner.default_config in
  let s = Service.Scheduler.create ~workers:4 config in
  for i = 1 to 6 do
    ignore
      (Service.Scheduler.submit s
         (Service.Job.request
            ~id:(string_of_int i)
            (Service.Job.Inline overloaded)))
  done;
  let outcomes = Service.Scheduler.run_all s in
  let cached_flags =
    List.map (fun (o : Service.Job.outcome) -> o.Service.Job.cached) outcomes
  in
  Alcotest.(check int)
    "exactly one exploration" 1
    (List.length (List.filter not cached_flags));
  let tags =
    List.sort_uniq compare
      (List.map
         (fun (o : Service.Job.outcome) ->
           Service.Job.verdict_tag o.Service.Job.verdict)
         outcomes)
  in
  Alcotest.(check (list string)) "all verdicts agree" [ "not_schedulable" ] tags;
  let k = Service.Lru.counters (Option.get config.Service.Runner.cache) in
  Alcotest.(check int) "five hits" 5 k.Service.Lru.hits;
  Alcotest.(check int) "one miss" 1 k.Service.Lru.misses

let test_scheduler_cancellation () =
  let s = Service.Scheduler.create Service.Runner.default_config in
  let h =
    Service.Scheduler.submit s
      (Service.Job.request ~id:"victim" (Service.Job.Inline light))
  in
  Service.Scheduler.cancel h;
  let outcomes = Service.Scheduler.run_all s in
  match (List.hd outcomes).Service.Job.verdict with
  | Service.Job.Cancelled -> ()
  | v -> Alcotest.failf "expected cancelled, got %s" (Service.Job.verdict_tag v)

(* {1 Request decoding} *)

let test_request_of_json () =
  let parse text =
    Result.bind (Service.Json.parse text) Service.Job.request_of_json
  in
  (match parse {|{"id":"a","file":"m.aadl","protocol":"edf","timeout_s":2.5,"priority":3}|} with
  | Ok r ->
      Alcotest.(check string) "id" "a" r.Service.Job.id;
      (match r.Service.Job.source with
      | Service.Job.File f -> Alcotest.(check string) "file" "m.aadl" f
      | Service.Job.Inline _ -> Alcotest.fail "expected file source");
      Alcotest.(check bool)
        "protocol" true
        (r.Service.Job.protocol = Some Aadl.Props.Edf);
      Alcotest.(check (option (float 1e-9)))
        "timeout" (Some 2.5) r.Service.Job.timeout_s;
      Alcotest.(check int) "priority" 3 r.Service.Job.priority
  | Error msg -> Alcotest.fail msg);
  List.iter
    (fun text ->
      match parse text with
      | Ok _ -> Alcotest.failf "%S should be rejected" text
      | Error _ -> ())
    [
      {|{"file":"m.aadl"}|};
      {|{"id":"a"}|};
      {|{"id":"a","file":"m.aadl","model":"..."}|};
      {|{"id":"a","file":"m.aadl","protocol":"round-robin"}|};
      {|{"id":"a","file":"m.aadl","priority":"urgent"}|};
      {|[1,2]|};
    ]

let test_manifest_lines () =
  let text =
    "# comment\n\
     {\"id\":\"a\",\"file\":\"one.aadl\"}\n\
     \n\
     {\"id\":\"b\",\"model\":\"inline\"}\n"
  in
  (match Service.Job.parse_manifest text with
  | Ok [ a; b ] ->
      Alcotest.(check string) "first" "a" a.Service.Job.id;
      Alcotest.(check string) "second" "b" b.Service.Job.id
  | Ok _ -> Alcotest.fail "expected two requests"
  | Error msg -> Alcotest.fail msg);
  match Service.Job.parse_manifest "{\"id\":\"a\",\"file\":\"x\"}\nnot json\n" with
  | Error msg ->
      Alcotest.(check bool)
        "error names the line" true
        (String.length msg >= 7 && String.sub msg 0 7 = "line 2:")
  | Ok _ -> Alcotest.fail "bad line must fail"

(* {1 Analytic fallback ladder} *)

let workload_of ?protocol text =
  let root = Aadl.Instantiate.of_string text in
  ignore protocol;
  Translate.Workload.extract ~quantum:(Aadl.Time.of_ms 1) root

let test_fallback_schedulable () =
  let fb = Analysis.Fallback.analyze (workload_of light) in
  match fb.Analysis.Fallback.verdict with
  | Analysis.Fallback.Likely_schedulable _ -> ()
  | v -> Alcotest.failf "expected likely_schedulable, got %s"
           (Analysis.Fallback.verdict_name v)

let test_fallback_unschedulable () =
  let fb = Analysis.Fallback.analyze (workload_of overloaded) in
  match fb.Analysis.Fallback.verdict with
  | Analysis.Fallback.Analytically_unschedulable _ -> ()
  | v -> Alcotest.failf "expected analytically_unschedulable, got %s"
           (Analysis.Fallback.verdict_name v)

let test_fallback_edf_crossover () =
  (* the crossover set is over the RM utilization bound but under 1:
     EDF demand analysis accepts what the RM ladder cannot prove *)
  let wl = workload_of (Gen.periodic_system Gen.crossover_set) in
  let fb = Analysis.Fallback.analyze ~force_protocol:Aadl.Props.Edf wl in
  (match fb.Analysis.Fallback.verdict with
  | Analysis.Fallback.Likely_schedulable _ -> ()
  | v -> Alcotest.failf "EDF: expected likely_schedulable, got %s"
           (Analysis.Fallback.verdict_name v));
  let hier =
    Analysis.Fallback.analyze ~force_protocol:Aadl.Props.Hierarchical wl
  in
  match hier.Analysis.Fallback.verdict with
  | Analysis.Fallback.Unknown _ -> ()
  | v -> Alcotest.failf "hierarchical: expected unknown, got %s"
           (Analysis.Fallback.verdict_name v)

let () =
  Alcotest.run "service"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "escapes" `Quick test_json_escapes;
          Alcotest.test_case "numbers" `Quick test_json_numbers;
          Alcotest.test_case "errors" `Quick test_json_errors;
          QCheck_alcotest.to_alcotest qcheck_json_string_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_json_u_escape_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_json_value_roundtrip;
        ] );
      ( "lru",
        [
          Alcotest.test_case "hit/miss/evict" `Quick test_lru_basics;
          Alcotest.test_case "replace" `Quick test_lru_replace_is_not_eviction;
          Alcotest.test_case "capacity clamp" `Quick test_lru_capacity_clamped;
          Alcotest.test_case "single flight" `Quick test_lru_single_flight;
        ] );
      ( "key",
        [
          Alcotest.test_case "stability and divergence" `Quick
            test_key_stability_and_divergence;
          Alcotest.test_case "merkle attribution" `Quick
            test_key_merkle_attribution;
        ] );
      ( "runner",
        [
          Alcotest.test_case "cache hit identical" `Quick
            test_runner_cache_hit_identical;
          Alcotest.test_case "miss attribution" `Quick test_runner_attribution;
          Alcotest.test_case "degrades on timeout" `Quick
            test_runner_degrades_on_timeout;
          Alcotest.test_case "failure is an outcome" `Quick
            test_runner_failure_is_an_outcome;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "priority and output order" `Quick
            test_scheduler_priority_order_and_submission_output;
          Alcotest.test_case "parallel agrees" `Quick
            test_scheduler_parallel_agrees;
          Alcotest.test_case "duplicates coalesce" `Quick
            test_scheduler_concurrent_duplicates_coalesce;
          Alcotest.test_case "cancellation" `Quick test_scheduler_cancellation;
        ] );
      ( "requests",
        [
          Alcotest.test_case "decoding" `Quick test_request_of_json;
          Alcotest.test_case "manifest" `Quick test_manifest_lines;
        ] );
      ( "fallback",
        [
          Alcotest.test_case "schedulable" `Quick test_fallback_schedulable;
          Alcotest.test_case "unschedulable" `Quick test_fallback_unschedulable;
          Alcotest.test_case "edf crossover and hierarchical" `Quick
            test_fallback_edf_crossover;
        ] );
    ]
