(* Tests for the observability substrate: registry semantics (idempotent
   registration, kind clashes, muting), histogram bucket boundaries,
   sharded-counter merges under genuinely concurrent domains (qcheck),
   and the span tracer (well-nested events, valid Chrome trace_event
   JSON, recording through exceptions). *)

(* Each test gets a private registry so the process-wide one — which the
   libraries under test in the other binaries instrument into — never
   leaks counts in. *)
let fresh () = Obs.create_registry ()

(* {1 Registry} *)

let test_counter_basics () =
  let r = fresh () in
  let c = Obs.Counter.make ~registry:r ~help:"h" "c_total" in
  Alcotest.(check int) "starts at zero" 0 (Obs.Counter.value c);
  Obs.Counter.incr c;
  Obs.Counter.incr ~by:41 c;
  Alcotest.(check int) "accumulates" 42 (Obs.Counter.value c);
  let c' = Obs.Counter.make ~registry:r "c_total" in
  Obs.Counter.incr c';
  Alcotest.(check int)
    "registration is idempotent: same cells" 43 (Obs.Counter.value c);
  Alcotest.check_raises "negative increment rejected"
    (Invalid_argument "Obs.Counter.incr: negative increment")
    (fun () -> Obs.Counter.incr ~by:(-1) c)

let test_kind_clash () =
  let r = fresh () in
  let (_ : Obs.Counter.t) = Obs.Counter.make ~registry:r "m" in
  Alcotest.check_raises "counter re-registered as gauge"
    (Invalid_argument {|Obs: metric "m" already registered with another kind|})
    (fun () -> ignore (Obs.Gauge.make ~registry:r "m"))

let test_gauge_last_write_wins () =
  let r = fresh () in
  let g = Obs.Gauge.make ~registry:r "g" in
  Obs.Gauge.set g 3.5;
  Obs.Gauge.set g 1.25;
  Alcotest.(check (float 0.)) "last write" 1.25 (Obs.Gauge.value g)

let test_muting () =
  let r = fresh () in
  let c = Obs.Counter.make ~registry:r "muted_total" in
  let h = Obs.Histogram.make ~registry:r "muted_seconds" in
  Obs.set_enabled false;
  Fun.protect
    ~finally:(fun () -> Obs.set_enabled true)
    (fun () ->
      Obs.Counter.incr c;
      Obs.Histogram.observe h 1.;
      Alcotest.(check int) "counter muted" 0 (Obs.Counter.value c);
      Alcotest.(check int) "histogram muted" 0 (Obs.Histogram.count h));
  Obs.Counter.incr c;
  Alcotest.(check int) "unmuted again" 1 (Obs.Counter.value c)

(* {1 Histogram buckets} *)

let test_histogram_boundaries () =
  let r = fresh () in
  let h = Obs.Histogram.make ~registry:r ~buckets:[ 1.; 10.; 100. ] "h" in
  (* upper bounds are inclusive: an observation exactly on a bound lands
     in that bucket, not the next one *)
  List.iter (Obs.Histogram.observe h) [ 0.5; 1.; 1.0001; 10.; 100.; 100.5 ];
  Alcotest.(check (list (pair (float 0.) int)))
    "bucket assignment"
    [ (1., 2); (10., 2); (100., 1); (infinity, 1) ]
    (Obs.Histogram.buckets h);
  Alcotest.(check int) "count" 6 (Obs.Histogram.count h);
  Alcotest.(check (float 1e-9)) "sum" 213.0001 (Obs.Histogram.sum h)

let test_histogram_bad_buckets () =
  let r = fresh () in
  Alcotest.check_raises "non-increasing bounds rejected"
    (Invalid_argument "Obs.Histogram.make: buckets must be strictly increasing")
    (fun () ->
      ignore (Obs.Histogram.make ~registry:r ~buckets:[ 1.; 1. ] "bad"))

let test_prometheus_render () =
  let r = fresh () in
  let c = Obs.Counter.make ~registry:r ~help:"a counter" "c_total" in
  Obs.Counter.incr ~by:3 c;
  let h = Obs.Histogram.make ~registry:r ~buckets:[ 0.5; 2. ] "h_seconds" in
  Obs.Histogram.observe h 0.25;
  Obs.Histogram.observe h 1.;
  let text = Obs.render_prometheus ~registry:r () in
  let contains line =
    let n = String.length line and m = String.length text in
    let rec go i = i + n <= m && (String.sub text i n = line || go (i + 1)) in
    go 0
  in
  List.iter
    (fun line ->
      Alcotest.(check bool)
        (Printf.sprintf "exposition contains %S" line)
        true (contains line))
    [
      "# TYPE c_total counter";
      "# HELP c_total a counter";
      "c_total 3";
      "# TYPE h_seconds histogram";
      {|h_seconds_bucket{le="0.5"} 1|};
      {|h_seconds_bucket{le="2"} 2|};
      {|h_seconds_bucket{le="+Inf"} 2|};
      "h_seconds_sum 1.25";
      "h_seconds_count 2";
    ]

(* {1 Concurrent merges (properties)} *)

(* Per-domain increment plans: up to 4 spawned domains each applying up
   to 50 increments of up to 7.  The merged counter must equal the
   arithmetic total no matter how the domains interleave. *)
let gen_plans : int list list QCheck2.Gen.t =
  QCheck2.Gen.(list_size (int_range 1 4) (list_size (int_range 0 50) (int_range 0 7)))

let prop_concurrent_counter_merge =
  QCheck2.Test.make ~name:"concurrent counter increments all merge" ~count:50
    gen_plans (fun plans ->
      let r = fresh () in
      let c = Obs.Counter.make ~registry:r "merge_total" in
      let domains =
        List.map
          (fun plan ->
            Domain.spawn (fun () ->
                List.iter (fun by -> Obs.Counter.incr ~by c) plan))
          plans
      in
      List.iter Domain.join domains;
      Obs.Counter.value c = List.fold_left ( + ) 0 (List.concat plans))

let prop_concurrent_histogram_merge =
  QCheck2.Test.make ~name:"concurrent histogram observations all merge"
    ~count:50
    QCheck2.Gen.(
      list_size (int_range 1 4)
        (list_size (int_range 0 50) (float_range 0. 200.)))
    (fun plans ->
      let r = fresh () in
      let h =
        Obs.Histogram.make ~registry:r ~buckets:[ 1.; 10.; 100. ] "merge_h"
      in
      let domains =
        List.map
          (fun plan ->
            Domain.spawn (fun () -> List.iter (Obs.Histogram.observe h) plan))
          plans
      in
      List.iter Domain.join domains;
      let all = List.concat plans in
      let total = List.fold_left ( +. ) 0. all in
      Obs.Histogram.count h = List.length all
      && abs_float (Obs.Histogram.sum h -. total)
         <= 1e-9 *. Float.max 1. (abs_float total)
      && List.fold_left ( + ) 0 (List.map snd (Obs.Histogram.buckets h))
         = List.length all)

(* {1 Tracing} *)

let parse_trace () =
  match Service.Json.parse (Obs.Trace.to_string ()) with
  | Error msg -> Alcotest.failf "trace is not valid JSON: %s" msg
  | Ok json -> json

let events json =
  match json with
  | Service.Json.Obj fields -> (
      match List.assoc_opt "traceEvents" fields with
      | Some (Service.Json.List evs) -> evs
      | _ -> Alcotest.fail "missing traceEvents list")
  | _ -> Alcotest.fail "trace root is not an object"

let field ev name =
  match ev with
  | Service.Json.Obj fields -> List.assoc_opt name fields
  | _ -> None

let float_field ev name =
  match Option.bind (field ev name) Service.Json.to_float with
  | Some v -> v
  | None -> Alcotest.failf "event missing numeric %s" name

let string_field ev name =
  match field ev name with
  | Some (Service.Json.String s) -> s
  | _ -> Alcotest.failf "event missing string %s" name

let test_span_nesting () =
  Obs.Trace.start ();
  Obs.Span.with_ ~name:"outer" (fun () ->
      Obs.Span.with_ ~name:"inner"
        ~attrs:[ ("k", "v") ]
        (fun () -> Obs.Span.instant "mark"));
  Obs.Trace.stop ();
  let evs = events (parse_trace ()) in
  Alcotest.(check int) "three events" 3 (List.length evs);
  let by_name n =
    List.find (fun ev -> string_field ev "name" = n) evs
  in
  let outer = by_name "outer" and inner = by_name "inner" in
  let o_ts = float_field outer "ts" and o_dur = float_field outer "dur" in
  let i_ts = float_field inner "ts" and i_dur = float_field inner "dur" in
  (* the clock's float ulp at the current epoch is ~0.5us and the
     emitted ts/dur are rounded to 0.001us, so allow a whisker of
     inversion on the boundaries *)
  let eps = 1. in
  Alcotest.(check bool) "inner starts after outer" true (i_ts >= o_ts -. eps);
  Alcotest.(check bool)
    "inner ends before outer" true
    (i_ts +. i_dur <= o_ts +. o_dur +. eps);
  Alcotest.(check string)
    "complete-event phase" "X" (string_field outer "ph");
  Alcotest.(check string) "instant phase" "i" (string_field (by_name "mark") "ph");
  (* args also carry the span's identity (trace_id/span_id/parent_id),
     so look the attribute up rather than matching the whole object *)
  (match field inner "args" with
  | Some (Service.Json.Obj kvs) -> (
      match List.assoc_opt "k" kvs with
      | Some (Service.Json.String "v") -> ()
      | _ -> Alcotest.fail "inner args lost")
  | _ -> Alcotest.fail "inner args lost");
  (* same-domain events share pid/tid, and the merge sorts by ts *)
  Alcotest.(check (float 0.))
    "same thread lane"
    (float_field outer "tid")
    (float_field inner "tid");
  let ts = List.map (fun ev -> float_field ev "ts") evs in
  Alcotest.(check (list (float 0.))) "sorted by ts" (List.sort compare ts) ts

let test_span_records_on_raise () =
  Obs.Trace.start ();
  (try Obs.Span.with_ ~name:"doomed" (fun () -> failwith "boom")
   with Failure _ -> ());
  Obs.Trace.stop ();
  let evs = events (parse_trace ()) in
  Alcotest.(check int) "span recorded despite the raise" 1 (List.length evs);
  Alcotest.(check string)
    "name survives" "doomed"
    (string_field (List.hd evs) "name")

let test_trace_inactive_is_silent () =
  Obs.Trace.start ();
  Obs.Trace.stop ();
  Obs.Span.with_ ~name:"after stop" (fun () -> ());
  Alcotest.(check int)
    "no events recorded while inactive" 0
    (List.length (events (parse_trace ())))

let test_trace_escaping () =
  Obs.Trace.start ();
  Obs.Span.with_ ~name:"quote \" slash \\ ctrl \x01" (fun () -> ());
  Obs.Trace.stop ();
  let evs = events (parse_trace ()) in
  Alcotest.(check string)
    "name round-trips through JSON" "quote \" slash \\ ctrl \x01"
    (string_field (List.hd evs) "name")

let test_trace_multi_domain () =
  Obs.Trace.start ();
  let d =
    Domain.spawn (fun () -> Obs.Span.with_ ~name:"worker span" (fun () -> ()))
  in
  Obs.Span.with_ ~name:"caller span" (fun () -> Domain.join d);
  Obs.Trace.stop ();
  let evs = events (parse_trace ()) in
  Alcotest.(check int) "both domains' buffers merged" 2 (List.length evs);
  let tids =
    List.sort_uniq compare (List.map (fun ev -> float_field ev "tid") evs)
  in
  Alcotest.(check int) "distinct timeline per domain" 2 (List.length tids)

(* {1 Trace context} *)

let args_field ev name =
  match field ev "args" with
  | Some (Service.Json.Obj kvs) -> (
      match List.assoc_opt name kvs with
      | Some (Service.Json.String s) -> Some s
      | _ -> None)
  | _ -> None

let test_context_ids () =
  Obs.Trace.start ();
  let outer_ctx = ref None in
  Obs.Span.with_ ~name:"outer" (fun () ->
      outer_ctx := Obs.Context.current ();
      Obs.Span.with_ ~name:"inner" (fun () -> ()));
  Obs.Trace.stop ();
  let ctx =
    match !outer_ctx with
    | Some c -> c
    | None -> Alcotest.fail "no ambient context inside a span"
  in
  let evs = events (parse_trace ()) in
  let by_name n = List.find (fun ev -> string_field ev "name" = n) evs in
  let outer = by_name "outer" and inner = by_name "inner" in
  Alcotest.(check (option string))
    "outer's span_id is the ambient context"
    (Some ctx.Obs.Context.span_id)
    (args_field outer "span_id");
  Alcotest.(check (option string))
    "inner parents outer"
    (Some ctx.Obs.Context.span_id)
    (args_field inner "parent_id");
  Alcotest.(check (option string))
    "one trace id spans both"
    (args_field outer "trace_id")
    (args_field inner "trace_id");
  Alcotest.(check (option string))
    "outer is a root" None
    (args_field outer "parent_id")

let test_context_header_roundtrip () =
  let ctx = { Obs.Context.trace_id = "t42"; span_id = "shard_a-7" } in
  Alcotest.(check string)
    "header form" "t42/shard_a-7" (Obs.Context.to_header ctx);
  (match Obs.Context.of_header "t42/shard_a-7" with
  | Some c ->
      Alcotest.(check string) "trace id back" "t42" c.Obs.Context.trace_id;
      Alcotest.(check string) "span id back" "shard_a-7" c.Obs.Context.span_id
  | None -> Alcotest.fail "header did not parse");
  Alcotest.(check bool)
    "headers without a delimiter are rejected" true
    (Obs.Context.of_header "nodelimiter" = None)

let test_remote_parent () =
  Obs.Trace.start ();
  let remote = { Obs.Context.trace_id = "t9"; span_id = "client-1" } in
  Obs.Span.with_ ~name:"server" ~parent:remote (fun () -> ());
  Obs.Trace.stop ();
  let ev = List.hd (events (parse_trace ())) in
  Alcotest.(check (option string))
    "adopted the remote trace id" (Some "t9")
    (args_field ev "trace_id");
  Alcotest.(check (option string))
    "parents the remote span" (Some "client-1")
    (args_field ev "parent_id")

let test_trace_node_metadata () =
  Obs.Trace.set_node "unit_test";
  Fun.protect
    ~finally:(fun () -> Obs.Trace.set_node "main")
    (fun () ->
      Obs.Trace.start ();
      Obs.Span.with_ ~name:"a" (fun () -> ());
      Obs.Trace.stop ();
      let json = parse_trace () in
      (match json with
      | Service.Json.Obj fields ->
          (match List.assoc_opt "node" fields with
          | Some (Service.Json.String "unit_test") -> ()
          | _ -> Alcotest.fail "node member missing");
          (match List.assoc_opt "epoch_s" fields with
          | Some (Service.Json.Float _) | Some (Service.Json.Int _) -> ()
          | _ -> Alcotest.fail "epoch_s member missing")
      | _ -> Alcotest.fail "trace root is not an object");
      let ev = List.hd (events json) in
      (* [start] resets the id counter: the root's trace_id consumes id
         1, the span itself id 2 — deterministic run to run *)
      Alcotest.(check (option string))
        "span ids are node-qualified and reset by start"
        (Some "unit_test-2")
        (args_field ev "span_id"))

(* {1 Cross-process merging} *)

let trace_doc ~node ~epoch evs =
  Printf.sprintf
    {|{"traceEvents": [%s], "displayTimeUnit": "ms", "node": "%s", "epoch_s": %f}|}
    (String.concat ", " evs) node epoch

let test_merge_alignment () =
  let a =
    trace_doc ~node:"client" ~epoch:100.
      [
        {|{"name": "root", "cat": "span", "ph": "X", "ts": 0, "dur": 10, "pid": 1, "tid": 1}|};
      ]
  in
  let b =
    trace_doc ~node:"shard" ~epoch:100.5
      [
        {|{"name": "child", "cat": "span", "ph": "X", "ts": 0, "dur": 5, "pid": 1, "tid": 1}|};
      ]
  in
  let merged =
    Obs.Trace_merge.merge
      [ Obs.Trace_merge.read_string a; Obs.Trace_merge.read_string b ]
  in
  match Service.Json.parse merged with
  | Error msg -> Alcotest.failf "merged trace is not valid JSON: %s" msg
  | Ok json ->
      let evs = events json in
      (* two process_name metadata rows + the two real events *)
      Alcotest.(check int) "four events" 4 (List.length evs);
      let named n = List.find (fun ev -> string_field ev "name" = n) evs in
      let root = named "root" and child = named "child" in
      Alcotest.(check (float 1e-6))
        "child shifted by the epoch delta (0.5s in us)" 500000.
        (float_field child "ts" -. float_field root "ts");
      Alcotest.(check bool)
        "processes get distinct pids" true
        (float_field root "pid" <> float_field child "pid");
      let metas =
        List.filter (fun ev -> string_field ev "ph" = "M") evs
      in
      Alcotest.(check int) "one process_name row each" 2 (List.length metas)

let test_merge_rejects_garbage () =
  match Obs.Trace_merge.read_string "not json at all" with
  | exception Obs.Trace_merge.Parse_error _ -> ()
  | _ -> Alcotest.fail "garbage accepted"

(* {1 Structured logs} *)

let test_log_lines () =
  let path = Filename.temp_file "obs_log" ".jsonl" in
  let oc = open_out path in
  Obs.Log.set_output (Some oc);
  Obs.Trace.start ();
  Obs.Span.with_ ~name:"op" (fun () ->
      Obs.Log.emit ~fields:[ ("k", "v") ] "test.event");
  Obs.Trace.stop ();
  Obs.Log.set_output None;
  close_out oc;
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  Sys.remove path;
  match Service.Json.parse line with
  | Error msg -> Alcotest.failf "log line is not valid JSON: %s" msg
  | Ok json ->
      let str name =
        Option.bind (Service.Json.member name json) Service.Json.to_str
      in
      Alcotest.(check (option string))
        "event name" (Some "test.event") (str "event");
      Alcotest.(check (option string)) "field kept" (Some "v") (str "k");
      Alcotest.(check bool)
        "correlated to the enclosing span" true
        (str "span_id" <> None && str "trace_id" <> None)

let test_gc_gauges () =
  Obs.sample_gc ();
  match Obs.find "runtime_gc_heap_words" with
  | Some { Obs.value = Obs.Gauge_value v; _ } ->
      Alcotest.(check bool) "heap gauge is positive" true (v > 0.)
  | _ -> Alcotest.fail "runtime_gc_heap_words not registered"

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_concurrent_counter_merge; prop_concurrent_histogram_merge ]

let () =
  Alcotest.run "obs"
    [
      ( "registry",
        [
          Alcotest.test_case "counter basics" `Quick test_counter_basics;
          Alcotest.test_case "kind clash" `Quick test_kind_clash;
          Alcotest.test_case "gauge last write wins" `Quick
            test_gauge_last_write_wins;
          Alcotest.test_case "muting" `Quick test_muting;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "bucket boundaries" `Quick
            test_histogram_boundaries;
          Alcotest.test_case "bad buckets" `Quick test_histogram_bad_buckets;
          Alcotest.test_case "prometheus exposition" `Quick
            test_prometheus_render;
        ] );
      ("concurrency", qcheck_cases);
      ( "tracing",
        [
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "records on raise" `Quick
            test_span_records_on_raise;
          Alcotest.test_case "inactive is silent" `Quick
            test_trace_inactive_is_silent;
          Alcotest.test_case "escaping" `Quick test_trace_escaping;
          Alcotest.test_case "multi-domain merge" `Quick
            test_trace_multi_domain;
        ] );
      ( "context",
        [
          Alcotest.test_case "span identity wiring" `Quick test_context_ids;
          Alcotest.test_case "header roundtrip" `Quick
            test_context_header_roundtrip;
          Alcotest.test_case "remote parent" `Quick test_remote_parent;
          Alcotest.test_case "node and epoch metadata" `Quick
            test_trace_node_metadata;
        ] );
      ( "merge",
        [
          Alcotest.test_case "epoch alignment and pids" `Quick
            test_merge_alignment;
          Alcotest.test_case "rejects garbage" `Quick
            test_merge_rejects_garbage;
        ] );
      ( "logs-gc",
        [
          Alcotest.test_case "log lines carry span ids" `Quick
            test_log_lines;
          Alcotest.test_case "gc gauges" `Quick test_gc_gauges;
        ] );
    ]
