The distributed service pieces that are deterministic enough for a cram
test: the persistent verdict journal over the stdio conversation, and
the route debug op resolved without any analysis running.

  $ cat > light.aadl <<'AADL'
  > processor cpu
  > properties
  >   Scheduling_Protocol => RATE_MONOTONIC_PROTOCOL;
  > end cpu;
  > thread t1
  > properties
  >   Dispatch_Protocol => Periodic;
  >   Period => 4 ms;
  >   Compute_Execution_Time => 1 ms;
  >   Compute_Deadline => 4 ms;
  > end t1;
  > system s
  > end s;
  > system implementation s.impl
  > subcomponents
  >   cpu1: processor cpu;
  >   a: thread t1;
  > properties
  >   Actual_Processor_Binding => reference (cpu1) applies to a;
  > end s.impl;
  > AADL

A first serve session analyzes the model (a cache miss) and journals
the verdict:

  $ echo '{"id":"first","file":"light.aadl"}' \
  >   | aadl_sched serve --journal verdicts.journal \
  >   | sed -E 's/"wall_s":[0-9.e+-]+/"wall_s":T/'
  {"id":"first","verdict":"schedulable","states":7,"cached":false,"degraded":false,"wall_s":T}

The journal now exists and starts with its magic header:

  $ head -c 8 verdicts.journal && echo
  AADLJRN1

A second session — a fresh process — replays the journal into its cache
before reading requests, so the same model is answered as a cache hit
without re-exploring:

  $ echo '{"id":"again","file":"light.aadl"}' \
  >   | aadl_sched serve --journal verdicts.journal \
  >   | sed -E 's/"wall_s":[0-9.e+-]+/"wall_s":T/'
  {"id":"again","verdict":"schedulable","states":7,"cached":true,"degraded":false,"wall_s":T}

Stats confirm it: one hit, zero misses, the entry was already there.

  $ printf '%s\n%s\n' \
  >   '{"id":"warm","file":"light.aadl"}' '{"op":"stats"}' \
  >   | aadl_sched serve --journal verdicts.journal \
  >   | sed -E 's/"wall_s":[0-9.e+-]+/"wall_s":T/'
  {"id":"warm","verdict":"schedulable","states":7,"cached":true,"degraded":false,"wall_s":T}
  {"hits":1,"misses":0,"evictions":0,"size":1,"capacity":256,"novel_misses":0,"options_only_misses":0,"changed_components":{}}

A router over stdio answers the route op — which shard of the ring owns
the request's cache key — without contacting any shard.  (The shards
listed here don't exist; routing is pure hashing.)

  $ echo '{"op":"route","id":"r","file":"light.aadl"}' \
  >   | aadl_sched serve --route-to unix:/tmp/s0.sock,unix:/tmp/s1.sock \
  >   | sed -E 's/"key":"[0-9a-f]+"/"key":"H"/'
  {"shard":"unix:/tmp/s1.sock","key":"H"}

And the same request always routes to the same shard:

  $ echo '{"op":"route","id":"r2","file":"light.aadl"}' \
  >   | aadl_sched serve --route-to unix:/tmp/s0.sock,unix:/tmp/s1.sock \
  >   | sed -E 's/"key":"[0-9a-f]+"/"key":"H"/'
  {"shard":"unix:/tmp/s1.sock","key":"H"}

The health op reports liveness, queue depth, the cache's hit ratio, and
— when a journal is attached — the journal's size and replay counters
(volatile values normalized away):

  $ echo '{"op":"health"}' \
  >   | aadl_sched serve --journal verdicts.journal \
  >   | sed -E 's/"uptime_s":[0-9.e+-]+/"uptime_s":T/; s/"gc":\{[^}]*\}/"gc":G/; s/"bytes":[0-9]+/"bytes":B/'
  {"ok":true,"endpoint":"serve","uptime_s":T,"queue_depth":0.0,"cache":{"hits":0,"misses":0,"size":1,"capacity":256,"hit_ratio":0.0},"gc":G,"role":"shard","journal":{"path":"verdicts.journal","bytes":B,"records":1,"live":1,"compactions":0,"last_compaction_s":null,"replayed":1}}

A lone serve endpoint also answers cluster-stats, presenting itself as
a one-shard cluster in the same shape a router reports:

  $ echo '{"op":"cluster-stats"}' \
  >   | aadl_sched serve \
  >   | python3 -c 'import json,sys; d=json.load(sys.stdin); print(d["reachable"], d["shard_count"], d["shards"]["service"]["reachable"], sorted(d["shards"]["service"]["health"]["cache"]))'
  1 1 True ['capacity', 'hit_ratio', 'hits', 'misses', 'size']
