The observability surface: span tracing behind --trace, the metrics
registry behind --stats, and the serve 'metrics' op.  Values vary from
run to run, so these tests pin the stable part of the contract: metric
and span names, event shape, and where each rendering appears.

  $ cat > light.aadl <<'AADL'
  > processor cpu
  > properties
  >   Scheduling_Protocol => RATE_MONOTONIC_PROTOCOL;
  > end cpu;
  > thread t1
  > properties
  >   Dispatch_Protocol => Periodic;
  >   Period => 4 ms;
  >   Compute_Execution_Time => 1 ms;
  >   Compute_Deadline => 4 ms;
  > end t1;
  > thread t2
  > properties
  >   Dispatch_Protocol => Periodic;
  >   Period => 6 ms;
  >   Compute_Execution_Time => 2 ms;
  >   Compute_Deadline => 6 ms;
  > end t2;
  > system s
  > end s;
  > system implementation s.impl
  > subcomponents
  >   cpu1: processor cpu;
  >   a: thread t1;
  >   b: thread t2;
  > properties
  >   Actual_Processor_Binding => reference (cpu1) applies to a;
  >   Actual_Processor_Binding => reference (cpu1) applies to b;
  > end s.impl;
  > AADL

--trace writes a Chrome trace_event file and says so on stderr; the
analysis output itself is unchanged:

  $ aadl_sched analyze light.aadl --trace out.json 2>&1 | sed 's/([0-9.]*s)/(TIME)/'
  2 thread processes, 2 dispatchers, 0 queues, 0 stimuli; 12 definitions; quantum 1 ms
  state space: 27 states, 30 transitions (prioritized semantics, on-the-fly) (TIME)
  schedulable: all deadlines are met
  trace written to out.json

The trace covers the whole pipeline — load (parse + instantiate),
translation (plan, compose, one realize per fragment), and the
exploration — under stable span names:

  $ head -1 out.json
  {"traceEvents": [
  $ grep -o '"name": "[^"]*"' out.json | sort -u
  "name": "explore"
  "name": "instantiate"
  "name": "load"
  "name": "lts.check"
  "name": "parse"
  "name": "translate.compose"
  "name": "translate.plan"
  "name": "translate.realize"

Every event carries the complete ("X") or instant ("i") phase and a
timestamp:

  $ grep -c '"ph": "[Xi]"' out.json
  9
  $ grep -c '"ts": ' out.json
  9

--stats renders the full registry, one metric per line, sorted — the
same names the Prometheus exposition and the serve 'metrics' op use:

  $ aadl_sched analyze light.aadl --stats | sed -n '/== metrics ==/,$p' | awk 'NR>1 {print $1}'
  analysis_sensitivity_probes_total
  runtime_gc_allocated_words
  runtime_gc_compactions
  runtime_gc_heap_words
  runtime_gc_major_collections
  runtime_gc_minor_collections
  runtime_gc_top_heap_words
  service_job_run_seconds
  service_job_wait_seconds
  service_jobs_degraded_total
  service_jobs_total
  service_miss_novel_total
  service_miss_options_only_total
  service_queue_depth
  service_verdict_cache_evictions_total
  service_verdict_cache_hits_total
  service_verdict_cache_misses_total
  service_verdict_cache_size
  translate_fragments_realized_total
  translate_fragments_reused_total
  translate_plans_total
  versa_canon_seconds
  versa_explore_deadline_expired_total
  versa_explore_deadlocks_total
  versa_explore_depth_levels
  versa_explore_early_exit_depth
  versa_explore_frontier_size
  versa_explore_peak_frontier
  versa_explore_runs_total
  versa_explore_states_per_sec
  versa_explore_states_total
  versa_explore_transitions_total
  versa_explore_wall_seconds
  versa_hashcons_nodes
  versa_intern_hits_total
  versa_intern_misses_total
  versa_orbit_hits_total
  versa_orbit_misses_total
  versa_orbit_size
  versa_pool_worker_failures_total
  versa_prefetch_hits_total
  versa_prefetch_misses_total
  versa_shard_contention_ratio
  versa_shard_contention_total
  versa_steal_attempts_total
  versa_steals_total
  versa_store_bytes
  versa_ws_queue_depth

The serve loop answers {"op":"metrics"} with the registry as JSON plus
the Prometheus text exposition.  The counter names are the contract:

  $ printf '%s\n' '{"op":"metrics"}' '{"op":"quit"}' \
  > | aadl_sched serve 2>/dev/null | sed -n '1p' > metrics.json
  $ grep -o '"[a-z_]*_total"' metrics.json | sort -u
  "analysis_sensitivity_probes_total"
  "service_jobs_degraded_total"
  "service_jobs_total"
  "service_miss_novel_total"
  "service_miss_options_only_total"
  "service_verdict_cache_evictions_total"
  "service_verdict_cache_hits_total"
  "service_verdict_cache_misses_total"
  "translate_fragments_realized_total"
  "translate_fragments_reused_total"
  "translate_plans_total"
  "versa_explore_deadline_expired_total"
  "versa_explore_deadlocks_total"
  "versa_explore_runs_total"
  "versa_explore_states_total"
  "versa_explore_transitions_total"
  "versa_intern_hits_total"
  "versa_intern_misses_total"
  "versa_orbit_hits_total"
  "versa_orbit_misses_total"
  "versa_pool_worker_failures_total"
  "versa_prefetch_hits_total"
  "versa_prefetch_misses_total"
  "versa_shard_contention_total"
  "versa_steal_attempts_total"
  "versa_steals_total"

Histogram values carry buckets keyed by upper bound, and the
exposition rides along in the same response:

  $ grep -o '"versa_explore_wall_seconds":{"sum":[^,]*,"count":[0-9]*,"buckets":{"0.001":' metrics.json | sed 's/:[0-9.e+-]*,/:N,/'
  "versa_explore_wall_seconds":{"sum":N,"count":0,"buckets":{"0.001":
  $ grep -c '"prometheus":"# HELP' metrics.json
  1

Spans carry propagation identity in their args — a trace_id shared down
the tree, a span_id per span, and a parent_id on every non-root — and
the document records the emitting node and its epoch so trace-merge can
align files from different processes:

  $ grep -c '"trace_id": "' out.json
  9
  $ grep -o '"node": "[a-z]*"' out.json
  "node": "main"
  $ grep -c '"epoch_s": ' out.json
  1

trace-merge stitches per-process trace files into one view, assigning
each input a pid and a process_name track:

  $ aadl_sched trace-merge -o merged.json out.json
  trace-merge: 1 processes, 9 events -> merged.json
  $ head -1 merged.json
  {"traceEvents": [
  $ grep -c '"process_name"' merged.json
  1

The complete metric-name catalogue.  `make lint-invariants` greps the
statically-named metrics out of lib/, bin/ and bench/ and fails the
build on any name missing from this file, so a new metric cannot ship
unpinned (per-shard names are templated at runtime and exempt):

  $ cat > catalogue <<'EOF'
  > analysis_sensitivity_probes_total
  > runtime_gc_allocated_words
  > runtime_gc_compactions
  > runtime_gc_heap_words
  > runtime_gc_major_collections
  > runtime_gc_minor_collections
  > runtime_gc_top_heap_words
  > service_job_run_seconds
  > service_job_wait_seconds
  > service_jobs_degraded_total
  > service_jobs_total
  > service_miss_novel_total
  > service_miss_options_only_total
  > service_queue_depth
  > service_route_failovers_total
  > service_route_requests_total
  > service_route_retries_total
  > service_verdict_cache_evictions_total
  > service_verdict_cache_hits_total
  > service_verdict_cache_misses_total
  > service_verdict_cache_size
  > translate_fragments_realized_total
  > translate_fragments_reused_total
  > translate_plans_total
  > versa_canon_seconds
  > versa_explore_deadline_expired_total
  > versa_explore_deadlocks_total
  > versa_explore_depth_levels
  > versa_explore_early_exit_depth
  > versa_explore_frontier_size
  > versa_explore_peak_frontier
  > versa_explore_runs_total
  > versa_explore_states_per_sec
  > versa_explore_states_total
  > versa_explore_transitions_total
  > versa_explore_wall_seconds
  > versa_hashcons_nodes
  > versa_intern_hits_total
  > versa_intern_misses_total
  > versa_orbit_hits_total
  > versa_orbit_misses_total
  > versa_orbit_size
  > versa_pool_worker_failures_total
  > versa_prefetch_hits_total
  > versa_prefetch_misses_total
  > versa_shard_contention_ratio
  > versa_shard_contention_total
  > versa_steal_attempts_total
  > versa_steals_total
  > versa_store_bytes
  > versa_ws_queue_depth
  > EOF
  $ sort -cu catalogue && wc -l < catalogue
  51
