The analysis service: a JSON-lines manifest pushed through the batch
scheduler and verdict cache.

  $ cat > light.aadl <<'AADL'
  > processor cpu
  > properties
  >   Scheduling_Protocol => RATE_MONOTONIC_PROTOCOL;
  > end cpu;
  > thread t1
  > properties
  >   Dispatch_Protocol => Periodic;
  >   Period => 4 ms;
  >   Compute_Execution_Time => 1 ms;
  >   Compute_Deadline => 4 ms;
  > end t1;
  > thread t2
  > properties
  >   Dispatch_Protocol => Periodic;
  >   Period => 6 ms;
  >   Compute_Execution_Time => 2 ms;
  >   Compute_Deadline => 6 ms;
  > end t2;
  > system s
  > end s;
  > system implementation s.impl
  > subcomponents
  >   cpu1: processor cpu;
  >   a: thread t1;
  >   b: thread t2;
  > properties
  >   Actual_Processor_Binding => reference (cpu1) applies to a;
  >   Actual_Processor_Binding => reference (cpu1) applies to b;
  > end s.impl;
  > AADL

The manifest: the same model twice (the duplicate must be served from
the cache, with the identical verdict), an EDF variant (a different
cache key), and a zero wall-clock budget entry that must degrade to the
analytic verdict instead of exploring.

  $ cat > manifest.jsonl <<'EOF'
  > # comment lines and blanks are skipped
  > {"id":"a", "file":"light.aadl"}
  > {"id":"dup", "file":"light.aadl"}
  > 
  > {"id":"edf", "file":"light.aadl", "protocol":"edf"}
  > {"id":"starved", "file":"light.aadl", "timeout_s":0}
  > EOF

  $ aadl_sched batch manifest.jsonl 2>summary.txt | sed -E 's/"wall_s":[0-9.e+-]+/"wall_s":T/'
  {"id":"a","verdict":"schedulable","states":27,"cached":false,"degraded":false,"wall_s":T}
  {"id":"dup","verdict":"schedulable","states":27,"cached":true,"degraded":false,"wall_s":T}
  {"id":"edf","verdict":"schedulable","states":27,"cached":false,"degraded":false,"wall_s":T}
  {"id":"starved","verdict":"bounded","analytic_schedulable":true,"method":"RTA","states":1,"cached":false,"degraded":true,"wall_s":T}

The run summary is one machine-readable JSON object on stderr — the
duplicate cost one cache hit, not a second exploration:

  $ sed -E 's/"wall_s":[0-9.e+-]+/"wall_s":T/' summary.txt
  {"jobs":4,"verdicts":{"schedulable":3,"not_schedulable":0,"bounded":1,"unknown":0,"cancelled":0,"error":0},"wall_s":T,"cache":{"hits":1,"misses":3,"evictions":0,"size":3,"capacity":256},"misses":{"novel":1,"options_only":0,"changed_components":{"thread:a":2,"thread:b":2}}}

`--stats` adds the human-readable lines (and the metrics registry)
after the JSON summary:

  $ aadl_sched batch manifest.jsonl --stats 2>&1 >/dev/null \
  >   | sed -E -e 's/"wall_s":[0-9.e+-]+/"wall_s":T/' -e 's/in [0-9.]+s/in TIME/' \
  >   | head -4
  {"jobs":4,"verdicts":{"schedulable":3,"not_schedulable":0,"bounded":1,"unknown":0,"cancelled":0,"error":0},"wall_s":T,"cache":{"hits":1,"misses":3,"evictions":0,"size":3,"capacity":256},"misses":{"novel":1,"options_only":0,"changed_components":{"thread:a":2,"thread:b":2}}}
  batch: 4 jobs (3 schedulable, 0 not schedulable, 1 bounded, 0 unknown, 0 cancelled, 0 errors) in TIME
  cache: 1 hits, 3 misses, 0 evictions, size 3/256
  misses: 1 novel, 0 options-only; changed: thread:a (2), thread:b (2)

An unschedulable model carries its raised failing scenario in the JSON
outcome (the same scenario `analyze` prints):

  $ sed -e 's/Period => 4 ms;/Period => 5 ms;/' \
  >     -e 's/Period => 6 ms;/Period => 7 ms;/' \
  >     -e 's/Compute_Deadline => 4 ms;/Compute_Deadline => 5 ms;/' \
  >     -e 's/Compute_Deadline => 6 ms;/Compute_Deadline => 7 ms;/' \
  >     -e 's/Compute_Execution_Time => 2 ms;/Compute_Execution_Time => 4 ms;/' \
  >     -e 's/Compute_Execution_Time => 1 ms;/Compute_Execution_Time => 2 ms;/' \
  >     light.aadl > crossover.aadl
  $ echo '{"id":"cross", "file":"crossover.aadl"}' > cross.jsonl
  $ aadl_sched batch cross.jsonl 2>/dev/null | sed -E 's/"wall_s":[0-9.e+-]+/"wall_s":T/'
  {"id":"cross","verdict":"not_schedulable","violation_time":7,"scenario":"t=0   dispatch a; dispatch b; run on cpu1\nt=1    run on cpu1\nt=2   complete a; run on cpu1\nt=3    run on cpu1\nt=4    run on cpu1\nt=5   dispatch a; run on cpu1\nt=6    run on cpu1\nt=7   complete a; DEADLOCK: timing violation","states":14,"cached":false,"degraded":false,"wall_s":T}

A missing model file is an error outcome and exit code 1, not a crash;
a malformed manifest is exit code 2:

  $ echo '{"id":"ghost", "file":"missing.aadl"}' > ghost.jsonl
  $ aadl_sched batch ghost.jsonl 2>/dev/null | sed -E 's/"wall_s":[0-9.e+-]+/"wall_s":T/'
  {"id":"ghost","verdict":"error","reason":"./missing.aadl: No such file or directory","states":0,"cached":false,"degraded":false,"wall_s":T}
  $ echo 'not json' > broken.jsonl
  $ aadl_sched batch broken.jsonl
  manifest error: line 1: expected null at offset 0
  [2]

The serve loop answers one JSON line per request on stdin — the same
schema as the manifest — plus stats and quit ops:

  $ printf '%s\n' \
  >   '{"id":"r1", "file":"light.aadl"}' \
  >   '{"id":"r2", "file":"light.aadl"}' \
  >   '{"op":"stats"}' \
  >   'garbage' \
  >   '{"op":"quit"}' \
  > | aadl_sched serve | sed -E 's/"wall_s":[0-9.e+-]+/"wall_s":T/'
  {"id":"r1","verdict":"schedulable","states":27,"cached":false,"degraded":false,"wall_s":T}
  {"id":"r2","verdict":"schedulable","states":27,"cached":true,"degraded":false,"wall_s":T}
  {"hits":1,"misses":1,"evictions":0,"size":1,"capacity":256,"novel_misses":1,"options_only_misses":0,"changed_components":{}}
  {"error":"unexpected 'g' at offset 0"}
  {"ok":true}
