Modes, hierarchical scheduling, XML interchange, and error handling.

  $ cat > modal.aadl <<'AADL'
  > processor cpu
  > properties
  >   Scheduling_Protocol => RATE_MONOTONIC_PROTOCOL;
  > end cpu;
  > thread ctl
  > features
  >   alarm: out event port;
  > properties
  >   Dispatch_Protocol => Periodic;
  >   Period => 10 ms;
  >   Compute_Execution_Time => 2 ms;
  >   Compute_Deadline => 10 ms;
  > end ctl;
  > thread work
  > properties
  >   Dispatch_Protocol => Periodic;
  >   Period => 10 ms;
  >   Compute_Execution_Time => 6 ms;
  >   Compute_Deadline => 10 ms;
  > end work;
  > system s
  > end s;
  > system implementation s.impl
  > subcomponents
  >   cpu1: processor cpu;
  >   c: thread ctl;
  >   wn: thread work in modes (nominal);
  >   wd: thread work in modes (degraded);
  > modes
  >   nominal: initial mode;
  >   degraded: mode;
  >   nominal -[ c.alarm ]-> degraded;
  > properties
  >   Actual_Processor_Binding => reference (cpu1) applies to c;
  >   Actual_Processor_Binding => reference (cpu1) applies to wn;
  >   Actual_Processor_Binding => reference (cpu1) applies to wd;
  > end s.impl;
  > AADL

Both workers would overload the processor together; mode exclusion keeps
the system schedulable:

  $ aadl_sched analyze modal.aadl | tail -n 1
  schedulable: all deadlines are met

The instance model exports to XML and every subcommand accepts it back:

  $ aadl_sched info modal.aadl --export-xml modal.xml | head -n 1
  instance model written to modal.xml
  $ aadl_sched analyze modal.xml | tail -n 1
  schedulable: all deadlines are met

Parse errors carry positions and a non-zero exit:

  $ printf 'thread t\nfeatures\n  zap zap;\nend t;\n' > bad.aadl
  $ aadl_sched check bad.aadl
  syntax error (line 3, col 7): expected ':' after feature name but found identifier "zap"
  [2]

  $ printf 'X = {(cpu,} : NIL;\n' > bad.acsr
  $ aadl_sched acsr bad.acsr
  parse error (line 1): expected an expression, found '}'
  [2]

Sensitivity from the CLI (breakdown execution times):

  $ aadl_sched sensitivity modal.aadl --thread wn
  wn: cet 3, breakdown 4 (slack 1 quanta)
    4 probes: 10 fragments rebuilt, 6 reused
