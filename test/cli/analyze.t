A schedulable two-task model under rate-monotonic priorities:

  $ cat > light.aadl <<'AADL'
  > processor cpu
  > properties
  >   Scheduling_Protocol => RATE_MONOTONIC_PROTOCOL;
  > end cpu;
  > thread t1
  > properties
  >   Dispatch_Protocol => Periodic;
  >   Period => 4 ms;
  >   Compute_Execution_Time => 1 ms;
  >   Compute_Deadline => 4 ms;
  > end t1;
  > thread t2
  > properties
  >   Dispatch_Protocol => Periodic;
  >   Period => 6 ms;
  >   Compute_Execution_Time => 2 ms;
  >   Compute_Deadline => 6 ms;
  > end t2;
  > system s
  > end s;
  > system implementation s.impl
  > subcomponents
  >   cpu1: processor cpu;
  >   a: thread t1;
  >   b: thread t2;
  > properties
  >   Actual_Processor_Binding => reference (cpu1) applies to a;
  >   Actual_Processor_Binding => reference (cpu1) applies to b;
  > end s.impl;
  > AADL

  $ aadl_sched check light.aadl
  model is well-formed

  $ aadl_sched analyze light.aadl | sed 's/([0-9.]*s)/(TIME)/'
  2 thread processes, 2 dispatchers, 0 queues, 0 stimuli; 12 definitions; quantum 1 ms
  state space: 27 states, 30 transitions (prioritized semantics, on-the-fly) (TIME)
  schedulable: all deadlines are met

The full engine materializes the graph and reports the same verdict and
counts:

  $ aadl_sched analyze light.aadl --engine full | sed 's/([0-9.]*s)/(TIME)/'
  2 thread processes, 2 dispatchers, 0 queues, 0 stimuli; 12 definitions; quantum 1 ms
  state space: 27 states, 30 transitions (prioritized semantics) (TIME)
  schedulable: all deadlines are met

The RM/EDF crossover set (U = 0.971, above the Liu-Layland bound): RM
misses t2's first deadline and the failing scenario is raised to AADL
terms; EDF schedules the same set.

  $ sed -e 's/Period => 4 ms;/Period => 5 ms;/' \
  >     -e 's/Period => 6 ms;/Period => 7 ms;/' \
  >     -e 's/Compute_Deadline => 4 ms;/Compute_Deadline => 5 ms;/' \
  >     -e 's/Compute_Deadline => 6 ms;/Compute_Deadline => 7 ms;/' \
  >     -e 's/Compute_Execution_Time => 2 ms;/Compute_Execution_Time => 4 ms;/' \
  >     -e 's/Compute_Execution_Time => 1 ms;/Compute_Execution_Time => 2 ms;/' \
  >     light.aadl > crossover.aadl

  $ aadl_sched analyze crossover.aadl | sed 's/([0-9.]*s)/(TIME)/'
  2 thread processes, 2 dispatchers, 0 queues, 0 stimuli; 12 definitions; quantum 1 ms
  state space: 14 states, 14 transitions (prioritized semantics, on-the-fly) (TIME)
  NOT schedulable: timing violation at t=7; failing scenario:
  t=0   dispatch a; dispatch b; run on cpu1
  t=1    run on cpu1
  t=2   complete a; run on cpu1
  t=3    run on cpu1
  t=4    run on cpu1
  t=5   dispatch a; run on cpu1
  t=6    run on cpu1
  t=7   complete a; DEADLOCK: timing violation

  $ aadl_sched analyze crossover.aadl -p edf | tail -n 1
  schedulable: all deadlines are met

Under --virtual-time the analysis runs on the simulated clock: every
clock observation advances virtual time by 1 ms, so the --timeout
budget expires after a fixed number of observations and the truncation
point is bit-reproducible (the same 225 states on every run, on any
machine) while the command itself completes in wall-clock milliseconds:

  $ aadl_sched analyze ../../examples/models/avionics.aadl \
  >   --timeout 0.5 --virtual-time | sed 's/([0-9.]*s)/(TIME)/'
  8 thread processes, 8 dispatchers, 0 queues, 0 stimuli; 48 definitions; quantum 1 ms
  state space: 225 states, 801 transitions [truncated] (prioritized semantics, on-the-fly) (TIME)
  inconclusive: wall-clock budget expired after 225 states

The generated ACSR model round-trips through the concrete syntax:

  $ aadl_sched translate light.aadl -o light.acsr
  ACSR model written to light.acsr
  $ aadl_sched acsr light.acsr | head -n 2
  27 states, 30 transitions (prioritized semantics)
  deadlock-free
