Orbit (symmetry) reduction on the CLI.  Four EDF threads identical up
to their names: the translation detects one orbit class, the default
exploration visits only the canonical representatives, and --symmetry
off recovers the raw space.  Verdicts agree either way.

  $ cat > family.aadl <<'AADL'
  > processor cpu
  > properties
  >   Scheduling_Protocol => EDF_PROTOCOL;
  > end cpu;
  > thread worker
  > properties
  >   Dispatch_Protocol => Periodic;
  >   Period => 5 ms;
  >   Compute_Execution_Time => 1 ms;
  >   Compute_Deadline => 5 ms;
  > end worker;
  > system s
  > end s;
  > system implementation s.impl
  > subcomponents
  >   cpu1: processor cpu;
  >   w1: thread worker;
  >   w2: thread worker;
  >   w3: thread worker;
  >   w4: thread worker;
  > properties
  >   Actual_Processor_Binding => reference (cpu1) applies to w1;
  >   Actual_Processor_Binding => reference (cpu1) applies to w2;
  >   Actual_Processor_Binding => reference (cpu1) applies to w3;
  >   Actual_Processor_Binding => reference (cpu1) applies to w4;
  > end s.impl;
  > AADL

The reduced space: one representative per permutation of the four
interchangeable workers.

  $ aadl_sched analyze family.aadl | sed 's/([0-9.]*s)/(TIME)/'
  4 thread processes, 4 dispatchers, 0 queues, 0 stimuli; 24 definitions; quantum 1 ms
  state space: 17 states, 29 transitions (prioritized semantics, on-the-fly) (TIME)
  schedulable: all deadlines are met

The raw space, for comparison:

  $ aadl_sched analyze family.aadl --symmetry off | sed 's/([0-9.]*s)/(TIME)/'
  4 thread processes, 4 dispatchers, 0 queues, 0 stimuli; 24 definitions; quantum 1 ms
  state space: 78 states, 129 transitions (prioritized semantics, on-the-fly) (TIME)
  schedulable: all deadlines are met

The orbit tallies surface in --stats (hits = successors folded onto an
already-canonical sibling's orbit):

  $ aadl_sched analyze family.aadl --stats 2>&1 | grep orbit
  versa_orbit_hits_total 21
  versa_orbit_misses_total 14
  versa_orbit_size count=1 sum=4

An unschedulable variant: the de-canonicalized failing scenario names
the model's real threads, and the verdict matches the raw exploration.

  $ cat > overload.aadl <<'AADL'
  > processor cpu
  > properties
  >   Scheduling_Protocol => EDF_PROTOCOL;
  > end cpu;
  > thread worker
  > properties
  >   Dispatch_Protocol => Periodic;
  >   Period => 3 ms;
  >   Compute_Execution_Time => 1 ms;
  >   Compute_Deadline => 3 ms;
  > end worker;
  > system s
  > end s;
  > system implementation s.impl
  > subcomponents
  >   cpu1: processor cpu;
  >   w1: thread worker;
  >   w2: thread worker;
  >   w3: thread worker;
  >   w4: thread worker;
  > properties
  >   Actual_Processor_Binding => reference (cpu1) applies to w1;
  >   Actual_Processor_Binding => reference (cpu1) applies to w2;
  >   Actual_Processor_Binding => reference (cpu1) applies to w3;
  >   Actual_Processor_Binding => reference (cpu1) applies to w4;
  > end s.impl;
  > AADL

  $ aadl_sched analyze overload.aadl | sed 's/([0-9.]*s)/(TIME)/'
  4 thread processes, 4 dispatchers, 0 queues, 0 stimuli; 24 definitions; quantum 1 ms
  state space: 16 states, 27 transitions (prioritized semantics, on-the-fly) (TIME)
  NOT schedulable: timing violation at t=3; failing scenario:
  t=0   dispatch w1; dispatch w2; dispatch w3; dispatch w4; run on cpu1
  t=1   complete w1; run on cpu1
  t=2   complete w2; run on cpu1
  t=3   dispatch w1; dispatch w2; complete w3; dispatch w3; DEADLOCK: timing violation

  $ aadl_sched analyze overload.aadl --symmetry off >/dev/null 2>&1; echo $?
  1
