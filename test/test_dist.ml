(* Tests for the distributed service tier: the verdict journal (CRC
   framing, torn-tail and corrupt-record recovery, compaction
   equivalence, warm restarts), the router/shard protocol on the
   simulated fault fabric (routing correctness, seeded fault-matrix
   qcheck with bit-identical replay, healing partitions, mid-batch
   shard restart), and the socket transport on loopback (address
   parsing, framing, timeouts, the same protocol suite over real
   fds). *)

let outcome ?(verdict = Service.Job.Schedulable) ?(states = 7) id =
  {
    Service.Job.id;
    verdict;
    states;
    cached = false;
    degraded = false;
    wall_s = 0.125;
  }

let temp_path suffix =
  let path = Filename.temp_file "aadl_dist" suffix in
  Sys.remove path;
  path

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s)

let journal_exn = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "journal: %s" msg

(* {1 Journal} *)

let test_journal_roundtrip () =
  let path = temp_path ".journal" in
  let j, r = journal_exn (Service.Journal.open_ path) in
  Alcotest.(check int) "fresh journal is empty" 0 (List.length r.replayed);
  Service.Journal.append j ~key:"k1" (outcome "a");
  Service.Journal.append j ~key:"k2"
    (outcome
       ~verdict:
         (Service.Job.Not_schedulable
            { violation_time = 40; scenario = "t2 misses at 40" })
       "b");
  Service.Journal.append j ~key:"k1" (outcome ~states:9 "a2");
  Service.Journal.close j;
  let all = journal_exn (Service.Journal.read_back path) in
  Alcotest.(check int) "all appends on disk" 3 (List.length all);
  let j, r = journal_exn (Service.Journal.open_ path) in
  Alcotest.(check int) "latest per key survives" 2 (List.length r.replayed);
  Alcotest.(check int) "no damage" 0 r.dropped_bytes;
  Alcotest.(check bool) "no corruption" false r.corrupt;
  (* last-write-wins, replay ordered oldest-append first *)
  Alcotest.(check (list string))
    "replay order and content" [ "b"; "a2" ]
    (List.map (fun (_, o) -> o.Service.Job.id) r.replayed);
  (match List.assoc_opt "k1" r.replayed with
  | Some o -> Alcotest.(check int) "k1 is the second write" 9 o.Service.Job.states
  | None -> Alcotest.fail "k1 missing");
  Service.Journal.close j;
  Sys.remove path

let test_journal_truncated_tail () =
  let path = temp_path ".journal" in
  let j, _ = journal_exn (Service.Journal.open_ path) in
  Service.Journal.append j ~key:"k1" (outcome "a");
  Service.Journal.append j ~key:"k2" (outcome "b");
  Service.Journal.close j;
  let intact = read_file path in
  (* tear the final record mid-payload, as a crash mid-write would *)
  write_file path (String.sub intact 0 (String.length intact - 5));
  (match Service.Journal.read_back path with
  | Ok _ -> Alcotest.fail "read_back must report the torn tail"
  | Error _ -> ());
  let j, r = journal_exn (Service.Journal.open_ path) in
  Alcotest.(check (list string))
    "valid prefix survives" [ "a" ]
    (List.map (fun (_, o) -> o.Service.Job.id) r.replayed);
  Alcotest.(check bool) "torn, not corrupt" false r.corrupt;
  Alcotest.(check bool) "bytes were dropped" true (r.dropped_bytes > 0);
  (* the tail was truncated away: appends extend a valid log again *)
  Service.Journal.append j ~key:"k3" (outcome "c");
  Service.Journal.close j;
  let all = journal_exn (Service.Journal.read_back path) in
  Alcotest.(check (list string))
    "clean after repair" [ "a"; "c" ]
    (List.map (fun (_, o) -> o.Service.Job.id) all);
  Sys.remove path

let test_journal_crc_corruption () =
  let path = temp_path ".journal" in
  let j, _ = journal_exn (Service.Journal.open_ path) in
  Service.Journal.append j ~key:"k1" (outcome "a");
  let stats = Service.Journal.stats j in
  Service.Journal.append j ~key:"k2" (outcome "b");
  Service.Journal.close j;
  (* flip one payload byte inside the second record *)
  let data = Bytes.of_string (read_file path) in
  let pos = stats.Service.Journal.bytes + 8 + 2 in
  Bytes.set data pos
    (Char.chr (Char.code (Bytes.get data pos) lxor 0x40));
  write_file path (Bytes.to_string data);
  let j, r = journal_exn (Service.Journal.open_ path) in
  Alcotest.(check bool) "flagged corrupt" true r.corrupt;
  Alcotest.(check (list string))
    "records before the damage survive" [ "a" ]
    (List.map (fun (_, o) -> o.Service.Job.id) r.replayed);
  Service.Journal.close j;
  Sys.remove path

let test_journal_compaction () =
  let path = temp_path ".journal" in
  let j, _ =
    journal_exn (Service.Journal.open_ ~compact_threshold:8 path)
  in
  (* 3 live keys, rewritten 10x each: automatic compaction must kick
     in (records > 8 and >= 2x live) and keep last-write-wins intact *)
  for round = 1 to 10 do
    List.iter
      (fun key ->
        Service.Journal.append j ~key
          (outcome ~states:round (Printf.sprintf "%s-%d" key round)))
      [ "ka"; "kb"; "kc" ]
  done;
  let s = Service.Journal.stats j in
  Alcotest.(check bool) "compaction ran" true (s.compactions > 0);
  Alcotest.(check int) "live keys" 3 s.live;
  Alcotest.(check bool) "log stayed bounded" true (s.records < 30);
  Service.Journal.close j;
  let j, r = journal_exn (Service.Journal.open_ path) in
  Alcotest.(check (list string))
    "latest round survives for every key"
    [ "ka-10"; "kb-10"; "kc-10" ]
    (List.sort compare
       (List.map (fun (_, o) -> o.Service.Job.id) r.replayed));
  Service.Journal.close j;
  Sys.remove path

(* Replay-then-compact equivalence on real verdicts: journal a run over
   every example model, then check that compacting changes nothing
   about what replay reconstructs. *)
let models_dir () =
  match
    List.find_opt Sys.file_exists [ "../examples/models"; "examples/models" ]
  with
  | Some dir -> dir
  | None -> Alcotest.fail "examples/models not found (missing dune deps?)"

let example_requests () =
  let dir = models_dir () in
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".aadl")
  |> List.sort compare
  |> List.map (fun f ->
         Service.Job.request ~id:f
           (Service.Job.File (Filename.concat dir f)))

let normalize_replay replayed =
  List.sort compare
    (List.map
       (fun (key, o) ->
         (key, Service.Json.to_string (Service.Job.outcome_to_json o)))
       replayed)

let test_journal_compact_equivalence_examples () =
  let path = temp_path ".journal" in
  let j, _ = journal_exn (Service.Journal.open_ path) in
  let config =
    {
      (Service.Runner.with_cache Service.Runner.default_config) with
      Service.Runner.on_store =
        Some (fun key o -> Service.Journal.append j ~key o);
    }
  in
  (* two passes: the repeat pass hits the cache, so the journal holds
     one record per distinct model — plus rewrites via max_states
     variation to give compaction something to drop *)
  let requests = example_requests () in
  List.iter (fun r -> ignore (Service.Runner.run config r)) requests;
  List.iter (fun r -> ignore (Service.Runner.run config r)) requests;
  Service.Journal.close j;
  let j1, before = journal_exn (Service.Journal.open_ path) in
  Service.Journal.compact j1;
  Service.Journal.close j1;
  let j2, after = journal_exn (Service.Journal.open_ path) in
  Service.Journal.close j2;
  Alcotest.(check bool)
    "journalled at least one verdict" true
    (before.replayed <> []);
  Alcotest.(check (list (pair string string)))
    "replay identical before and after compaction"
    (normalize_replay before.replayed)
    (normalize_replay after.replayed);
  Sys.remove path

let light_model = Gen.periodic_system Gen.light_set
let overloaded_model = Gen.periodic_system Gen.overloaded_set

let request_of_model ~id model = Service.Job.request ~id (Service.Job.Inline model)

let test_shard_warm_restart () =
  let path = temp_path ".journal" in
  let req = request_of_model ~id:"warm" light_model in
  (let shard =
     match
       Service.Shard.create ~journal:path ~name:"warm0"
         Service.Runner.default_config
     with
     | Ok s -> s
     | Error msg -> Alcotest.failf "shard: %s" msg
   in
   let reply =
     Service.Shard.handler shard
       (Service.Json.to_string (Service.Job.request_to_json req))
   in
   (match
      Result.bind (Service.Json.parse reply) Service.Job.outcome_of_json
    with
   | Ok o ->
       Alcotest.(check bool) "first run is a miss" false o.Service.Job.cached
   | Error msg -> Alcotest.failf "bad reply: %s" msg);
   Service.Shard.close shard);
  (* new shard, same journal: the verdict must come back from cache
     without re-exploring *)
  let shard =
    match
      Service.Shard.create ~journal:path ~name:"warm0"
        Service.Runner.default_config
    with
    | Ok s -> s
    | Error msg -> Alcotest.failf "shard: %s" msg
  in
  (match Service.Shard.recovery shard with
  | Some r ->
      Alcotest.(check int) "one verdict replayed" 1 (List.length r.replayed)
  | None -> Alcotest.fail "no recovery info");
  let reply =
    Service.Shard.handler shard
      (Service.Json.to_string (Service.Job.request_to_json req))
  in
  (match
     Result.bind (Service.Json.parse reply) Service.Job.outcome_of_json
   with
  | Ok o ->
      Alcotest.(check bool) "served from journal-warmed cache" true
        o.Service.Job.cached
  | Error msg -> Alcotest.failf "bad reply: %s" msg);
  Service.Shard.close shard;
  Sys.remove path

(* {1 Router and shards on the simulated fabric} *)

(* A two-shard service on the fault fabric: returns (router name,
   fabric, sim, shards) with every link ideal; tests then degrade the
   links they care about. *)
let sim_service ?(seed = 11) ?(shard_count = 2) ?(journals = []) () =
  let sim = Timed.Sim.create () in
  let fabric = Timed.Fabric.create ~seed sim in
  let transport = Service.Transport_sim.make fabric in
  let shard_names =
    List.init shard_count (Printf.sprintf "shard%d")
  in
  let shards =
    List.map
      (fun name ->
        let journal = List.assoc_opt name journals in
        match
          Service.Shard.create ?journal ~name Service.Runner.default_config
        with
        | Ok s ->
            Service.Shard.register s transport;
            s
        | Error msg -> Alcotest.failf "shard %s: %s" name msg)
      shard_names
  in
  let router =
    Service.Router.create ~retries:3 ~call_timeout:1.0 ~shards:shard_names
      transport
  in
  Service.Router.register router transport;
  (router, fabric, sim, shards)

let expected_verdict req =
  (Service.Runner.run Service.Runner.default_config req).Service.Job.verdict

let call_router sim fabric line =
  let result = ref None in
  Timed.Sim.schedule sim (fun () ->
      result :=
        Some
          (Timed.Fabric.call fabric ~timeout:30. ~src:"client" ~dst:"router"
             line));
  Timed.Sim.run_until_quiescent sim;
  match !result with
  | Some (Ok reply) -> reply
  | Some (Error e) ->
      Alcotest.failf "router call failed: %s"
        (match e with
        | Timed.Fabric.Timeout -> "timeout"
        | Timed.Fabric.No_endpoint n -> "no endpoint " ^ n)
  | None -> Alcotest.fail "router call never ran"

let test_sim_routing_correctness () =
  let router, fabric, sim, _ = sim_service () in
  let reqs =
    [
      request_of_model ~id:"light-1" light_model;
      request_of_model ~id:"over-1" overloaded_model;
      request_of_model ~id:"light-2" light_model;  (* duplicate content *)
      request_of_model ~id:"over-2" overloaded_model;
    ]
  in
  let expected_light = expected_verdict (List.hd reqs) in
  let expected_over = expected_verdict (List.nth reqs 1) in
  List.iter
    (fun (r : Service.Job.request) ->
      let reply =
        call_router sim fabric
          (Service.Json.to_string (Service.Job.request_to_json r))
      in
      match
        Result.bind (Service.Json.parse reply) Service.Job.outcome_of_json
      with
      | Error msg -> Alcotest.failf "%s: bad reply %s" r.id msg
      | Ok o ->
          Alcotest.(check string)
            (r.id ^ " verdict")
            (Service.Job.verdict_tag
               (if String.length r.id >= 5 && String.sub r.id 0 5 = "light"
                then expected_light
                else expected_over))
            (Service.Job.verdict_tag o.Service.Job.verdict);
          Alcotest.(check string) "reply id echoes request" r.id
            o.Service.Job.id)
    reqs;
  (* same content -> same owner: the repeats must have hit a cache *)
  let stats_reply = call_router sim fabric "{\"op\":\"stats\"}" in
  (match Service.Json.parse stats_reply with
  | Ok json ->
      let hits =
        Option.value ~default:(-1)
          (Option.bind (Service.Json.member "hits" json) Service.Json.to_int)
      in
      Alcotest.(check int) "merged stats count the repeat hits" 2 hits
  | Error msg -> Alcotest.failf "stats: %s" msg);
  ignore router

let test_sim_route_op_and_ownership () =
  let router, fabric, sim, _ = sim_service () in
  let req = request_of_model ~id:"r" light_model in
  let fields =
    match
      Service.Job.request_to_json req
    with
    | Service.Json.Obj fields -> fields
    | _ -> Alcotest.fail "request_to_json not an object"
  in
  let line =
    Service.Json.to_string
      (Service.Json.Obj (("op", Service.Json.String "route") :: fields))
  in
  let reply = call_router sim fabric line in
  match Service.Json.parse reply with
  | Error msg -> Alcotest.failf "route: %s" msg
  | Ok json ->
      let shard =
        Option.bind (Service.Json.member "shard" json) Service.Json.to_str
      in
      let key =
        Option.bind (Service.Json.member "key" json) Service.Json.to_str
      in
      (match (shard, key) with
      | Some shard, Some key ->
          Alcotest.(check bool)
            "owner is one of the shards" true
            (shard = "shard0" || shard = "shard1");
          (* the in-process ownership map agrees with the wire answer,
             and is deterministic *)
          Alcotest.(check string)
            "owner map agrees" shard
            (Service.Router.owner router key);
          Alcotest.(check string) "ownership is stable" shard
            (Service.Router.owner router key)
      | _ -> Alcotest.failf "route reply incomplete: %s" reply)

(* A partition that heals: shard0 unreachable for the first minute,
   then the link steps back to ideal (Fabric.schedule).  Requests keep
   being answered throughout — first by failover to shard1, after the
   heal by the owner again. *)
let test_sim_healing_partition () =
  let router, fabric, sim, _ = sim_service () in
  ignore router;
  let dead = { Timed.Fabric.ideal with drop = 1.0 } in
  Timed.Fabric.link fabric ~src:"router" ~dst:"shard0" dead;
  Timed.Fabric.schedule fabric ~at:60. ~src:"router" ~dst:"shard0"
    Timed.Fabric.ideal;
  let req id = request_of_model ~id light_model in
  let expected = expected_verdict (req "x") in
  let replies = ref [] in
  Timed.Sim.schedule sim (fun () ->
      (* one request during the partition, one after the heal *)
      List.iter
        (fun (at, id) ->
          Timed.Sim.sleep_until sim at;
          let line =
            Service.Json.to_string (Service.Job.request_to_json (req id))
          in
          replies :=
            Timed.Fabric.call fabric ~timeout:300. ~src:"client" ~dst:"router"
              line
            :: !replies)
        [ (0., "during"); (90., "after") ]);
  Timed.Sim.run_until_quiescent sim;
  let replies = List.rev !replies in
  Alcotest.(check int) "both answered" 2 (List.length replies);
  List.iter
    (fun reply ->
      match reply with
      | Error _ -> Alcotest.fail "call failed despite failover"
      | Ok reply -> (
          match
            Result.bind (Service.Json.parse reply) Service.Job.outcome_of_json
          with
          | Ok o ->
              Alcotest.(check string) "true verdict through the partition"
                (Service.Job.verdict_tag expected)
                (Service.Job.verdict_tag o.Service.Job.verdict)
          | Error msg -> Alcotest.failf "bad reply: %s" msg))
    replies;
  (* the delivery log must show the link step *)
  let steps =
    List.filter
      (fun (e : Timed.Fabric.event) -> e.kind = Timed.Fabric.Link_change)
      (Timed.Fabric.log fabric)
  in
  Alcotest.(check int) "one link-change event logged" 1 (List.length steps)

(* Mid-batch shard crash: run half a batch against a journalled sim
   service, restart the shard from its journal, run the rest.  Verdict
   sequence must equal the fault-free run, and the restarted shard must
   answer repeats from its journal-warmed cache. *)
let test_sim_shard_restart_mid_batch () =
  let requests =
    [
      request_of_model ~id:"a" light_model;
      request_of_model ~id:"b" overloaded_model;
      request_of_model ~id:"a2" light_model;
      request_of_model ~id:"b2" overloaded_model;
    ]
  in
  (* Each [run_service] builds a whole service process over the named
     journal file — calling it twice with the same path IS the restart
     (the first service's journal survives; nothing is closed cleanly,
     as in a crash the flush-per-append guarantees durability). *)
  let run_service journals requests_slice =
    let router, fabric, sim, _ = sim_service ~shard_count:1 ~journals () in
    ignore router;
    List.map
      (fun r ->
        let line = Service.Json.to_string (Service.Job.request_to_json r) in
        let reply = call_router sim fabric line in
        match
          Result.bind (Service.Json.parse reply) Service.Job.outcome_of_json
        with
        | Ok o -> o
        | Error msg -> Alcotest.failf "bad reply: %s" msg)
      requests_slice
  in
  let path = temp_path ".journal" in
  let journals = [ ("shard0", path) ] in
  let first = run_service journals (List.filteri (fun i _ -> i < 2) requests) in
  let second =
    run_service journals (List.filteri (fun i _ -> i >= 2) requests)
  in
  let with_restart = first @ second in
  (* restart-free reference run, fresh journal *)
  let ref_path = temp_path ".journal" in
  let reference = run_service [ ("shard0", ref_path) ] requests in
  Alcotest.(check (list string))
    "verdicts identical to the fault-free run"
    (List.map
       (fun (o : Service.Job.outcome) -> Service.Job.verdict_tag o.verdict)
       reference)
    (List.map
       (fun (o : Service.Job.outcome) -> Service.Job.verdict_tag o.verdict)
       with_restart);
  (* the restarted service served the repeats from its journal-warmed
     cache: a2/b2 ran after the restart and must be cache hits *)
  List.iter
    (fun (o : Service.Job.outcome) ->
      if String.length o.id = 2 then
        Alcotest.(check bool) (o.id ^ " cached after restart") true o.cached)
    second;
  Sys.remove path;
  Sys.remove ref_path

(* {1 Seeded fault matrix (qcheck): correctness and replay} *)

type dist_scenario = {
  seed : int;
  to_router : Timed.Fabric.faults;
  to_shard : Timed.Fabric.faults;
  from_shard : Timed.Fabric.faults;
  ids : int list;  (* request schedule: model index per call *)
}

let dist_faults_gen =
  QCheck.Gen.(
    map
      (fun (delay, jitter, drop, duplicate, reorder) ->
        { Timed.Fabric.delay; jitter; drop; duplicate; reorder })
      (tup5
         (float_bound_inclusive 0.05)
         (float_bound_inclusive 0.02)
         (float_bound_inclusive 0.3)
         (float_bound_inclusive 0.3)
         (float_bound_inclusive 0.3)))

let dist_scenario_gen =
  QCheck.Gen.(
    map
      (fun (seed, to_router, to_shard, from_shard, ids) ->
        { seed; to_router; to_shard; from_shard; ids })
      (tup5 (int_bound 10_000) dist_faults_gen dist_faults_gen dist_faults_gen
         (list_size (1 -- 8) (int_bound 1))))

let pp_dist_scenario s =
  Fmt.str "seed=%d calls=%d drop(r=%.2f s=%.2f b=%.2f) dup(%.2f %.2f %.2f)"
    s.seed (List.length s.ids) s.to_router.Timed.Fabric.drop
    s.to_shard.Timed.Fabric.drop s.from_shard.Timed.Fabric.drop
    s.to_router.Timed.Fabric.duplicate s.to_shard.Timed.Fabric.duplicate
    s.from_shard.Timed.Fabric.duplicate

(* The two model verdicts, computed once outside the property. *)
let model_pool = [| light_model; overloaded_model |]

let expected_tags =
  lazy
    (Array.map
       (fun m ->
         Service.Job.verdict_tag
           (expected_verdict (request_of_model ~id:"e" m)))
       model_pool)

let run_dist_scenario s =
  let sim = Timed.Sim.create () in
  let fabric = Timed.Fabric.create ~seed:s.seed sim in
  let transport = Service.Transport_sim.make fabric in
  let shard_names = [ "shard0"; "shard1" ] in
  List.iter
    (fun name ->
      match
        Service.Shard.create ~name Service.Runner.default_config
      with
      | Ok shard -> Service.Shard.register shard transport
      | Error msg -> Alcotest.failf "shard: %s" msg)
    shard_names;
  let router =
    Service.Router.create ~retries:2 ~call_timeout:0.5 ~shards:shard_names
      transport
  in
  Service.Router.register router transport;
  Timed.Fabric.link fabric ~src:"client" ~dst:"router" s.to_router;
  List.iter
    (fun shard ->
      Timed.Fabric.link fabric ~src:"router" ~dst:shard s.to_shard;
      Timed.Fabric.link fabric ~src:shard ~dst:"router" s.from_shard)
    shard_names;
  let replies = ref [] in
  Timed.Sim.schedule sim (fun () ->
      List.iteri
        (fun i model_idx ->
          let r =
            request_of_model
              ~id:(Printf.sprintf "c%d-m%d" i model_idx)
              model_pool.(model_idx)
          in
          let line =
            Service.Json.to_string (Service.Job.request_to_json r)
          in
          replies :=
            ( model_idx,
              Timed.Fabric.call fabric ~timeout:5. ~src:"client" ~dst:"router"
                line )
            :: !replies)
        s.ids);
  (* The whole exchange runs on virtual time — otherwise the real-clock
     wall_s embedded in each outcome would differ between two runs and
     break bit-identical replay. *)
  Timed.Sim.with_clock sim (fun () -> Timed.Sim.run_until_quiescent sim);
  (List.rev !replies, Timed.Fabric.log_lines fabric, Timed.Sim.events_run sim)

(* Whatever the fault schedule does — drops, duplicated requests
   re-running shards, reordered replies, retries, failovers — a reply
   that carries a verdict is the TRUE verdict for that model.  Faults
   may surface as timeouts or explicit error outcomes, never as a wrong
   answer. *)
let qcheck_dist_verdicts_correct =
  QCheck.Test.make ~count:25
    ~name:"routed verdicts are never wrong under faults"
    (QCheck.make ~print:pp_dist_scenario dist_scenario_gen)
    (fun s ->
      let replies, _, _ = run_dist_scenario s in
      List.for_all
        (fun (model_idx, reply) ->
          match reply with
          | Error Timed.Fabric.Timeout -> true  (* client gave up: allowed *)
          | Error (Timed.Fabric.No_endpoint _) -> false
          | Ok reply -> (
              match
                Result.bind (Service.Json.parse reply)
                  Service.Job.outcome_of_json
              with
              | Error _ -> false
              | Ok o -> (
                  match Service.Job.verdict_tag o.Service.Job.verdict with
                  | "error" -> true  (* explicit infrastructure failure *)
                  | tag -> tag = (Lazy.force expected_tags).(model_idx))))
        replies)

(* Bit-identical replay: same seed, same links, same schedule -> same
   replies, same delivery log, same event count. *)
let qcheck_dist_replay_identical =
  QCheck.Test.make ~count:15
    ~name:"router/shard fault schedule replays bit-identically"
    (QCheck.make ~print:pp_dist_scenario dist_scenario_gen)
    (fun s ->
      let r1, log1, n1 = run_dist_scenario s in
      let r2, log2, n2 = run_dist_scenario s in
      r1 = r2 && log1 = log2 && n1 = n2)

(* {1 Fabric trace export} *)

let test_fabric_trace_export () =
  let sim = Timed.Sim.create () in
  let fabric = Timed.Fabric.create ~seed:5 sim in
  Timed.Fabric.serve fabric "svc" String.uppercase_ascii;
  Timed.Fabric.link fabric ~src:"client" ~dst:"svc"
    { Timed.Fabric.ideal with delay = 0.5; duplicate = 1.0 };
  Timed.Sim.with_clock sim (fun () ->
      Obs.Trace.start ();
      Timed.Sim.schedule sim (fun () ->
          ignore (Timed.Fabric.call fabric ~timeout:10. ~src:"client" ~dst:"svc" "hi"));
      Timed.Sim.run_until_quiescent sim;
      Service.Fabric_trace.inject fabric;
      Obs.Trace.stop ());
  let json = Obs.Trace.to_string () in
  let contains needle =
    let nl = String.length needle and jl = String.length json in
    let rec at i = i + nl <= jl && (String.sub json i nl = needle || at (i + 1)) in
    at 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " in trace") true (contains needle))
    [ "send #"; "deliver #"; "duplicate #"; "client->svc" ]

(* {1 Trace-context propagation} *)

(* Every traced event's span identity, pulled out of the trace JSON:
   (name, trace_id, span_id, parent_id). *)
let trace_spans () =
  match Service.Json.parse (Obs.Trace.to_string ()) with
  | Error msg -> Alcotest.failf "trace is not valid JSON: %s" msg
  | Ok json -> (
      match Service.Json.member "traceEvents" json with
      | Some (Service.Json.List evs) ->
          List.filter_map
            (fun ev ->
              match
                ( Option.bind (Service.Json.member "name" ev)
                    Service.Json.to_str,
                  Service.Json.member "args" ev )
              with
              | Some name, Some (Service.Json.Obj args) ->
                  let s k =
                    match List.assoc_opt k args with
                    | Some (Service.Json.String v) -> Some v
                    | _ -> None
                  in
                  Some (name, s "trace_id", s "span_id", s "parent_id")
              | Some name, _ -> Some (name, None, None, None)
              | _ -> None)
            evs
      | _ -> Alcotest.fail "missing traceEvents")

(* One traced routed batch over the simulated fabric with duplication
   and reordering (no drops, so there are no retries/failovers and every
   server span is a plain child).  Returns the full trace document. *)
let traced_sim_run ?(faults = Timed.Fabric.ideal) seed =
  let sim = Timed.Sim.create () in
  let fabric = Timed.Fabric.create ~seed sim in
  let transport = Service.Transport_sim.make fabric in
  let shard_names = [ "shard0"; "shard1" ] in
  List.iter
    (fun name ->
      match Service.Shard.create ~name Service.Runner.default_config with
      | Ok s -> Service.Shard.register s transport
      | Error msg -> Alcotest.failf "shard: %s" msg)
    shard_names;
  let router =
    Service.Router.create ~retries:3 ~call_timeout:10. ~shards:shard_names
      transport
  in
  Service.Router.register router transport;
  Timed.Fabric.link fabric ~src:"client" ~dst:"router" faults;
  List.iter
    (fun s ->
      Timed.Fabric.link fabric ~src:"router" ~dst:s faults;
      Timed.Fabric.link fabric ~src:s ~dst:"router" faults)
    shard_names;
  let reqs =
    List.init 4 (fun i ->
        request_of_model
          ~id:(Printf.sprintf "t%d" i)
          model_pool.(i mod Array.length model_pool))
  in
  Timed.Sim.with_clock sim (fun () ->
      Obs.Trace.start ();
      List.iter
        (fun (r : Service.Job.request) ->
          Timed.Sim.schedule sim (fun () ->
              ignore
                (Obs.Span.with_ ~name:"client.request"
                   ~attrs:[ ("id", r.id) ]
                   (fun () ->
                     let line =
                       Service.Json.to_string
                         (Service.Protocol.set_trace
                            (Service.Job.request_to_json r)
                            (Obs.Context.current ()))
                     in
                     Timed.Fabric.call fabric ~timeout:60. ~src:"client"
                       ~dst:"router" line))))
        reqs;
      Timed.Sim.run_until_quiescent sim;
      Service.Fabric_trace.inject fabric;
      Obs.Trace.stop ());
  Obs.Trace.to_string ()

let dup_reorder =
  { Timed.Fabric.ideal with delay = 0.01; duplicate = 0.5; reorder = 0.5 }

let test_traced_spans_under_faults () =
  ignore (traced_sim_run ~faults:dup_reorder 42);
  let spans = trace_spans () in
  let span_ids = List.filter_map (fun (_, _, sid, _) -> sid) spans in
  Alcotest.(check int)
    "span ids are unique" (List.length span_ids)
    (List.length (List.sort_uniq compare span_ids));
  (* duplicated deliveries must not mint duplicate server spans: with no
     drops there is exactly one request/router span per parent edge *)
  let edges =
    List.filter_map
      (fun (name, _, _, parent) ->
        match (name, parent) with
        | ("router.request" | "service.request"), Some p -> Some (name, p)
        | _ -> None)
      spans
  in
  Alcotest.(check bool) "server spans exist" true (edges <> []);
  Alcotest.(check int)
    "one server span per parent edge" (List.length edges)
    (List.length (List.sort_uniq compare edges));
  (* no orphans: every recorded parent_id is some recorded span *)
  List.iter
    (fun (name, _, _, parent) ->
      match parent with
      | None -> ()
      | Some p ->
          Alcotest.(check bool)
            (name ^ " parent " ^ p ^ " resolves")
            true (List.mem p span_ids))
    spans;
  Alcotest.(check bool)
    "router spans present" true
    (List.exists (fun (n, _, _, _) -> n = "router.request") spans);
  Alcotest.(check bool)
    "shard spans present" true
    (List.exists (fun (n, _, _, _) -> n = "service.request") spans)

let test_traced_replay_identical () =
  let a = traced_sim_run ~faults:dup_reorder 7 in
  let b = traced_sim_run ~faults:dup_reorder 7 in
  Alcotest.(check bool)
    "same seed, bit-identical trace" true (String.equal a b);
  Alcotest.(check bool)
    "different seed, different delivery schedule" true
    (not (String.equal a (traced_sim_run ~faults:dup_reorder 8)))

(* {1 Health and cluster ops over the sim} *)

let test_health_ops () =
  let router, fabric, sim, _ = sim_service () in
  ignore router;
  (* router health aggregates shard reachability *)
  let health = call_router sim fabric {|{"op":"health"}|} in
  (match Service.Json.parse health with
  | Error msg -> Alcotest.failf "health: %s" msg
  | Ok json ->
      let str k =
        Option.bind (Service.Json.member k json) Service.Json.to_str
      in
      let int k =
        Option.bind (Service.Json.member k json) Service.Json.to_int
      in
      Alcotest.(check (option string)) "role" (Some "router") (str "role");
      Alcotest.(check (option int)) "both shards reachable" (Some 2)
        (int "reachable");
      Alcotest.(check (option int)) "shard count" (Some 2)
        (int "shard_count");
      Alcotest.(check bool) "ok" true
        (Service.Json.member "ok" json = Some (Service.Json.Bool true)));
  (* a shard answers health directly, with its own role *)
  let shard_health = ref None in
  Timed.Sim.schedule sim (fun () ->
      shard_health :=
        Some
          (Timed.Fabric.call fabric ~timeout:30. ~src:"client" ~dst:"shard0"
             {|{"op":"health"}|}));
  Timed.Sim.run_until_quiescent sim;
  (match !shard_health with
  | Some (Ok reply) -> (
      match Service.Json.parse reply with
      | Error msg -> Alcotest.failf "shard health: %s" msg
      | Ok json ->
          Alcotest.(check (option string))
            "shard role" (Some "shard")
            (Option.bind (Service.Json.member "role" json)
               Service.Json.to_str);
          Alcotest.(check bool)
            "queue depth reported" true
            (Service.Json.member "queue_depth" json <> None);
          Alcotest.(check bool)
            "cache section reported" true
            (Service.Json.member "cache" json <> None))
  | _ -> Alcotest.fail "shard health call failed");
  (* cluster-stats merges the per-shard view *)
  let cluster = call_router sim fabric {|{"op":"cluster-stats"}|} in
  match Service.Json.parse cluster with
  | Error msg -> Alcotest.failf "cluster-stats: %s" msg
  | Ok json -> (
      Alcotest.(check (option int))
        "all shards reachable" (Some 2)
        (Option.bind (Service.Json.member "reachable" json)
           Service.Json.to_int);
      match Service.Json.member "shards" json with
      | Some (Service.Json.Obj per) ->
          Alcotest.(check int) "one entry per shard" 2 (List.length per);
          List.iter
            (fun (name, entry) ->
              Alcotest.(check bool) (name ^ " reachable") true
                (Service.Json.member "reachable" entry
                = Some (Service.Json.Bool true));
              match Service.Json.member "health" entry with
              | Some h ->
                  Alcotest.(check bool)
                    (name ^ " health has cache")
                    true
                    (Service.Json.member "cache" h <> None)
              | None -> Alcotest.failf "%s: no health" name)
            per
      | _ -> Alcotest.fail "no shards member")

(* {1 Socket transport on loopback} *)

let test_addr_parsing () =
  (match Service.Transport_socket.parse_addr "unix:/tmp/x.sock" with
  | Ok (Service.Transport_socket.Unix_sock "/tmp/x.sock") -> ()
  | _ -> Alcotest.fail "unix addr");
  (match Service.Transport_socket.parse_addr "tcp:127.0.0.1:7701" with
  | Ok (Service.Transport_socket.Tcp ("127.0.0.1", 7701)) -> ()
  | _ -> Alcotest.fail "tcp addr");
  List.iter
    (fun bad ->
      match Service.Transport_socket.parse_addr bad with
      | Ok _ -> Alcotest.failf "accepted %S" bad
      | Error _ -> ())
    [ "nope"; "unix:"; "tcp:host"; "tcp:host:0"; "tcp::80"; "ftp:x:1" ]

let sock_path name =
  (* Unix socket paths are length-limited (~104 bytes): keep them in
     /tmp regardless of TMPDIR *)
  Printf.sprintf "/tmp/aadl_%d_%s.sock" (Unix.getpid ()) name

let test_socket_echo_and_timeout () =
  let t = Service.Transport_socket.create () in
  let addr = "unix:" ^ sock_path "echo" in
  Service.Transport_socket.serve t addr (fun line -> "echo:" ^ line);
  (match Service.Transport_socket.call t ~src:"c" ~dst:addr "hello" with
  | Ok reply -> Alcotest.(check string) "echoed" "echo:hello" reply
  | Error e ->
      Alcotest.failf "call: %s" (Service.Transport.error_message e));
  (* several exchanges reuse the pooled connection *)
  (match Service.Transport_socket.call t ~src:"c" ~dst:addr "again" with
  | Ok reply -> Alcotest.(check string) "second call" "echo:again" reply
  | Error e ->
      Alcotest.failf "call: %s" (Service.Transport.error_message e));
  (* nothing listens here *)
  (match
     Service.Transport_socket.call t ~src:"c"
       ~dst:("unix:" ^ sock_path "nobody") "x"
   with
  | Error (Service.Transport.No_endpoint _) -> ()
  | Ok _ -> Alcotest.fail "call to nothing succeeded"
  | Error e ->
      Alcotest.failf "wrong error: %s" (Service.Transport.error_message e));
  Service.Transport_socket.stop t;
  Alcotest.(check bool)
    "socket path unlinked" false
    (Sys.file_exists (sock_path "echo"))

let test_socket_slow_handler_timeout () =
  let t = Service.Transport_socket.create () in
  let addr = "unix:" ^ sock_path "slow" in
  Service.Transport_socket.serve t addr (fun line ->
      Thread.delay 2.0;
      line);
  (match Service.Transport_socket.call t ~timeout:0.2 ~src:"c" ~dst:addr "x" with
  | Error Service.Transport.Timeout -> ()
  | Ok _ -> Alcotest.fail "expected timeout"
  | Error e ->
      Alcotest.failf "wrong error: %s" (Service.Transport.error_message e));
  (* the timed-out connection must not poison the next call: a fresh
     one is opened and the (slow) reply still comes back *)
  (match Service.Transport_socket.call t ~timeout:5. ~src:"c" ~dst:addr "y" with
  | Ok reply -> Alcotest.(check string) "fresh connection works" "y" reply
  | Error e ->
      Alcotest.failf "post-timeout call: %s" (Service.Transport.error_message e));
  Service.Transport_socket.stop t

(* The same router/shard protocol the sim suite exercises, over real
   fds on loopback: two socket shards fronted by a socket router. *)
let test_socket_router_shards () =
  let t = Service.Transport_socket.create () in
  let transport = Service.Transport_socket.make t in
  let shard_addrs =
    [ "unix:" ^ sock_path "s0"; "unix:" ^ sock_path "s1" ]
  in
  List.iter
    (fun addr ->
      match
        Service.Shard.create ~name:addr Service.Runner.default_config
      with
      | Ok shard -> Service.Shard.register shard transport
      | Error msg -> Alcotest.failf "shard: %s" msg)
    shard_addrs;
  let router =
    Service.Router.create ~name:("unix:" ^ sock_path "router")
      ~call_timeout:60. ~shards:shard_addrs transport
  in
  Service.Router.register router transport;
  let client = Service.Transport_socket.create () in
  let call line =
    match
      Service.Transport_socket.call client ~timeout:120. ~src:"client"
        ~dst:("unix:" ^ sock_path "router") line
    with
    | Ok reply -> reply
    | Error e ->
        Alcotest.failf "router call: %s" (Service.Transport.error_message e)
  in
  let req id model = request_of_model ~id model in
  let expected = expected_verdict (req "e" light_model) in
  List.iter
    (fun (id, model) ->
      let reply =
        call (Service.Json.to_string (Service.Job.request_to_json (req id model)))
      in
      match
        Result.bind (Service.Json.parse reply) Service.Job.outcome_of_json
      with
      | Ok o ->
          if model == light_model then
            Alcotest.(check string) (id ^ " verdict over sockets")
              (Service.Job.verdict_tag expected)
              (Service.Job.verdict_tag o.Service.Job.verdict)
      | Error msg -> Alcotest.failf "%s: bad reply %s" id msg)
    [ ("a", light_model); ("b", overloaded_model); ("a2", light_model) ];
  (* merged stats over sockets: the duplicate was someone's cache hit *)
  let stats = call "{\"op\":\"stats\"}" in
  (match Service.Json.parse stats with
  | Ok json ->
      let hits =
        Option.value ~default:(-1)
          (Option.bind (Service.Json.member "hits" json) Service.Json.to_int)
      in
      Alcotest.(check int) "one hit across the shard fleet" 1 hits
  | Error msg -> Alcotest.failf "stats: %s" msg);
  Service.Transport_socket.stop client;
  Service.Transport_socket.stop t

(* The tentpole end to end over real fds: a traced client request
   through a socket router to a socket shard must come back as one
   causally-linked chain — client.request <- router.request <-
   service.request, all on one trace id. *)
let test_socket_trace_chain () =
  let t = Service.Transport_socket.create () in
  let transport = Service.Transport_socket.make t in
  let shard_addrs = [ "unix:" ^ sock_path "tc0"; "unix:" ^ sock_path "tc1" ] in
  List.iter
    (fun addr ->
      match Service.Shard.create ~name:addr Service.Runner.default_config with
      | Ok shard -> Service.Shard.register shard transport
      | Error msg -> Alcotest.failf "shard: %s" msg)
    shard_addrs;
  let router =
    Service.Router.create
      ~name:("unix:" ^ sock_path "tcr")
      ~call_timeout:60. ~shards:shard_addrs transport
  in
  Service.Router.register router transport;
  let client = Service.Transport_socket.create () in
  Obs.Trace.start ();
  (match
     Obs.Span.with_ ~name:"client.request" (fun () ->
         let r = request_of_model ~id:"traced" light_model in
         let line =
           Service.Json.to_string
             (Service.Protocol.set_trace
                (Service.Job.request_to_json r)
                (Obs.Context.current ()))
         in
         Service.Transport_socket.call client ~timeout:120. ~src:"client"
           ~dst:("unix:" ^ sock_path "tcr")
           line)
   with
  | Ok _ -> ()
  | Error e ->
      Alcotest.failf "traced call: %s" (Service.Transport.error_message e));
  Obs.Trace.stop ();
  Service.Transport_socket.stop client;
  Service.Transport_socket.stop t;
  let spans = trace_spans () in
  let find name =
    match List.find_opt (fun (n, _, _, _) -> n = name) spans with
    | Some s -> s
    | None -> Alcotest.failf "no %s span" name
  in
  let _, c_trace, c_span, c_parent = find "client.request" in
  let _, r_trace, r_span, r_parent = find "router.request" in
  let _, s_trace, _, s_parent = find "service.request" in
  Alcotest.(check (option string)) "client is the root" None c_parent;
  Alcotest.(check bool) "ids assigned" true (c_span <> None && r_span <> None);
  Alcotest.(check (option string)) "router parents client" c_span r_parent;
  Alcotest.(check (option string)) "shard parents router" r_span s_parent;
  Alcotest.(check (option string)) "one trace id: router" c_trace r_trace;
  Alcotest.(check (option string)) "one trace id: shard" c_trace s_trace

let () =
  Alcotest.run "dist"
    [
      ( "journal",
        [
          Alcotest.test_case "append/replay roundtrip" `Quick
            test_journal_roundtrip;
          Alcotest.test_case "truncated tail is repaired" `Quick
            test_journal_truncated_tail;
          Alcotest.test_case "CRC corruption is detected" `Quick
            test_journal_crc_corruption;
          Alcotest.test_case "compaction keeps last writes" `Quick
            test_journal_compaction;
          Alcotest.test_case "replay = compact-then-replay on examples"
            `Slow test_journal_compact_equivalence_examples;
          Alcotest.test_case "shard restart keeps the cache warm" `Quick
            test_shard_warm_restart;
        ] );
      ( "sim-protocol",
        [
          Alcotest.test_case "routing correctness and merged stats" `Quick
            test_sim_routing_correctness;
          Alcotest.test_case "route op and stable ownership" `Quick
            test_sim_route_op_and_ownership;
          Alcotest.test_case "healing partition fails over" `Quick
            test_sim_healing_partition;
          Alcotest.test_case "shard restart mid-batch recovers" `Quick
            test_sim_shard_restart_mid_batch;
          Alcotest.test_case "health and cluster-stats ops" `Quick
            test_health_ops;
        ] );
      ( "fault-matrix",
        [
          QCheck_alcotest.to_alcotest qcheck_dist_verdicts_correct;
          QCheck_alcotest.to_alcotest qcheck_dist_replay_identical;
        ] );
      ( "trace",
        [
          Alcotest.test_case "traced spans under dup/reorder faults" `Quick
            test_traced_spans_under_faults;
          Alcotest.test_case "traced run replays bit-identically" `Quick
            test_traced_replay_identical;
          Alcotest.test_case "fabric log exports to Chrome trace" `Quick
            test_fabric_trace_export;
        ] );
      ( "socket",
        [
          Alcotest.test_case "address parsing" `Quick test_addr_parsing;
          Alcotest.test_case "echo, pooling, no-endpoint" `Quick
            test_socket_echo_and_timeout;
          Alcotest.test_case "timeout and connection hygiene" `Quick
            test_socket_slow_handler_timeout;
          Alcotest.test_case "router and shards on loopback" `Quick
            test_socket_router_shards;
          Alcotest.test_case "trace chain over loopback" `Quick
            test_socket_trace_chain;
        ] );
    ]
