(* Tests for the orbit (symmetry) reduction.

   Three families of guarantees:
   - detection: the translation groups exactly the thread units that are
     identical up to generated names — replicated EDF families merge into
     one class, while any difference in period, cet, deadline or (baked,
     tie-broken) RM/DM priority keeps units apart;
   - equivalence: exploring with the reduction on yields the same verdict,
     violation time and scenario length as exploring the raw space, on
     every example model and on generated families, schedulable and not,
     sequential and parallel;
   - soundness of de-canonicalization: the returned failing scenario is a
     real path of the *unreduced* prioritized semantics, ending in a
     deadlock. *)

open Acsr

let translation_of text =
  Translate.Pipeline.translate (Aadl.Instantiate.of_string text)

let family ?protocol ~threads ~utilization () =
  Gen.replicated_family ?protocol ~threads ~utilization ()

(* {1 Detection} *)

let test_detect_replicated_family () =
  List.iter
    (fun threads ->
      let tr = translation_of (family ~threads ~utilization:0.8 ()) in
      let spec = tr.Translate.Pipeline.symmetry in
      Alcotest.(check bool)
        (Fmt.str "%d-thread EDF family has symmetry" threads)
        false (Symmetry.is_empty spec);
      Alcotest.(check (list int))
        (Fmt.str "%d-thread family: one class of all threads" threads)
        [ threads ] (Symmetry.class_sizes spec))
    [ 2; 4; 8 ]

let test_detect_single_thread_no_class () =
  let tr = translation_of (family ~threads:1 ~utilization:0.5 ()) in
  Alcotest.(check bool)
    "a single thread has no orbit class" true
    (Symmetry.is_empty tr.Translate.Pipeline.symmetry)

(* RM and DM bake tie-broken priorities into the cpu-access expressions,
   so even textually identical threads are not interchangeable there. *)
let test_detect_rm_family_not_merged () =
  List.iter
    (fun protocol ->
      let tr =
        translation_of (family ~protocol ~threads:4 ~utilization:0.8 ())
      in
      Alcotest.(check bool)
        "identical threads under RM/DM are not merged" true
        (Symmetry.is_empty tr.Translate.Pipeline.symmetry))
    [ Aadl.Props.Rate_monotonic; Aadl.Props.Deadline_monotonic ]

(* Almost-identical threads — same everything except one timing
   parameter — must never land in the same class. *)
let test_detect_almost_identical_not_merged () =
  let base ~name = Gen.simple_spec ~name ~period_ms:6 ~cet_ms:1 in
  let cases =
    [
      ( "different period",
        [
          Gen.simple_spec ~name:"t1" ~period_ms:6 ~cet_ms:1 ();
          Gen.simple_spec ~name:"t2" ~period_ms:8 ~cet_ms:1 ();
        ] );
      ( "different cet",
        [
          Gen.simple_spec ~name:"t1" ~period_ms:6 ~cet_ms:1 ();
          Gen.simple_spec ~name:"t2" ~period_ms:6 ~cet_ms:2 ();
        ] );
      ( "different deadline",
        [ base ~name:"t1" (); base ~name:"t2" ~deadline_ms:5 () ] );
    ]
  in
  List.iter
    (fun (what, specs) ->
      let tr =
        translation_of (Gen.periodic_system ~protocol:Aadl.Props.Edf specs)
      in
      Alcotest.(check bool)
        (what ^ ": not merged")
        true
        (Symmetry.is_empty tr.Translate.Pipeline.symmetry))
    cases;
  (* and the matching pair in the same model *does* merge, so the cases
     above fail for the right reason *)
  let tr =
    translation_of
      (Gen.periodic_system ~protocol:Aadl.Props.Edf
         [ base ~name:"t1" (); base ~name:"t2" () ])
  in
  Alcotest.(check (list int))
    "the identical pair merges" [ 2 ]
    (Symmetry.class_sizes tr.Translate.Pipeline.symmetry)

(* e6 reference family: pairwise distinct periods, no symmetry at all. *)
let test_detect_e6_asymmetric () =
  let text =
    Gen.periodic_system
      (List.init 5 (fun i ->
           Gen.simple_spec
             ~name:(Fmt.str "t%d" (i + 1))
             ~period_ms:(4 + (2 * i))
             ~cet_ms:1 ()))
  in
  Alcotest.(check bool)
    "e6 has no interchangeable threads" true
    (Symmetry.is_empty (translation_of text).Translate.Pipeline.symmetry)

(* {1 Canonicalization: idempotence and orbit invariance on reachable
   states} *)

let test_canon_idempotent_on_reachable_states () =
  let tr = translation_of (family ~threads:4 ~utilization:0.8 ()) in
  let spec = tr.Translate.Pipeline.symmetry in
  let config =
    { Versa.Lts.default_config with stop_at_deadlock = false }
  in
  let lts =
    Versa.Lts.build ~config tr.Translate.Pipeline.defs
      tr.Translate.Pipeline.system
  in
  for id = 0 to Versa.Lts.num_states lts - 1 do
    let t = Hproc.of_proc (Versa.Lts.term lts id) in
    let c = Symmetry.canon spec t in
    if not (Hproc.equal c (Symmetry.canon spec c)) then
      Alcotest.failf "canon not idempotent on state %d" id
  done

(* {1 Equivalence: reduction on vs off} *)

let describe (r : Analysis.Schedulability.t) =
  match r.Analysis.Schedulability.verdict with
  | Analysis.Schedulability.Schedulable -> "schedulable"
  | Analysis.Schedulability.Not_schedulable { scenario; trace } ->
      (* thread identities may legitimately differ between the raw and
         the de-canonicalized scenario (any orbit member is a valid
         witness), so compare the invariants: violation time and
         scenario length *)
      Fmt.str "NOT schedulable at t=%d, %d steps"
        scenario.Analysis.Raise_trace.violation_time
        (Versa.Trace.length trace)
  | Analysis.Schedulability.Inconclusive why -> "inconclusive: " ^ why

let analyze_sym ~symmetry ?(jobs = 1) ?(all = false) root =
  Analysis.Schedulability.analyze
    ~options:
      {
        Analysis.Schedulability.default_options with
        max_states = 300_000;
        all_violations = all;
        jobs;
        symmetry;
      }
    root

let test_example_models_equivalent () =
  let dir =
    match
      List.find_opt Sys.file_exists
        [ "../examples/models"; "examples/models" ]
    with
    | Some d -> d
    | None -> Alcotest.fail "examples/models not found (missing dune deps?)"
  in
  let models =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".aadl")
    |> List.sort compare
  in
  Alcotest.(check bool) "found example models" true (models <> []);
  List.iter
    (fun file ->
      let contents =
        let ic = open_in_bin (Filename.concat dir file) in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let root = Aadl.Instantiate.of_string contents in
      let on = analyze_sym ~symmetry:true root in
      let off = analyze_sym ~symmetry:false root in
      Alcotest.(check string)
        (file ^ ": verdict") (describe off) (describe on);
      (* none of the shipped examples has interchangeable threads, so the
         reduction must be exactly inert there: same visited states *)
      let spec =
        on.Analysis.Schedulability.translation.Translate.Pipeline.symmetry
      in
      if Symmetry.is_empty spec then
        Alcotest.(check int)
          (file ^ ": states (inert)")
          (Versa.Explorer.num_states off.Analysis.Schedulability.exploration)
          (Versa.Explorer.num_states on.Analysis.Schedulability.exploration))
    models

let test_families_equivalent () =
  List.iter
    (fun (threads, utilization) ->
      let name = Fmt.str "family %d@%.2f" threads utilization in
      let root =
        Aadl.Instantiate.of_string (family ~threads ~utilization ())
      in
      let on = analyze_sym ~symmetry:true ~all:true root in
      let off = analyze_sym ~symmetry:false ~all:true root in
      Alcotest.(check string) (name ^ ": verdict") (describe off) (describe on);
      let states r =
        Versa.Explorer.num_states r.Analysis.Schedulability.exploration
      in
      if states on > states off then
        Alcotest.failf "%s: reduced space larger (%d > %d)" name (states on)
          (states off);
      if threads >= 2 && states on >= states off then
        Alcotest.failf "%s: no strict reduction (%d vs %d)" name (states on)
          (states off);
      (* the reduction's bookkeeping reached the stats *)
      let stats = Versa.Explorer.stats on.Analysis.Schedulability.exploration in
      if threads >= 2 then
        Alcotest.(check bool)
          (name ^ ": orbit tallies flowing") true
          (stats.Versa.Lts.orbit_hits + stats.Versa.Lts.orbit_misses > 0))
    [ (1, 0.5); (2, 0.8); (4, 0.8); (4, 1.3); (6, 0.9); (6, 1.2) ]

(* The reduction composes with the work-stealing pool: at jobs 4 with an
   eager cutover the verdicts and scenario invariants must match jobs 1,
   reduction on in both. *)
let test_families_parallel_equivalent () =
  List.iter
    (fun (threads, utilization) ->
      let name = Fmt.str "family %d@%.2f" threads utilization in
      let root =
        Aadl.Instantiate.of_string (family ~threads ~utilization ())
      in
      let seq = analyze_sym ~symmetry:true root in
      let par = analyze_sym ~symmetry:true ~jobs:4 root in
      Alcotest.(check string)
        (name ^ ": jobs4 verdict") (describe seq) (describe par);
      Alcotest.(check int)
        (name ^ ": jobs4 states")
        (Versa.Explorer.num_states seq.Analysis.Schedulability.exploration)
        (Versa.Explorer.num_states par.Analysis.Schedulability.exploration))
    [ (4, 0.8); (4, 1.3) ]

(* {1 Soundness: the de-canonicalized scenario is a real path}

   Walk the returned trace through the *raw* (unreduced) prioritized
   semantics from the real initial state: some branch taking exactly
   these steps must exist and end in a deadlock.  The walk backtracks
   because a step label does not always determine the successor — a
   timed action like [{(cpu,1)}] is offered once per thread that could
   run — so validity is "there exists a path with these labels", not
   "the first label match leads somewhere".  This is the witness that
   de-canonicalization produced a genuine counterexample of the original
   model, not of the quotient. *)

let test_scenario_replays_in_raw_semantics () =
  List.iter
    (fun (threads, utilization) ->
      let name = Fmt.str "family %d@%.2f" threads utilization in
      let tr = translation_of (family ~threads ~utilization ()) in
      let defs = tr.Translate.Pipeline.defs in
      let r =
        Versa.Explorer.check_deadlock ~engine:Versa.Explorer.On_the_fly
          ~symmetry:tr.Translate.Pipeline.symmetry defs
          tr.Translate.Pipeline.system
      in
      match r.Versa.Explorer.verdict with
      | Versa.Explorer.Deadlock { trace; _ } ->
          let cache = Semantics.make_cache () in
          let rec replay cur = function
            | [] -> Semantics.h_prioritized ~cache defs cur = []
            | step :: rest ->
                List.exists
                  (fun (s, t) -> s = step && replay t rest)
                  (Semantics.h_prioritized ~cache defs cur)
          in
          Alcotest.(check bool)
            (name ^ ": scenario replays to a raw deadlock")
            true
            (replay
               (Hproc.of_proc tr.Translate.Pipeline.system)
               (Versa.Trace.steps trace))
      | Versa.Explorer.Deadlock_free | Versa.Explorer.Inconclusive _ ->
          Alcotest.failf "%s: expected a deadlock" name)
    [ (3, 1.5); (4, 1.3); (6, 1.5) ]

(* {1 Properties} *)

let gen_family_params =
  QCheck2.Gen.(pair (int_range 1 5) (int_range 40 140))

let prop_reduction_preserves_verdict =
  QCheck2.Test.make ~name:"symmetry on = symmetry off (random families)"
    ~count:12 gen_family_params (fun (threads, u_pct) ->
      let utilization = float_of_int u_pct /. 100. in
      let root =
        Aadl.Instantiate.of_string (family ~threads ~utilization ())
      in
      describe (analyze_sym ~symmetry:true root)
      = describe (analyze_sym ~symmetry:false root))

let prop_canon_idempotent_random =
  QCheck2.Test.make ~name:"canon is idempotent (random families)" ~count:8
    gen_family_params (fun (threads, u_pct) ->
      let utilization = float_of_int u_pct /. 100. in
      let tr = translation_of (family ~threads ~utilization ()) in
      let spec = tr.Translate.Pipeline.symmetry in
      let config =
        {
          Versa.Lts.default_config with
          max_states = Some 2_000;
          stop_at_deadlock = false;
        }
      in
      let lts =
        Versa.Lts.build ~config tr.Translate.Pipeline.defs
          tr.Translate.Pipeline.system
      in
      List.for_all
        (fun id ->
          let t = Hproc.of_proc (Versa.Lts.term lts id) in
          let c = Symmetry.canon spec t in
          Hproc.equal c (Symmetry.canon spec c))
        (List.init (min 200 (Versa.Lts.num_states lts)) Fun.id))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_reduction_preserves_verdict; prop_canon_idempotent_random ]

let () =
  Alcotest.run "symmetry"
    [
      ( "detection",
        [
          Alcotest.test_case "replicated EDF families merge" `Quick
            test_detect_replicated_family;
          Alcotest.test_case "single thread: no class" `Quick
            test_detect_single_thread_no_class;
          Alcotest.test_case "RM/DM families do not merge" `Quick
            test_detect_rm_family_not_merged;
          Alcotest.test_case "almost-identical threads do not merge" `Quick
            test_detect_almost_identical_not_merged;
          Alcotest.test_case "e6 family is asymmetric" `Quick
            test_detect_e6_asymmetric;
        ] );
      ( "canonicalization",
        [
          Alcotest.test_case "idempotent on reachable states" `Quick
            test_canon_idempotent_on_reachable_states;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "example models" `Slow
            test_example_models_equivalent;
          Alcotest.test_case "generated families" `Quick
            test_families_equivalent;
          Alcotest.test_case "parallel exploration" `Quick
            test_families_parallel_equivalent;
        ] );
      ( "soundness",
        [
          Alcotest.test_case "scenario replays in the raw semantics" `Quick
            test_scenario_replays_in_raw_semantics;
        ] );
      ("properties", qcheck_cases);
    ]
