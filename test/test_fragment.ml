(* Tests for the fragment IR behind the translation pipeline: the
   cache must be semantics-preserving (byte-identical composed systems,
   identical verdicts on every shipped example model), the scoped naming
   must keep colliding sanitized paths apart, and the incremental
   sensitivity sweep must agree point-for-point with the from-scratch
   baseline while actually reusing fragments. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let example_models_dir () =
  List.find_opt Sys.file_exists [ "../examples/models"; "examples/models" ]

let example_models () =
  match example_models_dir () with
  | None -> Alcotest.fail "examples/models not found (missing dune deps?)"
  | Some dir ->
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".aadl")
      |> List.sort compare
      |> List.map (fun f -> (f, read_file (Filename.concat dir f)))

(* The composed system and its definitions, printed: if these strings
   are equal the translations are observably identical. *)
let print_translation (tr : Translate.Pipeline.t) =
  Fmt.str "%a@.%a@.%a" Acsr.Defs.pp tr.Translate.Pipeline.defs Acsr.Proc.pp
    tr.Translate.Pipeline.system Translate.Pipeline.pp_summary tr

let analyze_translation tr =
  Analysis.Schedulability.analyze_translation
    ~options:
      { Analysis.Schedulability.default_options with max_states = 300_000 }
    tr

let describe (r : Analysis.Schedulability.t) =
  match r.Analysis.Schedulability.verdict with
  | Analysis.Schedulability.Schedulable ->
      Fmt.str "schedulable (%d states)"
        (Versa.Explorer.num_states r.Analysis.Schedulability.exploration)
  | Analysis.Schedulability.Not_schedulable { scenario; trace = _ } ->
      Fmt.str "NOT schedulable (%d states): %a"
        (Versa.Explorer.num_states r.Analysis.Schedulability.exploration)
        Analysis.Raise_trace.pp scenario
  | Analysis.Schedulability.Inconclusive why -> "inconclusive: " ^ why

(* {1 Golden: the cache changes nothing, on every example model} *)

let test_cache_is_semantics_preserving () =
  List.iter
    (fun (file, contents) ->
      let root = Aadl.Instantiate.of_string contents in
      let cold = Translate.Pipeline.translate root in
      let cache = Translate.Fragment_cache.create () in
      let once = Translate.Pipeline.translate ~cache root in
      let twice = Translate.Pipeline.translate ~cache root in
      Alcotest.(check string)
        (file ^ ": cached translation is byte-identical")
        (print_translation cold) (print_translation once);
      Alcotest.(check string)
        (file ^ ": warm translation is byte-identical")
        (print_translation cold) (print_translation twice);
      Alcotest.(check int)
        (file ^ ": cold run reuses nothing") 0
        once.Translate.Pipeline.fragments_reused;
      (* every cacheable fragment hits on the second run *)
      let cacheable =
        List.length twice.Translate.Pipeline.fragments
        - if Translate.Modal.find root = None then 0 else 1
      in
      Alcotest.(check int)
        (file ^ ": warm run reuses every cacheable fragment")
        cacheable
        twice.Translate.Pipeline.fragments_reused;
      Alcotest.(check string)
        (file ^ ": verdict unchanged by the cache")
        (describe (analyze_translation cold))
        (describe (analyze_translation twice)))
    (example_models ())

(* {1 Naming: colliding sanitized paths stay distinct} *)

(* [a] containing thread [b] sanitizes to "a_b" — exactly the top-level
   thread subcomponent's name.  Before scoped naming this generated two
   processes called Task_a_b ("duplicate generated process"); the scope
   must qualify the later claimant and keep the system well-formed. *)
let colliding_model =
  "processor cpu\n\
   properties\n\
  \  Scheduling_Protocol => RATE_MONOTONIC_PROTOCOL;\n\
   end cpu;\n\n\
   thread worker\n\
   properties\n\
  \  Dispatch_Protocol => Periodic;\n\
  \  Period => 8 ms;\n\
  \  Compute_Execution_Time => 1 ms;\n\
  \  Compute_Deadline => 8 ms;\n\
   end worker;\n\n\
   process a\n\
   end a;\n\n\
   process implementation a.impl\n\
   subcomponents\n\
  \  b: thread worker;\n\
   end a.impl;\n\n\
   system root\n\
   end root;\n\n\
   system implementation root.impl\n\
   subcomponents\n\
  \  cpu1: processor cpu;\n\
  \  a: process a.impl;\n\
  \  a_b: thread worker;\n\
   properties\n\
  \  Actual_Processor_Binding => reference (cpu1) applies to a.b;\n\
  \  Actual_Processor_Binding => reference (cpu1) applies to a_b;\n\
   end root.impl;\n"

let test_colliding_names_translate () =
  let root = Aadl.Instantiate.of_string colliding_model in
  let tr = Translate.Pipeline.translate root in
  Alcotest.(check int)
    "both threads generated" 2 tr.Translate.Pipeline.num_thread_processes;
  (* the registry still maps generated names back to the REAL paths *)
  let meanings =
    Translate.Naming.entries tr.Translate.Pipeline.registry
    |> List.filter_map (fun (_, m) ->
           match m with
           | Translate.Naming.Dispatch_of p -> Some (String.concat "." p)
           | _ -> None)
    |> List.sort_uniq compare
  in
  Alcotest.(check (list string))
    "registry names both real paths" [ "a.b"; "a_b" ] meanings;
  (* and the system analyzes normally: two light threads, schedulable *)
  match (analyze_translation tr).Analysis.Schedulability.verdict with
  | Analysis.Schedulability.Schedulable -> ()
  | _ -> Alcotest.fail "colliding-name system should be schedulable"

(* {1 Sensitivity: incremental sweep equals from-scratch sweep} *)

let test_incremental_sweep_matches () =
  let root = Aadl.Instantiate.of_string (Gen.cruise_control ()) in
  let thread = [ "hci"; "ref_speed" ] in
  let cets = [ 1; 2; 3; 4 ] in
  let sweep reuse =
    Analysis.Sensitivity.sweep
      ~options:{ Analysis.Sensitivity.default_options with reuse }
      ~thread ~cets root
  in
  let incremental = sweep true and scratch = sweep false in
  List.iter2
    (fun (i : Analysis.Sensitivity.point) (s : Analysis.Sensitivity.point) ->
      Alcotest.(check bool)
        (Fmt.str "cet %d: same verdict" i.Analysis.Sensitivity.cet)
        s.Analysis.Sensitivity.schedulable i.Analysis.Sensitivity.schedulable)
    incremental scratch;
  let reused ps =
    List.fold_left
      (fun acc (p : Analysis.Sensitivity.point) ->
        acc + p.Analysis.Sensitivity.fragments_reused)
      0 ps
  in
  Alcotest.(check bool)
    "incremental sweep reuses fragments" true
    (reused incremental > 0);
  Alcotest.(check int) "from-scratch sweep reuses nothing" 0 (reused scratch);
  (* and the binary-search breakdown agrees with itself under reuse *)
  let breakdown reuse =
    (Analysis.Sensitivity.breakdown
       ~options:{ Analysis.Sensitivity.default_options with reuse }
       ~thread root)
      .Analysis.Sensitivity.breakdown_cmax
  in
  Alcotest.(check (option int))
    "breakdown agrees with from-scratch" (breakdown false) (breakdown true)

let test_sweep_unknown_thread_rejected () =
  let root = Aadl.Instantiate.of_string (Gen.cruise_control ()) in
  match
    Analysis.Sensitivity.sweep ~thread:[ "no"; "such" ] ~cets:[ 1 ] root
  with
  | exception Analysis.Sensitivity.Error _ -> ()
  | _ -> Alcotest.fail "unknown thread must be rejected"

(* {1 Latency: the on-the-fly default agrees with the full engine} *)

let test_latency_engines_agree () =
  let root = Aadl.Instantiate.of_string (Gen.cruise_control ()) in
  let check engine bound_ms =
    Analysis.Latency.check
      ~options:{ Analysis.Latency.default_options with engine }
      ~from_thread:[ "hci"; "button_panel" ]
      ~to_thread:[ "ccl"; "cruise2" ]
      ~bound:(Aadl.Time.of_ms bound_ms) root
  in
  List.iter
    (fun bound_ms ->
      let otf = check Versa.Explorer.On_the_fly bound_ms in
      let full = check Versa.Explorer.Full bound_ms in
      let show (r : Analysis.Latency.t) =
        match r.Analysis.Latency.verdict with
        | Analysis.Latency.Latency_met -> "met"
        | Analysis.Latency.Latency_violated { scenario; trace = _ } ->
            Fmt.str "violated: %a" Analysis.Raise_trace.pp scenario
        | Analysis.Latency.Latency_inconclusive why -> "inconclusive: " ^ why
      in
      Alcotest.(check string)
        (Fmt.str "bound %d ms" bound_ms)
        (show full) (show otf))
    [ 20; 500 ]

let () =
  Alcotest.run "fragment"
    [
      ( "cache",
        [
          Alcotest.test_case "semantics-preserving on all examples" `Quick
            test_cache_is_semantics_preserving;
        ] );
      ( "naming",
        [
          Alcotest.test_case "colliding sanitized paths" `Quick
            test_colliding_names_translate;
        ] );
      ( "sensitivity",
        [
          Alcotest.test_case "incremental sweep matches" `Quick
            test_incremental_sweep_matches;
          Alcotest.test_case "unknown thread rejected" `Quick
            test_sweep_unknown_thread_rejected;
        ] );
      ( "latency",
        [
          Alcotest.test_case "engines agree" `Quick test_latency_engines_agree;
        ] );
    ]
