(* Tests for the XML layer: the generic parser, and the instance
   interchange format (parse/print round-trips, cross-checked by running
   the full analysis on the re-loaded instance). *)

let lc = String.lowercase_ascii

(* {1 Generic XML} *)

let test_xml_basic () =
  let x =
    Aadl.Xml.parse_string
      {|<?xml version="1.0"?><a x="1" y="two"><!-- note --><b/><c>text</c></a>|}
  in
  Alcotest.(check (option string)) "tag" (Some "a") (Aadl.Xml.tag x);
  Alcotest.(check (option string)) "attr x" (Some "1") (Aadl.Xml.attr "x" x);
  Alcotest.(check (option string)) "attr y" (Some "two") (Aadl.Xml.attr "y" x);
  Alcotest.(check int) "two element children" 2
    (List.length (Aadl.Xml.all_children x));
  match Aadl.Xml.child "c" x with
  | Some (Aadl.Xml.Element (_, _, [ Aadl.Xml.Text t ])) ->
      Alcotest.(check string) "text" "text" t
  | _ -> Alcotest.fail "missing <c> text"

let test_xml_entities () =
  let x = Aadl.Xml.parse_string {|<a v="&lt;&amp;&quot;">x &gt; y</a>|} in
  Alcotest.(check (option string)) "attr entities" (Some {|<&"|})
    (Aadl.Xml.attr "v" x);
  (match x with
  | Aadl.Xml.Element (_, _, [ Aadl.Xml.Text t ]) ->
      Alcotest.(check string) "text entities" "x > y" t
  | _ -> Alcotest.fail "expected text");
  (* serialization escapes them back *)
  let s = Aadl.Xml.to_string x in
  let x2 = Aadl.Xml.parse_string s in
  Alcotest.(check bool) "round-trip" true (x = x2)

let test_xml_errors () =
  let bad input =
    match Aadl.Xml.parse_string input with
    | _ -> false
    | exception Aadl.Xml.Error _ -> true
  in
  Alcotest.(check bool) "mismatched tags" true (bad "<a></b>");
  Alcotest.(check bool) "unterminated" true (bad "<a>");
  Alcotest.(check bool) "bad entity" true (bad "<a>&nope;</a>");
  Alcotest.(check bool) "trailing garbage" true (bad "<a/><b/>")

let test_xml_cdata () =
  match Aadl.Xml.parse_string "<a><![CDATA[1 < 2 && 3 > 2]]></a>" with
  | Aadl.Xml.Element (_, _, [ Aadl.Xml.Text t ]) ->
      Alcotest.(check string) "cdata preserved" "1 < 2 && 3 > 2" t
  | _ -> Alcotest.fail "expected CDATA text"

(* {1 Instance interchange} *)

(* Instances compare equal modulo source locations and resolved applies_to
   paths, which the format intentionally drops. *)
let rec normalize (i : Aadl.Instance.t) : Aadl.Instance.t =
  let norm_prop (p : Aadl.Ast.prop) =
    { p with Aadl.Ast.ploc = Aadl.Ast.no_loc; applies_to = [] }
  in
  let norm_feature (f : Aadl.Ast.feature) =
    {
      f with
      Aadl.Ast.floc = Aadl.Ast.no_loc;
      fprops = List.map norm_prop f.Aadl.Ast.fprops;
    }
  in
  let norm_conn (c : Aadl.Ast.connection) =
    {
      c with
      Aadl.Ast.conn_loc = Aadl.Ast.no_loc;
      conn_props = List.map norm_prop c.Aadl.Ast.conn_props;
    }
  in
  let norm_mode (m : Aadl.Ast.mode) =
    { m with Aadl.Ast.mode_loc = Aadl.Ast.no_loc }
  in
  let norm_trans (t : Aadl.Ast.mode_transition) =
    { t with Aadl.Ast.mt_loc = Aadl.Ast.no_loc }
  in
  {
    i with
    Aadl.Instance.props = List.map norm_prop i.Aadl.Instance.props;
    features = List.map norm_feature i.Aadl.Instance.features;
    connections = List.map norm_conn i.Aadl.Instance.connections;
    modes = List.map norm_mode i.Aadl.Instance.modes;
    transitions = List.map norm_trans i.Aadl.Instance.transitions;
    children = List.map normalize i.Aadl.Instance.children;
  }

let fixtures =
  [
    ("cruise control", Gen.cruise_control ());
    ("event driven", Gen.event_driven ());
    ("modal", Gen.modal_system ());
    ("hierarchical", Gen.hierarchical_system ());
    ("shared data", Gen.shared_data_system ());
  ]

let test_instance_roundtrip () =
  List.iter
    (fun (name, text) ->
      let root = Aadl.Instantiate.of_string text in
      let round =
        Aadl.Instance_xml.of_string (Aadl.Instance_xml.to_string root)
      in
      Alcotest.(check bool)
        (name ^ " round-trips structurally")
        true
        (normalize root = normalize round))
    fixtures

let test_roundtrip_preserves_analysis () =
  List.iter
    (fun (name, text) ->
      let root = Aadl.Instantiate.of_string text in
      let round =
        Aadl.Instance_xml.of_string (Aadl.Instance_xml.to_string root)
      in
      let analyze r = Analysis.Schedulability.analyze r in
      let r1 = analyze root and r2 = analyze round in
      Alcotest.(check bool)
        (name ^ " same verdict")
        (Analysis.Schedulability.is_schedulable r1)
        (Analysis.Schedulability.is_schedulable r2);
      Alcotest.(check int)
        (name ^ " same state count")
        (Versa.Explorer.num_states
           r1.Analysis.Schedulability.exploration)
        (Versa.Explorer.num_states
           r2.Analysis.Schedulability.exploration))
    fixtures

let test_instance_paths_rebuilt () =
  let root = Aadl.Instantiate.of_string (Gen.cruise_control ()) in
  let round = Aadl.Instance_xml.of_string (Aadl.Instance_xml.to_string root) in
  match Aadl.Instance.find round [ "hci"; "ref_speed" ] with
  | Some th ->
      Alcotest.(check (list string)) "path" [ "hci"; "ref_speed" ]
        th.Aadl.Instance.path;
      Alcotest.(check bool) "category" true
        (th.Aadl.Instance.category = Aadl.Ast.Thread)
  | None -> Alcotest.fail "hci.ref_speed lost in round-trip"

let test_schema_errors () =
  let bad input =
    match Aadl.Instance_xml.of_string input with
    | _ -> false
    | exception Aadl.Instance_xml.Error _ -> true
  in
  Alcotest.(check bool) "missing category" true
    (bad {|<instance name="x"/>|});
  Alcotest.(check bool) "unknown category" true
    (bad {|<instance name="x" category="gizmo"/>|});
  Alcotest.(check bool) "malformed xml" true (bad "<instance")

let () =
  ignore lc;
  Alcotest.run "xml"
    [
      ( "generic",
        [
          Alcotest.test_case "basic" `Quick test_xml_basic;
          Alcotest.test_case "entities" `Quick test_xml_entities;
          Alcotest.test_case "errors" `Quick test_xml_errors;
          Alcotest.test_case "cdata" `Quick test_xml_cdata;
        ] );
      ( "instance",
        [
          Alcotest.test_case "round-trip" `Quick test_instance_roundtrip;
          Alcotest.test_case "analysis preserved" `Quick
            test_roundtrip_preserves_analysis;
          Alcotest.test_case "paths rebuilt" `Quick test_instance_paths_rebuilt;
          Alcotest.test_case "schema errors" `Quick test_schema_errors;
        ] );
    ]
