(* Tests for the VERSA substrate: LTS construction, deadlock detection with
   diagnostic traces, trace timelines, and bisimulation reduction.  Includes
   the Figure 3 composition of the paper (Simple || SimpleDriver). *)

open Acsr

let cpu = Resource.make "cpu"
let bus = Resource.make "bus"

let e_int n = Expr.Int n

let action accesses =
  Action.of_list (List.map (fun (r, p) -> (r, e_int p)) accesses)

(* Simple = {(cpu,1)} : {(cpu,1),(bus,1)} : done!.Simple *)
let simple_defs =
  Defs.of_list
    [
      ( "Simple",
        [],
        Proc.(
          act
            (action [ (cpu, 1) ])
            (act
               (action [ (cpu, 1); (bus, 1) ])
               (send (Label.make "done") (call "Simple" [])))) );
    ]

(* {1 LTS construction} *)

let test_lts_simple_cycle () =
  let lts = Versa.Lts.build simple_defs (Proc.call "Simple" []) in
  Alcotest.(check int) "three states" 3 (Versa.Lts.num_states lts);
  Alcotest.(check int) "three transitions" 3 (Versa.Lts.num_transitions lts);
  Alcotest.(check bool) "not truncated" false (Versa.Lts.truncated lts);
  Alcotest.(check (list int)) "no deadlocks" [] (Versa.Lts.deadlocks lts)

let test_lts_deadlock_and_path () =
  let p = Proc.(act (action [ (cpu, 1) ]) (act (action [ (cpu, 1) ]) nil)) in
  let lts = Versa.Lts.build Defs.empty p in
  Alcotest.(check int) "three states" 3 (Versa.Lts.num_states lts);
  (match Versa.Lts.deadlocks lts with
  | [ d ] ->
      Alcotest.(check int) "deadlock at depth 2" 2 (Versa.Lts.depth lts d);
      let path = Versa.Lts.path_to lts d in
      Alcotest.(check int) "path length 2" 2 (List.length path)
  | _ -> Alcotest.fail "expected exactly one deadlock")

let test_lts_max_states_truncates () =
  (* Counter(n) = {} : Counter(n+1) — infinite state space. *)
  let defs =
    Defs.of_list
      [
        ( "Counter",
          [ "n" ],
          Proc.(
            act Action.idle
              (call "Counter" [ Expr.Add (Expr.Var "n", Expr.Int 1) ])) );
      ]
  in
  let config =
    {
      Versa.Lts.default_config with
      max_states = Some 50;
      stop_at_deadlock = false;
    }
  in
  let lts = Versa.Lts.build ~config defs (Proc.call "Counter" [ e_int 0 ]) in
  Alcotest.(check bool) "truncated" true (Versa.Lts.truncated lts);
  Alcotest.(check bool) "around 50 states" true
    (Versa.Lts.num_states lts >= 50 && Versa.Lts.num_states lts <= 52);
  Alcotest.(check (list int)) "frontier states are not deadlocks" []
    (Versa.Lts.deadlocks lts)

let test_lts_unprioritized_larger () =
  (* Under prioritized semantics the high-priority contender suppresses the
     low-priority one, so the unprioritized LTS has at least as many
     transitions. *)
  let contender prio =
    Proc.(choice (act (action [ (cpu, prio) ]) nil) (act Action.idle nil))
  in
  let p = Proc.par (contender 2) (contender 1) in
  let pr = Versa.Lts.build ~semantics:Versa.Lts.Prioritized Defs.empty p in
  let un = Versa.Lts.build ~semantics:Versa.Lts.Unprioritized Defs.empty p in
  Alcotest.(check bool) "unprioritized has more transitions" true
    (Versa.Lts.num_transitions un > Versa.Lts.num_transitions pr)

(* {1 Explorer verdicts} *)

let test_explorer_deadlock_free () =
  let r = Versa.Explorer.check_deadlock simple_defs (Proc.call "Simple" []) in
  Alcotest.(check bool) "deadlock free" true (Versa.Explorer.is_deadlock_free r)

let test_explorer_finds_shortest_counterexample () =
  (* A choice between a short and a long path to deadlock: BFS must report
     the short one. *)
  let tick p = Proc.act Action.idle p in
  let p = Proc.(choice (tick nil) (tick (tick (tick nil)))) in
  let r =
    Versa.Explorer.check_deadlock ~stop_at_deadlock:false Defs.empty p
  in
  match r.Versa.Explorer.verdict with
  | Versa.Explorer.Deadlock { trace; _ } ->
      Alcotest.(check int) "shortest trace" 1 (Versa.Trace.length trace)
  | _ -> Alcotest.fail "expected a deadlock"

let test_explorer_stop_at_deadlock_truncates () =
  let tick p = Proc.act Action.idle p in
  let p = Proc.(choice (tick nil) (tick (tick (tick nil)))) in
  let r = Versa.Explorer.check_deadlock ~stop_at_deadlock:true Defs.empty p in
  match r.Versa.Explorer.verdict with
  | Versa.Explorer.Deadlock _ -> ()
  | _ -> Alcotest.fail "expected a deadlock even when stopping early"

(* {1 Figure 3: Simple || SimpleDriver} *)

(* The driver of Fig. 3: its first action uses bus at priority 2 but is
   disjoint from Simple's first step; its second action preempts Simple's
   cpu+bus step for one quantum; afterwards it either forces an interrupt
   or keeps preempting, driving Simple into its exception alternative. *)
let fig3_defs =
  let interrupt = Label.make "interrupt" in
  let done_l = Label.make "done" in
  let exc = Label.make "exception" in
  (* Simple', as in Fig. 3: first iteration as Fig. 2, second iteration
     within a scope with exception and interrupt exits. *)
  let compute_body =
    Proc.(
      choice
        (act
           (action [ (cpu, 1) ])
           (act (action [ (cpu, 1); (bus, 1) ]) (send done_l nil)))
        (act Action.idle (send exc nil)))
  in
  let simple' =
    Proc.scope
      ~exc:(exc, Proc.send (Label.make "exception_handled") Proc.nil)
      ~interrupt:
        (Proc.receive interrupt
           (Proc.send (Label.make "interrupt_handled") Proc.nil))
      compute_body
  in
  let simple =
    Proc.(
      act
        (action [ (cpu, 1) ])
        (act (action [ (cpu, 1); (bus, 1) ]) (send done_l simple')))
  in
  let driver =
    Proc.(
      act
        (action [ (bus, 2) ])
        (act
           (action [ (bus, 2) ])
           (receive done_l
              (choice
                 (act (action [ (bus, 2) ]) (send interrupt nil))
                 (act (action [ (bus, 2) ]) (act (action [ (bus, 2) ]) nil))))))
  in
  let system =
    Proc.restrict
      (Label.Set.of_list [ done_l; interrupt ])
      (Proc.par simple driver)
  in
  (Defs.empty, system)

let test_fig3_bus_preemption () =
  let defs, system = fig3_defs in
  (* quantum 0: {(cpu,1)} and {(bus,2)} are disjoint and proceed together *)
  match Semantics.prioritized defs system with
  | [ (Step.Action a, s1) ] ->
      Alcotest.(check int) "cpu used" 1 (Action.Ground.priority_of a cpu);
      Alcotest.(check int) "bus at driver priority" 2
        (Action.Ground.priority_of a bus);
      (* quantum 1: Simple wants {(cpu,1),(bus,1)} but the driver claims
         {(bus,2)}: resource conflict — Simple cannot run this quantum.
         With no idling alternative in this reduced model, the composition
         deadlocks... unless Simple's step waits.  Here the driver's bus
         access excludes Simple's, so no joint step exists. *)
      Alcotest.(check bool) "second quantum blocks Simple" true
        (Semantics.prioritized defs s1 = [])
  | _ -> Alcotest.fail "expected one joint first step"

let test_fig3_full_exploration () =
  let defs, system = fig3_defs in
  let lts = Versa.Lts.build defs system in
  Alcotest.(check bool) "has states" true (Versa.Lts.num_states lts > 1)

(* {1 Trace timelines} *)

let test_trace_duration_counts_ticks () =
  let a = Label.make "a" in
  let p =
    Proc.(
      send a (act (action [ (cpu, 1) ]) (act (action [ (cpu, 1) ]) nil)))
  in
  let lts = Versa.Lts.build Defs.empty p in
  match Versa.Lts.deadlocks lts with
  | [ d ] ->
      let trace = Versa.Trace.to_deadlock lts d in
      Alcotest.(check int) "three steps" 3 (Versa.Trace.length trace);
      Alcotest.(check int) "two quanta" 2 (Versa.Trace.duration trace);
      let quanta = Versa.Trace.quanta trace in
      Alcotest.(check int) "two groups" 2 (List.length quanta);
      (match quanta with
      | q0 :: _ ->
          Alcotest.(check int) "first group at t=0" 0 q0.Versa.Trace.at_time;
          Alcotest.(check int) "event then tick" 1
            (List.length q0.Versa.Trace.instant)
      | [] -> Alcotest.fail "no quanta")
  | _ -> Alcotest.fail "expected one deadlock"

(* {1 Bisimulation} *)

let test_bisim_collapses_duplicate_branches () =
  (* a!.NIL + a!.NIL explored unprioritized has duplicate structure that
     quotients to the same blocks as a!.NIL. *)
  let p1 = Proc.(choice (send (Label.make "a") nil) (send (Label.make "a") nil)) in
  let p2 = Proc.send (Label.make "a") Proc.nil in
  let l1 = Versa.Lts.build Defs.empty p1 in
  let l2 = Versa.Lts.build Defs.empty p2 in
  Alcotest.(check bool) "bisimilar" true (Versa.Bisim.equivalent l1 l2);
  let q = Versa.Bisim.quotient l1 in
  Alcotest.(check int) "two blocks" 2 q.Versa.Bisim.num_states

let test_bisim_distinguishes_labels () =
  let p1 = Proc.send (Label.make "a") Proc.nil in
  let p2 = Proc.send (Label.make "b") Proc.nil in
  let l1 = Versa.Lts.build Defs.empty p1 in
  let l2 = Versa.Lts.build Defs.empty p2 in
  Alcotest.(check bool) "not bisimilar" false (Versa.Bisim.equivalent l1 l2)

let test_bisim_quotient_preserves_deadlock () =
  let p =
    Proc.(
      choice
        (act (action [ (cpu, 1) ]) nil)
        (act (action [ (cpu, 1) ]) (act (action [ (cpu, 1) ]) nil)))
  in
  let lts = Versa.Lts.build ~semantics:Versa.Lts.Unprioritized Defs.empty p in
  let q = Versa.Bisim.quotient lts in
  let has_deadlock_block =
    Array.exists (fun row -> row = []) q.Versa.Bisim.edges
  in
  Alcotest.(check bool) "deadlock block exists" true has_deadlock_block;
  Alcotest.(check bool) "fewer or equal states" true
    (q.Versa.Bisim.num_states <= Versa.Lts.num_states lts)

(* {1 Weak bisimulation} *)

let test_weak_abstracts_internal_steps () =
  (* a! reached through an internal synchronization ~weak~ a! directly *)
  let b = Label.make "b" in
  let a = Label.make "a" in
  let with_tau =
    Proc.(
      restrict (Label.set_of_list [ b ])
        (par (send b (send a nil)) (receive b nil)))
  in
  let direct = Proc.send a (Proc.par Proc.nil Proc.nil) in
  let l1 = Versa.Lts.build Defs.empty with_tau in
  let l2 = Versa.Lts.build Defs.empty direct in
  Alcotest.(check bool) "not strongly bisimilar" false
    (Versa.Bisim.equivalent l1 l2);
  Alcotest.(check bool) "weakly bisimilar" true
    (Versa.Bisim.Weak.equivalent l1 l2)

let test_weak_distinguishes_observables () =
  let l1 = Versa.Lts.build Defs.empty (Proc.send (Label.make "a") Proc.nil) in
  let l2 = Versa.Lts.build Defs.empty (Proc.send (Label.make "b") Proc.nil) in
  Alcotest.(check bool) "different labels stay apart" false
    (Versa.Bisim.Weak.equivalent l1 l2)

let test_weak_refine_no_larger_than_strong () =
  let p =
    Proc.(
      choice
        (send (Label.make "a") nil)
        (restrict (Label.set_of_list [ Label.make "c" ])
           (par (send (Label.make "c") (send (Label.make "a") nil))
              (receive (Label.make "c") nil))))
  in
  let lts = Versa.Lts.build Defs.empty p in
  let strong = Versa.Bisim.refine lts in
  let weak = Versa.Bisim.Weak.refine lts in
  Alcotest.(check bool) "weak partition is coarser or equal" true
    (weak.Versa.Bisim.num_blocks <= strong.Versa.Bisim.num_blocks)

(* {1 DOT export} *)

let test_dot_export () =
  let p = Proc.(act (action [ (cpu, 1) ]) nil) in
  let lts = Versa.Lts.build Defs.empty p in
  let dot = Versa.Dot.to_string ~show_terms:true lts in
  let contains sub =
    let n = String.length dot and m = String.length sub in
    let rec go i = i + m <= n && (String.sub dot i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "digraph" true (contains "digraph lts");
  Alcotest.(check bool) "initial arrow" true (contains "init -> s0");
  Alcotest.(check bool) "deadlock highlighted" true (contains "doublecircle");
  Alcotest.(check bool) "edge labeled with the action" true
    (contains "{(cpu,1)}")

(* {1 Property-based tests} *)

(* Random guarded process generator over a tiny alphabet; depth-bounded so
   the state space is finite. *)
let gen_proc : Proc.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  sized_size (int_range 0 5) @@ fix (fun self n ->
      if n = 0 then return Proc.nil
      else
        frequency
          [
            (2, return Proc.nil);
            ( 3,
              let* p = self (n - 1) in
              let* prio = int_range 0 2 in
              return (Proc.act (action [ (cpu, prio) ]) p) );
            ( 2,
              let* p = self (n - 1) in
              return (Proc.act Action.idle p) );
            ( 2,
              let* p = self (n - 1) in
              let* l = oneofl [ "a"; "b" ] in
              let* out = bool in
              return
                (if out then Proc.send (Label.make l) p
                 else Proc.receive (Label.make l) p) );
            ( 2,
              let* p = self (n / 2) in
              let* q = self (n / 2) in
              return (Proc.choice p q) );
            ( 1,
              let* p = self (n / 2) in
              let* q = self (n / 2) in
              return (Proc.par p q) );
          ])

let prop_prioritized_subset_of_steps =
  QCheck2.Test.make ~name:"prioritized steps are a subset" ~count:200 gen_proc
    (fun p ->
      let all = Semantics.steps Defs.empty p in
      let pr = Semantics.prioritized Defs.empty p in
      List.for_all (fun s -> List.mem s all) pr)

let prop_prioritized_nonempty_when_steps =
  QCheck2.Test.make ~name:"prioritization never empties a state" ~count:200
    gen_proc (fun p ->
      let all = Semantics.steps Defs.empty p in
      all = [] || Semantics.prioritized Defs.empty p <> [])

let prop_lts_deterministic =
  QCheck2.Test.make ~name:"exploration is deterministic" ~count:100 gen_proc
    (fun p ->
      let l1 = Versa.Lts.build Defs.empty p in
      let l2 = Versa.Lts.build Defs.empty p in
      Versa.Lts.num_states l1 = Versa.Lts.num_states l2
      && Versa.Lts.num_transitions l1 = Versa.Lts.num_transitions l2)

let prop_quotient_no_larger =
  QCheck2.Test.make ~name:"bisimulation quotient is no larger" ~count:100
    gen_proc (fun p ->
      let lts = Versa.Lts.build Defs.empty p in
      let q = Versa.Bisim.quotient lts in
      q.Versa.Bisim.num_states <= Versa.Lts.num_states lts)

(* {2 Algebraic laws, checked up to strong bisimilarity} *)

let lts_of p = Versa.Lts.build ~semantics:Versa.Lts.Unprioritized Defs.empty p

let prop_par_commutative =
  QCheck2.Test.make ~name:"P || Q ~ Q || P" ~count:100
    QCheck2.Gen.(pair gen_proc gen_proc)
    (fun (p, q) ->
      Versa.Bisim.equivalent (lts_of (Proc.Par (p, q))) (lts_of (Proc.Par (q, p))))

let prop_choice_commutative =
  QCheck2.Test.make ~name:"P + Q ~ Q + P" ~count:100
    QCheck2.Gen.(pair gen_proc gen_proc)
    (fun (p, q) ->
      Versa.Bisim.equivalent
        (lts_of (Proc.Choice (p, q)))
        (lts_of (Proc.Choice (q, p))))

let prop_choice_idempotent =
  QCheck2.Test.make ~name:"P + P ~ P" ~count:100 gen_proc (fun p ->
      Versa.Bisim.equivalent (lts_of (Proc.Choice (p, p))) (lts_of p))

let prop_choice_associative =
  QCheck2.Test.make ~name:"(P + Q) + R ~ P + (Q + R)" ~count:60
    QCheck2.Gen.(triple gen_proc gen_proc gen_proc)
    (fun (p, q, r) ->
      Versa.Bisim.equivalent
        (lts_of (Proc.Choice (Proc.Choice (p, q), r)))
        (lts_of (Proc.Choice (p, Proc.Choice (q, r)))))

let prop_par_associative =
  QCheck2.Test.make ~name:"(P || Q) || R ~ P || (Q || R)" ~count:40
    QCheck2.Gen.(triple gen_proc gen_proc gen_proc)
    (fun (p, q, r) ->
      Versa.Bisim.equivalent
        (lts_of (Proc.Par (Proc.Par (p, q), r)))
        (lts_of (Proc.Par (p, Proc.Par (q, r)))))

let prop_restrict_union =
  QCheck2.Test.make ~name:"(P\\F)\\G ~ P\\(F u G)" ~count:100 gen_proc
    (fun p ->
      let f = Label.set_of_list [ Label.make "a" ] in
      let g = Label.set_of_list [ Label.make "b" ] in
      let fg = Label.set_of_list [ Label.make "a"; Label.make "b" ] in
      Versa.Bisim.equivalent
        (lts_of (Proc.Restrict (g, Proc.Restrict (f, p))))
        (lts_of (Proc.Restrict (fg, p))))

let prop_self_bisimilar =
  QCheck2.Test.make ~name:"every LTS is bisimilar to itself" ~count:100
    gen_proc (fun p ->
      let lts = Versa.Lts.build Defs.empty p in
      Versa.Bisim.equivalent lts lts)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_prioritized_subset_of_steps;
      prop_prioritized_nonempty_when_steps;
      prop_lts_deterministic;
      prop_quotient_no_larger;
      prop_par_commutative;
      prop_choice_commutative;
      prop_choice_idempotent;
      prop_choice_associative;
      prop_par_associative;
      prop_restrict_union;
      prop_self_bisimilar;
    ]

(* {1 Work-stealing substrate}

   The deque and the digest-sharded store underneath the parallel
   explorer, plus the [Pool] attribution contract the explorer's
   teardown relies on. *)

let test_deque_order () =
  let q = Versa.Deque.create ~dummy:0 () in
  Alcotest.(check (option int)) "empty pop" None (Versa.Deque.pop q);
  Alcotest.(check (option int)) "empty steal" None (Versa.Deque.steal q);
  for i = 1 to 5 do
    Versa.Deque.push q i
  done;
  Alcotest.(check int) "length" 5 (Versa.Deque.length q);
  Alcotest.(check (option int)) "owner pops newest" (Some 5) (Versa.Deque.pop q);
  Alcotest.(check (option int))
    "thief steals oldest" (Some 1) (Versa.Deque.steal q);
  Alcotest.(check (option int)) "steal advances" (Some 2) (Versa.Deque.steal q);
  Alcotest.(check (option int)) "pop continues" (Some 4) (Versa.Deque.pop q);
  Alcotest.(check (option int)) "last element" (Some 3) (Versa.Deque.pop q);
  Alcotest.(check (option int)) "drained" None (Versa.Deque.pop q);
  Alcotest.(check int) "empty again" 0 (Versa.Deque.length q)

let test_deque_growth () =
  (* push far past the initial capacity; both ends must still come out
     in order across the buffer doublings *)
  let q = Versa.Deque.create ~capacity:2 ~dummy:(-1) () in
  let n = 10_000 in
  for i = 0 to n - 1 do
    Versa.Deque.push q i
  done;
  Alcotest.(check int) "all queued" n (Versa.Deque.length q);
  for i = 0 to (n / 2) - 1 do
    if Versa.Deque.steal q <> Some i then
      Alcotest.failf "steal %d out of order" i
  done;
  for i = n - 1 downto n / 2 do
    if Versa.Deque.pop q <> Some i then Alcotest.failf "pop %d out of order" i
  done;
  Alcotest.(check (option int)) "drained" None (Versa.Deque.pop q)

let test_shard_ownership_boundaries () =
  (* the digest space [0, 2^30) splits into contiguous equal ranges;
     pin both edges of every range for a power-of-two count ... *)
  let t8 : int Versa.Shards.t = Versa.Shards.create ~shards:8 () in
  let space = 1 lsl 30 in
  let range = space / 8 in
  for s = 0 to 7 do
    let lo = s * range in
    let hi = lo + range - 1 in
    Alcotest.(check int)
      (Fmt.str "shard %d low edge" s)
      s
      (Versa.Shards.owner_digest t8 lo);
    Alcotest.(check int)
      (Fmt.str "shard %d high edge" s)
      s
      (Versa.Shards.owner_digest t8 hi);
    if s > 0 then
      Alcotest.(check int)
        (Fmt.str "digest below shard %d" s)
        (s - 1)
        (Versa.Shards.owner_digest t8 (lo - 1))
  done;
  (* ... and monotonicity + surjectivity for a count that does not
     divide the space evenly *)
  let t3 : int Versa.Shards.t = Versa.Shards.create ~shards:3 () in
  let prev = ref 0 in
  let seen = Array.make 3 false in
  let samples = 1 lsl 12 in
  for k = 0 to samples - 1 do
    let d = k * (space / samples) in
    let s = Versa.Shards.owner_digest t3 d in
    if s < !prev || s > 2 then
      Alcotest.failf "owner_digest not a monotone partition at %d: %d" d s;
    prev := s;
    seen.(s) <- true
  done;
  Alcotest.(check int)
    "last digest lands in the last shard" 2
    (Versa.Shards.owner_digest t3 (space - 1));
  Alcotest.(check bool) "every shard owns some range" true
    (Array.for_all Fun.id seen);
  (* digests are folded to 30 bits, so a negative structural hash still
     maps into range *)
  let o = Versa.Shards.owner_digest t3 (-1) in
  Alcotest.(check bool) "negative digest folds into range" true
    (o >= 0 && o < 3)

let test_shard_claim_protocol () =
  let t : int Versa.Shards.t = Versa.Shards.create ~shards:1 () in
  let a = Hproc.of_proc Proc.nil in
  let b = Hproc.of_proc (Proc.act Action.idle Proc.nil) in
  Alcotest.(check bool) "absent before claim" true
    (Versa.Shards.find t a = Versa.Shards.Absent);
  Alcotest.(check bool) "first claim wins" true (Versa.Shards.try_claim t a);
  Alcotest.(check bool) "second claim loses" false (Versa.Shards.try_claim t a);
  Alcotest.(check bool) "claimed but unpublished" true
    (Versa.Shards.find t a = Versa.Shards.Claimed);
  Versa.Shards.publish t a 42;
  Alcotest.(check bool) "published value found" true
    (Versa.Shards.find t a = Versa.Shards.Found 42);
  (* batched claims: duplicates collapse, already-claimed terms are
     skipped, fresh terms come back in input order *)
  let fresh = Versa.Shards.claim_batch t 0 [ a; b; b; a ] in
  Alcotest.(check bool) "only the new term is fresh" true (fresh = [ b ]);
  Alcotest.(check bool) "batch-claimed term is claimed" true
    (Versa.Shards.find t b = Versa.Shards.Claimed);
  let contended, acquired = Versa.Shards.contention t in
  Alcotest.(check int) "uncontended single-domain use" 0 contended;
  Alcotest.(check bool) "acquisitions counted" true (acquired > 0)

exception Boom

let test_pool_steal_attribution () =
  (* Worker 0 owns the deque and idles after publishing; worker 1 steals
     the item and raises.  The error must be attributed to the domain
     that raised while stealing — index 1 — not to the deque's owner. *)
  let pool = Versa.Pool.create 2 in
  let deque = Versa.Deque.create ~dummy:0 () in
  let published = Atomic.make false in
  let stop = Atomic.make false in
  Versa.Pool.launch pool (fun index ->
      if index = 0 then begin
        Versa.Deque.push deque 42;
        Atomic.set published true;
        while not (Atomic.get stop) do
          Unix.sleepf 1e-4
        done
      end
      else begin
        while not (Atomic.get published) do
          Unix.sleepf 1e-4
        done;
        let stolen = Versa.Deque.steal deque in
        Atomic.set stop true;
        match stolen with Some 42 -> raise Boom | _ -> raise Not_found
      end);
  (match Versa.Pool.await pool with
  | () -> Alcotest.fail "expected Worker_error from the stealing domain"
  | exception Versa.Pool.Worker_error { index; error = Boom } ->
      Alcotest.(check int) "stealing domain index" 1 index
  | exception e -> raise e);
  Versa.Pool.shutdown pool

let () =
  Alcotest.run "versa"
    [
      ( "lts",
        [
          Alcotest.test_case "simple cycle" `Quick test_lts_simple_cycle;
          Alcotest.test_case "deadlock and path" `Quick
            test_lts_deadlock_and_path;
          Alcotest.test_case "max_states truncates" `Quick
            test_lts_max_states_truncates;
          Alcotest.test_case "unprioritized larger" `Quick
            test_lts_unprioritized_larger;
        ] );
      ( "explorer",
        [
          Alcotest.test_case "deadlock free" `Quick test_explorer_deadlock_free;
          Alcotest.test_case "shortest counterexample" `Quick
            test_explorer_finds_shortest_counterexample;
          Alcotest.test_case "stop at deadlock" `Quick
            test_explorer_stop_at_deadlock_truncates;
        ] );
      ( "fig3",
        [
          Alcotest.test_case "bus preemption" `Quick test_fig3_bus_preemption;
          Alcotest.test_case "full exploration" `Quick
            test_fig3_full_exploration;
        ] );
      ( "trace",
        [
          Alcotest.test_case "duration counts ticks" `Quick
            test_trace_duration_counts_ticks;
        ] );
      ( "weak bisim",
        [
          Alcotest.test_case "abstracts internal steps" `Quick
            test_weak_abstracts_internal_steps;
          Alcotest.test_case "distinguishes observables" `Quick
            test_weak_distinguishes_observables;
          Alcotest.test_case "coarser than strong" `Quick
            test_weak_refine_no_larger_than_strong;
        ] );
      ( "dot",
        [ Alcotest.test_case "export" `Quick test_dot_export ] );
      ( "work stealing",
        [
          Alcotest.test_case "deque LIFO/FIFO order" `Quick test_deque_order;
          Alcotest.test_case "deque growth" `Quick test_deque_growth;
          Alcotest.test_case "shard ownership boundaries" `Quick
            test_shard_ownership_boundaries;
          Alcotest.test_case "shard claim protocol" `Quick
            test_shard_claim_protocol;
          Alcotest.test_case "steal failure attribution" `Quick
            test_pool_steal_attribution;
        ] );
      ( "bisim",
        [
          Alcotest.test_case "collapses duplicates" `Quick
            test_bisim_collapses_duplicate_branches;
          Alcotest.test_case "distinguishes labels" `Quick
            test_bisim_distinguishes_labels;
          Alcotest.test_case "preserves deadlock" `Quick
            test_bisim_quotient_preserves_deadlock;
        ] );
      ("properties", qcheck_cases);
    ]
