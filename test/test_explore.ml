(* Tests for the hash-consed parallel explorer.

   Two families of guarantees:
   - a parallel build ([~jobs:4]) is bit-identical to the sequential one —
     same state numbering, edges, depths, deadlocks and shortest traces —
     on the reference models and on random terms;
   - the hash-consed semantics engine agrees term-for-term with the
     reference engine ([Semantics.steps]/[prioritized]), and the [Hproc]
     layer is a faithful embedding of [Proc]. *)

open Acsr

let cpu = Resource.make "cpu"

let e_int n = Expr.Int n

let action accesses =
  Action.of_list (List.map (fun (r, p) -> (r, e_int p)) accesses)

(* {1 Sequential vs parallel builds on the reference models} *)

let check_identical name (a : Versa.Lts.t) (b : Versa.Lts.t) =
  Alcotest.(check int)
    (name ^ ": states") (Versa.Lts.num_states a) (Versa.Lts.num_states b);
  Alcotest.(check int)
    (name ^ ": transitions")
    (Versa.Lts.num_transitions a)
    (Versa.Lts.num_transitions b);
  Alcotest.(check bool)
    (name ^ ": truncated") (Versa.Lts.truncated a) (Versa.Lts.truncated b);
  Alcotest.(check (list int))
    (name ^ ": deadlocks") (Versa.Lts.deadlocks a) (Versa.Lts.deadlocks b);
  for id = 0 to Versa.Lts.num_states a - 1 do
    if Versa.Lts.depth a id <> Versa.Lts.depth b id then
      Alcotest.failf "%s: depth of state %d differs" name id;
    if Versa.Lts.successors a id <> Versa.Lts.successors b id then
      Alcotest.failf "%s: successors of state %d differ" name id
  done;
  List.iter
    (fun d ->
      if Versa.Lts.path_to a d <> Versa.Lts.path_to b d then
        Alcotest.failf "%s: shortest trace to deadlock %d differs" name d)
    (Versa.Lts.deadlocks a)

let tr_of text =
  let tr = Translate.Pipeline.translate (Aadl.Instantiate.of_string text) in
  (tr.Translate.Pipeline.defs, tr.Translate.Pipeline.system)

let reference_models () =
  let exhaustive =
    {
      Versa.Lts.default_config with
      max_states = Some 100_000;
      stop_at_deadlock = false;
    }
  in
  let stop =
    {
      Versa.Lts.default_config with
      max_states = Some 100_000;
      stop_at_deadlock = true;
    }
  in
  let tiny =
    {
      Versa.Lts.default_config with
      max_states = Some 40;
      stop_at_deadlock = false;
    }
  in
  let cruise = tr_of (Gen.cruise_control ()) in
  let overload = tr_of (Gen.cruise_control ~overload:true ()) in
  let crossover = tr_of (Gen.periodic_system Gen.crossover_set) in
  [
    ( "fig3",
      (Gen.Paper_figs.fig3_defs, Gen.Paper_figs.fig3_system),
      exhaustive );
    ("cruise control", cruise, exhaustive);
    ("cruise control truncated", cruise, tiny);
    ("cruise control overloaded", overload, stop);
    ("crossover set", crossover, stop);
  ]

let test_parallel_build_identical () =
  List.iter
    (fun (name, (defs, system), config) ->
      let seq = Versa.Lts.build ~config ~jobs:1 defs system in
      let par4 = Versa.Lts.build ~config ~jobs:4 defs system in
      let par2 = Versa.Lts.build ~config ~jobs:2 defs system in
      check_identical (name ^ " (jobs=4)") seq par4;
      check_identical (name ^ " (jobs=2)") seq par2)
    (reference_models ())

let test_parallel_verdict_identical () =
  List.iter
    (fun (name, (defs, system), _) ->
      let seq = Versa.Explorer.check_deadlock ~jobs:1 defs system in
      let par = Versa.Explorer.check_deadlock ~jobs:4 defs system in
      let describe (r : Versa.Explorer.result) =
        match r.Versa.Explorer.verdict with
        | Versa.Explorer.Deadlock_free -> "deadlock-free"
        | Versa.Explorer.Deadlock { state; trace } ->
            Fmt.str "deadlock at %d, trace length %d" state
              (Versa.Trace.length trace)
        | Versa.Explorer.Inconclusive why -> "inconclusive: " ^ why
      in
      Alcotest.(check string) (name ^ ": verdict") (describe seq) (describe par))
    (reference_models ())

(* {1 Hash-consed semantics vs the reference engine, on LTS states} *)

let test_engines_agree_on_reachable_states () =
  List.iter
    (fun (name, (defs, system), config) ->
      let lts = Versa.Lts.build ~config defs system in
      let cache = Semantics.make_cache () in
      for id = 0 to Versa.Lts.num_states lts - 1 do
        let t = Versa.Lts.term lts id in
        let reference = Semantics.prioritized defs t in
        let hashconsed =
          List.map
            (fun (s, h) -> (s, Hproc.to_proc h))
            (Semantics.h_prioritized ~cache defs (Hproc.of_proc t))
        in
        if reference <> hashconsed then
          Alcotest.failf "%s: engines disagree on state %d" name id
      done)
    [ List.nth (reference_models ()) 0; List.nth (reference_models ()) 1 ]

(* {1 On-the-fly checker vs the full builder}

   [Lts.check] must agree with [Lts.build] under the same config on
   everything both can answer: visited-state and transition counts,
   truncation, deadlock ids and shortest counterexample paths. *)

let check_otf_matches_build name (lts : Versa.Lts.t)
    (c : Versa.Lts.check_result) =
  Alcotest.(check int)
    (name ^ ": states") (Versa.Lts.num_states lts)
    (Versa.Lts.check_num_states c);
  Alcotest.(check int)
    (name ^ ": transitions")
    (Versa.Lts.num_transitions lts)
    (Versa.Lts.check_num_transitions c);
  Alcotest.(check bool)
    (name ^ ": truncated") (Versa.Lts.truncated lts)
    (Versa.Lts.check_truncated c);
  Alcotest.(check (list int))
    (name ^ ": deadlocks") (Versa.Lts.deadlocks lts)
    (Versa.Lts.check_deadlocks c);
  List.iter
    (fun d ->
      if Versa.Lts.path_to lts d <> Versa.Lts.check_path_to c d then
        Alcotest.failf "%s: shortest path to deadlock %d differs" name d)
    (Versa.Lts.deadlocks lts);
  for id = 0 to min 20 (Versa.Lts.num_states lts - 1) do
    if Versa.Lts.term lts id <> Versa.Lts.check_term c id then
      Alcotest.failf "%s: term of state %d differs" name id
  done

let test_check_matches_build () =
  List.iter
    (fun (name, (defs, system), config) ->
      let lts = Versa.Lts.build ~config defs system in
      let c = Versa.Lts.check ~config defs system in
      check_otf_matches_build name lts c)
    (reference_models ())

(* A cutover of 1 forces every multi-state frontier through the domain
   pool, exercising the parallel path even on small models. *)
let test_check_parallel_identical () =
  List.iter
    (fun (name, (defs, system), config) ->
      let eager = { config with Versa.Lts.parallel_cutover = 1 } in
      let seq = Versa.Lts.check ~config ~jobs:1 defs system in
      let par = Versa.Lts.check ~config:eager ~jobs:4 defs system in
      Alcotest.(check int)
        (name ^ ": states")
        (Versa.Lts.check_num_states seq)
        (Versa.Lts.check_num_states par);
      Alcotest.(check (list int))
        (name ^ ": deadlocks")
        (Versa.Lts.check_deadlocks seq)
        (Versa.Lts.check_deadlocks par);
      List.iter
        (fun d ->
          if Versa.Lts.check_path_to seq d <> Versa.Lts.check_path_to par d
          then Alcotest.failf "%s: path to deadlock %d differs" name d)
        (Versa.Lts.check_deadlocks seq))
    (reference_models ())

(* {1 Engine agreement on every example AADL model}

   Both engines must report the same verdict, the same raised AADL
   scenario and — explored exhaustively — the same deadlock count, on
   every model shipped in examples/models. *)

let example_models_dir () =
  List.find_opt Sys.file_exists
    [ "../examples/models"; "examples/models" ]

let analyze_with engine ~all root =
  Analysis.Schedulability.analyze
    ~options:
      {
        Analysis.Schedulability.default_options with
        max_states = 300_000;
        all_violations = all;
        engine;
      }
    root

let test_example_models_agree () =
  match example_models_dir () with
  | None -> Alcotest.fail "examples/models not found (missing dune deps?)"
  | Some dir ->
      let models =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".aadl")
        |> List.sort compare
      in
      Alcotest.(check bool) "found example models" true (models <> []);
      List.iter
        (fun file ->
          let contents =
            let ic = open_in_bin (Filename.concat dir file) in
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () -> really_input_string ic (in_channel_length ic))
          in
          let root = Aadl.Instantiate.of_string contents in
          let full = analyze_with Versa.Explorer.Full ~all:false root in
          let otf = analyze_with Versa.Explorer.On_the_fly ~all:false root in
          let describe (r : Analysis.Schedulability.t) =
            match r.Analysis.Schedulability.verdict with
            | Analysis.Schedulability.Schedulable -> "schedulable"
            | Analysis.Schedulability.Not_schedulable { scenario; trace } ->
                Fmt.str "NOT schedulable at t=%d: %a (steps %a)"
                  scenario.Analysis.Raise_trace.violation_time
                  Analysis.Raise_trace.pp scenario
                  Fmt.(list ~sep:semi Acsr.Step.pp)
                  (Versa.Trace.steps trace)
            | Analysis.Schedulability.Inconclusive why -> "inconclusive: " ^ why
          in
          Alcotest.(check string)
            (file ^ ": verdict and scenario") (describe full) (describe otf);
          (* exhaustively: same number of violation states *)
          let full_x = analyze_with Versa.Explorer.Full ~all:true root in
          let otf_x = analyze_with Versa.Explorer.On_the_fly ~all:true root in
          Alcotest.(check (list int))
            (file ^ ": deadlock ids (exhaustive)")
            (Versa.Explorer.deadlocks full_x.Analysis.Schedulability.exploration)
            (Versa.Explorer.deadlocks otf_x.Analysis.Schedulability.exploration);
          Alcotest.(check int)
            (file ^ ": states (exhaustive)")
            (Versa.Explorer.num_states full_x.Analysis.Schedulability.exploration)
            (Versa.Explorer.num_states otf_x.Analysis.Schedulability.exploration))
        models

(* Work-stealing exploration across every example model: at jobs 2 and
   4 (cutover 1, so the pool engages even on the small models) the
   visited states, transitions, deadlock ids and counterexample paths
   must be bit-identical to jobs 1, and the analysis layer's raised
   scenario must not move either. *)
let test_example_models_workstealing_identical () =
  match example_models_dir () with
  | None -> Alcotest.fail "examples/models not found (missing dune deps?)"
  | Some dir ->
      let models =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".aadl")
        |> List.sort compare
      in
      Alcotest.(check bool) "found example models" true (models <> []);
      List.iter
        (fun file ->
          let contents =
            let ic = open_in_bin (Filename.concat dir file) in
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () -> really_input_string ic (in_channel_length ic))
          in
          let root = Aadl.Instantiate.of_string contents in
          let tr = Translate.Pipeline.translate root in
          let defs = tr.Translate.Pipeline.defs in
          let system = tr.Translate.Pipeline.system in
          let eager =
            {
              Versa.Lts.default_config with
              max_states = Some 300_000;
              parallel_cutover = 1;
            }
          in
          let c1 = Versa.Lts.check ~config:eager ~jobs:1 defs system in
          List.iter
            (fun jobs ->
              let c = Versa.Lts.check ~config:eager ~jobs defs system in
              Alcotest.(check int)
                (Fmt.str "%s: states (jobs=%d)" file jobs)
                (Versa.Lts.check_num_states c1)
                (Versa.Lts.check_num_states c);
              Alcotest.(check int)
                (Fmt.str "%s: transitions (jobs=%d)" file jobs)
                (Versa.Lts.check_num_transitions c1)
                (Versa.Lts.check_num_transitions c);
              Alcotest.(check (list int))
                (Fmt.str "%s: deadlocks (jobs=%d)" file jobs)
                (Versa.Lts.check_deadlocks c1)
                (Versa.Lts.check_deadlocks c);
              List.iter
                (fun d ->
                  if Versa.Lts.check_path_to c1 d <> Versa.Lts.check_path_to c d
                  then
                    Alcotest.failf "%s: path to deadlock %d differs (jobs=%d)"
                      file d jobs)
                (Versa.Lts.check_deadlocks c1))
            [ 2; 4 ];
          (* the raised scenario reported by the analysis layer is
             jobs-invariant too *)
          let analyze_jobs jobs =
            Analysis.Schedulability.analyze
              ~options:
                {
                  Analysis.Schedulability.default_options with
                  max_states = 300_000;
                  engine = Versa.Explorer.On_the_fly;
                  jobs;
                }
              root
          in
          let describe (r : Analysis.Schedulability.t) =
            match r.Analysis.Schedulability.verdict with
            | Analysis.Schedulability.Schedulable -> "schedulable"
            | Analysis.Schedulability.Not_schedulable { scenario; trace } ->
                Fmt.str "NOT schedulable at t=%d: %a (steps %a)"
                  scenario.Analysis.Raise_trace.violation_time
                  Analysis.Raise_trace.pp scenario
                  Fmt.(list ~sep:semi Acsr.Step.pp)
                  (Versa.Trace.steps trace)
            | Analysis.Schedulability.Inconclusive why -> "inconclusive: " ^ why
          in
          let base = describe (analyze_jobs 1) in
          List.iter
            (fun jobs ->
              Alcotest.(check string)
                (Fmt.str "%s: raised scenario (jobs=%d)" file jobs)
                base
                (describe (analyze_jobs jobs)))
            [ 2; 4 ])
        models

(* {1 Property-based tests} *)

(* A generator covering every [Proc] constructor except [Call] (the terms
   must stay closed under an empty environment): actions, events, choice,
   parallel, restriction, closure, guards and temporal scopes. *)
let gen_proc_full : Proc.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  sized_size (int_range 0 6)
  @@ fix (fun self n ->
         if n = 0 then return Proc.nil
         else
           frequency
             [
               (2, return Proc.nil);
               ( 3,
                 let* p = self (n - 1) in
                 let* prio = int_range 0 2 in
                 return (Proc.act (action [ (cpu, prio) ]) p) );
               ( 2,
                 let* p = self (n - 1) in
                 return (Proc.act Action.idle p) );
               ( 2,
                 let* p = self (n - 1) in
                 let* l = oneofl [ "a"; "b" ] in
                 let* out = bool in
                 return
                   (if out then Proc.send (Label.make l) p
                    else Proc.receive (Label.make l) p) );
               ( 2,
                 let* p = self (n / 2) in
                 let* q = self (n / 2) in
                 return (Proc.choice p q) );
               ( 2,
                 let* p = self (n / 2) in
                 let* q = self (n / 2) in
                 return (Proc.par p q) );
               ( 1,
                 let* p = self (n - 1) in
                 let* l = oneofl [ "a"; "b" ] in
                 return (Proc.restrict (Label.set_of_list [ Label.make l ]) p)
               );
               ( 1,
                 let* p = self (n - 1) in
                 return (Proc.close (Resource.set_of_list [ cpu ]) p) );
               ( 1,
                 (* [Proc.If] directly: the [if_] smart constructor folds
                    constant guards away *)
                 let* p = self (n - 1) in
                 let* a = int_range 0 2 in
                 let* b = int_range 0 2 in
                 return (Proc.If (Guard.lt (e_int a) (e_int b), p)) );
               ( 1,
                 let* body = self (n / 2) in
                 let* timeout = self (n / 3) in
                 let* bound = int_range 0 3 in
                 let* with_exc = bool in
                 let* handler = self (n / 3) in
                 let* with_interrupt = bool in
                 let* intr = self (n / 3) in
                 return
                   (Proc.scope ~bound:(e_int bound)
                      ?exc:
                        (if with_exc then Some (Label.make "a", handler)
                         else None)
                      ?interrupt:(if with_interrupt then Some intr else None)
                      ~timeout body) );
             ])

let prop_roundtrip =
  QCheck2.Test.make ~name:"to_proc (of_proc p) = p" ~count:500 gen_proc_full
    (fun p -> Hproc.to_proc (Hproc.of_proc p) = p)

let prop_interning =
  QCheck2.Test.make ~name:"of_proc p == of_proc q iff p = q" ~count:500
    QCheck2.Gen.(pair gen_proc_full gen_proc_full)
    (fun (p, q) -> Hproc.equal (Hproc.of_proc p) (Hproc.of_proc q) = (p = q))

let prop_hash_respects_equality =
  QCheck2.Test.make ~name:"equal terms have equal memoized hashes" ~count:500
    QCheck2.Gen.(pair gen_proc_full gen_proc_full)
    (fun (p, q) ->
      p <> q || Hproc.hash (Hproc.of_proc p) = Hproc.hash (Hproc.of_proc q))

let prop_compare_structural_mirrors_stdlib =
  QCheck2.Test.make
    ~name:"compare_structural has the sign of Stdlib.compare" ~count:500
    QCheck2.Gen.(pair gen_proc_full gen_proc_full)
    (fun (p, q) ->
      let sign c = Stdlib.compare c 0 in
      sign (Hproc.compare_structural (Hproc.of_proc p) (Hproc.of_proc q))
      = sign (Stdlib.compare p q))

let prop_h_steps_agree =
  QCheck2.Test.make ~name:"h_steps = steps (term for term)" ~count:300
    gen_proc_full (fun p ->
      Semantics.steps Defs.empty p
      = List.map
          (fun (s, h) -> (s, Hproc.to_proc h))
          (Semantics.h_steps Defs.empty (Hproc.of_proc p)))

let prop_h_prioritized_agree =
  QCheck2.Test.make ~name:"h_prioritized = prioritized" ~count:300
    gen_proc_full (fun p ->
      Semantics.prioritized Defs.empty p
      = List.map
          (fun (s, h) -> (s, Hproc.to_proc h))
          (Semantics.h_prioritized Defs.empty (Hproc.of_proc p)))

let prop_check_agrees_with_build =
  QCheck2.Test.make ~name:"check = build on random terms" ~count:50
    gen_proc_full (fun p ->
      let lts = Versa.Lts.build Defs.empty p in
      let c = Versa.Lts.check Defs.empty p in
      Versa.Lts.num_states lts = Versa.Lts.check_num_states c
      && Versa.Lts.num_transitions lts = Versa.Lts.check_num_transitions c
      && Versa.Lts.deadlocks lts = Versa.Lts.check_deadlocks c
      && List.for_all
           (fun d -> Versa.Lts.path_to lts d = Versa.Lts.check_path_to c d)
           (Versa.Lts.deadlocks lts))

let prop_check_early_exit_sound =
  (* with [stop_at_deadlock] the checker may stop early, but any deadlock
     it reports must be the first one of the exhaustive exploration *)
  QCheck2.Test.make ~name:"early-exit deadlock = first exhaustive deadlock"
    ~count:50 gen_proc_full (fun p ->
      let stop =
        { Versa.Lts.default_config with stop_at_deadlock = true }
      in
      let c = Versa.Lts.check ~config:stop Defs.empty p in
      let lts = Versa.Lts.build Defs.empty p in
      match (Versa.Lts.check_deadlocks c, Versa.Lts.deadlocks lts) with
      | [], [] -> true
      | d :: _, d' :: _ ->
          d = d'
          && Versa.Lts.check_path_to c d = Versa.Lts.path_to lts d'
      | [], _ :: _ | _ :: _, [] -> false)

let prop_parallel_build_agrees =
  QCheck2.Test.make ~name:"build jobs=4 = build jobs=1" ~count:25
    gen_proc_full (fun p ->
      let l1 = Versa.Lts.build ~jobs:1 Defs.empty p in
      let l4 = Versa.Lts.build ~jobs:4 Defs.empty p in
      Versa.Lts.num_states l1 = Versa.Lts.num_states l4
      && Versa.Lts.num_transitions l1 = Versa.Lts.num_transitions l4
      && Versa.Lts.deadlocks l1 = Versa.Lts.deadlocks l4
      && List.for_all
           (fun id -> Versa.Lts.successors l1 id = Versa.Lts.successors l4 id)
           (List.init (Versa.Lts.num_states l1) Fun.id))

(* The work-stealing contract, on random terms: with a cutover of 1 the
   worker pool engages on every multi-state frontier, and everything the
   LTS exposes — ids, rows, depths, deadlocks, traces — must be
   bit-identical to the sequential run at every jobs value. *)
let lts_bit_identical l1 l2 =
  Versa.Lts.num_states l1 = Versa.Lts.num_states l2
  && Versa.Lts.num_transitions l1 = Versa.Lts.num_transitions l2
  && Versa.Lts.truncated l1 = Versa.Lts.truncated l2
  && Versa.Lts.deadlocks l1 = Versa.Lts.deadlocks l2
  && List.for_all
       (fun id ->
         Versa.Lts.successors l1 id = Versa.Lts.successors l2 id
         && Versa.Lts.depth l1 id = Versa.Lts.depth l2 id)
       (List.init (Versa.Lts.num_states l1) Fun.id)
  && List.for_all
       (fun d -> Versa.Lts.path_to l1 d = Versa.Lts.path_to l2 d)
       (Versa.Lts.deadlocks l1)

let prop_workstealing_build_bit_identical =
  QCheck2.Test.make ~name:"work-stealing build jobs∈{2,4} = jobs=1"
    ~count:20 gen_proc_full (fun p ->
      let eager =
        { Versa.Lts.default_config with parallel_cutover = 1 }
      in
      let l1 = Versa.Lts.build ~config:eager ~jobs:1 Defs.empty p in
      List.for_all
        (fun jobs ->
          lts_bit_identical l1
            (Versa.Lts.build ~config:eager ~jobs Defs.empty p))
        [ 2; 4 ])

let prop_workstealing_early_exit_identical =
  (* the racy part of early exit: workers may explore far beyond the
     first deadlock, but the replayed verdict — visited count, deadlock
     id, counterexample path — must not move *)
  QCheck2.Test.make
    ~name:"work-stealing early-exit check jobs∈{2,4} = jobs=1" ~count:20
    gen_proc_full (fun p ->
      let eager =
        {
          Versa.Lts.default_config with
          parallel_cutover = 1;
          stop_at_deadlock = true;
        }
      in
      let c1 = Versa.Lts.check ~config:eager ~jobs:1 Defs.empty p in
      List.for_all
        (fun jobs ->
          let c = Versa.Lts.check ~config:eager ~jobs Defs.empty p in
          Versa.Lts.check_num_states c1 = Versa.Lts.check_num_states c
          && Versa.Lts.check_num_transitions c1
             = Versa.Lts.check_num_transitions c
          && Versa.Lts.check_truncated c1 = Versa.Lts.check_truncated c
          && Versa.Lts.check_deadlocks c1 = Versa.Lts.check_deadlocks c
          && List.for_all
               (fun d ->
                 Versa.Lts.check_path_to c1 d = Versa.Lts.check_path_to c d)
               (Versa.Lts.check_deadlocks c1))
        [ 2; 4 ])

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_roundtrip;
      prop_interning;
      prop_hash_respects_equality;
      prop_compare_structural_mirrors_stdlib;
      prop_h_steps_agree;
      prop_h_prioritized_agree;
      prop_parallel_build_agrees;
      prop_workstealing_build_bit_identical;
      prop_workstealing_early_exit_identical;
      prop_check_agrees_with_build;
      prop_check_early_exit_sound;
    ]

(* {1 Wall-clock budgets and cooperative cancellation} *)

let test_deadline_budget_truncates () =
  let defs, system = tr_of (Gen.cruise_control ()) in
  let expired =
    {
      Versa.Lts.default_config with
      stop_at_deadlock = false;
      deadline = Some (Timed.Clock.gettimeofday () -. 1.);
    }
  in
  (* an already-expired budget: both engines must truncate at the first
     merge step and flag it in the stats, never hang *)
  let lts = Versa.Lts.build ~config:expired defs system in
  Alcotest.(check bool) "build truncated" true (Versa.Lts.truncated lts);
  Alcotest.(check bool)
    "build stats flag" true
    (Versa.Lts.stats lts).Versa.Lts.deadline_expired;
  let c = Versa.Lts.check ~config:expired defs system in
  Alcotest.(check bool) "check truncated" true (Versa.Lts.check_truncated c);
  Alcotest.(check bool)
    "check stats flag" true
    (Versa.Lts.check_stats c).Versa.Lts.deadline_expired;
  (* a generous budget must not perturb the exploration *)
  let roomy =
    {
      Versa.Lts.default_config with
      stop_at_deadlock = false;
      deadline = Some (Timed.Clock.gettimeofday () +. 3600.);
    }
  in
  let full = Versa.Lts.build ~config:roomy defs system in
  Alcotest.(check bool) "roomy not truncated" false (Versa.Lts.truncated full);
  Alcotest.(check bool)
    "roomy flag clear" false
    (Versa.Lts.stats full).Versa.Lts.deadline_expired

(* A second-precision budget on the virtual clock: with every clock
   observation costing 10 virtual ms, a 2.5 s deadline expires partway
   through the exploration after exactly 250 observations — the
   truncation point is deterministic, and the whole test runs in
   wall-clock milliseconds. *)
let test_virtual_deadline_is_deterministic () =
  let defs, system = tr_of (Gen.cruise_control ()) in
  let explore () =
    let sim = Timed.Sim.create ~auto_advance:0.01 () in
    Timed.Sim.with_clock sim @@ fun () ->
    let config =
      {
        Versa.Lts.default_config with
        stop_at_deadlock = false;
        deadline = Some (Timed.Clock.gettimeofday () +. 2.5);
      }
    in
    let c = Versa.Lts.check ~config defs system in
    ( Versa.Lts.check_truncated c,
      (Versa.Lts.check_stats c).Versa.Lts.deadline_expired,
      Versa.Lts.check_num_states c )
  in
  let t0 = Timed.Clock.now Timed.Clock.real in
  let truncated, expired, states = explore () in
  let truncated', expired', states' = explore () in
  let wall = Timed.Clock.now Timed.Clock.real -. t0 in
  Alcotest.(check bool) "virtual deadline truncates" true truncated;
  Alcotest.(check bool) "flagged as a deadline" true expired;
  Alcotest.(check bool) "replay truncates too" true truncated';
  Alcotest.(check bool) "replay flag" true expired';
  Alcotest.(check int) "identical truncation point" states states';
  Alcotest.(check bool) "states were explored before expiry" true (states > 0);
  Alcotest.(check bool) "2x 2.5s of virtual budget in real ms" true (wall < 2.0)

let test_poll_cancels () =
  let defs, system = tr_of (Gen.cruise_control ()) in
  let config =
    {
      Versa.Lts.default_config with
      stop_at_deadlock = false;
      poll = Some (fun () -> true);
    }
  in
  let lts = Versa.Lts.build ~config defs system in
  Alcotest.(check bool) "cancelled build truncated" true
    (Versa.Lts.truncated lts);
  Alcotest.(check bool)
    "cancellation is not a deadline" false
    (Versa.Lts.stats lts).Versa.Lts.deadline_expired;
  let c = Versa.Lts.check ~config defs system in
  Alcotest.(check bool) "cancelled check truncated" true
    (Versa.Lts.check_truncated c)

let () =
  Alcotest.run "explore"
    [
      ( "parallel",
        [
          Alcotest.test_case "builds are identical" `Quick
            test_parallel_build_identical;
          Alcotest.test_case "verdicts are identical" `Quick
            test_parallel_verdict_identical;
        ] );
      ( "engines",
        [
          Alcotest.test_case "agree on reachable states" `Quick
            test_engines_agree_on_reachable_states;
        ] );
      ( "on-the-fly",
        [
          Alcotest.test_case "check matches build" `Quick
            test_check_matches_build;
          Alcotest.test_case "parallel check is identical" `Quick
            test_check_parallel_identical;
          Alcotest.test_case "engines agree on example models" `Slow
            test_example_models_agree;
          Alcotest.test_case "work stealing is identical on example models"
            `Slow test_example_models_workstealing_identical;
        ] );
      ( "budgets",
        [
          Alcotest.test_case "deadline truncates" `Quick
            test_deadline_budget_truncates;
          Alcotest.test_case "virtual deadline is deterministic" `Quick
            test_virtual_deadline_is_deterministic;
          Alcotest.test_case "poll cancels" `Quick test_poll_cancels;
        ] );
      ("properties", qcheck_cases);
    ]
