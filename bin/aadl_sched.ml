(* aadl_sched: schedulability analysis of AADL models via translation to
   ACSR and state-space exploration, plus classical baselines.

   Subcommands:
     check      legality diagnostics (translation preconditions)
     info       instance tree, semantic connections, task table
     translate  dump the generated ACSR model
     analyze    schedulability analysis (exploration + baselines)
     simulate   deterministic Cheddar-style simulation
     latency    end-to-end latency check with an observer process *)

open Cmdliner

(* Models are loaded from textual AADL or, for files ending in .xml, from
   the XML instance interchange format. *)
let load_root file root_name =
  Obs.Span.with_ ~name:"load" ~attrs:[ ("file", Filename.basename file) ]
  @@ fun () ->
  if Filename.check_suffix file ".xml" then
    Obs.Span.with_ ~name:"parse" (fun () -> Aadl.Instance_xml.read_file file)
  else
    let model =
      Obs.Span.with_ ~name:"parse" (fun () -> Aadl.Parser.parse_file file)
    in
    Obs.Span.with_ ~name:"instantiate" @@ fun () ->
    match root_name with
    | Some r -> Aadl.Instantiate.instantiate model ~root:r
    | None -> (
        (* reuse the root-detection of Instantiate.of_string *)
        let contents =
          let ic = open_in_bin file in
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        in
        Aadl.Instantiate.of_string contents)

(* {1 Common options} *)

let file_arg =
  Arg.(
    required
    & pos 0 (some non_dir_file) None
    & info [] ~docv:"FILE" ~doc:"Textual AADL model file.")

let root_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "root" ] ~docv:"IMPL"
        ~doc:
          "Root system implementation to instantiate (e.g. $(i,sys.impl)). \
           Defaults to the unique top-level system implementation.")

let quantum_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "quantum" ] ~docv:"US"
        ~doc:
          "Scheduling quantum in microseconds.  Defaults to the gcd of \
           every time value in the model.")

let protocol_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "rm" | "rate_monotonic" -> Ok Aadl.Props.Rate_monotonic
    | "dm" | "deadline_monotonic" -> Ok Aadl.Props.Deadline_monotonic
    | "hpf" | "fixed" -> Ok Aadl.Props.Highest_priority_first
    | "edf" -> Ok Aadl.Props.Edf
    | "llf" -> Ok Aadl.Props.Llf
    | "hier" | "hierarchical" -> Ok Aadl.Props.Hierarchical
    | other -> Error (`Msg (Fmt.str "unknown protocol %S" other))
  in
  let print ppf p = Aadl.Props.pp_scheduling_protocol ppf p in
  Arg.conv (parse, print)

let protocol_arg =
  Arg.(
    value
    & opt (some protocol_conv) None
    & info [ "protocol"; "p" ] ~docv:"PROTO"
        ~doc:
          "Override the Scheduling_Protocol of every processor: one of \
           $(b,rm), $(b,dm), $(b,hpf), $(b,edf), $(b,llf), $(b,hier).")

let max_states_arg =
  Arg.(
    value
    & opt int 2_000_000
    & info [ "max-states" ] ~docv:"N"
        ~doc:"State budget for the exploration.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Domains used to compute successors in parallel during the \
           exploration.  The result is identical for any value.")

let timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SECS"
        ~doc:
          "Wall-clock budget for the exploration, in seconds.  Past it \
           the verdict is inconclusive (never a hang); the $(b,batch) and \
           $(b,serve) subcommands degrade such jobs to analytic bounds.")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Print the metrics registry after the run: exploration telemetry \
           (states/sec, dedup hits, peak frontier, early-exit depth), \
           translation-cache counters and service counters, one metric per \
           line.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record structured spans for the whole run and write them to \
           $(docv) as Chrome trace_event JSON (load it in \
           $(i,chrome://tracing) or $(i,https://ui.perfetto.dev)).")

(* Bracket a run with the deterministic simulated clock: every
   timestamp — exploration deadlines, wall_s fields, trace epochs —
   reads virtual time, and each observation advances it by 1 ms, so a
   --timeout budget expires after a fixed number of clock reads
   regardless of host speed.  The same model always truncates at the
   same state, making timeout behavior reproducible (and testable in a
   cram session). *)
let with_virtual_clock virtual_time f =
  if virtual_time then
    let sim = Timed.Sim.create ~auto_advance:1e-3 () in
    Timed.Sim.with_clock sim f
  else f ()

let virtual_time_arg =
  Arg.(
    value & flag
    & info [ "virtual-time" ]
        ~doc:
          "Run under the deterministic simulated clock instead of the \
           wall clock.  Clock observations advance virtual time by 1 ms \
           each, so $(b,--timeout) budgets expire after a fixed number \
           of observations: timeout-dependent behavior (truncation \
           points, degraded verdicts) reproduces bit-identically on any \
           host, in wall-clock milliseconds.")

(* Bracket a whole subcommand with trace collection.  The file is written
   even when the run raises (the exception then continues to
   [handle_errors]), so failing runs still leave a trace to inspect. *)
let with_trace trace f =
  match trace with
  | None -> f ()
  | Some path ->
      Obs.Trace.start ();
      Fun.protect
        ~finally:(fun () ->
          Obs.Trace.stop ();
          Obs.Trace.write path;
          Fmt.epr "trace written to %s@." path)
        f

(* JSON-lines structured logs: every line carries the ambient-clock
   timestamp, the process's trace node name, and — inside a span — the
   trace/span correlation ids. *)
let log_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "log-json" ] ~docv:"FILE"
        ~doc:
          "Emit JSON-lines structured logs to $(docv) ($(b,-) for \
           stderr).  Every line carries a timestamp, the process's node \
           name and, when produced inside a span, the trace/span \
           correlation ids — grep a trace_id here to follow one request \
           through the logs of every process.")

let with_log_json log_json f =
  match log_json with
  | None -> f ()
  | Some path ->
      let oc = if path = "-" then stderr else open_out path in
      Obs.Log.set_output (Some oc);
      Fun.protect
        ~finally:(fun () ->
          Obs.Log.set_output None;
          if path <> "-" then close_out_noerr oc)
        f

let metrics_listen_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-listen" ] ~docv:"ADDR"
        ~doc:
          "Serve this process's metrics registry over HTTP at \
           $(b,unix:PATH) or $(b,tcp:HOST:PORT): $(b,GET /metrics) \
           answers the Prometheus text exposition, $(b,GET /health) the \
           same JSON object as the $(b,health) op.")

(* The --stats rendering: the metrics registry is the single source of
   truth, so every layer's counters appear here, one per line, sorted by
   name (same names as the Prometheus exposition and the serve 'metrics'
   op). *)
let print_registry () =
  Obs.sample_gc ();
  Fmt.pr "@.== metrics ==@.";
  List.iter
    (fun s ->
      match s.Obs.value with
      | Obs.Counter_value n -> Fmt.pr "%s %d@." s.Obs.name n
      | Obs.Gauge_value v -> Fmt.pr "%s %g@." s.Obs.name v
      | Obs.Histogram_value { sum; count; _ } ->
          Fmt.pr "%s count=%d sum=%g@." s.Obs.name count sum)
    (Obs.snapshot ())

let engine_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "on-the-fly" | "otf" -> Ok Versa.Explorer.On_the_fly
    | "full" -> Ok Versa.Explorer.Full
    | other -> Error (`Msg (Fmt.str "unknown engine %S" other))
  in
  let print ppf = function
    | Versa.Explorer.On_the_fly -> Fmt.string ppf "on-the-fly"
    | Versa.Explorer.Full -> Fmt.string ppf "full"
  in
  Arg.conv (parse, print)

let engine_arg =
  Arg.(
    value
    & opt engine_conv Versa.Explorer.On_the_fly
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Exploration engine: $(b,on-the-fly) (default) detects deadlocks \
           with a compact parent-pointer store and exits at the first \
           violation; $(b,full) materializes the whole graph.  Verdicts and \
           failing scenarios are identical.")

let symmetry_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "on" -> Ok true
    | "off" -> Ok false
    | other -> Error (`Msg (Fmt.str "unknown symmetry mode %S" other))
  in
  let print ppf on = Fmt.string ppf (if on then "on" else "off") in
  Arg.conv (parse, print)

let symmetry_arg =
  Arg.(
    value
    & opt symmetry_conv true
    & info [ "symmetry" ] ~docv:"on|off"
        ~doc:
          "Orbit reduction: explore one representative per permutation \
           orbit of interchangeable (identical up to renaming) threads.  \
           Default $(b,on); automatically inert when the model has no \
           interchangeable threads.  Verdicts and failing scenarios are \
           identical either way; visited-state counts shrink.")

let translation_options quantum protocol =
  {
    Translate.Pipeline.default_options with
    quantum = Option.map (fun us -> Aadl.Time.make us Aadl.Time.Us) quantum;
    force_protocol = protocol;
  }

let handle_errors f =
  try f () with
  | Aadl.Lexer.Error (msg, loc) ->
      Fmt.epr "lexical error (%a): %s@." Aadl.Ast.pp_srcloc loc msg;
      exit 2
  | Aadl.Parser.Error (msg, loc) ->
      Fmt.epr "syntax error (%a): %s@." Aadl.Ast.pp_srcloc loc msg;
      exit 2
  | Aadl.Instantiate.Error msg ->
      Fmt.epr "instantiation error: %s@." msg;
      exit 2
  | Translate.Pipeline.Error msg ->
      Fmt.epr "translation error: %s@." msg;
      exit 2
  | Translate.Workload.Error msg ->
      Fmt.epr "workload error: %s@." msg;
      exit 2
  | Analysis.Latency.Error msg ->
      Fmt.epr "latency error: %s@." msg;
      exit 2
  | Analysis.Sensitivity.Error msg ->
      Fmt.epr "sensitivity error: %s@." msg;
      exit 2
  | Aadl.Instance_xml.Error msg ->
      Fmt.epr "instance XML error: %s@." msg;
      exit 2

(* {1 check} *)

let run_check file root_name =
  handle_errors @@ fun () ->
  let root = load_root file root_name in
  let diags = Aadl.Check.run root in
  Fmt.pr "%a@." Aadl.Check.pp_report diags;
  if Aadl.Check.is_ok diags then 0 else 1

let check_cmd =
  Cmd.v
    (Cmd.info "check" ~doc:"Check the translation preconditions of a model.")
    Term.(const run_check $ file_arg $ root_arg)

(* {1 info} *)

let run_info file root_name quantum export_xml =
  handle_errors @@ fun () ->
  let root = load_root file root_name in
  (match export_xml with
  | Some path ->
      Aadl.Instance_xml.write_file path root;
      Fmt.pr "instance model written to %s@." path
  | None -> ());
  Fmt.pr "== instance tree ==@.%a@.@." Aadl.Instance.pp root;
  let sconns = Aadl.Semconn.resolve root in
  Fmt.pr "== semantic connections (%d) ==@." (List.length sconns);
  List.iter (fun sc -> Fmt.pr "  %a@." Aadl.Semconn.pp sc) sconns;
  let q =
    match quantum with
    | Some us -> Aadl.Time.make us Aadl.Time.Us
    | None -> Translate.Workload.suggest_quantum root
  in
  (match Translate.Workload.extract ~quantum:q root with
  | wl ->
      Fmt.pr "@.== task table ==@.%a@." Translate.Workload.pp wl;
      List.iter
        (fun ((proc : Aadl.Instance.t), tasks) ->
          Fmt.pr "processor %a: U = %.3f@." Aadl.Instance.pp_path
            proc.Aadl.Instance.path
            (Translate.Workload.utilization tasks))
        wl.Translate.Workload.by_processor
  | exception Translate.Workload.Error msg ->
      Fmt.pr "@.(task table unavailable: %s)@." msg);
  0

let export_xml_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "export-xml" ] ~docv:"FILE"
        ~doc:
          "Also write the instance model in the XML interchange format \
           (re-loadable by every subcommand).")

let info_cmd =
  Cmd.v
    (Cmd.info "info"
       ~doc:"Show the instance tree, semantic connections and task table.")
    Term.(const run_info $ file_arg $ root_arg $ quantum_arg $ export_xml_arg)

(* {1 translate} *)

let run_translate file root_name quantum protocol output =
  handle_errors @@ fun () ->
  let root = load_root file root_name in
  let options = translation_options quantum protocol in
  let tr = Translate.Pipeline.translate ~options root in
  (* emitted in the concrete ACSR syntax, so the output can be re-analyzed
     with the 'acsr' subcommand or edited by hand *)
  let text =
    Acsr.Syntax.to_string ~system:tr.Translate.Pipeline.system
      tr.Translate.Pipeline.defs
  in
  (match output with
  | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          output_string oc (Fmt.str "-- %a@." Translate.Pipeline.pp_summary tr);
          output_string oc text;
          output_string oc "\n");
      Fmt.pr "ACSR model written to %s@." path
  | None ->
      Fmt.pr "-- %a@.@." Translate.Pipeline.pp_summary tr;
      Fmt.pr "%s@." text);
  0

let output_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE"
        ~doc:"Write the ACSR model to a file instead of stdout.")

let translate_cmd =
  Cmd.v
    (Cmd.info "translate"
       ~doc:
         "Emit the generated ACSR model in the concrete syntax accepted by \
          the $(b,acsr) subcommand.")
    Term.(
      const run_translate $ file_arg $ root_arg $ quantum_arg $ protocol_arg
      $ output_arg)

(* {1 analyze} *)

let run_analyze file root_name quantum protocol max_states jobs engine
    timeout stats trace all baselines symmetry virtual_time =
  handle_errors @@ fun () ->
  with_virtual_clock virtual_time @@ fun () ->
  with_trace trace @@ fun () ->
  let root = load_root file root_name in
  let options =
    {
      Analysis.Schedulability.translation_options =
        translation_options quantum protocol;
      max_states;
      all_violations = all;
      jobs;
      engine;
      deadline = Option.map (fun s -> Timed.Clock.gettimeofday () +. s) timeout;
      poll = None;
      symmetry;
    }
  in
  let result = Analysis.Schedulability.analyze ~options root in
  Fmt.pr "%a@." Analysis.Schedulability.pp result;
  if stats then print_registry ();
  if baselines then begin
    Fmt.pr "@.== baselines ==@.";
    let wl = result.Analysis.Schedulability.translation.Translate.Pipeline.workload in
    List.iter
      (fun ((proc : Aadl.Instance.t), tasks) ->
        let proto =
          match protocol with
          | Some p -> Some p
          | None -> Aadl.Props.scheduling_protocol proc.Aadl.Instance.props
        in
        Fmt.pr "processor %a:@." Aadl.Instance.pp_path proc.Aadl.Instance.path;
        (match proto with
        | Some proto ->
            Fmt.pr "  %a@." Analysis.Rta.pp (Analysis.Rta.analyze ~protocol:proto tasks);
            (match Analysis.Simulator.simulate ~protocol:proto tasks with
            | sim -> Fmt.pr "  simulation: %a@." Analysis.Simulator.pp sim
            | exception Analysis.Simulator.Not_simulable msg ->
                Fmt.pr "  simulation: n/a (%s)@." msg)
        | None -> ());
        Fmt.pr "  RM bound: %a@." Analysis.Utilization.pp
          (Analysis.Utilization.rate_monotonic tasks);
        Fmt.pr "  %a@." Analysis.Edf_demand.pp (Analysis.Edf_demand.analyze tasks))
      wl.Translate.Workload.by_processor
  end;
  if Analysis.Schedulability.is_schedulable result then 0 else 1

let all_arg =
  Arg.(
    value & flag
    & info [ "all" ]
        ~doc:"Explore exhaustively and report every violation state.")

let baselines_arg =
  Arg.(
    value & flag
    & info [ "baselines" ]
        ~doc:"Also run RTA, simulation, utilization and demand baselines.")

let analyze_cmd =
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Schedulability analysis by ACSR translation and deadlock \
          detection.")
    Term.(
      const run_analyze $ file_arg $ root_arg $ quantum_arg $ protocol_arg
      $ max_states_arg $ jobs_arg $ engine_arg $ timeout_arg $ stats_arg
      $ trace_arg $ all_arg $ baselines_arg $ symmetry_arg $ virtual_time_arg)

(* {1 simulate} *)

let run_simulate file root_name quantum protocol horizon =
  handle_errors @@ fun () ->
  let root = load_root file root_name in
  let q =
    match quantum with
    | Some us -> Aadl.Time.make us Aadl.Time.Us
    | None -> Translate.Workload.suggest_quantum root
  in
  let wl = Translate.Workload.extract ~quantum:q root in
  let code = ref 0 in
  List.iter
    (fun ((proc : Aadl.Instance.t), tasks) ->
      let proto =
        match protocol with
        | Some p -> p
        | None -> (
            match Aadl.Props.scheduling_protocol proc.Aadl.Instance.props with
            | Some p -> p
            | None -> Aadl.Props.Rate_monotonic)
      in
      Fmt.pr "== processor %a (%a) ==@." Aadl.Instance.pp_path
        proc.Aadl.Instance.path Aadl.Props.pp_scheduling_protocol proto;
      match Analysis.Simulator.simulate ?horizon ~protocol:proto tasks with
      | sim ->
          Fmt.pr "%a@." Analysis.Simulator.pp sim;
          if not sim.Analysis.Simulator.schedulable then code := 1
      | exception Analysis.Simulator.Not_simulable msg ->
          Fmt.pr "not simulable: %s@." msg)
    wl.Translate.Workload.by_processor;
  !code

let horizon_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "horizon" ] ~docv:"QUANTA"
        ~doc:"Simulation horizon (default: the hyperperiod).")

let simulate_cmd =
  Cmd.v
    (Cmd.info "simulate" ~doc:"Deterministic scheduling simulation.")
    Term.(
      const run_simulate $ file_arg $ root_arg $ quantum_arg $ protocol_arg
      $ horizon_arg)

(* {1 latency} *)

let path_conv =
  let parse s = Ok (String.split_on_char '.' s) in
  Arg.conv (parse, Aadl.Instance.pp_path)

let run_latency file root_name quantum protocol jobs trace from_thread
    to_thread bound_us =
  handle_errors @@ fun () ->
  with_trace trace @@ fun () ->
  let root = load_root file root_name in
  let options =
    {
      Analysis.Latency.translation_options = translation_options quantum protocol;
      max_states = 2_000_000;
      jobs;
      engine = Analysis.Latency.default_options.Analysis.Latency.engine;
    }
  in
  let result =
    Analysis.Latency.check ~options ~from_thread ~to_thread
      ~bound:(Aadl.Time.make bound_us Aadl.Time.Us)
      root
  in
  Fmt.pr "%a@." Analysis.Latency.pp result;
  match result.Analysis.Latency.verdict with
  | Analysis.Latency.Latency_met -> 0
  | _ -> 1

let from_arg =
  Arg.(
    required
    & opt (some path_conv) None
    & info [ "from" ] ~docv:"THREAD"
        ~doc:"Flow source thread (dotted instance path).")

let to_arg =
  Arg.(
    required
    & opt (some path_conv) None
    & info [ "to" ] ~docv:"THREAD"
        ~doc:"Flow destination thread (dotted instance path).")

let bound_arg =
  Arg.(
    required
    & opt (some int) None
    & info [ "bound" ] ~docv:"US" ~doc:"Latency bound in microseconds.")

let latency_cmd =
  Cmd.v
    (Cmd.info "latency"
       ~doc:"Check an end-to-end latency bound with an observer process.")
    Term.(
      const run_latency $ file_arg $ root_arg $ quantum_arg $ protocol_arg
      $ jobs_arg $ trace_arg $ from_arg $ to_arg $ bound_arg)

(* {1 sensitivity} *)

let parse_sweep_range s =
  match String.split_on_char ':' s with
  | [ lo; hi ] -> (
      match (int_of_string_opt lo, int_of_string_opt hi) with
      | Some lo, Some hi when lo >= 1 && hi >= lo ->
          Ok (List.init (hi - lo + 1) (fun i -> lo + i))
      | _ -> Error (`Msg "expected LO:HI with 1 <= LO <= HI"))
  | _ -> Error (`Msg "expected LO:HI, e.g. 1:8")

let run_sensitivity file root_name quantum protocol thread sweep no_reuse
    stats trace =
  handle_errors @@ fun () ->
  with_trace trace @@ fun () ->
  let root = load_root file root_name in
  let options =
    {
      Analysis.Sensitivity.schedulability =
        {
          Analysis.Schedulability.default_options with
          translation_options = translation_options quantum protocol;
        };
      max_cmax = None;
      reuse = not no_reuse;
    }
  in
  let breakdown thread =
    let b = Analysis.Sensitivity.breakdown ~options ~thread root in
    Fmt.pr "%a@." Analysis.Sensitivity.pp b;
    Fmt.pr "  %a@." Analysis.Sensitivity.pp_reuse b
  in
  (match (sweep, thread) with
  | Some cets, Some thread ->
      List.iter
        (fun p -> Fmt.pr "%a@." Analysis.Sensitivity.pp_point p)
        (Analysis.Sensitivity.sweep ~options ~thread ~cets root)
  | Some _, None ->
      Fmt.epr "--sweep requires --thread@.";
      exit 2
  | None, Some thread -> breakdown thread
  | None, None ->
      (* all threads *)
      let q =
        match quantum with
        | Some us -> Aadl.Time.make us Aadl.Time.Us
        | None -> Translate.Workload.suggest_quantum root
      in
      let wl = Translate.Workload.extract ~quantum:q root in
      List.iter
        (fun (t : Translate.Workload.task) ->
          breakdown t.Translate.Workload.path)
        wl.Translate.Workload.tasks);
  if stats then print_registry ();
  0

let thread_arg =
  Arg.(
    value
    & opt (some path_conv) None
    & info [ "thread" ] ~docv:"THREAD"
        ~doc:
          "Thread to analyze (dotted instance path); default: every \
           thread in turn.")

let sweep_arg =
  let print ppf _ = Fmt.string ppf "LO:HI" in
  let sweep_conv = Arg.conv (parse_sweep_range, print) in
  Arg.(
    value
    & opt (some sweep_conv) None
    & info [ "sweep" ] ~docv:"LO:HI"
        ~doc:
          "Instead of the binary-search breakdown, probe every cet in the \
           inclusive quanta range and print one verdict per point with its \
           fragment reuse counters.  Requires $(b,--thread).")

let no_reuse_arg =
  Arg.(
    value & flag
    & info [ "no-reuse" ]
        ~doc:
          "Disable the fragment cache shared across probe points: every \
           point re-generates the full translation (the from-scratch \
           baseline the reuse counters are measured against).")

let sensitivity_cmd =
  Cmd.v
    (Cmd.info "sensitivity"
       ~doc:
         "Breakdown execution times: how much each thread's cet can grow \
          before the system becomes unschedulable.")
    Term.(
      const run_sensitivity $ file_arg $ root_arg $ quantum_arg
      $ protocol_arg $ thread_arg $ sweep_arg $ no_reuse_arg $ stats_arg
      $ trace_arg)

(* {1 report} *)

let run_report file root_name quantum protocol max_states jobs engine
    with_responses output =
  handle_errors @@ fun () ->
  let root = load_root file root_name in
  let options =
    {
      Analysis.Report.schedulability =
        {
          Analysis.Schedulability.translation_options =
            translation_options quantum protocol;
          max_states;
          all_violations = false;
          jobs;
          engine;
          deadline = None;
          poll = None;
          symmetry = true;
        };
      with_responses;
      title = Some (Filename.basename file);
    }
  in
  (match output with
  | Some path ->
      Analysis.Report.write_file ~options path root;
      Fmt.pr "report written to %s@." path
  | None -> Fmt.pr "%s@." (Analysis.Report.generate ~options root));
  0

let with_responses_arg =
  Arg.(
    value & flag
    & info [ "responses" ]
        ~doc:
          "Also compute observed worst-case response times (one binary \
           search of explorations per thread).")

let report_output_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE"
        ~doc:"Write the markdown report to a file instead of stdout.")

let report_cmd =
  Cmd.v
    (Cmd.info "report"
       ~doc:"Produce a self-contained markdown analysis report.")
    Term.(
      const run_report $ file_arg $ root_arg $ quantum_arg $ protocol_arg
      $ max_states_arg $ jobs_arg $ engine_arg $ with_responses_arg
      $ report_output_arg)

(* {1 acsr: analyze a textual ACSR model directly (VERSA-style)} *)

let run_acsr file entry dot unprioritized quotient max_states jobs stats
    trace =
  handle_errors @@ fun () ->
  with_trace trace @@ fun () ->
  let contents =
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Acsr.Syntax.parse_string contents with
  | exception Acsr.Syntax.Parse_error (msg, line) ->
      Fmt.epr "parse error (line %d): %s@." line msg;
      2
  | defs, system ->
      let root =
        match (entry, system) with
        | Some name, _ -> Acsr.Proc.call name []
        | None, Some p -> p
        | None, None ->
            Fmt.epr
              "no 'system = ...;' entry in %s; name a process with --entry@."
              file;
            exit 2
      in
      let semantics =
        if unprioritized then Versa.Lts.Unprioritized else Versa.Lts.Prioritized
      in
      let config =
        {
          Versa.Lts.default_config with
          max_states = Some max_states;
          stop_at_deadlock = false;
        }
      in
      let lts = Versa.Lts.build ~config ~semantics ~jobs defs root in
      Fmt.pr "%a@." Versa.Lts.pp_summary lts;
      if stats then print_registry ();
      (match Versa.Explorer.deadlock_verdict lts with
      | Versa.Explorer.Deadlock_free -> Fmt.pr "deadlock-free@."
      | Versa.Explorer.Deadlock { state; trace } ->
          Fmt.pr "@[<v>deadlock at state %d:@,%a@]@." state Versa.Trace.pp
            trace
      | Versa.Explorer.Inconclusive why -> Fmt.pr "inconclusive: %s@." why);
      if quotient then begin
        let q = Versa.Bisim.quotient lts in
        Fmt.pr "bisimulation quotient: %a@." Versa.Bisim.pp_quotient q
      end;
      (match dot with
      | Some path ->
          Versa.Dot.write_file ~show_terms:(Versa.Lts.num_states lts <= 40)
            path lts;
          Fmt.pr "LTS written to %s@." path
      | None -> ());
      if Versa.Lts.deadlocks lts = [] then 0 else 1

let entry_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "entry" ] ~docv:"NAME"
        ~doc:"Process definition to use as the root (default: the \
              $(b,system =) entry of the file).")

let dot_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dot" ] ~docv:"FILE" ~doc:"Write the explored LTS as Graphviz.")

let unprioritized_arg =
  Arg.(
    value & flag
    & info [ "unprioritized" ]
        ~doc:"Explore the unprioritized transition relation.")

let quotient_arg =
  Arg.(
    value & flag
    & info [ "quotient" ]
        ~doc:"Also compute the strong-bisimulation quotient.")

let acsr_cmd =
  Cmd.v
    (Cmd.info "acsr"
       ~doc:
         "Explore a textual ACSR model directly (the VERSA work-flow): \
          deadlock detection, diagnostic traces, DOT export.")
    Term.(
      const run_acsr $ file_arg $ entry_arg $ dot_arg $ unprioritized_arg
      $ quotient_arg $ max_states_arg $ jobs_arg $ stats_arg $ trace_arg)

(* {1 batch / serve: the analysis service layer} *)

let service_config engine no_cache cache_size exploration_jobs =
  let config =
    {
      Service.Runner.default_config with
      engine;
      jobs = exploration_jobs;
    }
  in
  if no_cache then config
  else Service.Runner.with_cache ~capacity:cache_size config

let no_cache_arg =
  Arg.(
    value & flag
    & info [ "no-cache" ] ~doc:"Disable the content-addressed verdict cache.")

let cache_size_arg =
  Arg.(
    value & opt int 256
    & info [ "cache-size" ] ~docv:"N"
        ~doc:"Capacity of the verdict cache (LRU eviction).")

let workers_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Analysis jobs run concurrently, each on its own domain.  \
           Output order is always manifest order.")

(* The batch summary that lands on stderr: one JSON object, so driving
   scripts can parse counters without scraping the human rendering (which
   is now opt-in via --stats). *)
let batch_summary_json (config : Service.Runner.config)
    (outcomes : Service.Job.outcome list) ~elapsed =
  let open Service in
  let count tag =
    List.length
      (List.filter
         (fun (o : Job.outcome) -> Job.verdict_tag o.verdict = tag)
         outcomes)
  in
  let cache_json =
    match config.Runner.cache with
    | None -> Json.Null
    | Some cache ->
        let c = Lru.counters cache in
        Json.Obj
          [
            ("hits", Json.Int c.Lru.hits);
            ("misses", Json.Int c.Lru.misses);
            ("evictions", Json.Int c.Lru.evictions);
            ("size", Json.Int c.Lru.size);
            ("capacity", Json.Int c.Lru.capacity);
          ]
  in
  let misses_json =
    match config.Runner.cache with
    | None -> Json.Null
    | Some _ ->
        let a = Runner.attribution_counters config in
        Json.Obj
          [
            ("novel", Json.Int a.Runner.novel);
            ("options_only", Json.Int a.Runner.options_only);
            ( "changed_components",
              Json.Obj
                (List.map
                   (fun (id, n) -> (id, Json.Int n))
                   a.Runner.changed_components) );
          ]
  in
  Json.Obj
    [
      ("jobs", Json.Int (List.length outcomes));
      ( "verdicts",
        Json.Obj
          (List.map
             (fun tag -> (tag, Json.Int (count tag)))
             [
               "schedulable"; "not_schedulable"; "bounded"; "unknown";
               "cancelled"; "error";
             ]) );
      ("wall_s", Json.Float elapsed);
      ("cache", cache_json);
      ("misses", misses_json);
    ]

(* batch --connect: forward every manifest entry to a live service (a
   shard, a router, or a plain serve --listen) and print the replies in
   manifest order.  Analysis happens remotely, so the local summary has
   no cache section — ask the service with {"op":"stats"}. *)
let run_batch_connect addr requests stats =
  Obs.Trace.set_node "client";
  let socket = Service.Transport_socket.create () in
  let t0 = Timed.Clock.gettimeofday () in
  let call_one (r : Service.Job.request) =
    (* Inside the span, the ambient context is this request's root, so
       the forwarded line carries it and the service's child spans
       transitively parent here. *)
    let json = Service.Job.request_to_json r in
    let json =
      if Obs.Trace.active () then
        Service.Protocol.set_trace json (Obs.Context.current ())
      else json
    in
    let line = Service.Json.to_string json in
    Obs.Log.emit ~fields:[ ("id", r.id); ("dst", addr) ] "client.request";
    Service.Transport_socket.call socket ~src:"batch" ~dst:addr line
  in
  let outcomes =
    List.map
      (fun (r : Service.Job.request) ->
        match
          Obs.Span.with_ ~name:"client.request" ~attrs:[ ("id", r.id) ]
            (fun () -> call_one r)
        with
        | Error e ->
            {
              Service.Job.id = r.id;
              verdict =
                Service.Job.Failed
                  (Printf.sprintf "service %s: %s" addr
                     (Service.Transport.error_message e));
              states = 0;
              cached = false;
              degraded = false;
              wall_s = 0.;
            }
        | Ok reply -> (
            match
              Result.bind (Service.Json.parse reply)
                Service.Job.outcome_of_json
            with
            | Ok o -> o
            | Error msg ->
                {
                  Service.Job.id = r.id;
                  verdict =
                    Service.Job.Failed
                      (Printf.sprintf "service %s: bad reply: %s" addr msg);
                  states = 0;
                  cached = false;
                  degraded = false;
                  wall_s = 0.;
                }))
      requests
  in
  let elapsed = Timed.Clock.gettimeofday () -. t0 in
  Service.Transport_socket.stop socket;
  List.iter
    (fun o ->
      print_endline (Service.Json.to_string (Service.Job.outcome_to_json o)))
    outcomes;
  Fmt.epr "%s@."
    (Service.Json.to_string
       (batch_summary_json Service.Runner.default_config outcomes ~elapsed));
  if stats then begin
    let count tag =
      List.length
        (List.filter
           (fun (o : Service.Job.outcome) ->
             Service.Job.verdict_tag o.verdict = tag)
           outcomes)
    in
    Fmt.epr
      "batch: %d jobs (%d schedulable, %d not schedulable, %d bounded, %d \
       unknown, %d cancelled, %d errors) in %.2fs via %s@."
      (List.length outcomes) (count "schedulable") (count "not_schedulable")
      (count "bounded") (count "unknown") (count "cancelled") (count "error")
      elapsed addr
  end;
  if
    List.exists
      (fun (o : Service.Job.outcome) ->
        match o.verdict with Service.Job.Failed _ -> true | _ -> false)
      outcomes
  then 1
  else 0

let run_batch manifest workers engine no_cache cache_size timeout stats trace
    connect log_json =
  with_log_json log_json @@ fun () ->
  with_trace trace @@ fun () ->
  let contents =
    try
      let ic = open_in_bin manifest in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with Sys_error msg ->
      Fmt.epr "%s@." msg;
      exit 2
  in
  match Service.Job.parse_manifest contents with
  | Error msg ->
      Fmt.epr "manifest error: %s@." msg;
      2
  | Ok requests ->
      (* relative model paths are relative to the manifest, not the cwd *)
      let dir = Filename.dirname manifest in
      let requests =
        List.map
          (fun (r : Service.Job.request) ->
            let r =
              match r.source with
              | Service.Job.File p when Filename.is_relative p ->
                  { r with source = Service.Job.File (Filename.concat dir p) }
              | _ -> r
            in
            match r.timeout_s with
            | None -> { r with timeout_s = timeout }
            | Some _ -> r)
          requests
      in
      match connect with
      | Some addr -> run_batch_connect addr requests stats
      | None ->
      let config = service_config engine no_cache cache_size 1 in
      let scheduler = Service.Scheduler.create ~workers config in
      List.iter
        (fun r -> ignore (Service.Scheduler.submit scheduler r))
        requests;
      let t0 = Timed.Clock.gettimeofday () in
      let outcomes = Service.Scheduler.run_all scheduler in
      let elapsed = Timed.Clock.gettimeofday () -. t0 in
      List.iter
        (fun o ->
          print_endline (Service.Json.to_string (Service.Job.outcome_to_json o)))
        outcomes;
      Fmt.epr "%s@."
        (Service.Json.to_string (batch_summary_json config outcomes ~elapsed));
      if stats then begin
        let count tag =
          List.length
            (List.filter
               (fun (o : Service.Job.outcome) ->
                 Service.Job.verdict_tag o.verdict = tag)
               outcomes)
        in
        Fmt.epr
          "batch: %d jobs (%d schedulable, %d not schedulable, %d bounded, \
           %d unknown, %d cancelled, %d errors) in %.2fs@."
          (List.length outcomes) (count "schedulable")
          (count "not_schedulable") (count "bounded") (count "unknown")
          (count "cancelled") (count "error") elapsed;
        match config.Service.Runner.cache with
        | Some cache ->
            Fmt.epr "cache: %a@." Service.Lru.pp_counters
              (Service.Lru.counters cache);
            Fmt.epr "misses: %a@." Service.Runner.pp_attribution
              (Service.Runner.attribution_counters config)
        | None -> ()
      end;
      if
        List.exists
          (fun (o : Service.Job.outcome) ->
            match o.verdict with Service.Job.Failed _ -> true | _ -> false)
          outcomes
      then 1
      else 0

let manifest_arg =
  Arg.(
    required
    & pos 0 (some non_dir_file) None
    & info [] ~docv:"MANIFEST"
        ~doc:
          "JSON-lines manifest: one request object per line ($(b,id) plus \
           $(b,file) or inline $(b,model); optional $(b,root), \
           $(b,protocol), $(b,quantum_us), $(b,max_states), $(b,timeout_s), \
           $(b,priority)).  Blank and $(b,#) lines are skipped; relative \
           paths resolve against the manifest's directory.")

let connect_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "connect" ] ~docv:"ADDR"
        ~doc:
          "Send the manifest to a live service at $(b,unix:PATH) or \
           $(b,tcp:HOST:PORT) (a $(b,serve --listen) endpoint, a \
           $(b,shard), or a router) instead of analyzing locally.  \
           Replies print in manifest order; local analysis flags are \
           ignored.")

let batch_cmd =
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Analyze a manifest of models: jobs run concurrently in priority \
          order through the verdict cache, results stream to stdout as \
          JSON lines in manifest order, a one-object JSON summary goes to \
          stderr ($(b,--stats) adds the human rendering).  \
          Budget-exhausted jobs degrade to analytic bounds.  With \
          $(b,--connect) the jobs run on a live service instead.")
    Term.(
      const run_batch $ manifest_arg $ workers_arg $ engine_arg
      $ no_cache_arg $ cache_size_arg $ timeout_arg $ stats_arg $ trace_arg
      $ connect_arg $ log_json_arg)

(* {2 distributed mode: socket endpoints} *)

let listen_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "listen" ] ~docv:"ADDR"
        ~doc:
          "Serve on a socket instead of stdio: $(b,unix:PATH) or \
           $(b,tcp:HOST:PORT).  The wire protocol is the same JSON-lines \
           conversation as stdio.")

let route_to_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "route-to" ] ~docv:"ADDRS"
        ~doc:
          "Run as a router over the comma-separated shard addresses: each \
           analysis request is forwarded to the shard that owns its cache \
           key (stable content-addressed hashing), with retries and ring \
           failover; $(b,{\"op\": \"stats\"}) merges every shard's \
           counters, $(b,{\"op\": \"route\"}) answers the owner without \
           running anything.")

let journal_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal" ] ~docv:"PATH"
        ~doc:
          "Persist every stored verdict to an append-only CRC-checked \
           journal and pre-warm the cache from it on startup, so a \
           restarted endpoint keeps answering repeats from cache.")

let shard_name_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "name" ] ~docv:"NAME"
        ~doc:
          "Shard name used in per-shard metrics (default: derived from \
           the listen address).")

(* Park the process until the endpoint has answered a quit, then tear
   the sockets down (a short grace period lets the quit reply flush). *)
let serve_until_quit socket stopping =
  let rec poll () =
    if stopping () then begin
      Thread.delay 0.2;
      Service.Transport_socket.stop socket
    end
    else begin
      Thread.delay 0.05;
      poll ()
    end
  in
  poll ();
  Service.Transport_socket.wait socket

let stdio_handler_loop handler stopping =
  let rec loop () =
    match input_line stdin with
    | exception End_of_file -> ()
    | line when String.trim line = "" -> loop ()
    | line ->
        print_string (handler line);
        print_newline ();
        flush stdout;
        if stopping () then () else loop ()
  in
  loop ()

let split_addrs s =
  String.split_on_char ',' s |> List.map String.trim
  |> List.filter (fun a -> a <> "")

(* Bind the --metrics-listen scrape endpoint on [socket], fatal on a bad
   or unbindable address (a silent scrape endpoint would be worse than
   none). *)
let start_scrape socket metrics_listen ~health =
  match metrics_listen with
  | None -> ()
  | Some addr -> (
      try Service.Scrape.start socket ~addr ~health with
      | Invalid_argument msg ->
          Fmt.epr "metrics-listen: %s@." msg;
          exit 2
      | Unix.Unix_error (e, _, _) ->
          Fmt.epr "metrics-listen: %s: %s@." addr (Unix.error_message e);
          exit 2)

let run_serve engine no_cache cache_size exploration_jobs trace listen
    route_to journal metrics_listen log_json =
  with_log_json log_json @@ fun () ->
  with_trace trace @@ fun () ->
  match route_to with
  | Some addrs -> (
      (* Router mode: front the listed shard endpoints.  The router
         keeps no cache of its own — the shards do the caching. *)
      match split_addrs addrs with
      | [] ->
          Fmt.epr "serve: --route-to needs at least one address@.";
          2
      | shards -> (
          Obs.Trace.set_node "router";
          let socket = Service.Transport_socket.create () in
          let transport = Service.Transport_socket.make socket in
          let router =
            Service.Router.create ?name:listen ~shards transport
          in
          let stopping () = Service.Router.stopping router in
          start_scrape socket metrics_listen ~health:(fun () ->
              Service.Json.to_string (Service.Router.health_json router));
          match listen with
          | None ->
              stdio_handler_loop (Service.Router.handler router) stopping;
              Service.Transport_socket.stop socket;
              0
          | Some _ ->
              (* The router's endpoint name is the listen address. *)
              (try Service.Router.register router transport
               with Invalid_argument msg ->
                 Fmt.epr "serve: %s@." msg;
                 exit 2);
              serve_until_quit socket stopping;
              0))
  | None -> (
      Obs.Trace.set_node "serve";
      match listen with
      | None when journal <> None -> (
          (* stdio conversation, but with the shard stack so verdicts
             persist across sessions *)
          let base =
            { Service.Runner.default_config with engine; jobs = exploration_jobs }
          in
          match
            Service.Shard.create ?journal ~capacity:cache_size ~name:"serve"
              base
          with
          | Error msg ->
              Fmt.epr "serve: %s@." msg;
              2
          | Ok shard ->
              let scrape_socket = Service.Transport_socket.create () in
              start_scrape scrape_socket metrics_listen ~health:(fun () ->
                  Service.Shard.health shard);
              stdio_handler_loop (Service.Shard.handler shard) (fun () ->
                  Service.Shard.stopping shard);
              Service.Transport_socket.stop scrape_socket;
              Service.Shard.close shard;
              0)
      | None ->
          let config =
            service_config engine no_cache cache_size exploration_jobs
          in
          (* The scrape health view shares [config] — and so the live
             cache — with the serving loop's own protocol instance. *)
          let health_protocol = Service.Protocol.create ~name:"serve" config in
          let scrape_socket = Service.Transport_socket.create () in
          start_scrape scrape_socket metrics_listen ~health:(fun () ->
              Service.Json.to_string
                (Service.Protocol.health_json health_protocol));
          Service.Server.serve ~config stdin stdout;
          Service.Transport_socket.stop scrape_socket;
          0
      | Some addr -> (
          (* Single-shard socket service.  A shard always caches (the
             journal replays into the cache); --no-cache is a stdio-only
             knob. *)
          let base =
            { Service.Runner.default_config with engine; jobs = exploration_jobs }
          in
          match
            Service.Shard.create ?journal ~capacity:cache_size ~name:addr base
          with
          | Error msg ->
              Fmt.epr "serve: %s@." msg;
              2
          | Ok shard ->
              (match Service.Shard.recovery shard with
              | Some r when r.Service.Journal.replayed <> [] ->
                  Fmt.epr "journal: replayed %d verdicts%s@."
                    (List.length r.Service.Journal.replayed)
                    (if r.Service.Journal.dropped_bytes > 0 then
                       Printf.sprintf " (dropped %d damaged bytes)"
                         r.Service.Journal.dropped_bytes
                     else "")
              | _ -> ());
              let socket = Service.Transport_socket.create () in
              (try
                 Service.Transport_socket.serve socket addr
                   (Service.Shard.handler shard)
               with
              | Invalid_argument msg ->
                  Fmt.epr "serve: %s@." msg;
                  exit 2
              | Unix.Unix_error (e, _, _) ->
                  Fmt.epr "serve: %s: %s@." addr (Unix.error_message e);
                  exit 2);
              start_scrape socket metrics_listen ~health:(fun () ->
                  Service.Shard.health shard);
              serve_until_quit socket (fun () ->
                  Service.Shard.stopping shard);
              Service.Shard.close shard;
              0))

let serve_cmd =
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Long-lived analysis service: read one JSON request per line on \
          stdin, answer one JSON outcome per line on stdout (same schema \
          as $(b,batch)).  $(b,{\"op\": \"stats\"}) reports verdict-cache \
          counters; $(b,{\"op\": \"metrics\"}) the full metrics registry \
          (JSON plus a Prometheus text exposition); $(b,{\"op\": \"quit\"}) \
          ends the session.  With $(b,--listen) the same conversation is \
          served on a socket; with $(b,--route-to) this process routes \
          requests across shard endpoints instead of analyzing locally.  \
          $(b,--metrics-listen) additionally serves the process metrics \
          over HTTP for scraping.")
    Term.(
      const run_serve $ engine_arg $ no_cache_arg $ cache_size_arg $ jobs_arg
      $ trace_arg $ listen_arg $ route_to_arg $ journal_arg
      $ metrics_listen_arg $ log_json_arg)

let run_shard listen journal shard_name cache_size engine exploration_jobs
    trace metrics_listen log_json =
  with_log_json log_json @@ fun () ->
  with_trace trace @@ fun () ->
  let base =
    { Service.Runner.default_config with engine; jobs = exploration_jobs }
  in
  let name = Option.value ~default:listen shard_name in
  (* Node names end up in trace-context headers, which are split on
     '/', so slug the address ("unix:/tmp/x.sock" and the like). *)
  Obs.Trace.set_node (Service.Protocol.metric_slug name);
  match Service.Shard.create ?journal ~capacity:cache_size ~name base with
  | Error msg ->
      Fmt.epr "shard: %s@." msg;
      2
  | Ok shard ->
      (match Service.Shard.recovery shard with
      | Some r ->
          Fmt.epr "journal: replayed %d verdicts, %d bytes dropped%s@."
            (List.length r.Service.Journal.replayed)
            r.Service.Journal.dropped_bytes
            (if r.Service.Journal.corrupt then " (CRC mismatch)" else "")
      | None -> ());
      let socket = Service.Transport_socket.create () in
      (try
         Service.Transport_socket.serve socket listen
           (Service.Shard.handler shard)
       with
      | Invalid_argument msg ->
          Fmt.epr "shard: %s@." msg;
          exit 2
      | Unix.Unix_error (e, _, _) ->
          Fmt.epr "shard: %s: %s@." listen (Unix.error_message e);
          exit 2);
      start_scrape socket metrics_listen ~health:(fun () ->
          Service.Shard.health shard);
      serve_until_quit socket (fun () -> Service.Shard.stopping shard);
      Service.Shard.close shard;
      0

let shard_cmd =
  Cmd.v
    (Cmd.info "shard"
       ~doc:
         "Run one owner shard: the full analysis service (runner, \
          scheduler, verdict cache) behind a socket endpoint, with an \
          optional persistent verdict journal.  Usually fronted by \
          $(b,serve --route-to), which sends each shard the slice of the \
          key space it owns; a shard is also a complete standalone \
          service ($(b,batch --connect) can target it directly).")
    Term.(
      const run_shard
      $ Arg.(
          required
          & opt (some string) None
          & info [ "listen" ] ~docv:"ADDR"
              ~doc:"Socket address to serve: unix:PATH or tcp:HOST:PORT.")
      $ journal_arg $ shard_name_arg $ cache_size_arg $ engine_arg $ jobs_arg
      $ trace_arg $ metrics_listen_arg $ log_json_arg)

(* {1 cluster-stats} *)

(* Pull the {"op": "cluster-stats"} view from a live endpoint (router or
   single shard — the reply shape is the same) and render it as a table:
   one row per shard, then the router's own forwarding counters. *)
let run_cluster_stats addr with_metrics raw =
  let socket = Service.Transport_socket.create () in
  let request =
    Service.Json.to_string
      (Service.Json.Obj
         ([ ("op", Service.Json.String "cluster-stats") ]
         @
         if with_metrics then
           [ ("with_metrics", Service.Json.Bool true) ]
         else []))
  in
  let reply =
    Service.Transport_socket.call socket ~src:"cluster-stats" ~dst:addr
      request
  in
  Service.Transport_socket.stop socket;
  match reply with
  | Error e ->
      Fmt.epr "cluster-stats: %s: %s@." addr
        (Service.Transport.error_message e);
      2
  | Ok line when raw ->
      print_endline line;
      0
  | Ok line -> (
      match Service.Json.parse line with
      | Error msg ->
          Fmt.epr "cluster-stats: bad reply: %s@." msg;
          2
      | Ok json ->
          let open Service.Json in
          let int_of j = Option.value ~default:0 (Option.bind j to_int) in
          let float_of j =
            Option.value ~default:0. (Option.bind j to_float)
          in
          let str_of j =
            Option.value ~default:"-" (Option.bind j to_str)
          in
          let reachable = int_of (member "reachable" json) in
          let shard_count = int_of (member "shard_count" json) in
          Fmt.pr "cluster: %d/%d shards reachable@." reachable shard_count;
          let shards =
            match member "shards" json with Some (Obj kvs) -> kvs | _ -> []
          in
          Fmt.pr "%-28s %5s %7s %9s %7s %12s %9s@." "SHARD" "UP" "QUEUE"
            "HIT%" "CACHE" "JOURNAL(B)" "UPTIME";
          List.iter
            (fun (name, entry) ->
              let up =
                Option.value ~default:false
                  (Option.bind (member "reachable" entry) to_bool)
              in
              if not up then
                Fmt.pr "%-28s %5s %7s %9s %7s %12s %9s  %s@." name "down"
                  "-" "-" "-" "-" "-"
                  (str_of (member "error" entry))
              else
                let h =
                  Option.value ~default:(Obj []) (member "health" entry)
                in
                let cache =
                  Option.value ~default:(Obj []) (member "cache" h)
                in
                let journal_bytes =
                  match member "journal" h with
                  | Some j -> string_of_int (int_of (member "bytes" j))
                  | None -> "-"
                in
                Fmt.pr "%-28s %5s %7.0f %8.1f%% %7d %12s %8.1fs@." name "up"
                  (float_of (member "queue_depth" h))
                  (100. *. float_of (member "hit_ratio" cache))
                  (int_of (member "size" cache))
                  journal_bytes
                  (float_of (member "uptime_s" h)))
            shards;
          (match member "router" json with
          | Some r ->
              Fmt.pr "router %s: %d requests, %d retries, %d failovers@."
                (str_of (member "endpoint" r))
                (int_of (member "requests" r))
                (int_of (member "retries" r))
                (int_of (member "failovers" r))
          | None -> ());
          if reachable < shard_count then 1 else 0)

let cluster_stats_cmd =
  Cmd.v
    (Cmd.info "cluster-stats"
       ~doc:
         "Aggregated cluster health: ask a live endpoint (a $(b,serve \
          --route-to) router, or any single shard) for $(b,{\"op\": \
          \"cluster-stats\"}) and render the merged per-shard view — \
          reachability, queue depth, verdict-cache hit ratio, journal \
          size, uptime — plus the router's forwarding counters.  Exits 1 \
          when some shards are unreachable.")
    Term.(
      const run_cluster_stats
      $ Arg.(
          required
          & opt (some string) None
          & info [ "connect" ] ~docv:"ADDR"
              ~doc:
                "Endpoint to query: $(b,unix:PATH) or $(b,tcp:HOST:PORT).")
      $ Arg.(
          value & flag
          & info [ "metrics" ]
              ~doc:
                "Also collect each shard's full metrics registry (only \
                 visible with $(b,--json)).")
      $ Arg.(
          value & flag
          & info [ "json" ] ~doc:"Print the raw JSON reply, not the table."))

(* {1 trace-merge} *)

let run_trace_merge out inputs =
  match Obs.Trace_merge.merge_files ~out inputs with
  | nproc, nevents ->
      Fmt.epr "trace-merge: %d processes, %d events -> %s@." nproc nevents
        out;
      0
  | exception Obs.Trace_merge.Parse_error msg ->
      Fmt.epr "trace-merge: %s@." msg;
      2
  | exception Sys_error msg ->
      Fmt.epr "trace-merge: %s@." msg;
      2

let trace_merge_cmd =
  Cmd.v
    (Cmd.info "trace-merge"
       ~doc:
         "Merge per-process $(b,--trace) files (client, router, shards) \
          into one Chrome/Perfetto trace: one named process track per \
          input, timestamps aligned on the recorded wall-clock epochs, \
          spans linked across processes by their trace/span ids.")
    Term.(
      const run_trace_merge
      $ Arg.(
          value
          & opt string "trace-merged.json"
          & info [ "o"; "output" ] ~docv:"OUT"
              ~doc:"Merged trace output file.")
      $ Arg.(
          non_empty
          & pos_all file []
          & info [] ~docv:"TRACE" ~doc:"Per-process trace JSON files."))

(* {1 main} *)

let main =
  Cmd.group
    (Cmd.info "aadl_sched" ~version:Version.version
       ~doc:
         "Schedulability analysis of AADL models by translation to the \
          real-time process algebra ACSR (Sokolsky, Lee, Clarke; IPDPS \
          2006).")
    [
      check_cmd;
      info_cmd;
      translate_cmd;
      analyze_cmd;
      simulate_cmd;
      latency_cmd;
      acsr_cmd;
      report_cmd;
      sensitivity_cmd;
      batch_cmd;
      serve_cmd;
      shard_cmd;
      cluster_stats_cmd;
      trace_merge_cmd;
    ]

let () = exit (Cmd.eval' main)
