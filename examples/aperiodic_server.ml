(* Event-driven threads, queues and overflow handling (paper, Sections
   4.3-4.4): a periodic producer fills the queue of a sporadic handler,
   and a device drives an aperiodic logger through a stimulus process.

   The example sweeps the handler's queue size and overflow policy and
   shows how an Error overflow policy turns queue saturation into an
   analyzable violation, while DropNewest absorbs it.

   Run with: dune exec examples/aperiodic_server.exe *)

(* plain substring replacement, to avoid a Str dependency *)
let replace pat repl s =
  let plen = String.length pat in
  let buf = Buffer.create (String.length s) in
  let i = ref 0 in
  while !i <= String.length s - plen do
    if String.sub s !i plen = pat then begin
      Buffer.add_string buf repl;
      i := !i + plen
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.add_string buf (String.sub s !i (String.length s - !i));
  Buffer.contents buf

let analyze ?(slow_handler = false) ~queue_size ~overflow () =
  let text = Gen.event_driven ~queue_size ~overflow () in
  let text =
    if slow_handler then
      (* a handler with 16 ms minimum separation cannot keep up with the
         8 ms producer: the queue must eventually overflow *)
      replace "Period => 4 ms;" "Period => 16 ms;" text
    else text
  in
  let root = Aadl.Instantiate.of_string text in
  let r = Analysis.Schedulability.analyze root in
  (r, Analysis.Schedulability.is_schedulable r)

let () =
  Fmt.pr "== nominal: fast handler, queue 2, DropNewest ==@.";
  let r, ok = analyze ~queue_size:2 ~overflow:"DropNewest" () in
  Fmt.pr "%a@.@." Analysis.Schedulability.pp r;
  assert ok;
  Fmt.pr "== slow handler, queue 1, DropNewest: events are shed ==@.";
  let _, ok_drop = analyze ~slow_handler:true ~queue_size:1 ~overflow:"DropNewest" () in
  Fmt.pr "verdict: %s@.@."
    (if ok_drop then "schedulable (overflow silently drops)" else "violation");
  Fmt.pr "== slow handler, queue 1, Error: overflow is a failure ==@.";
  let r_err, ok_err = analyze ~slow_handler:true ~queue_size:1 ~overflow:"Error" () in
  Fmt.pr "verdict: %s@."
    (if ok_err then "schedulable" else "violation detected");
  (match r_err.Analysis.Schedulability.verdict with
  | Analysis.Schedulability.Not_schedulable { scenario; _ } ->
      Fmt.pr "failing scenario:@.%a@." Analysis.Raise_trace.pp scenario
  | _ -> ());
  Fmt.pr "@.== queue size sweep (slow handler, Error policy) ==@.";
  List.iter
    (fun qs ->
      let r, ok = analyze ~slow_handler:true ~queue_size:qs ~overflow:"Error" () in
      let states =
        Versa.Explorer.num_states r.Analysis.Schedulability.exploration
      in
      Fmt.pr "queue=%d: %-24s (%d states explored)@." qs
        (if ok then "no overflow reachable" else "overflow reachable")
        states)
    [ 1; 2; 3; 4 ]
