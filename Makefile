# Developer entry points.  `make check` is the tier-1 gate: it always
# builds and runs the tests, and additionally builds the API docs and
# verifies formatting when the respective tools are installed (odoc and
# ocamlformat are dev-time tools, not build dependencies — the gate
# degrades gracefully where they are absent).

.PHONY: all build test test-faults lint-invariants doc fmt-check check bench-explore bench-scaling bench-service bench-sweep bench-smoke bench-obs bench-reduction bench-dist clean

all: build

build:
	dune build

test:
	dune runtest

# The seeded fault-matrix suite: qcheck properties over the RPC fabric
# (random delay/drop/duplication/reordering schedules) asserting replay
# determinism and verdict agreement — part of `make check`.
test-faults:
	dune exec test/test_timed.exe -- test faults

# Layering invariants enforced by grep, cheap enough to run on every
# check: all timestamps flow through Timed.Clock (no raw
# Unix.gettimeofday outside lib/timed), and all socket handling lives
# in the one transport that owns it (no Unix.socket outside
# transport_socket.ml).
lint-invariants:
	@bad=$$(grep -rn "Unix\.gettimeofday" lib bin bench --include='*.ml' --include='*.mli' \
	  | grep -v "^lib/timed/" | grep -v "(\*" || true); \
	if [ -n "$$bad" ]; then \
	  echo "lint-invariants: Unix.gettimeofday outside lib/timed:"; \
	  echo "$$bad"; exit 1; \
	fi
	@bad=$$(grep -rn "Unix\.socket\b" lib bin bench --include='*.ml' --include='*.mli' \
	  | grep -v "^lib/service/transport_socket.ml" || true); \
	if [ -n "$$bad" ]; then \
	  echo "lint-invariants: Unix.socket outside transport_socket.ml:"; \
	  echo "$$bad"; exit 1; \
	fi
	@missing=$$(grep -rhoE '"(versa|service|translate|analysis|runtime)_[a-z0-9_]+"' \
	  lib bin bench --include='*.ml' | tr -d '"' | sort -u \
	  | while read -r name; do \
	      grep -q "$$name" test/cli/obs.t || echo "$$name"; \
	    done); \
	if [ -n "$$missing" ]; then \
	  echo "lint-invariants: metric names missing from the pinned catalogue in test/cli/obs.t:"; \
	  echo "$$missing"; exit 1; \
	fi
	@echo "lint-invariants: ok"

doc:
	@if command -v odoc >/dev/null 2>&1; then \
	  dune build @doc; \
	else \
	  echo "odoc not installed; skipping documentation build"; \
	fi

fmt-check:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune build @fmt; \
	else \
	  echo "ocamlformat not installed; skipping format check"; \
	fi

check: build lint-invariants test test-faults bench-smoke bench-obs doc fmt-check

# Regenerate the exploration-engine telemetry (BENCH_explore.json),
# including the work-stealing jobs x model scaling table.  Doubles as
# the scaling gate: exits non-zero when jobs4/jobs1 < 2.0 on the
# largest bench model (enforced only on hosts with >= 4 cores) or when
# results differ across jobs.
bench-explore:
	dune exec bench/main.exe -- explore

# Just the scaling table + gate, without the engine comparison; writes
# BENCH_scaling.json (CI uploads it as the speedup-table artifact).
bench-scaling:
	dune exec bench/main.exe -- scaling

# Regenerate the service-layer batch-throughput telemetry
# (BENCH_service.json): verdict cache off vs on at 1 and 4 workers.
bench-service:
	dune exec bench/main.exe -- service

# Regenerate the incremental-sensitivity telemetry (BENCH_sweep.json):
# cet sweeps with the fragment cache on vs off, verdicts asserted equal.
bench-sweep:
	dune exec bench/main.exe -- sweep

# Fast engine-agreement gate: both exploration engines must report
# identical verdicts, counts and failing scenarios (seconds, not
# minutes — part of `make check`).
bench-smoke:
	dune exec bench/main.exe -- smoke

# Orbit (symmetry) reduction gate: explores the reference models and the
# generated replicated EDF families with the reduction off vs on, and
# merges the raw/reduced orbit table into BENCH_explore.json.  Exits
# non-zero when the reduced space is larger, verdicts disagree, the
# replicated families fail to reduce strictly, or the 12-thread family
# stops fitting its state budget with the reduction on.
bench-reduction:
	dune exec bench/main.exe -- reduction

# Observability overhead gate: exploring the largest example with the
# metrics registry enabled, and again with span tracing active on top,
# must each cost no more than 5% over a muted registry.  Writes both
# rows into BENCH_obs.json; exits non-zero past the tolerance — part
# of `make check`.
bench-obs:
	dune exec bench/main.exe -- obs

# Distributed-service throughput: a duplicate-heavy open-loop load
# against 1, 2 and 4 socket shards behind a router, merged into
# BENCH_service.json under "dist".  The shards4/shards1 speedup gate is
# enforced only on hosts with >= 4 cores; elsewhere the rows are
# recorded with the gate marked skipped.
bench-dist:
	dune exec bench/main.exe -- dist

clean:
	dune clean
