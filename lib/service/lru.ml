(* Hashtbl + intrusive doubly-linked recency list, guarded by one mutex.
   The list head is the most recently used entry; eviction pops the
   tail.  A sentinel node closes the ring so link/unlink have no
   edge cases. *)

(* The only production instantiation of this cache is the service's
   verdict cache (Runner), so its registry metrics carry that name. *)
module Metrics = struct
  let hits =
    Obs.Counter.make ~help:"Verdict-cache lookups served from the cache"
      "service_verdict_cache_hits_total"

  let misses =
    Obs.Counter.make ~help:"Verdict-cache lookups that missed"
      "service_verdict_cache_misses_total"

  let evictions =
    Obs.Counter.make ~help:"Verdict-cache entries evicted by capacity"
      "service_verdict_cache_evictions_total"

  let size =
    Obs.Gauge.make ~help:"Verdict-cache entries currently stored"
      "service_verdict_cache_size"
end

type 'a node = {
  key : string;
  mutable value : 'a option;  (* None only on the sentinel *)
  mutable prev : 'a node;
  mutable next : 'a node;
}

type 'a t = {
  mutex : Mutex.t;
  cond : Condition.t;  (* signalled when a lease is released *)
  tbl : (string, 'a node) Hashtbl.t;
  inflight : (string, unit) Hashtbl.t;  (* keys under a single-flight lease *)
  sentinel : 'a node;  (* sentinel.next = MRU, sentinel.prev = LRU *)
  cap : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~capacity =
  let cap = max 1 capacity in
  let rec sentinel = { key = ""; value = None; prev = sentinel; next = sentinel } in
  {
    mutex = Mutex.create ();
    cond = Condition.create ();
    tbl = Hashtbl.create (2 * cap);
    inflight = Hashtbl.create 8;
    sentinel;
    cap;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let capacity t = t.cap
let length t = Hashtbl.length t.tbl

let unlink node =
  node.prev.next <- node.next;
  node.next.prev <- node.prev

let link_front t node =
  node.next <- t.sentinel.next;
  node.prev <- t.sentinel;
  t.sentinel.next.prev <- node;
  t.sentinel.next <- node

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let find t key =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some node ->
          t.hits <- t.hits + 1;
          Obs.Counter.incr Metrics.hits;
          unlink node;
          link_front t node;
          node.value
      | None ->
          t.misses <- t.misses + 1;
          Obs.Counter.incr Metrics.misses;
          None)

let add_locked t key value =
  (match Hashtbl.find_opt t.tbl key with
  | Some node ->
      node.value <- Some value;
      unlink node;
      link_front t node
  | None ->
      let rec node = { key; value = Some value; prev = node; next = node } in
      Hashtbl.replace t.tbl key node;
      link_front t node);
  if Hashtbl.length t.tbl > t.cap then begin
    let lru = t.sentinel.prev in
    unlink lru;
    Hashtbl.remove t.tbl lru.key;
    t.evictions <- t.evictions + 1;
    Obs.Counter.incr Metrics.evictions
  end;
  Obs.Gauge.set Metrics.size (float_of_int (Hashtbl.length t.tbl))

let add t key value = with_lock t (fun () -> add_locked t key value)

(* Single-flight: the first thread to miss a key takes a lease and
   computes; concurrent threads asking for the same key block until the
   lease is released, then re-probe (a fulfilled lease turns them into
   hits, an abandoned one hands the lease to the first waiter). *)

let find_or_lease t key =
  Mutex.lock t.mutex;
  let rec probe () =
    match Hashtbl.find_opt t.tbl key with
    | Some node ->
        t.hits <- t.hits + 1;
        Obs.Counter.incr Metrics.hits;
        unlink node;
        link_front t node;
        `Hit (match node.value with Some v -> v | None -> assert false)
    | None ->
        if Hashtbl.mem t.inflight key then begin
          Condition.wait t.cond t.mutex;
          probe ()
        end
        else begin
          t.misses <- t.misses + 1;
          Obs.Counter.incr Metrics.misses;
          Hashtbl.replace t.inflight key ();
          `Lease
        end
  in
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) probe

let release_locked t key =
  Hashtbl.remove t.inflight key;
  Condition.broadcast t.cond

let fulfill t key value =
  with_lock t (fun () ->
      add_locked t key value;
      release_locked t key)

let abandon t key = with_lock t (fun () -> release_locked t key)

type counters = {
  hits : int;
  misses : int;
  evictions : int;
  size : int;
  capacity : int;
}

let counters t =
  with_lock t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        size = Hashtbl.length t.tbl;
        capacity = t.cap;
      })

let hit_rate c =
  let total = c.hits + c.misses in
  if total = 0 then 0. else float_of_int c.hits /. float_of_int total

let pp_counters ppf c =
  Fmt.pf ppf "%d hits, %d misses, %d evictions, size %d/%d" c.hits c.misses
    c.evictions c.size c.capacity
