(* An owner shard: Protocol + private cache + optional journal.  See
   shard.mli. *)

type t = {
  name : string;
  protocol : Protocol.t;
  journal : Journal.t option;
  recovery : Journal.recovery option;
  stopping : bool Atomic.t;
  requests : Obs.Counter.t;
}

let create ?journal ?compact_threshold ?(capacity = 256) ~name config =
  (* Metrics are registered here, per shard, at runtime — module-level
     registration would change the registry of every process linking
     this library. *)
  let requests =
    Obs.Counter.make
      ~help:"Requests handled by this shard"
      (Printf.sprintf "service_shard_%s_requests_total" (Protocol.metric_slug name))
  in
  let opened =
    match journal with
    | None -> Ok None
    | Some path -> (
        match Journal.open_ ?compact_threshold path with
        | Ok (j, recovery) -> Ok (Some (j, recovery))
        | Error _ as e -> e)
  in
  match opened with
  | Error msg -> Error msg
  | Ok opened ->
      let config = Runner.with_cache ~capacity config in
      let journal = Option.map fst opened in
      let recovery = Option.map snd opened in
      (match (config.Runner.cache, recovery) with
      | Some cache, Some r ->
          (* Oldest-first replay leaves the most recently journalled key
             most recently used. *)
          List.iter (fun (key, outcome) -> Lru.add cache key outcome)
            r.Journal.replayed;
          Obs.Gauge.set
            (Obs.Gauge.make
               ~help:"Verdicts replayed from the journal at startup"
               (Printf.sprintf "service_shard_%s_journal_replayed" (Protocol.metric_slug name)))
            (float_of_int (List.length r.Journal.replayed))
      | _ -> ());
      let config =
        match journal with
        | None -> config
        | Some j ->
            let appends =
              Obs.Counter.make
                ~help:"Verdicts appended to this shard's journal"
                (Printf.sprintf "service_shard_%s_journal_appends_total" (Protocol.metric_slug name))
            in
            {
              config with
              Runner.on_store =
                Some
                  (fun key outcome ->
                    Journal.append j ~key outcome;
                    Obs.Counter.incr appends);
            }
      in
      let health () =
        let replayed =
          match recovery with
          | Some r -> List.length r.Journal.replayed
          | None -> 0
        in
        ("role", Json.String "shard")
        ::
        (match journal with
        | None -> []
        | Some j ->
            let s = Journal.stats j in
            [
              ( "journal",
                Json.Obj
                  [
                    ("path", Json.String (Journal.path j));
                    ("bytes", Json.Int s.Journal.bytes);
                    ("records", Json.Int s.Journal.records);
                    ("live", Json.Int s.Journal.live);
                    ("compactions", Json.Int s.Journal.compactions);
                    ( "last_compaction_s",
                      match s.Journal.last_compaction_s with
                      | Some at -> Json.Float at
                      | None -> Json.Null );
                    ("replayed", Json.Int replayed);
                  ] );
            ])
      in
      Ok
        {
          name;
          protocol = Protocol.create ~name ~health config;
          journal;
          recovery;
          stopping = Atomic.make false;
          requests;
        }

let name t = t.name
let config t = Protocol.config t.protocol
let health t = Json.to_string (Protocol.health_json t.protocol)
let journal t = t.journal
let recovery t = t.recovery
let stopping t = Atomic.get t.stopping

let handler t line =
  Obs.Counter.incr t.requests;
  let reply, reaction = Protocol.handle t.protocol line in
  (match reaction with
  | Protocol.Quit -> Atomic.set t.stopping true
  | Protocol.Continue -> ());
  reply

let register t transport = Transport.serve transport t.name (handler t)

let close t =
  match t.journal with
  | Some j ->
      Journal.sync j;
      Journal.close j
  | None -> ()
