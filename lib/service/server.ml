(* Line-oriented JSON request loop over a channel pair: framing only,
   the protocol itself lives in Protocol.  See server.mli. *)

let serve ?config ic oc =
  let config =
    match config with
    | Some c -> c
    | None -> Runner.with_cache Runner.default_config
  in
  let protocol = Protocol.create config in
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | line when String.trim line = "" -> loop ()
    | line ->
        let reply, reaction = Protocol.handle protocol line in
        output_string oc reply;
        output_char oc '\n';
        flush oc;
        (match reaction with Protocol.Continue -> loop () | Protocol.Quit -> ())
  in
  loop ()
