(* Line-oriented JSON request loop.  See server.mli for the protocol. *)

let counters_json (config : Runner.config) =
  let c =
    match config.cache with
    | Some cache -> Lru.counters cache
    | None ->
        { Lru.hits = 0; misses = 0; evictions = 0; size = 0; capacity = 0 }
  in
  let a = Runner.attribution_counters config in
  Json.Obj
    [
      ("hits", Json.Int c.Lru.hits);
      ("misses", Json.Int c.Lru.misses);
      ("evictions", Json.Int c.Lru.evictions);
      ("size", Json.Int c.Lru.size);
      ("capacity", Json.Int c.Lru.capacity);
      ("novel_misses", Json.Int a.Runner.novel);
      ("options_only_misses", Json.Int a.Runner.options_only);
      ( "changed_components",
        Json.Obj
          (List.map
             (fun (id, n) -> (id, Json.Int n))
             a.Runner.changed_components) );
    ]

(* The whole Obs registry as JSON, one member per metric (sorted by
   name, as in the Prometheus rendering). *)
let metrics_json () =
  let value_json = function
    | Obs.Counter_value n -> Json.Int n
    | Obs.Gauge_value v -> Json.Float v
    | Obs.Histogram_value { bounds; counts; sum; count } ->
        let buckets =
          List.init (Array.length counts) (fun i ->
              ( (if i < Array.length bounds then Fmt.str "%g" bounds.(i)
                 else "+Inf"),
                Json.Int counts.(i) ))
        in
        Json.Obj
          [
            ("sum", Json.Float sum);
            ("count", Json.Int count);
            ("buckets", Json.Obj buckets);
          ]
  in
  Json.Obj
    (List.map
       (fun s -> (s.Obs.name, value_json s.Obs.value))
       (Obs.snapshot ()))

let respond oc json =
  output_string oc (Json.to_string json);
  output_char oc '\n';
  flush oc

let error msg = Json.Obj [ ("error", Json.String msg) ]

let serve ?config ic oc =
  let config =
    match config with
    | Some c -> c
    | None -> Runner.with_cache Runner.default_config
  in
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | line when String.trim line = "" -> loop ()
    | line -> (
        match Json.parse line with
        | Error msg ->
            respond oc (error msg);
            loop ()
        | Ok json -> (
            match Option.bind (Json.member "op" json) Json.to_str with
            | Some "stats" ->
                respond oc (counters_json config);
                loop ()
            | Some "metrics" ->
                respond oc
                  (Json.Obj
                     [
                       ("metrics", metrics_json ());
                       ("prometheus", Json.String (Obs.render_prometheus ()));
                     ]);
                loop ()
            | Some "quit" -> respond oc (Json.Obj [ ("ok", Json.Bool true) ])
            | Some op ->
                respond oc (error (Printf.sprintf "unknown op %S" op));
                loop ()
            | None -> (
                match Job.request_of_json json with
                | Error msg ->
                    respond oc (error msg);
                    loop ()
                | Ok req ->
                    respond oc (Job.outcome_to_json (Runner.run config req));
                    loop ())))
  in
  loop ()
