(* Cache keys: MD5 over instance XML + an options fingerprint.  The
   fingerprint is versioned ("v1;") so a schema change invalidates old
   keys instead of aliasing them. *)

let options_fingerprint ~protocol ~quantum_us ~max_states ~timeout_s =
  let opt f = function None -> "-" | Some v -> f v in
  Printf.sprintf "v1;protocol=%s;quantum_us=%s;max_states=%d;timeout_s=%s"
    (opt Aadl.Props.scheduling_protocol_to_string protocol)
    (opt string_of_int quantum_us)
    max_states
    (opt (Printf.sprintf "%.17g") timeout_s)

let of_instance root ~options =
  let xml = Aadl.Instance_xml.to_string root in
  Digest.to_hex (Digest.string (xml ^ "\x00" ^ options))

let of_request root (req : Job.request) =
  of_instance root
    ~options:
      (options_fingerprint ~protocol:req.protocol ~quantum_us:req.quantum_us
         ~max_states:req.max_states ~timeout_s:req.timeout_s)
