(* Cache keys for analysis verdicts.

   A key is Merkle-style: the leaves are the translation plan's fragment
   digests (one per thread/queue/stimulus/mode-manager unit), the root
   [merkle] digests the sorted leaves together with a versioned options
   fingerprint.  Two requests share a verdict cache entry iff every
   translation unit and every verdict-relevant option agree — and when
   they do not, diffing the leaves names exactly the components that
   changed, which the runner surfaces as miss-attribution counters.

   [structure] digests the fragment ids alone (no content, no options):
   it identifies "the same system, possibly edited", so an edited model
   maps to its predecessor for attribution.

   Models that cannot be planned (untranslatable) fall back to a
   whole-instance digest, keeping failure keys stable without fragment
   leaves. *)

type t = {
  merkle : string;
  structure : string;
  fragments : (string * string) list;  (* (id, digest), sorted by id *)
}

let options_fingerprint ~protocol ~quantum_us ~max_states ~timeout_s =
  let opt f = function None -> "-" | Some v -> f v in
  Printf.sprintf "v1;protocol=%s;quantum_us=%s;max_states=%d;timeout_s=%s"
    (opt Aadl.Props.scheduling_protocol_to_string protocol)
    (opt string_of_int quantum_us)
    max_states
    (opt (Printf.sprintf "%.17g") timeout_s)

let of_instance root ~options =
  let xml = Aadl.Instance_xml.to_string root in
  Digest.to_hex (Digest.string (xml ^ "\x00" ^ options))

let of_fragments fragments ~options =
  let fragments =
    List.sort (fun (a, _) (b, _) -> String.compare a b) fragments
  in
  let leaf_text =
    String.concat "\x1e"
      (List.map (fun (id, digest) -> id ^ "=" ^ digest) fragments)
  in
  {
    merkle = Digest.to_hex (Digest.string (leaf_text ^ "\x00" ^ options));
    structure =
      Digest.to_hex (Digest.string (String.concat "\x1e" (List.map fst fragments)));
    fragments;
  }

let of_plan (plan : Translate.Fragment.plan) ~options =
  of_fragments (Translate.Fragment.digests plan) ~options

let translation_options (req : Job.request) =
  {
    Translate.Pipeline.default_options with
    quantum =
      Option.map (fun us -> Aadl.Time.make us Aadl.Time.Us) req.Job.quantum_us;
    force_protocol = req.Job.protocol;
  }

let request_fingerprint (req : Job.request) =
  options_fingerprint ~protocol:req.Job.protocol ~quantum_us:req.Job.quantum_us
    ~max_states:req.Job.max_states ~timeout_s:req.Job.timeout_s

let of_request root (req : Job.request) =
  let options = request_fingerprint req in
  match Translate.Pipeline.plan ~options:(translation_options req) root with
  | plan -> of_plan plan ~options
  | exception _ ->
      (* untranslatable model: whole-instance fallback, no leaves *)
      {
        merkle = of_instance root ~options;
        structure = "untranslatable";
        fragments = [];
      }

(* Leaves present in only one key, or with different digests: the
   components a cache miss is attributable to.  Both lists are sorted by
   id, so a linear merge suffices. *)
let changed_fragments ~(prev : t) (next : t) =
  let rec merge acc xs ys =
    match (xs, ys) with
    | [], rest | rest, [] -> List.rev_append acc (List.map fst rest)
    | (xi, xd) :: xtl, (yi, yd) :: ytl ->
        let c = String.compare xi yi in
        if c = 0 then
          merge (if String.equal xd yd then acc else xi :: acc) xtl ytl
        else if c < 0 then merge (xi :: acc) xtl ys
        else merge (yi :: acc) xs ytl
  in
  merge [] prev.fragments next.fragments |> List.sort_uniq String.compare
