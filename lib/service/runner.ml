(* One job, end to end: load -> cache probe -> budgeted exploration ->
   degradation ladder -> cache fill.  See runner.mli. *)

type config = {
  cache : Job.outcome Lru.t option;
  jobs : int;
  engine : Versa.Explorer.engine;
}

let default_config =
  { cache = None; jobs = 1; engine = Versa.Explorer.On_the_fly }

let with_cache ?(capacity = 256) config =
  { config with cache = Some (Lru.create ~capacity) }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_instance (req : Job.request) =
  match req.source with
  | Job.Inline text -> Aadl.Instantiate.of_string ?root:req.root text
  | Job.File path ->
      let contents = read_file path in
      if Filename.check_suffix path ".xml" then
        Aadl.Instance_xml.of_string contents
      else Aadl.Instantiate.of_string ?root:req.root contents

(* Load/translation failures become [Failed] outcomes, mirroring the
   CLI's handle_errors ladder; anything else escapes (it's a bug). *)
let load_error = function
  | Aadl.Lexer.Error (msg, loc) ->
      Some (Fmt.str "lexical error (%a): %s" Aadl.Ast.pp_srcloc loc msg)
  | Aadl.Parser.Error (msg, loc) ->
      Some (Fmt.str "syntax error (%a): %s" Aadl.Ast.pp_srcloc loc msg)
  | Aadl.Instantiate.Error msg -> Some ("instantiation error: " ^ msg)
  | Translate.Pipeline.Error msg -> Some ("translation error: " ^ msg)
  | Translate.Workload.Error msg -> Some ("workload error: " ^ msg)
  | Aadl.Instance_xml.Error msg -> Some ("instance XML error: " ^ msg)
  | Sys_error msg -> Some msg
  | _ -> None

let analysis_options (config : config) (req : Job.request) ~now ~cancel =
  {
    Analysis.Schedulability.translation_options =
      {
        Translate.Pipeline.default_options with
        quantum =
          Option.map (fun us -> Aadl.Time.make us Aadl.Time.Us) req.quantum_us;
        force_protocol = req.protocol;
      };
    max_states = req.max_states;
    all_violations = false;
    jobs = config.jobs;
    engine = config.engine;
    deadline = Option.map (fun s -> now +. s) req.timeout_s;
    poll = cancel;
  }

let degrade ~reason (req : Job.request) (result : Analysis.Schedulability.t) =
  let fb =
    Analysis.Fallback.analyze ?force_protocol:req.protocol
      result.translation.Translate.Pipeline.workload
  in
  match fb.Analysis.Fallback.verdict with
  | Analysis.Fallback.Likely_schedulable m ->
      Job.Bounded { analytic_schedulable = true; method_ = m }
  | Analysis.Fallback.Analytically_unschedulable m ->
      Job.Bounded { analytic_schedulable = false; method_ = m }
  | Analysis.Fallback.Unknown m -> Job.Unknown (reason ^ "; " ^ m)

let explore config (req : Job.request) root ~now ~cancel =
  let options = analysis_options config req ~now ~cancel in
  let result = Analysis.Schedulability.analyze ~options root in
  let states = Versa.Explorer.num_states result.exploration in
  let verdict, degraded =
    match result.verdict with
    | Analysis.Schedulability.Schedulable -> (Job.Schedulable, false)
    | Analysis.Schedulability.Not_schedulable { scenario; trace = _ } ->
        ( Job.Not_schedulable
            {
              violation_time = scenario.Analysis.Raise_trace.violation_time;
              scenario = Fmt.str "%a" Analysis.Raise_trace.pp scenario;
            },
          false )
    | Analysis.Schedulability.Inconclusive reason ->
        let cancelled = match cancel with Some p -> p () | None -> false in
        if cancelled then (Job.Cancelled, false)
        else (degrade ~reason req result, true)
  in
  (verdict, degraded, states)

let run ?cancel config (req : Job.request) =
  let now = Unix.gettimeofday () in
  let outcome verdict ~states ~degraded =
    {
      Job.id = req.id;
      verdict;
      states;
      cached = false;
      degraded;
      wall_s = Unix.gettimeofday () -. now;
    }
  in
  let compute root =
    match explore config req root ~now ~cancel with
    | verdict, degraded, states -> outcome verdict ~states ~degraded
    | exception e -> (
        match load_error e with
        | Some msg -> outcome (Job.Failed msg) ~states:0 ~degraded:false
        | None -> raise e)
  in
  match load_instance req with
  | exception e -> (
      match load_error e with
      | Some msg -> outcome (Job.Failed msg) ~states:0 ~degraded:false
      | None -> raise e)
  | root -> (
      match config.cache with
      | None -> compute root
      | Some cache -> (
          let key = Key.of_request root req in
          (* Single-flight: concurrent duplicates wait for the lease
             holder instead of re-exploring, so a duplicate manifest
             entry is a cache hit at any worker count. *)
          match Lru.find_or_lease cache key with
          | `Hit o ->
              {
                o with
                Job.id = req.id;
                cached = true;
                wall_s = Unix.gettimeofday () -. now;
              }
          | `Lease ->
              let stored = ref false in
              Fun.protect
                ~finally:(fun () -> if not !stored then Lru.abandon cache key)
                (fun () ->
                  let o = compute root in
                  (match o.Job.verdict with
                  | Job.Cancelled | Job.Failed _ -> ()
                  | _ ->
                      Lru.fulfill cache key o;
                      stored := true);
                  o)))
