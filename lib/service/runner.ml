(* One job, end to end: load -> plan -> cache probe -> budgeted
   exploration -> degradation ladder -> cache fill.  See runner.mli. *)

module Metrics = struct
  let jobs =
    Obs.Counter.make ~help:"Analysis jobs run to completion"
      "service_jobs_total"

  let degraded =
    Obs.Counter.make
      ~help:"Jobs whose exploration was truncated and fell back to analytic bounds"
      "service_jobs_degraded_total"

  let miss_novel =
    Obs.Counter.make
      ~help:"Verdict-cache misses on a structure never seen before"
      "service_miss_novel_total"

  let miss_options_only =
    Obs.Counter.make
      ~help:"Verdict-cache misses where only analysis options changed"
      "service_miss_options_only_total"
end

(* Miss attribution: remember the last Merkle key seen per structure
   digest; when a later key of the same structure misses, the changed
   fragment ids name the components responsible. *)
type attribution = {
  mutable novel : int;
  mutable options_only : int;
  last : (string, Key.t) Hashtbl.t;  (* structure -> last key *)
  changed : (string, int) Hashtbl.t;  (* fragment id -> miss count *)
  mutex : Mutex.t;
}

type attribution_counters = {
  novel : int;
  options_only : int;
  changed_components : (string * int) list;
}

let create_attribution () =
  {
    novel = 0;
    options_only = 0;
    last = Hashtbl.create 16;
    changed = Hashtbl.create 16;
    mutex = Mutex.create ();
  }

type config = {
  cache : Job.outcome Lru.t option;
  jobs : int;
  engine : Versa.Explorer.engine;
  fragments : Translate.Fragment_cache.t option;
  attribution : attribution option;
  on_store : (string -> Job.outcome -> unit) option;
}

let default_config =
  {
    cache = None;
    jobs = 1;
    engine = Versa.Explorer.On_the_fly;
    fragments = None;
    attribution = None;
    on_store = None;
  }

let with_cache ?(capacity = 256) config =
  {
    config with
    cache = Some (Lru.create ~capacity);
    fragments = Some (Translate.Fragment_cache.create ());
    attribution = Some (create_attribution ());
  }

let attribute config (key : Key.t) =
  match config.attribution with
  | None -> ()
  | Some a ->
      Mutex.lock a.mutex;
      (match Hashtbl.find_opt a.last key.Key.structure with
      | Some prev -> (
          match Key.changed_fragments ~prev key with
          | [] ->
              a.options_only <- a.options_only + 1;
              Obs.Counter.incr Metrics.miss_options_only
          | ids ->
              List.iter
                (fun id ->
                  Hashtbl.replace a.changed id
                    (1
                    + Option.value ~default:0 (Hashtbl.find_opt a.changed id)))
                ids)
      | None ->
          a.novel <- a.novel + 1;
          Obs.Counter.incr Metrics.miss_novel);
      Hashtbl.replace a.last key.Key.structure key;
      Mutex.unlock a.mutex

let attribution_counters config =
  match config.attribution with
  | None -> { novel = 0; options_only = 0; changed_components = [] }
  | Some a ->
      Mutex.lock a.mutex;
      let changed_components =
        Hashtbl.fold (fun id n acc -> (id, n) :: acc) a.changed []
        |> List.sort (fun (ia, na) (ib, nb) ->
               match compare nb na with 0 -> String.compare ia ib | c -> c)
      in
      let r =
        { novel = a.novel; options_only = a.options_only; changed_components }
      in
      Mutex.unlock a.mutex;
      r

let pp_attribution ppf (c : attribution_counters) =
  Fmt.pf ppf "%d novel, %d options-only%a" c.novel c.options_only
    (fun ppf -> function
      | [] -> ()
      | changed ->
          Fmt.pf ppf "; changed: %a"
            (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (id, n) ->
                 Fmt.pf ppf "%s (%d)" id n))
            changed)
    c.changed_components

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load (req : Job.request) =
  match req.source with
  | Job.Inline text -> Aadl.Instantiate.of_string ?root:req.root text
  | Job.File path ->
      let contents = read_file path in
      if Filename.check_suffix path ".xml" then
        Aadl.Instance_xml.of_string contents
      else Aadl.Instantiate.of_string ?root:req.root contents

(* Load/translation failures become [Failed] outcomes, mirroring the
   CLI's handle_errors ladder; anything else escapes (it's a bug). *)
let load_error = function
  | Aadl.Lexer.Error (msg, loc) ->
      Some (Fmt.str "lexical error (%a): %s" Aadl.Ast.pp_srcloc loc msg)
  | Aadl.Parser.Error (msg, loc) ->
      Some (Fmt.str "syntax error (%a): %s" Aadl.Ast.pp_srcloc loc msg)
  | Aadl.Instantiate.Error msg -> Some ("instantiation error: " ^ msg)
  | Translate.Pipeline.Error msg -> Some ("translation error: " ^ msg)
  | Translate.Workload.Error msg -> Some ("workload error: " ^ msg)
  | Aadl.Instance_xml.Error msg -> Some ("instance XML error: " ^ msg)
  | Sys_error msg -> Some msg
  | _ -> None

let analysis_options (config : config) (req : Job.request) ~now ~cancel =
  {
    (* keying and running share the translation options: see Key *)
    Analysis.Schedulability.translation_options = Key.translation_options req;
    max_states = req.max_states;
    all_violations = false;
    jobs = config.jobs;
    engine = config.engine;
    deadline = Option.map (fun s -> now +. s) req.timeout_s;
    poll = cancel;
    symmetry = true;
  }

let degrade ~reason (req : Job.request) (result : Analysis.Schedulability.t) =
  let fb =
    Analysis.Fallback.analyze ?force_protocol:req.protocol
      result.translation.Translate.Pipeline.workload
  in
  match fb.Analysis.Fallback.verdict with
  | Analysis.Fallback.Likely_schedulable m ->
      Job.Bounded { analytic_schedulable = true; method_ = m }
  | Analysis.Fallback.Analytically_unschedulable m ->
      Job.Bounded { analytic_schedulable = false; method_ = m }
  | Analysis.Fallback.Unknown m -> Job.Unknown (reason ^ "; " ^ m)

let explore config (req : Job.request) ~options plan ~cancel =
  let tr = Translate.Pipeline.of_plan ?cache:config.fragments plan in
  let result = Analysis.Schedulability.analyze_translation ~options tr in
  let states = Versa.Explorer.num_states result.exploration in
  let verdict, degraded =
    match result.verdict with
    | Analysis.Schedulability.Schedulable -> (Job.Schedulable, false)
    | Analysis.Schedulability.Not_schedulable { scenario; trace = _ } ->
        ( Job.Not_schedulable
            {
              violation_time = scenario.Analysis.Raise_trace.violation_time;
              scenario = Fmt.str "%a" Analysis.Raise_trace.pp scenario;
            },
          false )
    | Analysis.Schedulability.Inconclusive reason ->
        let cancelled = match cancel with Some p -> p () | None -> false in
        if cancelled then (Job.Cancelled, false)
        else (degrade ~reason req result, true)
  in
  (verdict, degraded, states)

let run ?cancel config (req : Job.request) =
  Obs.Counter.incr Metrics.jobs;
  Obs.Span.with_ ~name:"service.job" ~attrs:[ ("id", req.Job.id) ]
  @@ fun () ->
  let now = Timed.Clock.gettimeofday () in
  let outcome verdict ~states ~degraded =
    if degraded then Obs.Counter.incr Metrics.degraded;
    {
      Job.id = req.id;
      verdict;
      states;
      cached = false;
      degraded;
      wall_s = Timed.Clock.gettimeofday () -. now;
    }
  in
  let failed e =
    match load_error e with
    | Some msg -> outcome (Job.Failed msg) ~states:0 ~degraded:false
    | None -> raise e
  in
  match load req with
  | exception e -> failed e
  | root -> (
      let options = analysis_options config req ~now ~cancel in
      match
        Translate.Pipeline.plan
          ~options:options.Analysis.Schedulability.translation_options root
      with
      | exception e -> failed e
      | plan -> (
          let compute () =
            match explore config req ~options plan ~cancel with
            | verdict, degraded, states -> outcome verdict ~states ~degraded
            | exception e -> failed e
          in
          match config.cache with
          | None -> compute ()
          | Some cache -> (
              let key = Key.of_plan plan ~options:(Key.request_fingerprint req) in
              (* Single-flight: concurrent duplicates wait for the lease
                 holder instead of re-exploring, so a duplicate manifest
                 entry is a cache hit at any worker count. *)
              match Lru.find_or_lease cache key.Key.merkle with
              | `Hit o ->
                  {
                    o with
                    Job.id = req.id;
                    cached = true;
                    wall_s = Timed.Clock.gettimeofday () -. now;
                  }
              | `Lease ->
                  attribute config key;
                  let stored = ref false in
                  Fun.protect
                    ~finally:(fun () ->
                      if not !stored then Lru.abandon cache key.Key.merkle)
                    (fun () ->
                      let o = compute () in
                      (match o.Job.verdict with
                      | Job.Cancelled | Job.Failed _ -> ()
                      | _ ->
                          Lru.fulfill cache key.Key.merkle o;
                          stored := true;
                          match config.on_store with
                          | Some f -> f key.Key.merkle o
                          | None -> ());
                      o))))
