(* Transport over Timed.Fabric: a direct adapter, faults and all. *)

module Impl = struct
  type t = Timed.Fabric.t

  let serve fabric name handler = Timed.Fabric.serve fabric name handler

  let call fabric ?timeout ~src ~dst payload =
    match Timed.Fabric.call fabric ?timeout ~src ~dst payload with
    | Ok reply -> Ok reply
    | Error Timed.Fabric.Timeout -> Error Transport.Timeout
    | Error (Timed.Fabric.No_endpoint name) ->
        Error (Transport.No_endpoint name)
end

let make fabric = Transport.Endpoint ((module Impl), fabric)
