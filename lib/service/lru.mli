(** A size-bounded, thread-safe LRU map with hit/miss/eviction counters —
    the store behind the content-addressed verdict cache.

    Keys are the hex digests produced by {!Key}; values are whatever the
    caller caches (the service caches {!Job.outcome}s).  [find] bumps
    recency, so the entry evicted when the cache is full is always the
    least recently {e used}, not the least recently inserted.  All
    operations take an internal mutex: scheduler workers on several
    domains share one cache. *)

type 'a t

val create : capacity:int -> 'a t
(** [capacity] is clamped below at 1.  O(capacity) memory, O(1)
    find/add. *)

val capacity : 'a t -> int

val length : 'a t -> int
(** Entries currently held ([<= capacity]). *)

val find : 'a t -> string -> 'a option
(** Lookup; on a hit the entry becomes most-recently-used.  Counts one
    hit or one miss. *)

val add : 'a t -> string -> 'a -> unit
(** Insert as most-recently-used, replacing any entry under the same key
    (a replacement is not an eviction).  When the cache is over
    capacity, the least-recently-used entry is dropped and counted as an
    eviction. *)

(** {2 Single-flight leases}

    Concurrent workers asking for the same missing key should not all
    recompute it.  [find_or_lease] grants the computation to exactly one
    caller — the {e lease holder} — and blocks the others until the
    lease is released.  Every lease MUST be released, by {!fulfill}
    (store the value, waiters re-probe and hit) or {!abandon} (store
    nothing; the first waiter inherits a fresh lease and computes
    itself).  Counter semantics: taking a lease counts one miss, a
    waiter served by a fulfilled lease counts one hit — so hit/miss
    totals are the same whether duplicates arrive sequentially or
    concurrently. *)

val find_or_lease : 'a t -> string -> [ `Hit of 'a | `Lease ]
(** Like {!find}, but a miss takes the single-flight lease for [key]
    (returning [`Lease]) instead of returning nothing.  Blocks while
    another thread holds the lease. *)

val fulfill : 'a t -> string -> 'a -> unit
(** [add] + release the lease, waking all waiters. *)

val abandon : 'a t -> string -> unit
(** Release the lease without storing, waking all waiters. *)

type counters = {
  hits : int;
  misses : int;
  evictions : int;
  size : int;
  capacity : int;
}

val counters : 'a t -> counters

val hit_rate : counters -> float
(** hits / (hits + misses), 0 when no lookups have happened. *)

val pp_counters : counters Fmt.t
(** ["N hits, N misses, N evictions, size S/C"]. *)
