(* Fabric delivery log -> Obs.Trace events.  See fabric_trace.mli. *)

let truncate_payload s =
  if String.length s <= 48 then s else String.sub s 0 45 ^ "..."

(* When the in-flight payload is a request carrying a trace context,
   surface its ids on the delivery event — clicking a fabric row in the
   merged view then names the span timeline the message belongs to. *)
let context_args payload =
  match Json.parse payload with
  | Error _ -> []
  | Ok json -> (
      match Protocol.trace_context json with
      | None -> []
      | Some ctx ->
          [
            ("trace_id", ctx.Obs.Context.trace_id);
            ("parent_id", ctx.Obs.Context.span_id);
          ])

let inject fabric =
  if Obs.Trace.active () then begin
    (* One timeline row (tid) per participant, numbered in order of
       first appearance — deterministic for a deterministic log. *)
    let tids = Hashtbl.create 8 in
    let tid name =
      match Hashtbl.find_opt tids name with
      | Some n -> n
      | None ->
          let n = Hashtbl.length tids + 1 in
          Hashtbl.add tids name n;
          n
    in
    List.iter
      (fun (e : Timed.Fabric.event) ->
        (* Sends and losses sit on the sender's row, arrivals on the
           receiver's — reading down a row shows one endpoint's view. *)
        let row =
          match e.kind with
          | Timed.Fabric.Deliver | Timed.Fabric.Reply_late -> tid e.dst
          | Timed.Fabric.Send | Timed.Fabric.Drop | Timed.Fabric.Duplicate
          | Timed.Fabric.Expired | Timed.Fabric.Link_change ->
              tid e.src
        in
        Obs.Trace.inject
          ~args:
            ([
               ("src", e.src);
               ("dst", e.dst);
               ("payload", truncate_payload e.payload);
             ]
            @ context_args e.payload)
          ~tid:row
          ~name:
            (Printf.sprintf "%s #%d %s->%s"
               (Timed.Fabric.kind_name e.kind)
               e.msg e.src e.dst)
          ~at:e.at ())
      (Timed.Fabric.log fabric)
  end
