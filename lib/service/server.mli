(** A long-lived analysis service over a line-oriented JSON protocol.

    [serve config ic oc] reads one JSON document per line from [ic] and
    writes exactly one JSON line to [oc] for each, flushed immediately,
    until end-of-file or a [quit] op.  Four request forms:

    - an analysis request ({!Job.request_of_json} schema, the same as a
      [batch] manifest line) — answered with the {!Job.outcome} object;
    - [{"op": "stats"}] — answered with the verdict-cache counters
      ([{"hits": …, "misses": …, "evictions": …, "size": …,
      "capacity": …}], all zero when the cache is disabled);
    - [{"op": "metrics"}] — answered with the full {!Obs} registry:
      [{"metrics": {name: value, …}, "prometheus": "…"}], where
      [prometheus] is the text exposition ({!Obs.render_prometheus})
      and histogram values carry [sum]/[count]/[buckets] members;
    - [{"op": "quit"}] — answered with [{"ok": true}], then the loop
      returns.

    Malformed lines are answered with [{"error": "…"}] and the loop
    continues; the server never terminates on bad input.  Jobs run one
    at a time, in arrival order — a session is a conversation, not a
    batch; use the [batch] subcommand for bulk throughput. *)

val serve : ?config:Runner.config -> in_channel -> out_channel -> unit
(** [config] defaults to {!Runner.default_config} with a verdict cache
    attached (capacity 256). *)
