(** Analysis jobs and their outcomes — the service wire schema.

    One request names a model (a file path or inline AADL text) plus the
    analysis options that affect the verdict; one outcome carries the
    qualified verdict, the raised failing scenario when there is one,
    and the service metadata (cache hit, degradation, timing).  The
    JSON encodings here are the single source of truth for both the
    [batch] manifest format and the [serve] request/response protocol. *)

type source =
  | File of string  (** path to a [.aadl] (or instance [.xml]) model *)
  | Inline of string  (** textual AADL carried in the request itself *)

type request = {
  id : string;  (** caller-chosen; echoed in the outcome *)
  source : source;
  root : string option;  (** root system implementation to instantiate *)
  protocol : Aadl.Props.scheduling_protocol option;
      (** override every processor's Scheduling_Protocol *)
  quantum_us : int option;
  max_states : int;  (** state budget (default 2M) *)
  timeout_s : float option;
      (** wall-clock budget; expiry degrades the job to analytic bounds *)
  priority : int;  (** scheduler priority, higher runs first (default 0) *)
}

val request :
  ?root:string ->
  ?protocol:Aadl.Props.scheduling_protocol ->
  ?quantum_us:int ->
  ?max_states:int ->
  ?timeout_s:float ->
  ?priority:int ->
  id:string ->
  source ->
  request

type verdict =
  | Schedulable  (** exact: exhaustive exploration found no deadlock *)
  | Not_schedulable of { violation_time : int; scenario : string }
      (** exact: first deadline miss, with the raised AADL-level
          scenario rendered as text *)
  | Bounded of { analytic_schedulable : bool; method_ : string }
      (** degraded: exploration budget exhausted, the named analytic
          pass(es) bound the answer (per-processor, approximate) *)
  | Unknown of string
      (** degraded: budget exhausted and no analytic test applies *)
  | Cancelled  (** the job was cancelled before or during exploration *)
  | Failed of string  (** the model could not be loaded or translated *)

val verdict_tag : verdict -> string
(** The stable JSON tag: ["schedulable"], ["not_schedulable"],
    ["bounded"], ["unknown"], ["cancelled"], ["error"]. *)

type outcome = {
  id : string;
  verdict : verdict;
  states : int;  (** states explored (0 when served from cache metadata
                     is preserved from the original run) *)
  cached : bool;  (** served from the verdict cache *)
  degraded : bool;  (** verdict came from the analytic fallback ladder *)
  wall_s : float;  (** time this request took in this process *)
}

(** {1 JSON encoding} *)

val request_of_json : Json.t -> (request, string) result
(** Accepts an object with fields [id] (required), exactly one of
    [file]/[model], and optional [root], [protocol], [quantum_us],
    [max_states], [timeout_s], [priority]. *)

val request_to_json : request -> Json.t
(** Inverse of {!request_of_json} — lets [batch --connect] forward
    manifest entries (with paths already resolved) to a live service.
    Fields holding their defaults are omitted. *)

val outcome_to_json : outcome -> Json.t
(** Field order is fixed (id, verdict, verdict-specific fields, states,
    cached, degraded, wall_s) so JSON-lines output is stable. *)

val outcome_of_json : Json.t -> (outcome, string) result
(** Inverse of {!outcome_to_json} — used by the verdict journal's
    replay and by clients decoding live-service replies. *)

val protocol_of_string :
  string -> (Aadl.Props.scheduling_protocol, string) result
(** Same names as the CLI: rm, dm, hpf, edf, llf, hier (and long
    forms). *)

val parse_manifest : string -> (request list, string) result
(** Parse JSON-lines manifest content: one request object per line;
    blank lines and [#] comment lines are skipped.  The error names the
    first offending line. *)
