(** Execution of a single analysis job: load, plan, cache lookup,
    exploration under budget, graceful degradation, cache fill.

    The runner is the sequential heart of the service layer — the
    {!Scheduler} calls it from worker domains, the [batch] and [serve]
    CLI subcommands call it through the scheduler.  Every failure mode
    is folded into the outcome ([Failed]/[Cancelled]/degraded verdicts);
    [run] never raises and never hangs past the job's wall-clock
    budget.

    Caching is two-layered and plan-based.  The translation {e plan}
    ({!Translate.Pipeline.plan}) is built once per job; its fragment
    digests form the Merkle verdict-cache key ({!Key.of_plan}), and on a
    miss the same plan is realized through a shared
    {!Translate.Fragment_cache} so translation units unchanged since any
    earlier job are reused by physical identity.  Misses are {e
    attributed}: each missed key is diffed against the previous key of
    the same structure digest, counting the changed fragment ids — a
    batch's miss profile names the components that kept changing. *)

type attribution
(** Mutable, mutex-protected miss-attribution state, shared by every
    worker using the same config. *)

type attribution_counters = {
  novel : int;  (** misses with no predecessor of the same structure *)
  options_only : int;
      (** misses where every fragment matched — only analysis options
          differed *)
  changed_components : (string * int) list;
      (** fragment id -> number of misses it contributed to; sorted by
          count (descending), then id *)
}

type config = {
  cache : Job.outcome Lru.t option;
      (** shared verdict cache; [None] disables caching *)
  jobs : int;  (** domains for parallel exploration within one job *)
  engine : Versa.Explorer.engine;
  fragments : Translate.Fragment_cache.t option;
      (** shared translation-fragment cache; [None] re-generates every
          fragment per job *)
  attribution : attribution option;
      (** miss-attribution state; [None] disables attribution *)
  on_store : (string -> Job.outcome -> unit) option;
      (** called with [(merkle key, outcome)] right after an outcome is
          stored in the cache — the hook the {!Journal} persists
          through.  Runs on the worker that computed the job, inside
          nothing but the job itself (the cache lease is already
          released), so it may do I/O. *)
}

val default_config : config
(** No caches, no attribution, [jobs = 1], on-the-fly engine. *)

val with_cache : ?capacity:int -> config -> config
(** [default: 256] — attach a fresh verdict cache, a fresh fragment
    cache, and fresh miss-attribution state. *)

val attribution_counters : config -> attribution_counters
(** Snapshot of the config's miss-attribution counters; all zero/empty
    when attribution is disabled. *)

val pp_attribution : attribution_counters Fmt.t
(** ["N novel, N options-only; changed: id (n), ..."]. *)

val load : Job.request -> Aadl.Instance.t
(** Load and instantiate the request's model — inline text, [.aadl]
    file, or instance [.xml] — without running anything.  Raises the
    load/parse errors that {!run} folds into [Failed] outcomes; the
    {!Router} uses this to compute routing keys. *)

val run : ?cancel:(unit -> bool) -> config -> Job.request -> Job.outcome
(** Run one job to completion:

    + load and instantiate the model, then build the translation plan
      ([Failed] on any load or translation error);
    + look the plan's Merkle {!Key} up in the cache — a hit returns the
      stored outcome (verdict {e and} raised scenario) with
      [cached = true], skipping exploration entirely; lookups are
      single-flight ({!Lru.find_or_lease}), so concurrent duplicates
      wait for the first computation and then hit, at any worker count;
      misses are attributed to the fragments that changed;
    + realize the plan through the shared fragment cache and explore
      with the request's state budget, wall-clock budget (deadline
      [now + timeout_s]) and [cancel] polled between merge steps;
    + on a truncated exploration, degrade: [Cancelled] if [cancel]
      fired, otherwise the {!Fallback} analytic ladder produces a
      qualified [Bounded] or [Unknown] verdict ([degraded = true]);
    + store every exact or degraded outcome back in the cache
      ([Cancelled]/[Failed] outcomes are not cached).

    [File] paths are used as given; resolve them against a manifest
    directory before calling if needed. *)
