(** Execution of a single analysis job: load, cache lookup, exploration
    under budget, graceful degradation, cache fill.

    The runner is the sequential heart of the service layer — the
    {!Scheduler} calls it from worker domains, the [batch] and [serve]
    CLI subcommands call it through the scheduler.  Every failure mode
    is folded into the outcome ([Failed]/[Cancelled]/degraded verdicts);
    [run] never raises and never hangs past the job's wall-clock
    budget. *)

type config = {
  cache : Job.outcome Lru.t option;
      (** shared verdict cache; [None] disables caching *)
  jobs : int;  (** domains for parallel exploration within one job *)
  engine : Versa.Explorer.engine;
}

val default_config : config
(** No cache, [jobs = 1], on-the-fly engine. *)

val with_cache : ?capacity:int -> config -> config
(** [default: 256] — attach a fresh verdict cache. *)

val run : ?cancel:(unit -> bool) -> config -> Job.request -> Job.outcome
(** Run one job to completion:

    + load and instantiate the model ([Failed] on any load error);
    + look the content-addressed {!Key} up in the cache — a hit returns
      the stored outcome (verdict {e and} raised scenario) with
      [cached = true], skipping exploration entirely; lookups are
      single-flight ({!Lru.find_or_lease}), so concurrent duplicates
      wait for the first computation and then hit, at any worker count;
    + explore with the request's state budget, wall-clock budget
      (deadline [now + timeout_s]) and [cancel] polled between merge
      steps;
    + on a truncated exploration, degrade: [Cancelled] if [cancel]
      fired, otherwise the {!Fallback} analytic ladder produces a
      qualified [Bounded] or [Unknown] verdict ([degraded = true]);
    + store every exact or degraded outcome back in the cache
      ([Cancelled]/[Failed] outcomes are not cached).

    [File] paths are used as given; resolve them against a manifest
    directory before calling if needed. *)
