(** Persistent verdict journal: an append-only on-disk log of
    [(cache key, outcome)] records that makes a shard's verdict cache
    survive restarts.

    Every outcome a shard stores is appended as one CRC-guarded record;
    on startup the journal replays the log (last write per key wins)
    and the shard pre-loads its LRU from the survivors, so a restarted
    shard answers repeat requests from cache instead of re-exploring.
    The format is crash-tolerant by construction: records are
    length-prefixed and checksummed, so a torn final write (power loss
    mid-append) or a corrupted record is detected on open, the valid
    prefix is kept, and the file is truncated back to it.

    {1 File format}

    A fixed 8-byte magic header ["AADLJRN1"], then records:

    {v
    +--------------+--------------+----------------------------+
    | length  u32  | crc32   u32  | payload (length bytes)     |
    | big-endian   | of payload   | one-line JSON              |
    +--------------+--------------+----------------------------+
    v}

    The payload is [{"key": <merkle hex>, "outcome": <outcome JSON>}]
    with the outcome encoded exactly as on the wire
    ({!Job.outcome_to_json}).  The CRC is IEEE 802.3 (the zlib/PNG
    polynomial).

    {1 Compaction}

    The log grows by one record per stored verdict, including
    re-computations of the same key; compaction rewrites the file to
    the latest record per live key (in append order), via a temp file
    and atomic rename.  [append] triggers it automatically once the
    record count passes the threshold {e and} at least half the records
    are shadowed — so steady-state disk usage is O(live keys), not
    O(appends). *)

type t

type recovery = {
  replayed : (string * Job.outcome) list;
      (** surviving records, one per key, in order of last append —
          oldest first, so inserting them in order into an LRU leaves
          the most recently written key most recently used *)
  dropped_bytes : int;
      (** bytes discarded from the tail (torn or corrupt records) *)
  corrupt : bool;
      (** [true] when the drop was a CRC mismatch rather than a clean
          truncation *)
}

val open_ : ?compact_threshold:int -> string -> (t * recovery, string) result
(** Open (creating if absent) the journal at [path] and replay it.
    Damaged tails are truncated away so the next append extends a valid
    log.  [compact_threshold] (default 1024, clamped below at 8) is the
    record count above which {!append} considers compacting.  [Error]
    on I/O failure or a file that is not a journal (bad magic). *)

val append : t -> key:string -> Job.outcome -> unit
(** Durably append one record ([flush]ed before returning) and compact
    if the log has grown past the threshold with a majority of shadowed
    records.  Thread-safe. *)

val compact : t -> unit
(** Force a compaction now (temp file + atomic rename). *)

val sync : t -> unit
(** Flush buffered appends to the OS. *)

val close : t -> unit

type stats = {
  records : int;
  live : int;
  bytes : int;
  compactions : int;
  last_compaction_s : float option;
      (** ambient-clock time of the last compaction in this process,
          [None] if none has run since the journal was opened *)
}

val stats : t -> stats

val path : t -> string

val read_back : string -> ((string * Job.outcome) list, string) result
(** Re-read a journal file from scratch without opening it for writing:
    the full record sequence in file order, duplicates included.
    Damaged tails are an [Error] here (tests want to see them), not a
    silent truncation. *)
