(* Sockets transport: line framing over Unix-domain / TCP.  See
   transport_socket.mli. *)

type addr = Unix_sock of string | Tcp of string * int

let parse_addr s =
  match String.index_opt s ':' with
  | None -> Error (Printf.sprintf "address %S: expected unix:PATH or tcp:HOST:PORT" s)
  | Some i -> (
      let scheme = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match scheme with
      | "unix" ->
          if rest = "" then Error "unix: address needs a path"
          else Ok (Unix_sock rest)
      | "tcp" -> (
          match String.rindex_opt rest ':' with
          | None -> Error (Printf.sprintf "address %S: tcp needs HOST:PORT" s)
          | Some j -> (
              let host = String.sub rest 0 j in
              let port = String.sub rest (j + 1) (String.length rest - j - 1) in
              match int_of_string_opt port with
              | Some p when p > 0 && p < 65536 && host <> "" ->
                  Ok (Tcp (host, p))
              | _ -> Error (Printf.sprintf "address %S: bad port" s)))
      | _ -> Error (Printf.sprintf "address %S: unknown scheme %S" s scheme))

let addr_to_string = function
  | Unix_sock path -> "unix:" ^ path
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

let sockaddr_of = function
  | Unix_sock path -> Unix.ADDR_UNIX path
  | Tcp (host, port) ->
      let ip =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> Unix.inet_addr_of_string host
      in
      Unix.ADDR_INET (ip, port)

(* One pooled client connection.  The mutex serializes calls to the
   same destination — replies on a connection must pair with requests
   in order.  Incoming bytes are buffered here, not in an in_channel,
   so reads can honor a deadline via [select]. *)
type conn = {
  fd : Unix.file_descr;
  buf : Buffer.t;
  conn_mutex : Mutex.t;
}

type listener = { lfd : Unix.file_descr; laddr : addr }

type t = {
  mutable listeners : listener list;
  mutable accepted : Unix.file_descr list;  (* live server-side conns *)
  pool : (string, conn) Hashtbl.t;
  mutex : Mutex.t;  (* listeners, accepted, pool *)
  stopped : bool ref;
  cond : Condition.t;
}

let create () =
  if Sys.os_type = "Unix" then
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  {
    listeners = [];
    accepted = [];
    pool = Hashtbl.create 8;
    mutex = Mutex.create ();
    stopped = ref false;
    cond = Condition.create ();
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* Server side: one thread per accepted connection, a line loop over
   buffered channels (no deadline needed — servers wait forever). *)
let handle_connection t handler fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let rec loop () =
    match input_line ic with
    | exception (End_of_file | Sys_error _) -> ()
    | line when String.trim line = "" -> loop ()
    | line -> (
        let reply = handler line in
        match
          output_string oc reply;
          output_char oc '\n';
          flush oc
        with
        | () -> loop ()
        | exception Sys_error _ -> ())
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      locked t (fun () ->
          t.accepted <- List.filter (fun c -> c != fd) t.accepted))
    loop

(* Bind + accept loop shared by the line protocol ([serve]) and the
   HTTP scrape endpoint ([serve_http]): one thread per accepted
   connection running [conn_handler]. *)
let listen t ~what name conn_handler =
  let addr =
    match parse_addr name with
    | Ok a -> a
    | Error msg -> invalid_arg (what ^ ": " ^ msg)
  in
  (match addr with
  | Unix_sock path when Sys.file_exists path -> (
      try Unix.unlink path with Unix.Unix_error _ -> ())
  | _ -> ());
  let domain =
    match addr with Unix_sock _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET
  in
  let lfd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (match addr with
  | Tcp _ -> Unix.setsockopt lfd Unix.SO_REUSEADDR true
  | Unix_sock _ -> ());
  (try Unix.bind lfd (sockaddr_of addr)
   with e -> (try Unix.close lfd with Unix.Unix_error _ -> ()); raise e);
  Unix.listen lfd 64;
  locked t (fun () -> t.listeners <- { lfd; laddr = addr } :: t.listeners);
  (* The accept thread owns [lfd] and closes it on exit; [stop] only
     [shutdown]s the listener.  (A plain [close] from another thread
     would NOT wake a blocked [accept] — the thread would hang forever,
     which matters once someone [Domain.join]s the serving domain —
     and closing here while the thread might still enter [accept]
     risks the fd number being reused under it.) *)
  let rec accept_loop () =
    if !(t.stopped) then ()
    else
      match Unix.accept lfd with
      | exception
          Unix.Unix_error
            ( ( Unix.EBADF | Unix.EINVAL | Unix.ECONNABORTED
              | Unix.ENOTCONN ),
              _,
              _ ) ->
          ()  (* listener shut down by [stop] *)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      | fd, _ ->
          locked t (fun () -> t.accepted <- fd :: t.accepted);
          ignore (Thread.create conn_handler fd);
          accept_loop ()
  in
  ignore
    (Thread.create
       (fun () ->
         Fun.protect
           ~finally:(fun () ->
             try Unix.close lfd with Unix.Unix_error _ -> ())
           accept_loop)
       ())

let serve t name handler =
  listen t ~what:"Transport_socket.serve" name (handle_connection t handler)

(* {1 The scrape endpoint}

   Just enough HTTP/1.0 for a Prometheus scraper or [curl]: read the
   request line, drain headers, answer GETs from [pages] (path ->
   content-type * body), close.  Lives here because this module owns
   every socket in the codebase (see [make lint-invariants]). *)

let handle_http_connection t pages fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let respond status headers body =
    try
      output_string oc (Printf.sprintf "HTTP/1.0 %s\r\n" status);
      List.iter
        (fun (k, v) -> output_string oc (Printf.sprintf "%s: %s\r\n" k v))
        (headers
        @ [
            ("Content-Length", string_of_int (String.length body));
            ("Connection", "close");
          ]);
      output_string oc "\r\n";
      output_string oc body;
      flush oc
    with Sys_error _ -> ()
  in
  let handle () =
    match input_line ic with
    | exception (End_of_file | Sys_error _) -> ()
    | request_line -> (
        (* drain headers up to the blank line *)
        (try
           while String.trim (input_line ic) <> "" do
             ()
           done
         with End_of_file | Sys_error _ -> ());
        match String.split_on_char ' ' (String.trim request_line) with
        | "GET" :: path :: _ -> (
            match pages path with
            | Some (content_type, body) ->
                respond "200 OK" [ ("Content-Type", content_type) ] body
            | None -> respond "404 Not Found" [] "not found\n")
        | _ -> respond "400 Bad Request" [] "bad request\n")
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      locked t (fun () ->
          t.accepted <- List.filter (fun c -> c != fd) t.accepted))
    handle

let serve_http t name pages =
  listen t ~what:"Transport_socket.serve_http" name
    (handle_http_connection t pages)

(* Client side. *)

let close_conn conn = try Unix.close conn.fd with Unix.Unix_error _ -> ()

let drop_pooled t dst conn =
  locked t (fun () ->
      match Hashtbl.find_opt t.pool dst with
      | Some c when c == conn -> Hashtbl.remove t.pool dst
      | _ -> ());
  close_conn conn

let connect dst =
  match parse_addr dst with
  | Error msg -> Error (Transport.Unreachable msg)
  | Ok addr -> (
      let domain =
        match addr with Unix_sock _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET
      in
      let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
      match Unix.connect fd (sockaddr_of addr) with
      | () ->
          Ok { fd; buf = Buffer.create 256; conn_mutex = Mutex.create () }
      | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error (Transport.No_endpoint dst)
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error (Transport.Unreachable (Unix.error_message e)))

let get_conn t dst =
  match locked t (fun () -> Hashtbl.find_opt t.pool dst) with
  | Some conn -> Ok conn
  | None -> (
      match connect dst with
      | Error _ as e -> e
      | Ok conn ->
          locked t (fun () ->
              (* A racing call may have connected too; keep ours out of
                 the pool in that case and use it one-shot. *)
              if not (Hashtbl.mem t.pool dst) then Hashtbl.add t.pool dst conn);
          Ok conn)

let send_all fd s =
  let bytes = Bytes.of_string s in
  let len = Bytes.length bytes in
  let rec go off =
    if off < len then go (off + Unix.write fd bytes off (len - off))
  in
  go 0

(* Read one '\n'-terminated line into/out of the connection buffer,
   waiting no later than [deadline] (absolute seconds, [None] = wait
   forever). *)
let read_line conn ~deadline =
  let chunk = Bytes.create 4096 in
  let take_line () =
    let s = Buffer.contents conn.buf in
    match String.index_opt s '\n' with
    | None -> None
    | Some i ->
        Buffer.clear conn.buf;
        Buffer.add_string conn.buf
          (String.sub s (i + 1) (String.length s - i - 1));
        Some (String.sub s 0 i)
  in
  let rec go () =
    match take_line () with
    | Some line -> Ok line
    | None -> (
        let wait =
          match deadline with
          | None -> -1.  (* select: wait forever *)
          | Some d ->
              let remaining = d -. Timed.Clock.gettimeofday () in
              if remaining <= 0. then 0. else remaining
        in
        if wait = 0. && deadline <> None then Error Transport.Timeout
        else
          match Unix.select [ conn.fd ] [] [] wait with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
          | [], _, _ -> Error Transport.Timeout
          | _ -> (
              match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
              | 0 -> Error (Transport.Unreachable "connection closed by peer")
              | n ->
                  Buffer.add_subbytes conn.buf chunk 0 n;
                  go ()
              | exception Unix.Unix_error (e, _, _) ->
                  Error (Transport.Unreachable (Unix.error_message e))))
  in
  go ()

let call t ?timeout ~src:_ ~dst payload =
  let attempt ~fresh =
    match (if fresh then connect dst else get_conn t dst) with
    | Error _ as e -> e
    | Ok conn -> (
        Mutex.lock conn.conn_mutex;
        let result =
          Fun.protect
            ~finally:(fun () -> Mutex.unlock conn.conn_mutex)
            (fun () ->
              match send_all conn.fd (payload ^ "\n") with
              | exception Unix.Unix_error (e, _, _) ->
                  Error (Transport.Unreachable (Unix.error_message e))
              | () ->
                  let deadline =
                    Option.map
                      (fun s -> Timed.Clock.gettimeofday () +. s)
                      timeout
                  in
                  read_line conn ~deadline)
        in
        (match result with
        | Ok _ -> ()
        | Error _ ->
            (* Never reuse a connection after a failed exchange: a late
               reply would desynchronize the next call. *)
            drop_pooled t dst conn);
        result)
  in
  match attempt ~fresh:false with
  | Ok _ as ok -> ok
  | Error Transport.Timeout -> Error Transport.Timeout
  | Error _ ->
      (* The pooled connection may just have been stale (server
         restarted since the last call): retry once on a fresh one. *)
      attempt ~fresh:true

let stop t =
  let listeners, accepted, conns =
    locked t (fun () ->
        let l = t.listeners and a = t.accepted in
        let c = Hashtbl.fold (fun _ conn acc -> conn :: acc) t.pool [] in
        t.listeners <- [];
        t.accepted <- [];
        Hashtbl.reset t.pool;
        !(t.stopped) |> ignore;
        t.stopped := true;
        Condition.broadcast t.cond;
        (l, a, c))
  in
  List.iter
    (fun { lfd; laddr } ->
      (* [shutdown], not [close]: it reliably wakes a thread blocked in
         [accept] (with EINVAL/ENOTCONN); the accept thread then closes
         the fd it owns *)
      (try Unix.shutdown lfd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
      match laddr with
      | Unix_sock path -> (
          try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
      | Tcp _ -> ())
    listeners;
  (* likewise for handler threads blocked reading a live connection:
     shutdown wakes the read with EOF and the thread closes its own fd
     on the way out (closing here would race fd reuse) *)
  List.iter
    (fun fd ->
      try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    accepted;
  List.iter close_conn conns

let wait t =
  Mutex.lock t.mutex;
  while not !(t.stopped) do
    Condition.wait t.cond t.mutex
  done;
  Mutex.unlock t.mutex

module Impl = struct
  type nonrec t = t

  let serve = serve
  let call = call
end

let make t = Transport.Endpoint ((module Impl), t)
