(** The routing actor: maps each analysis request to the shard that
    owns its cache key and forwards it there, with retries and ring
    failover.

    Ownership is content-addressed and stable: the request's Merkle
    {!Key} digest is hashed (FNV-1a) onto the shard ring, so every
    process — router restarts included — sends a given model+options to
    the same shard, which is what makes the per-shard caches and
    journals effective.  Requests whose model cannot even be loaded are
    routed by a digest of the raw source instead; the owner shard then
    produces the [Failed] outcome through its normal path, keeping
    error behavior identical to a single-process service.

    The router answers the same line protocol as a shard:

    - an analysis request — forwarded to the owner; on [Timeout] or an
      unreachable shard the call is retried, then failed over around
      the ring; when every shard is unreachable the reply is an
      ordinary [Failed] outcome (verdict ["error"]), so clients never
      need router-specific error handling;
    - [{"op": "stats"}] — fans out to every shard and merges the
      counter objects (sums, plus a per-shard breakdown under
      ["shards"]);
    - [{"op": "route"}] — answers [{"shard": …, "key": …}] without
      running anything (debugging / tests);
    - [{"op": "metrics"}] — the router process's own Obs registry;
    - [{"op": "health"}] — router uptime and per-shard reachability
      (one probe per shard);
    - [{"op": "cluster-stats"}] — per-shard health objects (plus each
      shard's metrics when the request carries
      [{"with_metrics": true}]) merged with the router's own routing
      counters — the aggregated cluster view behind the
      [cluster-stats] CLI;
    - [{"op": "quit"}] — forwards [quit] to every shard (best effort),
      replies [{"ok": true}] and latches {!stopping}.

    When tracing is active and a request carries a ["trace"] context,
    the router opens a [router.request] child span and rewrites the
    forwarded request's context to that span, so shard spans chain
    through the router back to the client root.  Fanned-out control ops
    ([stats]/[health]/[metrics]/[quit]) carry the same context.

    Routing keys are memoized by source-content digest + options
    fingerprint, so a duplicate-heavy workload plans each distinct
    model once, not once per request. *)

type t

val create :
  ?name:string ->
  ?retries:int ->
  ?call_timeout:float ->
  shards:string list ->
  Transport.t ->
  t
(** [create ~shards transport] routes over the given shard endpoint
    names (the ring order; must be non-empty — @raise Invalid_argument
    otherwise).  [name] is the router's own endpoint name (default
    ["router"]); [retries] (default 2) is the number of attempts per
    shard before failing over; [call_timeout] bounds each transport
    call (default: none). *)

val name : t -> string

val owner : t -> string -> string
(** [owner t merkle_key] — the shard name a cache key hashes to.
    Deterministic, uniform, independent of process history. *)

val route : t -> Job.request -> string * string
(** [(shard, merkle key)] for a request — loads (or recalls) the model
    to compute its key; falls back to a raw-source digest when loading
    fails. *)

val handler : t -> string -> string
(** Answer one protocol line (see above).  Never raises. *)

val health_json : t -> Json.t
(** The [{"op":"health"}] reply object: router uptime, per-shard
    reachability booleans, GC gauges.  Also served on the
    [--metrics-listen] endpoint's [/health] path. *)

val stopping : t -> bool

val register : t -> Transport.t -> unit
(** Serve {!handler} under {!name} on a transport (usually the same
    one the shards live on, but a router can front sim shards over a
    socket, or vice versa). *)
