(** The transport abstraction the distributed service is written
    against.

    A transport connects named {e endpoints}: [serve] registers a
    handler under a name, [call] sends one request string and waits for
    the one reply string.  The protocol actors ({!Router}, {!Shard})
    are transport-agnostic — the same state machine runs over
    {!Transport_sim} (the {!Timed.Fabric} fault-injectable in-process
    fabric, for deterministic protocol testing in virtual time) and
    over {!Transport_socket} (Unix-domain or TCP sockets, for real
    deployments).  Payloads are single-line JSON documents, the same
    wire schema as the stdio [serve] loop; the transport neither
    inspects nor escapes them, it only promises they arrive whole.

    Delivery guarantees are deliberately weak — the least common
    denominator of the two implementations: a [call] may time out, the
    named endpoint may not exist, and under the sim fabric a request
    may be delivered {e more than once} (at-least-once semantics).
    Handlers must therefore be idempotent; the verdict cache's
    single-flight leases and the journal's last-write-wins replay give
    the shards exactly that. *)

type error =
  | Timeout  (** no reply within the caller's budget *)
  | No_endpoint of string  (** the destination name is not registered *)
  | Unreachable of string
      (** the transport itself failed (connection refused, broken pipe,
          unparseable address); the payload names the cause *)

val error_message : error -> string
(** A one-line human-readable rendering. *)

(** What an implementation must provide. *)
module type S = sig
  type t

  val serve : t -> string -> (string -> string) -> unit
  (** [serve t name handler] registers (or replaces) endpoint [name].
      The handler runs once per delivered request and may itself
      perform calls on the same transport (multi-hop). *)

  val call :
    t ->
    ?timeout:float ->
    src:string ->
    dst:string ->
    string ->
    (string, error) result
  (** [call t ~src ~dst payload] sends [payload] to endpoint [dst] and
      waits for its reply.  [src] names the caller — the sim fabric
      uses it to pick the fault link, the socket transport only logs
      it.  Without [timeout] a lost message waits forever. *)
end

type t = Endpoint : (module S with type t = 'a) * 'a -> t
(** A transport packed with its implementation — the protocol actors
    hold one of these and never see which side of the sim/socket split
    they run on. *)

val serve : t -> string -> (string -> string) -> unit
val call :
  t -> ?timeout:float -> src:string -> dst:string -> string ->
  (string, error) result
