(** An owner shard: one runner/scheduler/LRU stack behind a transport
    endpoint, with an optional persistent verdict {!Journal}.

    A shard owns a slice of the key space (the {!Router} decides
    which); it answers the full {!Protocol} — analysis requests,
    [stats], [metrics], [quit] — through any {!Transport}.  When given
    a journal path it persists every stored verdict and pre-warms its
    cache from the journal on startup, so a restarted shard keeps
    answering repeats from cache.

    Per-shard Obs metrics ([service_shard_<name>_requests_total],
    [..._journal_appends_total], [..._journal_replayed]) are registered
    when the shard is created, never at module load — the metric
    registry of a process that creates no shards is unchanged. *)

type t

val create :
  ?journal:string ->
  ?compact_threshold:int ->
  ?capacity:int ->
  name:string ->
  Runner.config ->
  (t, string) result
(** [create ~name config] builds a shard called [name] on [config]'s
    engine/jobs settings, always with its own verdict cache (LRU
    [capacity], default 256), fragment cache and miss attribution —
    whatever caches [config] carried are replaced.  With [?journal]
    the file at that path is opened ({!Journal.open_}, creating it if
    absent), its surviving records are replayed into the cache, and
    every future store is appended to it. *)

val name : t -> string
val config : t -> Runner.config
val journal : t -> Journal.t option

val health : t -> string
(** The [{"op":"health"}] reply as a one-line JSON string — role,
    uptime, queue depth, cache counters, GC gauges and (with a journal)
    path/size/records/compaction/replay stats.  Also served on the
    [--metrics-listen] endpoint's [/health] path. *)

val recovery : t -> Journal.recovery option
(** What journal replay found at startup ([None] without a journal). *)

val handler : t -> string -> string
(** Answer one protocol request line.  [quit] replies [{"ok": true}]
    and latches {!stopping}; the transport loop decides what to do with
    that.  Never raises. *)

val stopping : t -> bool
(** [true] once a [quit] request has been handled. *)

val register : t -> Transport.t -> unit
(** [Transport.serve transport (name t) (handler t)]. *)

val close : t -> unit
(** Flush and close the journal, if any. *)
