(* Digest-ownership routing with retry and ring failover.  See
   router.mli. *)

type t = {
  name : string;
  shards : string array;
  retries : int;
  call_timeout : float option;
  transport : Transport.t;
  (* source digest + options fingerprint -> merkle key *)
  key_memo : (string, string) Hashtbl.t;
  memo_mutex : Mutex.t;
  stopping : bool Atomic.t;
  started_at : float;
  spans : Protocol.span_gate;
  m_requests : Obs.Counter.t;
  m_retries : Obs.Counter.t;
  m_failovers : Obs.Counter.t;
  m_owned : (string * Obs.Counter.t) array;
}

(* FNV-1a over the key bytes (64-bit offset basis truncated into the
   63-bit native int), kept positive.  Unlike [Hashtbl.hash] this is
   specified, so the ownership map survives restarts and OCaml
   upgrades — a shard's journal keeps paying off. *)
let fnv1a s =
  let h = ref 0x4bf29ce484222325 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3)
    s;
  !h land max_int

let create ?(name = "router") ?(retries = 2) ?call_timeout ~shards transport =
  if shards = [] then invalid_arg "Router.create: no shards";
  (* Runtime metric registration, as in Shard: routers are created per
     process, not per link. *)
  {
    name;
    shards = Array.of_list shards;
    retries = max 1 retries;
    call_timeout;
    transport;
    key_memo = Hashtbl.create 64;
    memo_mutex = Mutex.create ();
    stopping = Atomic.make false;
    started_at = Timed.Clock.gettimeofday ();
    spans = Protocol.make_span_gate ();
    m_requests =
      Obs.Counter.make ~help:"Requests routed" "service_route_requests_total";
    m_retries =
      Obs.Counter.make ~help:"Routed calls retried on the same shard"
        "service_route_retries_total";
    m_failovers =
      Obs.Counter.make
        ~help:"Routed calls failed over to a non-owner shard"
        "service_route_failovers_total";
    m_owned =
      Array.of_list
        (List.map
           (fun shard ->
             ( shard,
               Obs.Counter.make
                 ~help:"Requests owned by this shard"
                 (Printf.sprintf "service_route_owned_%s_total"
                    (Protocol.metric_slug shard)) ))
           shards);
  }

let name t = t.name
let stopping t = Atomic.get t.stopping

let owner t merkle = t.shards.(fnv1a merkle mod Array.length t.shards)

let source_digest (req : Job.request) =
  match req.Job.source with
  | Job.Inline text -> Digest.to_hex (Digest.string text)
  | Job.File path -> (
      (* Digest the content, not the path: two manifest entries naming
         different copies of one model route to the same shard. *)
      match Digest.file path with
      | d -> Digest.to_hex d
      | exception Sys_error _ -> Digest.to_hex (Digest.string ("path:" ^ path)))

let routing_key t (req : Job.request) =
  let memo_key = source_digest req ^ "/" ^ Key.request_fingerprint req in
  Mutex.lock t.memo_mutex;
  let hit = Hashtbl.find_opt t.key_memo memo_key in
  Mutex.unlock t.memo_mutex;
  match hit with
  | Some merkle -> merkle
  | None ->
      let merkle =
        match Runner.load req with
        | root -> (Key.of_request root req).Key.merkle
        | exception _ ->
            (* Unloadable model: route by raw source so the owner shard
               reports the load failure itself. *)
            memo_key
      in
      Mutex.lock t.memo_mutex;
      Hashtbl.replace t.key_memo memo_key merkle;
      Mutex.unlock t.memo_mutex;
      merkle

let route t req =
  let merkle = routing_key t req in
  (owner t merkle, merkle)

let count_owned t shard =
  Array.iter
    (fun (s, counter) -> if String.equal s shard then Obs.Counter.incr counter)
    t.m_owned

(* A control-op line carrying the calling thread's current span context
   (when tracing), so ops fanned out to the shards parent on the router
   span that asked for them. *)
let op_line op =
  let json = Json.Obj [ ("op", Json.String op) ] in
  Json.to_string
    (if Obs.Trace.active () then Protocol.set_trace json (Obs.Context.current ())
     else json)

(* Try the owner [retries] times, then each following shard on the
   ring.  Timeouts and unreachable transports move on; [No_endpoint]
   skips retries for that shard (it will not appear mid-burst). *)
let forward t ~owner_shard line =
  let n = Array.length t.shards in
  let start =
    let rec index i =
      if i >= n then 0
      else if String.equal t.shards.(i) owner_shard then i
      else index (i + 1)
    in
    index 0
  in
  let rec shard_loop hop =
    if hop >= n then begin
      Obs.Log.emit ~fields:[ ("owner", owner_shard) ] "route.unreachable";
      Error `Unreachable
    end
    else begin
      let dst = t.shards.((start + hop) mod n) in
      if hop > 0 then begin
        Obs.Counter.incr t.m_failovers;
        Obs.Log.emit
          ~fields:[ ("owner", owner_shard); ("dst", dst) ]
          "route.failover"
      end;
      let rec attempt k =
        match
          Transport.call t.transport ?timeout:t.call_timeout ~src:t.name ~dst
            line
        with
        | Ok reply -> Ok reply
        | Error (Transport.No_endpoint _) -> Error `Next
        | Error (Transport.Timeout | Transport.Unreachable _) ->
            if k + 1 < t.retries then (
              Obs.Counter.incr t.m_retries;
              Obs.Log.emit
                ~fields:[ ("dst", dst); ("attempt", string_of_int (k + 1)) ]
                "route.retry";
              attempt (k + 1))
            else Error `Next
      in
      match attempt 0 with
      | Ok reply -> Ok reply
      | Error `Next -> shard_loop (hop + 1)
    end
  in
  shard_loop 0

let unreachable_outcome id =
  Json.to_string
    (Job.outcome_to_json
       {
         Job.id;
         verdict = Job.Failed "shards unreachable";
         states = 0;
         cached = false;
         degraded = false;
         wall_s = 0.;
       })

let analyze t line json (req : Job.request) =
  Obs.Counter.incr t.m_requests;
  let owner_shard, _ = route t req in
  count_owned t owner_shard;
  Obs.Log.emit
    ~fields:[ ("id", req.Job.id); ("owner", owner_shard) ]
    "route.forward";
  (* Re-parent the request onto the router's own span before forwarding,
     so the shard span chains client -> router -> shard; without an
     active trace the original line is forwarded untouched. *)
  let line =
    if Obs.Trace.active () then
      match Obs.Context.current () with
      | Some _ as ctx -> Json.to_string (Protocol.set_trace json ctx)
      | None -> line
    else line
  in
  match forward t ~owner_shard line with
  | Ok reply -> reply
  | Error `Unreachable -> unreachable_outcome req.Job.id

(* {"op":"stats"}: fan out and merge.  Sums across shards, the raw
   per-shard objects under "shards", unreachable shards reported as
   {"error": ...} there. *)
let stats t =
  let int_field obj key =
    Option.value ~default:0 (Option.bind (Json.member key obj) Json.to_int)
  in
  let totals = Hashtbl.create 8 in
  let changed = Hashtbl.create 8 in
  let add key n = Hashtbl.replace totals key (n + Option.value ~default:0 (Hashtbl.find_opt totals key)) in
  let per_shard =
    Array.to_list t.shards
    |> List.map (fun shard ->
           match
             Transport.call t.transport ?timeout:t.call_timeout ~src:t.name
               ~dst:shard (op_line "stats")
           with
           | Error e ->
               ( shard,
                 Json.Obj
                   [ ("error", Json.String (Transport.error_message e)) ] )
           | Ok reply -> (
               match Json.parse reply with
               | Error msg ->
                   (shard, Json.Obj [ ("error", Json.String msg) ])
               | Ok obj ->
                   List.iter
                     (fun key -> add key (int_field obj key))
                     [
                       "hits"; "misses"; "evictions"; "size"; "capacity";
                       "novel_misses"; "options_only_misses";
                     ];
                   (match Json.member "changed_components" obj with
                   | Some (Json.Obj members) ->
                       List.iter
                         (fun (id, v) ->
                           match Json.to_int v with
                           | Some n ->
                               Hashtbl.replace changed id
                                 (n
                                 + Option.value ~default:0
                                     (Hashtbl.find_opt changed id))
                           | None -> ())
                         members
                   | _ -> ());
                   (shard, obj)))
  in
  let total key =
    Json.Int (Option.value ~default:0 (Hashtbl.find_opt totals key))
  in
  let changed_members =
    Hashtbl.fold (fun id n acc -> (id, n) :: acc) changed []
    |> List.sort (fun (ia, na) (ib, nb) ->
           match compare nb na with 0 -> String.compare ia ib | c -> c)
    |> List.map (fun (id, n) -> (id, Json.Int n))
  in
  Json.to_string
    (Json.Obj
       [
         ("hits", total "hits");
         ("misses", total "misses");
         ("evictions", total "evictions");
         ("size", total "size");
         ("capacity", total "capacity");
         ("novel_misses", total "novel_misses");
         ("options_only_misses", total "options_only_misses");
         ("changed_components", Json.Obj changed_members);
         ("shards", Json.Obj per_shard);
       ])

let quit t =
  Array.iter
    (fun shard ->
      ignore
        (Transport.call t.transport ?timeout:t.call_timeout ~src:t.name
           ~dst:shard (op_line "quit")))
    t.shards;
  Atomic.set t.stopping true;
  Json.to_string (Json.Obj [ ("ok", Json.Bool true) ])

(* {1 Health and cluster aggregation} *)

let probe_shards t op =
  Array.to_list t.shards
  |> List.map (fun shard ->
         match
           Transport.call t.transport ?timeout:t.call_timeout ~src:t.name
             ~dst:shard (op_line op)
         with
         | Ok reply -> (shard, Ok reply)
         | Error e -> (shard, Error (Transport.error_message e)))

let health_json t =
  Obs.sample_gc ();
  let per = probe_shards t "health" in
  let reachable =
    List.length (List.filter (fun (_, r) -> Result.is_ok r) per)
  in
  Json.Obj
    [
      ("ok", Json.Bool (reachable = Array.length t.shards));
      ("endpoint", Json.String t.name);
      ("role", Json.String "router");
      ( "uptime_s",
        Json.Float (Timed.Clock.gettimeofday () -. t.started_at) );
      ("reachable", Json.Int reachable);
      ("shard_count", Json.Int (Array.length t.shards));
      ( "shards",
        Json.Obj
          (List.map
             (fun (shard, r) -> (shard, Json.Bool (Result.is_ok r)))
             per) );
      ("gc", Protocol.gc_json ());
    ]

(* [{"op":"cluster-stats"}]: one health probe per shard (plus the
   prometheus text when [with_metrics]), merged with the router's own
   routing counters — the whole cluster in one reply. *)
let cluster_json t ~with_metrics =
  let parse_reply reply =
    match Json.parse reply with
    | Ok json -> json
    | Error msg -> Json.Obj [ ("error", Json.String msg) ]
  in
  let per =
    probe_shards t "health"
    |> List.map (fun (shard, r) ->
           match r with
           | Error msg ->
               ( shard,
                 Json.Obj
                   [
                     ("reachable", Json.Bool false);
                     ("error", Json.String msg);
                   ] )
           | Ok reply ->
               let members =
                 [
                   ("reachable", Json.Bool true);
                   ("health", parse_reply reply);
                 ]
               in
               let members =
                 if not with_metrics then members
                 else
                   members
                   @ [
                       ( "metrics",
                         match
                           Transport.call t.transport ?timeout:t.call_timeout
                             ~src:t.name ~dst:shard (op_line "metrics")
                         with
                         | Ok reply -> parse_reply reply
                         | Error e ->
                             Json.Obj
                               [
                                 ( "error",
                                   Json.String (Transport.error_message e) );
                               ] );
                     ]
               in
               (shard, Json.Obj members))
  in
  let reachable =
    List.length
      (List.filter
         (fun (_, v) ->
           match v with
           | Json.Obj members ->
               List.assoc_opt "reachable" members = Some (Json.Bool true)
           | _ -> false)
         per)
  in
  Json.to_string
    (Json.Obj
       [
         ("reachable", Json.Int reachable);
         ("shard_count", Json.Int (Array.length t.shards));
         ("shards", Json.Obj per);
         ( "router",
           Json.Obj
             [
               ("endpoint", Json.String t.name);
               ("requests", Json.Int (Obs.Counter.value t.m_requests));
               ("retries", Json.Int (Obs.Counter.value t.m_retries));
               ("failovers", Json.Int (Obs.Counter.value t.m_failovers));
             ] );
       ])

let strip_op = function
  | Json.Obj members -> List.filter (fun (k, _) -> k <> "op") members
  | _ -> []

let dispatch t line json =
  match Option.bind (Json.member "op" json) Json.to_str with
  | Some "stats" -> stats t
  | Some "metrics" ->
      (* Local registry: the process-level view.  Per-shard
         registries are one hop away via their own endpoints. *)
      Obs.sample_gc ();
      Json.to_string
        (Json.Obj [ ("prometheus", Json.String (Obs.render_prometheus ())) ])
  | Some "health" -> Json.to_string (health_json t)
  | Some "cluster-stats" ->
      let with_metrics =
        Option.value ~default:false
          (Option.bind (Json.member "with_metrics" json) Json.to_bool)
      in
      cluster_json t ~with_metrics
  | Some "quit" -> quit t
  | Some "route" -> (
      match Job.request_of_json (Json.Obj (strip_op json)) with
      | Error msg -> Protocol.error_json msg
      | Ok req ->
          let shard, merkle = route t req in
          Json.to_string
            (Json.Obj
               [ ("shard", Json.String shard); ("key", Json.String merkle) ]))
  | Some op -> Protocol.error_json (Printf.sprintf "unknown op %S" op)
  | None -> (
      match Job.request_of_json json with
      | Error msg -> Protocol.error_json msg
      | Ok req -> analyze t line json req)

let handler t line =
  match Json.parse line with
  | Error msg -> Protocol.error_json msg
  | Ok json ->
      Protocol.with_request_span t.spans ~name:"router.request"
        ~endpoint:t.name json (fun () -> dispatch t line json)

let register t transport = Transport.serve transport t.name (handler t)
