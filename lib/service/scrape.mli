(** The per-process scrape endpoint behind [--metrics-listen]: serves
    the process's Obs registry as Prometheus text on [GET /metrics]
    (freshly sampling the [runtime_gc_*] gauges) and the process's
    health object on [GET /health], over {!Transport_socket.serve_http}
    — so both shards and routers expose the same two paths on a
    [unix:] or [tcp:] address. *)

val start :
  Transport_socket.t -> addr:string -> health:(unit -> string) -> unit
(** [start socket ~addr ~health] binds the listener (background accept
    thread; stopped with the socket transport's
    {!Transport_socket.stop}).  [health ()] is re-evaluated per
    request.
    @raise Invalid_argument / @raise Unix.Unix_error on a bad or
    unbindable address. *)
