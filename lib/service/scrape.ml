(* The --metrics-listen endpoint: Prometheus text + health JSON over
   the socket transport's minimal HTTP listener.  See scrape.mli. *)

let start socket ~addr ~health =
  let pages path =
    match path with
    | "/metrics" ->
        Obs.sample_gc ();
        Some
          ( "text/plain; version=0.0.4; charset=utf-8",
            Obs.render_prometheus () )
    | "/health" -> Some ("application/json", health () ^ "\n")
    | _ -> None
  in
  Transport_socket.serve_http socket addr pages;
  Obs.Log.emit ~fields:[ ("addr", addr) ] "scrape.listen"
