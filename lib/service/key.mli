(** Content-addressed cache keys for analysis verdicts, Merkle-style.

    The leaves are the fragment digests of the request's translation
    plan ({!Translate.Fragment.digests}); the [merkle] root combines
    them with a fingerprint of every request option that can change the
    verdict (protocol override, quantum, state budget, wall-clock
    budget).  Keying on the plan rather than the source text means two
    manifest entries naming different files with identical systems share
    one cache entry, any change to a property that survives
    instantiation produces a fresh key — and a miss can be {e
    attributed}: diffing the leaves of the old and new key of the same
    [structure] names the components that changed. *)

type t = {
  merkle : string;
      (** the cache key: digest over sorted leaves + options fingerprint *)
  structure : string;
      (** digest over the fragment {e ids} only — stable across content
          edits, used to pair a missed key with its predecessor *)
  fragments : (string * string) list;
      (** the leaves: [(fragment id, fragment digest)], sorted by id;
          empty for untranslatable models (whole-instance fallback) *)
}

val options_fingerprint :
  protocol:Aadl.Props.scheduling_protocol option ->
  quantum_us:int option ->
  max_states:int ->
  timeout_s:float option ->
  string
(** Canonical, versioned text form of the analysis options. *)

val of_instance : Aadl.Instance.t -> options:string -> string
(** Whole-instance digest (serialised XML + options): the pre-Merkle
    key shape, kept as the fallback for untranslatable models. *)

val of_fragments : (string * string) list -> options:string -> t
(** Build a key from explicit [(id, digest)] leaves (sorted
    internally). *)

val of_plan : Translate.Fragment.plan -> options:string -> t
(** Key over a prepared translation plan. *)

val of_request : Aadl.Instance.t -> Job.request -> t
(** Key for running [request]'s analysis options against the already
    instantiated [root]; plans the translation internally and falls
    back to {!of_instance} when the model cannot be planned. *)

val request_fingerprint : Job.request -> string
(** The {!options_fingerprint} of a request's options. *)

val translation_options : Job.request -> Translate.Pipeline.options
(** The translation options a request implies (quantum, protocol) —
    shared between keying and running so they cannot drift. *)

val changed_fragments : prev:t -> t -> string list
(** Fragment ids added, removed, or digest-changed between two keys;
    sorted, duplicate-free. *)
