(** Content-addressed cache keys for analysis verdicts.

    A key is an MD5 hex digest over the canonical XML serialisation of
    the {e instantiated} model ({!Aadl.Instance_xml.to_string}) plus a
    fingerprint of every request option that can change the verdict
    (protocol override, quantum, state budget, wall-clock budget).
    Keying on the instance rather than the source text means two
    manifest entries naming different files with identical systems — or
    the same file through different relative paths — share one cache
    entry, while any change to a property that survives instantiation
    produces a fresh key. *)

val options_fingerprint :
  protocol:Aadl.Props.scheduling_protocol option ->
  quantum_us:int option ->
  max_states:int ->
  timeout_s:float option ->
  string
(** Canonical, versioned text form of the analysis options. *)

val of_instance : Aadl.Instance.t -> options:string -> string
(** [of_instance root ~options] digests the serialised instance together
    with an {!options_fingerprint} and returns the 32-char hex key. *)

val of_request : Aadl.Instance.t -> Job.request -> string
(** Key for running [request]'s analysis options against the already
    instantiated [root]. *)
