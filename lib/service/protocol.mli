(** The service request protocol, independent of any transport.

    One request line in, one reply line out: requests are single-line
    JSON documents; an object with an ["op"] field is a control request
    ([stats], [metrics], [health], [cluster-stats], [quit]), anything
    else is decoded as an analysis request ({!Job.request_of_json}) and
    run.  The stdio {!Server} loop, the socket listener and the
    sim-fabric endpoints all feed the same [handle] — which is what
    makes the protocol testable on the fault fabric and deployable over
    sockets without divergence.

    {1 Trace context}

    Any request may carry a ["trace": "<trace_id>/<span_id>"] member —
    the sender's {!Obs.Context} in wire form.  While tracing is active,
    [handle] opens a child span ([service.request]) parented on that
    context, so a client request, the router hop and the owner shard's
    work line up as one causally-linked timeline once the per-process
    trace files are merged ({!Obs.Trace_merge}).  Requests without the
    member trace exactly as before.  Transports may deliver a request
    more than once (the sim fabric is at-least-once); a span is opened
    at most once per distinct context header, so duplicated deliveries
    do not mint duplicate spans. *)

type t

type reaction =
  | Continue
  | Quit  (** the peer asked the serving loop to stop *)

val create :
  ?name:string ->
  ?health:(unit -> (string * Json.t) list) ->
  Runner.config ->
  t
(** A protocol instance answering with [config]'s runner stack.  [name]
    (default ["service"]) labels spans and the [health] reply;
    [health] contributes extra members to the [{"op":"health"}] object
    (a shard adds its journal stats there). *)

val config : t -> Runner.config

val handle : t -> string -> string * reaction
(** [handle t line] answers one request.  Never raises: malformed JSON,
    unknown ops and failed jobs all come back as JSON replies
    ([{"error": ...}] or a [Failed] outcome).  Blank input is an error
    reply (framing layers skip blank lines before calling). *)

val counters_json : Runner.config -> Json.t
(** The cache/attribution counter object served for [{"op":"stats"}] —
    exposed for aggregators (the {!Router} merges one per shard). *)

val gc_json : unit -> Json.t
(** The [runtime_gc_*] gauges as an object (call {!Obs.sample_gc}
    first) — shared by shard and router health replies. *)

val health_json : t -> Json.t
(** The [{"op":"health"}] reply object: [ok], [endpoint], [uptime_s]
    (ambient {!Timed.Clock}), scheduler [queue_depth], cache counters
    with [hit_ratio], [runtime_gc_*] gauge readings (freshly sampled via
    {!Obs.sample_gc}), plus whatever the [health] callback adds. *)

val error_json : string -> string
(** The canonical one-line error reply. *)

val metric_slug : string -> string
(** Map an endpoint name (possibly a socket address) to the
    [[a-zA-Z0-9_]] alphabet Prometheus metric names allow. *)

(** {1 Trace-context helpers}

    Shared by every protocol actor (shard, router) and the client side
    of [batch --connect]. *)

val trace_context : Json.t -> Obs.Context.t option
(** The decoded ["trace"] member, if present and well-formed. *)

val set_trace : Json.t -> Obs.Context.t option -> Json.t
(** Replace (or with [None], remove) the ["trace"] member on a request
    object — how the router re-parents a request onto its own span
    before forwarding. *)

type span_gate
(** Dedup state for server-side request spans: remembers which context
    headers have already opened one. *)

val make_span_gate : unit -> span_gate

val with_request_span :
  span_gate -> name:string -> endpoint:string -> Json.t -> (unit -> 'a) -> 'a
(** [with_request_span gate ~name ~endpoint json f] runs [f] inside a
    child span parented on [json]'s trace context — when tracing is
    active, the context is present, and this gate has not seen that
    context before; plain [f ()] otherwise.  The span carries
    [endpoint] and the request's op as args. *)
