(** The service request protocol, independent of any transport.

    One request line in, one reply line out: requests are single-line
    JSON documents; an object with an ["op"] field is a control request
    ([stats], [metrics], [quit]), anything else is decoded as an
    analysis request ({!Job.request_of_json}) and run.  The stdio
    {!Server} loop, the socket listener and the sim-fabric endpoints
    all feed the same [handle] — which is what makes the protocol
    testable on the fault fabric and deployable over sockets without
    divergence. *)

type t

type reaction =
  | Continue
  | Quit  (** the peer asked the serving loop to stop *)

val create : Runner.config -> t
(** A protocol instance answering with [config]'s runner stack. *)

val config : t -> Runner.config

val handle : t -> string -> string * reaction
(** [handle t line] answers one request.  Never raises: malformed JSON,
    unknown ops and failed jobs all come back as JSON replies
    ([{"error": ...}] or a [Failed] outcome).  Blank input is an error
    reply (framing layers skip blank lines before calling). *)

val counters_json : Runner.config -> Json.t
(** The cache/attribution counter object served for [{"op":"stats"}] —
    exposed for aggregators (the {!Router} merges one per shard). *)

val error_json : string -> string
(** The canonical one-line error reply. *)

val metric_slug : string -> string
(** Map an endpoint name (possibly a socket address) to the
    [[a-zA-Z0-9_]] alphabet Prometheus metric names allow. *)
