(** A minimal JSON reader/writer for the service wire format.

    The dependency set deliberately has no JSON library, and the service
    schema is small (flat objects of scalars), so this module implements
    just enough of RFC 8259: all value forms parse, strings handle the
    standard escapes including [\uXXXX] (encoded back as UTF-8), and the
    printer emits compact single-line documents with object fields in
    the order given — which keeps JSON-lines output stable for tests. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse one JSON document; trailing non-whitespace is an error.  Error
    strings include the byte offset. *)

val to_string : t -> string
(** Compact, single-line; object fields in given order; floats printed
    with enough digits to round-trip doubles. *)

(** {1 Accessors} — total, [None] on shape mismatch *)

val member : string -> t -> t option
(** Field of an object ([None] on any other form or missing field). *)

val to_str : t -> string option

val to_int : t -> int option
(** [Int], or [Float] with integral value. *)

val to_float : t -> float option
(** [Float] or [Int]. *)

val to_bool : t -> bool option
