(** A priority job scheduler running many analyses concurrently.

    Jobs are submitted with a priority ({!Job.request.priority}) and
    drained by {!run_all}, which executes them over a {!Versa.Pool} of
    worker domains: higher-priority jobs start first, ties break by
    submission order.  Each job may additionally parallelise its own
    exploration ({!Runner.config.jobs}), so total domain use is
    [workers * per-job jobs]; keep the product near the core count.

    Concurrent jobs are safe because every shared structure below the
    runner is domain-safe: the hash-consing tables are sharded and
    mutex-protected, the verdict cache takes its own lock, and each
    exploration owns its state store.

    Cancellation is cooperative: {!cancel} flips a flag that is checked
    before the job starts and polled between exploration merge steps, so
    a running job stops at the next merge and reports [Cancelled]. *)

type t

type handle
(** One submitted job; also the completion cell for its outcome. *)

val create : ?workers:int -> Runner.config -> t
(** [workers] (default 1) is the number of jobs run concurrently.
    [1] runs jobs inline on the calling domain, in priority order. *)

val submit : t -> Job.request -> handle
(** Enqueue a job.  Submissions and {!run_all} must come from the same
    domain (the runner fan-out is internal). *)

val cancel : handle -> unit
(** Request cancellation.  Already-completed jobs are unaffected;
    pending jobs complete immediately as [Cancelled]; a running job
    stops at its next exploration merge step. *)

val outcome : handle -> Job.outcome option
(** [None] until the job has completed. *)

val run_all : t -> Job.outcome list
(** Drain every pending job and return their outcomes in {e submission}
    order (execution order is priority order).  Worker domains are
    created per drain and torn down before returning, exception-safely. *)
