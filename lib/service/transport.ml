(* Transport signature and the packed-existential wrapper.  See
   transport.mli. *)

type error = Timeout | No_endpoint of string | Unreachable of string

let error_message = function
  | Timeout -> "timeout"
  | No_endpoint name -> Printf.sprintf "no endpoint %S" name
  | Unreachable why -> Printf.sprintf "unreachable: %s" why

module type S = sig
  type t

  val serve : t -> string -> (string -> string) -> unit

  val call :
    t ->
    ?timeout:float ->
    src:string ->
    dst:string ->
    string ->
    (string, error) result
end

type t = Endpoint : (module S with type t = 'a) * 'a -> t

let serve (Endpoint ((module M), transport)) name handler =
  M.serve transport name handler

let call (Endpoint ((module M), transport)) ?timeout ~src ~dst payload =
  M.call transport ?timeout ~src ~dst payload
