(* Minimal JSON: a recursive-descent parser over the input string and a
   compact printer.  See json.mli for the scope argument. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Fail of string * int  (* message, byte offset *)

let fail pos msg = raise (Fail (msg, pos))

let is_ws = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

(* UTF-8-encode one code point into the buffer (for \uXXXX escapes). *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

type cursor = { s : string; mutable i : int }

let peek c = if c.i < String.length c.s then Some c.s.[c.i] else None

let skip_ws c =
  while c.i < String.length c.s && is_ws c.s.[c.i] do
    c.i <- c.i + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.i <- c.i + 1
  | _ -> fail c.i (Printf.sprintf "expected %C" ch)

let hex_digit c ch =
  match ch with
  | '0' .. '9' -> Char.code ch - Char.code '0'
  | 'a' .. 'f' -> Char.code ch - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code ch - Char.code 'A' + 10
  | _ -> fail c.i "bad hex digit in \\u escape"

let parse_string_body c =
  (* cursor is just past the opening quote *)
  let buf = Buffer.create 16 in
  let rec go () =
    if c.i >= String.length c.s then fail c.i "unterminated string";
    let ch = c.s.[c.i] in
    c.i <- c.i + 1;
    match ch with
    | '"' -> Buffer.contents buf
    | '\\' -> (
        if c.i >= String.length c.s then fail c.i "unterminated escape";
        let e = c.s.[c.i] in
        c.i <- c.i + 1;
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
            if c.i + 4 > String.length c.s then fail c.i "truncated \\u escape";
            let cp =
              (hex_digit c c.s.[c.i] lsl 12)
              lor (hex_digit c c.s.[c.i + 1] lsl 8)
              lor (hex_digit c c.s.[c.i + 2] lsl 4)
              lor hex_digit c c.s.[c.i + 3]
            in
            c.i <- c.i + 4;
            add_utf8 buf cp
        | _ -> fail (c.i - 1) "unknown escape");
        go ())
    | _ ->
        Buffer.add_char buf ch;
        go ()
  in
  go ()

let parse_number c =
  let start = c.i in
  let consume pred =
    while c.i < String.length c.s && pred c.s.[c.i] do
      c.i <- c.i + 1
    done
  in
  if peek c = Some '-' then c.i <- c.i + 1;
  consume (function '0' .. '9' -> true | _ -> false);
  let is_float = ref false in
  if peek c = Some '.' then begin
    is_float := true;
    c.i <- c.i + 1;
    consume (function '0' .. '9' -> true | _ -> false)
  end;
  (match peek c with
  | Some ('e' | 'E') ->
      is_float := true;
      c.i <- c.i + 1;
      (match peek c with
      | Some ('+' | '-') -> c.i <- c.i + 1
      | _ -> ());
      consume (function '0' .. '9' -> true | _ -> false)
  | _ -> ());
  let text = String.sub c.s start (c.i - start) in
  if !is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail start "bad number"
  else
    match int_of_string_opt text with
    | Some n -> Int n
    | None -> (
        (* an integer literal too large for [int]: keep it as a float *)
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail start "bad number")

let literal c word v =
  let n = String.length word in
  if c.i + n <= String.length c.s && String.sub c.s c.i n = word then begin
    c.i <- c.i + n;
    v
  end
  else fail c.i (Printf.sprintf "expected %s" word)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c.i "unexpected end of input"
  | Some '"' ->
      c.i <- c.i + 1;
      String (parse_string_body c)
  | Some '{' ->
      c.i <- c.i + 1;
      skip_ws c;
      if peek c = Some '}' then begin
        c.i <- c.i + 1;
        Obj []
      end
      else
        let rec fields acc =
          skip_ws c;
          expect c '"';
          let k = parse_string_body c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.i <- c.i + 1;
              fields ((k, v) :: acc)
          | Some '}' ->
              c.i <- c.i + 1;
              Obj (List.rev ((k, v) :: acc))
          | _ -> fail c.i "expected ',' or '}'"
        in
        fields []
  | Some '[' ->
      c.i <- c.i + 1;
      skip_ws c;
      if peek c = Some ']' then begin
        c.i <- c.i + 1;
        List []
      end
      else
        let rec elems acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.i <- c.i + 1;
              elems (v :: acc)
          | Some ']' ->
              c.i <- c.i + 1;
              List (List.rev (v :: acc))
          | _ -> fail c.i "expected ',' or ']'"
        in
        elems []
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail c.i (Printf.sprintf "unexpected %C" ch)

let parse s =
  let c = { s; i = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if c.i < String.length s then
        Error (Printf.sprintf "trailing garbage at offset %d" c.i)
      else Ok v
  | exception Fail (msg, pos) ->
      Error (Printf.sprintf "%s at offset %d" msg pos)

let escape_into buf s =
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let rec print_into buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Printf.bprintf buf "%.1f" f
      else Printf.bprintf buf "%.17g" f
  | String s ->
      Buffer.add_char buf '"';
      escape_into buf s;
      Buffer.add_char buf '"'
  | List vs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          print_into buf v)
        vs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape_into buf k;
          Buffer.add_string buf "\":";
          print_into buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 128 in
  print_into buf v;
  Buffer.contents buf

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_str = function String s -> Some s | _ -> None

let to_int = function
  | Int n -> Some n
  | Float f when Float.is_integer f && Float.abs f <= 2. ** 52. ->
      Some (int_of_float f)
  | _ -> None

let to_float = function
  | Float f -> Some f
  | Int n -> Some (float_of_int n)
  | _ -> None

let to_bool = function Bool b -> Some b | _ -> None
