(* Wire schema for service jobs: request decoding, outcome encoding,
   and the JSON-lines manifest reader.  See job.mli. *)

type source = File of string | Inline of string

type request = {
  id : string;
  source : source;
  root : string option;
  protocol : Aadl.Props.scheduling_protocol option;
  quantum_us : int option;
  max_states : int;
  timeout_s : float option;
  priority : int;
}

let default_max_states = 2_000_000

let request ?root ?protocol ?quantum_us ?(max_states = default_max_states)
    ?timeout_s ?(priority = 0) ~id source =
  { id; source; root; protocol; quantum_us; max_states; timeout_s; priority }

type verdict =
  | Schedulable
  | Not_schedulable of { violation_time : int; scenario : string }
  | Bounded of { analytic_schedulable : bool; method_ : string }
  | Unknown of string
  | Cancelled
  | Failed of string

let verdict_tag = function
  | Schedulable -> "schedulable"
  | Not_schedulable _ -> "not_schedulable"
  | Bounded _ -> "bounded"
  | Unknown _ -> "unknown"
  | Cancelled -> "cancelled"
  | Failed _ -> "error"

type outcome = {
  id : string;
  verdict : verdict;
  states : int;
  cached : bool;
  degraded : bool;
  wall_s : float;
}

let protocol_of_string s =
  match String.lowercase_ascii s with
  | "rm" | "rate_monotonic" -> Ok Aadl.Props.Rate_monotonic
  | "dm" | "deadline_monotonic" -> Ok Aadl.Props.Deadline_monotonic
  | "hpf" | "fixed" -> Ok Aadl.Props.Highest_priority_first
  | "edf" -> Ok Aadl.Props.Edf
  | "llf" -> Ok Aadl.Props.Llf
  | "hier" | "hierarchical" -> Ok Aadl.Props.Hierarchical
  | other -> Error (Printf.sprintf "unknown protocol %S" other)

(* Result-aware field accessors over a request object. *)

let ( let* ) = Result.bind

let opt_field json key decode what =
  match Json.member key json with
  | None | Some Json.Null -> Ok None
  | Some v -> (
      match decode v with
      | Some x -> Ok (Some x)
      | None -> Error (Printf.sprintf "field %S must be %s" key what))

let request_of_json json =
  match json with
  | Json.Obj _ ->
      let* id =
        match Option.bind (Json.member "id" json) Json.to_str with
        | Some id when id <> "" -> Ok id
        | Some _ -> Error "field \"id\" must be non-empty"
        | None -> Error "missing string field \"id\""
      in
      let err msg = Error (Printf.sprintf "request %S: %s" id msg) in
      let field key decode what =
        Result.map_error
          (fun m -> Printf.sprintf "request %S: %s" id m)
          (opt_field json key decode what)
      in
      let* file = field "file" Json.to_str "a string" in
      let* model = field "model" Json.to_str "a string" in
      let* source =
        match (file, model) with
        | Some f, None -> Ok (File f)
        | None, Some m -> Ok (Inline m)
        | Some _, Some _ -> err "give either \"file\" or \"model\", not both"
        | None, None -> err "one of \"file\" or \"model\" is required"
      in
      let* root = field "root" Json.to_str "a string" in
      let* protocol_name = field "protocol" Json.to_str "a string" in
      let* protocol =
        match protocol_name with
        | None -> Ok None
        | Some name -> (
            match protocol_of_string name with
            | Ok p -> Ok (Some p)
            | Error m -> err m)
      in
      let* quantum_us = field "quantum_us" Json.to_int "an integer" in
      let* max_states = field "max_states" Json.to_int "an integer" in
      let* timeout_s = field "timeout_s" Json.to_float "a number" in
      let* priority = field "priority" Json.to_int "an integer" in
      Ok
        {
          id;
          source;
          root;
          protocol;
          quantum_us;
          max_states = Option.value max_states ~default:default_max_states;
          timeout_s;
          priority = Option.value priority ~default:0;
        }
  | _ -> Error "request must be a JSON object"

let protocol_to_string = function
  | Aadl.Props.Rate_monotonic -> "rm"
  | Aadl.Props.Deadline_monotonic -> "dm"
  | Aadl.Props.Highest_priority_first -> "hpf"
  | Aadl.Props.Edf -> "edf"
  | Aadl.Props.Llf -> "llf"
  | Aadl.Props.Hierarchical -> "hier"

(* Inverse of [request_of_json]; optional fields are omitted when they
   hold their defaults, so re-encoding a decoded line is stable. *)
let request_to_json (r : request) =
  let opt key encode = function
    | None -> []
    | Some v -> [ (key, encode v) ]
  in
  Json.Obj
    ([ ("id", Json.String r.id) ]
    @ (match r.source with
      | File path -> [ ("file", Json.String path) ]
      | Inline text -> [ ("model", Json.String text) ])
    @ opt "root" (fun s -> Json.String s) r.root
    @ opt "protocol" (fun p -> Json.String (protocol_to_string p)) r.protocol
    @ opt "quantum_us" (fun n -> Json.Int n) r.quantum_us
    @ (if r.max_states = default_max_states then []
       else [ ("max_states", Json.Int r.max_states) ])
    @ opt "timeout_s" (fun s -> Json.Float s) r.timeout_s
    @ if r.priority = 0 then [] else [ ("priority", Json.Int r.priority) ])

let outcome_to_json (o : outcome) =
  let specific =
    match o.verdict with
    | Schedulable | Cancelled -> []
    | Not_schedulable { violation_time; scenario } ->
        [
          ("violation_time", Json.Int violation_time);
          ("scenario", Json.String scenario);
        ]
    | Bounded { analytic_schedulable; method_ } ->
        [
          ("analytic_schedulable", Json.Bool analytic_schedulable);
          ("method", Json.String method_);
        ]
    | Unknown reason | Failed reason -> [ ("reason", Json.String reason) ]
  in
  Json.Obj
    ([ ("id", Json.String o.id); ("verdict", Json.String (verdict_tag o.verdict)) ]
    @ specific
    @ [
        ("states", Json.Int o.states);
        ("cached", Json.Bool o.cached);
        ("degraded", Json.Bool o.degraded);
        ("wall_s", Json.Float o.wall_s);
      ])

(* The inverse of [outcome_to_json] — the journal replays stored
   verdicts through this, and [batch --connect] decodes live-service
   replies with it, so it accepts exactly what [outcome_to_json]
   produces. *)
let outcome_of_json json =
  match json with
  | Json.Obj _ ->
      let* id =
        match Option.bind (Json.member "id" json) Json.to_str with
        | Some id -> Ok id
        | None -> Error "outcome: missing string field \"id\""
      in
      let str key = Option.bind (Json.member key json) Json.to_str in
      let* verdict =
        match str "verdict" with
        | None -> Error "outcome: missing string field \"verdict\""
        | Some "schedulable" -> Ok Schedulable
        | Some "cancelled" -> Ok Cancelled
        | Some "not_schedulable" -> (
            match
              ( Option.bind (Json.member "violation_time" json) Json.to_int,
                str "scenario" )
            with
            | Some violation_time, Some scenario ->
                Ok (Not_schedulable { violation_time; scenario })
            | _ -> Error "outcome: not_schedulable needs violation_time/scenario")
        | Some "bounded" -> (
            match
              ( Option.bind (Json.member "analytic_schedulable" json) Json.to_bool,
                str "method" )
            with
            | Some analytic_schedulable, Some method_ ->
                Ok (Bounded { analytic_schedulable; method_ })
            | _ -> Error "outcome: bounded needs analytic_schedulable/method")
        | Some "unknown" -> (
            match str "reason" with
            | Some reason -> Ok (Unknown reason)
            | None -> Error "outcome: unknown needs a reason")
        | Some "error" -> (
            match str "reason" with
            | Some reason -> Ok (Failed reason)
            | None -> Error "outcome: error needs a reason")
        | Some other -> Error (Printf.sprintf "outcome: unknown verdict %S" other)
      in
      let* states =
        match Option.bind (Json.member "states" json) Json.to_int with
        | Some n -> Ok n
        | None -> Error "outcome: missing integer field \"states\""
      in
      let flag key =
        Option.value ~default:false
          (Option.bind (Json.member key json) Json.to_bool)
      in
      let wall_s =
        Option.value ~default:0.
          (Option.bind (Json.member "wall_s" json) Json.to_float)
      in
      Ok
        {
          id;
          verdict;
          states;
          cached = flag "cached";
          degraded = flag "degraded";
          wall_s;
        }
  | _ -> Error "outcome must be a JSON object"

let parse_manifest text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        let trimmed = String.trim line in
        if trimmed = "" || trimmed.[0] = '#' then go (lineno + 1) acc rest
        else
          let parsed =
            let* json = Json.parse trimmed in
            request_of_json json
          in
          (match parsed with
          | Ok req -> go (lineno + 1) (req :: acc) rest
          | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg))
  in
  go 1 [] lines
