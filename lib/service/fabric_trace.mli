(** Export a {!Timed.Fabric} delivery log into the {!Obs.Trace} Chrome
    trace writer: every send/deliver/drop/duplicate/link-change event
    becomes a trace instant, one timeline row per fabric participant,
    so a simulated protocol run opens in Perfetto next to the spans the
    analysis itself recorded.

    Call while tracing is active ({!Obs.Trace.start}), after the sim
    has run; virtual timestamps before the trace epoch clamp to it, so
    start the trace before running the fabric for faithful offsets. *)

val inject : Timed.Fabric.t -> unit
(** No-op when tracing is inactive. *)
