(* Priority scheduling over Versa.Pool.  run_all sorts the pending jobs
   by (priority desc, submission seq asc) into an array; Pool.run hands
   out indices in increasing order, so workers pick jobs up in priority
   order even though completion order is nondeterministic.  Outcomes are
   reported back in submission order, which keeps batch output stable. *)

module Metrics = struct
  let queue_depth =
    Obs.Gauge.make ~help:"Jobs submitted but not yet completed"
      "service_queue_depth"

  let wait =
    Obs.Histogram.make
      ~help:"Seconds between job submission and the start of its run"
      "service_job_wait_seconds"

  let run_time =
    Obs.Histogram.make ~help:"Seconds a job spent running"
      "service_job_run_seconds"
end

(* submitted-but-not-completed jobs, across all concurrent batches *)
let depth = Atomic.make 0

let depth_add d =
  let now = Atomic.fetch_and_add depth d + d in
  Obs.Gauge.set Metrics.queue_depth (float_of_int now)

type handle = {
  seq : int;
  request : Job.request;
  submitted : float;  (* Timed.Clock time at submit, for wait times *)
  cancelled : bool Atomic.t;
  result : Job.outcome option Atomic.t;
}

type t = {
  config : Runner.config;
  workers : int;
  mutable pending : handle list;  (* newest first *)
  mutable next_seq : int;
}

let create ?(workers = 1) config =
  { config; workers = max 1 workers; pending = []; next_seq = 0 }

let submit t request =
  let handle =
    {
      seq = t.next_seq;
      request;
      submitted = Timed.Clock.gettimeofday ();
      cancelled = Atomic.make false;
      result = Atomic.make None;
    }
  in
  t.next_seq <- t.next_seq + 1;
  t.pending <- handle :: t.pending;
  depth_add 1;
  handle

let cancel handle = Atomic.set handle.cancelled true
let outcome handle = Atomic.get handle.result

let run_one config handle =
  let started = Timed.Clock.gettimeofday () in
  Obs.Histogram.observe Metrics.wait (started -. handle.submitted);
  let o =
    if Atomic.get handle.cancelled then
      {
        Job.id = handle.request.Job.id;
        verdict = Job.Cancelled;
        states = 0;
        cached = false;
        degraded = false;
        wall_s = 0.;
      }
    else
      Runner.run
        ~cancel:(fun () -> Atomic.get handle.cancelled)
        config handle.request
  in
  Obs.Histogram.observe Metrics.run_time (Timed.Clock.gettimeofday () -. started);
  depth_add (-1);
  Atomic.set handle.result (Some o)

let run_all t =
  let batch = List.rev t.pending in
  t.pending <- [];
  let by_priority =
    List.sort
      (fun a b ->
        match compare b.request.Job.priority a.request.Job.priority with
        | 0 -> compare a.seq b.seq
        | c -> c)
      batch
  in
  let jobs = Array.of_list by_priority in
  let n = Array.length jobs in
  if n > 0 then
    if t.workers <= 1 then
      Array.iter (fun h -> run_one t.config h) jobs
    else begin
      (* the calling domain participates, so workers - 1 extra domains *)
      let pool = Versa.Pool.create (t.workers - 1) in
      Fun.protect
        ~finally:(fun () -> Versa.Pool.shutdown pool)
        (fun () -> Versa.Pool.run pool n (fun i -> run_one t.config jobs.(i)))
    end;
  List.map
    (fun h ->
      match Atomic.get h.result with
      | Some o -> o
      | None ->
          (* unreachable: every index ran or the exception propagated *)
          assert false)
    batch
