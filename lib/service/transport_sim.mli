(** {!Transport} over the {!Timed.Fabric} simulated RPC fabric.

    Calls must run from tasks on the fabric's simulator (they suspend on
    the event queue); faults, delays and duplicate deliveries follow the
    fabric's seeded schedule, so any protocol exchange over this
    transport replays bit-identically from the seed.  This is the
    transport the router/shard state machine is tested against before
    it ever touches a socket. *)

val make : Timed.Fabric.t -> Transport.t
