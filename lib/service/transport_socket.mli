(** {!Transport} over Unix-domain and TCP sockets.

    Endpoint names are addresses: [unix:/path/to.sock] or
    [tcp:HOST:PORT].  Framing is line-oriented — one request line up,
    one reply line back, the same bytes the stdio [serve] loop speaks —
    so [nc -U] or [batch --connect] can talk to any endpoint directly.

    [serve] binds a listener and handles each accepted connection on
    its own thread; a connection carries any number of request/reply
    exchanges.  [call] keeps one pooled connection per destination and
    reuses it across calls; on a timeout the connection is closed (a
    late reply must never be read as the answer to the next request)
    and the next call reconnects.  SIGPIPE is ignored process-wide on
    {!create} so a peer hanging up surfaces as an error, not a
    killed process. *)

type t

type addr = Unix_sock of string | Tcp of string * int

val parse_addr : string -> (addr, string) result
(** [unix:PATH] or [tcp:HOST:PORT]. *)

val addr_to_string : addr -> string

val create : unit -> t

val make : t -> Transport.t

val serve : t -> string -> (string -> string) -> unit
(** [serve t addr handler] binds [addr] (unlinking a stale Unix-socket
    path first) and starts accepting in a background thread.
    @raise Invalid_argument on an unparseable address;
    @raise Unix.Unix_error when the bind fails. *)

val serve_http : t -> string -> (string -> (string * string) option) -> unit
(** [serve_http t addr pages] binds [addr] and answers minimal HTTP/1.0
    GETs: [pages path] returns [(content_type, body)] for a [200], or
    [None] for a [404].  One request per connection
    ([Connection: close]).  This is the [--metrics-listen] scrape
    endpoint; it shares {!stop}/{!wait} with the line listeners.
    @raise Invalid_argument / @raise Unix.Unix_error as {!serve}. *)

val call :
  t ->
  ?timeout:float ->
  src:string ->
  dst:string ->
  string ->
  (string, Transport.error) result
(** Connect-on-demand (pooled) call to the endpoint at address [dst].
    [Error (No_endpoint _)] when nothing listens there, [Error Timeout]
    after [timeout] seconds without a reply. *)

val stop : t -> unit
(** Close every listener and pooled connection; serving threads wind
    down.  Unix-socket paths are unlinked. *)

val wait : t -> unit
(** Block until {!stop} is called (from another thread or a handler).
    The [serve --listen] CLI parks its main thread here. *)
