(* Transport-independent request handling.  See protocol.mli. *)

type t = { config : Runner.config }

type reaction = Continue | Quit

let create config = { config }
let config t = t.config

let counters_json (config : Runner.config) =
  let c =
    match config.cache with
    | Some cache -> Lru.counters cache
    | None ->
        { Lru.hits = 0; misses = 0; evictions = 0; size = 0; capacity = 0 }
  in
  let a = Runner.attribution_counters config in
  Json.Obj
    [
      ("hits", Json.Int c.Lru.hits);
      ("misses", Json.Int c.Lru.misses);
      ("evictions", Json.Int c.Lru.evictions);
      ("size", Json.Int c.Lru.size);
      ("capacity", Json.Int c.Lru.capacity);
      ("novel_misses", Json.Int a.Runner.novel);
      ("options_only_misses", Json.Int a.Runner.options_only);
      ( "changed_components",
        Json.Obj
          (List.map
             (fun (id, n) -> (id, Json.Int n))
             a.Runner.changed_components) );
    ]

(* The whole Obs registry as JSON, one member per metric (sorted by
   name, as in the Prometheus rendering). *)
let metrics_json () =
  let value_json = function
    | Obs.Counter_value n -> Json.Int n
    | Obs.Gauge_value v -> Json.Float v
    | Obs.Histogram_value { bounds; counts; sum; count } ->
        let buckets =
          List.init (Array.length counts) (fun i ->
              ( (if i < Array.length bounds then Fmt.str "%g" bounds.(i)
                 else "+Inf"),
                Json.Int counts.(i) ))
        in
        Json.Obj
          [
            ("sum", Json.Float sum);
            ("count", Json.Int count);
            ("buckets", Json.Obj buckets);
          ]
  in
  Json.Obj
    (List.map
       (fun s -> (s.Obs.name, value_json s.Obs.value))
       (Obs.snapshot ()))

let error_json msg = Json.to_string (Json.Obj [ ("error", Json.String msg) ])

let metric_slug name =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c | _ -> '_')
    name

let handle t line =
  match Json.parse line with
  | Error msg -> (error_json msg, Continue)
  | Ok json -> (
      match Option.bind (Json.member "op" json) Json.to_str with
      | Some "stats" -> (Json.to_string (counters_json t.config), Continue)
      | Some "metrics" ->
          ( Json.to_string
              (Json.Obj
                 [
                   ("metrics", metrics_json ());
                   ("prometheus", Json.String (Obs.render_prometheus ()));
                 ]),
            Continue )
      | Some "quit" ->
          (Json.to_string (Json.Obj [ ("ok", Json.Bool true) ]), Quit)
      | Some op -> (error_json (Printf.sprintf "unknown op %S" op), Continue)
      | None -> (
          match Job.request_of_json json with
          | Error msg -> (error_json msg, Continue)
          | Ok req ->
              ( Json.to_string (Job.outcome_to_json (Runner.run t.config req)),
                Continue )))
