(* Transport-independent request handling.  See protocol.mli. *)

type t = {
  config : Runner.config;
  name : string;
  started_at : float;
  health_extra : (unit -> (string * Json.t) list) option;
  spans : span_gate;
}

and span_gate = {
  seen : (string, Obs.Context.t option) Hashtbl.t;
  gate_mutex : Mutex.t;
}

type reaction = Continue | Quit

let make_span_gate () =
  { seen = Hashtbl.create 64; gate_mutex = Mutex.create () }

let create ?(name = "service") ?health config =
  {
    config;
    name;
    started_at = Timed.Clock.gettimeofday ();
    health_extra = health;
    spans = make_span_gate ();
  }

let config t = t.config

(* {1 Trace context on the wire}

   Requests may carry a ["trace": "<trace_id>/<span_id>"] member — the
   sender's span context.  [Job.request_of_json] ignores unknown
   members, so the field is invisible to peers that predate it. *)

let trace_context json =
  Option.bind (Json.member "trace" json) Json.to_str
  |> Option.map Obs.Context.of_header
  |> Option.join

let set_trace json ctx =
  match json with
  | Json.Obj members ->
      let members = List.filter (fun (k, _) -> k <> "trace") members in
      Json.Obj
        (match ctx with
        | Some c ->
            members @ [ ("trace", Json.String (Obs.Context.to_header c)) ]
        | None -> members)
  | other -> other

let op_label json =
  match Option.bind (Json.member "op" json) Json.to_str with
  | Some op -> op
  | None -> "analyze"

(* Open a server-side child span for one delivered request.  Spans are
   opened only for requests that carry a context (so a plain [analyze]
   trace is unchanged), and at most once per distinct context header:
   the fabric's at-least-once delivery may hand the same request to the
   handler twice, and the duplicate must not mint a duplicate span.
   The gate remembers the context each header's span was opened with,
   and a duplicate delivery REJOINS it — so anything the re-run emits
   downstream (a router re-forwarding, a runner's child spans) carries
   the same identity as the first delivery and dedups there in turn,
   instead of leaking whatever ambient context the duplicate happened
   to interleave with. *)
let with_request_span gate ~name ~endpoint json f =
  if not (Obs.Trace.active ()) then f ()
  else
    match trace_context json with
    | None -> f ()
    | Some ctx -> (
        let header = Obs.Context.to_header ctx in
        Mutex.lock gate.gate_mutex;
        let prior = Hashtbl.find_opt gate.seen header in
        (match prior with
        | None ->
            if Hashtbl.length gate.seen > 8192 then Hashtbl.reset gate.seen;
            (* reserve the slot; the span's context lands below once
               minted, and a racing duplicate meanwhile sees [None] *)
            Hashtbl.replace gate.seen header None
        | Some _ -> ());
        Mutex.unlock gate.gate_mutex;
        match prior with
        | None ->
            Obs.Span.with_
              ~attrs:[ ("endpoint", endpoint); ("op", op_label json) ]
              ~parent:ctx ~name
              (fun () ->
                (match Obs.Context.current () with
                | Some _ as c ->
                    Mutex.lock gate.gate_mutex;
                    Hashtbl.replace gate.seen header c;
                    Mutex.unlock gate.gate_mutex
                | None -> ());
                f ())
        | Some (Some c) ->
            Obs.Context.push c;
            Fun.protect ~finally:(fun () -> Obs.Context.pop c) f
        | Some None -> f ())

let counters_json (config : Runner.config) =
  let c =
    match config.cache with
    | Some cache -> Lru.counters cache
    | None ->
        { Lru.hits = 0; misses = 0; evictions = 0; size = 0; capacity = 0 }
  in
  let a = Runner.attribution_counters config in
  Json.Obj
    [
      ("hits", Json.Int c.Lru.hits);
      ("misses", Json.Int c.Lru.misses);
      ("evictions", Json.Int c.Lru.evictions);
      ("size", Json.Int c.Lru.size);
      ("capacity", Json.Int c.Lru.capacity);
      ("novel_misses", Json.Int a.Runner.novel);
      ("options_only_misses", Json.Int a.Runner.options_only);
      ( "changed_components",
        Json.Obj
          (List.map
             (fun (id, n) -> (id, Json.Int n))
             a.Runner.changed_components) );
    ]

(* The whole Obs registry as JSON, one member per metric (sorted by
   name, as in the Prometheus rendering). *)
let metrics_json () =
  let value_json = function
    | Obs.Counter_value n -> Json.Int n
    | Obs.Gauge_value v -> Json.Float v
    | Obs.Histogram_value { bounds; counts; sum; count } ->
        let buckets =
          List.init (Array.length counts) (fun i ->
              ( (if i < Array.length bounds then Fmt.str "%g" bounds.(i)
                 else "+Inf"),
                Json.Int counts.(i) ))
        in
        Json.Obj
          [
            ("sum", Json.Float sum);
            ("count", Json.Int count);
            ("buckets", Json.Obj buckets);
          ]
  in
  Json.Obj
    (List.map
       (fun s -> (s.Obs.name, value_json s.Obs.value))
       (Obs.snapshot ()))

let error_json msg = Json.to_string (Json.Obj [ ("error", Json.String msg) ])

let metric_slug name =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c | _ -> '_')
    name

let gauge_value name =
  match Obs.find name with
  | Some { Obs.value = Obs.Gauge_value v; _ } -> v
  | _ -> 0.

(* {1 Health} *)

(* Reads the [runtime_gc_*] gauges — call [Obs.sample_gc] first. *)
let gc_json () =
  Json.Obj
    [
      ("heap_words", Json.Float (gauge_value "runtime_gc_heap_words"));
      ( "allocated_words",
        Json.Float (gauge_value "runtime_gc_allocated_words") );
      ( "minor_collections",
        Json.Float (gauge_value "runtime_gc_minor_collections") );
      ( "major_collections",
        Json.Float (gauge_value "runtime_gc_major_collections") );
    ]

let health_json t =
  Obs.sample_gc ();
  let c =
    match t.config.Runner.cache with
    | Some cache -> Lru.counters cache
    | None ->
        { Lru.hits = 0; misses = 0; evictions = 0; size = 0; capacity = 0 }
  in
  let lookups = c.Lru.hits + c.Lru.misses in
  let hit_ratio =
    if lookups = 0 then 0. else float_of_int c.Lru.hits /. float_of_int lookups
  in
  let extra = match t.health_extra with None -> [] | Some f -> f () in
  Json.Obj
    ([
       ("ok", Json.Bool true);
       ("endpoint", Json.String t.name);
       ( "uptime_s",
         Json.Float (Timed.Clock.gettimeofday () -. t.started_at) );
       ("queue_depth", Json.Float (gauge_value "service_queue_depth"));
       ( "cache",
         Json.Obj
           [
             ("hits", Json.Int c.Lru.hits);
             ("misses", Json.Int c.Lru.misses);
             ("size", Json.Int c.Lru.size);
             ("capacity", Json.Int c.Lru.capacity);
             ("hit_ratio", Json.Float hit_ratio);
           ] );
       ("gc", gc_json ());
     ]
    @ extra)

let dispatch t json =
  match Option.bind (Json.member "op" json) Json.to_str with
  | Some "stats" -> (Json.to_string (counters_json t.config), Continue)
  | Some "metrics" ->
      Obs.sample_gc ();
      ( Json.to_string
          (Json.Obj
             [
               ("metrics", metrics_json ());
               ("prometheus", Json.String (Obs.render_prometheus ()));
             ]),
        Continue )
  | Some "health" -> (Json.to_string (health_json t), Continue)
  | Some "cluster-stats" ->
      (* A lone service is a one-shard cluster: answering here lets
         [cluster-stats] point at a plain [serve] endpoint too. *)
      ( Json.to_string
          (Json.Obj
             [
               ("reachable", Json.Int 1);
               ("shard_count", Json.Int 1);
               ( "shards",
                 Json.Obj
                   [
                     ( t.name,
                       Json.Obj
                         [
                           ("reachable", Json.Bool true);
                           ("health", health_json t);
                         ] );
                   ] );
             ]),
        Continue )
  | Some "quit" -> (Json.to_string (Json.Obj [ ("ok", Json.Bool true) ]), Quit)
  | Some op -> (error_json (Printf.sprintf "unknown op %S" op), Continue)
  | None -> (
      match Job.request_of_json json with
      | Error msg -> (error_json msg, Continue)
      | Ok req ->
          ( Json.to_string (Job.outcome_to_json (Runner.run t.config req)),
            Continue ))

let handle t line =
  match Json.parse line with
  | Error msg -> (error_json msg, Continue)
  | Ok json ->
      with_request_span t.spans ~name:"service.request" ~endpoint:t.name json
        (fun () ->
          Obs.Log.emit
            ~fields:[ ("endpoint", t.name); ("op", op_label json) ]
            "service.request";
          dispatch t json)
