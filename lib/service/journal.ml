(* Append-only CRC'd verdict journal.  See journal.mli for the format. *)

let magic = "AADLJRN1"

(* CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the zlib/PNG
   checksum, table-driven. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF

let put_u32 buf n =
  Buffer.add_char buf (Char.chr ((n lsr 24) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (n land 0xff))

let get_u32 s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

let encode_record ~key outcome =
  let payload =
    Json.to_string
      (Json.Obj
         [
           ("key", Json.String key); ("outcome", Job.outcome_to_json outcome);
         ])
  in
  let buf = Buffer.create (String.length payload + 8) in
  put_u32 buf (String.length payload);
  put_u32 buf (crc32 payload);
  Buffer.add_string buf payload;
  Buffer.contents buf

let decode_payload payload =
  match Json.parse payload with
  | Error msg -> Error ("record payload: " ^ msg)
  | Ok json -> (
      match
        ( Option.bind (Json.member "key" json) Json.to_str,
          Json.member "outcome" json )
      with
      | Some key, Some outcome_json -> (
          match Job.outcome_of_json outcome_json with
          | Ok outcome -> Ok (key, outcome)
          | Error msg -> Error msg)
      | _ -> Error "record payload: missing \"key\" or \"outcome\"")

(* Scan the raw bytes after the magic.  Returns records in file order,
   the offset of the first byte past the last valid record, and what
   ended the scan. *)
type scan_end = Clean | Torn | Corrupt of string

let scan_records data start =
  let len = String.length data in
  let rec go off acc =
    if off = len then (List.rev acc, off, Clean)
    else if off + 8 > len then (List.rev acc, off, Torn)
    else
      let payload_len = get_u32 data off in
      let crc = get_u32 data (off + 4) in
      if payload_len < 0 || off + 8 + payload_len > len then
        (List.rev acc, off, Torn)
      else
        let payload = String.sub data (off + 8) payload_len in
        if crc32 payload <> crc then
          (List.rev acc, off, Corrupt "crc mismatch")
        else
          match decode_payload payload with
          | Error msg -> (List.rev acc, off, Corrupt msg)
          | Ok record -> go (off + 8 + payload_len) (record :: acc)
  in
  go start []

let read_all path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

type t = {
  path : string;
  mutable oc : out_channel;
  mutable records : int;  (* records on disk, duplicates included *)
  mutable bytes : int;  (* file size *)
  latest : (string, Job.outcome * int) Hashtbl.t;  (* key -> (outcome, seq) *)
  mutable seq : int;  (* append counter, orders compaction output *)
  mutable compactions : int;
  mutable last_compaction_s : float option;  (* ambient-clock timestamp *)
  compact_threshold : int;
  mutex : Mutex.t;
}

type recovery = {
  replayed : (string * Job.outcome) list;
  dropped_bytes : int;
  corrupt : bool;
}

type stats = {
  records : int;
  live : int;
  bytes : int;
  compactions : int;
  last_compaction_s : float option;
}

let path t = t.path

let latest_in_order t =
  Hashtbl.fold (fun key (outcome, seq) acc -> (seq, key, outcome) :: acc)
    t.latest []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  |> List.map (fun (_, key, outcome) -> (key, outcome))

let open_ ?(compact_threshold = 1024) path =
  let compact_threshold = max 8 compact_threshold in
  match
    let exists = Sys.file_exists path in
    let data = if exists then read_all path else "" in
    if exists && String.length data >= String.length magic
       && String.sub data 0 (String.length magic) <> magic
    then Error (Printf.sprintf "%s: not a verdict journal (bad magic)" path)
    else if exists && String.length data > 0
            && String.length data < String.length magic
    then
      (* A file shorter than the magic can only be a torn header write:
         start over. *)
      Ok ([], 0, String.length data, false)
    else
      let start = if exists && data <> "" then String.length magic else 0 in
      let records, valid_end, ending = scan_records data start in
      let dropped = String.length data - valid_end in
      let corrupt = match ending with Corrupt _ -> true | _ -> false in
      Ok (records, valid_end, dropped, corrupt)
  with
  | Error _ as e -> e
  | exception Sys_error msg -> Error msg
  | Ok (records, valid_end, dropped_bytes, corrupt) -> (
      match
        (* Truncate damage away, (re)write the magic on an empty file,
           and leave the channel positioned for appends. *)
        let oc =
          open_out_gen [ Open_wronly; Open_creat; Open_binary ] 0o644 path
        in
        if valid_end = 0 then (
          (* fresh or unrecoverable header: start a clean log *)
          Unix.ftruncate (Unix.descr_of_out_channel oc) 0;
          output_string oc magic)
        else (
          Unix.ftruncate (Unix.descr_of_out_channel oc) valid_end;
          seek_out oc valid_end);
        flush oc;
        oc
      with
      | exception Sys_error msg -> Error msg
      | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
      | oc ->
          let latest = Hashtbl.create 64 in
          List.iteri
            (fun i (key, outcome) -> Hashtbl.replace latest key (outcome, i))
            records;
          let t =
            {
              path;
              oc;
              records = List.length records;
              bytes = (if valid_end = 0 then String.length magic else valid_end);
              latest;
              seq = List.length records;
              compactions = 0;
              last_compaction_s = None;
              compact_threshold;
              mutex = Mutex.create ();
            }
          in
          Ok
            ( t,
              {
                replayed = latest_in_order t;
                dropped_bytes;
                corrupt;
              } ))

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* Rewrite the log to the latest record per key, temp file + rename, so
   a crash mid-compaction leaves either the old or the new file. *)
let compact_locked t =
  let live = latest_in_order t in
  let tmp = t.path ^ ".tmp" in
  let oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ]
      0o644 tmp
  in
  let bytes =
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc magic;
        let n = ref (String.length magic) in
        List.iter
          (fun (key, outcome) ->
            let record = encode_record ~key outcome in
            output_string oc record;
            n := !n + String.length record)
          live;
        flush oc;
        !n)
  in
  close_out_noerr t.oc;
  Sys.rename tmp t.path;
  let oc =
    open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 t.path
  in
  t.oc <- oc;
  t.records <- List.length live;
  t.bytes <- bytes;
  Hashtbl.reset t.latest;
  List.iteri (fun i (key, outcome) -> Hashtbl.replace t.latest key (outcome, i))
    live;
  t.seq <- List.length live;
  t.compactions <- t.compactions + 1;
  t.last_compaction_s <- Some (Timed.Clock.gettimeofday ())

let append t ~key outcome =
  locked t @@ fun () ->
  let record = encode_record ~key outcome in
  output_string t.oc record;
  flush t.oc;
  t.records <- t.records + 1;
  t.bytes <- t.bytes + String.length record;
  Hashtbl.replace t.latest key (outcome, t.seq);
  t.seq <- t.seq + 1;
  if t.records > t.compact_threshold && t.records >= 2 * Hashtbl.length t.latest
  then compact_locked t

let compact t = locked t @@ fun () -> compact_locked t
let sync t = locked t @@ fun () -> flush t.oc
let close t = locked t @@ fun () -> close_out_noerr t.oc

let stats t =
  locked t @@ fun () ->
  {
    records = t.records;
    live = Hashtbl.length t.latest;
    bytes = t.bytes;
    compactions = t.compactions;
    last_compaction_s = t.last_compaction_s;
  }

let read_back path =
  match read_all path with
  | exception Sys_error msg -> Error msg
  | data ->
      if String.length data < String.length magic
         || String.sub data 0 (String.length magic) <> magic
      then Error (Printf.sprintf "%s: not a verdict journal" path)
      else
        let records, _, ending = scan_records data (String.length magic) in
        (match ending with
        | Clean -> Ok records
        | Torn -> Error "torn record at end of journal"
        | Corrupt msg -> Error ("corrupt record: " ^ msg))
