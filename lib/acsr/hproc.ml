(* Hash-consed ACSR process terms.

   State-space exploration interns millions of closed terms into a state
   table; with plain [Proc.t] every intern rehashes the whole term and every
   bucket collision pays a deep structural comparison.  Worse,
   [Hashtbl.hash] only samples a bounded prefix of the term, so large
   parallel compositions that differ deep inside one operand all collide.

   This module gives every distinct term a unique physical representative:
   nodes are interned bottom-up, children of an interned node are themselves
   interned, and each node memoizes a full-depth structural hash built from
   its children's memoized hashes.  Equality of hash-consed terms is
   pointer equality, hashing is a field read, and the LTS state table keys
   on the integer [id] — all O(1).

   The intern table is global and sharded, each shard behind its own mutex,
   so successor construction can run concurrently from several domains
   (used by the parallel explorer in [Versa.Lts]).  Node ids depend on
   interning order and are therefore not deterministic across runs when
   several domains intern concurrently; nothing order-sensitive may depend
   on ids — canonical orderings must use [compare_structural], which
   mirrors [Stdlib.compare] on the corresponding [Proc.t] values. *)

type t = { id : int; hash : int; node : node }

and node =
  | Nil
  | Act of Action.t * t
  | Ev of Event.t * t
  | Choice of t * t
  | Par of t * t
  | Scope of scope
  | Restrict of Label.Set.t * t
  | Close of Resource.Set.t * t
  | If of Guard.t * t
  | Call of string * Expr.t list

and scope = {
  body : t;
  bound : Expr.t option;
  exc : (Label.t * t) option;
  timeout : t;
  interrupt : t option;
}

let id t = t.id
let hash t = t.hash
let node t = t.node
let equal (a : t) (b : t) = a == b
let compare (a : t) (b : t) = Int.compare a.id b.id

(* {1 Shallow hashing and equality of nodes}

   Leaf payloads (actions, events, label/resource sets, guards,
   expressions) are hashed with [Hashtbl.hash] and compared structurally
   with [Stdlib.compare]; children contribute their memoized full-depth
   hashes and are compared by pointer.  Because children are interned
   before their parent, structurally equal nodes always have physically
   equal children, so the shallow comparison decides full structural
   equality. *)

let mix h1 h2 = (h1 * 0x01000193) lxor (h2 land max_int)

let opt_hash f = function None -> 0x5d | Some x -> mix 0x9e (f x)

let node_hash = function
  | Nil -> 0x11
  | Act (a, k) -> mix 1 (mix (Hashtbl.hash a) k.hash)
  | Ev (e, k) -> mix 2 (mix (Hashtbl.hash e) k.hash)
  | Choice (a, b) -> mix 3 (mix a.hash b.hash)
  | Par (a, b) -> mix 4 (mix a.hash b.hash)
  | Scope s ->
      mix 5
        (mix s.body.hash
           (mix
              (opt_hash Hashtbl.hash s.bound)
              (mix
                 (opt_hash (fun (l, h) -> mix (Hashtbl.hash l) h.hash) s.exc)
                 (mix s.timeout.hash (opt_hash (fun h -> h.hash) s.interrupt)))))
  | Restrict (f, k) -> mix 6 (mix (Hashtbl.hash f) k.hash)
  | Close (r, k) -> mix 7 (mix (Hashtbl.hash r) k.hash)
  | If (g, k) -> mix 8 (mix (Hashtbl.hash g) k.hash)
  | Call (n, args) -> mix 9 (mix (Hashtbl.hash n) (Hashtbl.hash args))

let opt_equal eq a b =
  match (a, b) with
  | None, None -> true
  | Some x, Some y -> eq x y
  | None, Some _ | Some _, None -> false

let leaf_equal a b = Stdlib.compare a b = 0

let node_equal n1 n2 =
  match (n1, n2) with
  | Nil, Nil -> true
  | Act (a1, k1), Act (a2, k2) -> k1 == k2 && leaf_equal a1 a2
  | Ev (e1, k1), Ev (e2, k2) -> k1 == k2 && leaf_equal e1 e2
  | Choice (a1, b1), Choice (a2, b2) | Par (a1, b1), Par (a2, b2) ->
      a1 == a2 && b1 == b2
  | Scope s1, Scope s2 ->
      s1.body == s2.body && s1.timeout == s2.timeout
      && opt_equal leaf_equal s1.bound s2.bound
      && opt_equal
           (fun (l1, h1) (l2, h2) -> h1 == h2 && Label.equal l1 l2)
           s1.exc s2.exc
      && opt_equal ( == ) s1.interrupt s2.interrupt
  | Restrict (f1, k1), Restrict (f2, k2) -> k1 == k2 && leaf_equal f1 f2
  | Close (r1, k1), Close (r2, k2) -> k1 == k2 && leaf_equal r1 r2
  | If (g1, k1), If (g2, k2) -> k1 == k2 && leaf_equal g1 g2
  | Call (n1, a1), Call (n2, a2) -> String.equal n1 n2 && leaf_equal a1 a2
  | ( ( Nil | Act _ | Ev _ | Choice _ | Par _ | Scope _ | Restrict _
      | Close _ | If _ | Call _ ),
      _ ) ->
      false

(* {1 The sharded intern table} *)

module Node_tbl = Hashtbl.Make (struct
  type nonrec t = node

  let equal = node_equal
  let hash = node_hash
end)

let num_shards = 64 (* power of two *)

type shard = { lock : Mutex.t; tbl : t Node_tbl.t }

let shards =
  Array.init num_shards (fun _ ->
      { lock = Mutex.create (); tbl = Node_tbl.create 1024 })

let next_id = Atomic.make 0

let intern node =
  let h = node_hash node in
  let shard = shards.((h lsr 3) land (num_shards - 1)) in
  Mutex.lock shard.lock;
  match Node_tbl.find_opt shard.tbl node with
  | Some t ->
      Mutex.unlock shard.lock;
      t
  | None ->
      let t = { id = Atomic.fetch_and_add next_id 1; hash = h; node } in
      Node_tbl.add shard.tbl node t;
      Mutex.unlock shard.lock;
      t

let table_size () = Atomic.get next_id

(* {1 Constructors}

   Raw, one-to-one with the [Proc.t] constructors: no simplification of any
   kind, so that [of_proc]/[to_proc] round-trip exactly and the optimized
   semantics builds successors structurally identical to the reference
   semantics over [Proc.t]. *)

let nil = intern Nil
let act a k = intern (Act (a, k))
let ev e k = intern (Ev (e, k))
let choice a b = intern (Choice (a, b))
let par a b = intern (Par (a, b))
let scope ~body ~bound ~exc ~timeout ~interrupt =
  intern (Scope { body; bound; exc; timeout; interrupt })
let restrict f k = intern (Restrict (f, k))
let close r k = intern (Close (r, k))
let if_ g k = intern (If (g, k))
let call n args = intern (Call (n, args))

(* {1 Conversions} *)

let rec of_proc (p : Proc.t) : t =
  match p with
  | Proc.Nil -> nil
  | Proc.Act (a, k) -> act a (of_proc k)
  | Proc.Ev (e, k) -> ev e (of_proc k)
  | Proc.Choice (a, b) -> choice (of_proc a) (of_proc b)
  | Proc.Par (a, b) -> par (of_proc a) (of_proc b)
  | Proc.Scope s ->
      scope ~body:(of_proc s.Proc.body) ~bound:s.Proc.bound
        ~exc:(Option.map (fun (l, h) -> (l, of_proc h)) s.Proc.exc)
        ~timeout:(of_proc s.Proc.timeout)
        ~interrupt:(Option.map of_proc s.Proc.interrupt)
  | Proc.Restrict (f, k) -> restrict f (of_proc k)
  | Proc.Close (r, k) -> close r (of_proc k)
  | Proc.If (g, k) -> if_ g (of_proc k)
  | Proc.Call (n, args) -> call n args

let rec to_proc (t : t) : Proc.t =
  match t.node with
  | Nil -> Proc.Nil
  | Act (a, k) -> Proc.Act (a, to_proc k)
  | Ev (e, k) -> Proc.Ev (e, to_proc k)
  | Choice (a, b) -> Proc.Choice (to_proc a, to_proc b)
  | Par (a, b) -> Proc.Par (to_proc a, to_proc b)
  | Scope s ->
      Proc.Scope
        {
          Proc.body = to_proc s.body;
          bound = s.bound;
          exc = Option.map (fun (l, h) -> (l, to_proc h)) s.exc;
          timeout = to_proc s.timeout;
          interrupt = Option.map to_proc s.interrupt;
        }
  | Restrict (f, k) -> Proc.Restrict (f, to_proc k)
  | Close (r, k) -> Proc.Close (r, to_proc k)
  | If (g, k) -> Proc.If (g, to_proc k)
  | Call (n, args) -> Proc.Call (n, args)

(* {1 Canonical structural order}

   Mirrors [Stdlib.compare] on the corresponding [Proc.t] values exactly
   (verified by a property test), while short-circuiting on shared
   subterms: physically equal children compare equal without being
   visited.  The constructor order below follows the runtime ordering of
   [Stdlib.compare] on variants — the sole constant constructor [Nil]
   sorts before every block, and blocks sort by declaration order. *)

let tag_index = function
  | Nil -> 0
  | Act _ -> 1
  | Ev _ -> 2
  | Choice _ -> 3
  | Par _ -> 4
  | Scope _ -> 5
  | Restrict _ -> 6
  | Close _ -> 7
  | If _ -> 8
  | Call _ -> 9

let rec compare_structural (a : t) (b : t) =
  if a == b then 0
  else
    match (a.node, b.node) with
    | Act (a1, k1), Act (a2, k2) ->
        let c = Stdlib.compare a1 a2 in
        if c <> 0 then c else compare_structural k1 k2
    | Ev (e1, k1), Ev (e2, k2) ->
        let c = Stdlib.compare e1 e2 in
        if c <> 0 then c else compare_structural k1 k2
    | Choice (a1, b1), Choice (a2, b2) | Par (a1, b1), Par (a2, b2) ->
        let c = compare_structural a1 a2 in
        if c <> 0 then c else compare_structural b1 b2
    | Scope s1, Scope s2 -> compare_scope s1 s2
    | Restrict (f1, k1), Restrict (f2, k2) ->
        let c = Stdlib.compare f1 f2 in
        if c <> 0 then c else compare_structural k1 k2
    | Close (r1, k1), Close (r2, k2) ->
        let c = Stdlib.compare r1 r2 in
        if c <> 0 then c else compare_structural k1 k2
    | If (g1, k1), If (g2, k2) ->
        let c = Stdlib.compare g1 g2 in
        if c <> 0 then c else compare_structural k1 k2
    | Call (n1, a1), Call (n2, a2) ->
        let c = String.compare n1 n2 in
        if c <> 0 then c else Stdlib.compare a1 a2
    | n1, n2 -> Int.compare (tag_index n1) (tag_index n2)

and compare_scope s1 s2 =
  let c = compare_structural s1.body s2.body in
  if c <> 0 then c
  else
    let c = Stdlib.compare s1.bound s2.bound in
    if c <> 0 then c
    else
      let c =
        match (s1.exc, s2.exc) with
        | None, None -> 0
        | None, Some _ -> -1
        | Some _, None -> 1
        | Some (l1, h1), Some (l2, h2) ->
            let c = Label.compare l1 l2 in
            if c <> 0 then c else compare_structural h1 h2
      in
      if c <> 0 then c
      else
        let c = compare_structural s1.timeout s2.timeout in
        if c <> 0 then c
        else
          match (s1.interrupt, s2.interrupt) with
          | None, None -> 0
          | None, Some _ -> -1
          | Some _, None -> 1
          | Some h1, Some h2 -> compare_structural h1 h2

let pp ppf t = Proc.pp ppf (to_proc t)
