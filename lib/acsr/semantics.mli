(** Operational semantics of closed ACSR terms. *)

exception Not_closed of string
(** Raised when a term still contains free parameters. *)

exception Unguarded_recursion of string
(** Raised when unfolding definitions never reaches an action or event
    prefix (e.g. [X = X]). *)

val steps : Defs.t -> Proc.t -> (Step.t * Proc.t) list
(** The unprioritized transition relation: every step the term can take,
    deduplicated. *)

val prioritized : Defs.t -> Proc.t -> (Step.t * Proc.t) list
(** The prioritized transition relation: {!steps} minus the steps preempted
    by another enabled step.  Schedulability analysis explores this
    relation. *)

val is_deadlocked : Defs.t -> Proc.t -> bool
(** No step at all is enabled.  In translated AADL models this denotes a
    timing violation (paper, Section 5). *)

val is_time_stopped : Defs.t -> Proc.t -> bool
(** No prioritized step advances time. *)

(** {1 Hash-consed engine}

    A second implementation of the transition relation over hash-consed
    terms ({!Hproc.t}), used by the state-space explorer: successor
    deduplication and state-table interning become O(1) per comparison.
    Produces, term for term and in the same canonical order, the
    hash-consed image of what {!steps}/{!prioritized} return — the test
    suite checks the two engines against each other by property. *)

type cache
(** Memo tables for the hash-consed engine: definition unfolding, keyed
    by (name, argument values), and per-subterm step sets, keyed by
    interned id.  Sound only for a fixed [Defs.t] — create one cache per
    definition environment.  Mutex-protected: one cache may be shared by
    several domains. *)

val make_cache : unit -> cache

val h_steps : ?cache:cache -> Defs.t -> Hproc.t -> (Step.t * Hproc.t) list
(** Unprioritized transition relation over hash-consed terms.  Without
    [?cache], a fresh unfolding memo is used for this call only. *)

val h_prioritized :
  ?cache:cache -> Defs.t -> Hproc.t -> (Step.t * Hproc.t) list
(** Prioritized transition relation over hash-consed terms. *)
