(** Hash-consed ACSR process terms.

    Every distinct term has a unique physical representative: nodes are
    interned bottom-up into a global, sharded (domain-safe) table, and each
    node memoizes a full-depth structural hash.  {!equal} is pointer
    equality, {!hash} is a field read, and {!id} keys the state tables of
    {!Versa.Lts} in O(1) — this is what makes exhaustive state-space
    exploration scale (cf. the VERSA tool, paper Section 5).

    Constructors are raw: one-to-one with {!Proc.t}, with no
    simplification, so {!of_proc} and {!to_proc} round-trip exactly. *)

type t = private { id : int; hash : int; node : node }

and node =
  | Nil
  | Act of Action.t * t
  | Ev of Event.t * t
  | Choice of t * t
  | Par of t * t
  | Scope of scope
  | Restrict of Label.Set.t * t
  | Close of Resource.Set.t * t
  | If of Guard.t * t
  | Call of string * Expr.t list

and scope = {
  body : t;
  bound : Expr.t option;
  exc : (Label.t * t) option;
  timeout : t;
  interrupt : t option;
}

val id : t -> int
(** Unique per distinct term within a run.  Ids depend on interning order
    and are not deterministic across runs when several domains intern
    concurrently; use {!compare_structural} for canonical orderings. *)

val hash : t -> int
(** Memoized full-depth structural hash: O(1). *)

val node : t -> node

val equal : t -> t -> bool
(** Pointer equality — equivalent to structural equality of the underlying
    terms, in O(1). *)

val compare : t -> t -> int
(** Total order by {!id}; fast but not canonical across runs. *)

val compare_structural : t -> t -> int
(** Mirrors [Stdlib.compare] on the corresponding {!Proc.t} values exactly,
    short-circuiting on shared subterms.  Canonical across runs; this is
    the order successor rows are sorted in. *)

(** {1 Constructors} — raw (no simplification), interning. *)

val nil : t
val act : Action.t -> t -> t
val ev : Event.t -> t -> t
val choice : t -> t -> t
val par : t -> t -> t

val scope :
  body:t ->
  bound:Expr.t option ->
  exc:(Label.t * t) option ->
  timeout:t ->
  interrupt:t option ->
  t

val restrict : Label.Set.t -> t -> t
val close : Resource.Set.t -> t -> t
val if_ : Guard.t -> t -> t
val call : string -> Expr.t list -> t

(** {1 Conversions} *)

val of_proc : Proc.t -> t
(** Intern a plain term, bottom-up.  Structurally equal inputs return the
    same physical node. *)

val to_proc : t -> Proc.t
(** Rebuild the plain term; [to_proc (of_proc p) = p] structurally. *)

val table_size : unit -> int
(** Number of distinct nodes interned so far (the table is global and grows
    monotonically for the lifetime of the process). *)

val pp : t Fmt.t
