(* Orbit reduction: name renamings and slot-permutation canonicalization.
   See symmetry.mli for the soundness argument; this file is mechanics. *)

module Smap = Map.Make (String)

(* ------------------------------------------------------------------ *)
(* Renamings                                                           *)
(* ------------------------------------------------------------------ *)

type renaming = { labels : string Smap.t; calls : string Smap.t }

let renaming ~labels ~calls =
  let build = List.fold_left (fun m (a, b) -> Smap.add a b m) Smap.empty in
  { labels = build labels; calls = build calls }

let identity = { labels = Smap.empty; calls = Smap.empty }

let is_identity r =
  Smap.for_all (fun k v -> String.equal k v) r.labels
  && Smap.for_all (fun k v -> String.equal k v) r.calls

let invert r =
  let inv m = Smap.fold (fun k v acc -> Smap.add v k acc) m Smap.empty in
  { labels = inv r.labels; calls = inv r.calls }

let apply_name m x = match Smap.find_opt x m with Some y -> y | None -> x

let compose outer inner =
  let comp o i =
    let keys = Smap.fold (fun k _ acc -> Smap.add k () acc) o Smap.empty in
    let keys = Smap.fold (fun k _ acc -> Smap.add k () acc) i keys in
    Smap.fold
      (fun k () acc -> Smap.add k (apply_name o (apply_name i k)) acc)
      keys Smap.empty
  in
  { labels = comp outer.labels inner.labels;
    calls = comp outer.calls inner.calls }

let rename_label r l =
  match Smap.find_opt (Label.name l) r.labels with
  | Some n -> Label.make n
  | None -> l

let rename_call r n = apply_name r.calls n

let rename_label_set r ls =
  Label.set_of_list (List.map (rename_label r) (Label.Set.elements ls))

let apply_step r (s : Step.t) : Step.t =
  match s with
  | Step.Action _ -> s
  | Step.Event (l, d, p) -> Step.Event (rename_label r l, d, p)
  | Step.Tau (Some l, p) -> Step.Tau (Some (rename_label r l), p)
  | Step.Tau (None, _) -> s

let rec apply_proc r (p : Proc.t) : Proc.t =
  match p with
  | Proc.Nil -> p
  | Proc.Act (a, k) -> Proc.Act (a, apply_proc r k)
  | Proc.Ev (e, k) ->
      Proc.Ev ({ e with Event.label = rename_label r e.Event.label },
               apply_proc r k)
  | Proc.Choice (a, b) -> Proc.Choice (apply_proc r a, apply_proc r b)
  | Proc.Par (a, b) -> Proc.Par (apply_proc r a, apply_proc r b)
  | Proc.Scope s ->
      Proc.Scope
        { body = apply_proc r s.body;
          bound = s.bound;
          exc =
            Option.map (fun (l, h) -> (rename_label r l, apply_proc r h)) s.exc;
          timeout = apply_proc r s.timeout;
          interrupt = Option.map (apply_proc r) s.interrupt }
  | Proc.Restrict (ls, k) ->
      Proc.Restrict (rename_label_set r ls, apply_proc r k)
  | Proc.Close (rs, k) -> Proc.Close (rs, apply_proc r k)
  | Proc.If (g, k) -> Proc.If (g, apply_proc r k)
  | Proc.Call (n, args) -> Proc.Call (rename_call r n, args)

let rec apply_hproc r (h : Hproc.t) : Hproc.t =
  match Hproc.node h with
  | Hproc.Nil -> h
  | Hproc.Act (a, k) -> Hproc.act a (apply_hproc r k)
  | Hproc.Ev (e, k) ->
      Hproc.ev { e with Event.label = rename_label r e.Event.label }
        (apply_hproc r k)
  | Hproc.Choice (a, b) -> Hproc.choice (apply_hproc r a) (apply_hproc r b)
  | Hproc.Par (a, b) -> Hproc.par (apply_hproc r a) (apply_hproc r b)
  | Hproc.Scope s ->
      Hproc.scope ~body:(apply_hproc r s.body) ~bound:s.bound
        ~exc:
          (Option.map (fun (l, h) -> (rename_label r l, apply_hproc r h)) s.exc)
        ~timeout:(apply_hproc r s.timeout)
        ~interrupt:(Option.map (apply_hproc r) s.interrupt)
  | Hproc.Restrict (ls, k) ->
      Hproc.restrict (rename_label_set r ls) (apply_hproc r k)
  | Hproc.Close (rs, k) -> Hproc.close rs (apply_hproc r k)
  | Hproc.If (g, k) -> Hproc.if_ g (apply_hproc r k)
  | Hproc.Call (n, args) -> Hproc.call (rename_call r n) args

(* ------------------------------------------------------------------ *)
(* Orbit specifications                                                *)
(* ------------------------------------------------------------------ *)

(* A memoized, domain-safe [apply_hproc r].  Hash-consing makes recomputation
   idempotent (same physical result), so the lock is dropped during the
   actual rewrite: a racing duplicate computation is wasted work, never a
   wrong answer. *)
let memoized r =
  if is_identity r then Fun.id
  else begin
    let table : (int, Hproc.t) Hashtbl.t = Hashtbl.create 64 in
    let lock = Mutex.create () in
    fun h ->
      Mutex.lock lock;
      let cached = Hashtbl.find_opt table (Hproc.id h) in
      Mutex.unlock lock;
      match cached with
      | Some h' -> h'
      | None ->
          let h' = apply_hproc r h in
          Mutex.lock lock;
          Hashtbl.replace table (Hproc.id h) h';
          Mutex.unlock lock;
          h'
  end

type member = {
  offset : int;
  width : int;
  to_rep : renaming;
  of_rep : renaming;
  to_rep_h : Hproc.t -> Hproc.t;
  of_rep_h : Hproc.t -> Hproc.t;
}

let member ~offset ~width ~to_rep =
  if offset < 0 || width <= 0 then
    invalid_arg "Symmetry.member: offset/width out of range";
  let of_rep = invert to_rep in
  { offset; width; to_rep; of_rep;
    to_rep_h = memoized to_rep; of_rep_h = memoized of_rep }

type cls = { members : member array }

let cls = function
  | ([] | [ _ ]) -> invalid_arg "Symmetry.cls: need at least two members"
  | ms ->
      let members = Array.of_list ms in
      let w = members.(0).width in
      Array.iter
        (fun m ->
          if m.width <> w then
            invalid_arg "Symmetry.cls: members differ in width")
        members;
      { members }

type spec = {
  slots : int;
  classes : cls array;
  canon_cache : (int, Hproc.t * renaming) Hashtbl.t;
  cache_lock : Mutex.t;
}

let make ~slots classes =
  let classes =
    Array.of_list (List.filter (fun c -> Array.length c.members >= 2) classes)
  in
  { slots; classes;
    canon_cache = Hashtbl.create 4096; cache_lock = Mutex.create () }

let empty =
  { slots = 0; classes = [||];
    canon_cache = Hashtbl.create 1; cache_lock = Mutex.create () }

let is_empty s = Array.length s.classes = 0
let num_slots s = s.slots
let num_classes s = Array.length s.classes
let class_sizes s =
  Array.to_list (Array.map (fun c -> Array.length c.members) s.classes)

let pp ppf s =
  Fmt.pf ppf "%d class%s over %d slots (sizes %a)" (num_classes s)
    (if num_classes s = 1 then "" else "es")
    s.slots
    Fmt.(list ~sep:comma int)
    (class_sizes s)

(* ------------------------------------------------------------------ *)
(* Canonicalization                                                    *)
(* ------------------------------------------------------------------ *)

(* Split the left-associated spine [Par (... Par (p0, p1) ..., p_{n-1})]
   into exactly [n] slots.  Any other shape (including deeper nesting,
   which would make a blind flatten unsound) is rejected. *)
let split_spine n spine =
  if n <= 0 then None
  else begin
    let slots = Array.make n spine in
    let rec go i h =
      if i = 0 then begin
        slots.(0) <- h;
        true
      end
      else
        match Hproc.node h with
        | Hproc.Par (a, b) ->
            slots.(i) <- b;
            go (i - 1) a
        | _ -> false
    in
    if go (n - 1) spine then Some slots else None
  end

let rebuild_spine slots =
  let acc = ref slots.(0) in
  for i = 1 to Array.length slots - 1 do
    acc := Hproc.par !acc slots.(i)
  done;
  !acc

let compare_tuples a b =
  let n = Array.length a in
  let rec go i =
    if i >= n then 0
    else
      let c = Hproc.compare_structural a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

(* [rho], the name component of the witness: member [src]'s names mapped
   into position [dst]'s name space (through the shared rep space). *)
let extend_rho rho ~src ~dst =
  let ext src_to_rep dst_of_rep acc =
    Smap.fold
      (fun x y acc -> Smap.add x (apply_name dst_of_rep y) acc)
      src_to_rep acc
  in
  { labels = ext src.to_rep.labels dst.of_rep.labels rho.labels;
    calls = ext src.to_rep.calls dst.of_rep.calls rho.calls }

let canon_compute spec h =
  match Hproc.node h with
  | Hproc.Restrict (lset, spine) -> (
      match split_spine spec.slots spine with
      | None -> (h, identity)
      | Some slots ->
          let rho = ref identity in
          let changed = ref false in
          Array.iter
            (fun c ->
              let k = Array.length c.members in
              (* Member slot tuples, renamed into the rep's name space so
                 they are comparable. *)
              let tuples =
                Array.map
                  (fun m ->
                    Array.init m.width (fun j ->
                        m.to_rep_h slots.(m.offset + j)))
                  c.members
              in
              let order = Array.init k Fun.id in
              Array.sort
                (fun a b ->
                  let cmp = compare_tuples tuples.(a) tuples.(b) in
                  if cmp <> 0 then cmp else Int.compare a b)
                order;
              for j = 0 to k - 1 do
                let src_ix = order.(j) in
                if src_ix <> j then begin
                  let dst = c.members.(j) in
                  let tup = tuples.(src_ix) in
                  for x = 0 to dst.width - 1 do
                    let v = dst.of_rep_h tup.(x) in
                    if not (Hproc.equal v slots.(dst.offset + x)) then
                      changed := true;
                    slots.(dst.offset + x) <- v
                  done;
                  rho := extend_rho !rho ~src:c.members.(src_ix) ~dst
                end
              done)
            spec.classes;
          if !changed then (Hproc.restrict lset (rebuild_spine slots), !rho)
          else (h, identity))
  | _ -> (h, identity)

let canon_w spec h =
  if is_empty spec then (h, identity)
  else begin
    Mutex.lock spec.cache_lock;
    let cached = Hashtbl.find_opt spec.canon_cache (Hproc.id h) in
    Mutex.unlock spec.cache_lock;
    match cached with
    | Some res -> res
    | None ->
        let res = canon_compute spec h in
        Mutex.lock spec.cache_lock;
        Hashtbl.replace spec.canon_cache (Hproc.id h) res;
        Mutex.unlock spec.cache_lock;
        res
  end

let canon spec h = fst (canon_w spec h)
