(** Symmetry (orbit) reduction support: renamings of generated names and
    permutation classes of interchangeable parallel components.

    A translated AADL system is a restricted parallel composition
    [Restrict (L, P_0 || P_1 || ... || P_{n-1})] whose slots come from
    translation units.  When two units are generated from inputs that are
    identical up to the generated {e names} (labels and process-definition
    names), every renaming that swaps their name spaces is an automorphism
    of the prioritized transition system: swapping the two slots and
    renaming accordingly maps reachable states to reachable states,
    deadlocks to deadlocks, and preserves BFS distances.  The explorer can
    therefore visit one canonical representative per orbit
    ({!canon} sorts the interchangeable slots) and de-canonicalize the
    resulting counterexample traces afterwards ({!apply_step} with the
    witness renamings from {!canon_w}).

    The {e spec} — which slots are interchangeable, under which renamings
    — is established by the translation layer, which alone knows the
    derivation inputs; this module only applies it. *)

(** {1 Renamings} *)

type renaming
(** A finite bijection over generated label names and process-definition
    (Call) names; identity outside its domain.  Resources, priorities and
    expression parameters are never renamed. *)

val renaming :
  labels:(string * string) list -> calls:(string * string) list -> renaming
(** Build a renaming from (from, to) pairs.  The pairs must describe a
    bijection (disjoint domains and ranges per kind); later pairs win on
    (malformed) duplicate keys. *)

val is_identity : renaming -> bool
(** Every binding maps a name to itself. *)

val invert : renaming -> renaming

val compose : renaming -> renaming -> renaming
(** [compose outer inner] applies [inner] first: [(outer ∘ inner) x =
    outer (inner x)].  The domain is the union of both domains. *)

val apply_proc : renaming -> Proc.t -> Proc.t
(** Rename event labels, restriction sets, scope exception labels and
    [Call] names throughout a term. *)

val apply_hproc : renaming -> Hproc.t -> Hproc.t
(** Same, over hash-consed terms (the result is interned). *)

val apply_step : renaming -> Step.t -> Step.t
(** Rename the label of an event or tau step; timed actions are
    unchanged. *)

(** {1 Orbit specifications} *)

type member
(** One interchangeable component: the contiguous slot range it occupies
    in the flattened parallel composition, and the renaming into its
    class representative's name space. *)

val member : offset:int -> width:int -> to_rep:renaming -> member
(** [offset] is the index of the member's first slot, [width] its number
    of consecutive slots.  [to_rep] maps the member's generated names to
    the class representative's; for the representative itself pass the
    explicit identity (each name mapped to itself) — the bindings also
    enumerate the member's name space for trace witnesses. *)

type cls
(** An orbit class: two or more members, the first being the
    representative. *)

val cls : member list -> cls
(** @raise Invalid_argument on fewer than two members. *)

type spec

val make : slots:int -> cls list -> spec
(** [slots] is the total number of parallel slots of the composed system
    (the sum of every fragment's initial-process count).  Classes whose
    member count is below two are dropped. *)

val empty : spec
val is_empty : spec -> bool

val num_slots : spec -> int
val num_classes : spec -> int

val class_sizes : spec -> int list
(** Member count per class, in class order. *)

val pp : spec Fmt.t
(** One-line summary, e.g. [2 classes over 16 slots (sizes 8, 2)]. *)

(** {1 Canonicalization} *)

val canon : spec -> Hproc.t -> Hproc.t
(** The canonical representative of the state's orbit: for each class,
    the member slot tuples (renamed into the representative's name space)
    are sorted structurally ({!Hproc.compare_structural}, stable) and
    written back through each position's inverse renaming.  States that
    do not have the expected [Restrict (L, par-spine)] shape are returned
    unchanged.  Deterministic, idempotent, and memoized per spec (safe to
    call from concurrent domains). *)

val canon_w : spec -> Hproc.t -> Hproc.t * renaming
(** [canon] plus the renaming component [ρ] of the applied automorphism:
    [canon s = permute (apply ρ s)], where [ρ] maps the names of the
    member originally holding each tuple to the names of the position the
    tuple was moved to.  [ρ] is what trace de-canonicalization composes
    (see {!Versa.Lts}). *)
