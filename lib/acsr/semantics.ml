(* Operational semantics of ACSR.

   [steps] computes the unprioritized transition relation of a closed
   process term; [prioritized] filters it through the preemption relation
   (Step.prioritize), yielding the prioritized transition relation on which
   schedulability analysis is performed.

   Time progress is global: in a parallel composition both operands must
   take timed actions together, with disjoint resource sets (rule Par3 in
   the paper); events interleave or synchronize CCS-style. *)

exception Not_closed of string
exception Unguarded_recursion of string

(* Bound on nested Call unfoldings within the computation of a single step
   set.  Well-formed ACSR definitions are guarded (every recursive call is
   behind an action or event prefix), so this limit is only reached by
   ill-founded definitions such as [X = X]. *)
let max_unfold_depth = 4096

let ground_env = Expr.Env.empty

let eval_expr name e =
  match Expr.eval ground_env e with
  | v -> v
  | exception Expr.Unbound_parameter x ->
      raise (Not_closed (Fmt.str "%s: unbound parameter %s" name x))

let rec steps_at depth (defs : Defs.t) (p : Proc.t) :
    (Step.t * Proc.t) list =
  match p with
  | Proc.Nil -> []
  | Proc.Act (a, k) ->
      let ground =
        List.map (fun (r, e) -> (r, eval_expr "action priority" e)) a
      in
      [ (Step.Action ground, k) ]
  | Proc.Ev (e, k) ->
      let prio = eval_expr "event priority" (Event.priority e) in
      [ (Step.Event (Event.label e, Event.dir e, prio), k) ]
  | Proc.Choice (a, b) -> steps_at depth defs a @ steps_at depth defs b
  | Proc.Par (a, b) -> par_steps depth defs a b
  | Proc.Scope s -> scope_steps depth defs s
  | Proc.Restrict (forbidden, k) ->
      let keep (step, _) =
        match step with
        | Step.Event (l, _, _) -> not (Label.Set.mem l forbidden)
        | Step.Action _ | Step.Tau _ -> true
      in
      steps_at depth defs k
      |> List.filter keep
      |> List.map (fun (s, k') -> (s, Proc.Restrict (forbidden, k')))
  | Proc.Close (owned, k) ->
      let close_step (step, k') =
        let step' =
          match step with
          | Step.Action a ->
              let used = Action.Ground.resources a in
              let extra =
                Resource.Set.diff owned used
                |> Resource.Set.elements
                |> List.map (fun r -> (r, 0))
              in
              Step.Action (Action.Ground.union a extra)
          | Step.Event _ | Step.Tau _ -> step
        in
        (step', Proc.Close (owned, k'))
      in
      List.map close_step (steps_at depth defs k)
  | Proc.If (g, k) -> (
      match Guard.eval ground_env g with
      | true -> steps_at depth defs k
      | false -> []
      | exception Expr.Unbound_parameter x ->
          raise (Not_closed (Fmt.str "guard: unbound parameter %s" x)))
  | Proc.Call (name, args) ->
      if depth > max_unfold_depth then raise (Unguarded_recursion name);
      let values = List.map (eval_expr name) args in
      steps_at (depth + 1) defs (Defs.instantiate defs name values)

and par_steps depth defs a b =
  let sa = steps_at depth defs a and sb = steps_at depth defs b in
  (* interleaved instantaneous steps *)
  let left =
    List.filter_map
      (fun (s, a') ->
        match s with
        | Step.Event _ | Step.Tau _ -> Some (s, Proc.Par (a', b))
        | Step.Action _ -> None)
      sa
  and right =
    List.filter_map
      (fun (s, b') ->
        match s with
        | Step.Event _ | Step.Tau _ -> Some (s, Proc.Par (a, b'))
        | Step.Action _ -> None)
      sb
  in
  (* synchronized timed actions with disjoint resources *)
  let timed =
    List.concat_map
      (fun (s, a') ->
        match s with
        | Step.Action aa ->
            List.filter_map
              (fun (s', b') ->
                match s' with
                | Step.Action ab when Action.Ground.disjoint aa ab ->
                    Some
                      ( Step.Action (Action.Ground.union aa ab),
                        Proc.Par (a', b') )
                | Step.Action _ | Step.Event _ | Step.Tau _ -> None)
              sb
        | Step.Event _ | Step.Tau _ -> [])
      sa
  in
  (* CCS-style synchronization of matching input/output events *)
  let sync =
    List.concat_map
      (fun (s, a') ->
        match s with
        | Step.Event (l, da, pa) ->
            List.filter_map
              (fun (s', b') ->
                match s' with
                | Step.Event (l', db, pb)
                  when Label.equal l l' && da <> db ->
                    Some (Step.Tau (Some l, pa + pb), Proc.Par (a', b'))
                | Step.Event _ | Step.Action _ | Step.Tau _ -> None)
              sb
        | Step.Action _ | Step.Tau _ -> [])
      sa
  in
  left @ right @ timed @ sync

and scope_steps depth defs (s : Proc.scope) =
  let bound = Option.map (eval_expr "scope bound") s.bound in
  match bound with
  | Some 0 ->
      (* timeout exit: the scope is left and the handler takes over *)
      steps_at depth defs s.timeout
  | _ ->
      let decrement =
        match bound with
        | Some n -> Some (Expr.Int (n - 1))
        | None -> None
      in
      let of_body (step, body') =
        match (step, s.exc) with
        | Step.Event (l, Event.Out, _), Some (l', handler)
          when Label.equal l l' ->
            (* exception exit: voluntary transfer of control *)
            [ (step, handler) ]
        | Step.Action _, _ ->
            [ (step, Proc.Scope { s with body = body'; bound = decrement }) ]
        | (Step.Event _ | Step.Tau _), _ ->
            [ (step, Proc.Scope { s with body = body' }) ]
      in
      let body_steps = List.concat_map of_body (steps_at depth defs s.body) in
      let interrupt_steps =
        match s.interrupt with
        | Some handler -> steps_at depth defs handler
        | None -> []
      in
      body_steps @ interrupt_steps

let dedup steps = List.sort_uniq Stdlib.compare steps

let steps defs p = dedup (steps_at 0 defs p)
let prioritized defs p = Step.prioritize (steps defs p)
let is_deadlocked defs p = steps defs p = []

(* {1 The hash-consed engine}

   A mirror of [steps_at] over [Hproc.t].  Successors are built with the
   raw (non-simplifying) [Hproc] constructors, so each successor is the
   hash-consed image of exactly the term the reference engine above would
   build — the two engines agree term-for-term, which the test suite
   checks by property.  The payoff: deduplication and the LTS state table
   compare terms in O(1) instead of re-walking them.

   Call unfolding (substitute evaluated arguments through the definition
   body, then intern the result) is memoized per (name, arguments): the
   translated AADL models re-enter the same few definition instances at
   every state.  The cache is mutex-protected so the parallel explorer can
   share one across domains. *)

type cache = {
  lock : Mutex.t;
  unfold : (string * int list, Hproc.t) Hashtbl.t;
  steps_memo : (int, (Step.t * Hproc.t) list) Hashtbl.t;
      (** unprioritized step set per interned term id.  Sound because the
          step set is a pure function of the term (and the fixed [defs]
          the cache is used with), and hash-consing makes the key O(1).
          This is where hash-consing pays off most: the per-thread
          subterms of a translated AADL system recur across nearly every
          global state, so their step sets are computed once instead of
          once per state. *)
}

let make_cache () =
  {
    lock = Mutex.create ();
    unfold = Hashtbl.create 256;
    steps_memo = Hashtbl.create 4096;
  }

let memo_find cache id =
  Mutex.lock cache.lock;
  let r = Hashtbl.find_opt cache.steps_memo id in
  Mutex.unlock cache.lock;
  r

(* Computation happens outside the lock: on a race both domains compute
   the same (deterministic) list and the first add wins. *)
let memo_add cache id v =
  Mutex.lock cache.lock;
  if not (Hashtbl.mem cache.steps_memo id) then
    Hashtbl.add cache.steps_memo id v;
  Mutex.unlock cache.lock

let unfold_call cache defs name values =
  let key = (name, values) in
  Mutex.lock cache.lock;
  match Hashtbl.find_opt cache.unfold key with
  | Some h ->
      Mutex.unlock cache.lock;
      h
  | None ->
      (* instantiation is pure: release the lock during the expensive
         substitution so other domains are not serialized behind it, and
         tolerate the (idempotent) duplicated work on a race *)
      Mutex.unlock cache.lock;
      let h = Hproc.of_proc (Defs.instantiate defs name values) in
      Mutex.lock cache.lock;
      if not (Hashtbl.mem cache.unfold key) then Hashtbl.add cache.unfold key h;
      Mutex.unlock cache.lock;
      h

let rec h_steps_at cache depth (defs : Defs.t) (p : Hproc.t) :
    (Step.t * Hproc.t) list =
  match Hproc.node p with
  | Hproc.Nil -> []
  | Hproc.Act (a, k) ->
      let ground =
        List.map (fun (r, e) -> (r, eval_expr "action priority" e)) a
      in
      [ (Step.Action ground, k) ]
  | Hproc.Ev (e, k) ->
      let prio = eval_expr "event priority" (Event.priority e) in
      [ (Step.Event (Event.label e, Event.dir e, prio), k) ]
  | _ -> (
      match memo_find cache (Hproc.id p) with
      | Some r -> r
      | None ->
          let r = h_steps_node cache depth defs p in
          memo_add cache (Hproc.id p) r;
          r)

(* The composite constructors, behind the memo.  A failed computation
   (unguarded recursion, unbound parameter) is never cached, so the
   diagnostics of the reference engine are preserved. *)
and h_steps_node cache depth (defs : Defs.t) (p : Hproc.t) :
    (Step.t * Hproc.t) list =
  match Hproc.node p with
  | Hproc.Nil | Hproc.Act _ | Hproc.Ev _ -> assert false (* handled above *)
  | Hproc.Choice (a, b) ->
      h_steps_at cache depth defs a @ h_steps_at cache depth defs b
  | Hproc.Par (a, b) -> h_par_steps cache depth defs a b
  | Hproc.Scope s -> h_scope_steps cache depth defs s
  | Hproc.Restrict (forbidden, k) ->
      let keep (step, _) =
        match step with
        | Step.Event (l, _, _) -> not (Label.Set.mem l forbidden)
        | Step.Action _ | Step.Tau _ -> true
      in
      h_steps_at cache depth defs k
      |> List.filter keep
      |> List.map (fun (s, k') -> (s, Hproc.restrict forbidden k'))
  | Hproc.Close (owned, k) ->
      let close_step (step, k') =
        let step' =
          match step with
          | Step.Action a ->
              let used = Action.Ground.resources a in
              let extra =
                Resource.Set.diff owned used
                |> Resource.Set.elements
                |> List.map (fun r -> (r, 0))
              in
              Step.Action (Action.Ground.union a extra)
          | Step.Event _ | Step.Tau _ -> step
        in
        (step', Hproc.close owned k')
      in
      List.map close_step (h_steps_at cache depth defs k)
  | Hproc.If (g, k) -> (
      match Guard.eval ground_env g with
      | true -> h_steps_at cache depth defs k
      | false -> []
      | exception Expr.Unbound_parameter x ->
          raise (Not_closed (Fmt.str "guard: unbound parameter %s" x)))
  | Hproc.Call (name, args) ->
      if depth > max_unfold_depth then raise (Unguarded_recursion name);
      let values = List.map (eval_expr name) args in
      h_steps_at cache (depth + 1) defs (unfold_call cache defs name values)

and h_par_steps cache depth defs a b =
  let sa = h_steps_at cache depth defs a
  and sb = h_steps_at cache depth defs b in
  let left =
    List.filter_map
      (fun (s, a') ->
        match s with
        | Step.Event _ | Step.Tau _ -> Some (s, Hproc.par a' b)
        | Step.Action _ -> None)
      sa
  and right =
    List.filter_map
      (fun (s, b') ->
        match s with
        | Step.Event _ | Step.Tau _ -> Some (s, Hproc.par a b')
        | Step.Action _ -> None)
      sb
  in
  let timed =
    List.concat_map
      (fun (s, a') ->
        match s with
        | Step.Action aa ->
            List.filter_map
              (fun (s', b') ->
                match s' with
                | Step.Action ab when Action.Ground.disjoint aa ab ->
                    Some
                      ( Step.Action (Action.Ground.union aa ab),
                        Hproc.par a' b' )
                | Step.Action _ | Step.Event _ | Step.Tau _ -> None)
              sb
        | Step.Event _ | Step.Tau _ -> [])
      sa
  in
  let sync =
    List.concat_map
      (fun (s, a') ->
        match s with
        | Step.Event (l, da, pa) ->
            List.filter_map
              (fun (s', b') ->
                match s' with
                | Step.Event (l', db, pb)
                  when Label.equal l l' && da <> db ->
                    Some (Step.Tau (Some l, pa + pb), Hproc.par a' b')
                | Step.Event _ | Step.Action _ | Step.Tau _ -> None)
              sb
        | Step.Action _ | Step.Tau _ -> [])
      sa
  in
  left @ right @ timed @ sync

and h_scope_steps cache depth defs (s : Hproc.scope) =
  let bound = Option.map (eval_expr "scope bound") s.Hproc.bound in
  match bound with
  | Some 0 -> h_steps_at cache depth defs s.Hproc.timeout
  | _ ->
      let decrement =
        match bound with
        | Some n -> Some (Expr.Int (n - 1))
        | None -> None
      in
      let of_body (step, body') =
        match (step, s.Hproc.exc) with
        | Step.Event (l, Event.Out, _), Some (l', handler)
          when Label.equal l l' ->
            [ (step, handler) ]
        | Step.Action _, _ ->
            [
              ( step,
                Hproc.scope ~body:body' ~bound:decrement ~exc:s.Hproc.exc
                  ~timeout:s.Hproc.timeout ~interrupt:s.Hproc.interrupt );
            ]
        | (Step.Event _ | Step.Tau _), _ ->
            [
              ( step,
                Hproc.scope ~body:body' ~bound:s.Hproc.bound ~exc:s.Hproc.exc
                  ~timeout:s.Hproc.timeout ~interrupt:s.Hproc.interrupt );
            ]
      in
      let body_steps =
        List.concat_map of_body (h_steps_at cache depth defs s.Hproc.body)
      in
      let interrupt_steps =
        match s.Hproc.interrupt with
        | Some handler -> h_steps_at cache depth defs handler
        | None -> []
      in
      body_steps @ interrupt_steps

(* The canonical successor order: identical to the reference engine's
   [sort_uniq Stdlib.compare] over [(Step.t * Proc.t)] pairs, because
   [Hproc.compare_structural] mirrors [Stdlib.compare] on [Proc.t]. *)
let h_pair_compare (s1, t1) (s2, t2) =
  let c = Stdlib.compare (s1 : Step.t) s2 in
  if c <> 0 then c else Hproc.compare_structural t1 t2

let h_dedup steps = List.sort_uniq h_pair_compare steps

let h_steps ?cache defs p =
  let cache = match cache with Some c -> c | None -> make_cache () in
  h_dedup (h_steps_at cache 0 defs p)

let h_prioritized ?cache defs p = Step.prioritize (h_steps ?cache defs p)

(* A process is time-stopped when no enabled (prioritized) step advances
   time; deadlocks are a special case.  Useful as a diagnostic. *)
let is_time_stopped defs p =
  not (List.exists (fun (s, _) -> Step.is_timed s) (prioritized defs p))
