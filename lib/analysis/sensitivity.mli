(** Sensitivity analysis: the breakdown execution time of a thread — the
    largest cet that keeps the whole system schedulable — found by binary
    search over exploration verdicts.

    Probes are incremental: all points of a search or sweep share one
    {!Translate.Fragment_cache}, so each point re-generates only the
    perturbed thread's fragment and reuses every other translation unit
    (reported by the per-point and aggregate reuse counters). *)

type point = {
  cet : int;
  schedulable : bool;
  fragments_reused : int;
  fragments_rebuilt : int;
}

type t = {
  thread : string list;
  original_cmax : int;
  breakdown_cmax : int option;
  slack : int option;
  probes : int;
  fragments_reused : int;
  fragments_rebuilt : int;
}

type options = {
  schedulability : Schedulability.options;
  max_cmax : int option;
  reuse : bool;
      (** share fragments across probe points (default [true]);
          [false] is the from-scratch baseline *)
}

val default_options : options

exception Error of string

val with_cet :
  quantum:Aadl.Time.t ->
  thread:string list ->
  cet:int ->
  Aadl.Instance.t ->
  Aadl.Instance.t
(** A copy of the instance tree with the thread's
    [Compute_Execution_Time] overridden to [cet] quanta. *)

val sweep :
  ?options:options ->
  thread:string list ->
  cets:int list ->
  Aadl.Instance.t ->
  point list
(** One verdict per requested cet, in order, re-translating only what
    each perturbation touched. *)

val breakdown :
  ?options:options -> thread:string list -> Aadl.Instance.t -> t

val pp : t Fmt.t

val pp_reuse : t Fmt.t
(** ["N probes: N fragments rebuilt, N reused"]. *)

val pp_point : point Fmt.t
