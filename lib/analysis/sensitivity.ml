(* Sensitivity analysis: how much can a thread's execution time grow
   before the system stops being schedulable?

   The exploration verdict is a monotone function of each thread's
   execution time (more computation can only add behaviours that miss
   deadlines: the Compute process's completion window only moves right),
   so binary search over a synthetic Compute_Execution_Time override
   finds the breakdown point exactly.  This is the "design exploration"
   use the paper's introduction motivates: analyze alternatives early, at
   the architecture level.

   Every probe re-translates the model with one thread's cet changed —
   the motivating case for the fragment IR: all probes share one
   Fragment_cache, so each point re-generates only the perturbed
   thread's skeleton/dispatcher fragment (its digest covers cmin/cmax)
   and reuses every other unit by physical identity.  The sweep quantum
   is pinned before probing so digests stay comparable across points. *)

type point = {
  cet : int;  (** quanta *)
  schedulable : bool;
  fragments_reused : int;
  fragments_rebuilt : int;
}

type t = {
  thread : string list;
  original_cmax : int;  (** quanta *)
  breakdown_cmax : int option;
      (** the largest cet (quanta) that keeps the whole system
          schedulable; [None] when the system is unschedulable already at
          cet = 1 *)
  slack : int option;  (** breakdown - original, when both exist *)
  probes : int;  (** exploration runs performed by the search *)
  fragments_reused : int;  (** across all probes *)
  fragments_rebuilt : int;
}

type options = {
  schedulability : Schedulability.options;
  max_cmax : int option;
      (** search ceiling; defaults to the thread's deadline *)
  reuse : bool;
      (** share a {!Translate.Fragment_cache} across probe points
          (default true); [false] re-generates every fragment at every
          point — the from-scratch baseline *)
}

let default_options =
  {
    schedulability = Schedulability.default_options;
    max_cmax = None;
    reuse = true;
  }

exception Error of string

(* Rebuild the workload with the thread's cet forced to [cet] quanta, by
   overriding the instance property before translation.  We synthesize a
   property in quanta-sized time units appended to the thread's
   association list (later associations win). *)
let with_cet ~(quantum : Aadl.Time.t) ~(thread : string list) ~cet
    (root : Aadl.Instance.t) : Aadl.Instance.t =
  let cet_time = Aadl.Time.of_ns (cet * Aadl.Time.to_ns quantum) in
  let prop =
    {
      Aadl.Ast.pname = "compute_execution_time";
      pvalue = Aadl.Ast.Ptime cet_time;
      applies_to = [];
      ploc = Aadl.Ast.no_loc;
    }
  in
  let rec update (inst : Aadl.Instance.t) path =
    match path with
    | [] -> { inst with Aadl.Instance.props = inst.Aadl.Instance.props @ [ prop ] }
    | seg :: rest ->
        {
          inst with
          Aadl.Instance.children =
            List.map
              (fun (c : Aadl.Instance.t) ->
                if
                  String.lowercase_ascii c.Aadl.Instance.name
                  = String.lowercase_ascii seg
                then update c rest
                else c)
              inst.Aadl.Instance.children;
        }
  in
  update root thread

let probes_total =
  Obs.Counter.make ~help:"Sensitivity probe points explored"
    "analysis_sensitivity_probes_total"

(* The per-probe fragment reuse/rebuild split lands in the registry via
   the pipeline's translate_fragments_* counters; here we only count the
   probes themselves and bracket each with a span. *)
let probe ~options ~cache ~quantum ~thread ~cet root : point =
  Obs.Counter.incr probes_total;
  Obs.Span.with_ ~name:"sensitivity.probe"
    ~attrs:[ ("cet", string_of_int cet) ]
  @@ fun () ->
  let root' = with_cet ~quantum ~thread ~cet root in
  let sched_options =
    {
      options.schedulability with
      Schedulability.translation_options =
        {
          options.schedulability.Schedulability.translation_options with
          Translate.Pipeline.quantum = Some quantum;
        };
    }
  in
  match
    Translate.Pipeline.translate
      ~options:sched_options.Schedulability.translation_options ?cache root'
  with
  | exception Translate.Pipeline.Error _ ->
      (* cet beyond the deadline is trivially unschedulable *)
      { cet; schedulable = false; fragments_reused = 0; fragments_rebuilt = 0 }
  | tr ->
      let r = Schedulability.analyze_translation ~options:sched_options tr in
      {
        cet;
        schedulable = Schedulability.is_schedulable r;
        fragments_reused = tr.Translate.Pipeline.fragments_reused;
        fragments_rebuilt =
          List.length tr.Translate.Pipeline.fragments
          - tr.Translate.Pipeline.fragments_reused;
      }

let resolved_quantum ~options root =
  match
    options.schedulability.Schedulability.translation_options
      .Translate.Pipeline.quantum
  with
  | Some q -> q
  | None -> Translate.Workload.suggest_quantum root

let fragment_cache options =
  if options.reuse then Some (Translate.Fragment_cache.create ()) else None

let sweep ?(options = default_options) ~(thread : string list) ~(cets : int list)
    (root : Aadl.Instance.t) : point list =
  let quantum = resolved_quantum ~options root in
  let wl = Translate.Workload.extract ~quantum root in
  if Translate.Workload.find_task wl thread = None then
    raise
      (Error (Fmt.str "no thread %a in the model" Aadl.Instance.pp_path thread));
  let cache = fragment_cache options in
  List.map (fun cet -> probe ~options ~cache ~quantum ~thread ~cet root) cets

let breakdown ?(options = default_options) ~(thread : string list)
    (root : Aadl.Instance.t) : t =
  let quantum = resolved_quantum ~options root in
  let wl = Translate.Workload.extract ~quantum root in
  let task =
    match Translate.Workload.find_task wl thread with
    | Some t -> t
    | None ->
        raise
          (Error
             (Fmt.str "no thread %a in the model" Aadl.Instance.pp_path thread))
  in
  let original_cmax = task.Translate.Workload.cmax in
  let ceiling =
    match options.max_cmax with
    | Some m -> m
    | None -> task.Translate.Workload.deadline
  in
  let cache = fragment_cache options in
  let probes = ref 0 and reused = ref 0 and rebuilt = ref 0 in
  let ok cet =
    let p = probe ~options ~cache ~quantum ~thread ~cet root in
    incr probes;
    reused := !reused + p.fragments_reused;
    rebuilt := !rebuilt + p.fragments_rebuilt;
    p.schedulable
  in
  let result breakdown_cmax slack =
    {
      thread;
      original_cmax;
      breakdown_cmax;
      slack;
      probes = !probes;
      fragments_reused = !reused;
      fragments_rebuilt = !rebuilt;
    }
  in
  if not (ok 1) then result None None
  else begin
    (* largest passing cet in [1, ceiling]: binary search on the monotone
       boundary *)
    let rec search lo hi =
      (* invariant: lo passes; hi + 1 fails or hi = ceiling *)
      if lo >= hi then lo
      else
        let mid = (lo + hi + 1) / 2 in
        if ok mid then search mid hi else search lo (mid - 1)
    in
    let b = search 1 ceiling in
    result (Some b) (Some (b - original_cmax))
  end

let pp ppf t =
  match t.breakdown_cmax with
  | None ->
      Fmt.pf ppf "%a: unschedulable even at cet=1 (original %d)"
        Aadl.Instance.pp_path t.thread t.original_cmax
  | Some b ->
      Fmt.pf ppf "%a: cet %d, breakdown %d (slack %d quanta)"
        Aadl.Instance.pp_path t.thread t.original_cmax b
        (Option.value t.slack ~default:0)

let pp_reuse ppf t =
  Fmt.pf ppf "%d probes: %d fragments rebuilt, %d reused" t.probes
    t.fragments_rebuilt t.fragments_reused

let pp_point ppf p =
  Fmt.pf ppf "cet %d: %s (%d fragments rebuilt, %d reused)" p.cet
    (if p.schedulable then "schedulable" else "NOT schedulable")
    p.fragments_rebuilt p.fragments_reused
