(* End-to-end latency analysis via observer processes (paper, Section 5).

   An observer is "triggered by an input event and, just like a dispatcher
   process, deadlocks if the output event is not observed by the flow
   deadline".  We realize the trigger and target as probe events injected
   into the translated model: the dispatch of the flow's first thread and
   the completion of its last thread.  The observer is composed in
   parallel and the probe labels are restricted, forcing it to see every
   occurrence.

   The observer is non-pipelined: while a flow instance is being tracked,
   further triggers are absorbed without starting a new measurement (the
   paper notes pipelined flows need dynamically spawned observers). *)

open Acsr

type verdict =
  | Latency_met
  | Latency_violated of { scenario : Raise_trace.t; trace : Versa.Trace.t }
  | Latency_inconclusive of string

type t = {
  verdict : verdict;
  bound : int;  (** quanta *)
  exploration : Versa.Explorer.result;
}

let observer_name = "Obs_flow"
let observer_wait = "Obs_flow_wait"

(* Obs       = start?.Wait(0) + end?.Obs + {}:Obs
   Wait(k)   = end?.Obs + start?.Wait(k) + [k < L] {}:Wait(k+1)
   At k = L with the end event unavailable the observer refuses to let
   time pass: a deadlock, reported as the latency violation. *)
let observer_defs ~start_l ~end_l ~bound =
  let var_k = Expr.Var "k" in
  let idle_to k = Proc.act Action.idle k in
  let main_body =
    Proc.choice_list
      [
        Proc.receive start_l (Proc.call observer_wait [ Expr.Int 0 ]);
        Proc.receive end_l (Proc.call observer_name []);
        idle_to (Proc.call observer_name []);
      ]
  in
  let wait_body =
    Proc.choice_list
      [
        Proc.receive end_l (Proc.call observer_name []);
        Proc.receive start_l (Proc.call observer_wait [ var_k ]);
        Proc.if_
          Guard.(lt var_k (Expr.Int bound))
          (idle_to (Proc.call observer_wait [ Expr.Add (var_k, Expr.Int 1) ]));
      ]
  in
  [ (observer_name, [], main_body); (observer_wait, [ "k" ], wait_body) ]

type options = {
  translation_options : Translate.Pipeline.options;
  max_states : int;
  jobs : int;  (** domains for parallel exploration *)
  engine : Versa.Explorer.engine;
}

let default_options =
  {
    translation_options = Translate.Pipeline.default_options;
    max_states = 2_000_000;
    jobs = 1;
    engine = Versa.Explorer.On_the_fly;
  }

exception Error of string

let check ?(options = default_options) ~(from_thread : string list)
    ~(to_thread : string list) ~(bound : Aadl.Time.t)
    (root : Aadl.Instance.t) : t =
  let start_l = Label.make "flow_start" in
  let end_l = Label.make "flow_end" in
  let probes =
    [
      {
        Translate.Pipeline.probe_thread = from_thread;
        probe_point = Translate.Pipeline.Dispatched;
        probe_label = start_l;
      };
      {
        Translate.Pipeline.probe_thread = to_thread;
        probe_point = Translate.Pipeline.Completed;
        probe_label = end_l;
      };
    ]
  in
  let t_options =
    { options.translation_options with Translate.Pipeline.probes }
  in
  let tr = Translate.Pipeline.translate ~options:t_options root in
  let quantum = tr.Translate.Pipeline.workload.Translate.Workload.quantum in
  let bound_q = Aadl.Time.to_quanta_floor ~quantum bound in
  if bound_q <= 0 then
    raise (Error "latency bound is smaller than the scheduling quantum");
  (* verify the probes were actually attached *)
  (match
     ( Translate.Workload.find_task tr.Translate.Pipeline.workload from_thread,
       Translate.Workload.find_task tr.Translate.Pipeline.workload to_thread )
   with
  | Some _, Some _ -> ()
  | None, _ ->
      raise
        (Error
           (Fmt.str "no thread %a in the model" Aadl.Instance.pp_path
              from_thread))
  | _, None ->
      raise
        (Error
           (Fmt.str "no thread %a in the model" Aadl.Instance.pp_path
              to_thread)));
  let defs =
    List.fold_left
      (fun env (name, formals, body) -> Defs.add env ~name ~formals body)
      tr.Translate.Pipeline.defs
      (observer_defs ~start_l ~end_l ~bound:bound_q)
  in
  let system =
    Proc.restrict
      (Label.Set.of_list [ start_l; end_l ])
      (Proc.par tr.Translate.Pipeline.system (Proc.call observer_name []))
  in
  (* The observer question is plain reachability of the deadlocked
     observer state, so the compact on-the-fly engine is the default:
     both engines produce identical verdicts and shortest
     counterexamples, and no caller walks the graph afterwards
     ([Response.worst_response] bisects over verdicts only).  [Full]
     remains available for graph consumers (DOT export). *)
  let exploration =
    Versa.Explorer.check_deadlock ~engine:options.engine
      ~max_states:options.max_states ~jobs:options.jobs defs system
  in
  let verdict =
    match exploration.Versa.Explorer.verdict with
    | Versa.Explorer.Deadlock_free -> Latency_met
    | Versa.Explorer.Deadlock { trace; _ } ->
        Latency_violated
          {
            scenario =
              Raise_trace.raise_trace
                ~registry:tr.Translate.Pipeline.registry trace;
            trace;
          }
    | Versa.Explorer.Inconclusive reason -> Latency_inconclusive reason
  in
  { verdict; bound = bound_q; exploration }

let pp_verdict ppf = function
  | Latency_met -> Fmt.string ppf "latency bound met on every path"
  | Latency_violated { scenario; _ } ->
      Fmt.pf ppf "@[<v>latency VIOLATED; scenario:@,%a@]" Raise_trace.pp
        scenario
  | Latency_inconclusive reason -> Fmt.pf ppf "inconclusive: %s" reason

let pp ppf t =
  Fmt.pf ppf "@[<v>bound=%d quanta: %a@]" t.bound pp_verdict t.verdict
