(* The top-level schedulability analysis of AADL models: translate to
   ACSR, explore the prioritized state space, and report the verdict,
   raising failing scenarios back to AADL terms (paper, Section 5:
   "the resulting ACSR model is deadlock-free if and only if every task
   meets its deadline"). *)

type verdict =
  | Schedulable
  | Not_schedulable of {
      scenario : Raise_trace.t;
      trace : Versa.Trace.t;
    }
  | Inconclusive of string

type t = {
  translation : Translate.Pipeline.t;
  exploration : Versa.Explorer.result;
  verdict : verdict;
}

type options = {
  translation_options : Translate.Pipeline.options;
  max_states : int;
  all_violations : bool;
      (** explore exhaustively instead of stopping at the first deadlock *)
  jobs : int;  (** domains for parallel successor computation *)
  engine : Versa.Explorer.engine;
      (** [On_the_fly] (the default) answers the yes/no question with the
          compact early-exit engine; [Full] materializes the graph for
          callers that walk it afterwards (latency queries, DOT export) *)
  deadline : float option;
      (** absolute wall-clock budget for the exploration
          ({!Versa.Lts.build_config}); past it the verdict is
          [Inconclusive] and callers may degrade to analytic passes
          ({!Fallback}) *)
  poll : (unit -> bool) option;
      (** cooperative cancellation hook threaded into the exploration *)
  symmetry : bool;
      (** orbit reduction: canonicalize states up to permutation of
          interchangeable thread units before the visited-set lookup
          (default [true]).  Auto-off when the translation found no
          interchangeable units ([Pipeline.symmetry] is empty), so it
          never costs anything on asymmetric models.  Verdicts and
          scenario lengths are identical either way; only visited-state
          counts shrink. *)
}

let default_options =
  {
    translation_options = Translate.Pipeline.default_options;
    max_states = 2_000_000;
    all_violations = false;
    jobs = 1;
    engine = Versa.Explorer.On_the_fly;
    deadline = None;
    poll = None;
    symmetry = true;
  }

let analyze_translation ~options (tr : Translate.Pipeline.t) : t =
  let symmetry =
    if options.symmetry then tr.Translate.Pipeline.symmetry
    else Acsr.Symmetry.empty
  in
  let exploration =
    Versa.Explorer.check_deadlock ~engine:options.engine
      ~max_states:options.max_states
      ~stop_at_deadlock:(not options.all_violations)
      ~jobs:options.jobs ?deadline:options.deadline ?poll:options.poll
      ~symmetry tr.Translate.Pipeline.defs tr.Translate.Pipeline.system
  in
  let verdict =
    match exploration.Versa.Explorer.verdict with
    | Versa.Explorer.Deadlock_free -> Schedulable
    | Versa.Explorer.Deadlock { trace; _ } ->
        Not_schedulable
          {
            scenario =
              Raise_trace.raise_trace
                ~registry:tr.Translate.Pipeline.registry trace;
            trace;
          }
    | Versa.Explorer.Inconclusive reason -> Inconclusive reason
  in
  { translation = tr; exploration; verdict }

let analyze ?(options = default_options) (root : Aadl.Instance.t) : t =
  let tr =
    Translate.Pipeline.translate ~options:options.translation_options root
  in
  analyze_translation ~options tr

let is_schedulable t =
  match t.verdict with
  | Schedulable -> true
  | Not_schedulable _ | Inconclusive _ -> false

(* All deadline-violation scenarios of an exhaustive exploration, one per
   deadlock state.  Both engines retain enough to rebuild every shortest
   counterexample path. *)
let all_scenarios t =
  List.map
    (fun state ->
      Raise_trace.raise_trace ~registry:t.translation.Translate.Pipeline.registry
        (Versa.Explorer.trace_to t.exploration state))
    (Versa.Explorer.deadlocks t.exploration)

let pp_verdict ppf = function
  | Schedulable -> Fmt.string ppf "schedulable: all deadlines are met"
  | Not_schedulable { scenario; _ } ->
      Fmt.pf ppf
        "@[<v>NOT schedulable: timing violation at t=%d; failing \
         scenario:@,%a@]"
        scenario.Raise_trace.violation_time Raise_trace.pp scenario
  | Inconclusive reason -> Fmt.pf ppf "inconclusive: %s" reason

let pp ppf t =
  Fmt.pf ppf "@[<v>%a@,state space: %a (%.3fs)@,%a@]"
    Translate.Pipeline.pp_summary t.translation Versa.Explorer.pp_space
    t.exploration.Versa.Explorer.space t.exploration.Versa.Explorer.elapsed
    pp_verdict t.verdict
