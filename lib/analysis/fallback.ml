(* Analytic fallback verdicts: the bottom rung of the degradation
   ladder.  A budget-exhausted exploration leaves the exact question
   open; the classical per-processor tests still answer in microseconds
   on the extracted workload, so a starved job reports an analytic bound
   instead of nothing.

   Per processor, the ladder picks the strongest applicable test for the
   scheduling protocol in effect:

     fixed priority (RM/DM/HPF)  ->  exact RTA, else the Liu-Layland /
                                     utilization bound
     dynamic (EDF/LLF)           ->  exact processor-demand analysis,
                                     else U <= 1
     hierarchical / none decide  ->  unknown

   The composition over processors is conservative: one provably
   overloaded processor makes the system analytically unschedulable; one
   undecided processor makes it unknown; only if every processor passes
   an applicable test is the system "likely schedulable".  The tests
   assume independent periodic tasks per processor, so shared-data
   contention and queue interactions are invisible here — which is
   exactly why the verdict is qualified as a bound, not a proof. *)

type verdict =
  | Likely_schedulable of string
  | Analytically_unschedulable of string
  | Unknown of string

type t = {
  verdict : verdict;
  per_processor : (string * string) list;
}

(* One processor: (outcome, test name, one-line summary). *)
type proc_outcome = Sched | Unsched | Undecided

let utilization_outcome (u : Utilization.t) ~bound_name =
  match u.Utilization.verdict with
  | Utilization.Schedulable ->
      (Sched, bound_name, Fmt.str "%s: U=%.3f <= %.3f" bound_name u.Utilization.utilization u.Utilization.bound)
  | Utilization.Overloaded ->
      (Unsched, "utilization", Fmt.str "utilization: U=%.3f > 1" u.Utilization.utilization)
  | Utilization.Unknown ->
      ( Undecided,
        bound_name,
        Fmt.str "%s inconclusive: U=%.3f in (%.3f, 1]" bound_name
          u.Utilization.utilization u.Utilization.bound )

let fixed_priority_outcome protocol tasks =
  let rta = Rta.analyze ~protocol tasks in
  if rta.Rta.applicable then
    if rta.Rta.schedulable then (Sched, "RTA", "RTA: all responses within deadlines")
    else (Unsched, "RTA", "RTA: a response time exceeds its deadline")
  else utilization_outcome (Utilization.rate_monotonic tasks) ~bound_name:"Liu-Layland bound"

let edf_outcome tasks =
  let d = Edf_demand.analyze tasks in
  if d.Edf_demand.applicable then
    if d.Edf_demand.schedulable then
      (Sched, "EDF demand", "EDF demand: h(t) <= t at every deadline")
    else
      ( Unsched,
        "EDF demand",
        match d.Edf_demand.first_violation with
        | Some v ->
            Fmt.str "EDF demand: h(%d)=%d > %d" v.Edf_demand.at
              v.Edf_demand.demand v.Edf_demand.at
        | None -> "EDF demand: demand exceeds capacity" )
  else utilization_outcome (Utilization.edf tasks) ~bound_name:"EDF utilization bound"

let processor_outcome ?force_protocol (proc : Aadl.Instance.t) tasks =
  let protocol =
    match force_protocol with
    | Some p -> Some p
    | None -> Aadl.Props.scheduling_protocol proc.Aadl.Instance.props
  in
  match protocol with
  | Some
      ((Aadl.Props.Rate_monotonic | Aadl.Props.Deadline_monotonic
       | Aadl.Props.Highest_priority_first) as p) ->
      fixed_priority_outcome p tasks
  | Some (Aadl.Props.Edf | Aadl.Props.Llf) -> edf_outcome tasks
  | Some Aadl.Props.Hierarchical ->
      (Undecided, "hierarchical", "no analytic test for hierarchical bands")
  | None ->
      (* the translation defaults unlabelled processors to RM *)
      fixed_priority_outcome Aadl.Props.Rate_monotonic tasks

let analyze ?force_protocol (wl : Translate.Workload.t) : t =
  let rows =
    List.map
      (fun ((proc : Aadl.Instance.t), tasks) ->
        let path = Fmt.str "%a" Aadl.Instance.pp_path proc.Aadl.Instance.path in
        let outcome, test, summary =
          processor_outcome ?force_protocol proc tasks
        in
        (path, outcome, test, summary))
      wl.Translate.Workload.by_processor
  in
  let per_processor =
    List.map (fun (path, _, _, summary) -> (path, summary)) rows
  in
  let verdict =
    match
      List.find_opt (fun (_, o, _, _) -> o = Unsched) rows,
      List.find_opt (fun (_, o, _, _) -> o = Undecided) rows
    with
    | Some (path, _, test, _), _ ->
        Analytically_unschedulable (Fmt.str "%s on processor %s" test path)
    | None, Some (path, _, test, _) ->
        Unknown (Fmt.str "%s undecided on processor %s" test path)
    | None, None ->
        if rows = [] then Unknown "no bound processors in the workload"
        else
          let tests =
            List.sort_uniq compare
              (List.map (fun (_, _, test, _) -> test) rows)
          in
          Likely_schedulable (String.concat "; " tests)
  in
  { verdict; per_processor }

let verdict_name = function
  | Likely_schedulable _ -> "likely_schedulable"
  | Analytically_unschedulable _ -> "analytically_unschedulable"
  | Unknown _ -> "unknown"

let pp ppf t =
  let head, detail =
    match t.verdict with
    | Likely_schedulable s -> ("likely schedulable (analytic bound)", s)
    | Analytically_unschedulable s -> ("analytically unschedulable", s)
    | Unknown s -> ("unknown", s)
  in
  Fmt.pf ppf "@[<v>%s: %s@,%a@]" head detail
    Fmt.(
      list ~sep:cut (fun ppf (p, s) -> pf ppf "  processor %s: %s" p s))
    t.per_processor
