(** Top-level schedulability analysis: translate, explore, report (paper,
    Section 5). *)

type verdict =
  | Schedulable
  | Not_schedulable of {
      scenario : Raise_trace.t;
      trace : Versa.Trace.t;
    }
  | Inconclusive of string

type t = {
  translation : Translate.Pipeline.t;
  exploration : Versa.Explorer.result;
  verdict : verdict;
}

type options = {
  translation_options : Translate.Pipeline.options;
  max_states : int;
  all_violations : bool;
  jobs : int;  (** domains for parallel exploration (default 1) *)
  engine : Versa.Explorer.engine;
      (** exploration engine (default [On_the_fly]): the compact
          early-exit checker for plain verdicts, or [Full] when the
          caller needs the materialized graph *)
  deadline : float option;
      (** absolute wall-clock budget (ambient [Timed.Clock] scale,
          default none): past it the exploration truncates and the verdict is
          [Inconclusive "wall-clock budget expired …"] — the hook the
          service layer's graceful degradation builds on *)
  poll : (unit -> bool) option;
      (** cooperative cancellation hook, checked between exploration
          merge steps (default none) *)
  symmetry : bool;
      (** orbit reduction (default [true]): explore one representative
          per permutation orbit of interchangeable thread units
          ({!Translate.Pipeline.t.symmetry}).  Auto-off when the model
          has no interchangeable units.  Verdicts, scenario contents and
          lengths are unaffected; visited-state counts shrink — see the
          symmetry section of {!Versa.Lts}. *)
}

val default_options : options

val analyze : ?options:options -> Aadl.Instance.t -> t
(** Translate and explore.  The model is schedulable iff the prioritized
    state space of the translation is deadlock-free. *)

val analyze_translation : options:options -> Translate.Pipeline.t -> t
(** Analyze an existing translation (e.g. with forced protocol). *)

val is_schedulable : t -> bool

val all_scenarios : t -> Raise_trace.t list
(** Every violation of an exhaustive ([all_violations]) exploration. *)

val pp_verdict : verdict Fmt.t
val pp : t Fmt.t
