(** End-to-end latency checking with observer processes (paper, Section 5).

    The observer measures from the dispatch of [from_thread] to the
    completion of [to_thread] and blocks (deadlocks) if the bound is
    exceeded.  Non-pipelined: one flow instance is tracked at a time.
    A deadline violation of the underlying model also surfaces as a
    deadlock here — check plain schedulability first to tell them apart. *)

type verdict =
  | Latency_met
  | Latency_violated of { scenario : Raise_trace.t; trace : Versa.Trace.t }
  | Latency_inconclusive of string

type t = {
  verdict : verdict;
  bound : int;
  exploration : Versa.Explorer.result;
}

type options = {
  translation_options : Translate.Pipeline.options;
  max_states : int;
  jobs : int;  (** domains for parallel exploration (default 1) *)
  engine : Versa.Explorer.engine;
      (** the observer only needs reachability of its blocked state, so
          the compact [On_the_fly] engine is the default (identical
          verdicts and counterexamples); pass [Full] to materialize the
          graph for inspection afterwards *)
}

val default_options : options

exception Error of string

val check :
  ?options:options ->
  from_thread:string list ->
  to_thread:string list ->
  bound:Aadl.Time.t ->
  Aadl.Instance.t ->
  t
(** @raise Error for unknown threads or a sub-quantum bound. *)

val pp_verdict : verdict Fmt.t
val pp : t Fmt.t
