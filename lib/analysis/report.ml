(* A self-contained markdown report of a full analysis: model inventory,
   per-processor utilization, the exploration verdict with its failing
   scenario, the classical baselines, and (optionally) observed response
   times.  This is the batch-friendly face of the OSATE-plugin work-flow
   the paper describes: one command, one artifact. *)

type options = {
  schedulability : Schedulability.options;
  with_responses : bool;
      (** also compute observed worst-case response times (one binary
          search of explorations per thread) *)
  title : string option;
}

let default_options =
  {
    schedulability = Schedulability.default_options;
    with_responses = false;
    title = None;
  }

let pf = Fmt.pf

let section ppf title = pf ppf "@.## %s@.@." title

let model_summary ppf (root : Aadl.Instance.t) =
  section ppf "Model";
  let count f = List.length (f root) in
  pf ppf "| component | count |@.|---|---|@.";
  pf ppf "| threads | %d |@." (count Aadl.Instance.threads);
  pf ppf "| processors | %d |@." (count Aadl.Instance.processors);
  pf ppf "| buses | %d |@." (count Aadl.Instance.buses);
  pf ppf "| devices | %d |@." (count Aadl.Instance.devices);
  pf ppf "| shared data | %d |@." (count Aadl.Instance.data_components);
  let sconns = Aadl.Semconn.resolve root in
  pf ppf "| semantic connections | %d |@." (List.length sconns);
  if Aadl.Instance.is_modal root then
    pf ppf "| modes | %d |@." (List.length root.Aadl.Instance.modes)

let task_table ppf (wl : Translate.Workload.t) =
  section ppf "Threads";
  pf ppf
    "| thread | dispatch | period | cet | deadline | processor |@.|---|---|---|---|---|---|@.";
  List.iter
    (fun (t : Translate.Workload.task) ->
      pf ppf "| %a | %a | %a | %s | %d | %a |@." Aadl.Instance.pp_path
        t.Translate.Workload.path Aadl.Props.pp_dispatch_protocol
        t.Translate.Workload.dispatch
        Fmt.(option ~none:(any "-") int)
        t.Translate.Workload.period
        (if t.Translate.Workload.cmin = t.Translate.Workload.cmax then
           string_of_int t.Translate.Workload.cmax
         else
           Printf.sprintf "[%d,%d]" t.Translate.Workload.cmin
             t.Translate.Workload.cmax)
        t.Translate.Workload.deadline Aadl.Instance.pp_path
        t.Translate.Workload.processor)
    wl.Translate.Workload.tasks;
  pf ppf "@.(durations in quanta of %a)@." Aadl.Time.pp
    wl.Translate.Workload.quantum

let processors ppf (wl : Translate.Workload.t) =
  section ppf "Processors";
  pf ppf "| processor | threads | U | RM bound | EDF demand |@.|---|---|---|---|---|@.";
  List.iter
    (fun ((proc : Aadl.Instance.t), tasks) ->
      let u = Translate.Workload.utilization tasks in
      let rm = Utilization.rate_monotonic tasks in
      let dem = Edf_demand.analyze tasks in
      pf ppf "| %a | %d | %.3f | %a | %s |@." Aadl.Instance.pp_path
        proc.Aadl.Instance.path (List.length tasks) u
        Utilization.pp_verdict rm.Utilization.verdict
        (if not dem.Edf_demand.applicable then "n/a"
         else if dem.Edf_demand.schedulable then "schedulable"
         else "overloaded"))
    wl.Translate.Workload.by_processor

let verdict ppf (result : Schedulability.t) =
  section ppf "Schedulability (ACSR exploration)";
  pf ppf "translation: %a@.@." Translate.Pipeline.pp_summary
    result.Schedulability.translation;
  pf ppf "state space: %a in %.3fs@.@." Versa.Explorer.pp_space
    result.Schedulability.exploration.Versa.Explorer.space
    result.Schedulability.exploration.Versa.Explorer.elapsed;
  match result.Schedulability.verdict with
  | Schedulability.Schedulable ->
      pf ppf "**Verdict: schedulable** — every deadline is met on every path.@."
  | Schedulability.Not_schedulable { scenario; _ } ->
      pf ppf "**Verdict: NOT schedulable** — violation at t=%d.@.@."
        scenario.Raise_trace.violation_time;
      pf ppf "Failing scenario:@.@.```@.%a@.```@." Raise_trace.pp scenario
  | Schedulability.Inconclusive why ->
      pf ppf "**Verdict: inconclusive** — %s.@." why

let baselines ppf protocol_of (wl : Translate.Workload.t) =
  section ppf "Classical baselines";
  List.iter
    (fun ((proc : Aadl.Instance.t), tasks) ->
      pf ppf "### %a@.@." Aadl.Instance.pp_path proc.Aadl.Instance.path;
      match protocol_of proc with
      | None -> pf ppf "(no scheduling protocol)@."
      | Some protocol -> (
          pf ppf "```@.%a@.```@.@." Rta.pp (Rta.analyze ~protocol tasks);
          match Simulator.simulate ~protocol tasks with
          | sim -> pf ppf "```@.simulation: %a@.```@." Simulator.pp sim
          | exception Simulator.Not_simulable why ->
              pf ppf "simulation: n/a (%s)@." why))
    wl.Translate.Workload.by_processor

let responses ppf ~options (root : Aadl.Instance.t)
    (wl : Translate.Workload.t) =
  section ppf "Observed worst-case response times";
  pf ppf "| thread | observed | deadline |@.|---|---|---|@.";
  List.iter
    (fun (t : Translate.Workload.task) ->
      match
        Response.worst_response
          ~options:
            {
              Latency.translation_options =
                options.schedulability.Schedulability.translation_options;
              max_states = options.schedulability.Schedulability.max_states;
              jobs = options.schedulability.Schedulability.jobs;
              engine = Latency.default_options.Latency.engine;
            }
          ~thread:t.Translate.Workload.path root
      with
      | r ->
          pf ppf "| %a | %a | %d |@." Aadl.Instance.pp_path
            t.Translate.Workload.path
            Fmt.(option ~none:(any "misses deadline") int)
            r.Response.response t.Translate.Workload.deadline
      | exception Latency.Error why ->
          pf ppf "| %a | error: %s | %d |@." Aadl.Instance.pp_path
            t.Translate.Workload.path why t.Translate.Workload.deadline)
    wl.Translate.Workload.tasks

let generate ?(options = default_options) (root : Aadl.Instance.t) : string =
  let buf = Buffer.create 4096 in
  let ppf = Fmt.with_buffer buf in
  let result =
    Schedulability.analyze ~options:options.schedulability root
  in
  let wl =
    result.Schedulability.translation.Translate.Pipeline.workload
  in
  pf ppf "# %s@."
    (Option.value options.title ~default:"Schedulability analysis report");
  model_summary ppf root;
  task_table ppf wl;
  processors ppf wl;
  verdict ppf result;
  let protocol_of (proc : Aadl.Instance.t) =
    match
      options.schedulability.Schedulability.translation_options
        .Translate.Pipeline.force_protocol
    with
    | Some p -> Some p
    | None -> Aadl.Props.scheduling_protocol proc.Aadl.Instance.props
  in
  baselines ppf protocol_of wl;
  if options.with_responses then responses ppf ~options root wl;
  Fmt.flush ppf ();
  Buffer.contents buf

let write_file ?options path root =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (generate ?options root))
