(** Analytic fallback verdicts for budget-exhausted explorations.

    When an exploration runs out of its state or wall-clock budget the
    exact answer is [Inconclusive] — but the classical per-processor
    tests ({!Rta}, {!Edf_demand}, {!Utilization}) still run in
    microseconds on the extracted workload.  This module composes them
    into one qualified verdict, the bottom rung of the service layer's
    degradation ladder: a budget-starved job answers with an analytic
    bound instead of hanging or giving up entirely.

    The analytic passes reason per processor over independent periodic
    tasks: they do not see cross-processor shared-data contention,
    queues, or mode interleavings (the situations where only the
    exploration is exact — see the shared-data experiment, E8).  A
    fallback verdict is therefore a {e bound}, never a proof, and is
    reported as such. *)

type verdict =
  | Likely_schedulable of string
      (** every processor passes an applicable analytic test; the string
          names the tests (e.g. "RTA; EDF demand") *)
  | Analytically_unschedulable of string
      (** some processor fails a necessary condition (exact RTA miss,
          EDF demand overflow, utilization > 1); the string names the
          processor and test *)
  | Unknown of string
      (** no applicable test decides (e.g. hierarchical bands, aperiodic
          tasks outside every test's domain) *)

type t = {
  verdict : verdict;
  per_processor : (string * string) list;
      (** processor path |-> one-line summary of the test applied *)
}

val analyze :
  ?force_protocol:Aadl.Props.scheduling_protocol -> Translate.Workload.t -> t
(** Run the analytic ladder on every processor of the workload.  The
    protocol is [force_protocol] if given, else the processor's
    [Scheduling_Protocol], else rate-monotonic (the translation's own
    default). *)

val verdict_name : verdict -> string
(** ["likely_schedulable"], ["analytically_unschedulable"] or
    ["unknown"] — the stable tag used in service JSON. *)

val pp : t Fmt.t
