(** A digest-addressed, thread-safe store of realized fragments:
    unchanged translation units are reused by physical identity across
    translations (sweep points, batch jobs), feeding [Acsr.Hproc]
    hash-consing with already-interned subterms. *)

type t

val create : unit -> t

val find_or_realize : t -> Fragment.spec -> Fragment.t * bool
(** The cached fragment for the spec's digest, or the freshly realized
    one (stored for next time).  The boolean is [true] on reuse.
    Non-cacheable specs ({!Fragment.spec_cacheable}) bypass the store
    and always realize. *)

type counters = { hits : int; misses : int; size : int }

val counters : t -> counters
val clear : t -> unit
val pp_counters : counters Fmt.t
