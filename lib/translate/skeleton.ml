(* The ACSR skeleton of a thread component (paper, Figures 4 and 5).

   For single-mode models (the scope of the paper's translation), the
   semantic automaton of Fig. 4 reduces to the dispatch cycle:

     AwaitDispatch --dispatch?--> Compute(0,0) --...--> emit --done!--> AwaitDispatch

   Compute(e,t) follows Fig. 5: [e] accumulates execution quanta, [t]
   counts quanta since dispatch.  A computing step claims the processor
   resource at the priority mandated by the scheduling policy (possibly an
   expression over [e] and [t]); a preempted quantum advances [t] only.
   The process may exit once [e] reaches cmin and must exit at cmax.

   Outgoing connections refine the skeleton (Section 4.4):
   - connections mapped to a bus make the final computation steps claim
     the bus resource as well ("the last computation step ... uses both
     cpu and bus");
   - event-data connections send their queueing event when computation
     completes (the paper's default treatment);
   - pure event connections may raise events at any time during
     computation: a communication self-loop on the Compute state.

   Deadline violations are detected by the dispatcher (Fig. 6), which
   blocks when [done] does not arrive in time; the skeleton itself never
   deadlocks. *)

open Acsr

type t = {
  defs : (string * string list * Proc.t) list;
  initial : Proc.t;  (** the AwaitDispatch state *)
  dispatch : Label.t;
  done_ : Label.t;
  internal_labels : Label.t list;
      (** labels to restrict at the system level *)
}

let var_e = Expr.Var "e"
let var_t = Expr.Var "t"

let generate ?(scope : Naming.scope option) ?(extra_anytime : Label.t list = [])
    ~(completion_probes : Label.t list)
    ~(registry : Naming.registry) ~(task : Workload.task)
    ~(cpu_priority : Expr.t) () : t =
  (* Generated names come from scope-qualified paths (collision-proof);
     registry meanings always record the real AADL identity. *)
  let spath p = match scope with Some s -> Naming.scoped_path s p | None -> p in
  let sconn c = match scope with Some s -> Naming.scoped_conn s c | None -> c in
  let path = spath task.Workload.path in
  let cpu = Naming.processor_resource (spath task.Workload.processor) in
  Naming.register_resource registry cpu
    (Naming.Processor_use task.Workload.processor);
  let data_resources =
    List.map
      (fun d ->
        let r = Naming.data_resource (spath d) in
        Naming.register_resource registry r (Naming.Data_use d);
        r)
      task.Workload.data_shared
  in
  let bus_resources =
    List.map
      (fun b ->
        let r = Naming.bus_resource (spath b) in
        Naming.register_resource registry r (Naming.Bus_use b);
        r)
      task.Workload.out_buses
  in
  let dispatch = Naming.dispatch_label path in
  let done_ = Naming.done_label path in
  Naming.register_label registry dispatch (Naming.Dispatch_of task.Workload.path);
  Naming.register_label registry done_ (Naming.Done_of task.Workload.path);
  let await_name = Naming.thread_await path in
  let compute_name = Naming.thread_compute path in
  let emit_name = Naming.thread_emit path in
  (* Partition outgoing event-like connections by default treatment. *)
  let outgoing_events =
    List.filter Aadl.Semconn.is_event_like task.Workload.outgoing
  in
  let at_completion, anytime =
    List.partition
      (fun (sc : Aadl.Semconn.t) -> sc.Aadl.Semconn.kind = Aadl.Ast.Event_data_port)
      outgoing_events
  in
  let enqueue_label sc =
    let l = Naming.enqueue_label (sconn (Aadl.Semconn.name sc)) in
    Naming.register_label registry l (Naming.Enqueue_on (Aadl.Semconn.name sc));
    l
  in
  (* timed actions of the compute state *)
  let computing_action ~with_bus =
    let accesses =
      ((cpu, cpu_priority)
      :: List.map (fun r -> (r, cpu_priority)) data_resources)
      @
      if with_bus then List.map (fun r -> (r, Expr.Int 1)) bus_resources
      else []
    in
    Action.of_list accesses
  in
  let cmin = task.Workload.cmin and cmax = task.Workload.cmax in
  let deadline = task.Workload.deadline in
  (* [t] only influences dynamic priorities, and the dispatcher blocks at
     the deadline anyway: capping [t] keeps threads without a bounding
     dispatcher (e.g. background) finite-state. *)
  let tick t = Expr.Min (Expr.Add (t, Expr.Int 1), Expr.Int deadline) in
  let recurse ~e ~t = Proc.call compute_name [ e; t ] in
  (* The nondeterministic execution time in [cmin, cmax] is decided during
     the computation: any computing quantum that brings [e] into the
     completion window may either continue computing or be the last one.
     Branching on the timed action itself (rather than exiting through an
     urgent event afterwards) keeps both outcomes in the prioritized
     transition relation, and makes "the last computation step" a definite
     step: exactly there the bus resources of outgoing connections are
     claimed. *)
  let continue_branch =
    Proc.if_
      Guard.(lt var_e (Expr.Int (cmax - 1)))
      (Proc.act
         (computing_action ~with_bus:false)
         (recurse ~e:(Expr.Add (var_e, Expr.Int 1)) ~t:(tick var_t)))
  in
  let complete_branch =
    Proc.if_
      Guard.(
        conj (ge var_e (Expr.Int (cmin - 1))) (lt var_e (Expr.Int cmax)))
      (Proc.act (computing_action ~with_bus:true) (Proc.call emit_name []))
  in
  let preempted_branch =
    (* the thread cannot progress this quantum; only [t] advances.  The
       paper's Fig. 5 keeps the non-processor resources R in these steps;
       we release them instead to avoid blocking unrelated threads while
       preempted (see DESIGN.md). *)
    Proc.if_
      Guard.(lt var_e (Expr.Int cmax))
      (Proc.act Action.idle (recurse ~e:var_e ~t:(tick var_t)))
  in
  let anytime_branches =
    List.map
      (fun sc -> Proc.send (enqueue_label sc) (recurse ~e:var_e ~t:var_t))
      anytime
    @ List.map
        (fun l -> Proc.send l (recurse ~e:var_e ~t:var_t))
        extra_anytime
  in
  let compute_body =
    Proc.choice_list
      ([ continue_branch; complete_branch; preempted_branch ]
      @ anytime_branches)
  in
  (* emit: queue events of event-data connections, fire observer probes,
     then announce done *)
  let emit_body =
    List.fold_right
      (fun sc k -> Proc.send (enqueue_label sc) k)
      at_completion
      (List.fold_right
         (fun probe k -> Proc.send ~prio:(Expr.Int 1) probe k)
         completion_probes
         (Proc.send ~prio:(Expr.Int 1) done_ (Proc.call await_name [])))
  in
  let await_body =
    Proc.choice
      (Proc.receive dispatch (Proc.call compute_name [ Expr.Int 0; Expr.Int 0 ]))
      (Proc.act Action.idle (Proc.call await_name []))
  in
  let internal_labels =
    dispatch :: done_ :: List.map enqueue_label outgoing_events
  in
  {
    defs =
      [
        (await_name, [], await_body);
        (compute_name, [ "e"; "t" ], compute_body);
        (emit_name, [], emit_body);
      ];
    initial = Proc.call await_name [];
    dispatch;
    done_;
    internal_labels = List.sort_uniq Stdlib.compare internal_labels;
  }
