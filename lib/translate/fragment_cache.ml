(* A digest-addressed store of realized fragments.

   The cache returns the previously generated fragment by physical
   identity when a spec's digest matches, so re-translating a model
   after a local edit re-generates only the changed units.  Thread-safe:
   the sensitivity sweeps probe it from one domain, but the service
   layer shares one cache across worker domains. *)

type t = {
  table : (string, Fragment.t) Hashtbl.t;
  mutex : Mutex.t;
  mutable hits : int;
  mutable misses : int;
}

type counters = { hits : int; misses : int; size : int }

let create () = { table = Hashtbl.create 64; mutex = Mutex.create (); hits = 0; misses = 0 }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let find_or_realize t (spec : Fragment.spec) : Fragment.t * bool =
  if not (Fragment.spec_cacheable spec) then (Fragment.realize spec, false)
  else
  let digest = Fragment.spec_digest spec in
  let cached = with_lock t (fun () -> Hashtbl.find_opt t.table digest) in
  match cached with
  | Some frag ->
      with_lock t (fun () -> t.hits <- t.hits + 1);
      (frag, true)
  | None ->
      (* Realize outside the lock: generation can be slow and concurrent
         misses on distinct digests should not serialize.  A racing
         duplicate realization is benign (last write wins, both results
         are interchangeable). *)
      let frag = Fragment.realize spec in
      with_lock t (fun () ->
          t.misses <- t.misses + 1;
          Hashtbl.replace t.table digest frag);
      (frag, false)

let counters t =
  with_lock t (fun () ->
      { hits = t.hits; misses = t.misses; size = Hashtbl.length t.table })

let clear t =
  with_lock t (fun () ->
      Hashtbl.reset t.table;
      t.hits <- 0;
      t.misses <- 0)

let pp_counters ppf (c : counters) =
  Fmt.pf ppf "%d reused, %d generated, %d distinct fragments" c.hits c.misses
    c.size
