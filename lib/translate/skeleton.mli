(** ACSR thread skeletons (paper, Figures 4 and 5). *)

open Acsr

type t = {
  defs : (string * string list * Proc.t) list;
  initial : Proc.t;
  dispatch : Label.t;
  done_ : Label.t;
  internal_labels : Label.t list;
}

val generate :
  ?scope:Naming.scope ->
  ?extra_anytime:Label.t list ->
  completion_probes:Label.t list ->
  registry:Naming.registry ->
  task:Workload.task ->
  cpu_priority:Expr.t ->
  unit ->
  t
(** Generate the await/compute/emit process definitions for a thread: the
    dispatch cycle of Fig. 4 reduced to single-mode models, with the
    parameterized Compute process of Fig. 5 ([e] = accumulated execution,
    [t] = time since dispatch, capped at the deadline).  When [scope] is
    given, generated names are collision-proofed through it; registry
    meanings always record the real AADL paths. *)
