(* The content-hashed intermediate representation of the translation.

   The paper's Algorithm 1 is per-component: each thread contributes a
   skeleton + dispatcher, each queued connection a queue process, each
   device-driven connection a stimulus, and the system is their parallel
   composition under restriction.  A [Fragment.t] materializes one such
   unit together with (a) the registry entries that map its generated
   names back to AADL, (b) the labels it asks the composition to
   restrict, and (c) a digest of exactly the instance slice and derived
   parameters its ACSR terms were computed from.

   Planning is cheap and total: [plan] walks the checked model and
   produces one [spec] per unit, each carrying its digest and a thunk
   that generates the fragment.  Realizing specs through a
   {!Fragment_cache} lets an unchanged component reuse the previously
   generated fragment by physical identity — which feeds [Acsr.Hproc]
   hash-consing directly, since physically equal [Proc.t] subterms intern
   to the same hash-consed node without re-walking them. *)

open Acsr

exception Error of string

(* {1 Translation options} (the types [Pipeline] re-exports) *)

type probe_point = Dispatched | Completed

type probe = {
  probe_thread : string list;
  probe_point : probe_point;
  probe_label : Label.t;
}

type options = {
  quantum : Aadl.Time.t option;
  force_protocol : Aadl.Props.scheduling_protocol option;
  probes : probe list;
}

let default_options = { quantum = None; force_protocol = None; probes = [] }

let probes_for options path point =
  List.filter_map
    (fun p ->
      if
        p.probe_point = point
        && List.map String.lowercase_ascii p.probe_thread
           = List.map String.lowercase_ascii path
      then Some p.probe_label
      else None)
    options.probes

(* {1 Fragments} *)

type kind = Thread_unit | Queue | Stimulus | Modal_manager

type t = {
  kind : kind;
  id : string;
  digest : string;
  sym_digest : string;
  cacheable : bool;
  defs : (string * string list * Proc.t) list;
  initials : Proc.t list;
  restricted : Label.t list;
  entries : (string * Naming.meaning) list;
}

type spec = {
  spec_kind : kind;
  spec_id : string;
  spec_digest : string;
  spec_cacheable : bool;
  build : unit -> t;
}

type plan = {
  root : Aadl.Instance.t;
  workload : Workload.t;
  assignments : (string list * Sched_policy.assignment list) list;
  specs : spec list;
}

let spec_id s = s.spec_id
let spec_digest s = s.spec_digest
let spec_cacheable s = s.spec_cacheable

let realize (s : spec) : t =
  try s.build () with Dispatcher.Invalid msg -> raise (Error msg)

(* {2 Digests}

   A digest covers every input the generation thunk reads: the task
   record fields, the scope-resolved names (so a collision-induced
   qualification changes the digest), the priority expression assigned by
   the scheduling policy (so a sibling's parameter change that shifts
   this thread's priority correctly invalidates it), probe and trigger
   labels, and queue/stimulus parameters.  The field separator cannot
   occur in sanitized names, and list sections are length-prefixed, so
   distinct inputs cannot alias. *)

let digest_of parts =
  Digest.to_hex (Digest.string (String.concat "\x1f" parts))

let section tag items = (tag ^ "#" ^ string_of_int (List.length items)) :: items

let opt_int = function None -> "-" | Some i -> string_of_int i

let dispatch_tag = function
  | Aadl.Props.Periodic -> "periodic"
  | Aadl.Props.Aperiodic -> "aperiodic"
  | Aadl.Props.Sporadic -> "sporadic"
  | Aadl.Props.Background -> "background"

let overflow_tag = function
  | Aadl.Props.Drop_newest -> "dropn"
  | Aadl.Props.Drop_oldest -> "dropo"
  | Aadl.Props.Error -> "error"

(* {2 Planning} *)

let is_thread_at root path =
  match Aadl.Instance.find root path with
  | Some i -> i.Aadl.Instance.category = Aadl.Ast.Thread
  | None -> false

let is_device_at root path =
  match Aadl.Instance.find root path with
  | Some i -> i.Aadl.Instance.category = Aadl.Ast.Device
  | None -> false

let dedup_by key items =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun item ->
      let k = key item in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    items

(* priority assignment rule per processor (Section 5); hierarchical
   scheduling groups a processor's threads by their nearest
   process-category ancestor, ranked by the process's Priority property,
   with the process's own Scheduling_Protocol as the local policy *)
let hierarchical_groups root tasks =
  let group_host (task : Workload.task) =
    (* nearest ancestor of category Process on the thread's path *)
    let rec walk inst path best =
      match path with
      | [] -> best
      | seg :: rest -> (
          match
            List.find_opt
              (fun (c : Aadl.Instance.t) ->
                String.lowercase_ascii c.Aadl.Instance.name
                = String.lowercase_ascii seg)
              inst.Aadl.Instance.children
          with
          | Some child ->
              let best =
                if child.Aadl.Instance.category = Aadl.Ast.Process then
                  Some child
                else best
              in
              walk child rest best
          | None -> best)
    in
    walk root task.Workload.path None
  in
  let table = Hashtbl.create 8 in
  List.iter
    (fun task ->
      let key, rank, local =
        match group_host task with
        | Some proc ->
            ( proc.Aadl.Instance.path,
              Option.value ~default:0
                (Aadl.Props.priority proc.Aadl.Instance.props),
              Option.value ~default:Aadl.Props.Rate_monotonic
                (Aadl.Props.scheduling_protocol proc.Aadl.Instance.props) )
        | None -> (task.Workload.path, 0, Aadl.Props.Rate_monotonic)
      in
      let prev =
        match Hashtbl.find_opt table key with
        | Some (r, l, members) -> (r, l, task :: members)
        | None -> (rank, local, [ task ])
      in
      Hashtbl.replace table key prev)
    tasks;
  Hashtbl.fold
    (fun key (rank, local, members) acc ->
      {
        Sched_policy.group_name = key;
        group_rank = rank;
        local_protocol = local;
        members = List.rev members;
      }
      :: acc)
    table []
  |> List.sort (fun a b ->
         Stdlib.compare a.Sched_policy.group_name b.Sched_policy.group_name)

let thread_spec ~options ~scope ~modal ~all_assignments (task : Workload.task)
    : spec =
  let path = task.Workload.path in
  let cpu_priority = Sched_policy.find all_assignments task in
  let gate =
    match modal with
    | None -> None
    | Some m ->
        if List.exists (fun p -> p = path) (Modal.restricted_threads m) then
          Some
            {
              Dispatcher.activate = Modal.activate_label path;
              deactivate = Modal.deactivate_label path;
              initially_active = Modal.initially_active m ~thread:path;
            }
        else None
  in
  let triggers =
    match modal with
    | None -> []
    | Some m -> Modal.internal_triggers_of m ~thread:path
  in
  let completion_probes = probes_for options path Completed in
  let dispatch_probes = probes_for options path Dispatched in
  (* Resolve scoped names now: planning claims names in deterministic
     model order, and the resolved names are part of the digest. *)
  let spath = Naming.scoped_path scope path in
  let sproc = Naming.scoped_path scope task.Workload.processor in
  let sdata = List.map (Naming.scoped_path scope) task.Workload.data_shared in
  let sbuses = List.map (Naming.scoped_path scope) task.Workload.out_buses in
  let outgoing_events =
    List.filter Aadl.Semconn.is_event_like task.Workload.outgoing
  in
  let out_conns =
    List.map
      (fun (sc : Aadl.Semconn.t) ->
        Naming.scoped_conn scope (Aadl.Semconn.name sc)
        ^ "="
        ^
        match sc.Aadl.Semconn.kind with
        | Aadl.Ast.Event_data_port -> "ed"
        | _ -> "e")
      outgoing_events
  in
  let in_conns =
    List.map
      (fun (sc : Aadl.Semconn.t) ->
        Naming.scoped_conn scope (Aadl.Semconn.name sc)
        ^ "="
        ^ opt_int (Aadl.Props.urgency (Aadl.Semconn.props sc)))
      task.Workload.incoming_events
  in
  (* [path_token] is the thread's own resolved path for the content
     digest, and a fixed placeholder for the symmetry digest: two threads
     whose digests agree once their own identity is masked out are
     interchangeable candidates (the pipeline still verifies the claim
     structurally — see [Pipeline.detect_symmetry]).  Everything else
     stays: per-thread probe/gate/trigger labels or connections make the
     symmetry digests differ, which conservatively disables merging. *)
  let digest_parts path_token =
    [
      "thread.v1";
      path_token;
      dispatch_tag task.Workload.dispatch;
      opt_int task.Workload.period;
      string_of_int task.Workload.cmin;
      string_of_int task.Workload.cmax;
      string_of_int task.Workload.deadline;
      opt_int task.Workload.aadl_priority;
      Naming.of_path sproc;
      Fmt.str "%a" Expr.pp cpu_priority;
    ]
    @ section "data" (List.map Naming.of_path sdata)
    @ section "bus" (List.map Naming.of_path sbuses)
    @ section "out" out_conns
    @ section "in" in_conns
    @ section "gate"
        (match gate with
        | None -> []
        | Some g ->
            [
              Label.name g.Dispatcher.activate;
              Label.name g.Dispatcher.deactivate;
              string_of_bool g.Dispatcher.initially_active;
            ])
    @ section "trig" (List.map Label.name triggers)
    @ section "dprobe" (List.map Label.name dispatch_probes)
    @ section "cprobe" (List.map Label.name completion_probes)
  in
  let digest = digest_of (digest_parts (Naming.of_path spath)) in
  let sym_digest = digest_of (digest_parts "*") in
  let spec_id = "thread:" ^ String.concat "." path in
  let build () =
    let registry = Naming.create_registry () in
    let sk =
      Skeleton.generate ~scope ~extra_anytime:triggers ~completion_probes
        ~registry ~task ~cpu_priority ()
    in
    let disp =
      Dispatcher.generate ~scope ?modal:gate ~dispatch_probes ~registry ~task
        ~dispatch:sk.Skeleton.dispatch ~done_:sk.Skeleton.done_ ()
    in
    {
      kind = Thread_unit;
      id = spec_id;
      digest;
      sym_digest;
      cacheable = true;
      defs = sk.Skeleton.defs @ disp.Dispatcher.defs;
      initials = [ sk.Skeleton.initial; disp.Dispatcher.initial ];
      restricted = [ sk.Skeleton.dispatch; sk.Skeleton.done_ ];
      entries = Naming.entries registry;
    }
  in
  {
    spec_kind = Thread_unit;
    spec_id;
    spec_digest = digest;
    spec_cacheable = true;
    build;
  }

let queue_spec ~scope ~root (sc : Aadl.Semconn.t) : spec =
  let cname = Aadl.Semconn.name sc in
  let sname = Naming.scoped_conn scope cname in
  let { Equeue.size; overflow; urgency } = Equeue.queue_params ~root sc in
  let digest =
    digest_of
      [
        "queue.v1";
        Naming.sanitize sname;
        string_of_int size;
        overflow_tag overflow;
        string_of_int urgency;
      ]
  in
  let spec_id = "queue:" ^ cname in
  let build () =
    let registry = Naming.create_registry () in
    let q = Equeue.queue ~scope ~registry ~root sc in
    {
      kind = Queue;
      id = spec_id;
      digest;
      sym_digest = digest;
      cacheable = true;
      defs = q.Equeue.defs;
      initials = [ q.Equeue.initial ];
      restricted = [ Naming.enqueue_label sname; Naming.dequeue_label sname ];
      entries = Naming.entries registry;
    }
  in
  { spec_kind = Queue; spec_id; spec_digest = digest; spec_cacheable = true; build }

let stimulus_spec ~scope ~root ~quantum (sc : Aadl.Semconn.t) : spec =
  let cname = Aadl.Semconn.name sc in
  let sname = Naming.scoped_conn scope cname in
  let src = sc.Aadl.Semconn.src.Aadl.Semconn.inst in
  let spath = Naming.scoped_path scope src in
  let period = Equeue.stimulus_period ~root ~quantum sc in
  let digest =
    digest_of
      [
        "stimulus.v1";
        Naming.sanitize sname;
        Naming.of_path spath;
        Naming.sanitize sc.Aadl.Semconn.src.Aadl.Semconn.feature;
        opt_int period;
      ]
  in
  let spec_id = "stimulus:" ^ cname in
  let build () =
    let registry = Naming.create_registry () in
    let s = Equeue.stimulus ~scope ~registry ~root ~quantum sc in
    {
      kind = Stimulus;
      id = spec_id;
      digest;
      sym_digest = digest;
      cacheable = true;
      defs = s.Equeue.defs;
      initials = [ s.Equeue.initial ];
      restricted = [];
      entries = Naming.entries registry;
    }
  in
  {
    spec_kind = Stimulus;
    spec_id;
    spec_digest = digest;
    spec_cacheable = true;
    build;
  }

(* The mode manager is a whole-model construct (it reads every mode
   transition and every mode-dependent thread), so it is regenerated on
   every plan rather than content-addressed on an input slice; its digest
   is taken over the generated output so Merkle keys still see mode
   changes.  It is excluded from reuse counters. *)
let modal_spec m : spec =
  let registry = Naming.create_registry () in
  let g = Modal.generate ~registry m in
  let frag =
    {
      kind = Modal_manager;
      id = "modal";
      digest = "";
      sym_digest = "";
      cacheable = false;
      defs = g.Modal.defs @ g.Modal.stimuli;
      initials = g.Modal.initial :: g.Modal.stimuli_initials;
      restricted = g.Modal.internal_labels;
      entries = Naming.entries registry;
    }
  in
  let digest =
    digest_of
      ("modal.v1"
      :: List.concat_map
           (fun (name, formals, body) ->
             [ name; String.concat "," formals; Fmt.str "%a" Proc.pp body ])
           frag.defs
      @ List.map (fun p -> Fmt.str "%a" Proc.pp p) frag.initials
      @ List.map Label.name frag.restricted)
  in
  let frag = { frag with digest; sym_digest = digest } in
  {
    spec_kind = Modal_manager;
    spec_id = "modal";
    spec_digest = digest;
    spec_cacheable = false;
    build = (fun () -> frag);
  }

let plan ?(options = default_options) (root : Aadl.Instance.t) : plan =
  let diags = Aadl.Check.run root in
  if not (Aadl.Check.is_ok diags) then
    raise
      (Error
         (Fmt.str "model is not translatable:@,%a" Aadl.Check.pp_report
            (Aadl.Check.errors diags)));
  let quantum =
    match options.quantum with
    | Some q -> q
    | None -> Workload.suggest_quantum root
  in
  let wl =
    try Workload.extract ~quantum root
    with Workload.Error msg -> raise (Error msg)
  in
  (* mode support (extension): at most one modal component *)
  let modal =
    match Modal.find root with
    | None -> None
    | Some host -> Some (Modal.analyze ~root ~quantum host)
    | exception Modal.Unsupported msg -> raise (Error msg)
  in
  let assignments =
    List.map
      (fun ((proc : Aadl.Instance.t), tasks) ->
        let protocol =
          match options.force_protocol with
          | Some p -> p
          | None -> (
              match Aadl.Props.scheduling_protocol proc.Aadl.Instance.props with
              | Some p -> p
              | None ->
                  raise
                    (Error
                       (Fmt.str "%a: missing Scheduling_Protocol"
                          Aadl.Instance.pp_path proc.Aadl.Instance.path)))
        in
        let assignment =
          match protocol with
          | Aadl.Props.Hierarchical -> (
              try Sched_policy.hierarchical (hierarchical_groups root tasks)
              with Sched_policy.Unsupported msg -> raise (Error msg))
          | p -> Sched_policy.assign p tasks
        in
        (proc.Aadl.Instance.path, assignment))
      wl.Workload.by_processor
  in
  let all_assignments = List.concat_map snd assignments in
  let scope = Naming.create_scope () in
  let thread_specs =
    List.map
      (thread_spec ~options ~scope ~modal ~all_assignments)
      wl.Workload.tasks
  in
  (* queue processes: event-like semantic connections ending at threads *)
  let queued_conns =
    wl.Workload.sconns
    |> List.filter (fun sc ->
           Aadl.Semconn.is_event_like sc
           && is_thread_at root sc.Aadl.Semconn.dst.Aadl.Semconn.inst)
    |> dedup_by Aadl.Semconn.name
  in
  let queue_specs = List.map (queue_spec ~scope ~root) queued_conns in
  (* stimuli closing device-sourced queued connections *)
  let device_conns =
    List.filter
      (fun sc -> is_device_at root sc.Aadl.Semconn.src.Aadl.Semconn.inst)
      queued_conns
  in
  let stimulus_specs =
    List.map (stimulus_spec ~scope ~root ~quantum) device_conns
  in
  let modal_specs =
    match modal with None -> [] | Some m -> [ modal_spec m ]
  in
  {
    root;
    workload = wl;
    assignments;
    specs = thread_specs @ queue_specs @ stimulus_specs @ modal_specs;
  }

let digests (p : plan) =
  List.map (fun s -> (s.spec_id, s.spec_digest)) p.specs
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pp_kind ppf = function
  | Thread_unit -> Fmt.string ppf "thread"
  | Queue -> Fmt.string ppf "queue"
  | Stimulus -> Fmt.string ppf "stimulus"
  | Modal_manager -> Fmt.string ppf "modal"
