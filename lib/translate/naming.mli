(** Name generation for the translation and the registry mapping generated
    ACSR names back to AADL entities (used to raise failing scenarios to
    the level of the original model). *)

open Acsr

val sanitize : string -> string
val of_path : string list -> string

(** {1 Collision-proof scopes}

    [of_path] flattens the hierarchy with '_', so distinct component
    paths (or connection names) can alias after sanitization.  A scope
    tracks every identity claimed during one translation and returns a
    digest-qualified variant for the later claimant of an already-taken
    name, leaving unambiguous names untouched.  Lookups are memoized:
    asking twice for the same identity returns the same answer. *)

type scope

val create_scope : unit -> scope

val scoped_path : scope -> string list -> string list
(** The (possibly digest-qualified) path to derive generated names from;
    equal to the input except when its sanitized form collides with a
    previously claimed, different path. *)

val scoped_conn : scope -> string -> string
(** Same, for semantic connection names. *)

(** {1 Process definition names} *)

val thread_await : string list -> string
val thread_compute : string list -> string
val thread_emit : string list -> string
val dispatcher : string list -> string
val dispatcher_wait : string list -> string
val dispatcher_idle : string list -> string
val dispatcher_ready : string list -> string
val dispatcher_inactive : string list -> string
val queue : string -> string
val stimulus : string list -> string -> string

(** {1 Labels and resources} *)

val dispatch_label : string list -> Label.t
val done_label : string list -> Label.t
val complete_label : string list -> Label.t
val enqueue_label : string -> Label.t
val dequeue_label : string -> Label.t
val overflow_label : string -> Label.t
val processor_resource : string list -> Resource.t
val bus_resource : string list -> Resource.t
val data_resource : string list -> Resource.t

(** {1 Back-mapping registry} *)

type meaning =
  | Dispatch_of of string list
  | Done_of of string list
  | Complete_of of string list
  | Enqueue_on of string
  | Dequeue_on of string
  | Overflow_on of string
  | Processor_use of string list
  | Bus_use of string list
  | Data_use of string list
  | Activate_of of string list
  | Deactivate_of of string list
  | Mode_trigger of string

val pp_meaning : meaning Fmt.t

type registry

val create_registry : unit -> registry
val register : registry -> string -> meaning -> unit
val register_label : registry -> Label.t -> meaning -> unit
val register_resource : registry -> Resource.t -> meaning -> unit
val lookup : registry -> string -> meaning option
val lookup_label : registry -> Label.t -> meaning option
val lookup_resource : registry -> Resource.t -> meaning option

val entries : registry -> (string * meaning) list
(** All bindings, sorted by name — the serializable content of a
    registry, used to carry per-fragment registrations into the composed
    model's registry. *)

val replay : registry -> (string * meaning) list -> unit
(** Re-register previously captured {!entries}. *)
