(** Queue processes for event connections, and stimulus generators for
    device-driven connections (paper, Section 4.4). *)

type t = { defs : (string * string list * Acsr.Proc.t) list; initial : Acsr.Proc.t }

type queue_params = {
  size : int;  (** [Queue_Size] of the destination port, clamped >= 1 *)
  overflow : Aadl.Props.overflow_handling;
  urgency : int;  (** dequeue priority, clamped >= 1 *)
}

val queue_params : root:Aadl.Instance.t -> Aadl.Semconn.t -> queue_params
(** Exactly the model inputs {!queue} reads — the fragment planner
    digests these to decide whether a cached queue process can be
    reused. *)

val stimulus_period :
  root:Aadl.Instance.t -> quantum:Aadl.Time.t -> Aadl.Semconn.t -> int option
(** The source device's [Period] in quanta, when it has one — the model
    input that shapes {!stimulus}. *)

val queue :
  ?scope:Naming.scope ->
  registry:Naming.registry ->
  root:Aadl.Instance.t ->
  Aadl.Semconn.t ->
  t
(** The counter process of a semantic event/event-data connection, sized by
    the destination port's [Queue_Size], with its
    [Overflow_Handling_Protocol] behaviour (Error blocks time and thus
    surfaces as a deadlock). *)

val stimulus :
  ?scope:Naming.scope ->
  registry:Naming.registry ->
  root:Aadl.Instance.t ->
  quantum:Aadl.Time.t ->
  Aadl.Semconn.t ->
  t
(** An environment process raising the connection's event: periodically if
    the source device has a [Period], nondeterministically otherwise. *)
