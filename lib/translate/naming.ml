(* Name generation for the translation, and the registry that maps generated
   ACSR names back to AADL entities.

   "By carefully choosing the names in the translated model we make it
   possible to present failing scenarios in terms of the original AADL
   model" (paper, Section 1): every label and resource the translation
   introduces is recorded here so that VERSA traces can be re-interpreted
   as AADL-level timelines. *)

open Acsr

let sanitize s =
  String.map
    (fun c ->
      if
        (c >= 'a' && c <= 'z')
        || (c >= 'A' && c <= 'Z')
        || (c >= '0' && c <= '9')
        || c = '_'
      then c
      else '_')
    s

let of_path path = sanitize (String.concat "_" path)

(* {1 Collision-proof scopes}

   [of_path] flattens the component hierarchy with '_', so distinct paths
   can alias: a top-level thread "a_b" and a thread "b" inside a process
   "a" both sanitize to "a_b", and every name derived from the path (the
   skeleton and dispatcher definitions, the dispatch/done labels, the
   resources) would collide.  A scope detects such collisions within one
   translation and qualifies the later claimant with a short digest of
   its real identity, leaving every unambiguous name exactly as before.
   Qualification is deterministic: it depends only on the raw identity,
   not on claim order, so re-planning the same model reproduces the same
   names. *)

type scope = {
  path_assigned : (string, string list) Hashtbl.t;  (* raw key -> path *)
  path_owners : (string, string) Hashtbl.t;  (* sanitized base -> raw key *)
  conn_assigned : (string, string) Hashtbl.t;
  conn_owners : (string, string) Hashtbl.t;
}

let create_scope () =
  {
    path_assigned = Hashtbl.create 16;
    path_owners = Hashtbl.create 16;
    conn_assigned = Hashtbl.create 16;
    conn_owners = Hashtbl.create 16;
  }

let short_digest raw = String.sub (Digest.to_hex (Digest.string raw)) 0 6

let scoped_path scope path =
  let raw = String.concat "\x00" path in
  match Hashtbl.find_opt scope.path_assigned raw with
  | Some q -> q
  | None ->
      let base = of_path path in
      let q =
        match Hashtbl.find_opt scope.path_owners base with
        | None ->
            Hashtbl.replace scope.path_owners base raw;
            path
        | Some owner when String.equal owner raw -> path
        | Some _ ->
            let qpath = path @ [ "x" ^ short_digest raw ] in
            Hashtbl.replace scope.path_owners (of_path qpath) raw;
            qpath
      in
      Hashtbl.replace scope.path_assigned raw q;
      q

let scoped_conn scope name =
  match Hashtbl.find_opt scope.conn_assigned name with
  | Some q -> q
  | None ->
      let base = sanitize name in
      let q =
        match Hashtbl.find_opt scope.conn_owners base with
        | None ->
            Hashtbl.replace scope.conn_owners base name;
            name
        | Some owner when String.equal owner name -> name
        | Some _ ->
            let qname = name ^ "_x" ^ short_digest name in
            Hashtbl.replace scope.conn_owners (sanitize qname) name;
            qname
      in
      Hashtbl.replace scope.conn_assigned name q;
      q

(* {1 Process definition names} *)

let thread_await path = "Th_" ^ of_path path ^ "_await"
let thread_compute path = "Th_" ^ of_path path ^ "_compute"
let thread_emit path = "Th_" ^ of_path path ^ "_emit"
let dispatcher path = "Disp_" ^ of_path path
let dispatcher_wait path = "Disp_" ^ of_path path ^ "_wait"
let dispatcher_idle path = "Disp_" ^ of_path path ^ "_idle"
let dispatcher_ready path = "Disp_" ^ of_path path ^ "_ready"
let dispatcher_inactive path = "Disp_" ^ of_path path ^ "_inactive"
let queue conn_name = "Q_" ^ sanitize conn_name
let stimulus path feature = "Stim_" ^ of_path path ^ "_" ^ sanitize feature

(* {1 Labels} *)

let dispatch_label path = Label.make ("dispatch_" ^ of_path path)
let done_label path = Label.make ("done_" ^ of_path path)
let complete_label path = Label.make ("complete_" ^ of_path path)
let enqueue_label conn_name = Label.make (sanitize conn_name ^ "_q")
let dequeue_label conn_name = Label.make (sanitize conn_name ^ "_deq")
let overflow_label conn_name = Label.make (sanitize conn_name ^ "_overflow")

(* {1 Resources} *)

let processor_resource path = Resource.make ("cpu_" ^ of_path path)
let bus_resource path = Resource.make ("bus_" ^ of_path path)
let data_resource path = Resource.make ("data_" ^ of_path path)

(* {1 The back-mapping registry} *)

type meaning =
  | Dispatch_of of string list  (** thread path *)
  | Done_of of string list
  | Complete_of of string list
  | Enqueue_on of string  (** semantic connection name *)
  | Dequeue_on of string
  | Overflow_on of string
  | Processor_use of string list
  | Bus_use of string list
  | Data_use of string list
  | Activate_of of string list  (** mode switch: thread activation *)
  | Deactivate_of of string list
  | Mode_trigger of string  (** mode transition, e.g. "nominal -> degraded" *)

let pp_meaning ppf = function
  | Dispatch_of p -> Fmt.pf ppf "dispatch of thread %a" Aadl.Instance.pp_path p
  | Done_of p -> Fmt.pf ppf "completion of thread %a" Aadl.Instance.pp_path p
  | Complete_of p ->
      Fmt.pf ppf "complete event of thread %a" Aadl.Instance.pp_path p
  | Enqueue_on c -> Fmt.pf ppf "event arrival on connection %s" c
  | Dequeue_on c -> Fmt.pf ppf "event consumption on connection %s" c
  | Overflow_on c -> Fmt.pf ppf "queue overflow on connection %s" c
  | Processor_use p ->
      Fmt.pf ppf "execution on processor %a" Aadl.Instance.pp_path p
  | Bus_use p -> Fmt.pf ppf "transfer on bus %a" Aadl.Instance.pp_path p
  | Data_use p ->
      Fmt.pf ppf "access to shared data %a" Aadl.Instance.pp_path p
  | Activate_of p -> Fmt.pf ppf "activation of thread %a" Aadl.Instance.pp_path p
  | Deactivate_of p ->
      Fmt.pf ppf "deactivation of thread %a" Aadl.Instance.pp_path p
  | Mode_trigger t -> Fmt.pf ppf "mode transition %s" t

type registry = (string, meaning) Hashtbl.t

let create_registry () : registry = Hashtbl.create 64

let register (reg : registry) name meaning = Hashtbl.replace reg name meaning

let register_label reg label meaning = register reg (Label.name label) meaning

let register_resource reg res meaning =
  register reg (Resource.name res) meaning

let lookup (reg : registry) name = Hashtbl.find_opt reg name
let lookup_label reg label = lookup reg (Label.name label)
let lookup_resource reg res = lookup reg (Resource.name res)

let entries (reg : registry) =
  Hashtbl.fold (fun name meaning acc -> (name, meaning) :: acc) reg []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let replay (reg : registry) entries =
  List.iter (fun (name, meaning) -> register reg name meaning) entries
