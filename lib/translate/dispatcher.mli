(** Thread dispatchers (paper, Figure 6): dispatch the skeleton, track
    deadlines, block on violations. *)

open Acsr

type t = { defs : (string * string list * Proc.t) list; initial : Proc.t }

type modal_gate = {
  activate : Label.t;
  deactivate : Label.t;
  initially_active : bool;
}

exception Invalid of string

val generate :
  ?scope:Naming.scope ->
  ?modal:modal_gate ->
  dispatch_probes:Label.t list ->
  registry:Naming.registry ->
  task:Workload.task ->
  dispatch:Label.t ->
  done_:Label.t ->
  unit ->
  t
(** Generate the dispatcher for the task's dispatch protocol.  Periodic:
    Fig. 6a; aperiodic: Fig. 6b; sporadic: Fig. 6c (minimum separation =
    Period); background: immediate dispatch, no deadline.
    @raise Invalid for event-driven threads without incoming connections
    or periodic/sporadic threads without a period. *)
