(* Queue processes for semantic event and event-data connections, and
   stimulus generators closing the model over device-driven connections
   (paper, Section 4.4).

   A queue is a counter process: we do not model the attributes of the
   individual events, only their number (the counter abstraction the paper
   uses).  The counter is incremented by [e_q] from the ultimate source
   and decremented by [e_deq], consumed by the destination's dispatcher.
   Overflow behaviour follows Overflow_Handling_Protocol: dropping keeps
   the counter at its maximum (under the counter abstraction DropNewest
   and DropOldest coincide), while Error moves to an error state that
   blocks time and therefore surfaces as a deadlock. *)

open Acsr

type t = { defs : (string * string list * Proc.t) list; initial : Proc.t }

let var_n = Expr.Var "n"

type queue_params = {
  size : int;
  overflow : Aadl.Props.overflow_handling;
  urgency : int;
}

(* Queue_Size and Overflow_Handling_Protocol come from the last port of
   the connection (the ultimate destination feature).  Exposed so the
   fragment planner can digest exactly the inputs the generation below
   reads. *)
let queue_params ~(root : Aadl.Instance.t) (sc : Aadl.Semconn.t) : queue_params
    =
  let dst_props =
    match Aadl.Semconn.dst_feature root sc with
    | Some f -> f.Aadl.Ast.fprops
    | None -> []
  in
  let size = max 1 (Aadl.Props.queue_size dst_props) in
  let overflow = Aadl.Props.overflow_handling dst_props in
  let urgency =
    match Aadl.Props.urgency (Aadl.Semconn.props sc) with
    | Some u -> max 1 u
    | None -> 1
  in
  { size; overflow; urgency }

let queue ?(scope : Naming.scope option) ~(registry : Naming.registry)
    ~(root : Aadl.Instance.t) (sc : Aadl.Semconn.t) : t =
  let cname = Aadl.Semconn.name sc in
  let sname =
    match scope with Some s -> Naming.scoped_conn s cname | None -> cname
  in
  let enq = Naming.enqueue_label sname in
  let deq = Naming.dequeue_label sname in
  Naming.register_label registry enq (Naming.Enqueue_on cname);
  Naming.register_label registry deq (Naming.Dequeue_on cname);
  let { size; overflow; urgency } = queue_params ~root sc in
  let qname = Naming.queue sname in
  let on_overflow =
    match overflow with
    | Aadl.Props.Drop_newest | Aadl.Props.Drop_oldest ->
        Proc.call qname [ var_n ]
    | Aadl.Props.Error -> Proc.nil
  in
  let body =
    Proc.choice_list
      [
        Proc.if_
          Guard.(lt var_n (Expr.Int size))
          (Proc.receive enq (Proc.call qname [ Expr.Add (var_n, Expr.Int 1) ]));
        Proc.if_
          Guard.(ge var_n (Expr.Int size))
          (Proc.receive enq on_overflow);
        Proc.if_
          Guard.(gt var_n (Expr.Int 0))
          (Proc.send ~prio:(Expr.Int urgency) deq
             (Proc.call qname [ Expr.Sub (var_n, Expr.Int 1) ]));
        Proc.act Action.idle (Proc.call qname [ var_n ]);
      ]
  in
  {
    defs = [ (qname, [ "n" ], body) ];
    initial = Proc.call qname [ Expr.Int 0 ];
  }

(* A stimulus process closes the model over a connection whose ultimate
   source is a device.  A device with a Period property raises its event
   periodically (starting at t=0); without one it may raise events at any
   time, nondeterministically. *)
let stimulus_period ~(root : Aadl.Instance.t) ~(quantum : Aadl.Time.t)
    (sc : Aadl.Semconn.t) : int option =
  match Aadl.Instance.find root sc.Aadl.Semconn.src.Aadl.Semconn.inst with
  | None -> None
  | Some dev ->
      Option.map
        (Aadl.Time.to_quanta_floor ~quantum)
        (Aadl.Props.period dev.Aadl.Instance.props)

let stimulus ?(scope : Naming.scope option) ~(registry : Naming.registry)
    ~(root : Aadl.Instance.t) ~(quantum : Aadl.Time.t) (sc : Aadl.Semconn.t) :
    t =
  let cname = Aadl.Semconn.name sc in
  let scoped_cname =
    match scope with Some s -> Naming.scoped_conn s cname | None -> cname
  in
  let enq = Naming.enqueue_label scoped_cname in
  Naming.register_label registry enq (Naming.Enqueue_on cname);
  let period = stimulus_period ~root ~quantum sc in
  let src_path = sc.Aadl.Semconn.src.Aadl.Semconn.inst in
  let sname =
    Naming.stimulus
      (match scope with Some s -> Naming.scoped_path s src_path | None -> src_path)
      sc.Aadl.Semconn.src.Aadl.Semconn.feature
  in
  match period with
  | Some p when p > 0 ->
      let var_k = Expr.Var "k" in
      let body =
        Proc.choice
          (Proc.if_
             Guard.(ge var_k (Expr.Int p))
             (Proc.send ~prio:(Expr.Int 1) enq (Proc.call sname [ Expr.Int 0 ])))
          (Proc.if_
             Guard.(lt var_k (Expr.Int p))
             (Proc.act Action.idle
                (Proc.call sname [ Expr.Add (var_k, Expr.Int 1) ])))
      in
      (* start at k=p so the first event is raised immediately *)
      { defs = [ (sname, [ "k" ], body) ]; initial = Proc.call sname [ Expr.Int p ] }
  | Some _ | None ->
      (* unconstrained environment: may raise an event at any instant *)
      let body =
        Proc.choice
          (Proc.send enq (Proc.call sname []))
          (Proc.act Action.idle (Proc.call sname []))
      in
      { defs = [ (sname, [], body) ]; initial = Proc.call sname [] }
