(** AADL-to-ACSR translation (paper, Algorithm 1), as plan -> realize ->
    compose over the fragment IR ({!Fragment}). *)

open Acsr

exception Error of string

type t = {
  workload : Workload.t;
  defs : Defs.t;
  system : Proc.t;
  registry : Naming.registry;
  restricted : Label.Set.t;
  assignments : (string list * Sched_policy.assignment list) list;
  fragments : Fragment.t list;
      (** the realized translation units, in composition order *)
  fragments_reused : int;
      (** how many of them came out of the {!Fragment_cache} *)
  symmetry : Symmetry.spec;
      (** orbit classes of interchangeable thread units over the
          composition's parallel slots, for {!Versa.Lts}'s symmetry
          reduction: thread fragments whose inputs are identical up to
          their own identity (equal [sym_digest]s, then verified by
          structural equality under a positional renaming of generated
          names) are interchangeable.  {!Acsr.Symmetry.empty} when no two
          units qualify — e.g. under Rate/Deadline-Monotonic assignment,
          where tie-broken static priorities distinguish otherwise
          identical threads. *)
  num_thread_processes : int;
  num_dispatchers : int;
  num_queues : int;
  num_stimuli : int;
}

type probe_point = Fragment.probe_point = Dispatched | Completed

type probe = Fragment.probe = {
  probe_thread : string list;
  probe_point : probe_point;
  probe_label : Label.t;
}

type options = Fragment.options = {
  quantum : Aadl.Time.t option;
      (** scheduling quantum; default {!Workload.suggest_quantum} *)
  force_protocol : Aadl.Props.scheduling_protocol option;
      (** override every processor's Scheduling_Protocol (for policy
          comparisons) *)
  probes : probe list;
      (** extra observable events fired at dispatch/completion of chosen
          threads; not restricted, so an observer can synchronize on them *)
}

val default_options : options

val plan : ?options:options -> Aadl.Instance.t -> Fragment.plan
(** Check the model and derive its fragment specs without generating any
    ACSR; cheap enough to run per request (the service layer keys its
    verdict cache on the plan's digests).
    @raise Error when the model violates the translation preconditions. *)

val of_plan : ?cache:Fragment_cache.t -> Fragment.plan -> t
(** Realize every spec — reusing digest-identical fragments from [cache]
    when given — and compose the closed system.  The composition is
    independent of cache hits: reused fragments are physically equal to
    what regeneration would have produced. *)

val translate : ?options:options -> ?cache:Fragment_cache.t -> Aadl.Instance.t -> t
(** [of_plan ?cache (plan ~options root)].  The result's [system] is the
    closed parallel composition of thread skeletons, dispatchers, queues
    and stimuli, restricted over all generated labels: it is deadlock-free
    iff the model meets all its deadlines.
    @raise Error when the model violates the translation preconditions. *)

val pp_summary : t Fmt.t
