(* Thread dispatchers (paper, Figure 6).

   The dispatcher sends the [dispatch] event to the thread skeleton,
   tracks the deadline of each dispatch, and signals deadline violations
   by blocking — inducing a deadlock in the composed ACSR model, which is
   exactly the condition the analysis looks for (Section 5).

   - Periodic (Fig. 6a): dispatch immediately, await [done] within the
     deadline, idle out the rest of the period, repeat.  The dispatcher
     cannot idle in its initial state: the first dispatch happens at t=0.
   - Aperiodic (Fig. 6b): await a dequeue event from one of the incoming
     connection queues (choice resolved by Urgency priorities), dispatch,
     await [done] within the deadline.
   - Sporadic (Fig. 6c): as aperiodic, but a new dispatch is accepted only
     after the minimum separation (the Period) has elapsed.
   - Background: dispatched immediately upon initialization and not
     subject to a deadline; once complete, the dispatcher idles forever.

   Mode gating (our extension, see Modal): when the thread is active only
   in some modes, the dispatcher accepts a [deactivate] control event at
   its dispatch-boundary states (never mid-dispatch, so the running
   dispatch completes first) and moves to an Inactive state that waits
   for [activate].  (Re)activation re-enters the dispatch cycle. *)

open Acsr

type t = { defs : (string * string list * Proc.t) list; initial : Proc.t }

type modal_gate = {
  activate : Label.t;
  deactivate : Label.t;
  initially_active : bool;
}

exception Invalid of string

let var_k = Expr.Var "k"
let tick k = Expr.Add (k, Expr.Int 1)

(* dispatch! is urgent: its synchronization must preempt time passage so
   that dispatches happen exactly at their quantum boundary.  Observer
   probes fire right after the dispatch, still instantaneously. *)
let send_dispatch ?(probes : Label.t list = []) label k =
  Proc.send ~prio:(Expr.Int 1) label
    (List.fold_right (fun probe k -> Proc.send ~prio:(Expr.Int 1) probe k)
       probes k)

(* The triggers of an event-driven dispatcher: one dequeue input per
   incoming event-like connection, prioritized by Urgency (>= 1 keeps the
   synchronization urgent). *)
let trigger_inputs ?(scope : Naming.scope option)
    ~(registry : Naming.registry) (task : Workload.task) k =
  let sconn c = match scope with Some s -> Naming.scoped_conn s c | None -> c in
  List.map
    (fun (sc : Aadl.Semconn.t) ->
      let cname = Aadl.Semconn.name sc in
      let deq = Naming.dequeue_label (sconn cname) in
      Naming.register_label registry deq (Naming.Dequeue_on cname);
      let urgency =
        match Aadl.Props.urgency (Aadl.Semconn.props sc) with
        | Some u -> max 1 u
        | None -> 1
      in
      Proc.receive ~prio:(Expr.Int urgency) deq k)
    task.Workload.incoming_events

let generate ?(scope : Naming.scope option) ?(modal : modal_gate option)
    ~(dispatch_probes : Label.t list)
    ~(registry : Naming.registry) ~(task : Workload.task)
    ~(dispatch : Label.t) ~(done_ : Label.t) () : t =
  let path =
    match scope with
    | Some s -> Naming.scoped_path s task.Workload.path
    | None -> task.Workload.path
  in
  let trigger_inputs = trigger_inputs ?scope in
  let d = task.Workload.deadline in
  let main = Naming.dispatcher path in
  let wait = Naming.dispatcher_wait path in
  let idle = Naming.dispatcher_idle path in
  let ready = Naming.dispatcher_ready path in
  let inactive = Naming.dispatcher_inactive path in
  let send_dispatch l k = send_dispatch ~probes:dispatch_probes l k in
  (* add the deactivation branch to a dispatch-boundary state, and build
     the Inactive definition *)
  let gate branches =
    match modal with
    | None -> branches
    | Some g ->
        branches
        @ [
            Proc.receive ~prio:(Expr.Int 1) g.deactivate
              (Proc.call inactive []);
          ]
  in
  let inactive_def =
    match modal with
    | None -> []
    | Some g ->
        [
          ( inactive,
            [],
            Proc.choice
              (Proc.receive g.activate (Proc.call main []))
              (Proc.act Action.idle (Proc.call inactive [])) );
        ]
  in
  let initial =
    match modal with
    | Some g when not g.initially_active -> Proc.call inactive []
    | Some _ | None -> Proc.call main []
  in
  match task.Workload.dispatch with
  | Aadl.Props.Periodic ->
      let p =
        match task.Workload.period with
        | Some p -> p
        | None -> raise (Invalid "periodic thread without a period")
      in
      (* wait(k): done may arrive while k <= d; only idling while k < d *)
      let wait_body =
        Proc.choice
          (Proc.receive done_ (Proc.call idle [ var_k ]))
          (Proc.if_
             Guard.(lt var_k (Expr.Int d))
             (Proc.act Action.idle (Proc.call wait [ tick var_k ])))
      in
      let idle_body =
        Proc.choice_list
          (gate
             [
               Proc.if_
                 Guard.(lt var_k (Expr.Int p))
                 (Proc.act Action.idle (Proc.call idle [ tick var_k ]));
               Proc.if_
                 Guard.(ge var_k (Expr.Int p))
                 (send_dispatch dispatch (Proc.call wait [ Expr.Int 0 ]));
             ])
      in
      let main_body = send_dispatch dispatch (Proc.call wait [ Expr.Int 0 ]) in
      {
        defs =
          [
            (main, [], main_body);
            (wait, [ "k" ], wait_body);
            (idle, [ "k" ], idle_body);
          ]
          @ inactive_def;
        initial;
      }
  | Aadl.Props.Aperiodic ->
      if task.Workload.incoming_events = [] then
        raise
          (Invalid
             (Fmt.str "aperiodic thread %a has no incoming event connection"
                Aadl.Instance.pp_path task.Workload.path));
      let dispatch_now = send_dispatch dispatch (Proc.call wait [ Expr.Int 0 ]) in
      let main_body =
        Proc.choice_list
          (gate
             (trigger_inputs ~registry task dispatch_now
             @ [ Proc.act Action.idle (Proc.call main []) ]))
      in
      let wait_body =
        Proc.choice
          (Proc.receive done_ (Proc.call main []))
          (Proc.if_
             Guard.(lt var_k (Expr.Int d))
             (Proc.act Action.idle (Proc.call wait [ tick var_k ])))
      in
      {
        defs =
          [ (main, [], main_body); (wait, [ "k" ], wait_body) ]
          @ inactive_def;
        initial;
      }
  | Aadl.Props.Sporadic ->
      if task.Workload.incoming_events = [] then
        raise
          (Invalid
             (Fmt.str "sporadic thread %a has no incoming event connection"
                Aadl.Instance.pp_path task.Workload.path));
      let p =
        match task.Workload.period with
        | Some p -> p
        | None -> raise (Invalid "sporadic thread without a period")
      in
      let dispatch_now = send_dispatch dispatch (Proc.call wait [ Expr.Int 0 ]) in
      let ready_body =
        Proc.choice_list
          (gate
             (trigger_inputs ~registry task dispatch_now
             @ [ Proc.act Action.idle (Proc.call ready []) ]))
      in
      let wait_body =
        Proc.choice
          (Proc.receive done_ (Proc.call idle [ var_k ]))
          (Proc.if_
             Guard.(lt var_k (Expr.Int d))
             (Proc.act Action.idle (Proc.call wait [ tick var_k ])))
      in
      (* enforce the minimum separation [p] between dispatches, counting
         from the previous dispatch *)
      let idle_body =
        Proc.choice
          (Proc.if_
             Guard.(lt var_k (Expr.Int p))
             (Proc.act Action.idle (Proc.call idle [ tick var_k ])))
          (Proc.if_ Guard.(ge var_k (Expr.Int p)) (Proc.call ready []))
      in
      {
        defs =
          [
            (main, [], ready_body);
            (ready, [], ready_body);
            (wait, [ "k" ], wait_body);
            (idle, [ "k" ], idle_body);
          ]
          @ inactive_def;
        initial;
      }
  | Aadl.Props.Background ->
      (* dispatched immediately upon initialization (or upon activation);
         no deadline: after completion the dispatcher idles, accepting a
         deactivation that allows a later re-dispatch *)
      let stopped = Naming.dispatcher_idle path in
      let stopped_body =
        Proc.choice_list (gate [ Proc.act Action.idle (Proc.call stopped []) ])
      in
      let wait_body =
        Proc.choice
          (Proc.receive done_ (Proc.call stopped []))
          (Proc.act Action.idle (Proc.call wait [ Expr.Int 0 ]))
      in
      let main_body = send_dispatch dispatch (Proc.call wait [ Expr.Int 0 ]) in
      {
        defs =
          [
            (main, [], main_body);
            (wait, [ "k" ], wait_body);
            (stopped, [], stopped_body);
          ]
          @ inactive_def;
        initial;
      }
