(** The content-hashed intermediate representation of the translation.

    One fragment per translation unit of the paper's Algorithm 1 — a
    thread's skeleton + dispatcher, a connection's queue process, a
    device stimulus, or the mode manager — carrying its ACSR
    definitions, initial processes, the labels to restrict at the system
    level, the name-registry entries mapping its generated names back to
    AADL, and a stable digest of exactly the instance slice and derived
    parameters it was computed from.

    [plan] derives the fragment {e specs} (ids, digests, and generation
    thunks) without generating any ACSR; {!Pipeline.of_plan} then
    realizes them — through a {!Fragment_cache} when incremental reuse
    is wanted — and composes the system.  Digest-equal specs generate
    physically equal fragments, which [Acsr.Hproc] hash-consing interns
    without re-walking. *)

open Acsr

exception Error of string
(** Planning/generation failure (untranslatable model); re-exported as
    [Pipeline.Error]. *)

(** {1 Translation options} (re-exported by [Pipeline]) *)

type probe_point = Dispatched | Completed

type probe = {
  probe_thread : string list;
  probe_point : probe_point;
  probe_label : Label.t;
}

type options = {
  quantum : Aadl.Time.t option;
  force_protocol : Aadl.Props.scheduling_protocol option;
  probes : probe list;
}

val default_options : options
val probes_for : options -> string list -> probe_point -> Label.t list

(** {1 Fragments} *)

type kind = Thread_unit | Queue | Stimulus | Modal_manager

type t = {
  kind : kind;
  id : string;  (** stable unit identity, e.g. ["thread:proc.t1"] *)
  digest : string;
      (** MD5 hex over every input the generation read; equal digests
          mean interchangeable fragments *)
  sym_digest : string;
      (** the digest with the unit's own identity (its resolved path)
          masked out: thread fragments with equal symmetry digests are
          candidates for orbit merging ([Pipeline] verifies the claim
          structurally before building a {!Acsr.Symmetry.spec}) *)
  cacheable : bool;
      (** the mode manager is regenerated each plan and never cached *)
  defs : (string * string list * Proc.t) list;
  initials : Proc.t list;
  restricted : Label.t list;
  entries : (string * Naming.meaning) list;
}

type spec
(** A planned-but-not-yet-generated fragment: id + digest + thunk. *)

type plan = {
  root : Aadl.Instance.t;
  workload : Workload.t;
  assignments : (string list * Sched_policy.assignment list) list;
  specs : spec list;  (** in composition order *)
}

val plan : ?options:options -> Aadl.Instance.t -> plan
(** Check the model and derive one spec per translation unit, claiming
    collision-proofed names ({!Naming.scope}) in deterministic model
    order.  @raise Error when the model is untranslatable. *)

val spec_id : spec -> string
val spec_digest : spec -> string

val spec_cacheable : spec -> bool
(** Whether a {!Fragment_cache} may reuse this spec's realization across
    translations; [false] for whole-model constructs (the modal
    manager), which are regenerated per plan. *)

val realize : spec -> t
(** Generate the fragment's ACSR terms.  @raise Error on generation
    failures (e.g. an event-driven thread without incoming
    connections). *)

val digests : plan -> (string * string) list
(** [(id, digest)] per spec, sorted by id — the leaves of the service
    layer's Merkle cache key. *)

val pp_kind : kind Fmt.t
