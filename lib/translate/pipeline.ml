(* The translation of AADL instance models into ACSR (paper, Algorithm 1),
   factored through the fragment IR:

     plan    (Fragment.plan)   check the model, derive one content-hashed
                               spec per translation unit;
     realize (Fragment.realize or Fragment_cache.find_or_realize)
                               generate — or reuse — each unit's ACSR;
     compose (of_plan)         merge definitions, replay registry
                               entries, restrict the union of internal
                               labels over the parallel composition.

   The composed system is identical to what the former monolithic
   translation produced: fragments are realized and composed in model
   order, each against a fresh registry whose entries are replayed into
   the composed one.  The resulting closed term is deadlock-free iff
   every thread meets its deadline (Section 5). *)

open Acsr

exception Error = Fragment.Error

type t = {
  workload : Workload.t;
  defs : Defs.t;
  system : Proc.t;  (** the closed composition to analyze *)
  registry : Naming.registry;
  restricted : Label.Set.t;
  assignments : (string list * Sched_policy.assignment list) list;
      (** per-processor priority assignments *)
  fragments : Fragment.t list;  (** in composition order *)
  fragments_reused : int;
      (** units served from the {!Fragment_cache} instead of re-generated *)
  symmetry : Symmetry.spec;
      (** interchangeable-thread orbit classes over the composition's
          parallel slots; {!Symmetry.empty} when no two units are
          interchangeable *)
  num_thread_processes : int;
  num_dispatchers : int;
  num_queues : int;
  num_stimuli : int;
}

type probe_point = Fragment.probe_point = Dispatched | Completed

type probe = Fragment.probe = {
  probe_thread : string list;
  probe_point : probe_point;
  probe_label : Label.t;
}

type options = Fragment.options = {
  quantum : Aadl.Time.t option;
  force_protocol : Aadl.Props.scheduling_protocol option;
  probes : probe list;
}

let default_options = Fragment.default_options

module Metrics = struct
  let plans =
    Obs.Counter.make ~help:"Translation plans derived from instance models"
      "translate_plans_total"

  let reused =
    Obs.Counter.make
      ~help:"Translation units served from the fragment cache"
      "translate_fragments_reused_total"

  let realized =
    Obs.Counter.make ~help:"Translation units generated from scratch"
      "translate_fragments_realized_total"
end

let plan ?options root =
  Obs.Counter.incr Metrics.plans;
  Obs.Span.with_ ~name:"translate.plan" (fun () -> Fragment.plan ?options root)

(* {2 Orbit detection}

   Thread fragments whose symmetry digests agree are *candidates* for
   being interchangeable; the claim is then verified structurally: a
   positional renaming is built between the member's generated names
   (its definition names and restricted labels) and the representative's,
   and the member's definitions and initial processes must become
   literally equal to the representative's under it.  Names the renaming
   does not cover (probe labels, queue labels, modal gates, ...) make the
   equality fail, so merging degrades conservatively to "no symmetry"
   rather than ever producing an unsound spec. *)

let rec proc_has_par (p : Proc.t) =
  match p with
  | Proc.Par _ -> true
  | Proc.Nil | Proc.Call _ -> false
  | Proc.Act (_, k) | Proc.Ev (_, k) | Proc.Restrict (_, k)
  | Proc.Close (_, k)
  | Proc.If (_, k) ->
      proc_has_par k
  | Proc.Choice (a, b) -> proc_has_par a || proc_has_par b
  | Proc.Scope s ->
      proc_has_par s.body || proc_has_par s.timeout
      || (match s.exc with Some (_, h) -> proc_has_par h | None -> false)
      || match s.interrupt with Some i -> proc_has_par i | None -> false

let fragment_has_par (f : Fragment.t) =
  List.exists (fun (_, _, body) -> proc_has_par body) f.Fragment.defs
  || List.exists proc_has_par f.Fragment.initials

let all_distinct names =
  List.length (List.sort_uniq String.compare names) = List.length names

let fragment_names (f : Fragment.t) =
  ( List.map (fun (n, _, _) -> n) f.Fragment.defs,
    List.map Label.name f.Fragment.restricted )

(* The identity renaming with explicit bindings: its domain enumerates the
   representative's name space, which trace de-canonicalization needs. *)
let explicit_identity (f : Fragment.t) =
  let defs, labels = fragment_names f in
  Symmetry.renaming
    ~labels:(List.map (fun l -> (l, l)) labels)
    ~calls:(List.map (fun n -> (n, n)) defs)

let verify_member ~(rep : Fragment.t) (f : Fragment.t) =
  let rep_defs, rep_labels = fragment_names rep in
  let f_defs, f_labels = fragment_names f in
  if
    List.length f_defs <> List.length rep_defs
    || List.length f_labels <> List.length rep_labels
    || List.length f.Fragment.initials <> List.length rep.Fragment.initials
    || not (all_distinct f_defs && all_distinct f_labels)
  then None
  else
    let to_rep =
      Symmetry.renaming
        ~labels:(List.combine f_labels rep_labels)
        ~calls:(List.combine f_defs rep_defs)
    in
    let defs_ok =
      List.for_all2
        (fun (_, formals, body) (_, rformals, rbody) ->
          formals = rformals
          && Proc.equal (Symmetry.apply_proc to_rep body) rbody)
        f.Fragment.defs rep.Fragment.defs
    in
    let initials_ok =
      List.for_all2
        (fun i ri -> Proc.equal (Symmetry.apply_proc to_rep i) ri)
        f.Fragment.initials rep.Fragment.initials
    in
    if defs_ok && initials_ok then Some to_rep else None

let detect_symmetry (fragments : Fragment.t list) : Symmetry.spec =
  if List.exists fragment_has_par fragments then Symmetry.empty
  else begin
    (* slot offset of each fragment in the flattened composition *)
    let offsets =
      List.rev
        (fst
           (List.fold_left
              (fun (acc, off) f ->
                ((f, off) :: acc, off + List.length f.Fragment.initials))
              ([], 0) fragments))
    in
    let slots =
      List.fold_left
        (fun n f -> n + List.length f.Fragment.initials)
        0 fragments
    in
    let groups = Hashtbl.create 8 in
    List.iter
      (fun ((f : Fragment.t), off) ->
        if f.Fragment.kind = Fragment.Thread_unit then begin
          let key = f.Fragment.sym_digest in
          let prev = Option.value ~default:[] (Hashtbl.find_opt groups key) in
          Hashtbl.replace groups key ((f, off) :: prev)
        end)
      offsets;
    let classes =
      Hashtbl.fold
        (fun _ members acc ->
          match List.rev members with
          | ((rep, rep_off) :: rest) when rest <> [] ->
              let rep_defs, rep_labels = fragment_names rep in
              if not (all_distinct rep_defs && all_distinct rep_labels) then
                acc
              else begin
                let width = List.length rep.Fragment.initials in
                let rep_member =
                  Symmetry.member ~offset:rep_off ~width
                    ~to_rep:(explicit_identity rep)
                in
                let verified =
                  List.filter_map
                    (fun (f, off) ->
                      match verify_member ~rep f with
                      | Some to_rep ->
                          Some (Symmetry.member ~offset:off ~width ~to_rep)
                      | None -> None)
                    rest
                in
                if verified = [] then acc
                else (rep_off, Symmetry.cls (rep_member :: verified)) :: acc
              end
          | _ -> acc)
        groups []
      (* Hashtbl.fold order is unspecified; fix class order by slot *)
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
      |> List.map snd
    in
    if classes = [] then Symmetry.empty else Symmetry.make ~slots classes
  end

let of_plan ?(cache : Fragment_cache.t option) (p : Fragment.plan) : t =
  Obs.Span.with_ ~name:"translate.compose" @@ fun () ->
  let realized =
    List.map
      (fun spec ->
        Obs.Span.with_ ~name:"translate.realize"
          ~attrs:[ ("unit", Fragment.spec_id spec) ]
          (fun () ->
            match cache with
            | Some c -> Fragment_cache.find_or_realize c spec
            | None -> (Fragment.realize spec, false)))
      p.Fragment.specs
  in
  let fragments = List.map fst realized in
  let fragments_reused =
    List.fold_left (fun n (_, reused) -> if reused then n + 1 else n) 0 realized
  in
  Obs.Counter.incr ~by:fragments_reused Metrics.reused;
  Obs.Counter.incr
    ~by:(List.length realized - fragments_reused)
    Metrics.realized;
  (* definitions environment *)
  let add_defs env (name, formals, body) =
    try Defs.add env ~name ~formals body
    with Defs.Duplicate n ->
      raise (Error (Fmt.str "duplicate generated process %s" n))
  in
  let defs =
    List.fold_left add_defs Defs.empty
      (List.concat_map (fun f -> f.Fragment.defs) fragments)
  in
  let registry = Naming.create_registry () in
  List.iter (fun f -> Naming.replay registry f.Fragment.entries) fragments;
  let restricted =
    Label.set_of_list
      (List.concat_map (fun f -> f.Fragment.restricted) fragments)
  in
  let processes = List.concat_map (fun f -> f.Fragment.initials) fragments in
  let system = Proc.restrict restricted (Proc.par_list processes) in
  let count k =
    List.length (List.filter (fun f -> f.Fragment.kind = k) fragments)
  in
  {
    workload = p.Fragment.workload;
    defs;
    system;
    registry;
    restricted;
    assignments = p.Fragment.assignments;
    fragments;
    fragments_reused;
    symmetry = detect_symmetry fragments;
    num_thread_processes = count Fragment.Thread_unit;
    num_dispatchers = count Fragment.Thread_unit;
    num_queues = count Fragment.Queue;
    num_stimuli = count Fragment.Stimulus;
  }

let translate ?(options = default_options) ?cache (root : Aadl.Instance.t) : t
    =
  of_plan ?cache (plan ~options root)

let pp_summary ppf t =
  Fmt.pf ppf
    "%d thread processes, %d dispatchers, %d queues, %d stimuli; %d \
     definitions; quantum %a"
    t.num_thread_processes t.num_dispatchers t.num_queues t.num_stimuli
    (List.length (Defs.names t.defs))
    Aadl.Time.pp t.workload.Workload.quantum
