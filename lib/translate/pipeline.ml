(* The translation of AADL instance models into ACSR (paper, Algorithm 1),
   factored through the fragment IR:

     plan    (Fragment.plan)   check the model, derive one content-hashed
                               spec per translation unit;
     realize (Fragment.realize or Fragment_cache.find_or_realize)
                               generate — or reuse — each unit's ACSR;
     compose (of_plan)         merge definitions, replay registry
                               entries, restrict the union of internal
                               labels over the parallel composition.

   The composed system is identical to what the former monolithic
   translation produced: fragments are realized and composed in model
   order, each against a fresh registry whose entries are replayed into
   the composed one.  The resulting closed term is deadlock-free iff
   every thread meets its deadline (Section 5). *)

open Acsr

exception Error = Fragment.Error

type t = {
  workload : Workload.t;
  defs : Defs.t;
  system : Proc.t;  (** the closed composition to analyze *)
  registry : Naming.registry;
  restricted : Label.Set.t;
  assignments : (string list * Sched_policy.assignment list) list;
      (** per-processor priority assignments *)
  fragments : Fragment.t list;  (** in composition order *)
  fragments_reused : int;
      (** units served from the {!Fragment_cache} instead of re-generated *)
  num_thread_processes : int;
  num_dispatchers : int;
  num_queues : int;
  num_stimuli : int;
}

type probe_point = Fragment.probe_point = Dispatched | Completed

type probe = Fragment.probe = {
  probe_thread : string list;
  probe_point : probe_point;
  probe_label : Label.t;
}

type options = Fragment.options = {
  quantum : Aadl.Time.t option;
  force_protocol : Aadl.Props.scheduling_protocol option;
  probes : probe list;
}

let default_options = Fragment.default_options

module Metrics = struct
  let plans =
    Obs.Counter.make ~help:"Translation plans derived from instance models"
      "translate_plans_total"

  let reused =
    Obs.Counter.make
      ~help:"Translation units served from the fragment cache"
      "translate_fragments_reused_total"

  let realized =
    Obs.Counter.make ~help:"Translation units generated from scratch"
      "translate_fragments_realized_total"
end

let plan ?options root =
  Obs.Counter.incr Metrics.plans;
  Obs.Span.with_ ~name:"translate.plan" (fun () -> Fragment.plan ?options root)

let of_plan ?(cache : Fragment_cache.t option) (p : Fragment.plan) : t =
  Obs.Span.with_ ~name:"translate.compose" @@ fun () ->
  let realized =
    List.map
      (fun spec ->
        Obs.Span.with_ ~name:"translate.realize"
          ~attrs:[ ("unit", Fragment.spec_id spec) ]
          (fun () ->
            match cache with
            | Some c -> Fragment_cache.find_or_realize c spec
            | None -> (Fragment.realize spec, false)))
      p.Fragment.specs
  in
  let fragments = List.map fst realized in
  let fragments_reused =
    List.fold_left (fun n (_, reused) -> if reused then n + 1 else n) 0 realized
  in
  Obs.Counter.incr ~by:fragments_reused Metrics.reused;
  Obs.Counter.incr
    ~by:(List.length realized - fragments_reused)
    Metrics.realized;
  (* definitions environment *)
  let add_defs env (name, formals, body) =
    try Defs.add env ~name ~formals body
    with Defs.Duplicate n ->
      raise (Error (Fmt.str "duplicate generated process %s" n))
  in
  let defs =
    List.fold_left add_defs Defs.empty
      (List.concat_map (fun f -> f.Fragment.defs) fragments)
  in
  let registry = Naming.create_registry () in
  List.iter (fun f -> Naming.replay registry f.Fragment.entries) fragments;
  let restricted =
    Label.set_of_list
      (List.concat_map (fun f -> f.Fragment.restricted) fragments)
  in
  let processes = List.concat_map (fun f -> f.Fragment.initials) fragments in
  let system = Proc.restrict restricted (Proc.par_list processes) in
  let count k =
    List.length (List.filter (fun f -> f.Fragment.kind = k) fragments)
  in
  {
    workload = p.Fragment.workload;
    defs;
    system;
    registry;
    restricted;
    assignments = p.Fragment.assignments;
    fragments;
    fragments_reused;
    num_thread_processes = count Fragment.Thread_unit;
    num_dispatchers = count Fragment.Thread_unit;
    num_queues = count Fragment.Queue;
    num_stimuli = count Fragment.Stimulus;
  }

let translate ?(options = default_options) ?cache (root : Aadl.Instance.t) : t
    =
  of_plan ?cache (plan ~options root)

let pp_summary ppf t =
  Fmt.pf ppf
    "%d thread processes, %d dispatchers, %d queues, %d stimuli; %d \
     definitions; quantum %a"
    t.num_thread_processes t.num_dispatchers t.num_queues t.num_stimuli
    (List.length (Defs.names t.defs))
    Aadl.Time.pp t.workload.Workload.quantum
