(* A small persistent pool of worker domains for data-parallel loops.

   [Lts.build] expands BFS frontiers in chunks; each chunk is a
   [run pool n f] call that evaluates [f 0 .. f (n-1)] across the workers
   plus the calling domain, pulling indices from a shared atomic counter
   (dynamic scheduling — successor computation is highly irregular, some
   states unfold far more definitions than others).  Workers persist
   across [run] calls, so per-chunk overhead is a broadcast on a condition
   variable rather than a domain spawn.

   Exceptions raised by [f] (e.g. [Semantics.Unguarded_recursion]) are
   captured — first one wins — and re-raised in the caller once the batch
   has drained, so a failing exploration does not leave domains running.
   A failure that originated on a worker domain is re-raised wrapped in
   [Worker_error] so the caller can tell which domain died; a failure on
   the calling domain itself is re-raised as-is. *)

exception Worker_error of { index : int; error : exn }

let () =
  Printexc.register_printer (function
    | Worker_error { index; error } ->
        Some
          (Printf.sprintf "Versa.Pool.Worker_error(worker %d: %s)" index
             (Printexc.to_string error))
    | _ -> None)

let failures =
  Obs.Counter.make
    ~help:"Batches in which a pool worker domain raised an exception"
    "versa_pool_worker_failures_total"

(* The calling domain participates in every batch under this pseudo-index;
   its failures are not wrapped. *)
let caller_index = -1

(* Sentinel batch size marking a [launch] round: each worker runs the
   task once with its own index instead of draining a shared counter. *)
let launch_round = -2

type t = {
  workers : int;  (* worker domains, excluding the caller *)
  mutex : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable generation : int;  (* bumped once per batch *)
  mutable task : (int -> unit) option;
  mutable count : int;  (* size of the current batch *)
  next : int Atomic.t;  (* next index to claim *)
  mutable active : int;  (* workers still inside the current batch *)
  mutable stopping : bool;
  mutable error : (int * exn) option;  (* (origin index, exception) *)
  mutable domains : unit Domain.t list;
}

let record_error pool index e =
  if index <> caller_index then Obs.Counter.incr failures;
  Mutex.lock pool.mutex;
  if pool.error = None then pool.error <- Some (index, e);
  Mutex.unlock pool.mutex

(* Claim and run indices until the batch is exhausted.  On an error the
   remaining indices are drained without running [f]: the batch still
   terminates promptly and deterministically.  [index] identifies the
   draining domain (worker index, or [caller_index]) for attribution. *)
let drain pool ~index f n =
  let continue = ref true in
  while !continue do
    let i = Atomic.fetch_and_add pool.next 1 in
    if i >= n then continue := false
    else
      match f i with
      | () -> ()
      | exception e ->
          record_error pool index e;
          continue := false
  done

let worker pool index () =
  let seen_generation = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock pool.mutex;
    while pool.generation = !seen_generation && not pool.stopping do
      Condition.wait pool.work_ready pool.mutex
    done;
    if pool.stopping then begin
      Mutex.unlock pool.mutex;
      running := false
    end
    else begin
      seen_generation := pool.generation;
      let f = Option.get pool.task and n = pool.count in
      Mutex.unlock pool.mutex;
      Obs.Span.with_ ~name:"pool.worker"
        ~attrs:[ ("worker", string_of_int index) ]
        (fun () ->
          if n = launch_round then
            (* One call per worker, under its own index — so an exception
               raised while this domain is off stealing work from a
               sibling's deque is still attributed to the raising domain,
               not to the deque's owner. *)
            match f index with
            | () -> ()
            | exception e -> record_error pool index e
          else drain pool ~index f n);
      Mutex.lock pool.mutex;
      pool.active <- pool.active - 1;
      if pool.active = 0 then Condition.broadcast pool.work_done;
      Mutex.unlock pool.mutex
    end
  done

let create workers =
  let workers = max 0 workers in
  let pool =
    {
      workers;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      generation = 0;
      task = None;
      count = 0;
      next = Atomic.make 0;
      active = 0;
      stopping = false;
      error = None;
      domains = [];
    }
  in
  pool.domains <- List.init workers (fun i -> Domain.spawn (worker pool i));
  pool

let run pool n f =
  if n > 0 then begin
    Mutex.lock pool.mutex;
    pool.task <- Some f;
    pool.count <- n;
    pool.error <- None;
    Atomic.set pool.next 0;
    pool.active <- pool.workers;
    pool.generation <- pool.generation + 1;
    Condition.broadcast pool.work_ready;
    Mutex.unlock pool.mutex;
    (* The caller is a participant too.  Even if its drain dies with an
       exception that [drain] cannot capture (Out_of_memory,
       Stack_overflow), the batch must still be waited out: returning
       while workers hold the task closure would let a later [run] or
       [shutdown] race them, deadlocking the pool. *)
    Fun.protect
      ~finally:(fun () ->
        Mutex.lock pool.mutex;
        while pool.active > 0 do
          Condition.wait pool.work_done pool.mutex
        done;
        pool.task <- None;
        Mutex.unlock pool.mutex)
      (fun () -> drain pool ~index:caller_index f n);
    match pool.error with
    | Some (index, error) when index <> caller_index ->
        raise (Worker_error { index; error })
    | Some (_, e) -> raise e
    | None -> ()
  end

let launch pool f =
  if pool.workers > 0 then begin
    Mutex.lock pool.mutex;
    pool.task <- Some f;
    pool.count <- launch_round;
    pool.error <- None;
    pool.active <- pool.workers;
    pool.generation <- pool.generation + 1;
    Condition.broadcast pool.work_ready;
    Mutex.unlock pool.mutex
  end

let await pool =
  if pool.workers > 0 then begin
    Mutex.lock pool.mutex;
    while pool.active > 0 do
      Condition.wait pool.work_done pool.mutex
    done;
    pool.task <- None;
    Mutex.unlock pool.mutex;
    match pool.error with
    | Some (index, error) when index <> caller_index ->
        raise (Worker_error { index; error })
    | Some (_, e) -> raise e
    | None -> ()
  end

(* Join every domain even if one of the joins re-raises (a worker that
   died outside [drain] makes [Domain.join] re-raise its exception); the
   first exception wins, but no domain is ever leaked. *)
let rec join_all = function
  | [] -> ()
  | d :: rest ->
      Fun.protect ~finally:(fun () -> join_all rest) (fun () -> Domain.join d)

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.stopping <- true;
  Condition.broadcast pool.work_ready;
  Mutex.unlock pool.mutex;
  let domains = pool.domains in
  pool.domains <- [];
  join_all domains
