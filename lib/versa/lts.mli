(** Explicit labeled transition systems of ACSR terms, built by breadth-first
    state-space exploration.

    States are closed process terms interned in BFS discovery order (the
    initial state is always id 0); this is the substrate on which
    schedulability analysis performs VERSA-style deadlock detection
    (paper, Section 5).  Terms are hash-consed ({!Acsr.Hproc}), so state
    interning and successor deduplication cost O(1) per comparison.

    {2 Parallel exploration and the determinism contract}

    With [?jobs > 1] the builder prefetches successor rows with
    work-stealing worker domains: each worker owns a private Chase–Lev
    deque ({!Deque}) of frontier terms, steals from a sibling only when
    its own deque runs dry, and records every row it computes in a
    store sharded by digest range ({!Shards} — the structural term
    digest picks the shard, so there is no global lock).  There are no
    barriers: workers traverse the graph asynchronously, in whatever
    order stealing yields.

    Results are nevertheless {e bit-identical} to a sequential run —
    same state ids, parents, depths, successor rows, deadlock ids,
    verdicts, shortest traces, and the same exception should successor
    computation raise.  The mechanism is replay: the calling domain
    runs the unchanged sequential BFS loop, consuming a prefetched row
    when one is recorded and computing the row itself when the workers
    have not got there yet (successor computation is deterministic, so
    both paths agree).  Every order-sensitive decision — interning,
    parent assignment, budget/deadline/early-exit checks — happens on
    that replay, in queue order.  Parallelism can therefore only affect
    throughput, never results (asserted by the test suite's
    jobs-equivalence properties).

    {2 Symmetry (orbit) reduction}

    With a non-trivial [?symmetry] spec ({!Acsr.Symmetry}, built by
    [Translate.Pipeline] from interchangeable thread units), every
    successor is canonicalized up to permutation of interchangeable
    parallel components {e before} the visited-set lookup, so the
    exploration visits one representative per orbit.  Verdicts
    (deadlock-freedom), counterexample lengths and BFS depths are
    preserved exactly — canonicalization is an automorphism of the
    transition system — while visited-state counts shrink by up to the
    product of the orbit class factorials.  Canonicalization happens
    inside the successor function, which workers and replay share, so
    reduction composes with [jobs] and the bit-identity contract above
    is unchanged for any fixed [symmetry] spec.  {!path_to} and
    {!check_path_to} de-canonicalize the stored steps (composing the
    permutation witnesses along the path), so diagnostic traces name the
    real system's threads; state ids in the returned path index the
    canonical store.  Note that a reduced run's state {e numbering}
    differs from an unreduced run's — equivalence is of verdicts and
    trace lengths, not ids (asserted by the symmetry test suite). *)

open Acsr

type semantics = Prioritized | Unprioritized

type state_id = int
(** Dense state identifiers, assigned in BFS discovery order. *)

type t

(** {1 Exploration telemetry}

    Collected during the build at negligible cost; surfaced by the
    [--stats] CLI flag and the bench harness ([BENCH_explore.json]). *)

type stats = {
  jobs : int;  (** parallelism the LTS was built with *)
  wall_s : float;  (** total build time, seconds *)
  expand_s : float;  (** successor computation (the parallel phase) *)
  merge_s : float;  (** interning and BFS bookkeeping (sequential phase) *)
  num_states : int;
  num_transitions : int;
  num_deadlocks : int;
  peak_frontier : int;  (** max states discovered but not yet expanded *)
  depth_levels : int;  (** deepest BFS level reached + 1 *)
  intern_hits : int;  (** successor interns that found an existing state *)
  intern_misses : int;  (** interns that discovered a new state *)
  hashcons_nodes : int;  (** global hash-cons table size after the build *)
  store_bytes : int;
      (** estimated bytes retained by the state store (successor rows and
          bookkeeping for {!build}; flat id/parent/step arrays for
          {!check}) — the figure behind the compact engine's
          bytes-per-state win *)
  early_exit_depth : int option;
      (** BFS depth of the first deadlock when [stop_at_deadlock] fired:
          the distance to the first deadline miss, which bounds the work
          of an early-exit run *)
  deadline_expired : bool;
      (** the wall-clock budget ([build_config.deadline]) stopped the
          exploration; [truncated] is then also true and the absence of
          deadlocks is inconclusive *)
  steals : int;
      (** successful deque steals by worker domains; 0 on sequential
          runs.  A healthy parallel run steals rarely relative to
          expansions — frequent stealing means the graph fans out too
          slowly to keep the domains fed *)
  steal_attempts : int;
      (** steal attempts, successful or not; the steal {e failure} rate
          (1 - steals/steal_attempts) spikes when workers are starved *)
  prefetch_hits : int;
      (** replay successor lookups answered by a worker-prefetched row —
          the fraction of expansion work actually moved off the critical
          path; the headline number for parallel efficiency *)
  prefetch_misses : int;
      (** replay successor lookups computed on the calling domain
          because no worker had recorded the row yet *)
  orbit_hits : int;
      (** successors the symmetry reduction folded onto a different
          orbit representative — the per-successor win of the reduction;
          0 when symmetry is off or the model has no interchangeable
          components.  Parallel runs can over-count (workers and replay
          may canonicalize the same row); like [prefetch_misses], this
          is telemetry, not part of the determinism contract *)
  orbit_misses : int;
      (** successors that were already orbit-canonical *)
  canon_s : float;
      (** wall time spent canonicalizing states (summed across domains) *)
}

val stats : t -> stats

val states_per_sec : stats -> float
(** [num_states / wall_s]; the throughput figure tracked across PRs. *)

val dedup_hit_rate : stats -> float
(** Fraction of successor interns that deduplicated into an existing
    state, in [0,1].  High values mean the state graph re-converges often
    (typical of periodic workloads). *)

val bytes_per_state : stats -> float
(** [store_bytes / num_states]. *)

val pp_stats : stats Fmt.t

(** {1 Accessors} *)

val num_states : t -> int

val num_transitions : t -> int
(** Cached at build time: O(1). *)

val initial : t -> state_id
(** Always state 0. *)

val term : t -> state_id -> Proc.t
(** The process term of a state (rebuilt from its hash-consed form). *)

val successors : t -> state_id -> (Step.t * state_id) array
(** Outgoing transitions, in the canonical successor order (sorted by
    step, then structurally by target term). *)

val depth : t -> state_id -> int
(** BFS depth: the length of the shortest path from the initial state. *)

val truncated : t -> bool
(** True when exploration stopped early (state budget exhausted or
    [stop_at_deadlock] fired); absence of deadlocks is then inconclusive. *)

val semantics_of : t -> semantics

val is_deadlock : t -> state_id -> bool
(** The state was expanded and has no outgoing transition. *)

val deadlocks : t -> state_id list
(** All deadlock states, in discovery order.  Cached at build time: O(1). *)

val path_to : t -> state_id -> (Step.t * state_id) list
(** BFS-shortest path from the initial state, as (step, reached state). *)

(** {1 Building} *)

type build_config = {
  max_states : int option;  (** stop after discovering this many states *)
  stop_at_deadlock : bool;
      (** stop expanding as soon as one deadlock has been discovered *)
  parallel_cutover : int;
      (** frontier width below which the run stays sequential even when
          [jobs > 1]; the worker pool is spawned lazily on the first
          frontier that crosses it.  Small state spaces never pay the
          domain spawn + cross-domain GC cost this way, and a run that
          never crosses the cutover is exactly the sequential build. *)
  deadline : float option;
      (** wall-clock budget as an absolute time on the ambient
          {!Timed.Clock} scale — the time-domain twin of [max_states].
          When it passes, the exploration stops at the next merge step
          and reports [truncated] with [stats.deadline_expired]; the
          explored prefix (states, parents, traces) remains valid.
          Under the real clock a deadline makes the {e amount explored}
          timing-dependent, so results under an expiring deadline are
          not reproducible run-to-run — the service layer qualifies
          such verdicts accordingly.  Under a {!Timed.Sim} clock with
          [auto_advance] the expiry point is deterministic, which is
          how the timeout test suite runs second-scale budgets in
          wall-clock milliseconds. *)
  poll : (unit -> bool) option;
      (** cooperative stop hook, called between sequential merge steps
          (never from worker domains).  Returning [true] truncates the
          run exactly like an exhausted budget; the service layer points
          this at a job's cancellation flag.  Must be cheap and
          side-effect-free. *)
}

val default_config : build_config
(** 2M states, explore exhaustively, cutover at a 512-state frontier, no
    wall-clock deadline, no poll hook. *)

val build :
  ?config:build_config ->
  ?semantics:semantics ->
  ?jobs:int ->
  ?symmetry:Symmetry.spec ->
  Defs.t ->
  Proc.t ->
  t
(** Explore the state space of a closed term breadth-first.  [semantics]
    defaults to [Prioritized].

    [symmetry] (default {!Acsr.Symmetry.empty}, i.e. off) enables orbit
    reduction — see the module preamble.  The spec must describe the
    explored term: its slot layout and renamings come from the same
    translation that produced [defs] and the root.

    [jobs] (default 1) is the number of work-stealing worker domains
    prefetching successor rows; the calling domain additionally runs the
    (cheap) sequential replay that assigns ids and merges rows.  Workers
    are only spawned once a frontier reaches [config.parallel_cutover]
    states.  Parallelism only affects throughput, never results — see
    the determinism contract in the module preamble.  An exception
    raised by successor computation on a worker domain does not poison
    the run: the replay recomputes the row and (deterministically)
    re-raises it exactly where a sequential run would, while failures on
    states a truncated run never consumes are dropped (counted in
    [versa_pool_worker_failures_total]). *)

val pp_summary : t Fmt.t
(** One-line summary: state/transition counts, truncation, semantics. *)

(** {1 On-the-fly checking}

    Deadlock detection without materializing the graph: {!check} walks
    the same transition system in the same BFS order as {!build} but
    retains, per state, only the hash-consed term pointer, the BFS parent
    id and the arriving step, in flat growable arrays — no successor
    rows, no per-state records.  With [stop_at_deadlock] it answers
    unschedulable-model queries in time (and memory) proportional to the
    distance to the first deadline miss rather than to the whole state
    space; run to exhaustion it yields the same verdict, deadlock ids and
    shortest counterexample paths as a full build (asserted by the test
    suite and the [bench-smoke] gate). *)

type check_result
(** Outcome of an on-the-fly exploration: verdict data plus the compact
    parent-pointer store, sufficient to rebuild counterexample paths. *)

val check :
  ?config:build_config ->
  ?semantics:semantics ->
  ?jobs:int ->
  ?symmetry:Symmetry.spec ->
  Defs.t ->
  Proc.t ->
  check_result
(** Same exploration order, budgets and parallelism contract as
    {!build}; visited-state counts, deadlock ids and shortest paths
    coincide exactly with a [build] under the same [config]. *)

val check_num_states : check_result -> int
(** States visited (discovered); for an early-exit run this is the
    explored prefix, not the full space. *)

val check_num_transitions : check_result -> int

val check_truncated : check_result -> bool
(** Exploration stopped early (budget or [stop_at_deadlock]). *)

val check_deadlocks : check_result -> state_id list
(** Deadlocks among the visited states, in discovery order.  Complete
    exactly when [not (check_truncated c)]. *)

val check_semantics : check_result -> semantics
val check_stats : check_result -> stats

val check_path_to : check_result -> state_id -> (Step.t * state_id) list
(** BFS-shortest path from the initial state, rebuilt from the parent
    pointers; same shape as {!path_to}. *)

val check_term : check_result -> state_id -> Proc.t
(** The process term of a visited state. *)

val pp_check_summary : check_result Fmt.t
(** One-line summary, matching {!pp_summary}'s format plus an
    [on-the-fly] marker (and [early exit] when a deadlock stopped the
    run). *)
