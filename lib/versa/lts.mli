(** Explicit labeled transition systems of ACSR terms, built by breadth-first
    state-space exploration.

    States are closed process terms interned in BFS discovery order (the
    initial state is always id 0); this is the substrate on which
    schedulability analysis performs VERSA-style deadlock detection
    (paper, Section 5).  Terms are hash-consed ({!Acsr.Hproc}), so state
    interning and successor deduplication cost O(1) per comparison, and
    the builder can fan successor computation out over several domains
    ([?jobs]) while keeping results bit-identical to a sequential build. *)

open Acsr

type semantics = Prioritized | Unprioritized

type state_id = int
(** Dense state identifiers, assigned in BFS discovery order. *)

type t

(** {1 Exploration telemetry}

    Collected during the build at negligible cost; surfaced by the
    [--stats] CLI flag and the bench harness ([BENCH_explore.json]). *)

type stats = {
  jobs : int;  (** parallelism the LTS was built with *)
  wall_s : float;  (** total build time, seconds *)
  expand_s : float;  (** successor computation (the parallel phase) *)
  merge_s : float;  (** interning and BFS bookkeeping (sequential phase) *)
  num_states : int;
  num_transitions : int;
  num_deadlocks : int;
  peak_frontier : int;  (** max states discovered but not yet expanded *)
  depth_levels : int;  (** deepest BFS level reached + 1 *)
  intern_hits : int;  (** successor interns that found an existing state *)
  intern_misses : int;  (** interns that discovered a new state *)
  hashcons_nodes : int;  (** global hash-cons table size after the build *)
}

val stats : t -> stats

val states_per_sec : stats -> float
(** [num_states / wall_s]; the throughput figure tracked across PRs. *)

val dedup_hit_rate : stats -> float
(** Fraction of successor interns that deduplicated into an existing
    state, in [0,1].  High values mean the state graph re-converges often
    (typical of periodic workloads). *)

val pp_stats : stats Fmt.t

(** {1 Accessors} *)

val num_states : t -> int

val num_transitions : t -> int
(** Cached at build time: O(1). *)

val initial : t -> state_id
(** Always state 0. *)

val term : t -> state_id -> Proc.t
(** The process term of a state (rebuilt from its hash-consed form). *)

val successors : t -> state_id -> (Step.t * state_id) array
(** Outgoing transitions, in the canonical successor order (sorted by
    step, then structurally by target term). *)

val depth : t -> state_id -> int
(** BFS depth: the length of the shortest path from the initial state. *)

val truncated : t -> bool
(** True when exploration stopped early (state budget exhausted or
    [stop_at_deadlock] fired); absence of deadlocks is then inconclusive. *)

val semantics_of : t -> semantics

val is_deadlock : t -> state_id -> bool
(** The state was expanded and has no outgoing transition. *)

val deadlocks : t -> state_id list
(** All deadlock states, in discovery order.  Cached at build time: O(1). *)

val path_to : t -> state_id -> (Step.t * state_id) list
(** BFS-shortest path from the initial state, as (step, reached state). *)

(** {1 Building} *)

type build_config = {
  max_states : int option;  (** stop after discovering this many states *)
  stop_at_deadlock : bool;
      (** stop expanding as soon as one deadlock has been discovered *)
}

val default_config : build_config
(** 2M states, explore exhaustively. *)

val build :
  ?config:build_config ->
  ?semantics:semantics ->
  ?jobs:int ->
  Defs.t ->
  Proc.t ->
  t
(** Explore the state space of a closed term breadth-first.  [semantics]
    defaults to [Prioritized].

    [jobs] (default 1) sets the number of domains computing successor
    sets.  Parallelism only affects throughput, never results: interning,
    parent assignment, truncation and budget checks run sequentially in
    queue order, so state ids, parents, depths, successor rows, verdicts
    and shortest traces are identical for every [jobs] value (asserted by
    the test suite). *)

val pp_summary : t Fmt.t
(** One-line summary: state/transition counts, truncation, semantics. *)
