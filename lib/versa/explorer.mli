(** VERSA-style deadlock detection over the prioritized transition system.

    This is the bridge between the process-algebraic substrate and the
    schedulability question of the paper: a missed deadline manifests as a
    deadlocked state, so "is the model schedulable?" becomes "is the
    prioritized LTS deadlock-free?" (Section 5). *)

open Acsr

type engine =
  | Full  (** materialize the whole graph with {!Lts.build} *)
  | On_the_fly
      (** compact parent-pointer exploration with {!Lts.check}; with
          [stop_at_deadlock] it terminates at the first reachable
          deadlock *)

type verdict =
  | Deadlock_free
      (** exhaustive exploration found no deadlock: every timing
          constraint of the model is met *)
  | Deadlock of { state : Lts.state_id; trace : Trace.t }
      (** a reachable state with no outgoing prioritized transition; the
          trace is the BFS-shortest failing scenario *)
  | Inconclusive of string
      (** exploration was truncated before finding a deadlock *)

type space =
  | Graph of Lts.t
      (** full build: callers may walk successors, export DOT, run
          observer/latency queries *)
  | Summary of Lts.check_result
      (** on-the-fly: counts, deadlocks and counterexample paths only *)

type result = { space : space; verdict : verdict; elapsed : float }

val check_deadlock :
  ?engine:engine ->
  ?max_states:int ->
  ?stop_at_deadlock:bool ->
  ?jobs:int ->
  ?deadline:float ->
  ?poll:(unit -> bool) ->
  ?symmetry:Symmetry.spec ->
  Defs.t ->
  Proc.t ->
  result
(** Explore the prioritized state space of a closed term and report the
    first deadlock found (with its shortest trace) or deadlock-freedom.
    [engine] defaults to [Full]; both engines produce identical verdicts
    and traces under the same budgets.  [stop_at_deadlock] (default
    [true]) stops at the first deadlock; with [false] the space is
    explored exhaustively (up to [max_states], default 2M).

    [jobs] (default 1) is the number of work-stealing worker domains
    prefetching successor rows, forwarded to {!Lts.build}/{!Lts.check};
    it changes throughput only — verdicts, deadlock ids and traces are
    bit-identical at any [jobs] (the determinism contract in {!Lts}).

    [deadline] is an absolute bound on the ambient {!Timed.Clock}
    scale: past it the exploration truncates and the verdict is
    [Inconclusive "wall-clock budget expired …"], never a hang.  [poll]
    is a cooperative cancellation hook checked between merge steps
    ({!Lts.build_config}).

    [symmetry] (default {!Acsr.Symmetry.empty}) enables orbit reduction
    in either engine — see the {!Lts} preamble.  Verdicts and trace
    lengths are unchanged; traces are de-canonicalized before being
    returned, so failing scenarios name the real model's threads. *)

val deadlock_verdict : Lts.t -> verdict
(** Derive the verdict from an already-built LTS. *)

val is_deadlock_free : result -> bool

(** {1 Engine-independent accessors} *)

val lts : result -> Lts.t option
(** The full graph, when the [Full] engine produced one. *)

val num_states : result -> int
val num_transitions : result -> int
val deadlocks : result -> Lts.state_id list
val truncated : result -> bool
val stats : result -> Lts.stats

val trace_to : result -> Lts.state_id -> Trace.t
(** Shortest trace to a visited state, from either engine's store. *)

val pp_space : space Fmt.t
(** One-line state-space summary ({!Lts.pp_summary} or
    {!Lts.pp_check_summary}). *)

val pp_verdict : verdict Fmt.t
val pp_result : result Fmt.t
