(** VERSA-style deadlock detection over the prioritized state space. *)

open Acsr

type verdict =
  | Deadlock_free
  | Deadlock of { state : Lts.state_id; trace : Trace.t }
  | Inconclusive of string

type result = { lts : Lts.t; verdict : verdict; elapsed : float }

val deadlock_verdict : Lts.t -> verdict
(** Verdict from an already-built LTS. *)

val check_deadlock :
  ?max_states:int ->
  ?stop_at_deadlock:bool ->
  ?jobs:int ->
  Defs.t ->
  Proc.t ->
  result
(** Explore the prioritized state space of a closed term looking for
    deadlocks.  [stop_at_deadlock] (default true) stops at the first
    deadlock; the reported trace is then the shortest failing scenario.
    [jobs] (default 1) parallelizes successor computation across domains
    without changing any result — see {!Lts.build}. *)

val is_deadlock_free : result -> bool
val pp_verdict : verdict Fmt.t
val pp_result : result Fmt.t
