(* Explicit labeled transition systems produced by state-space exploration
   of ACSR terms.

   States are closed process terms, interned into integer ids in BFS
   discovery order (the initial state has id 0).  Each state records its
   outgoing (step, successor) row and its BFS parent, so that shortest
   diagnostic traces can be rebuilt without re-exploration — this mirrors
   what the VERSA tool reports to the user (paper, Section 5).

   Terms are hash-consed ([Acsr.Hproc]), so the state table keys on an
   integer id and every successor comparison is O(1).  The builder walks
   the BFS queue in fixed-size chunks: successor computation for a chunk —
   the expensive, per-state-independent part — optionally fans out over a
   pool of worker domains ([jobs] > 1), while interning, parent assignment
   and truncation checks always run sequentially in queue order.  Because
   every order-sensitive decision happens in that sequential merge, a
   parallel build produces bit-identical ids, parents, depths, rows and
   traces to the sequential one (checked by the test suite). *)

open Acsr

(* Every exploration publishes into the process-wide Obs registry at the
   end of the run: totals as counters (accumulating across runs in a
   batch/serve process), last-run shape as gauges.  The per-run [stats]
   record stays the per-result API; the registry is the cross-run,
   cross-layer view (`--stats`, the service `metrics` op, bench). *)
module Metrics = struct
  let runs =
    Obs.Counter.make ~help:"State-space explorations completed"
      "versa_explore_runs_total"

  let states =
    Obs.Counter.make ~help:"States discovered across all explorations"
      "versa_explore_states_total"

  let transitions =
    Obs.Counter.make ~help:"Transitions computed across all explorations"
      "versa_explore_transitions_total"

  let deadlocks =
    Obs.Counter.make ~help:"Deadlocked states discovered across all explorations"
      "versa_explore_deadlocks_total"

  let intern_hits =
    Obs.Counter.make ~help:"State interns that found an existing state"
      "versa_intern_hits_total"

  let intern_misses =
    Obs.Counter.make ~help:"State interns that discovered a new state"
      "versa_intern_misses_total"

  let deadline_expired =
    Obs.Counter.make ~help:"Explorations stopped by the wall-clock budget"
      "versa_explore_deadline_expired_total"

  let states_per_sec =
    Obs.Gauge.make ~help:"Discovery rate of the most recent exploration"
      "versa_explore_states_per_sec"

  let peak_frontier =
    Obs.Gauge.make ~help:"Peak frontier width of the most recent exploration"
      "versa_explore_peak_frontier"

  let depth_levels =
    Obs.Gauge.make ~help:"BFS levels of the most recent exploration"
      "versa_explore_depth_levels"

  let early_exit_depth =
    Obs.Gauge.make
      ~help:"BFS depth of the deadlock that stopped the most recent early-exit run"
      "versa_explore_early_exit_depth"

  let hashcons_nodes =
    Obs.Gauge.make ~help:"Global hash-cons table size after the last exploration"
      "versa_hashcons_nodes"

  let store_bytes =
    Obs.Gauge.make
      ~help:"Estimated bytes retained by the last exploration's state store"
      "versa_store_bytes"

  let frontier =
    Obs.Histogram.make ~help:"Frontier width at each expansion step"
      ~buckets:[ 1.; 10.; 100.; 1_000.; 10_000.; 100_000. ]
      "versa_explore_frontier_size"

  let wall =
    Obs.Histogram.make ~help:"Exploration wall time (seconds)"
      "versa_explore_wall_seconds"
end

type semantics = Prioritized | Unprioritized

type state_id = int

type stats = {
  jobs : int;
  wall_s : float;  (** total build time *)
  expand_s : float;  (** computing successor sets (parallel part) *)
  merge_s : float;  (** interning + BFS bookkeeping (sequential part) *)
  num_states : int;
  num_transitions : int;
  num_deadlocks : int;
  peak_frontier : int;  (** max discovered-but-unexpanded states *)
  depth_levels : int;  (** deepest BFS level reached + 1 *)
  intern_hits : int;  (** state interns that found an existing state *)
  intern_misses : int;  (** state interns that discovered a new state *)
  hashcons_nodes : int;  (** global hash-cons table size after the build *)
  store_bytes : int;  (** estimated bytes retained by the state store *)
  early_exit_depth : int option;
      (** BFS depth of the deadlock that stopped an early-exit run *)
  deadline_expired : bool;
      (** the wall-clock budget ([config.deadline]) stopped the run *)
}

let states_per_sec s =
  if s.wall_s > 0. then float_of_int s.num_states /. s.wall_s else 0.

let dedup_hit_rate s =
  let total = s.intern_hits + s.intern_misses in
  if total = 0 then 0. else float_of_int s.intern_hits /. float_of_int total

let bytes_per_state s =
  if s.num_states = 0 then 0.
  else float_of_int s.store_bytes /. float_of_int s.num_states

(* One registry write-out per exploration, at the end of the run — hot
   loops never touch the registry except for the frontier histogram. *)
let publish_stats s =
  Obs.Counter.incr Metrics.runs;
  Obs.Counter.incr ~by:s.num_states Metrics.states;
  Obs.Counter.incr ~by:s.num_transitions Metrics.transitions;
  Obs.Counter.incr ~by:s.num_deadlocks Metrics.deadlocks;
  Obs.Counter.incr ~by:s.intern_hits Metrics.intern_hits;
  Obs.Counter.incr ~by:s.intern_misses Metrics.intern_misses;
  if s.deadline_expired then Obs.Counter.incr Metrics.deadline_expired;
  Obs.Gauge.set Metrics.states_per_sec (states_per_sec s);
  Obs.Gauge.set Metrics.peak_frontier (float_of_int s.peak_frontier);
  Obs.Gauge.set Metrics.depth_levels (float_of_int s.depth_levels);
  Option.iter
    (fun d -> Obs.Gauge.set Metrics.early_exit_depth (float_of_int d))
    s.early_exit_depth;
  Obs.Gauge.set Metrics.hashcons_nodes (float_of_int s.hashcons_nodes);
  Obs.Gauge.set Metrics.store_bytes (float_of_int s.store_bytes);
  Obs.Histogram.observe Metrics.wall s.wall_s

type t = {
  term_of : Hproc.t array;  (** state id -> term *)
  edges : (Step.t * state_id) array array;  (** outgoing transitions *)
  expanded : bool array;
      (** whether the state's successors were computed; frontier states of
          a truncated exploration are not expanded *)
  parent : (state_id * Step.t) option array;  (** BFS tree, for traces *)
  depth : int array;  (** BFS depth *)
  truncated : bool;  (** true if exploration stopped before exhaustion *)
  semantics : semantics;
  transitions : int;  (** cached at build time *)
  deadlock_ids : state_id list;  (** cached at build time, discovery order *)
  stats : stats;
}

let num_states lts = Array.length lts.term_of
let num_transitions lts = lts.transitions

let initial (_ : t) : state_id = 0
let term lts id = Hproc.to_proc lts.term_of.(id)
let successors lts id = lts.edges.(id)
let depth lts id = lts.depth.(id)
let truncated lts = lts.truncated
let semantics_of lts = lts.semantics
let stats lts = lts.stats

let is_deadlock lts id = lts.expanded.(id) && Array.length lts.edges.(id) = 0

let deadlocks lts = lts.deadlock_ids

(* Rebuild the BFS-shortest path from the initial state to [id] as a list
   of (step, reached state). *)
let path_to lts id =
  let rec up id acc =
    match lts.parent.(id) with
    | None -> acc
    | Some (pred, step) -> up pred ((step, id) :: acc)
  in
  up id []

type build_config = {
  max_states : int option;  (** stop after discovering this many states *)
  stop_at_deadlock : bool;
      (** stop expanding as soon as one deadlock has been discovered *)
  parallel_cutover : int;
      (** frontier width below which expansion stays sequential even when
          [jobs > 1] *)
  deadline : float option;
      (** absolute wall-clock time ([Unix.gettimeofday] scale) past which
          the exploration stops and reports truncation — the time-domain
          twin of [max_states] *)
  poll : (unit -> bool) option;
      (** cooperative stop hook, checked between merge steps: returning
          [true] truncates the run (job cancellation in the service
          layer) *)
}

let default_config =
  { max_states = Some 2_000_000; stop_at_deadlock = false;
    parallel_cutover = 512; deadline = None; poll = None }

(* The stop predicate shared by [build] and [check].  [deadline] and
   [poll] are evaluated in the sequential merge only, so they cannot
   perturb parallel expansion; both are [None] on the default path and
   then cost nothing. *)
let budget_stop config ~len ~deadline_hit () =
  (match config.max_states with Some m -> len >= m | None -> false)
  || (match config.deadline with
     | Some d when Unix.gettimeofday () > d ->
         deadline_hit := true;
         true
     | Some _ | None -> false)
  || (match config.poll with Some p -> p () | None -> false)

let step_function semantics cache defs =
  match semantics with
  | Prioritized -> Semantics.h_prioritized ~cache defs
  | Unprioritized -> Semantics.h_steps ~cache defs

(* Adaptive chunk scheduler shared by [build] and [check].

   Successor computation for a frontier chunk is per-state independent,
   so it can fan out over a domain pool — but domains are only worth
   paying for on wide frontiers: spawning them costs milliseconds and,
   once they exist, every minor GC becomes a stop-the-world rendezvous
   across all domains, which swamps the win on small models (the
   `avionics` jobs4 regression in BENCH_explore.json).  So expansion
   starts sequential and only hands a chunk to the pool once the
   frontier is at least [cutover] states wide; the pool itself is
   spawned lazily on first parallel chunk.  A run that never crosses the
   cutover is instruction-for-instruction the sequential build.

   Chunking never affects results: interning and every order-sensitive
   decision happen in the sequential merge, in queue order, so verdicts,
   ids and traces are bit-identical for every [jobs]/[cutover] value. *)
module Expander = struct
  type t = {
    jobs : int;
    cutover : int;
    max_chunk : int;
    mutable pool : Pool.t option;
    mutable expand_s : float;
  }

  let create ~jobs ~cutover =
    {
      jobs;
      cutover = max 1 cutover;
      max_chunk = (if jobs > 1 then jobs * 32 else 1);
      pool = None;
      expand_s = 0.;
    }

  let chunk_size e ~frontier =
    if e.jobs > 1 && frontier >= e.cutover then min e.max_chunk frontier
    else 1

  let run e n f =
    let t0 = Unix.gettimeofday () in
    (if e.jobs > 1 && n > 1 then begin
       let pool =
         match e.pool with
         | Some p -> p
         | None ->
             let p = Pool.create (e.jobs - 1) in
             e.pool <- Some p;
             p
       in
       (* sequential chunks stay span-free: a span per state would swamp
          the trace and the overhead budget *)
       Obs.Span.with_ ~name:"lts.expand"
         ~attrs:[ ("chunk", string_of_int n) ]
         (fun () -> Pool.run pool n f)
     end
     else
       for i = 0 to n - 1 do
         f i
       done);
    e.expand_s <- e.expand_s +. (Unix.gettimeofday () -. t0)

  let shutdown e = Option.iter Pool.shutdown e.pool
end

(* Growable state table, keyed by the hash-cons id of the term. *)
module Table = struct
  type entry = {
    mutable row : (Step.t * state_id) array;
    mutable was_expanded : bool;
    mutable par : (state_id * Step.t) option;
    mutable dep : int;
    tm : Hproc.t;
  }

  type nonrec t = {
    ids : (int, state_id) Hashtbl.t;  (* Hproc id -> state id *)
    mutable entries : entry array;
    mutable len : int;
    mutable hits : int;
    mutable misses : int;
  }

  let dummy_entry =
    { row = [||]; was_expanded = false; par = None; dep = 0; tm = Hproc.nil }

  let create () =
    {
      ids = Hashtbl.create 4096;
      entries = Array.make 1024 dummy_entry;
      len = 0;
      hits = 0;
      misses = 0;
    }

  let get t id = t.entries.(id)

  let intern t term =
    match Hashtbl.find_opt t.ids (Hproc.id term) with
    | Some id ->
        t.hits <- t.hits + 1;
        (id, false)
    | None ->
        t.misses <- t.misses + 1;
        if t.len = Array.length t.entries then begin
          let bigger = Array.make (2 * t.len) dummy_entry in
          Array.blit t.entries 0 bigger 0 t.len;
          t.entries <- bigger
        end;
        let id = t.len in
        t.entries.(id) <-
          { row = [||]; was_expanded = false; par = None; dep = 0; tm = term };
        Hashtbl.add t.ids (Hproc.id term) id;
        t.len <- t.len + 1;
        (id, true)
end

let pp_semantics ppf = function
  | Prioritized -> Fmt.string ppf "prioritized"
  | Unprioritized -> Fmt.string ppf "unprioritized"

let span_attrs semantics jobs =
  [ ("semantics", Fmt.str "%a" pp_semantics semantics);
    ("jobs", string_of_int jobs) ]

let build ?(config = default_config) ?(semantics = Prioritized) ?(jobs = 1)
    defs root =
  let jobs = max 1 jobs in
  Obs.Span.with_ ~name:"lts.build" ~attrs:(span_attrs semantics jobs)
  @@ fun () ->
  let t_start = Unix.gettimeofday () in
  let cache = Semantics.make_cache () in
  let next = step_function semantics cache defs in
  let table = Table.create () in
  let truncated = ref false in
  let deadlock_found = ref false in
  let deadlock_ids_rev = ref [] in
  let transitions = ref 0 in
  let peak_frontier = ref 0 in
  let root_id, _ = Table.intern table (Hproc.of_proc root) in
  ignore root_id;
  let deadline_hit = ref false in
  let over_budget () =
    budget_stop config ~len:table.Table.len ~deadline_hit ()
  in
  let ex = Expander.create ~jobs ~cutover:config.parallel_cutover in
  let succs = Array.make (max 1 ex.Expander.max_chunk) [] in
  Fun.protect
    ~finally:(fun () -> Expander.shutdown ex)
    (fun () ->
      (* The BFS queue is implicit: state ids are assigned in discovery
         order, so the queue contents are exactly the ids [head .. len). *)
      let head = ref 0 in
      let stop = ref false in
      while (not !stop) && !head < table.Table.len do
        let frontier = table.Table.len - !head in
        if frontier > !peak_frontier then peak_frontier := frontier;
        Obs.Histogram.observe Metrics.frontier (float_of_int frontier);
        let n = Expander.chunk_size ex ~frontier in
        let base = !head in
        Expander.run ex n (fun i ->
            succs.(i) <- next (Table.get table (base + i)).Table.tm);
        (* Sequential merge, in queue order: interning, parent/depth
           assignment and the truncation checks are order-sensitive and
           replicate the sequential exploration exactly. *)
        let i = ref 0 in
        while (not !stop) && !i < n do
          if (config.stop_at_deadlock && !deadlock_found) || over_budget ()
          then begin
            (* leave this state (and every later one) unexpanded; the
               exploration is incomplete *)
            truncated := true;
            stop := true
          end
          else begin
            let id = !head + !i in
            let entry = Table.get table id in
            let s = succs.(!i) in
            if s = [] then begin
              deadlock_found := true;
              deadlock_ids_rev := id :: !deadlock_ids_rev
            end;
            let row =
              List.map
                (fun (step, term') ->
                  let id', fresh = Table.intern table term' in
                  if fresh then begin
                    let e' = Table.get table id' in
                    e'.Table.par <- Some (id, step);
                    e'.Table.dep <- entry.Table.dep + 1
                  end;
                  (step, id'))
                s
            in
            entry.Table.row <- Array.of_list row;
            entry.Table.was_expanded <- true;
            transitions := !transitions + Array.length entry.Table.row;
            incr i
          end
        done;
        head := !head + !i
      done);
  let n = table.Table.len in
  let entry i = table.Table.entries.(i) in
  let depth = Array.init n (fun i -> (entry i).Table.dep) in
  let wall_s = Unix.gettimeofday () -. t_start in
  let stats =
    {
      jobs;
      wall_s;
      expand_s = ex.Expander.expand_s;
      merge_s = wall_s -. ex.Expander.expand_s;
      num_states = n;
      num_transitions = !transitions;
      num_deadlocks = List.length !deadlock_ids_rev;
      peak_frontier = !peak_frontier;
      depth_levels = 1 + Array.fold_left max 0 depth;
      intern_hits = table.Table.hits;
      intern_misses = table.Table.misses;
      hashcons_nodes = Hproc.table_size ();
      (* per state: entry record + entries/term_of/edges/expanded/parent/
         depth array slots + hashtable binding + parent option box; per
         transition: a (step, id) tuple in a row.  An estimate, counted
         in words. *)
      store_bytes = 8 * ((21 * n) + (3 * !transitions));
      early_exit_depth =
        (match (config.stop_at_deadlock, List.rev !deadlock_ids_rev) with
        | true, d :: _ -> Some (entry d).Table.dep
        | _ -> None);
      deadline_expired = !deadline_hit;
    }
  in
  publish_stats stats;
  {
    term_of = Array.init n (fun i -> (entry i).Table.tm);
    edges = Array.init n (fun i -> (entry i).Table.row);
    expanded = Array.init n (fun i -> (entry i).Table.was_expanded);
    parent = Array.init n (fun i -> (entry i).Table.par);
    depth;
    truncated = !truncated;
    semantics;
    transitions = !transitions;
    deadlock_ids = List.rev !deadlock_ids_rev;
    stats;
  }

(* {1 On-the-fly checking}

   The paper reduces schedulability to reachability of a deadlocked
   state, so for an unschedulable model nothing past the first deadlock
   is ever needed — and even for exhaustive sweeps, the successor rows
   are only needed transiently.  [check] explores the same prioritized
   transition system as [build], in the same order, but stores per state
   only the hash-consed term (one pointer into the global intern table),
   the BFS parent id and the arriving step — enough to rebuild the
   shortest counterexample path — in flat growable arrays.  No successor
   rows, no expansion flags, no per-state records. *)

module Store = struct
  type t = {
    ids : (int, state_id) Hashtbl.t;  (* Hproc id -> state id *)
    mutable terms : Hproc.t array;
    mutable pred : int array;  (* BFS parent; -1 for the root *)
    mutable steps : Step.t array;  (* step from pred; slot 0 is a dummy *)
    mutable len : int;
    mutable hits : int;
    mutable misses : int;
  }

  let dummy_step = Step.Tau (None, 0)

  let create () =
    {
      ids = Hashtbl.create 4096;
      terms = Array.make 1024 Hproc.nil;
      pred = Array.make 1024 (-1);
      steps = Array.make 1024 dummy_step;
      len = 0;
      hits = 0;
      misses = 0;
    }

  let grow st =
    let n = Array.length st.terms in
    let copy dummy src =
      let bigger = Array.make (2 * n) dummy in
      Array.blit src 0 bigger 0 n;
      bigger
    in
    st.terms <- copy Hproc.nil st.terms;
    st.pred <- copy (-1) st.pred;
    st.steps <- copy dummy_step st.steps

  (* Intern a successor; parent/step are recorded only on first
     discovery, so the parent pointers always form the BFS tree. *)
  let intern st term ~pred ~step =
    match Hashtbl.find_opt st.ids (Hproc.id term) with
    | Some id ->
        st.hits <- st.hits + 1;
        id
    | None ->
        st.misses <- st.misses + 1;
        if st.len = Array.length st.terms then grow st;
        let id = st.len in
        st.terms.(id) <- term;
        st.pred.(id) <- pred;
        st.steps.(id) <- step;
        Hashtbl.add st.ids (Hproc.id term) id;
        st.len <- st.len + 1;
        id
end

type check_result = {
  c_store : Store.t;
  c_truncated : bool;
  c_deadlocks : state_id list;  (* discovery order *)
  c_transitions : int;
  c_semantics : semantics;
  c_stats : stats;
}

let check_num_states c = c.c_store.Store.len
let check_num_transitions c = c.c_transitions
let check_truncated c = c.c_truncated
let check_deadlocks c = c.c_deadlocks
let check_semantics c = c.c_semantics
let check_stats c = c.c_stats
let check_term c id = Hproc.to_proc c.c_store.Store.terms.(id)

let check_path_to c id =
  let st = c.c_store in
  let rec up id acc =
    let p = st.Store.pred.(id) in
    if p < 0 then acc else up p ((st.Store.steps.(id), id) :: acc)
  in
  up id []

let check ?(config = default_config) ?(semantics = Prioritized) ?(jobs = 1)
    defs root =
  let jobs = max 1 jobs in
  Obs.Span.with_ ~name:"lts.check" ~attrs:(span_attrs semantics jobs)
  @@ fun () ->
  let t_start = Unix.gettimeofday () in
  let cache = Semantics.make_cache () in
  let next = step_function semantics cache defs in
  let store = Store.create () in
  let truncated = ref false in
  let deadlock_found = ref false in
  let deadlock_ids_rev = ref [] in
  let transitions = ref 0 in
  let peak_frontier = ref 0 in
  ignore
    (Store.intern store (Hproc.of_proc root) ~pred:(-1)
       ~step:Store.dummy_step);
  let deadline_hit = ref false in
  let over_budget () =
    budget_stop config ~len:store.Store.len ~deadline_hit ()
  in
  let ex = Expander.create ~jobs ~cutover:config.parallel_cutover in
  let succs = Array.make (max 1 ex.Expander.max_chunk) [] in
  (* BFS levels are contiguous id ranges (ids are assigned in discovery
     order), so depth tracking needs two counters, not an array: when the
     merge crosses [level_end], every state of the current depth has been
     expanded and the states discovered so far are exactly the next
     level. *)
  let depth = ref 0 in
  let level_end = ref 1 in
  let early_exit_depth = ref None in
  Fun.protect
    ~finally:(fun () -> Expander.shutdown ex)
    (fun () ->
      let head = ref 0 in
      let stop = ref false in
      while (not !stop) && !head < store.Store.len do
        let frontier = store.Store.len - !head in
        if frontier > !peak_frontier then peak_frontier := frontier;
        Obs.Histogram.observe Metrics.frontier (float_of_int frontier);
        let n = Expander.chunk_size ex ~frontier in
        let base = !head in
        Expander.run ex n (fun i -> succs.(i) <- next store.Store.terms.(base + i));
        (* Sequential merge, in queue order — the same decisions in the
           same order as [build], so visited-state counts, deadlock ids
           and parent pointers coincide exactly with a [build] under the
           same config (asserted by the test suite). *)
        let i = ref 0 in
        while (not !stop) && !i < n do
          if (config.stop_at_deadlock && !deadlock_found) || over_budget ()
          then begin
            truncated := true;
            stop := true
          end
          else begin
            let id = !head + !i in
            if id >= !level_end then begin
              incr depth;
              level_end := store.Store.len
            end;
            let s = succs.(!i) in
            if s = [] then begin
              deadlock_found := true;
              deadlock_ids_rev := id :: !deadlock_ids_rev;
              if config.stop_at_deadlock && !early_exit_depth = None then
                early_exit_depth := Some !depth
            end;
            List.iter
              (fun (step, term') ->
                ignore (Store.intern store term' ~pred:id ~step);
                incr transitions)
              s;
            incr i
          end
        done;
        head := !head + !i
      done);
  let n = store.Store.len in
  let wall_s = Unix.gettimeofday () -. t_start in
  let stats =
    {
      jobs;
      wall_s;
      expand_s = ex.Expander.expand_s;
      merge_s = wall_s -. ex.Expander.expand_s;
      num_states = n;
      num_transitions = !transitions;
      num_deadlocks = List.length !deadlock_ids_rev;
      peak_frontier = !peak_frontier;
      depth_levels = !depth + 1;
      intern_hits = store.Store.hits;
      intern_misses = store.Store.misses;
      hashcons_nodes = Hproc.table_size ();
      (* per state: term pointer + pred int + step pointer array slots,
         plus a hashtable binding.  An estimate, counted in words. *)
      store_bytes = 8 * 7 * n;
      early_exit_depth = !early_exit_depth;
      deadline_expired = !deadline_hit;
    }
  in
  publish_stats stats;
  {
    c_store = store;
    c_truncated = !truncated;
    c_deadlocks = List.rev !deadlock_ids_rev;
    c_transitions = !transitions;
    c_semantics = semantics;
    c_stats = stats;
  }

let pp_check_summary ppf c =
  Fmt.pf ppf "%d states, %d transitions%s (%a semantics, on-the-fly)"
    (check_num_states c) (check_num_transitions c)
    (if c.c_truncated then
       if c.c_deadlocks <> [] then " [early exit]" else " [truncated]"
     else "")
    pp_semantics c.c_semantics

let pp_summary ppf lts =
  Fmt.pf ppf "%d states, %d transitions%s (%a semantics)" (num_states lts)
    (num_transitions lts)
    (if lts.truncated then " [truncated]" else "")
    pp_semantics lts.semantics

let pp_stats ppf s =
  Fmt.pf ppf
    "@[<v>exploration: %d states, %d transitions, %d deadlocks in %.3fs \
     (%.0f states/sec, %d jobs)@,\
     phases: expand %.3fs, merge %.3fs@,\
     frontier peak %d, BFS levels %d@,\
     state dedup: %d hits / %d misses (%.1f%% hit-rate)@,\
     state store: ~%d KiB (~%.0f bytes/state)@,\
     hash-cons table: %d nodes%a%a@]"
    s.num_states s.num_transitions s.num_deadlocks s.wall_s
    (states_per_sec s) s.jobs s.expand_s s.merge_s s.peak_frontier
    s.depth_levels s.intern_hits s.intern_misses
    (100. *. dedup_hit_rate s)
    (s.store_bytes / 1024) (bytes_per_state s) s.hashcons_nodes
    Fmt.(
      option (fun ppf d -> pf ppf "@,early exit at BFS depth %d" d))
    s.early_exit_depth
    Fmt.(
      fun ppf expired ->
        if expired then pf ppf "@,wall-clock budget expired")
    s.deadline_expired
