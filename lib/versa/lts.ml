(* Explicit labeled transition systems produced by state-space exploration
   of ACSR terms.

   States are closed process terms, interned into integer ids in BFS
   discovery order (the initial state has id 0).  Each state records its
   outgoing (step, successor) row and its BFS parent, so that shortest
   diagnostic traces can be rebuilt without re-exploration — this mirrors
   what the VERSA tool reports to the user (paper, Section 5).

   Terms are hash-consed ([Acsr.Hproc]), so the state table keys on an
   integer id and every successor comparison is O(1).  The builder walks
   the BFS queue in fixed-size chunks: successor computation for a chunk —
   the expensive, per-state-independent part — optionally fans out over a
   pool of worker domains ([jobs] > 1), while interning, parent assignment
   and truncation checks always run sequentially in queue order.  Because
   every order-sensitive decision happens in that sequential merge, a
   parallel build produces bit-identical ids, parents, depths, rows and
   traces to the sequential one (checked by the test suite). *)

open Acsr

type semantics = Prioritized | Unprioritized

type state_id = int

type stats = {
  jobs : int;
  wall_s : float;  (** total build time *)
  expand_s : float;  (** computing successor sets (parallel part) *)
  merge_s : float;  (** interning + BFS bookkeeping (sequential part) *)
  num_states : int;
  num_transitions : int;
  num_deadlocks : int;
  peak_frontier : int;  (** max discovered-but-unexpanded states *)
  depth_levels : int;  (** deepest BFS level reached + 1 *)
  intern_hits : int;  (** state interns that found an existing state *)
  intern_misses : int;  (** state interns that discovered a new state *)
  hashcons_nodes : int;  (** global hash-cons table size after the build *)
}

let states_per_sec s =
  if s.wall_s > 0. then float_of_int s.num_states /. s.wall_s else 0.

let dedup_hit_rate s =
  let total = s.intern_hits + s.intern_misses in
  if total = 0 then 0. else float_of_int s.intern_hits /. float_of_int total

type t = {
  term_of : Hproc.t array;  (** state id -> term *)
  edges : (Step.t * state_id) array array;  (** outgoing transitions *)
  expanded : bool array;
      (** whether the state's successors were computed; frontier states of
          a truncated exploration are not expanded *)
  parent : (state_id * Step.t) option array;  (** BFS tree, for traces *)
  depth : int array;  (** BFS depth *)
  truncated : bool;  (** true if exploration stopped before exhaustion *)
  semantics : semantics;
  transitions : int;  (** cached at build time *)
  deadlock_ids : state_id list;  (** cached at build time, discovery order *)
  stats : stats;
}

let num_states lts = Array.length lts.term_of
let num_transitions lts = lts.transitions

let initial (_ : t) : state_id = 0
let term lts id = Hproc.to_proc lts.term_of.(id)
let successors lts id = lts.edges.(id)
let depth lts id = lts.depth.(id)
let truncated lts = lts.truncated
let semantics_of lts = lts.semantics
let stats lts = lts.stats

let is_deadlock lts id = lts.expanded.(id) && Array.length lts.edges.(id) = 0

let deadlocks lts = lts.deadlock_ids

(* Rebuild the BFS-shortest path from the initial state to [id] as a list
   of (step, reached state). *)
let path_to lts id =
  let rec up id acc =
    match lts.parent.(id) with
    | None -> acc
    | Some (pred, step) -> up pred ((step, id) :: acc)
  in
  up id []

type build_config = {
  max_states : int option;  (** stop after discovering this many states *)
  stop_at_deadlock : bool;
      (** stop expanding as soon as one deadlock has been discovered *)
}

let default_config = { max_states = Some 2_000_000; stop_at_deadlock = false }

let step_function semantics cache defs =
  match semantics with
  | Prioritized -> Semantics.h_prioritized ~cache defs
  | Unprioritized -> Semantics.h_steps ~cache defs

(* Growable state table, keyed by the hash-cons id of the term. *)
module Table = struct
  type entry = {
    mutable row : (Step.t * state_id) array;
    mutable was_expanded : bool;
    mutable par : (state_id * Step.t) option;
    mutable dep : int;
    tm : Hproc.t;
  }

  type nonrec t = {
    ids : (int, state_id) Hashtbl.t;  (* Hproc id -> state id *)
    mutable entries : entry array;
    mutable len : int;
    mutable hits : int;
    mutable misses : int;
  }

  let dummy_entry =
    { row = [||]; was_expanded = false; par = None; dep = 0; tm = Hproc.nil }

  let create () =
    {
      ids = Hashtbl.create 4096;
      entries = Array.make 1024 dummy_entry;
      len = 0;
      hits = 0;
      misses = 0;
    }

  let get t id = t.entries.(id)

  let intern t term =
    match Hashtbl.find_opt t.ids (Hproc.id term) with
    | Some id ->
        t.hits <- t.hits + 1;
        (id, false)
    | None ->
        t.misses <- t.misses + 1;
        if t.len = Array.length t.entries then begin
          let bigger = Array.make (2 * t.len) dummy_entry in
          Array.blit t.entries 0 bigger 0 t.len;
          t.entries <- bigger
        end;
        let id = t.len in
        t.entries.(id) <-
          { row = [||]; was_expanded = false; par = None; dep = 0; tm = term };
        Hashtbl.add t.ids (Hproc.id term) id;
        t.len <- t.len + 1;
        (id, true)
end

let build ?(config = default_config) ?(semantics = Prioritized) ?(jobs = 1)
    defs root =
  let jobs = max 1 jobs in
  let t_start = Unix.gettimeofday () in
  let cache = Semantics.make_cache () in
  let next = step_function semantics cache defs in
  let table = Table.create () in
  let truncated = ref false in
  let deadlock_found = ref false in
  let deadlock_ids_rev = ref [] in
  let transitions = ref 0 in
  let expand_s = ref 0. in
  let peak_frontier = ref 0 in
  let root_id, _ = Table.intern table (Hproc.of_proc root) in
  ignore root_id;
  let over_budget () =
    match config.max_states with
    | Some m -> table.Table.len >= m
    | None -> false
  in
  let pool = if jobs > 1 then Some (Pool.create (jobs - 1)) else None in
  (* Successor computation is per-state independent: fan a chunk out over
     the pool (dynamic scheduling; the hash-cons intern table and the
     unfolding cache are domain-safe).  With [jobs = 1] the chunk size is 1
     and this is exactly the classic sequential BFS loop. *)
  let chunk_size = if jobs = 1 then 1 else jobs * 32 in
  let succs = Array.make chunk_size [] in
  let compute_chunk head n =
    let f i = succs.(i) <- next (Table.get table (head + i)).Table.tm in
    match pool with
    | None ->
        for i = 0 to n - 1 do
          f i
        done
    | Some p -> Pool.run p n f
  in
  Fun.protect
    ~finally:(fun () -> Option.iter Pool.shutdown pool)
    (fun () ->
      (* The BFS queue is implicit: state ids are assigned in discovery
         order, so the queue contents are exactly the ids [head .. len). *)
      let head = ref 0 in
      let stop = ref false in
      while (not !stop) && !head < table.Table.len do
        let frontier = table.Table.len - !head in
        if frontier > !peak_frontier then peak_frontier := frontier;
        let n = min chunk_size frontier in
        let t0 = Unix.gettimeofday () in
        compute_chunk !head n;
        let t1 = Unix.gettimeofday () in
        expand_s := !expand_s +. (t1 -. t0);
        (* Sequential merge, in queue order: interning, parent/depth
           assignment and the truncation checks are order-sensitive and
           replicate the sequential exploration exactly. *)
        let i = ref 0 in
        while (not !stop) && !i < n do
          if (config.stop_at_deadlock && !deadlock_found) || over_budget ()
          then begin
            (* leave this state (and every later one) unexpanded; the
               exploration is incomplete *)
            truncated := true;
            stop := true
          end
          else begin
            let id = !head + !i in
            let entry = Table.get table id in
            let s = succs.(!i) in
            if s = [] then begin
              deadlock_found := true;
              deadlock_ids_rev := id :: !deadlock_ids_rev
            end;
            let row =
              List.map
                (fun (step, term') ->
                  let id', fresh = Table.intern table term' in
                  if fresh then begin
                    let e' = Table.get table id' in
                    e'.Table.par <- Some (id, step);
                    e'.Table.dep <- entry.Table.dep + 1
                  end;
                  (step, id'))
                s
            in
            entry.Table.row <- Array.of_list row;
            entry.Table.was_expanded <- true;
            transitions := !transitions + Array.length entry.Table.row;
            incr i
          end
        done;
        head := !head + !i
      done);
  let n = table.Table.len in
  let entry i = table.Table.entries.(i) in
  let depth = Array.init n (fun i -> (entry i).Table.dep) in
  let wall_s = Unix.gettimeofday () -. t_start in
  let stats =
    {
      jobs;
      wall_s;
      expand_s = !expand_s;
      merge_s = wall_s -. !expand_s;
      num_states = n;
      num_transitions = !transitions;
      num_deadlocks = List.length !deadlock_ids_rev;
      peak_frontier = !peak_frontier;
      depth_levels = 1 + Array.fold_left max 0 depth;
      intern_hits = table.Table.hits;
      intern_misses = table.Table.misses;
      hashcons_nodes = Hproc.table_size ();
    }
  in
  {
    term_of = Array.init n (fun i -> (entry i).Table.tm);
    edges = Array.init n (fun i -> (entry i).Table.row);
    expanded = Array.init n (fun i -> (entry i).Table.was_expanded);
    parent = Array.init n (fun i -> (entry i).Table.par);
    depth;
    truncated = !truncated;
    semantics;
    transitions = !transitions;
    deadlock_ids = List.rev !deadlock_ids_rev;
    stats;
  }

let pp_summary ppf lts =
  Fmt.pf ppf "%d states, %d transitions%s (%s semantics)" (num_states lts)
    (num_transitions lts)
    (if lts.truncated then " [truncated]" else "")
    (match lts.semantics with
    | Prioritized -> "prioritized"
    | Unprioritized -> "unprioritized")

let pp_stats ppf s =
  Fmt.pf ppf
    "@[<v>exploration: %d states, %d transitions, %d deadlocks in %.3fs \
     (%.0f states/sec, %d jobs)@,\
     phases: expand %.3fs, merge %.3fs@,\
     frontier peak %d, BFS levels %d@,\
     state dedup: %d hits / %d misses (%.1f%% hit-rate)@,\
     hash-cons table: %d nodes@]"
    s.num_states s.num_transitions s.num_deadlocks s.wall_s
    (states_per_sec s) s.jobs s.expand_s s.merge_s s.peak_frontier
    s.depth_levels s.intern_hits s.intern_misses
    (100. *. dedup_hit_rate s)
    s.hashcons_nodes
