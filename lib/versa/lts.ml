(* Explicit labeled transition systems produced by state-space exploration
   of ACSR terms.

   States are closed process terms, interned into integer ids in BFS
   discovery order (the initial state has id 0).  Each state records its
   outgoing (step, successor) row and its BFS parent, so that shortest
   diagnostic traces can be rebuilt without re-exploration — this mirrors
   what the VERSA tool reports to the user (paper, Section 5).

   Terms are hash-consed ([Acsr.Hproc]), so the state table keys on an
   integer id and every successor comparison is O(1).

   Parallelism ([jobs] > 1) is work-stealing prefetch, not chunked
   fan-out: worker domains traverse the state graph asynchronously —
   each with a private Chase–Lev deque ([Deque]), stealing from siblings
   only on exhaustion — and record every successor row they compute in a
   digest-range-sharded store ([Shards]).  The calling domain
   meanwhile runs the *sequential* BFS loop unchanged — the replay —
   consuming prefetched rows where the workers got there first and
   computing the rest itself.  Successor computation is deterministic,
   so both paths yield the same row; interning, parent assignment,
   budget and truncation checks all happen on the replay in queue order.
   A parallel build therefore produces bit-identical ids, parents,
   depths, rows, verdicts and traces to the sequential one — not by
   post-hoc sorting but because the replay *is* the sequential
   algorithm; the workers only move row computation off its critical
   path (checked by the test suite). *)

open Acsr

(* Every exploration publishes into the process-wide Obs registry at the
   end of the run: totals as counters (accumulating across runs in a
   batch/serve process), last-run shape as gauges.  The per-run [stats]
   record stays the per-result API; the registry is the cross-run,
   cross-layer view (`--stats`, the service `metrics` op, bench). *)
module Metrics = struct
  let runs =
    Obs.Counter.make ~help:"State-space explorations completed"
      "versa_explore_runs_total"

  let states =
    Obs.Counter.make ~help:"States discovered across all explorations"
      "versa_explore_states_total"

  let transitions =
    Obs.Counter.make ~help:"Transitions computed across all explorations"
      "versa_explore_transitions_total"

  let deadlocks =
    Obs.Counter.make ~help:"Deadlocked states discovered across all explorations"
      "versa_explore_deadlocks_total"

  let intern_hits =
    Obs.Counter.make ~help:"State interns that found an existing state"
      "versa_intern_hits_total"

  let intern_misses =
    Obs.Counter.make ~help:"State interns that discovered a new state"
      "versa_intern_misses_total"

  let deadline_expired =
    Obs.Counter.make ~help:"Explorations stopped by the wall-clock budget"
      "versa_explore_deadline_expired_total"

  let states_per_sec =
    Obs.Gauge.make ~help:"Discovery rate of the most recent exploration"
      "versa_explore_states_per_sec"

  let peak_frontier =
    Obs.Gauge.make ~help:"Peak frontier width of the most recent exploration"
      "versa_explore_peak_frontier"

  let depth_levels =
    Obs.Gauge.make ~help:"BFS levels of the most recent exploration"
      "versa_explore_depth_levels"

  let early_exit_depth =
    Obs.Gauge.make
      ~help:"BFS depth of the deadlock that stopped the most recent early-exit run"
      "versa_explore_early_exit_depth"

  let hashcons_nodes =
    Obs.Gauge.make ~help:"Global hash-cons table size after the last exploration"
      "versa_hashcons_nodes"

  let store_bytes =
    Obs.Gauge.make
      ~help:"Estimated bytes retained by the last exploration's state store"
      "versa_store_bytes"

  let frontier =
    Obs.Histogram.make ~help:"Frontier width at each expansion step"
      ~buckets:[ 1.; 10.; 100.; 1_000.; 10_000.; 100_000. ]
      "versa_explore_frontier_size"

  let wall =
    Obs.Histogram.make ~help:"Exploration wall time (seconds)"
      "versa_explore_wall_seconds"

  let steals =
    Obs.Counter.make ~help:"Successful deque steals by explorer worker domains"
      "versa_steals_total"

  let steal_attempts =
    Obs.Counter.make ~help:"Deque steal attempts by explorer worker domains"
      "versa_steal_attempts_total"

  let prefetch_hits =
    Obs.Counter.make
      ~help:"Replay successor lookups answered by a prefetched row"
      "versa_prefetch_hits_total"

  let prefetch_misses =
    Obs.Counter.make
      ~help:"Replay successor lookups computed on the calling domain"
      "versa_prefetch_misses_total"

  let shard_contention =
    Obs.Counter.make
      ~help:"Visited-set shard lock acquisitions that had to block"
      "versa_shard_contention_total"

  let shard_contention_ratio =
    Obs.Gauge.make
      ~help:
        "Blocked fraction of shard lock acquisitions in the most recent \
         parallel exploration"
      "versa_shard_contention_ratio"

  let queue_depth =
    Obs.Histogram.make
      ~help:"Per-domain work deque depth, sampled at each worker expansion"
      ~buckets:[ 1.; 4.; 16.; 64.; 256.; 1_024.; 4_096. ]
      "versa_ws_queue_depth"

  let orbit_hits =
    Obs.Counter.make
      ~help:"Successor states folded onto a different orbit representative"
      "versa_orbit_hits_total"

  let orbit_misses =
    Obs.Counter.make
      ~help:"Successor states that were already orbit-canonical"
      "versa_orbit_misses_total"

  let orbit_size =
    Obs.Histogram.make
      ~help:"Members per interchangeable-component orbit class, per run"
      ~buckets:[ 2.; 4.; 8.; 16.; 32. ]
      "versa_orbit_size"

  let canon_seconds =
    Obs.Histogram.make
      ~help:"Wall time spent canonicalizing states, per exploration"
      "versa_canon_seconds"
end

type semantics = Prioritized | Unprioritized

type state_id = int

type stats = {
  jobs : int;
  wall_s : float;  (** total build time *)
  expand_s : float;  (** computing successor sets (parallel part) *)
  merge_s : float;  (** interning + BFS bookkeeping (sequential part) *)
  num_states : int;
  num_transitions : int;
  num_deadlocks : int;
  peak_frontier : int;  (** max discovered-but-unexpanded states *)
  depth_levels : int;  (** deepest BFS level reached + 1 *)
  intern_hits : int;  (** state interns that found an existing state *)
  intern_misses : int;  (** state interns that discovered a new state *)
  hashcons_nodes : int;  (** global hash-cons table size after the build *)
  store_bytes : int;  (** estimated bytes retained by the state store *)
  early_exit_depth : int option;
      (** BFS depth of the deadlock that stopped an early-exit run *)
  deadline_expired : bool;
      (** the wall-clock budget ([config.deadline]) stopped the run *)
  steals : int;  (** successful deque steals by worker domains *)
  steal_attempts : int;  (** steal attempts (successful or not) *)
  prefetch_hits : int;
      (** replay successor lookups answered by a prefetched row *)
  prefetch_misses : int;
      (** replay successor lookups computed on the calling domain *)
  orbit_hits : int;
      (** successors the symmetry reduction folded onto a different orbit
          representative; 0 when symmetry is off or trivial *)
  orbit_misses : int;  (** successors that were already canonical *)
  canon_s : float;  (** wall time spent canonicalizing states *)
}

let states_per_sec s =
  if s.wall_s > 0. then float_of_int s.num_states /. s.wall_s else 0.

let dedup_hit_rate s =
  let total = s.intern_hits + s.intern_misses in
  if total = 0 then 0. else float_of_int s.intern_hits /. float_of_int total

let bytes_per_state s =
  if s.num_states = 0 then 0.
  else float_of_int s.store_bytes /. float_of_int s.num_states

(* One registry write-out per exploration, at the end of the run — hot
   loops never touch the registry except for the frontier histogram. *)
let publish_stats s =
  Obs.Counter.incr Metrics.runs;
  Obs.Counter.incr ~by:s.num_states Metrics.states;
  Obs.Counter.incr ~by:s.num_transitions Metrics.transitions;
  Obs.Counter.incr ~by:s.num_deadlocks Metrics.deadlocks;
  Obs.Counter.incr ~by:s.intern_hits Metrics.intern_hits;
  Obs.Counter.incr ~by:s.intern_misses Metrics.intern_misses;
  if s.deadline_expired then Obs.Counter.incr Metrics.deadline_expired;
  Obs.Gauge.set Metrics.states_per_sec (states_per_sec s);
  Obs.Gauge.set Metrics.peak_frontier (float_of_int s.peak_frontier);
  Obs.Gauge.set Metrics.depth_levels (float_of_int s.depth_levels);
  Option.iter
    (fun d -> Obs.Gauge.set Metrics.early_exit_depth (float_of_int d))
    s.early_exit_depth;
  Obs.Gauge.set Metrics.hashcons_nodes (float_of_int s.hashcons_nodes);
  Obs.Gauge.set Metrics.store_bytes (float_of_int s.store_bytes);
  Obs.Counter.incr ~by:s.steals Metrics.steals;
  Obs.Counter.incr ~by:s.steal_attempts Metrics.steal_attempts;
  Obs.Counter.incr ~by:s.prefetch_hits Metrics.prefetch_hits;
  Obs.Counter.incr ~by:s.prefetch_misses Metrics.prefetch_misses;
  Obs.Counter.incr ~by:s.orbit_hits Metrics.orbit_hits;
  Obs.Counter.incr ~by:s.orbit_misses Metrics.orbit_misses;
  if s.orbit_hits + s.orbit_misses > 0 then
    Obs.Histogram.observe Metrics.canon_seconds s.canon_s;
  Obs.Histogram.observe Metrics.wall s.wall_s

let step_function semantics cache defs =
  match semantics with
  | Prioritized -> Semantics.h_prioritized ~cache defs
  | Unprioritized -> Semantics.h_steps ~cache defs

(* Symmetry (orbit) reduction.

   With a non-trivial [Symmetry.spec] (built by the translation layer:
   which parallel slots hold interchangeable components, under which
   renamings), every successor is canonicalized *before* the visited-set
   lookup, so the exploration visits one representative per orbit.  The
   wrapper sits inside [next], which both the replay and the prefetch
   workers call — reduction therefore composes with [jobs] without
   touching the oracle: workers prefetch canonical rows, the replay
   interns canonical states, and the bit-identity argument is unchanged
   (canonicalization is deterministic).

   Soundness: each spec member is equal to its class representative up
   to a renaming of generated names, so permuting member slots while
   renaming accordingly is an automorphism of the transition system —
   the canonical state is reachable iff the original is, with the same
   BFS depth, and it deadlocks iff the original does.  Verdicts and
   counterexample *lengths* are therefore preserved exactly; the visited
   state count only shrinks.

   Traces are de-canonicalized on the way out ([decanon_steps]): the
   stored path's states are canonical representatives, but the steps
   can be renamed back into the real system's name space by composing
   the witness renamings ([Symmetry.canon_w]) along the path, so raised
   scenarios still name the actual AADL threads. *)
module Sym = struct
  type t = {
    spec : Symmetry.spec;
    raw_root : Hproc.t;
    defs : Defs.t;
    (* tallies are atomics because [wrap] runs on worker domains too;
       workers and the replay can both canonicalize the same row, so
       parallel runs over-count — like [prefetch_misses], these are
       telemetry, not part of the bit-identical result contract *)
    hits : int Atomic.t;
    misses : int Atomic.t;
    canon_us : int Atomic.t;
  }

  let of_spec spec ~raw_root ~defs =
    if Symmetry.is_empty spec then None
    else
      Some
        {
          spec;
          raw_root;
          defs;
          hits = Atomic.make 0;
          misses = Atomic.make 0;
          canon_us = Atomic.make 0;
        }

  (* Canonicalization can alias two successors of the same state; keep
     the first occurrence so row order stays the deterministic raw
     order. *)
  let dedup row =
    match row with
    | [] | [ _ ] -> row
    | _ ->
        let rec go acc = function
          | [] -> List.rev acc
          | ((s, t) as edge) :: rest ->
              if
                List.exists
                  (fun (s', t') -> Hproc.equal t t' && Step.equal s s')
                  acc
              then go acc rest
              else go (edge :: acc) rest
        in
        go [] row

  let wrap s next term =
    let row = next term in
    if row = [] then row
    else begin
      let t0 = Timed.Clock.gettimeofday () in
      let row' =
        List.map
          (fun (step, t') ->
            let c = Symmetry.canon s.spec t' in
            if Hproc.equal c t' then Atomic.incr s.misses
            else Atomic.incr s.hits;
            (step, c))
          row
      in
      let row' = dedup row' in
      ignore
        (Atomic.fetch_and_add s.canon_us
           (int_of_float ((Timed.Clock.gettimeofday () -. t0) *. 1e6)));
      row'
    end

  let root s = Symmetry.canon s.spec s.raw_root
  let hits s = Atomic.get s.hits
  let misses s = Atomic.get s.misses
  let canon_s s = float_of_int (Atomic.get s.canon_us) /. 1e6

  let observe_sizes s =
    List.iter
      (fun k -> Obs.Histogram.observe Metrics.orbit_size (float_of_int k))
      (Symmetry.class_sizes s.spec)

  (* De-canonicalize a stored path [(step, state); ...] from the root.

     Invariant maintained along the walk: [inv] renames the current
     canonical state's names back into the names of the real state it
     represents on the actual (unreduced) run from [raw_root].  For each
     stored edge we recompute the canonical state's *raw* successor row,
     find the successor whose canonical form is the stored child — one
     exists by construction, since the stored row was exactly that row
     canonicalized — apply [inv] to the step, and fold the child's own
     canonicalization witness into [inv].  State ids are left as they
     are (they index the canonical store); only steps are renamed, which
     is all trace consumers read. *)
  let decanon_steps s ~semantics ~term_at path =
    let cache = Semantics.make_cache () in
    let next = step_function semantics cache s.defs in
    let _, rho0 = Symmetry.canon_w s.spec s.raw_root in
    let inv = ref (Symmetry.invert rho0) in
    let cur = ref (root s) in
    List.map
      (fun (step, id) ->
        let child = term_at id in
        let raw_row = next !cur in
        match
          List.find_opt
            (fun (st, t) ->
              Step.equal st step && Hproc.equal (Symmetry.canon s.spec t) child)
            raw_row
        with
        | None ->
            (* unreachable by the invariant above; degrade to the
               canonical step rather than raise inside diagnostics *)
            cur := child;
            (step, id)
        | Some (_, t) ->
            let real = Symmetry.apply_step !inv step in
            let _, rho' = Symmetry.canon_w s.spec t in
            inv := Symmetry.compose !inv (Symmetry.invert rho');
            cur := child;
            (real, id))
      path
end

type t = {
  term_of : Hproc.t array;  (** state id -> term *)
  edges : (Step.t * state_id) array array;  (** outgoing transitions *)
  expanded : bool array;
      (** whether the state's successors were computed; frontier states of
          a truncated exploration are not expanded *)
  parent : (state_id * Step.t) option array;  (** BFS tree, for traces *)
  depth : int array;  (** BFS depth *)
  truncated : bool;  (** true if exploration stopped before exhaustion *)
  semantics : semantics;
  transitions : int;  (** cached at build time *)
  deadlock_ids : state_id list;  (** cached at build time, discovery order *)
  stats : stats;
  sym : Sym.t option;  (** present when symmetry reduction was active *)
}

let num_states lts = Array.length lts.term_of
let num_transitions lts = lts.transitions

let initial (_ : t) : state_id = 0
let term lts id = Hproc.to_proc lts.term_of.(id)
let successors lts id = lts.edges.(id)
let depth lts id = lts.depth.(id)
let truncated lts = lts.truncated
let semantics_of lts = lts.semantics
let stats lts = lts.stats

let is_deadlock lts id = lts.expanded.(id) && Array.length lts.edges.(id) = 0

let deadlocks lts = lts.deadlock_ids

(* Rebuild the BFS-shortest path from the initial state to [id] as a list
   of (step, reached state). *)
let path_to lts id =
  let rec up id acc =
    match lts.parent.(id) with
    | None -> acc
    | Some (pred, step) -> up pred ((step, id) :: acc)
  in
  let path = up id [] in
  match lts.sym with
  | None -> path
  | Some s ->
      Sym.decanon_steps s ~semantics:lts.semantics
        ~term_at:(fun i -> lts.term_of.(i))
        path

type build_config = {
  max_states : int option;  (** stop after discovering this many states *)
  stop_at_deadlock : bool;
      (** stop expanding as soon as one deadlock has been discovered *)
  parallel_cutover : int;
      (** frontier width below which expansion stays sequential even when
          [jobs > 1] *)
  deadline : float option;
      (** absolute time on the ambient [Timed.Clock] scale past which
          the exploration stops and reports truncation — the time-domain
          twin of [max_states] *)
  poll : (unit -> bool) option;
      (** cooperative stop hook, checked between merge steps: returning
          [true] truncates the run (job cancellation in the service
          layer) *)
}

let default_config =
  { max_states = Some 2_000_000; stop_at_deadlock = false;
    parallel_cutover = 512; deadline = None; poll = None }

(* The stop predicate shared by [build] and [check].  [deadline] and
   [poll] are evaluated in the sequential merge only, so they cannot
   perturb parallel expansion; both are [None] on the default path and
   then cost nothing. *)
let budget_stop config ~len ~deadline_hit () =
  (match config.max_states with Some m -> len >= m | None -> false)
  || (match config.deadline with
     | Some d when Timed.Clock.gettimeofday () > d ->
         deadline_hit := true;
         true
     | Some _ | None -> false)
  || (match config.poll with Some p -> p () | None -> false)

(* Work-stealing prefetch oracle shared by [build] and [check].

   The replay (the caller's sequential BFS loop) asks [successors] for
   one row at a time, in queue order.  Sequentially ([jobs] = 1, or a
   frontier that never crosses [cutover]) that is a plain call to the
   step function — instruction-for-instruction the sequential build.

   In parallel mode, [jobs] worker domains run [worker_loop]: each owns
   a Chase–Lev deque of claimed-but-unexpanded terms, pops locally
   (LIFO), steals from a sibling only when its own deque and the shared
   injector run dry, and for every term computes the successor row,
   publishes it into the digest-sharded record store, claims the row's
   still-unclaimed targets (one batched lock acquisition per owning
   shard) and pushes them onto its own deque.  There is no barrier
   anywhere: the workers race ahead of the replay through the state
   graph in whatever order stealing yields.

   Correctness never depends on that race.  The workers only ever
   *prefetch*: the replay consumes a recorded row when one is ready and
   otherwise computes the row itself on the calling domain ([next] is
   deterministic, so the result is the same either way — worst case is
   duplicated work, softened by the shared semantics cache).  All
   order-sensitive decisions — interning, parent/depth assignment,
   budget, deadline and early-exit checks — stay on the replay, in
   queue order, so results are bit-identical for every [jobs] value.

   Domains are only worth paying for on big explorations: spawning them
   costs milliseconds and, once they exist, every minor GC becomes a
   stop-the-world rendezvous across all domains, which swamps the win
   on small models.  So the pool is spawned lazily, on the first
   frontier at least [cutover] states wide. *)
module Oracle = struct
  type row = (Step.t * Hproc.t) list

  type par = {
    pool : Pool.t;
    shards : row Shards.t;
    deques : Hproc.t Deque.t array;  (* one per worker, owner-indexed *)
    inj_lock : Mutex.t;
    injector : Hproc.t Queue.t;
        (* overflow/seed queue: activation seeds the current frontier
           here, and the replay re-seeds it when it outruns the workers
           into a region they have not reached *)
    stop : bool Atomic.t;
    claim_cap : int;  (* do not claim past the state budget *)
    claimed : int Atomic.t;
    steals : int Atomic.t;
    steal_attempts : int Atomic.t;
  }

  type t = {
    jobs : int;
    cutover : int;
    next : Hproc.t -> row;
    claim_cap : int;
    mutable par : par option;
    mutable expand_s : float;
    (* replay-side tallies; the calling domain is the only writer *)
    mutable hits : int;
    mutable misses : int;
  }

  let create ~jobs ~cutover ~max_states next =
    {
      jobs;
      cutover = max 1 cutover;
      next;
      claim_cap = (match max_states with Some m -> m | None -> max_int);
      par = None;
      expand_s = 0.;
      hits = 0;
      misses = 0;
    }

  let inj_take par =
    Mutex.lock par.inj_lock;
    let x =
      if Queue.is_empty par.injector then None
      else Some (Queue.pop par.injector)
    in
    Mutex.unlock par.inj_lock;
    x

  let inj_add par terms =
    if terms <> [] then begin
      Mutex.lock par.inj_lock;
      List.iter (fun t -> Queue.push t par.injector) terms;
      Mutex.unlock par.inj_lock
    end

  (* Claim the not-yet-claimed targets of [row]; one [claim_batch] per
     owning shard.  Returns the freshly claimed terms — each claimed
     exactly once across all domains, so each is expanded exactly
     once. *)
  let claim_successors par row =
    if Atomic.get par.claimed >= par.claim_cap then []
    else begin
      let groups = ref [] in
      List.iter
        (fun (_, t') ->
          let s = Shards.owner par.shards t' in
          match List.assq_opt s !groups with
          | Some r -> r := t' :: !r
          | None -> groups := (s, ref [ t' ]) :: !groups)
        row;
      List.concat_map
        (fun (s, r) ->
          let fresh = Shards.claim_batch par.shards s (List.rev !r) in
          ignore (Atomic.fetch_and_add par.claimed (List.length fresh));
          fresh)
        !groups
    end

  let expand o par deque term =
    let row = o.next term in
    Shards.publish par.shards term row;
    List.iter (Deque.push deque) (claim_successors par row)

  let worker_loop o par index =
    let deque = par.deques.(index) in
    let nd = Array.length par.deques in
    let steals = ref 0 and attempts = ref 0 in
    Fun.protect
      ~finally:(fun () ->
        ignore (Atomic.fetch_and_add par.steals !steals);
        ignore (Atomic.fetch_and_add par.steal_attempts !attempts))
    @@ fun () ->
    let idle = ref 0 in
    while not (Atomic.get par.stop) do
      let task =
        match Deque.pop deque with
        | Some _ as t -> t
        | None -> (
            match inj_take par with
            | Some _ as t -> t
            | None ->
                (* own deque and injector dry: sweep the siblings *)
                let got = ref None in
                let k = ref 1 in
                while !got = None && !k < nd do
                  incr attempts;
                  (match Deque.steal par.deques.((index + !k) mod nd) with
                  | Some _ as t ->
                      incr steals;
                      got := t
                  | None -> ());
                  incr k
                done;
                !got)
      in
      match task with
      | Some term ->
          idle := 0;
          Obs.Histogram.observe Metrics.queue_depth
            (float_of_int (1 + Deque.length deque));
          expand o par deque term
      | None ->
          (* out of work everywhere: spin briefly, then sleep so the
             replay domain gets the core (essential on few-core hosts) *)
          incr idle;
          if !idle < 64 then Domain.cpu_relax () else Unix.sleepf 50e-6
    done

  let activate o ~term_of ~len ~head =
    let par =
      {
        pool = Pool.create o.jobs;
        shards = Shards.create ();
        deques = Array.init o.jobs (fun _ -> Deque.create ~dummy:Hproc.nil ());
        inj_lock = Mutex.create ();
        injector = Queue.create ();
        stop = Atomic.make false;
        claim_cap = o.claim_cap;
        claimed = Atomic.make 0;
        steals = Atomic.make 0;
        steal_attempts = Atomic.make 0;
      }
    in
    (* Seed the store with every state discovered so far — so a worker
       re-reaching one through a cycle does not re-expand it — and queue
       the unexpanded frontier for the workers. *)
    let per_shard = Array.make (Shards.shard_count par.shards) [] in
    for i = len - 1 downto 0 do
      let t = term_of i in
      let s = Shards.owner par.shards t in
      per_shard.(s) <- t :: per_shard.(s)
    done;
    Array.iteri
      (fun s terms ->
        if terms <> [] then ignore (Shards.claim_batch par.shards s terms))
      per_shard;
    Atomic.set par.claimed len;
    let frontier = ref [] in
    for i = len - 1 downto head do
      frontier := term_of i :: !frontier
    done;
    inj_add par !frontier;
    o.par <- Some par;
    Pool.launch par.pool (worker_loop o par)

  let maybe_activate o ~term_of ~len ~head =
    if o.jobs > 1 && o.par = None && len - head >= o.cutover then
      activate o ~term_of ~len ~head

  (* The replay's successor source.  Whatever the workers did, the row
     returned here is the one the sequential engine would compute. *)
  let successors o term =
    let t0 = Timed.Clock.gettimeofday () in
    let row =
      match o.par with
      | None -> o.next term
      | Some par -> (
          match Shards.find par.shards term with
          | Shards.Found row ->
              o.hits <- o.hits + 1;
              row
          | Shards.Claimed ->
              (* a worker is computing this row right now; recomputing
                 it here beats blocking on an unbounded wait (the shared
                 semantics cache keeps the overlap cheap) *)
              o.misses <- o.misses + 1;
              o.next term
          | Shards.Absent ->
              o.misses <- o.misses + 1;
              if Shards.try_claim par.shards term then begin
                let row = o.next term in
                Shards.publish par.shards term row;
                (* the workers have not reached this region yet: hand
                   its successors to the injector so they can pick the
                   region up from here *)
                inj_add par (claim_successors par row);
                row
              end
              else o.next term)
    in
    o.expand_s <- o.expand_s +. (Timed.Clock.gettimeofday () -. t0);
    row

  type tally = {
    t_steals : int;
    t_steal_attempts : int;
    t_hits : int;
    t_misses : int;
    t_contended : int;
    t_acquired : int;
  }

  let shutdown o =
    match o.par with
    | None -> ()
    | Some par ->
        Atomic.set par.stop true;
        (match Pool.await par.pool with
        | () -> ()
        | exception Pool.Worker_error _ ->
            (* A prefetch worker died.  Its work was advisory — the
               replay recomputes any row it never received, and an
               exception [next] raises deterministically resurfaces on
               the replay path exactly as in a sequential run — so the
               failure (already counted in
               versa_pool_worker_failures_total, with the raising
               domain's index) must not perturb results. *)
            ());
        Pool.shutdown par.pool

  let tally o =
    match o.par with
    | None ->
        {
          t_steals = 0;
          t_steal_attempts = 0;
          t_hits = 0;
          t_misses = 0;
          t_contended = 0;
          t_acquired = 0;
        }
    | Some par ->
        let contended, acquired = Shards.contention par.shards in
        {
          t_steals = Atomic.get par.steals;
          t_steal_attempts = Atomic.get par.steal_attempts;
          t_hits = o.hits;
          t_misses = o.misses;
          t_contended = contended;
          t_acquired = acquired;
        }
end

(* Shard-contention telemetry is per parallel run, published next to
   [publish_stats] (which covers the stats-record fields). *)
let publish_contention (tl : Oracle.tally) =
  if tl.Oracle.t_acquired > 0 then begin
    Obs.Counter.incr ~by:tl.Oracle.t_contended Metrics.shard_contention;
    Obs.Gauge.set Metrics.shard_contention_ratio
      (float_of_int tl.Oracle.t_contended /. float_of_int tl.Oracle.t_acquired)
  end

(* Growable state table, keyed by the hash-cons id of the term. *)
module Table = struct
  type entry = {
    mutable row : (Step.t * state_id) array;
    mutable was_expanded : bool;
    mutable par : (state_id * Step.t) option;
    mutable dep : int;
    tm : Hproc.t;
  }

  type nonrec t = {
    ids : (int, state_id) Hashtbl.t;  (* Hproc id -> state id *)
    mutable entries : entry array;
    mutable len : int;
    mutable hits : int;
    mutable misses : int;
  }

  let dummy_entry =
    { row = [||]; was_expanded = false; par = None; dep = 0; tm = Hproc.nil }

  let create () =
    {
      ids = Hashtbl.create 4096;
      entries = Array.make 1024 dummy_entry;
      len = 0;
      hits = 0;
      misses = 0;
    }

  let get t id = t.entries.(id)

  let intern t term =
    match Hashtbl.find_opt t.ids (Hproc.id term) with
    | Some id ->
        t.hits <- t.hits + 1;
        (id, false)
    | None ->
        t.misses <- t.misses + 1;
        if t.len = Array.length t.entries then begin
          let bigger = Array.make (2 * t.len) dummy_entry in
          Array.blit t.entries 0 bigger 0 t.len;
          t.entries <- bigger
        end;
        let id = t.len in
        t.entries.(id) <-
          { row = [||]; was_expanded = false; par = None; dep = 0; tm = term };
        Hashtbl.add t.ids (Hproc.id term) id;
        t.len <- t.len + 1;
        (id, true)
end

let pp_semantics ppf = function
  | Prioritized -> Fmt.string ppf "prioritized"
  | Unprioritized -> Fmt.string ppf "unprioritized"

let span_attrs semantics jobs =
  [ ("semantics", Fmt.str "%a" pp_semantics semantics);
    ("jobs", string_of_int jobs) ]

let build ?(config = default_config) ?(semantics = Prioritized) ?(jobs = 1)
    ?(symmetry = Symmetry.empty) defs root =
  let jobs = max 1 jobs in
  Obs.Span.with_ ~name:"lts.build" ~attrs:(span_attrs semantics jobs)
  @@ fun () ->
  let t_start = Timed.Clock.gettimeofday () in
  let cache = Semantics.make_cache () in
  let raw_next = step_function semantics cache defs in
  let raw_root = Hproc.of_proc root in
  let sym = Sym.of_spec symmetry ~raw_root ~defs in
  let next =
    match sym with None -> raw_next | Some s -> Sym.wrap s raw_next
  in
  let table = Table.create () in
  let truncated = ref false in
  let deadlock_found = ref false in
  let deadlock_ids_rev = ref [] in
  let transitions = ref 0 in
  let peak_frontier = ref 0 in
  let root_id, _ =
    Table.intern table
      (match sym with None -> raw_root | Some s -> Sym.root s)
  in
  ignore root_id;
  let deadline_hit = ref false in
  let over_budget () =
    budget_stop config ~len:table.Table.len ~deadline_hit ()
  in
  let o =
    Oracle.create ~jobs ~cutover:config.parallel_cutover
      ~max_states:config.max_states next
  in
  Fun.protect
    ~finally:(fun () -> Oracle.shutdown o)
    (fun () ->
      (* The BFS queue is implicit: state ids are assigned in discovery
         order, so the queue contents are exactly the ids [head .. len).
         This loop is the replay: it is the sequential exploration, with
         [next] routed through the oracle (a no-op route until a
         frontier crosses the cutover and the workers spin up). *)
      let head = ref 0 in
      let stop = ref false in
      while (not !stop) && !head < table.Table.len do
        let frontier = table.Table.len - !head in
        if frontier > !peak_frontier then peak_frontier := frontier;
        Obs.Histogram.observe Metrics.frontier (float_of_int frontier);
        Oracle.maybe_activate o
          ~term_of:(fun i -> (Table.get table i).Table.tm)
          ~len:table.Table.len ~head:!head;
        if (config.stop_at_deadlock && !deadlock_found) || over_budget ()
        then begin
          (* leave this state (and every later one) unexpanded; the
             exploration is incomplete *)
          truncated := true;
          stop := true
        end
        else begin
          let id = !head in
          let entry = Table.get table id in
          let s = Oracle.successors o entry.Table.tm in
          if s = [] then begin
            deadlock_found := true;
            deadlock_ids_rev := id :: !deadlock_ids_rev
          end;
          (* Interning, parent/depth assignment and the truncation
             checks above are order-sensitive and replicate the
             sequential exploration exactly. *)
          let row =
            List.map
              (fun (step, term') ->
                let id', fresh = Table.intern table term' in
                if fresh then begin
                  let e' = Table.get table id' in
                  e'.Table.par <- Some (id, step);
                  e'.Table.dep <- entry.Table.dep + 1
                end;
                (step, id'))
              s
          in
          entry.Table.row <- Array.of_list row;
          entry.Table.was_expanded <- true;
          transitions := !transitions + Array.length entry.Table.row;
          incr head
        end
      done);
  let n = table.Table.len in
  let entry i = table.Table.entries.(i) in
  let depth = Array.init n (fun i -> (entry i).Table.dep) in
  let wall_s = Timed.Clock.gettimeofday () -. t_start in
  let tl = Oracle.tally o in
  let stats =
    {
      jobs;
      wall_s;
      expand_s = o.Oracle.expand_s;
      merge_s = wall_s -. o.Oracle.expand_s;
      num_states = n;
      num_transitions = !transitions;
      num_deadlocks = List.length !deadlock_ids_rev;
      peak_frontier = !peak_frontier;
      depth_levels = 1 + Array.fold_left max 0 depth;
      intern_hits = table.Table.hits;
      intern_misses = table.Table.misses;
      hashcons_nodes = Hproc.table_size ();
      (* per state: entry record + entries/term_of/edges/expanded/parent/
         depth array slots + hashtable binding + parent option box; per
         transition: a (step, id) tuple in a row.  An estimate, counted
         in words. *)
      store_bytes = 8 * ((21 * n) + (3 * !transitions));
      early_exit_depth =
        (match (config.stop_at_deadlock, List.rev !deadlock_ids_rev) with
        | true, d :: _ -> Some (entry d).Table.dep
        | _ -> None);
      deadline_expired = !deadline_hit;
      steals = tl.Oracle.t_steals;
      steal_attempts = tl.Oracle.t_steal_attempts;
      prefetch_hits = tl.Oracle.t_hits;
      prefetch_misses = tl.Oracle.t_misses;
      orbit_hits = (match sym with None -> 0 | Some s -> Sym.hits s);
      orbit_misses = (match sym with None -> 0 | Some s -> Sym.misses s);
      canon_s = (match sym with None -> 0. | Some s -> Sym.canon_s s);
    }
  in
  publish_stats stats;
  publish_contention tl;
  Option.iter Sym.observe_sizes sym;
  {
    term_of = Array.init n (fun i -> (entry i).Table.tm);
    edges = Array.init n (fun i -> (entry i).Table.row);
    expanded = Array.init n (fun i -> (entry i).Table.was_expanded);
    parent = Array.init n (fun i -> (entry i).Table.par);
    depth;
    truncated = !truncated;
    semantics;
    transitions = !transitions;
    deadlock_ids = List.rev !deadlock_ids_rev;
    stats;
    sym;
  }

(* {1 On-the-fly checking}

   The paper reduces schedulability to reachability of a deadlocked
   state, so for an unschedulable model nothing past the first deadlock
   is ever needed — and even for exhaustive sweeps, the successor rows
   are only needed transiently.  [check] explores the same prioritized
   transition system as [build], in the same order, but stores per state
   only the hash-consed term (one pointer into the global intern table),
   the BFS parent id and the arriving step — enough to rebuild the
   shortest counterexample path — in flat growable arrays.  No successor
   rows, no expansion flags, no per-state records. *)

module Store = struct
  type t = {
    ids : (int, state_id) Hashtbl.t;  (* Hproc id -> state id *)
    mutable terms : Hproc.t array;
    mutable pred : int array;  (* BFS parent; -1 for the root *)
    mutable steps : Step.t array;  (* step from pred; slot 0 is a dummy *)
    mutable len : int;
    mutable hits : int;
    mutable misses : int;
  }

  let dummy_step = Step.Tau (None, 0)

  let create () =
    {
      ids = Hashtbl.create 4096;
      terms = Array.make 1024 Hproc.nil;
      pred = Array.make 1024 (-1);
      steps = Array.make 1024 dummy_step;
      len = 0;
      hits = 0;
      misses = 0;
    }

  let grow st =
    let n = Array.length st.terms in
    let copy dummy src =
      let bigger = Array.make (2 * n) dummy in
      Array.blit src 0 bigger 0 n;
      bigger
    in
    st.terms <- copy Hproc.nil st.terms;
    st.pred <- copy (-1) st.pred;
    st.steps <- copy dummy_step st.steps

  (* Intern a successor; parent/step are recorded only on first
     discovery, so the parent pointers always form the BFS tree. *)
  let intern st term ~pred ~step =
    match Hashtbl.find_opt st.ids (Hproc.id term) with
    | Some id ->
        st.hits <- st.hits + 1;
        id
    | None ->
        st.misses <- st.misses + 1;
        if st.len = Array.length st.terms then grow st;
        let id = st.len in
        st.terms.(id) <- term;
        st.pred.(id) <- pred;
        st.steps.(id) <- step;
        Hashtbl.add st.ids (Hproc.id term) id;
        st.len <- st.len + 1;
        id
end

type check_result = {
  c_store : Store.t;
  c_truncated : bool;
  c_deadlocks : state_id list;  (* discovery order *)
  c_transitions : int;
  c_semantics : semantics;
  c_stats : stats;
  c_sym : Sym.t option;
}

let check_num_states c = c.c_store.Store.len
let check_num_transitions c = c.c_transitions
let check_truncated c = c.c_truncated
let check_deadlocks c = c.c_deadlocks
let check_semantics c = c.c_semantics
let check_stats c = c.c_stats
let check_term c id = Hproc.to_proc c.c_store.Store.terms.(id)

let check_path_to c id =
  let st = c.c_store in
  let rec up id acc =
    let p = st.Store.pred.(id) in
    if p < 0 then acc else up p ((st.Store.steps.(id), id) :: acc)
  in
  let path = up id [] in
  match c.c_sym with
  | None -> path
  | Some s ->
      Sym.decanon_steps s ~semantics:c.c_semantics
        ~term_at:(fun i -> st.Store.terms.(i))
        path

let check ?(config = default_config) ?(semantics = Prioritized) ?(jobs = 1)
    ?(symmetry = Symmetry.empty) defs root =
  let jobs = max 1 jobs in
  Obs.Span.with_ ~name:"lts.check" ~attrs:(span_attrs semantics jobs)
  @@ fun () ->
  let t_start = Timed.Clock.gettimeofday () in
  let cache = Semantics.make_cache () in
  let raw_next = step_function semantics cache defs in
  let raw_root = Hproc.of_proc root in
  let sym = Sym.of_spec symmetry ~raw_root ~defs in
  let next =
    match sym with None -> raw_next | Some s -> Sym.wrap s raw_next
  in
  let store = Store.create () in
  let truncated = ref false in
  let deadlock_found = ref false in
  let deadlock_ids_rev = ref [] in
  let transitions = ref 0 in
  let peak_frontier = ref 0 in
  ignore
    (Store.intern store
       (match sym with None -> raw_root | Some s -> Sym.root s)
       ~pred:(-1) ~step:Store.dummy_step);
  let deadline_hit = ref false in
  let over_budget () =
    budget_stop config ~len:store.Store.len ~deadline_hit ()
  in
  let o =
    Oracle.create ~jobs ~cutover:config.parallel_cutover
      ~max_states:config.max_states next
  in
  (* BFS levels are contiguous id ranges (ids are assigned in discovery
     order), so depth tracking needs two counters, not an array: when the
     merge crosses [level_end], every state of the current depth has been
     expanded and the states discovered so far are exactly the next
     level. *)
  let depth = ref 0 in
  let level_end = ref 1 in
  let early_exit_depth = ref None in
  Fun.protect
    ~finally:(fun () -> Oracle.shutdown o)
    (fun () ->
      (* The replay again: the same decisions in the same order as
         [build], so visited-state counts, deadlock ids and parent
         pointers coincide exactly with a [build] under the same config
         (asserted by the test suite). *)
      let head = ref 0 in
      let stop = ref false in
      while (not !stop) && !head < store.Store.len do
        let frontier = store.Store.len - !head in
        if frontier > !peak_frontier then peak_frontier := frontier;
        Obs.Histogram.observe Metrics.frontier (float_of_int frontier);
        Oracle.maybe_activate o
          ~term_of:(fun i -> store.Store.terms.(i))
          ~len:store.Store.len ~head:!head;
        if (config.stop_at_deadlock && !deadlock_found) || over_budget ()
        then begin
          truncated := true;
          stop := true
        end
        else begin
          let id = !head in
          if id >= !level_end then begin
            incr depth;
            level_end := store.Store.len
          end;
          let s = Oracle.successors o store.Store.terms.(id) in
          if s = [] then begin
            deadlock_found := true;
            deadlock_ids_rev := id :: !deadlock_ids_rev;
            if config.stop_at_deadlock && !early_exit_depth = None then
              early_exit_depth := Some !depth
          end;
          List.iter
            (fun (step, term') ->
              ignore (Store.intern store term' ~pred:id ~step);
              incr transitions)
            s;
          incr head
        end
      done);
  let n = store.Store.len in
  let wall_s = Timed.Clock.gettimeofday () -. t_start in
  let tl = Oracle.tally o in
  let stats =
    {
      jobs;
      wall_s;
      expand_s = o.Oracle.expand_s;
      merge_s = wall_s -. o.Oracle.expand_s;
      num_states = n;
      num_transitions = !transitions;
      num_deadlocks = List.length !deadlock_ids_rev;
      peak_frontier = !peak_frontier;
      depth_levels = !depth + 1;
      intern_hits = store.Store.hits;
      intern_misses = store.Store.misses;
      hashcons_nodes = Hproc.table_size ();
      (* per state: term pointer + pred int + step pointer array slots,
         plus a hashtable binding.  An estimate, counted in words. *)
      store_bytes = 8 * 7 * n;
      early_exit_depth = !early_exit_depth;
      deadline_expired = !deadline_hit;
      steals = tl.Oracle.t_steals;
      steal_attempts = tl.Oracle.t_steal_attempts;
      prefetch_hits = tl.Oracle.t_hits;
      prefetch_misses = tl.Oracle.t_misses;
      orbit_hits = (match sym with None -> 0 | Some s -> Sym.hits s);
      orbit_misses = (match sym with None -> 0 | Some s -> Sym.misses s);
      canon_s = (match sym with None -> 0. | Some s -> Sym.canon_s s);
    }
  in
  publish_stats stats;
  publish_contention tl;
  Option.iter Sym.observe_sizes sym;
  {
    c_store = store;
    c_truncated = !truncated;
    c_deadlocks = List.rev !deadlock_ids_rev;
    c_transitions = !transitions;
    c_semantics = semantics;
    c_stats = stats;
    c_sym = sym;
  }

let pp_check_summary ppf c =
  Fmt.pf ppf "%d states, %d transitions%s (%a semantics, on-the-fly)"
    (check_num_states c) (check_num_transitions c)
    (if c.c_truncated then
       if c.c_deadlocks <> [] then " [early exit]" else " [truncated]"
     else "")
    pp_semantics c.c_semantics

let pp_summary ppf lts =
  Fmt.pf ppf "%d states, %d transitions%s (%a semantics)" (num_states lts)
    (num_transitions lts)
    (if lts.truncated then " [truncated]" else "")
    pp_semantics lts.semantics

let pp_stats ppf s =
  Fmt.pf ppf
    "@[<v>exploration: %d states, %d transitions, %d deadlocks in %.3fs \
     (%.0f states/sec, %d jobs)@,\
     phases: expand %.3fs, merge %.3fs@,\
     frontier peak %d, BFS levels %d@,\
     state dedup: %d hits / %d misses (%.1f%% hit-rate)@,\
     state store: ~%d KiB (~%.0f bytes/state)@,\
     hash-cons table: %d nodes%a%a%a@]"
    s.num_states s.num_transitions s.num_deadlocks s.wall_s
    (states_per_sec s) s.jobs s.expand_s s.merge_s s.peak_frontier
    s.depth_levels s.intern_hits s.intern_misses
    (100. *. dedup_hit_rate s)
    (s.store_bytes / 1024) (bytes_per_state s) s.hashcons_nodes
    (fun ppf s ->
      (* only parallel runs that actually engaged the workers have
         anything to say here *)
      if s.steal_attempts > 0 || s.prefetch_hits > 0 || s.prefetch_misses > 0
      then
        Fmt.pf ppf
          "@,work stealing: %d steals / %d attempts, prefetch %d hits / %d \
           misses"
          s.steals s.steal_attempts s.prefetch_hits s.prefetch_misses;
      if s.orbit_hits > 0 || s.orbit_misses > 0 then
        Fmt.pf ppf
          "@,symmetry: %d orbit hits / %d misses, canonicalization %.3fs"
          s.orbit_hits s.orbit_misses s.canon_s)
    s
    Fmt.(
      option (fun ppf d -> pf ppf "@,early exit at BFS depth %d" d))
    s.early_exit_depth
    Fmt.(
      fun ppf expired ->
        if expired then pf ppf "@,wall-clock budget expired")
    s.deadline_expired
