(* Chase–Lev work-stealing deque.

   One domain — the owner — pushes and pops at the bottom (LIFO, so the
   owner keeps working on the hottest region of the state graph); any
   other domain steals from the top (FIFO, so thieves take the oldest,
   typically largest, pending subtrees).  Owner operations are wait-free
   except when the buffer grows; steals are lock-free, synchronizing on a
   single compare-and-set of [top].

   The implementation is the sequentially-consistent variant of the
   algorithm (Chase & Lev, SPAA 2005; Lê et al., PPoPP 2013): [top],
   [bottom], the buffer pointer and every cell are [Atomic.t], so all the
   orderings the correctness argument needs hold under the OCaml memory
   model without fence reasoning.  Indices increase monotonically, which
   rules out ABA on the [top] CAS.

   Growth never invalidates a concurrent steal: the old buffer is not
   mutated after the copy, so a thief holding a stale buffer pointer
   still reads the correct cell for any index its subsequent [top] CAS
   can validate. *)

type 'a t = {
  top : int Atomic.t;  (* next index to steal *)
  bottom : int Atomic.t;  (* next index to push *)
  buf : 'a Atomic.t array Atomic.t;  (* circular; length is a power of 2 *)
  dummy : 'a;
}

let create ?(capacity = 256) ~dummy () =
  let cap = max 2 capacity in
  (* round up to a power of two so index wrapping is a mask *)
  let cap =
    let c = ref 2 in
    while !c < cap do
      c := !c * 2
    done;
    !c
  in
  {
    top = Atomic.make 0;
    bottom = Atomic.make 0;
    buf = Atomic.make (Array.init cap (fun _ -> Atomic.make dummy));
    dummy;
  }

let length q = max 0 (Atomic.get q.bottom - Atomic.get q.top)

(* Owner only.  Copy the live range [t, b) into a buffer twice the size,
   preserving index positions modulo the new size. *)
let grow q ~b ~t =
  let old = Atomic.get q.buf in
  let n = Array.length old in
  let bigger = Array.init (2 * n) (fun _ -> Atomic.make q.dummy) in
  for i = t to b - 1 do
    Atomic.set bigger.(i land ((2 * n) - 1)) (Atomic.get old.(i land (n - 1)))
  done;
  Atomic.set q.buf bigger

let push q x =
  let b = Atomic.get q.bottom and t = Atomic.get q.top in
  let buf = Atomic.get q.buf in
  let buf =
    if b - t >= Array.length buf then begin
      grow q ~b ~t;
      Atomic.get q.buf
    end
    else buf
  in
  Atomic.set buf.(b land (Array.length buf - 1)) x;
  Atomic.set q.bottom (b + 1)

let pop q =
  let b = Atomic.get q.bottom - 1 in
  Atomic.set q.bottom b;
  let t = Atomic.get q.top in
  if b < t then begin
    (* empty; restore the canonical empty shape *)
    Atomic.set q.bottom t;
    None
  end
  else begin
    let buf = Atomic.get q.buf in
    let x = Atomic.get buf.(b land (Array.length buf - 1)) in
    if b > t then Some x
    else begin
      (* last element: race a concurrent thief for it via [top] *)
      let won = Atomic.compare_and_set q.top t (t + 1) in
      Atomic.set q.bottom (t + 1);
      if won then Some x else None
    end
  end

let steal q =
  let t = Atomic.get q.top in
  let b = Atomic.get q.bottom in
  if t >= b then None
  else begin
    let buf = Atomic.get q.buf in
    let x = Atomic.get buf.(t land (Array.length buf - 1)) in
    if Atomic.compare_and_set q.top t (t + 1) then Some x else None
  end
