(** Graphviz export of explored LTSs and bisimulation quotients. *)

val pp : ?show_terms:bool -> Lts.t Fmt.t
(** DOT rendering; deadlock states are highlighted.  [show_terms] labels
    states with (truncated) process terms. *)

val pp_quotient : Bisim.quotient Fmt.t
(** DOT rendering of a bisimulation quotient; block representatives label
    the nodes. *)

val to_string : ?show_terms:bool -> Lts.t -> string
(** [pp] into a string. *)

val write_file : ?show_terms:bool -> string -> Lts.t -> unit
(** [write_file path lts] writes the DOT rendering to [path]. *)
