(* Digest-range-sharded concurrent store keyed by hash-consed terms.

   The parallel explorer's shared visited set and successor-row record
   map.  The key space is partitioned by term digest into contiguous
   ranges, one per shard: the digest (the memoized structural hash of
   the term, [Hproc.hash]) picks the shard, so there is no global lock
   and two domains only ever contend when they touch terms whose digests
   land in the same range.  Within a shard, entries key on [Hproc.id]
   (unique per term within a run, O(1) to compare).

   A term is first [claim]ed — an exactly-once operation that elects the
   domain responsible for expanding it — and later [publish]ed with its
   successor row.  Claims are batched per shard ([claim_batch]): a
   worker groups the successors of an expansion by owning shard and
   takes each shard lock at most once per expansion, which is what keeps
   the lock-acquisition rate proportional to expansions rather than to
   transitions.

   Contention is measured, not guessed: every lock acquisition first
   tries [Mutex.try_lock], and the fallback to a blocking lock is
   counted.  The explorer publishes the ratio as the
   [versa_shard_contention_ratio] gauge. *)

open Acsr

type 'a entry = Pending | Filled of 'a

type 'a shard = {
  lock : Mutex.t;
  tbl : (int, 'a entry) Hashtbl.t;  (* Hproc.id -> entry *)
  mutable contended : int;  (* acquisitions that found the lock held *)
  mutable acquired : int;
}

type 'a t = { shards : 'a shard array }

(* Digests are folded to 30 bits so [owner_digest] is a pure range
   partition independent of the platform word size. *)
let digest_bits = 30
let digest_mask = (1 lsl digest_bits) - 1

let default_shards = 64

let create ?(shards = default_shards) () =
  let n = max 1 shards in
  {
    shards =
      Array.init n (fun _ ->
          { lock = Mutex.create ();
            tbl = Hashtbl.create 512;
            contended = 0;
            acquired = 0 });
  }

let shard_count t = Array.length t.shards

let digest p = Hproc.hash p land digest_mask

(* Contiguous equal ranges: digest d belongs to shard
   (d * count) / 2^30.  Monotone in d, surjective onto [0, count) for
   count <= 2^30. *)
let owner_digest t d =
  ((d land digest_mask) * Array.length t.shards) lsr digest_bits

let owner t p = owner_digest t (digest p)

let lock_shard s =
  if not (Mutex.try_lock s.lock) then begin
    Mutex.lock s.lock;
    s.contended <- s.contended + 1
  end;
  s.acquired <- s.acquired + 1

let try_claim t p =
  let s = t.shards.(owner t p) in
  lock_shard s;
  let key = Hproc.id p in
  let fresh = not (Hashtbl.mem s.tbl key) in
  if fresh then Hashtbl.add s.tbl key Pending;
  Mutex.unlock s.lock;
  fresh

let claim_batch t idx terms =
  let s = t.shards.(idx) in
  lock_shard s;
  let fresh =
    List.filter
      (fun p ->
        let key = Hproc.id p in
        let f = not (Hashtbl.mem s.tbl key) in
        if f then Hashtbl.add s.tbl key Pending;
        f)
      terms
  in
  Mutex.unlock s.lock;
  fresh

let publish t p v =
  let s = t.shards.(owner t p) in
  lock_shard s;
  Hashtbl.replace s.tbl (Hproc.id p) (Filled v);
  Mutex.unlock s.lock

type 'a lookup = Absent | Claimed | Found of 'a

let find t p =
  let s = t.shards.(owner t p) in
  lock_shard s;
  let r =
    match Hashtbl.find_opt s.tbl (Hproc.id p) with
    | None -> Absent
    | Some Pending -> Claimed
    | Some (Filled v) -> Found v
  in
  Mutex.unlock s.lock;
  r

let contention t =
  Array.fold_left
    (fun (c, a) s -> (c + s.contended, a + s.acquired))
    (0, 0) t.shards
