(** Chase–Lev work-stealing deque.

    The scheduling substrate of the parallel state-space explorer: each
    worker domain owns one deque of frontier terms, pushes the fresh
    successors it discovers onto its own deque, and — only when its own
    deque runs dry — steals from a sibling.  Owner operations touch no
    lock; a steal synchronizes on one compare-and-set, so the common case
    (every domain busy on its own subtree) has zero cross-domain
    coordination.

    Ownership discipline: {!push} and {!pop} must only ever be called by
    the single owner domain; {!steal} and {!length} may be called from
    any domain.  The deque never blocks and grows without bound (the
    circular buffer doubles when full; growth is safe against concurrent
    steals).

    Determinism note: the deque orders {e work}, never {e results}.  The
    explorer's replay pass ({!Lts.build}/{!Lts.check}) assigns state ids
    in sequential BFS order regardless of which domain computed a row or
    in what order, so steal interleavings are invisible in the output —
    see the determinism contract in {!Lts}. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** [create ~dummy ()] is an empty deque.  [capacity] (default 256,
    rounded up to a power of two) only sets the initial buffer size; the
    deque grows as needed.  [dummy] fills unused cells and is never
    returned by {!pop}/{!steal}; any value of the element type works
    (the explorer uses [Hproc.nil]). *)

val push : 'a t -> 'a -> unit
(** Owner only: append at the bottom.  Amortized O(1); wait-free except
    when the buffer doubles. *)

val pop : 'a t -> 'a option
(** Owner only: take the most recently pushed element (LIFO), or [None]
    if the deque is empty.  When a single element remains, the owner
    races concurrent thieves for it with one CAS; losing the race
    returns [None]. *)

val steal : 'a t -> 'a option
(** Any domain: take the oldest element (FIFO), or [None] if the deque
    is empty {e or} the CAS on the top index lost against a concurrent
    steal/pop — thieves treat both the same and move to the next victim,
    so a [None] is not proof of emptiness. *)

val length : 'a t -> int
(** Approximate number of queued elements; racy by nature (any domain
    may call it) but exact when only the owner is active.  Used for the
    per-domain queue-depth histogram, not for control decisions. *)
