(* Executions extracted from an LTS, presented as timelines.

   A trace records the steps from the initial state to some state of
   interest (typically a deadlock).  Because only timed actions advance
   global time, the timeline groups the instantaneous steps occurring at
   each time quantum — this is the "convenient time line form" in which the
   paper reports failing scenarios (Section 7). *)

open Acsr

type entry = { step : Step.t; state : Lts.state_id }

type t = { entries : entry list }

(* A trace is just the path data: it does not retain the LTS it was
   extracted from, so the on-the-fly checker ([Lts.check]) can produce
   traces from its compact parent-pointer store without ever
   materializing a graph. *)
let of_path path =
  { entries = List.map (fun (step, state) -> { step; state }) path }

let to_deadlock lts state = of_path (Lts.path_to lts state)

let steps t = List.map (fun e -> e.step) t.entries
let length t = List.length t.entries
let final_state t =
  match List.rev t.entries with
  | [] -> 0 (* the initial state is always id 0 *)
  | last :: _ -> last.state

let duration t =
  List.length (List.filter Step.is_timed (steps t))

(* Group the trace into quanta: each element is the list of instantaneous
   steps followed by the timed action closing the quantum (None for the
   trailing group, if the trace ends between quanta). *)
type quantum = { at_time : int; instant : Step.t list; tick : Step.t option }

let quanta t =
  let rec group time pending acc = function
    | [] ->
        let acc =
          if pending = [] then acc
          else { at_time = time; instant = List.rev pending; tick = None } :: acc
        in
        List.rev acc
    | e :: rest ->
        if Step.is_timed e.step then
          group (time + 1) []
            ({ at_time = time; instant = List.rev pending; tick = Some e.step }
            :: acc)
            rest
        else group time (e.step :: pending) acc rest
  in
  group 0 [] [] t.entries

let pp_quantum ppf q =
  let pp_instant ppf steps =
    match steps with
    | [] -> ()
    | steps -> Fmt.pf ppf "%a " Fmt.(list ~sep:sp Step.pp) steps
  in
  match q.tick with
  | Some tick ->
      Fmt.pf ppf "@[<h>t=%-3d %a%a@]" q.at_time pp_instant q.instant Step.pp
        tick
  | None -> Fmt.pf ppf "@[<h>t=%-3d %a(end)@]" q.at_time pp_instant q.instant

let pp ppf t =
  Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut pp_quantum) (quanta t)

let pp_raw ppf t =
  Fmt.pf ppf "@[<v>%a@]"
    Fmt.(list ~sep:cut (fun ppf e -> Step.pp ppf e.step))
    t.entries
