(** Strong-bisimulation partition refinement over explored LTSs. *)

open Acsr

type partition = { block_of : int array; num_blocks : int }
(** A partition of the state ids: [block_of.(id)] is the block of state
    [id], numbered [0 .. num_blocks - 1]. *)

val refine : Lts.t -> partition
(** Coarsest strong-bisimulation partition of the LTS's states. *)

type quotient = {
  num_states : int;  (** number of bisimulation classes *)
  initial : int;  (** class of the original initial state *)
  edges : (Step.t * int) list array;  (** class-level transitions *)
  representative : Lts.state_id array;
      (** one original state per class, for labeling *)
}

val quotient : Lts.t -> quotient
(** The quotient automaton modulo strong bisimulation; preserves deadlock
    reachability. *)

val num_transitions : quotient -> int
(** Total number of class-level transitions. *)

val equivalent : Lts.t -> Lts.t -> bool
(** Strong bisimilarity of the initial states of two LTSs. *)

val pp_quotient : quotient Fmt.t
(** One-line summary: states and transitions of the quotient. *)

(** Weak (observational) bisimulation: tau steps are abstracted.  Does not
    preserve deadlock reachability — use the strong quotient for
    schedulability; this one compares observable protocols. *)
module Weak : sig
  val refine : Lts.t -> partition
  (** Coarsest weak-bisimulation partition. *)

  val equivalent : Lts.t -> Lts.t -> bool
  (** Weak bisimilarity of the initial states of two LTSs. *)
end
