(* The VERSA-style analysis entry point: explore the prioritized state space
   of a closed ACSR term and look for deadlocks.  A deadlock is reported
   with its shortest trace, which serves as the failing scenario raised back
   to the AADL model by the analysis layer (paper, Section 5).

   Two engines produce the same verdicts and traces:
   - [Full] materializes the whole graph ([Lts.build]) — needed when the
     caller wants to walk it afterwards (DOT export, bisimulation,
     observer/latency queries over successor rows);
   - [On_the_fly] ([Lts.check]) keeps only a compact parent-pointer store
     and, with [stop_at_deadlock], terminates at the first reachable
     deadlock — the default for plain schedulability queries, where an
     unschedulable model is decided in time proportional to the distance
     to the first deadline miss. *)

type engine = Full | On_the_fly

type verdict =
  | Deadlock_free
      (** exhaustive exploration found no deadlock: every timing
          constraint of the model is met *)
  | Deadlock of { state : Lts.state_id; trace : Trace.t }
      (** a reachable state with no outgoing prioritized transition *)
  | Inconclusive of string
      (** exploration was truncated before finding a deadlock *)

type space =
  | Graph of Lts.t  (** full build: every state, row and parent *)
  | Summary of Lts.check_result  (** on-the-fly: compact store only *)

type result = { space : space; verdict : verdict; elapsed : float }

(* The reason string tells the caller which budget truncated the run —
   the service layer's degradation ladder keys on exactly this
   distinction. *)
let truncation_reason ~stats num_states =
  if stats.Lts.deadline_expired then
    Fmt.str "wall-clock budget expired after %d states" num_states
  else Fmt.str "state budget exhausted after %d states" num_states

let deadlock_verdict lts =
  match Lts.deadlocks lts with
  | state :: _ -> Deadlock { state; trace = Trace.to_deadlock lts state }
  | [] ->
      if Lts.truncated lts then
        Inconclusive
          (truncation_reason ~stats:(Lts.stats lts) (Lts.num_states lts))
      else Deadlock_free

let check_verdict c =
  match Lts.check_deadlocks c with
  | state :: _ ->
      Deadlock { state; trace = Trace.of_path (Lts.check_path_to c state) }
  | [] ->
      if Lts.check_truncated c then
        Inconclusive
          (truncation_reason ~stats:(Lts.check_stats c)
             (Lts.check_num_states c))
      else Deadlock_free

let check_deadlock ?(engine = Full) ?(max_states = 2_000_000)
    ?(stop_at_deadlock = true) ?(jobs = 1) ?deadline ?poll
    ?(symmetry = Acsr.Symmetry.empty) defs root =
  Obs.Span.with_ ~name:"explore"
    ~attrs:
      [ ("engine", match engine with Full -> "full" | On_the_fly -> "otf") ]
  @@ fun () ->
  let t0 = Timed.Clock.gettimeofday () in
  let config =
    {
      Lts.default_config with
      max_states = Some max_states;
      stop_at_deadlock;
      deadline;
      poll;
    }
  in
  let space, verdict =
    match engine with
    | Full ->
        let lts =
          Lts.build ~config ~semantics:Lts.Prioritized ~jobs ~symmetry defs
            root
        in
        (Graph lts, deadlock_verdict lts)
    | On_the_fly ->
        let c =
          Lts.check ~config ~semantics:Lts.Prioritized ~jobs ~symmetry defs
            root
        in
        (Summary c, check_verdict c)
  in
  let elapsed = Timed.Clock.gettimeofday () -. t0 in
  { space; verdict; elapsed }

let is_deadlock_free result =
  match result.verdict with
  | Deadlock_free -> true
  | Deadlock _ | Inconclusive _ -> false

(* {1 Engine-independent accessors} *)

let lts result = match result.space with Graph l -> Some l | Summary _ -> None

let num_states r =
  match r.space with
  | Graph l -> Lts.num_states l
  | Summary c -> Lts.check_num_states c

let num_transitions r =
  match r.space with
  | Graph l -> Lts.num_transitions l
  | Summary c -> Lts.check_num_transitions c

let deadlocks r =
  match r.space with
  | Graph l -> Lts.deadlocks l
  | Summary c -> Lts.check_deadlocks c

let truncated r =
  match r.space with
  | Graph l -> Lts.truncated l
  | Summary c -> Lts.check_truncated c

let stats r =
  match r.space with
  | Graph l -> Lts.stats l
  | Summary c -> Lts.check_stats c

let trace_to r state =
  match r.space with
  | Graph l -> Trace.to_deadlock l state
  | Summary c -> Trace.of_path (Lts.check_path_to c state)

let pp_space ppf = function
  | Graph l -> Lts.pp_summary ppf l
  | Summary c -> Lts.pp_check_summary ppf c

let pp_verdict ppf = function
  | Deadlock_free -> Fmt.string ppf "deadlock-free"
  | Deadlock { state; trace } ->
      Fmt.pf ppf "@[<v>deadlock at state %d (time %d):@,%a@]" state
        (Trace.duration trace) Trace.pp trace
  | Inconclusive reason -> Fmt.pf ppf "inconclusive: %s" reason

let pp_result ppf r =
  Fmt.pf ppf "@[<v>%a@,%a in %.3fs@]" pp_space r.space pp_verdict r.verdict
    r.elapsed
