(* The VERSA-style analysis entry point: explore the prioritized state space
   of a closed ACSR term and look for deadlocks.  A deadlock is reported
   with its shortest trace, which serves as the failing scenario raised back
   to the AADL model by the analysis layer (paper, Section 5). *)


type verdict =
  | Deadlock_free
      (** exhaustive exploration found no deadlock: every timing
          constraint of the model is met *)
  | Deadlock of { state : Lts.state_id; trace : Trace.t }
      (** a reachable state with no outgoing prioritized transition *)
  | Inconclusive of string
      (** exploration was truncated before finding a deadlock *)

type result = { lts : Lts.t; verdict : verdict; elapsed : float }

let deadlock_verdict lts =
  match Lts.deadlocks lts with
  | state :: _ -> Deadlock { state; trace = Trace.to_deadlock lts state }
  | [] ->
      if Lts.truncated lts then
        Inconclusive
          (Fmt.str "state budget exhausted after %d states"
             (Lts.num_states lts))
      else Deadlock_free

let check_deadlock ?(max_states = 2_000_000) ?(stop_at_deadlock = true)
    ?(jobs = 1) defs root =
  let t0 = Unix.gettimeofday () in
  let config = { Lts.max_states = Some max_states; stop_at_deadlock } in
  let lts = Lts.build ~config ~semantics:Lts.Prioritized ~jobs defs root in
  let elapsed = Unix.gettimeofday () -. t0 in
  { lts; verdict = deadlock_verdict lts; elapsed }

let is_deadlock_free result =
  match result.verdict with
  | Deadlock_free -> true
  | Deadlock _ | Inconclusive _ -> false

let pp_verdict ppf = function
  | Deadlock_free -> Fmt.string ppf "deadlock-free"
  | Deadlock { state; trace } ->
      Fmt.pf ppf "@[<v>deadlock at state %d (time %d):@,%a@]" state
        (Trace.duration trace) Trace.pp trace
  | Inconclusive reason -> Fmt.pf ppf "inconclusive: %s" reason

let pp_result ppf r =
  Fmt.pf ppf "@[<v>%a@,%a in %.3fs@]" Lts.pp_summary r.lts pp_verdict
    r.verdict r.elapsed
