(** A persistent pool of worker domains.

    Two usage patterns, both built on the same worker loop and the same
    error contract:

    - {b Batches} ({!run}): data-parallel loops over an index range,
      indices claimed dynamically from a shared atomic counter.  Used by
      the service layer's batch scheduler.
    - {b Launches} ({!launch}/{!await}): one long-lived task per worker,
      each invoked with its own domain index.  Used by the work-stealing
      explorer ({!Lts.build}/{!Lts.check}), where every worker runs a
      steal loop over the per-domain deques until the coordinator raises
      a stop flag.

    Workers live for the lifetime of the pool, so issuing a batch or a
    launch costs a condition-variable broadcast, not a domain spawn.
    Spawning is the cheap part of the cost of a pool; the recurring part
    is that every minor GC becomes a stop-the-world rendezvous across
    all domains, which is why the explorer only creates its pool once a
    frontier crosses [parallel_cutover]. *)

type t

exception Worker_error of { index : int; error : exn }
(** Raised by {!run} or {!await} when the task failed on worker domain
    [index] (0-based).  The index always names the domain that {e
    raised}, not the data it was processing — in particular, a worker
    that fails while stealing from a sibling's deque is reported under
    its own index, not the victim's.  A failure on the calling domain is
    re-raised unwrapped.  Each round with a worker-side failure also
    increments the [versa_pool_worker_failures_total] counter in
    {!Obs}. *)

val create : int -> t
(** [create w] spawns [w] worker domains (clamped below at 0 — a pool
    with 0 workers still works: every batch then runs on the caller and
    launches are no-ops). *)

val run : t -> int -> (int -> unit) -> unit
(** [run pool n f] evaluates [f i] for every [0 <= i < n], distributing
    indices dynamically over the workers and the calling domain, and
    returns when all are done.  [f] must be safe to call concurrently
    from several domains.  If any [f i] raises, the first exception is
    re-raised here after the batch drains (remaining indices are
    skipped) — wrapped in {!Worker_error} when it originated on a worker
    domain.  Batches must not be issued concurrently from several
    domains. *)

val launch : t -> (int -> unit) -> unit
(** [launch pool f] starts [f i] on every worker domain [i] (exactly one
    call per worker, under that worker's own index) and returns
    immediately; the calling domain does {e not} participate and is free
    to run its own loop concurrently — the explorer runs its sequential
    replay here.  The caller is responsible for making [f] terminate
    (typically via a shared stop flag) and must call {!await} before the
    next {!run}, {!launch} or {!shutdown}.  On a pool with 0 workers,
    [launch] is a no-op. *)

val await : t -> unit
(** Block until every worker has returned from the current {!launch} (or
    batch), then re-raise the first recorded failure, wrapped in
    {!Worker_error} with the index of the domain that raised.  Returns
    immediately on a pool with 0 workers or when no round is in
    flight. *)

val shutdown : t -> unit
(** Stop and join the workers.  The pool must be idle (after {!await}
    for a launch).  Teardown is exception-safe: every domain is joined
    even when one of the joins re-raises a worker's exception (the first
    exception wins), so a failing exploration can neither leak domains
    nor deadlock a subsequent run, and the attribution carried by
    {!Worker_error} survives teardown.  Idempotent. *)
