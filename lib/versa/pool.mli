(** A persistent pool of worker domains for data-parallel loops.

    Used by {!Lts.build} to fan successor computation of a BFS frontier
    chunk out over several domains.  Workers live for the lifetime of the
    pool, so issuing a batch costs a condition-variable broadcast, not a
    domain spawn. *)

type t

exception Worker_error of { index : int; error : exn }
(** Raised by {!run} when [f] failed on worker domain [index] (0-based).
    A failure on the calling domain is re-raised unwrapped.  Each batch
    with a worker-side failure also increments the
    [versa_pool_worker_failures_total] counter in {!Obs}. *)

val create : int -> t
(** [create w] spawns [w] worker domains (clamped below at 0 — a pool with
    0 workers still works, every batch then runs on the caller). *)

val run : t -> int -> (int -> unit) -> unit
(** [run pool n f] evaluates [f i] for every [0 <= i < n], distributing
    indices dynamically over the workers and the calling domain, and
    returns when all are done.  [f] must be safe to call concurrently from
    several domains.  If any [f i] raises, the first exception is
    re-raised here after the batch drains (remaining indices are skipped)
    — wrapped in {!Worker_error} when it originated on a worker domain.
    Batches must not be issued concurrently from several domains. *)

val shutdown : t -> unit
(** Stop and join the workers.  The pool must be idle.  Teardown is
    exception-safe: every domain is joined even when one of the joins
    re-raises a worker's exception (the first exception wins), so a
    failing exploration can neither leak domains nor deadlock a
    subsequent run.  Idempotent. *)
