(** Executions extracted from an LTS, presented as timelines. *)

open Acsr

type entry = { step : Step.t; state : Lts.state_id }
(** One transition of the execution: the step taken and the state it
    reached. *)

type t = { entries : entry list }
(** An execution starting at the initial state (id 0).  Traces carry the
    path only — not the LTS it came from — so both the full builder
    ({!Lts.build}) and the on-the-fly checker ({!Lts.check}) produce
    them. *)

val of_path : (Step.t * Lts.state_id) list -> t
(** Wrap a path (as returned by {!Lts.path_to} or {!Lts.check_path_to})
    as a trace. *)

val to_deadlock : Lts.t -> Lts.state_id -> t
(** Shortest trace from the initial state to the given state. *)

val steps : t -> Step.t list
(** The steps of the trace, in order. *)

val length : t -> int
(** Number of steps (timed and instantaneous). *)

val final_state : t -> Lts.state_id
(** The state the trace ends in; the initial state if it is empty. *)

val duration : t -> int
(** Number of time quanta elapsed along the trace. *)

type quantum = { at_time : int; instant : Step.t list; tick : Step.t option }

val quanta : t -> quantum list
(** The trace grouped by time quantum: the instantaneous steps occurring at
    [at_time], then the timed action advancing the clock ([None] if the
    trace ends within the quantum). *)

val pp : t Fmt.t
(** Timeline rendering, one line per quantum. *)

val pp_raw : t Fmt.t
(** One step per line, ungrouped. *)
