(** Digest-range-sharded concurrent store keyed by hash-consed terms.

    The parallel explorer's shared visited set and successor-row record
    map: worker domains {e claim} frontier terms (exactly-once election
    of the domain that will expand each term) and later {e publish} the
    computed successor row; the sequential replay pass reads rows back
    with {!find}.

    {2 Sharding}

    There is no global lock.  The key space is split into
    [shard_count t] contiguous digest ranges; a term's digest — the
    memoized structural hash [Hproc.hash], folded to 30 bits — picks its
    owning shard via {!owner_digest}, a pure monotone range partition
    (digest [d] belongs to shard [d * count / 2^30]).  Because the
    digest is structural, a term maps to the same shard in every run and
    on every domain.  Two domains contend only when they simultaneously
    touch terms whose digests fall in the same range; with the default
    64 shards and single-digit domain counts the measured contention
    ratio ({!contention}) stays well below 1%.

    {2 Batched claims}

    {!claim_batch} inserts a whole per-shard group of candidate terms
    under one lock acquisition.  Workers group the successors of each
    expansion by owning shard and hand each group off in a single batch,
    so the lock-acquisition rate scales with expansions, not
    transitions.

    {2 Determinism}

    The store never decides state identity or order — it only
    deduplicates {e work}.  State ids are assigned by the explorer's
    sequential replay in BFS order ({!Lts.build}/{!Lts.check}), so the
    racy interleaving of claims and publishes is invisible in results;
    see the determinism contract in {!Lts}. *)

open Acsr

type 'a t

val create : ?shards:int -> unit -> 'a t
(** [create ()] makes an empty store with [?shards] segments (default
    64, clamped to at least 1).  More shards reduce contention at the
    cost of per-shard table overhead; the default comfortably serves the
    pool sizes the explorer spawns. *)

val shard_count : 'a t -> int

val digest : Hproc.t -> int
(** The 30-bit structural digest used for shard selection: stable across
    runs and domains for structurally equal terms. *)

val owner_digest : 'a t -> int -> int
(** [owner_digest t d] is the shard owning digest [d]: the contiguous
    range partition [(d land (2^30-1)) * shard_count t / 2^30].
    Monotone in [d]; exposed (rather than private to {!owner}) so the
    range-boundary unit tests can pin the partition. *)

val owner : 'a t -> Hproc.t -> int
(** [owner t p = owner_digest t (digest p)]. *)

val try_claim : 'a t -> Hproc.t -> bool
(** Atomically claim a single term: [true] exactly once per term per
    store, electing the caller as the term's expander; [false] if some
    domain (possibly the caller) already claimed it. *)

val claim_batch : 'a t -> int -> Hproc.t list -> Hproc.t list
(** [claim_batch t idx terms] claims every not-yet-claimed term of
    [terms] under a single acquisition of shard [idx]'s lock and returns
    the freshly claimed ones (in input order, duplicates collapsed).
    Every term in [terms] must belong to shard [idx] ([owner t p =
    idx]); feeding a term to a foreign shard would break the
    exactly-once claim guarantee. *)

val publish : 'a t -> Hproc.t -> 'a -> unit
(** Record the value (successor row) for a claimed term.  Call once,
    from the domain that won the claim. *)

(** Result of {!find}: the term was never claimed, claimed but not yet
    published, or published with its value. *)
type 'a lookup = Absent | Claimed | Found of 'a

val find : 'a t -> Hproc.t -> 'a lookup

val contention : 'a t -> int * int
(** [(contended, acquired)] lock-acquisition tallies summed over all
    shards: [contended] counts acquisitions that found the lock held
    (i.e. had to block).  Feeds the [versa_shard_contention_total]
    counter and [versa_shard_contention_ratio] gauge. *)
