(** Reference AADL models and synthetic workload generation.

    The fixtures reconstruct the systems discussed in the paper (the
    Fig. 1 cruise control, event-driven chains, shared data, modes,
    hierarchical groups) and drive the test suites, examples and the
    benchmark harness. *)

(** {1 Synthetic periodic task sets} *)

type periodic_spec = {
  name : string;
  period_ms : int;
  cet_min_ms : int;
  cet_max_ms : int;
  deadline_ms : int;
}

val periodic_system :
  ?protocol:Aadl.Props.scheduling_protocol -> periodic_spec list -> string
(** A single-processor textual AADL model with the given periodic
    threads, all bound and fully attributed. *)

val simple_spec :
  name:string ->
  period_ms:int ->
  cet_ms:int ->
  ?deadline_ms:int ->
  unit ->
  periodic_spec
(** A deterministic-cet spec; deadline defaults to the period. *)

val replicated_family :
  ?protocol:Aadl.Props.scheduling_protocol ->
  threads:int ->
  utilization:float ->
  unit ->
  string
(** A family of [threads] indistinguishable unit-cet periodic threads at
    total utilization ~[utilization]: one shared period
    [round(threads/utilization)] (clamped to >= 2), deadline = period.
    Under the default [Edf] protocol the threads are identical up to
    renaming, so the translation's symmetry detection groups all of them
    into one orbit class — the parametric fixture behind the orbit
    reduction bench and tests.  [utilization > 1.0] produces an
    unschedulable family. *)

val uunifast : state:Random.State.t -> n:int -> u:float -> float list
(** UUniFast (Bini & Buttazzo): unbiased utilization splits summing to
    [u]. *)

val random_specs : seed:int -> n:int -> u:float -> periodic_spec list
(** A random periodic task set of total utilization [u], deterministic in
    [seed]; periods from a small palette to bound hyperperiods. *)

(** {1 Reference task sets} *)

val light_set : periodic_spec list
(** U ~ 0.58: schedulable under every policy. *)

val crossover_set : periodic_spec list
(** U ~ 0.971 (above the Liu&Layland bound, below 1): RM misses, EDF and
    LLF schedule it. *)

val overloaded_set : periodic_spec list
(** U = 1.25: infeasible under every policy. *)

(** {1 Whole-system fixtures} *)

val cruise_control : ?overload:bool -> unit -> string
(** The paper's Fig. 1 system: two processors, a bus, the HCI and
    CruiseControlLaws subsystems with six threads and bus-mapped data
    connections.  [overload] inflates Cruise1's execution time to produce
    the non-schedulable variant. *)

val event_driven : ?queue_size:int -> ?overflow:string -> unit -> string
(** A periodic producer feeding a sporadic handler through a bounded
    queue, plus a device-driven aperiodic logger (dispatchers 6b/6c,
    queues, stimuli). *)

val shared_data_system : ?t2_cet_ms:int -> ?protocol:string -> unit -> string
(** Two threads on different processors sharing a data component through
    access connections: their executions serialize on the whole-quantum
    data resource. *)

val modal_system : ?degraded_cet_ms:int -> unit -> string
(** A two-mode system (extension): a controller's alarm switches between
    a nominal and a degraded worker whose combined utilization exceeds 1. *)

val hierarchical_system :
  ?critical_rank:int -> ?besteffort_rank:int -> unit -> string
(** Two process groups under HIERARCHICAL_PROTOCOL (extension): a
    rate-monotonic critical group and an EDF best-effort group, ranked by
    the Priority properties. *)

val avionics : unit -> string
(** The larger reference system: 8 threads across 3 processors (RM, EDF,
    RM) and a shared bus with sensing-to-actuation and guidance-to-mission
    flows. *)

val instance_of_string : ?root:string -> string -> Aadl.Instance.t
(** Parse and instantiate a fixture in one step. *)

(** The ACSR processes of the paper's Figures 2 and 3. *)
module Paper_figs : sig
  val cpu : Acsr.Resource.t
  val bus : Acsr.Resource.t
  val done_l : Acsr.Label.t
  val interrupt : Acsr.Label.t
  val exc : Acsr.Label.t
  val exception_handled : Acsr.Label.t
  val interrupt_handled : Acsr.Label.t
  val fig2a_defs : Acsr.Defs.t
  val fig2a_initial : Acsr.Proc.t
  val fig2b_defs : Acsr.Defs.t
  val fig2b_initial : Acsr.Proc.t
  val fig3_defs : Acsr.Defs.t
  val fig3_system : Acsr.Proc.t

  val label_reachable : Versa.Lts.t -> Acsr.Label.t -> bool
  (** Does any state of the LTS offer a step on this label? *)
end
