(* Workload and model generation: reference AADL models (including the
   cruise-control system of the paper's Fig. 1) and synthetic task-set
   generators used by the benchmark harness. *)

(* {1 Synthetic periodic task sets} *)

type periodic_spec = {
  name : string;
  period_ms : int;
  cet_min_ms : int;
  cet_max_ms : int;
  deadline_ms : int;
}

let protocol_name = Aadl.Props.scheduling_protocol_to_string

(* A single-processor system with the given periodic threads. *)
let periodic_system ?(protocol = Aadl.Props.Rate_monotonic) specs =
  let buf = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "processor cpu\nproperties\n  Scheduling_Protocol => %s;\nend cpu;\n\n"
    (protocol_name protocol);
  List.iter
    (fun s ->
      pf "thread %s\nproperties\n" s.name;
      pf "  Dispatch_Protocol => Periodic;\n";
      pf "  Period => %d ms;\n" s.period_ms;
      if s.cet_min_ms = s.cet_max_ms then
        pf "  Compute_Execution_Time => %d ms;\n" s.cet_min_ms
      else
        pf "  Compute_Execution_Time => %d ms .. %d ms;\n" s.cet_min_ms
          s.cet_max_ms;
      pf "  Compute_Deadline => %d ms;\n" s.deadline_ms;
      pf "end %s;\n\n" s.name)
    specs;
  pf "system root\nend root;\n\nsystem implementation root.impl\nsubcomponents\n";
  pf "  cpu1: processor cpu;\n";
  List.iter (fun s -> pf "  %s_i: thread %s;\n" s.name s.name) specs;
  pf "properties\n";
  List.iter
    (fun s ->
      pf "  Actual_Processor_Binding => reference (cpu1) applies to %s_i;\n"
        s.name)
    specs;
  pf "end root.impl;\n";
  Buffer.contents buf

let simple_spec ~name ~period_ms ~cet_ms ?deadline_ms () =
  {
    name;
    period_ms;
    cet_min_ms = cet_ms;
    cet_max_ms = cet_ms;
    deadline_ms = Option.value deadline_ms ~default:period_ms;
  }

(* UUniFast (Bini & Buttazzo): unbiased utilization splits for [n] tasks
   summing to [u].  Deterministic given the Random state. *)
let uunifast ~state ~n ~u =
  let rec go i sum acc =
    if i = n then List.rev (sum :: acc)
    else
      let next =
        sum *. (Random.State.float state 1.0 ** (1.0 /. float_of_int (n - i)))
      in
      go (i + 1) next ((sum -. next) :: acc)
  in
  if n <= 0 then [] else go 1 u []

(* A family of [threads] indistinguishable unit-cet threads at total
   utilization ~ [utilization]: every thread has the same period, cet and
   deadline, so under EDF (whose priority expressions depend only on the
   timing parameters) the translation finds them interchangeable and the
   orbit reduction collapses their permutations.  The period is
   round(threads/utilization) clamped to >= 2 so a thread never saturates
   its own period. *)
let replicated_family ?(protocol = Aadl.Props.Edf) ~threads ~utilization () =
  if threads < 1 then invalid_arg "replicated_family: threads < 1";
  if utilization <= 0.0 then invalid_arg "replicated_family: utilization <= 0";
  let period =
    max 2 (int_of_float (Float.round (float_of_int threads /. utilization)))
  in
  periodic_system ~protocol
    (List.init threads (fun i ->
         simple_spec
           ~name:(Printf.sprintf "t%d" (i + 1))
           ~period_ms:period ~cet_ms:1 ()))

(* Random periodic task set with total utilization [u]: periods drawn from
   a harmonic-ish palette to keep hyperperiods (and hence state spaces)
   bounded. *)
let random_specs ~seed ~n ~u =
  let state = Random.State.make [| seed |] in
  let palette = [| 4; 5; 8; 10; 16; 20 |] in
  List.mapi
    (fun i ui ->
      let period = palette.(Random.State.int state (Array.length palette)) in
      let cet = max 1 (int_of_float (Float.round (ui *. float_of_int period))) in
      let cet = min cet period in
      {
        name = Printf.sprintf "t%d" (i + 1);
        period_ms = period;
        cet_min_ms = cet;
        cet_max_ms = cet;
        deadline_ms = period;
      })
    (uunifast ~state ~n ~u)

(* {1 The task sets used in the write-up} *)

(* Schedulable under any reasonable policy: U ~ 0.58. *)
let light_set =
  [
    simple_spec ~name:"t1" ~period_ms:4 ~cet_ms:1 ();
    simple_spec ~name:"t2" ~period_ms:6 ~cet_ms:2 ();
  ]

(* U = 2/5 + 4/7 ~ 0.971: above the Liu-Layland bound; RM misses t2's
   deadline but EDF and LLF schedule it — the crossover example. *)
let crossover_set =
  [
    simple_spec ~name:"t1" ~period_ms:5 ~cet_ms:2 ();
    simple_spec ~name:"t2" ~period_ms:7 ~cet_ms:4 ();
  ]

(* U = 1.25: infeasible under every policy. *)
let overloaded_set =
  [
    simple_spec ~name:"t1" ~period_ms:4 ~cet_ms:2 ();
    simple_spec ~name:"t2" ~period_ms:4 ~cet_ms:3 ();
  ]

(* {1 The cruise-control system of Fig. 1}

   Reconstructed from the paper: two processors connected by a bus; the
   HCI subsystem (ButtonPanel, DriverModeLogic, InstrumentPanel, RefSpeed)
   bound to one, the CruiseControlLaws subsystem (Cruise1, Cruise2) bound
   to the other.  All connections are data connections (so the translation
   introduces no queues: six thread processes and six dispatchers); the
   DriverModeLogic and RefSpeed outputs cross the bus (Section 4.1-4.2).
   Timing properties are not given in the paper; the values here keep both
   processors below their utilization bounds.  [overload] scales Cruise1's
   execution time to produce the non-schedulable variant. *)
let cruise_control ?(overload = false) () =
  let cruise1_cet = if overload then 45 else 20 in
  Printf.sprintf
    {|
processor ppc
properties
  Scheduling_Protocol => RATE_MONOTONIC_PROTOCOL;
end ppc;

bus vme
end vme;

thread button_panel
features
  cmd: out data port;
properties
  Dispatch_Protocol => Periodic;
  Period => 100 ms;
  Compute_Execution_Time => 10 ms;
  Compute_Deadline => 100 ms;
end button_panel;

thread driver_mode_logic
features
  cmd: in data port;
  mode: out data port;
properties
  Dispatch_Protocol => Periodic;
  Period => 50 ms;
  Compute_Execution_Time => 10 ms;
  Compute_Deadline => 50 ms;
end driver_mode_logic;

thread instrument_panel
features
  speed: in data port;
properties
  Dispatch_Protocol => Periodic;
  Period => 100 ms;
  Compute_Execution_Time => 10 ms;
  Compute_Deadline => 100 ms;
end instrument_panel;

thread ref_speed
features
  refspeed: out data port;
properties
  Dispatch_Protocol => Periodic;
  Period => 50 ms;
  Compute_Execution_Time => 10 ms;
  Compute_Deadline => 50 ms;
end ref_speed;

thread cruise1
features
  mode: in data port;
  refspeed: in data port;
  law: out data port;
properties
  Dispatch_Protocol => Periodic;
  Period => 50 ms;
  Compute_Execution_Time => %d ms;
  Compute_Deadline => 50 ms;
end cruise1;

thread cruise2
features
  mode: in data port;
  law: in data port;
  speed: out data port;
properties
  Dispatch_Protocol => Periodic;
  Period => 50 ms;
  Compute_Execution_Time => 20 ms;
  Compute_Deadline => 50 ms;
end cruise2;

system hci
features
  mode_out: out data port;
  refspeed_out: out data port;
  speed_in: in data port;
end hci;

system implementation hci.impl
subcomponents
  button_panel: thread button_panel;
  driver_mode_logic: thread driver_mode_logic;
  instrument_panel: thread instrument_panel;
  ref_speed: thread ref_speed;
connections
  hc1: port button_panel.cmd -> driver_mode_logic.cmd;
  hc2: port driver_mode_logic.mode -> mode_out;
  hc3: port ref_speed.refspeed -> refspeed_out;
  hc4: port speed_in -> instrument_panel.speed;
end hci.impl;

system ccl
features
  mode_in: in data port;
  refspeed_in: in data port;
  speed_out: out data port;
end ccl;

system implementation ccl.impl
subcomponents
  cruise1: thread cruise1;
  cruise2: thread cruise2;
connections
  cc1: port mode_in -> cruise1.mode;
  cc2: port mode_in -> cruise2.mode;
  cc3: port refspeed_in -> cruise1.refspeed;
  cc4: port cruise1.law -> cruise2.law;
  cc5: port cruise2.speed -> speed_out;
end ccl.impl;

system cruise_control
end cruise_control;

system implementation cruise_control.impl
subcomponents
  hci_processor: processor ppc;
  ccl_processor: processor ppc;
  the_bus: bus vme;
  hci: system hci.impl;
  ccl: system ccl.impl;
connections
  sc1: port hci.mode_out -> ccl.mode_in { Actual_Connection_Binding => reference (the_bus); };
  sc2: port hci.refspeed_out -> ccl.refspeed_in { Actual_Connection_Binding => reference (the_bus); };
  sc3: port ccl.speed_out -> hci.speed_in { Actual_Connection_Binding => reference (the_bus); };
properties
  Actual_Processor_Binding => reference (hci_processor) applies to hci.button_panel;
  Actual_Processor_Binding => reference (hci_processor) applies to hci.driver_mode_logic;
  Actual_Processor_Binding => reference (hci_processor) applies to hci.instrument_panel;
  Actual_Processor_Binding => reference (hci_processor) applies to hci.ref_speed;
  Actual_Processor_Binding => reference (ccl_processor) applies to ccl.cruise1;
  Actual_Processor_Binding => reference (ccl_processor) applies to ccl.cruise2;
end cruise_control.impl;
|}
    cruise1_cet

(* {1 An event-driven (aperiodic/sporadic) workload}

   A periodic producer raises events consumed by a sporadic handler
   through a bounded queue; a device-driven aperiodic logger shares the
   processor.  Exercises dispatchers 6b/6c, queues, and stimuli. *)
let event_driven ?(queue_size = 2) ?(overflow = "DropNewest") () =
  Printf.sprintf
    {|
processor cpu
properties
  Scheduling_Protocol => DEADLINE_MONOTONIC_PROTOCOL;
end cpu;

device radar
features
  ping: out event port;
properties
  Period => 16 ms;
end radar;

thread producer
features
  tick: out event data port;
properties
  Dispatch_Protocol => Periodic;
  Period => 8 ms;
  Compute_Execution_Time => 2 ms;
  Compute_Deadline => 8 ms;
end producer;

thread handler
features
  job: in event data port { Queue_Size => %d; Overflow_Handling_Protocol => %s; };
properties
  Dispatch_Protocol => Sporadic;
  Period => 4 ms;
  Compute_Execution_Time => 2 ms;
  Compute_Deadline => 8 ms;
end handler;

thread logger
features
  evt: in event port;
properties
  Dispatch_Protocol => Aperiodic;
  Compute_Execution_Time => 1 ms;
  Compute_Deadline => 16 ms;
end logger;

system root
end root;

system implementation root.impl
subcomponents
  cpu1: processor cpu;
  radar1: device radar;
  producer: thread producer;
  handler: thread handler;
  logger: thread logger;
connections
  e1: port producer.tick -> handler.job;
  e2: port radar1.ping -> logger.evt;
properties
  Actual_Processor_Binding => reference (cpu1) applies to producer;
  Actual_Processor_Binding => reference (cpu1) applies to handler;
  Actual_Processor_Binding => reference (cpu1) applies to logger;
end root.impl;
|}
    queue_size overflow

let instance_of_string = Aadl.Instantiate.of_string

(* Re-export: the ACSR systems of the paper's Figures 2 and 3. *)
module Paper_figs = Paper_figs

(* {1 A multi-modal system (extension beyond the paper's translation)}

   A controller thread raises an alarm event that switches the system
   from the nominal mode to a degraded mode; one worker runs per mode.
   The combined utilization of both workers would overload the processor,
   so the analysis only succeeds if mode exclusion is honored.
   [degraded_cet_ms] tunes the degraded-mode worker: 6 ms keeps both
   modes feasible, 9 ms overloads the degraded mode. *)
let modal_system ?(degraded_cet_ms = 6) () =
  Printf.sprintf
    {|
processor cpu
properties
  Scheduling_Protocol => RATE_MONOTONIC_PROTOCOL;
end cpu;

thread controller
features
  alarm: out event port;
properties
  Dispatch_Protocol => Periodic;
  Period => 10 ms;
  Compute_Execution_Time => 2 ms;
  Compute_Deadline => 10 ms;
end controller;

thread worker_nominal
properties
  Dispatch_Protocol => Periodic;
  Period => 10 ms;
  Compute_Execution_Time => 3 ms;
  Compute_Deadline => 10 ms;
end worker_nominal;

thread worker_degraded
properties
  Dispatch_Protocol => Periodic;
  Period => 10 ms;
  Compute_Execution_Time => %d ms;
  Compute_Deadline => 10 ms;
end worker_degraded;

system root
end root;

system implementation root.impl
subcomponents
  cpu1: processor cpu;
  ctl: thread controller;
  wn: thread worker_nominal in modes (nominal);
  wd: thread worker_degraded in modes (degraded);
modes
  nominal: initial mode;
  degraded: mode;
  nominal -[ ctl.alarm ]-> degraded;
  degraded -[ ctl.alarm ]-> nominal;
properties
  Actual_Processor_Binding => reference (cpu1) applies to ctl;
  Actual_Processor_Binding => reference (cpu1) applies to wn;
  Actual_Processor_Binding => reference (cpu1) applies to wd;
end root.impl;
|}
    degraded_cet_ms

(* {1 Cross-processor shared data}

   Two threads on different processors share a data component through
   access connections.  Each thread holds the (whole-quantum) data
   resource while computing, so their executions serialize on it: the
   data component's demand is the sum of both execution times per period.
   With [t1 C=2, t2 C=3, periods 4] the data demand is 5 > 4: the system
   is unschedulable even though each processor alone is nearly idle —
   the kind of interaction the paper's approach captures and classical
   per-processor analysis misses. *)
let shared_data_system ?(t2_cet_ms = 3) ?(protocol = "Priority_Ceiling") () =
  Printf.sprintf
    {|
processor cpu
properties
  Scheduling_Protocol => RATE_MONOTONIC_PROTOCOL;
end cpu;

data store
properties
  Concurrency_Control_Protocol => %s;
end store;

thread writer
features
  da: requires data access store;
properties
  Dispatch_Protocol => Periodic;
  Period => 4 ms;
  Compute_Execution_Time => 2 ms;
  Compute_Deadline => 4 ms;
end writer;

thread reader
features
  da: requires data access store;
properties
  Dispatch_Protocol => Periodic;
  Period => 4 ms;
  Compute_Execution_Time => %d ms;
  Compute_Deadline => 4 ms;
end reader;

system root
end root;

system implementation root.impl
subcomponents
  cpu_a: processor cpu;
  cpu_b: processor cpu;
  sd: data store;
  w: thread writer;
  r: thread reader;
connections
  d1: data access w.da <-> sd;
  d2: data access r.da <-> sd;
properties
  Actual_Processor_Binding => reference (cpu_a) applies to w;
  Actual_Processor_Binding => reference (cpu_b) applies to r;
end root.impl;
|}
    protocol t2_cet_ms

(* {1 Hierarchical scheduling (extension; paper Section 7 future work)}

   One processor under HIERARCHICAL_PROTOCOL: a critical process and a
   best-effort process, ranked by their Priority properties; rate-
   monotonic locally in the critical group, EDF locally in the best-effort
   group.  With the critical group on top everything fits; ranking the
   best-effort group above starves the tight-deadline critical thread. *)
let hierarchical_system ?(critical_rank = 10) ?(besteffort_rank = 1) () =
  Printf.sprintf
    {|
processor cpu
properties
  Scheduling_Protocol => HIERARCHICAL_PROTOCOL;
end cpu;

thread h1
properties
  Dispatch_Protocol => Periodic;
  Period => 4 ms;
  Compute_Execution_Time => 1 ms;
  Compute_Deadline => 2 ms;
end h1;

thread h2
properties
  Dispatch_Protocol => Periodic;
  Period => 8 ms;
  Compute_Execution_Time => 1 ms;
  Compute_Deadline => 8 ms;
end h2;

thread be
properties
  Dispatch_Protocol => Periodic;
  Period => 8 ms;
  Compute_Execution_Time => 2 ms;
  Compute_Deadline => 8 ms;
end be;

process critical
end critical;

process implementation critical.impl
subcomponents
  h1: thread h1;
  h2: thread h2;
end critical.impl;

process besteffort
end besteffort;

process implementation besteffort.impl
subcomponents
  be1: thread be;
  be2: thread be;
end besteffort.impl;

system root
end root;

system implementation root.impl
subcomponents
  cpu1: processor cpu;
  crit: process critical.impl { Priority => %d; Scheduling_Protocol => RATE_MONOTONIC_PROTOCOL; };
  bg: process besteffort.impl { Priority => %d; Scheduling_Protocol => EDF_PROTOCOL; };
properties
  Actual_Processor_Binding => reference (cpu1) applies to crit.h1;
  Actual_Processor_Binding => reference (cpu1) applies to crit.h2;
  Actual_Processor_Binding => reference (cpu1) applies to bg.be1;
  Actual_Processor_Binding => reference (cpu1) applies to bg.be2;
end root.impl;
|}
    critical_rank besteffort_rank

(* {1 A larger avionics-flavoured reference system}

   Three processors and a bus: an I/O partition (rate-monotonic), a
   flight-control partition under EDF, and a mission partition
   (rate-monotonic), connected by bus-mapped data flows from sensing to
   actuation and up to mission planning.  Used as the large end-to-end
   example and for scalability measurements. *)
let avionics () =
  {|
processor io_cpu
properties
  Scheduling_Protocol => RATE_MONOTONIC_PROTOCOL;
end io_cpu;

processor flight_cpu
properties
  Scheduling_Protocol => EDF_PROTOCOL;
end flight_cpu;

processor mission_cpu
properties
  Scheduling_Protocol => RATE_MONOTONIC_PROTOCOL;
end mission_cpu;

bus avionics_bus
end avionics_bus;

thread sensor_poll
features
  samples: out data port;
properties
  Dispatch_Protocol => Periodic;
  Period => 8 ms;
  Compute_Execution_Time => 2 ms;
  Compute_Deadline => 8 ms;
end sensor_poll;

thread actuator_drive
features
  cmds: in data port;
properties
  Dispatch_Protocol => Periodic;
  Period => 8 ms;
  Compute_Execution_Time => 2 ms;
  Compute_Deadline => 8 ms;
end actuator_drive;

thread rate_damping
properties
  Dispatch_Protocol => Periodic;
  Period => 4 ms;
  Compute_Execution_Time => 1 ms;
  Compute_Deadline => 4 ms;
end rate_damping;

thread attitude_control
features
  samples: in data port;
  cmds: out data port;
properties
  Dispatch_Protocol => Periodic;
  Period => 8 ms;
  Compute_Execution_Time => 2 ms;
  Compute_Deadline => 8 ms;
end attitude_control;

thread guidance
features
  track: out data port;
properties
  Dispatch_Protocol => Periodic;
  Period => 16 ms;
  Compute_Execution_Time => 4 ms;
  Compute_Deadline => 16 ms;
end guidance;

thread nav_update
features
  track: in data port;
  fix: out data port;
properties
  Dispatch_Protocol => Periodic;
  Period => 16 ms;
  Compute_Execution_Time => 3 ms;
  Compute_Deadline => 16 ms;
end nav_update;

thread mission_plan
features
  fix: in data port;
  plan: out data port;
properties
  Dispatch_Protocol => Periodic;
  Period => 16 ms;
  Compute_Execution_Time => 4 ms;
  Compute_Deadline => 16 ms;
end mission_plan;

thread telemetry
features
  plan: in data port;
properties
  Dispatch_Protocol => Periodic;
  Period => 16 ms;
  Compute_Execution_Time => 3 ms;
  Compute_Deadline => 16 ms;
end telemetry;

system avionics
end avionics;

system implementation avionics.impl
subcomponents
  io_cpu: processor io_cpu;
  flight_cpu: processor flight_cpu;
  mission_cpu: processor mission_cpu;
  b: bus avionics_bus;
  sensor_poll: thread sensor_poll;
  actuator_drive: thread actuator_drive;
  rate_damping: thread rate_damping;
  attitude_control: thread attitude_control;
  guidance: thread guidance;
  nav_update: thread nav_update;
  mission_plan: thread mission_plan;
  telemetry: thread telemetry;
connections
  f1: port sensor_poll.samples -> attitude_control.samples { Actual_Connection_Binding => reference (b); };
  f2: port attitude_control.cmds -> actuator_drive.cmds { Actual_Connection_Binding => reference (b); };
  f3: port guidance.track -> nav_update.track { Actual_Connection_Binding => reference (b); };
  f4: port nav_update.fix -> mission_plan.fix;
  f5: port mission_plan.plan -> telemetry.plan;
properties
  Actual_Processor_Binding => reference (io_cpu) applies to sensor_poll;
  Actual_Processor_Binding => reference (io_cpu) applies to actuator_drive;
  Actual_Processor_Binding => reference (flight_cpu) applies to rate_damping;
  Actual_Processor_Binding => reference (flight_cpu) applies to attitude_control;
  Actual_Processor_Binding => reference (flight_cpu) applies to guidance;
  Actual_Processor_Binding => reference (mission_cpu) applies to nav_update;
  Actual_Processor_Binding => reference (mission_cpu) applies to mission_plan;
  Actual_Processor_Binding => reference (mission_cpu) applies to telemetry;
end avionics.impl;
|}
