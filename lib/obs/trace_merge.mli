(** Stitch per-process Chrome [trace_event] files — the output of
    {!Obs.Trace.write} from a client, a router, and each shard — into
    one multi-process trace.  Every input becomes its own [pid] with a
    [process_name] metadata track named after the recorded [node], and
    timestamps are shifted onto the earliest recorded epoch so
    virtual-clock runs align exactly.  Span [trace_id]/[span_id]/
    [parent_id] args pass through untouched, so the merged view shows
    one causally-linked timeline per client request. *)

exception Parse_error of string

type process
(** One parsed per-process trace document. *)

val read_string : ?name:string -> string -> process
(** Parse a trace document; [name] overrides the recorded node name.
    @raise Parse_error on malformed input. *)

val read_file : string -> process
(** {!read_string} on a file's contents; traces recorded without a
    [node] field take the file's basename as their track name. *)

val node : process -> string
val event_count : process -> int

val merge : process list -> string
(** The merged Chrome trace document, events sorted by aligned
    timestamp. *)

val merge_files : out:string -> string list -> int * int
(** [merge_files ~out paths] merges the trace files [paths] into [out];
    returns [(processes, events)] counts. *)
