(** The observability substrate shared by every layer: a metrics
    registry (named counters, gauges, fixed-bucket histograms) and
    span-based structured tracing with Chrome [trace_event] export.

    {1 Registry}

    Metrics are registered by name in a {!registry} (usually
    {!default_registry}) and updated through handles, so hot paths pay a
    shard increment, never a name lookup.  Counters and histograms are
    sharded per domain: updates from {!Versa.Pool} worker domains land
    in (mostly) distinct cells and are merged on read, so concurrent
    increments neither lock nor lose counts.  Reads ({!snapshot},
    {!render_prometheus}) are consistent enough for telemetry: they sum
    the shards without stopping writers.

    {1 Tracing}

    {!Span.with_} brackets a region with begin/end timestamps.  When
    tracing is inactive a span costs one atomic load; when active
    ({!Trace.start}) every span is buffered domain-locally and
    {!Trace.write} merges the buffers into Chrome [trace_event] JSON,
    viewable in [chrome://tracing] or {{:https://ui.perfetto.dev}
    Perfetto}.  The CLI's [--trace FILE] flag drives exactly this
    pair. *)

type registry

val default_registry : registry
(** The process-wide registry every library instruments into. *)

val create_registry : unit -> registry
(** A fresh, empty registry (tests). *)

val set_enabled : bool -> unit
(** Globally mute ([false]) or unmute ([true], the initial state) all
    metric updates.  The overhead benchmark gate measures the cost of
    instrumentation as the delta between the two states. *)

val enabled : unit -> bool

module Counter : sig
  type t

  val make : ?registry:registry -> ?help:string -> string -> t
  (** [make name] registers (or returns the already-registered) counter
      [name].  @raise Invalid_argument if [name] is registered as a
      different metric kind. *)

  val incr : ?by:int -> t -> unit
  (** Add [by] (default 1, must be [>= 0]) to the calling domain's
      shard. *)

  val value : t -> int
  (** Sum over all shards. *)

  val name : t -> string
end

module Gauge : sig
  type t

  val make : ?registry:registry -> ?help:string -> string -> t
  val set : t -> float -> unit  (** last write wins *)

  val value : t -> float
  val name : t -> string
end

module Histogram : sig
  type t

  val make :
    ?registry:registry -> ?help:string -> ?buckets:float list -> string -> t
  (** [buckets] are the finite upper bounds ([le], inclusive), strictly
      increasing; an overflow (+Inf) bucket is always appended.  The
      default buckets are powers of ten from 1ms to 100s — override for
      anything that is not a duration in seconds. *)

  val observe : t -> float -> unit

  val sum : t -> float
  val count : t -> int

  val buckets : t -> (float * int) list
  (** [(upper_bound, count)] per bucket, non-cumulative, the overflow
      bucket last as [(infinity, n)]. *)

  val name : t -> string
end

(** {1 Reading a registry} *)

type value =
  | Counter_value of int
  | Gauge_value of float
  | Histogram_value of {
      bounds : float array;  (** finite upper bounds *)
      counts : int array;  (** per bucket, non-cumulative; length = bounds + 1 *)
      sum : float;
      count : int;
    }

type sample = { name : string; help : string; value : value }

val snapshot : ?registry:registry -> unit -> sample list
(** Every metric in the registry, sorted by name. *)

val find : ?registry:registry -> string -> sample option

val render_prometheus : ?registry:registry -> unit -> string
(** Prometheus text exposition (v0.0.4): [# HELP]/[# TYPE] preambles,
    cumulative [_bucket{le="..."}] rows plus [_sum]/[_count] for
    histograms.  Metrics appear sorted by name. *)

(** {1 Trace context}

    A span's identity: [trace_id] names the end-to-end request timeline
    and [span_id] one bracket on it.  Contexts travel across process
    boundaries as a ["trace_id/span_id"] wire header carried on
    protocol ops, and ambiently within a process on a per-thread stack
    that {!Span.with_} maintains — so nested spans parent correctly even
    across the socket transport's handler threads. *)

module Context : sig
  type t = { trace_id : string; span_id : string }

  val to_header : t -> string
  (** ["trace_id/span_id"], the wire form carried on protocol ops. *)

  val of_header : string -> t option
  (** Inverse of {!to_header}; [None] on anything malformed. *)

  val current : unit -> t option
  (** The calling thread's innermost active span context, if any. *)

  val push : t -> unit
  val pop : t -> unit
  (** Explicit stack maintenance for code that carries a context across
      a callback boundary; {!Span.with_} does this automatically. *)
end

(** {1 Structured tracing} *)

module Trace : sig
  val set_node : string -> unit
  (** Name this process's trace identity (default ["main"]).  Span ids
      are ["<node>-<n>"], so distinct node names keep ids unique across
      the processes later merged by {!Trace_merge}; the name is also
      written into the trace document for the merged track label. *)

  val node_name : unit -> string

  val fresh_id : unit -> string
  (** Next span id from the per-process counter ({!start} resets it to
      1, so sim-transport runs replay to bit-identical ids). *)

  val start : unit -> unit
  (** Reset the event buffers and start collecting spans.  Timestamps
      are microseconds since this call, read from the ambient
      {!Timed.Clock} — under a simulator clock the trace carries
      virtual time, so install the clock ({!Timed.Clock.with_clock})
      before starting the trace. *)

  val active : unit -> bool

  val stop : unit -> unit
  (** Stop collecting.  Buffered events stay readable until the next
      {!start}. *)

  val inject :
    ?args:(string * string) list ->
    ?tid:int ->
    ?dur_s:float ->
    name:string ->
    at:float ->
    unit ->
    unit
  (** Append one raw event at the absolute ambient-clock timestamp [at]
      (seconds), bypassing span bracketing — the hook that merges
      externally-timestamped logs (e.g. the {!Timed.Fabric} delivery
      log) into the trace.  [dur_s > 0] records a complete ("X") event,
      otherwise an instant; [tid] selects the timeline row.  Timestamps
      before the trace epoch clamp to it.  No-op while tracing is
      inactive. *)

  val to_string : unit -> string
  (** The collected events as a Chrome [trace_event] JSON object
      ([{"traceEvents": [...], ...}]), events sorted by timestamp. *)

  val write : string -> unit
  (** Write {!to_string} to a file. *)
end

module Span : sig
  val with_ :
    ?attrs:(string * string) list ->
    ?parent:Context.t ->
    name:string ->
    (unit -> 'a) ->
    'a
  (** [with_ ~name f] runs [f ()]; when tracing is active, records a
      complete ("X") event named [name] covering [f]'s execution on the
      calling domain's timeline, with [attrs] as its [args].  The event
      is recorded even when [f] raises, so traces are always
      well-nested.

      Every active span carries identity args: [trace_id], [span_id],
      and — when it has a parent — [parent_id].  The parent is [parent]
      when given (a context decoded from the wire), else the calling
      thread's current ambient context; a parentless span starts a new
      trace.  While [f] runs, the span's context is the thread's
      ambient context, so nested spans chain automatically and
      {!Context.current} is what a client injects into outgoing ops. *)

  val instant : ?attrs:(string * string) list -> string -> unit
  (** A zero-duration marker ("i" event) on the calling domain's
      timeline. *)
end

(** {1 Structured logs} *)

module Log : sig
  val set_output : out_channel option -> unit
  (** Route JSON-lines structured logs to [oc] ([None], the default,
      disables them).  The CLI's [--log-json] flag drives this. *)

  val enabled : unit -> bool

  val emit : ?fields:(string * string) list -> string -> unit
  (** Emit one JSON line: ambient-clock [ts], this process's [node]
      name, the [event] name, the calling thread's current trace/span
      correlation ids (when a span is active), then [fields].  No-op
      when no output is set. *)
end

(** {1 Runtime gauges} *)

val sample_gc : unit -> unit
(** Refresh the [runtime_gc_*] gauges (heap/top-heap words, lifetime
    allocated words, minor/major collection counts, compactions) from
    [Gc.quick_stat].  Registers the gauges on first call, so processes
    that never sample keep them out of their registry. *)

(** {1 Multi-process trace merging} *)

module Trace_merge = Trace_merge
