(** The observability substrate shared by every layer: a metrics
    registry (named counters, gauges, fixed-bucket histograms) and
    span-based structured tracing with Chrome [trace_event] export.

    {1 Registry}

    Metrics are registered by name in a {!registry} (usually
    {!default_registry}) and updated through handles, so hot paths pay a
    shard increment, never a name lookup.  Counters and histograms are
    sharded per domain: updates from {!Versa.Pool} worker domains land
    in (mostly) distinct cells and are merged on read, so concurrent
    increments neither lock nor lose counts.  Reads ({!snapshot},
    {!render_prometheus}) are consistent enough for telemetry: they sum
    the shards without stopping writers.

    {1 Tracing}

    {!Span.with_} brackets a region with begin/end timestamps.  When
    tracing is inactive a span costs one atomic load; when active
    ({!Trace.start}) every span is buffered domain-locally and
    {!Trace.write} merges the buffers into Chrome [trace_event] JSON,
    viewable in [chrome://tracing] or {{:https://ui.perfetto.dev}
    Perfetto}.  The CLI's [--trace FILE] flag drives exactly this
    pair. *)

type registry

val default_registry : registry
(** The process-wide registry every library instruments into. *)

val create_registry : unit -> registry
(** A fresh, empty registry (tests). *)

val set_enabled : bool -> unit
(** Globally mute ([false]) or unmute ([true], the initial state) all
    metric updates.  The overhead benchmark gate measures the cost of
    instrumentation as the delta between the two states. *)

val enabled : unit -> bool

module Counter : sig
  type t

  val make : ?registry:registry -> ?help:string -> string -> t
  (** [make name] registers (or returns the already-registered) counter
      [name].  @raise Invalid_argument if [name] is registered as a
      different metric kind. *)

  val incr : ?by:int -> t -> unit
  (** Add [by] (default 1, must be [>= 0]) to the calling domain's
      shard. *)

  val value : t -> int
  (** Sum over all shards. *)

  val name : t -> string
end

module Gauge : sig
  type t

  val make : ?registry:registry -> ?help:string -> string -> t
  val set : t -> float -> unit  (** last write wins *)

  val value : t -> float
  val name : t -> string
end

module Histogram : sig
  type t

  val make :
    ?registry:registry -> ?help:string -> ?buckets:float list -> string -> t
  (** [buckets] are the finite upper bounds ([le], inclusive), strictly
      increasing; an overflow (+Inf) bucket is always appended.  The
      default buckets are powers of ten from 1ms to 100s — override for
      anything that is not a duration in seconds. *)

  val observe : t -> float -> unit

  val sum : t -> float
  val count : t -> int

  val buckets : t -> (float * int) list
  (** [(upper_bound, count)] per bucket, non-cumulative, the overflow
      bucket last as [(infinity, n)]. *)

  val name : t -> string
end

(** {1 Reading a registry} *)

type value =
  | Counter_value of int
  | Gauge_value of float
  | Histogram_value of {
      bounds : float array;  (** finite upper bounds *)
      counts : int array;  (** per bucket, non-cumulative; length = bounds + 1 *)
      sum : float;
      count : int;
    }

type sample = { name : string; help : string; value : value }

val snapshot : ?registry:registry -> unit -> sample list
(** Every metric in the registry, sorted by name. *)

val find : ?registry:registry -> string -> sample option

val render_prometheus : ?registry:registry -> unit -> string
(** Prometheus text exposition (v0.0.4): [# HELP]/[# TYPE] preambles,
    cumulative [_bucket{le="..."}] rows plus [_sum]/[_count] for
    histograms.  Metrics appear sorted by name. *)

(** {1 Structured tracing} *)

module Trace : sig
  val start : unit -> unit
  (** Reset the event buffers and start collecting spans.  Timestamps
      are microseconds since this call, read from the ambient
      {!Timed.Clock} — under a simulator clock the trace carries
      virtual time, so install the clock ({!Timed.Clock.with_clock})
      before starting the trace. *)

  val active : unit -> bool

  val stop : unit -> unit
  (** Stop collecting.  Buffered events stay readable until the next
      {!start}. *)

  val inject :
    ?args:(string * string) list ->
    ?tid:int ->
    ?dur_s:float ->
    name:string ->
    at:float ->
    unit ->
    unit
  (** Append one raw event at the absolute ambient-clock timestamp [at]
      (seconds), bypassing span bracketing — the hook that merges
      externally-timestamped logs (e.g. the {!Timed.Fabric} delivery
      log) into the trace.  [dur_s > 0] records a complete ("X") event,
      otherwise an instant; [tid] selects the timeline row.  Timestamps
      before the trace epoch clamp to it.  No-op while tracing is
      inactive. *)

  val to_string : unit -> string
  (** The collected events as a Chrome [trace_event] JSON object
      ([{"traceEvents": [...], ...}]), events sorted by timestamp. *)

  val write : string -> unit
  (** Write {!to_string} to a file. *)
end

module Span : sig
  val with_ : ?attrs:(string * string) list -> name:string -> (unit -> 'a) -> 'a
  (** [with_ ~name f] runs [f ()]; when tracing is active, records a
      complete ("X") event named [name] covering [f]'s execution on the
      calling domain's timeline, with [attrs] as its [args].  The event
      is recorded even when [f] raises, so traces are always
      well-nested. *)

  val instant : ?attrs:(string * string) list -> string -> unit
  (** A zero-duration marker ("i" event) on the calling domain's
      timeline. *)
end
