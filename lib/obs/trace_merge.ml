(* Stitch per-process Chrome trace files into one multi-process view.

   Each input is a [Trace.to_string] document: a [traceEvents] array
   plus the [node]/[epoch_s] metadata the writer appends.  Merging
   assigns every input a distinct [pid], names the track with a
   [process_name] metadata event, and shifts timestamps by the epoch
   difference so all processes share the earliest epoch as time zero —
   which aligns virtual-clock runs exactly and wall-clock runs to the
   precision of the recorded epochs.

   [obs] sits below [lib/service], so this module cannot reuse
   [Service.Json]; it carries its own minimal JSON reader instead. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

(* {1 A minimal JSON reader} *)

type cursor = { src : string; mutable pos : int }

let fail c msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.src
    &&
    match c.src.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  skip_ws c;
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | _ -> fail c (Printf.sprintf "expected %c" ch)

let literal c word value =
  if
    c.pos + String.length word <= String.length c.src
    && String.sub c.src c.pos (String.length word) = word
  then begin
    c.pos <- c.pos + String.length word;
    value
  end
  else fail c ("expected " ^ word)

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> c.pos <- c.pos + 1
    | Some '\\' -> (
        c.pos <- c.pos + 1;
        match peek c with
        | None -> fail c "unterminated escape"
        | Some esc ->
            c.pos <- c.pos + 1;
            (match esc with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                if c.pos + 4 > String.length c.src then
                  fail c "truncated \\u escape";
                let code =
                  int_of_string ("0x" ^ String.sub c.src c.pos 4)
                in
                c.pos <- c.pos + 4;
                (* The writer only escapes control characters, so a
                   plain byte append covers everything it emits. *)
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else Buffer.add_string buf (Printf.sprintf "\\u%04x" code)
            | _ -> fail c "bad escape");
            go ())
    | Some ch ->
        c.pos <- c.pos + 1;
        Buffer.add_char buf ch;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while c.pos < String.length c.src && num_char c.src.[c.pos] do
    c.pos <- c.pos + 1
  done;
  if c.pos = start then fail c "expected number";
  match float_of_string_opt (String.sub c.src start (c.pos - start)) with
  | Some f -> f
  | None -> fail c "malformed number"

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '"' -> Str (parse_string c)
  | Some '{' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some '}' then begin
        c.pos <- c.pos + 1;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws c;
          let key = parse_string c in
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.pos <- c.pos + 1;
              members ((key, v) :: acc)
          | Some '}' ->
              c.pos <- c.pos + 1;
              List.rev ((key, v) :: acc)
          | _ -> fail c "expected , or }"
        in
        Obj (members [])
      end
  | Some '[' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some ']' then begin
        c.pos <- c.pos + 1;
        Arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.pos <- c.pos + 1;
              elements (v :: acc)
          | Some ']' ->
              c.pos <- c.pos + 1;
              List.rev (v :: acc)
          | _ -> fail c "expected , or ]"
        in
        Arr (elements [])
      end
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some _ -> Num (parse_number c)

let parse s =
  let c = { src = s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then fail c "trailing garbage";
  v

(* {1 Re-serialization} *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | ch when Char.code ch < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code ch))
      | ch -> Buffer.add_char buf ch)
    s;
  Buffer.contents buf

let rec print buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Num f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.0f" f)
      else Buffer.add_string buf (Printf.sprintf "%.3f" f)
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | Arr vs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_string buf ", ";
          print buf v)
        vs;
      Buffer.add_char buf ']'
  | Obj members ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ", ";
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\": ";
          print buf v)
        members;
      Buffer.add_char buf '}'

(* {1 Reading one process trace} *)

type process = { node : string; epoch_s : float; events : (string * json) list list }

let member key = function
  | Obj members -> List.assoc_opt key members
  | _ -> None

let read_string ?name contents =
  let doc =
    try parse contents
    with Parse_error msg -> raise (Parse_error ("trace document: " ^ msg))
  in
  let events =
    match member "traceEvents" doc with
    | Some (Arr evs) ->
        List.filter_map (function Obj m -> Some m | _ -> None) evs
    | _ -> raise (Parse_error "trace document: missing traceEvents array")
  in
  let node =
    match (name, member "node" doc) with
    | Some n, _ -> n
    | None, Some (Str n) -> n
    | None, _ -> "unknown"
  in
  let epoch_s =
    match member "epoch_s" doc with Some (Num e) -> e | _ -> 0.
  in
  { node; epoch_s; events }

let read_file path =
  let ic = open_in_bin path in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  (* Default the track name to the file's basename sans extension so
     pre-identity traces (no [node] field) still get a readable track. *)
  let base = Filename.remove_extension (Filename.basename path) in
  let p = read_string contents in
  if p.node = "unknown" then { p with node = base } else p

let node p = p.node
let event_count p = List.length p.events

(* {1 Merging} *)

let merge processes =
  let min_epoch =
    List.fold_left (fun acc p -> Float.min acc p.epoch_s) infinity processes
  in
  let min_epoch = if min_epoch = infinity then 0. else min_epoch in
  let rows =
    List.concat
      (List.mapi
         (fun i p ->
           let pid = i + 1 in
           let shift_us = (p.epoch_s -. min_epoch) *. 1e6 in
           let name_row =
             ( 0.,
               Obj
                 [
                   ("name", Str "process_name");
                   ("ph", Str "M");
                   ("pid", Num (float_of_int pid));
                   ("tid", Num 0.);
                   ("args", Obj [ ("name", Str p.node) ]);
                 ] )
           in
           name_row
           :: List.map
                (fun members ->
                  let ts =
                    match List.assoc_opt "ts" members with
                    | Some (Num t) -> t +. shift_us
                    | _ -> 0.
                  in
                  let members =
                    List.map
                      (fun (k, v) ->
                        match k with
                        | "pid" -> (k, Num (float_of_int pid))
                        | "ts" -> (k, Num ts)
                        | _ -> (k, v))
                      members
                  in
                  (ts, Obj members))
                p.events)
         processes)
  in
  (* Metadata rows sort ahead of events at equal timestamps because
     [stable_sort] preserves their emission order. *)
  let rows = List.stable_sort (fun (a, _) (b, _) -> compare a b) rows in
  let buf = Buffer.create 8192 in
  Buffer.add_string buf "{\"traceEvents\": [";
  List.iteri
    (fun i (_, ev) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "\n  ";
      print buf ev)
    rows;
  Buffer.add_string buf "\n], \"displayTimeUnit\": \"ms\"}\n";
  Buffer.contents buf

let merge_files ~out paths =
  let processes = List.map read_file paths in
  let merged = merge processes in
  let oc = open_out out in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc merged);
  ( List.length processes,
    List.fold_left (fun acc p -> acc + event_count p) 0 processes )
