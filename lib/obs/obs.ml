(* Metrics registry + span tracing.  See obs.mli for the contract.

   Counters and histograms are sharded: each metric owns [num_shards]
   cells and a domain updates the cell indexed by its domain id, so
   concurrent updates from pool workers hit distinct cache lines in the
   common case and merge by summation on read.  Cells are individual
   [Atomic.t]s, which also makes the rare shard collision (two domains
   mapping to one cell) lose nothing. *)

let num_shards = 16  (* power of two; domain ids are hashed by masking *)
let shard_index () = (Domain.self () :> int) land (num_shards - 1)

let on = Atomic.make true
let set_enabled b = Atomic.set on b
let enabled () = Atomic.get on

(* Add to a float atomic; uncontended in the common (per-domain-shard)
   case, so the CAS succeeds on the first try. *)
let rec atomic_add_float cell x =
  let old = Atomic.get cell in
  if not (Atomic.compare_and_set cell old (old +. x)) then
    atomic_add_float cell x

type counter = { c_name : string; c_help : string; c_cells : int Atomic.t array }

type gauge = { g_name : string; g_help : string; g_cell : float Atomic.t }

type histogram = {
  h_name : string;
  h_help : string;
  h_bounds : float array;  (* finite upper bounds, strictly increasing *)
  h_cells : int Atomic.t array array;  (* [shard].(bucket), incl. overflow *)
  h_sums : float Atomic.t array;  (* [shard] *)
}

type metric =
  | Counter_m of counter
  | Gauge_m of gauge
  | Histogram_m of histogram

type registry = { mutex : Mutex.t; tbl : (string, metric) Hashtbl.t }

let create_registry () = { mutex = Mutex.create (); tbl = Hashtbl.create 64 }
let default_registry = create_registry ()

let with_lock r f =
  Mutex.lock r.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock r.mutex) f

(* Register [name], reusing an existing registration when the kind
   matches (module initialization order must not matter) and rejecting a
   kind clash loudly: two libraries fighting over one name is a bug. *)
let register registry name build match_existing =
  with_lock registry (fun () ->
      match Hashtbl.find_opt registry.tbl name with
      | Some m -> (
          match match_existing m with
          | Some existing -> existing
          | None ->
              invalid_arg
                (Printf.sprintf
                   "Obs: metric %S already registered with another kind" name))
      | None ->
          let built = build () in
          Hashtbl.replace registry.tbl name (fst built);
          snd built)

module Counter = struct
  type t = counter

  let make ?(registry = default_registry) ?(help = "") name =
    register registry name
      (fun () ->
        let c =
          {
            c_name = name;
            c_help = help;
            c_cells = Array.init num_shards (fun _ -> Atomic.make 0);
          }
        in
        (Counter_m c, c))
      (function Counter_m c -> Some c | _ -> None)

  let incr ?(by = 1) c =
    if by < 0 then invalid_arg "Obs.Counter.incr: negative increment";
    if Atomic.get on then
      ignore (Atomic.fetch_and_add c.c_cells.(shard_index ()) by)

  let value c = Array.fold_left (fun acc cell -> acc + Atomic.get cell) 0 c.c_cells
  let name c = c.c_name
end

module Gauge = struct
  type t = gauge

  let make ?(registry = default_registry) ?(help = "") name =
    register registry name
      (fun () ->
        let g = { g_name = name; g_help = help; g_cell = Atomic.make 0. } in
        (Gauge_m g, g))
      (function Gauge_m g -> Some g | _ -> None)

  let set g v = if Atomic.get on then Atomic.set g.g_cell v
  let value g = Atomic.get g.g_cell
  let name g = g.g_name
end

module Histogram = struct
  type t = histogram

  (* durations in seconds, 1ms .. 100s *)
  let default_buckets = [ 0.001; 0.01; 0.1; 1.; 10.; 100. ]

  let make ?(registry = default_registry) ?(help = "")
      ?(buckets = default_buckets) name =
    let bounds = Array.of_list buckets in
    Array.iteri
      (fun i b ->
        if i > 0 && b <= bounds.(i - 1) then
          invalid_arg "Obs.Histogram.make: buckets must be strictly increasing")
      bounds;
    if Array.length bounds = 0 then
      invalid_arg "Obs.Histogram.make: empty bucket list";
    register registry name
      (fun () ->
        let h =
          {
            h_name = name;
            h_help = help;
            h_bounds = bounds;
            h_cells =
              Array.init num_shards (fun _ ->
                  Array.init (Array.length bounds + 1) (fun _ -> Atomic.make 0));
            h_sums = Array.init num_shards (fun _ -> Atomic.make 0.);
          }
        in
        (Histogram_m h, h))
      (function Histogram_m h -> Some h | _ -> None)

  (* first bucket whose upper bound covers [v] (le semantics); the last
     slot is the +Inf overflow *)
  let bucket_of h v =
    let n = Array.length h.h_bounds in
    let i = ref 0 in
    while !i < n && v > h.h_bounds.(!i) do
      incr i
    done;
    !i

  let observe h v =
    if Atomic.get on then begin
      let s = shard_index () in
      ignore (Atomic.fetch_and_add h.h_cells.(s).(bucket_of h v) 1);
      atomic_add_float h.h_sums.(s) v
    end

  let counts h =
    let n = Array.length h.h_bounds + 1 in
    let out = Array.make n 0 in
    Array.iter
      (fun shard ->
        for b = 0 to n - 1 do
          out.(b) <- out.(b) + Atomic.get shard.(b)
        done)
      h.h_cells;
    out

  let sum h = Array.fold_left (fun acc s -> acc +. Atomic.get s) 0. h.h_sums
  let count h = Array.fold_left (fun acc n -> acc + n) 0 (counts h)

  let buckets h =
    let cs = counts h in
    List.init (Array.length cs) (fun i ->
        ( (if i < Array.length h.h_bounds then h.h_bounds.(i) else infinity),
          cs.(i) ))

  let name h = h.h_name
end

(* {1 Reading} *)

type value =
  | Counter_value of int
  | Gauge_value of float
  | Histogram_value of {
      bounds : float array;
      counts : int array;
      sum : float;
      count : int;
    }

type sample = { name : string; help : string; value : value }

let sample_of = function
  | Counter_m c ->
      { name = c.c_name; help = c.c_help; value = Counter_value (Counter.value c) }
  | Gauge_m g ->
      { name = g.g_name; help = g.g_help; value = Gauge_value (Gauge.value g) }
  | Histogram_m h ->
      let counts = Histogram.counts h in
      {
        name = h.h_name;
        help = h.h_help;
        value =
          Histogram_value
            {
              bounds = h.h_bounds;
              counts;
              sum = Histogram.sum h;
              count = Array.fold_left ( + ) 0 counts;
            };
      }

let snapshot ?(registry = default_registry) () =
  let metrics =
    with_lock registry (fun () ->
        Hashtbl.fold (fun _ m acc -> m :: acc) registry.tbl [])
  in
  List.sort
    (fun a b -> String.compare a.name b.name)
    (List.map sample_of metrics)

let find ?(registry = default_registry) name =
  let m = with_lock registry (fun () -> Hashtbl.find_opt registry.tbl name) in
  Option.map sample_of m

(* %g prints integral floats without a trailing ".", matching the
   conventional Prometheus bound rendering ({le="1"}, {le="0.5"}). *)
let pp_bound ppf b = Fmt.pf ppf "%g" b

let render_prometheus ?(registry = default_registry) () =
  let buf = Buffer.create 2048 in
  let pf fmt = Printf.bprintf buf fmt in
  List.iter
    (fun s ->
      if s.help <> "" then pf "# HELP %s %s\n" s.name s.help;
      match s.value with
      | Counter_value v ->
          pf "# TYPE %s counter\n" s.name;
          pf "%s %d\n" s.name v
      | Gauge_value v ->
          pf "# TYPE %s gauge\n" s.name;
          pf "%s %g\n" s.name v
      | Histogram_value { bounds; counts; sum; count } ->
          pf "# TYPE %s histogram\n" s.name;
          let cumulative = ref 0 in
          Array.iteri
            (fun i c ->
              cumulative := !cumulative + c;
              if i < Array.length bounds then
                pf "%s_bucket{le=\"%s\"} %d\n" s.name
                  (Fmt.str "%a" pp_bound bounds.(i))
                  !cumulative
              else pf "%s_bucket{le=\"+Inf\"} %d\n" s.name !cumulative)
            counts;
          pf "%s_sum %g\n" s.name sum;
          pf "%s_count %d\n" s.name count)
    (snapshot ~registry ());
  Buffer.contents buf

(* {1 Trace context} *)

module Context = struct
  type t = { trace_id : string; span_id : string }

  let to_header ctx = ctx.trace_id ^ "/" ^ ctx.span_id

  let of_header s =
    match String.index_opt s '/' with
    | Some i when i > 0 && i < String.length s - 1 ->
        Some
          {
            trace_id = String.sub s 0 i;
            span_id = String.sub s (i + 1) (String.length s - i - 1);
          }
    | _ -> None

  (* Ambient context is per *thread*, not per domain: systhreads within
     one domain share [Domain.DLS], so a DLS-keyed stack would be
     corrupted by the socket transport's handler threads.  A Hashtbl
     keyed by [Thread.id] costs a mutex on span entry/exit only while
     tracing is active. *)
  let stacks : (int, t list ref) Hashtbl.t = Hashtbl.create 64
  let stacks_mutex = Mutex.create ()

  let my_stack () =
    let key = Thread.id (Thread.self ()) in
    Mutex.lock stacks_mutex;
    let s =
      match Hashtbl.find_opt stacks key with
      | Some s -> s
      | None ->
          let s = ref [] in
          Hashtbl.replace stacks key s;
          s
    in
    Mutex.unlock stacks_mutex;
    s

  let current () = match !(my_stack ()) with [] -> None | c :: _ -> Some c
  let push c = (my_stack ()) := c :: !(my_stack ())

  (* Remove [ctx] wherever it sits in the stack, not just the head: the
     simulator interleaves tasks on one thread, so span exits are not
     always LIFO with respect to the pushes. *)
  let pop ctx =
    let s = my_stack () in
    let rec remove = function
      | [] -> []
      | c :: tl -> if c == ctx then tl else c :: remove tl
    in
    s := remove !s
end

(* {1 Tracing} *)

type event = {
  ev_name : string;
  ev_ph : char;  (* 'X' complete, 'i' instant *)
  ev_ts : float;  (* us since Trace.start *)
  ev_dur : float;  (* us; 0 for instants *)
  ev_tid : int;
  ev_args : (string * string) list;
}

module Trace = struct
  let active_flag = Atomic.make false
  let epoch = Atomic.make 0.
  let mutex = Mutex.create ()

  (* Identity of this process in a merged multi-process trace.  Span ids
     are ["<node>-<n>"] with [n] from an atomic counter that [start]
     resets, so a fixed workload on the sim transport replays to
     bit-identical ids, and distinct node names keep ids globally unique
     across the processes a [Trace_merge] run stitches together. *)
  let node = Atomic.make "main"
  let set_node n = Atomic.set node n
  let node_name () = Atomic.get node
  let next_id = Atomic.make 1

  let fresh_id () =
    Printf.sprintf "%s-%d" (Atomic.get node) (Atomic.fetch_and_add next_id 1)

  (* One buffer per domain, domain-local appends; the global list only
     grows (a dead domain's buffer stays readable). *)
  let buffers : event list ref list ref = ref []

  let dls : event list ref Domain.DLS.key =
    Domain.DLS.new_key (fun () ->
        let b = ref [] in
        Mutex.lock mutex;
        buffers := b :: !buffers;
        Mutex.unlock mutex;
        b)

  let active () = Atomic.get active_flag

  (* Timestamps come from the ambient [Timed.Clock]: a run under the
     simulator records virtual microseconds, so exported traces show
     virtual time.  [start] captures the epoch from the same source —
     install the clock before starting the trace. *)
  let now_us () = (Timed.Clock.gettimeofday () -. Atomic.get epoch) *. 1e6

  let record ev =
    let b = Domain.DLS.get dls in
    b := ev :: !b

  let start () =
    Mutex.lock mutex;
    List.iter (fun b -> b := []) !buffers;
    Mutex.unlock mutex;
    Atomic.set next_id 1;
    Atomic.set epoch (Timed.Clock.gettimeofday ());
    Atomic.set active_flag true

  let stop () = Atomic.set active_flag false

  (* Raw-event injection: merge an externally-timestamped log (the
     fabric delivery log, for one) into the trace.  [at] is an absolute
     timestamp on the ambient clock's scale; events before the trace
     epoch are clamped to it, so an injected prefix cannot produce
     negative Chrome timestamps. *)
  let inject ?(args = []) ?(tid = 0) ?(dur_s = 0.) ~name ~at () =
    if Atomic.get active_flag then
      record
        {
          ev_name = name;
          ev_ph = (if dur_s > 0. then 'X' else 'i');
          ev_ts = Float.max 0. ((at -. Atomic.get epoch) *. 1e6);
          ev_dur = dur_s *. 1e6;
          ev_tid = tid;
          ev_args = args;
        }

  let events () =
    Mutex.lock mutex;
    let evs = List.concat_map (fun b -> !b) !buffers in
    Mutex.unlock mutex;
    List.stable_sort (fun a b -> compare a.ev_ts b.ev_ts) evs

  let escape s =
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let to_string () =
    let pid = Unix.getpid () in
    let buf = Buffer.create 4096 in
    let pf fmt = Printf.bprintf buf fmt in
    pf "{\"traceEvents\": [";
    List.iteri
      (fun i ev ->
        if i > 0 then pf ",";
        pf "\n  {\"name\": \"%s\", \"cat\": \"aadl_sched\", \"ph\": \"%c\", "
          (escape ev.ev_name) ev.ev_ph;
        pf "\"ts\": %.3f, " ev.ev_ts;
        if ev.ev_ph = 'X' then pf "\"dur\": %.3f, " ev.ev_dur
        else pf "\"s\": \"t\", ";
        pf "\"pid\": %d, \"tid\": %d" pid ev.ev_tid;
        (match ev.ev_args with
        | [] -> ()
        | args ->
            pf ", \"args\": {";
            List.iteri
              (fun j (k, v) ->
                if j > 0 then pf ", ";
                pf "\"%s\": \"%s\"" (escape k) (escape v))
              args;
            pf "}");
        pf "}")
      (events ());
    (* [node]/[epoch_s] are read back by [Trace_merge] to name each
       process track and align timelines onto one clock; they go after
       the events array so tools (and tests) that only look at the
       leading line keep working. *)
    pf "\n], \"displayTimeUnit\": \"ms\", \"node\": \"%s\", \"epoch_s\": %.6f}\n"
      (escape (Atomic.get node))
      (Atomic.get epoch);
    Buffer.contents buf

  let write path =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc (to_string ()))
end

module Span = struct
  let with_ ?(attrs = []) ?parent ~name f =
    if not (Atomic.get Trace.active_flag) then f ()
    else begin
      let parent =
        match parent with Some _ as p -> p | None -> Context.current ()
      in
      let trace_id, parent_args =
        match parent with
        | Some p -> (p.Context.trace_id, [ ("parent_id", p.Context.span_id) ])
        | None -> ("t" ^ Trace.fresh_id (), [])
      in
      let ctx = { Context.trace_id; span_id = Trace.fresh_id () } in
      Context.push ctx;
      let t0 = Trace.now_us () in
      let tid = (Domain.self () :> int) in
      Fun.protect
        ~finally:(fun () ->
          Context.pop ctx;
          Trace.record
            {
              ev_name = name;
              ev_ph = 'X';
              ev_ts = t0;
              ev_dur = Trace.now_us () -. t0;
              ev_tid = tid;
              ev_args =
                attrs
                @ (("trace_id", trace_id) :: ("span_id", ctx.Context.span_id)
                   :: parent_args);
            })
        f
    end

  let instant ?(attrs = []) name =
    if Atomic.get Trace.active_flag then
      Trace.record
        {
          ev_name = name;
          ev_ph = 'i';
          ev_ts = Trace.now_us ();
          ev_dur = 0.;
          ev_tid = (Domain.self () :> int);
          ev_args = attrs;
        }
end

(* {1 Structured logs} *)

module Log = struct
  let chan : out_channel option ref = ref None
  let mutex = Mutex.create ()
  let set_output oc = chan := oc
  let enabled () = !chan <> None

  let emit ?(fields = []) event =
    match !chan with
    | None -> ()
    | Some oc ->
        let buf = Buffer.create 160 in
        let pf fmt = Printf.bprintf buf fmt in
        pf "{\"ts\": %.6f, \"node\": \"%s\", \"event\": \"%s\""
          (Timed.Clock.gettimeofday ())
          (Trace.escape (Trace.node_name ()))
          (Trace.escape event);
        (match Context.current () with
        | None -> ()
        | Some ctx ->
            pf ", \"trace_id\": \"%s\", \"span_id\": \"%s\""
              (Trace.escape ctx.Context.trace_id)
              (Trace.escape ctx.Context.span_id));
        List.iter
          (fun (k, v) ->
            pf ", \"%s\": \"%s\"" (Trace.escape k) (Trace.escape v))
          fields;
        pf "}\n";
        Mutex.lock mutex;
        output_string oc (Buffer.contents buf);
        flush oc;
        Mutex.unlock mutex
end

(* {1 Runtime gauges} *)

(* Lazy so the gauges only appear in the registry once something asks
   for a GC sample (the health op, the scrape endpoint, --stats). *)
let gc_gauges =
  lazy
    ( Gauge.make ~help:"major heap size (words)" "runtime_gc_heap_words",
      Gauge.make ~help:"peak major heap size (words)" "runtime_gc_top_heap_words",
      Gauge.make ~help:"words allocated over the process lifetime"
        "runtime_gc_allocated_words",
      Gauge.make ~help:"minor collections" "runtime_gc_minor_collections",
      Gauge.make ~help:"major collection cycles" "runtime_gc_major_collections",
      Gauge.make ~help:"heap compactions" "runtime_gc_compactions" )

let sample_gc () =
  let heap, top, alloc, minor, major, compactions = Lazy.force gc_gauges in
  let s = Gc.quick_stat () in
  Gauge.set heap (float_of_int s.Gc.heap_words);
  Gauge.set top (float_of_int s.Gc.top_heap_words);
  Gauge.set alloc (s.Gc.minor_words +. s.Gc.major_words -. s.Gc.promoted_words);
  Gauge.set minor (float_of_int s.Gc.minor_collections);
  Gauge.set major (float_of_int s.Gc.major_collections);
  Gauge.set compactions (float_of_int s.Gc.compactions)

module Trace_merge = Trace_merge
