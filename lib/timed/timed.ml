(* Virtual clock, discrete-event scheduler, and fault-injectable RPC
   fabric.  See timed.mli for the contract.

   The simulator is a binary min-heap of events keyed by
   (virtual time, sequence number): sequence numbers break timestamp
   ties in schedule order, which is what makes runs deterministic.
   Suspension ([Sim.sleep_until], [Sim.await]) is built on OCaml 5
   effects: a task performs [Suspend register]; the deep handler hands
   [register] the one-shot resume thunk, which re-enters the event
   queue.  Deep handlers travel with the captured continuation, so a
   resumed task can suspend again from anywhere in the event loop.

   Thread-safety: the heap and virtual time are mutex-protected because
   pool worker domains read the ambient clock concurrently with the
   simulation (timestamps in metrics and canonicalization timing).
   Event *execution* is single-threaded — whichever domain calls
   [run_until_quiescent] — and tasks, ivars and the fabric must only be
   touched from there. *)

type entry = { at : float; seq : int; run : unit -> unit }

(* Binary min-heap on (at, seq); [seq] is globally unique so the order
   is total. *)
module Heap = struct
  type t = { mutable a : entry array; mutable len : int }

  let dummy = { at = 0.; seq = -1; run = ignore }
  let create () = { a = Array.make 64 dummy; len = 0 }
  let length h = h.len

  let before x y = x.at < y.at || (x.at = y.at && x.seq < y.seq)

  let push h e =
    if h.len = Array.length h.a then begin
      let bigger = Array.make (2 * h.len) dummy in
      Array.blit h.a 0 bigger 0 h.len;
      h.a <- bigger
    end;
    let i = ref h.len in
    h.len <- h.len + 1;
    h.a.(!i) <- e;
    (* sift up *)
    while !i > 0 && before h.a.(!i) h.a.((!i - 1) / 2) do
      let p = (!i - 1) / 2 in
      let tmp = h.a.(p) in
      h.a.(p) <- h.a.(!i);
      h.a.(!i) <- tmp;
      i := p
    done

  let peek h = if h.len = 0 then None else Some h.a.(0)

  let pop h =
    if h.len = 0 then None
    else begin
      let top = h.a.(0) in
      h.len <- h.len - 1;
      h.a.(0) <- h.a.(h.len);
      h.a.(h.len) <- dummy;
      (* sift down *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.len && before h.a.(l) h.a.(!smallest) then smallest := l;
        if r < h.len && before h.a.(r) h.a.(!smallest) then smallest := r;
        if !smallest = !i then continue := false
        else begin
          let tmp = h.a.(!smallest) in
          h.a.(!smallest) <- h.a.(!i);
          h.a.(!i) <- tmp;
          i := !smallest
        end
      done;
      Some top
    end
end

type sim = {
  mutex : Mutex.t;
  mutable vnow : float;
  mutable auto : float;
  heap : Heap.t;
  mutable seq : int;
  mutable ran : int;
}

type clock = Real | Virtual of sim

let with_sim_lock s f =
  Mutex.lock s.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.mutex) f

module Clock = struct
  type t = clock

  let real = Real

  let now = function
    | Real -> Unix.gettimeofday ()
    | Virtual s ->
        with_sim_lock s (fun () ->
            s.vnow <- s.vnow +. s.auto;
            s.vnow)

  let is_virtual = function Real -> false | Virtual _ -> true

  let ambient = Atomic.make Real
  let current () = Atomic.get ambient

  let with_clock c f =
    let prev = Atomic.get ambient in
    Atomic.set ambient c;
    Fun.protect ~finally:(fun () -> Atomic.set ambient prev) f

  let gettimeofday () = now (Atomic.get ambient)
end

(* [Suspend register]: capture the continuation, hand [register] the
   thunk that resumes it.  The register callback runs before the
   handler returns, i.e. still inside the suspending task's event. *)
type _ Effect.t += Suspend : ((unit -> unit) -> unit) -> unit Effect.t

module Sim = struct
  type t = sim

  let create ?(start = 0.) ?(auto_advance = 0.) () =
    {
      mutex = Mutex.create ();
      vnow = start;
      auto = Float.max 0. auto_advance;
      heap = Heap.create ();
      seq = 0;
      ran = 0;
    }

  let clock s = Virtual s
  let now s = with_sim_lock s (fun () -> s.vnow)

  let set_auto_advance s a =
    with_sim_lock s (fun () -> s.auto <- Float.max 0. a)

  (* Internal: enqueue [run] at absolute time [at] (clamped to now),
     without wrapping it in an effect handler — used for resume thunks,
     whose continuation already carries its handler. *)
  let push_at s at run =
    with_sim_lock s (fun () ->
        let at = if at < s.vnow then s.vnow else at in
        let e = { at; seq = s.seq; run } in
        s.seq <- s.seq + 1;
        Heap.push s.heap e)

  let run_task f =
    let open Effect.Deep in
    match_with f ()
      {
        retc = (fun () -> ());
        exnc = raise;
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Suspend register ->
                Some
                  (fun (k : (a, _) continuation) ->
                    register (fun () -> continue k ()))
            | _ -> None);
      }

  let schedule s ?at ?after f =
    let at =
      match (at, after) with
      | Some t, None -> t
      | None, Some d -> now s +. d
      | None, None -> now s
      | Some _, Some _ -> invalid_arg "Timed.Sim.schedule: both ~at and ~after"
    in
    push_at s at (fun () -> run_task f)

  let sleep_until s t =
    Effect.perform (Suspend (fun resume -> push_at s t resume))

  let sleep s d = sleep_until s (now s +. d)

  let pop_due s ~limit =
    with_sim_lock s (fun () ->
        match Heap.peek s.heap with
        | Some e when e.at <= limit ->
            ignore (Heap.pop s.heap);
            if e.at > s.vnow then s.vnow <- e.at;
            s.ran <- s.ran + 1;
            Some e
        | Some _ | None -> None)

  let rec drain s ~limit =
    match pop_due s ~limit with
    | None -> ()
    | Some e ->
        e.run ();
        drain s ~limit

  let run_until_quiescent s = drain s ~limit:infinity

  let advance s d =
    if d < 0. then invalid_arg "Timed.Sim.advance: negative duration";
    let target = now s +. d in
    drain s ~limit:target;
    with_sim_lock s (fun () -> if target > s.vnow then s.vnow <- target)

  let pending s = with_sim_lock s (fun () -> Heap.length s.heap)
  let events_run s = with_sim_lock s (fun () -> s.ran)
  let with_clock s f = Clock.with_clock (Virtual s) f

  type 'a ivar = {
    mutable cell : 'a option;
    mutable waiters : (unit -> unit) list;  (* newest first *)
  }

  let ivar () = { cell = None; waiters = [] }
  let peek iv = iv.cell

  let fill s iv v =
    match iv.cell with
    | Some _ -> ()
    | None ->
        iv.cell <- Some v;
        let ws = List.rev iv.waiters in
        iv.waiters <- [];
        let t = now s in
        List.iter (fun w -> push_at s t w) ws

  let await s ?timeout iv =
    (match iv.cell with
    | Some _ -> ()
    | None ->
        Effect.perform
          (Suspend
             (fun resume ->
               (* the fill path and the timeout timer race to resume;
                  whichever fires second must find a spent thunk *)
               let resumed = ref false in
               let once () =
                 if not !resumed then begin
                   resumed := true;
                   resume ()
                 end
               in
               iv.waiters <- once :: iv.waiters;
               match timeout with
               | None -> ()
               | Some d -> push_at s (now s +. d) once)));
    iv.cell
end

module Fabric = struct
  type faults = {
    delay : float;
    jitter : float;
    drop : float;
    duplicate : float;
    reorder : float;
  }

  let ideal = { delay = 0.; jitter = 0.; drop = 0.; duplicate = 0.; reorder = 0. }

  type kind =
    | Send
    | Deliver
    | Drop
    | Duplicate
    | Reply_late
    | Expired
    | Link_change

  type event = {
    at : float;
    msg : int;
    src : string;
    dst : string;
    kind : kind;
    payload : string;
  }

  type error = Timeout | No_endpoint of string

  type t = {
    sim : sim;
    rng : Random.State.t;
    endpoints : (string, string -> string) Hashtbl.t;
    links : (string * string, faults) Hashtbl.t;
    mutable log_rev : event list;
    mutable next_msg : int;
  }

  let create ?(seed = 0) sim =
    {
      sim;
      rng = Random.State.make [| seed; 0x7f4a7c15 |];
      endpoints = Hashtbl.create 8;
      links = Hashtbl.create 8;
      log_rev = [];
      next_msg = 0;
    }

  let serve t name handler = Hashtbl.replace t.endpoints name handler
  let link t ~src ~dst faults = Hashtbl.replace t.links (src, dst) faults

  (* A link's fault profile stepping at a virtual timestamp.  The change
     is an ordinary simulator event, so it interleaves deterministically
     with traffic; it draws nothing from the fault PRNG, so the random
     stream of the transmissions themselves stays aligned across
     schedules that only differ in their step times. *)
  let schedule t ~at ~src ~dst faults =
    Sim.schedule t.sim ~at (fun () ->
        t.log_rev <-
          {
            at = Sim.now t.sim;
            msg = -1;
            src;
            dst;
            kind = Link_change;
            payload =
              Printf.sprintf "delay=%g jitter=%g drop=%g dup=%g reorder=%g"
                faults.delay faults.jitter faults.drop faults.duplicate
                faults.reorder;
          }
          :: t.log_rev;
        link t ~src ~dst faults)

  let faults_for t src dst =
    Option.value ~default:ideal (Hashtbl.find_opt t.links (src, dst))

  let record t ~msg ~src ~dst kind payload =
    t.log_rev <- { at = Sim.now t.sim; msg; src; dst; kind; payload } :: t.log_rev

  (* One message over one directional link.  Exactly six PRNG draws per
     transmission, whatever the outcome, so the random stream stays
     aligned across fault configurations and the log is a pure function
     of (seed, links, call schedule). *)
  let transmit t ~msg ~src ~dst ~payload deliver =
    let fl = faults_for t src dst in
    let r_drop = Random.State.float t.rng 1. in
    let r_jitter = Random.State.float t.rng 1. in
    let r_reorder = Random.State.float t.rng 1. in
    let r_extra = Random.State.float t.rng 1. in
    let r_dup = Random.State.float t.rng 1. in
    let r_dup_extra = Random.State.float t.rng 1. in
    record t ~msg ~src ~dst Send payload;
    if r_drop < fl.drop then record t ~msg ~src ~dst Drop payload
    else begin
      (* a reordered message is held back by up to four nominal
         latencies (with a floor, so reordering works on instant links)
         — long enough for later sends to overtake it *)
      let spread = 4. *. (fl.delay +. fl.jitter +. 0.001) in
      let base = fl.delay +. (fl.jitter *. r_jitter) in
      let held = if r_reorder < fl.reorder then spread *. r_extra else 0. in
      let deliver_copy d =
        Sim.schedule t.sim ~after:d (fun () ->
            record t ~msg ~src ~dst Deliver payload;
            deliver ())
      in
      deliver_copy (base +. held);
      if r_dup < fl.duplicate then begin
        record t ~msg ~src ~dst Duplicate payload;
        deliver_copy (base +. (spread *. r_dup_extra))
      end
    end

  let call t ?timeout ~src ~dst payload =
    match Hashtbl.find_opt t.endpoints dst with
    | None -> Error (No_endpoint dst)
    | Some handler ->
        let msg = t.next_msg in
        t.next_msg <- t.next_msg + 1;
        let iv = Sim.ivar () in
        transmit t ~msg ~src ~dst ~payload (fun () ->
            let reply = handler payload in
            transmit t ~msg ~src:dst ~dst:src ~payload:reply (fun () ->
                match Sim.peek iv with
                | Some _ -> record t ~msg ~src:dst ~dst:src Reply_late reply
                | None -> Sim.fill t.sim iv reply));
        (match Sim.await t.sim ?timeout iv with
        | Some reply -> Ok reply
        | None ->
            record t ~msg ~src ~dst Expired payload;
            (* mark the call abandoned: a reply arriving from now on
               finds the cell occupied and is logged as [Reply_late] *)
            Sim.fill t.sim iv payload;
            Error Timeout)

  let log t = List.rev t.log_rev

  let kind_name = function
    | Send -> "send"
    | Deliver -> "deliver"
    | Drop -> "drop"
    | Duplicate -> "duplicate"
    | Reply_late -> "reply-late"
    | Expired -> "expired"
    | Link_change -> "link-change"

  let pp_event ppf e =
    Fmt.pf ppf "%.6f #%d %s->%s %s %S" e.at e.msg e.src e.dst
      (kind_name e.kind) e.payload

  let log_lines t = List.map (fun e -> Fmt.str "%a" pp_event e) (log t)
end
