(** Virtual time and deterministic fault injection.

    Every timestamp in the code base is read through {!Clock}, which has
    two implementations: the real wall clock and a discrete-event
    simulator ({!Sim}) whose scheduler runs timers and tasks in virtual
    time.  Installing a simulator clock with {!Clock.with_clock} (or
    {!Sim.with_clock}) puts the whole analysis pipeline — exploration
    deadlines, job budgets, scheduler wait times, trace timestamps — on
    virtual time: second-precision timeout behavior reproduces in
    wall-clock milliseconds, deterministically.

    {!Fabric} is a pure in-process RPC fabric driven by the same event
    queue: named endpoints connected by links with injectable faults
    (fixed and seeded-random delays, drops, duplication, reordering).
    Every fault schedule is a pure function of the seed and the link
    configuration, so any run replays bit-identically — the testing
    substrate for the distributed analysis tier. *)

module Clock : sig
  type t
  (** A time source on the [Unix.gettimeofday] scale (seconds as
      [float]).  Either the real wall clock or a {!Sim} simulator. *)

  val real : t
  (** The process wall clock ([Unix.gettimeofday]). *)

  val now : t -> float
  (** Current time.  On a simulator clock, each observation additionally
      advances virtual time by the simulator's [auto_advance] increment —
      the knob that lets pure computation consume virtual budget (see
      {!Sim.create}). *)

  val is_virtual : t -> bool

  val current : unit -> t
  (** The ambient clock, [real] unless {!with_clock} is active. *)

  val with_clock : t -> (unit -> 'a) -> 'a
  (** [with_clock c f] installs [c] as the ambient clock for the whole
      process while [f] runs (the previous clock is restored on exit,
      normal or exceptional).  The installation is global, not
      domain-local, so worker domains spawned by [f] read the same
      clock; concurrent [with_clock] scopes with different clocks are
      not supported. *)

  val gettimeofday : unit -> float
  (** [now (current ())] — the drop-in replacement for
      [Unix.gettimeofday] used by every timing path outside this
      library. *)
end

(** Discrete-event simulator: an event queue keyed by virtual timestamp
    with deterministic tie-breaking by schedule order.  Tasks run on the
    domain that calls {!run_until_quiescent}; {!sleep_until} and
    {!await} suspend the calling task (via effect handlers) and resume
    it from the event queue, so arbitrary concurrent protocols execute
    single-threaded and reproducibly. *)
module Sim : sig
  type t

  val create : ?start:float -> ?auto_advance:float -> unit -> t
  (** A fresh simulator at virtual time [start] (default [0.]).
      [auto_advance] (default [0.], never negative) is added to virtual
      time on every {!Clock.now} observation through this simulator's
      clock: it models "reading the clock costs time", which is what
      lets a deadline expire in the middle of a pure computation that
      only polls the clock.  {!now} and internal scheduling reads do not
      auto-advance. *)

  val clock : t -> Clock.t
  val now : t -> float
  (** Current virtual time, without the [auto_advance] side effect. *)

  val set_auto_advance : t -> float -> unit

  val schedule : t -> ?at:float -> ?after:float -> (unit -> unit) -> unit
  (** Schedule a task.  [~at] is an absolute virtual time, [~after] is
      relative to now; at most one may be given (default: now).  Times
      in the past are clamped to now.  Tasks scheduled for the same
      instant run in schedule order.  The task runs under the effect
      handler that supports {!sleep_until}/{!await}, so it may suspend
      freely; an exception it raises propagates out of
      {!run_until_quiescent}. *)

  val sleep_until : t -> float -> unit
  (** Suspend the calling task until the given virtual time.  Must be
      called from a task running on this simulator's scheduler. *)

  val sleep : t -> float -> unit

  val run_until_quiescent : t -> unit
  (** Run events in (time, sequence) order, advancing virtual time to
      each event's timestamp, until the queue is empty.  Tasks still
      suspended on an {!await} that nothing will fulfill are abandoned. *)

  val advance : t -> float -> unit
  (** [advance t d] runs all events due in the next [d] virtual seconds
      and leaves virtual time exactly [d] later. *)

  val pending : t -> int
  (** Events currently queued. *)

  val events_run : t -> int
  (** Events executed so far (monotone; a determinism fingerprint). *)

  val with_clock : t -> (unit -> 'a) -> 'a
  (** [Clock.with_clock (clock t)]. *)

  (** Write-once cells for task rendezvous. *)

  type 'a ivar

  val ivar : unit -> 'a ivar
  val peek : 'a ivar -> 'a option

  val fill : t -> 'a ivar -> 'a -> unit
  (** Fill the cell and schedule every waiter at the current virtual
      time (in await order).  Filling a full cell is a no-op. *)

  val await : t -> ?timeout:float -> 'a ivar -> 'a option
  (** Block the calling task until the cell is full, or until [timeout]
      virtual seconds elapse ([None] on timeout).  Must be called from a
      task running on this simulator's scheduler. *)
end

(** Pure in-process RPC between named endpoints, with per-link fault
    injection, driven by the simulator's event queue.

    Faults are rolled from a PRNG seeded at {!create}: a fixed [seed]
    plus a fixed link configuration and call schedule yields a
    bit-identical {!log} on every run.  Requests and replies each
    traverse their directional link ([src -> dst] and [dst -> src]
    respectively), so asymmetric fault schedules are expressible.
    Duplicated requests re-run the endpoint handler — the fabric is
    at-least-once, which is exactly what idempotence and single-flight
    deduplication tests need to exercise. *)
module Fabric : sig
  type t

  type faults = {
    delay : float;  (** fixed one-way latency, seconds *)
    jitter : float;  (** uniform random addition in [0, jitter) *)
    drop : float;  (** probability a message vanishes *)
    duplicate : float;  (** probability a message is delivered twice *)
    reorder : float;
        (** probability a message is held back long enough to be
            overtaken by later traffic on the same link *)
  }

  val ideal : faults
  (** Zero latency, no faults — the default for unconfigured links. *)

  val create : ?seed:int -> Sim.t -> t

  val serve : t -> string -> (string -> string) -> unit
  (** [serve t name handler] registers (or replaces) the endpoint
      [name].  The handler runs once per {e delivered} request copy, at
      the request's virtual delivery time, and may itself perform
      fabric calls (multi-hop RPC). *)

  val link : t -> src:string -> dst:string -> faults -> unit
  (** Configure the directional link [src -> dst]. *)

  val schedule : t -> at:float -> src:string -> dst:string -> faults -> unit
  (** [schedule t ~at ~src ~dst faults] arranges for the [src -> dst]
      link to switch to [faults] at virtual time [at] — a partition that
      heals, a burst of loss that starts mid-run.  The step is an
      ordinary simulator event (deterministic interleaving with
      traffic), draws nothing from the fault PRNG, and is recorded in
      the {!log} as a {!Link_change} event.  Messages already in flight
      keep the profile they were sent under. *)

  type error = Timeout | No_endpoint of string

  val call :
    t -> ?timeout:float -> src:string -> dst:string -> string ->
    (string, error) result
  (** Send a request and wait for the reply, both subject to their
      link's faults.  [Error Timeout] after [timeout] virtual seconds
      (without a timeout a dropped message waits forever).  Must be
      called from a task running on the fabric's simulator. *)

  (** {2 Replay log}

      Every fabric decision is appended to a log in virtual-time order;
      two runs with equal seeds, links and call schedules produce equal
      logs — the property the qcheck replay suite pins down. *)

  type kind =
    | Send  (** message handed to the link (request or reply) *)
    | Deliver  (** message arrived; for requests the handler runs now *)
    | Drop  (** the link ate the message *)
    | Duplicate  (** a second delivery of this message was scheduled *)
    | Reply_late  (** reply arrived after the call already completed *)
    | Expired  (** the caller gave up waiting *)
    | Link_change  (** a {!schedule}d fault-profile step took effect *)

  type event = {
    at : float;
    msg : int;  (** call id; a reply carries its request's id *)
    src : string;
    dst : string;
    kind : kind;
    payload : string;
  }

  val log : t -> event list
  val log_lines : t -> string list
  val kind_name : kind -> string
  val pp_event : Format.formatter -> event -> unit
end
