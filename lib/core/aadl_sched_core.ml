(* Umbrella module: the full public API of the library under one root.

   - [Acsr]      the process algebra kernel (S1)
   - [Versa]     state-space exploration and deadlock detection (S2)
   - [Aadl]      the AADL frontend (S3)
   - [Translate] the AADL-to-ACSR translation, Algorithm 1 (S4a)
   - [Analysis]  schedulability, latency, and classical baselines (S4b/S5)
   - [Service]   batch scheduling, verdict caching, graceful degradation
   - [Timed]     virtual clock, discrete-event simulator, RPC fault fabric
   - [Gen]       reference models and synthetic workload generation *)

module Acsr = Acsr
module Versa = Versa
module Aadl = Aadl
module Translate = Translate
module Analysis = Analysis
module Service = Service
module Timed = Timed
module Gen = Gen
