(* The benchmark harness: regenerates every experiment of DESIGN.md's
   index (the paper's Figures 1-6 as executable artifacts plus the
   quantitative claims of Sections 4-6) and times the core operations
   with Bechamel.

   Each experiment prints the table/series described in EXPERIMENTS.md;
   the timing section at the end reports one Bechamel estimate per
   experiment's hot path. *)

let hr title = Fmt.pr "@.===== %s =====@." title

let analyze_text ?protocol ?quantum ?(max_states = 2_000_000)
    ?(symmetry = true) text =
  let root = Aadl.Instantiate.of_string text in
  let options =
    {
      Analysis.Schedulability.translation_options =
        {
          Translate.Pipeline.default_options with
          force_protocol = protocol;
          quantum;
        };
      max_states;
      all_violations = false;
      jobs = 1;
      engine = Versa.Explorer.On_the_fly;
      deadline = None;
      poll = None;
      symmetry;
    }
  in
  Analysis.Schedulability.analyze ~options root

let verdict_string r =
  match r.Analysis.Schedulability.verdict with
  | Analysis.Schedulability.Schedulable -> "schedulable"
  | Analysis.Schedulability.Not_schedulable _ -> "NOT schedulable"
  | Analysis.Schedulability.Inconclusive _ -> "inconclusive"

let states_of r =
  Versa.Explorer.num_states r.Analysis.Schedulability.exploration

(* {1 F1: the cruise-control system of Fig. 1} *)

let exp_f1 () =
  hr "F1: cruise control (paper Fig. 1, Section 4.1)";
  Fmt.pr "variant       threads disp queues  states  verdict@.";
  List.iter
    (fun (name, text) ->
      let r = analyze_text text in
      let tr = r.Analysis.Schedulability.translation in
      Fmt.pr "%-12s  %7d %4d %6d  %6d  %s@." name
        tr.Translate.Pipeline.num_thread_processes
        tr.Translate.Pipeline.num_dispatchers tr.Translate.Pipeline.num_queues
        (states_of r) (verdict_string r))
    [
      ("nominal", Gen.cruise_control ());
      ("overloaded", Gen.cruise_control ~overload:true ());
    ];
  Fmt.pr
    "(paper: six thread processes, six dispatchers, no queue processes)@."

(* {1 F2/F3: the ACSR figures} *)

let exp_f2_f3 () =
  hr "F2: the Simple process (paper Fig. 2)";
  let l2a = Versa.Lts.build Gen.Paper_figs.fig2a_defs Gen.Paper_figs.fig2a_initial in
  let l2b = Versa.Lts.build Gen.Paper_figs.fig2b_defs Gen.Paper_figs.fig2b_initial in
  Fmt.pr "fig 2a: %a@.fig 2b: %a@." Versa.Lts.pp_summary l2a
    Versa.Lts.pp_summary l2b;
  hr "F3: Simple || SimpleDriver (paper Fig. 3)";
  let l3 = Versa.Lts.build Gen.Paper_figs.fig3_defs Gen.Paper_figs.fig3_system in
  Fmt.pr "composition: %a@." Versa.Lts.pp_summary l3;
  Fmt.pr "deadlocks: %d@." (List.length (Versa.Lts.deadlocks l3));
  Fmt.pr "interrupt path reachable:  %b@."
    (Gen.Paper_figs.label_reachable l3 Gen.Paper_figs.interrupt_handled);
  Fmt.pr "exception path reachable:  %b@."
    (Gen.Paper_figs.label_reachable l3 Gen.Paper_figs.exception_handled)

(* {1 F5: Compute-process state space vs execution time (Fig. 5)} *)

let exp_f5 () =
  hr "F5: Compute(e,t) state growth (paper Fig. 5)";
  (* a nondeterministic execution time in [1, cmax]: each possible
     completion point branches the Compute process, so the reachable state
     space grows with the width of the range *)
  Fmt.pr "cet range (quanta)  states  transitions@.";
  List.iter
    (fun cmax ->
      let text =
        Gen.periodic_system
          [
            {
              Gen.name = "t1";
              period_ms = 8;
              cet_min_ms = 1;
              cet_max_ms = cmax;
              deadline_ms = 8;
            };
          ]
      in
      let r = analyze_text ~quantum:(Aadl.Time.of_ms 1) text in
      let e = r.Analysis.Schedulability.exploration in
      Fmt.pr "            [1,%d]  %6d  %11d@." cmax
        (Versa.Explorer.num_states e)
        (Versa.Explorer.num_transitions e))
    [ 1; 2; 3; 4; 5; 6 ]

(* {1 E1: verdict agreement, exploration vs classical baselines} *)

let exp_e1 () =
  hr "E1: verdict agreement (ACSR exploration vs RTA / demand / simulation)";
  Fmt.pr
    "U      sets  RM:sched  RTA-agree  sim-agree  EDF:sched  demand-agree@.";
  List.iter
    (fun u ->
      let sets = List.init 10 (fun seed -> Gen.random_specs ~seed ~n:3 ~u) in
      let rm_sched = ref 0
      and rta_agree = ref 0
      and sim_agree = ref 0
      and edf_sched = ref 0
      and dem_agree = ref 0 in
      List.iter
        (fun specs ->
          let text = Gen.periodic_system specs in
          let tasks =
            (Translate.Workload.extract ~quantum:(Aadl.Time.of_ms 1)
               (Aadl.Instantiate.of_string text))
              .Translate.Workload.tasks
          in
          let acsr_rm =
            Analysis.Schedulability.is_schedulable
              (analyze_text ~protocol:Aadl.Props.Rate_monotonic text)
          in
          let acsr_edf =
            Analysis.Schedulability.is_schedulable
              (analyze_text ~protocol:Aadl.Props.Edf text)
          in
          if acsr_rm then incr rm_sched;
          if acsr_edf then incr edf_sched;
          let rta =
            Analysis.Rta.analyze ~protocol:Aadl.Props.Rate_monotonic tasks
          in
          if rta.Analysis.Rta.applicable
             && rta.Analysis.Rta.schedulable = acsr_rm
          then incr rta_agree;
          let sim =
            Analysis.Simulator.simulate ~protocol:Aadl.Props.Rate_monotonic
              tasks
          in
          if sim.Analysis.Simulator.schedulable = acsr_rm then incr sim_agree;
          let dem = Analysis.Edf_demand.analyze tasks in
          if dem.Analysis.Edf_demand.applicable
             && dem.Analysis.Edf_demand.schedulable = acsr_edf
          then incr dem_agree)
        sets;
      Fmt.pr "%.2f  %5d  %8d  %9d  %9d  %9d  %12d@." u (List.length sets)
        !rm_sched !rta_agree !sim_agree !edf_sched !dem_agree)
    [ 0.5; 0.7; 0.85; 0.95; 1.05 ]

(* {1 E2: scheduling policy comparison (Section 5)} *)

let exp_e2 () =
  hr "E2: scheduling policies on the reference task sets";
  let protocols =
    [
      ("RM", Aadl.Props.Rate_monotonic);
      ("DM", Aadl.Props.Deadline_monotonic);
      ("EDF", Aadl.Props.Edf);
      ("LLF", Aadl.Props.Llf);
    ]
  in
  Fmt.pr "%-12s" "task set";
  List.iter (fun (n, _) -> Fmt.pr "  %-16s" n) protocols;
  Fmt.pr "@.";
  List.iter
    (fun (name, specs) ->
      Fmt.pr "%-12s" name;
      List.iter
        (fun (_, p) ->
          let r = analyze_text ~protocol:p (Gen.periodic_system specs) in
          Fmt.pr "  %-16s" (verdict_string r))
        protocols;
      Fmt.pr "@.")
    [
      ("light", Gen.light_set);
      ("crossover", Gen.crossover_set);
      ("overloaded", Gen.overloaded_set);
    ];
  Fmt.pr
    "(expected crossover row: RM misses, EDF/LLF schedule — U=0.971 is \
     above the RM bound but below 1)@."

(* {1 E3: quantum size vs precision (Section 4.1)} *)

let exp_e3 () =
  hr "E3: quantum size vs precision and state space (Section 4.1)";
  (* T1(2ms, 10ms), T2(6ms, 10ms): schedulable at fine quanta; a 4 ms
     quantum rounds T2's demand up and the deadline down, producing a
     (sound) false violation *)
  let text =
    Gen.periodic_system
      [
        Gen.simple_spec ~name:"t1" ~period_ms:10 ~cet_ms:2 ();
        Gen.simple_spec ~name:"t2" ~period_ms:10 ~cet_ms:6 ();
      ]
  in
  Fmt.pr "quantum  states  verdict@.";
  List.iter
    (fun q_ms ->
      let r = analyze_text ~quantum:(Aadl.Time.of_ms q_ms) text in
      Fmt.pr "%4d ms  %6d  %s@." q_ms (states_of r) (verdict_string r))
    [ 1; 2; 4; 5 ];
  Fmt.pr
    "(the model is schedulable; coarse quanta may reject it but never \
     falsely accept)@."

(* {1 E4: diagnostic traces (Section 5)} *)

let exp_e4 () =
  hr "E4: failing-scenario diagnostics (Section 5)";
  let r = analyze_text (Gen.cruise_control ~overload:true ()) in
  match r.Analysis.Schedulability.verdict with
  | Analysis.Schedulability.Not_schedulable { scenario; _ } ->
      let happenings =
        List.concat_map
          (fun q -> q.Analysis.Raise_trace.happenings)
          scenario.Analysis.Raise_trace.quanta
      in
      Fmt.pr
        "violation at t=%d; %d quanta in the scenario; %d AADL-level \
         happenings (dispatches/completions)@."
        scenario.Analysis.Raise_trace.violation_time
        (List.length scenario.Analysis.Raise_trace.quanta)
        (List.length happenings)
  | _ -> Fmt.pr "unexpected: overloaded variant not rejected@."

(* {1 E5: latency observers (Section 5)} *)

let exp_e5 () =
  hr "E5: end-to-end latency observer sweep (Section 5)";
  let root = Aadl.Instantiate.of_string (Gen.cruise_control ()) in
  Fmt.pr "bound   verdict   states@.";
  List.iter
    (fun bound_ms ->
      let r =
        Analysis.Latency.check
          ~from_thread:[ "hci"; "ref_speed" ]
          ~to_thread:[ "ccl"; "cruise2" ]
          ~bound:(Aadl.Time.of_ms bound_ms) root
      in
      let verdict =
        match r.Analysis.Latency.verdict with
        | Analysis.Latency.Latency_met -> "met"
        | Analysis.Latency.Latency_violated _ -> "violated"
        | Analysis.Latency.Latency_inconclusive _ -> "inconclusive"
      in
      Fmt.pr "%3d ms  %-8s  %6d@." bound_ms verdict
        (Versa.Explorer.num_states r.Analysis.Latency.exploration))
    [ 100; 60; 40; 30; 20 ]

(* {1 E6: state-space scaling (Section 7 motivation)} *)

let e6_model n =
  Gen.periodic_system
    (List.init n (fun i ->
         Gen.simple_spec
           ~name:(Printf.sprintf "t%d" (i + 1))
           ~period_ms:(4 + (2 * i))
           ~cet_ms:1 ()))

(* Unschedulable variant: the highest-rate thread has a nondeterministic
   execution time in [1,3].  Worst-case branches starve t2 out of its
   first deadline (a shallow deadlock), while best-case branches remain
   schedulable and keep generating states — the shape where on-the-fly
   early exit beats exhaustive exploration. *)
let e6_unsched n =
  Gen.periodic_system
    (List.init n (fun i ->
         if i = 0 then
           {
             Gen.name = "t1";
             period_ms = 4;
             cet_min_ms = 1;
             cet_max_ms = 3;
             deadline_ms = 4;
           }
         else
           Gen.simple_spec
             ~name:(Printf.sprintf "t%d" (i + 1))
             ~period_ms:(4 + (2 * i))
             ~cet_ms:1 ()))

let exp_e6 () =
  hr "E6: state-space growth with the number of threads (Section 7)";
  Fmt.pr "threads  states  transitions  time@.";
  List.iter
    (fun n ->
      let r = analyze_text (e6_model n) in
      let e = r.Analysis.Schedulability.exploration in
      Fmt.pr "%7d  %6d  %11d  %.3fs@." n (Versa.Explorer.num_states e)
        (Versa.Explorer.num_transitions e) e.Versa.Explorer.elapsed)
    [ 1; 2; 3; 4; 5; 6 ]

(* {1 E7: queue sizes and overflow (Section 4.4)} *)

let replace pat repl s =
  let plen = String.length pat in
  let buf = Buffer.create (String.length s) in
  let i = ref 0 in
  while !i <= String.length s - plen do
    if String.sub s !i plen = pat then begin
      Buffer.add_string buf repl;
      i := !i + plen
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.add_string buf (String.sub s !i (String.length s - !i));
  Buffer.contents buf

let exp_e7 () =
  hr "E7: queue sizes and Overflow_Handling_Protocol (Section 4.4)";
  Fmt.pr "queue  policy      verdict          states@.";
  List.iter
    (fun (qs, overflow) ->
      let text =
        replace "Period => 4 ms;" "Period => 16 ms;"
          (Gen.event_driven ~queue_size:qs ~overflow ())
      in
      let r = analyze_text text in
      Fmt.pr "%5d  %-10s  %-15s  %6d@." qs overflow (verdict_string r)
        (states_of r))
    [
      (1, "DropNewest");
      (2, "DropNewest");
      (1, "Error");
      (2, "Error");
      (4, "Error");
    ];
  Fmt.pr
    "(a slow sporadic consumer: dropping absorbs the overload, Error \
     surfaces it as a violation)@."

(* {1 E8: cross-processor shared data (access connections)} *)

let exp_e8 () =
  hr "E8: shared-data contention across processors (beyond classical RTA)";
  Fmt.pr "reader cet  data demand/period  exploration      per-cpu RTA@.";
  List.iter
    (fun cet ->
      let text = Gen.shared_data_system ~t2_cet_ms:cet () in
      let r = analyze_text text in
      let wl =
        r.Analysis.Schedulability.translation.Translate.Pipeline.workload
      in
      let rta_all =
        List.for_all
          (fun (_, tasks) ->
            (Analysis.Rta.analyze ~protocol:Aadl.Props.Rate_monotonic tasks)
              .Analysis.Rta.schedulable)
          wl.Translate.Workload.by_processor
      in
      Fmt.pr "%10d  %17s  %-15s  %s@." cet
        (Printf.sprintf "%d/4" (2 + cet))
        (verdict_string r)
        (if rta_all then "schedulable" else "NOT schedulable"))
    [ 1; 2; 3 ];
  Fmt.pr
    "(the serialized data component overloads at demand 5/4; only the exploration sees it — the paper's argument for handling complex interaction patterns)@."

(* {1 E9: multi-modal systems (extension)} *)

let exp_e9 () =
  hr "E9: mode switching (extension; the paper's translation omits modes)";
  Fmt.pr "degraded worker cet  verdict          states@.";
  List.iter
    (fun cet ->
      let r = analyze_text (Gen.modal_system ~degraded_cet_ms:cet ()) in
      Fmt.pr "%19d  %-15s  %6d@." cet (verdict_string r) (states_of r))
    [ 4; 6; 8; 9 ];
  Fmt.pr
    "(combined utilization of all threads is > 1; feasibility up to cet 8 shows mode exclusion is honored; cet 9 overloads the degraded mode and the scenario walks through the mode switch)@."

(* {1 E10: hierarchical scheduling (extension, Section 7)} *)

let exp_e10 () =
  hr "E10: hierarchical scheduling by priority bands (Section 7)";
  Fmt.pr "ranking                          verdict          states@.";
  List.iter
    (fun (name, crit, be) ->
      let r =
        analyze_text
          (Gen.hierarchical_system ~critical_rank:crit ~besteffort_rank:be ())
      in
      Fmt.pr "%-31s  %-15s  %6d@." name (verdict_string r) (states_of r))
    [
      ("critical group on top", 10, 1);
      ("best-effort group on top", 1, 10);
    ];
  Fmt.pr
    "(two-level: fixed priority across process groups, RM / EDF locally; \
     ranking the best-effort group above starves the 2 ms-deadline \
     critical thread)@."

(* {1 Bechamel timing} *)

let bechamel_section () =
  hr "timing (Bechamel, one estimate per experiment hot path)";
  let open Bechamel in
  let cruise = Gen.cruise_control () in
  let cruise_root = Aadl.Instantiate.of_string cruise in
  let cruise_tr = Translate.Pipeline.translate cruise_root in
  let crossover = Gen.periodic_system Gen.crossover_set in
  let crossover_tasks =
    (Translate.Workload.extract ~quantum:(Aadl.Time.of_ms 1)
       (Aadl.Instantiate.of_string crossover))
      .Translate.Workload.tasks
  in
  let e6_4 = e6_model 4 in
  let tests =
    [
      Test.make ~name:"fig1_cruise_control_analysis"
        (Staged.stage (fun () -> ignore (analyze_text cruise)));
      Test.make ~name:"fig1_parse_and_instantiate"
        (Staged.stage (fun () -> ignore (Aadl.Instantiate.of_string cruise)));
      Test.make ~name:"fig1_translate_only"
        (Staged.stage (fun () ->
             ignore (Translate.Pipeline.translate cruise_root)));
      Test.make ~name:"fig1_explore_only"
        (Staged.stage (fun () ->
             ignore
               (Versa.Explorer.check_deadlock cruise_tr.Translate.Pipeline.defs
                  cruise_tr.Translate.Pipeline.system)));
      Test.make ~name:"fig2_simple_process"
        (Staged.stage (fun () ->
             ignore
               (Versa.Lts.build Gen.Paper_figs.fig2a_defs
                  Gen.Paper_figs.fig2a_initial)));
      Test.make ~name:"fig3_composition"
        (Staged.stage (fun () ->
             ignore
               (Versa.Lts.build Gen.Paper_figs.fig3_defs
                  Gen.Paper_figs.fig3_system)));
      Test.make ~name:"fig5_compute_cet4"
        (Staged.stage (fun () ->
             ignore
               (analyze_text ~quantum:(Aadl.Time.of_ms 1)
                  (Gen.periodic_system
                     [ Gen.simple_spec ~name:"t1" ~period_ms:8 ~cet_ms:4 () ]))));
      Test.make ~name:"e1_rta_baseline"
        (Staged.stage (fun () ->
             ignore
               (Analysis.Rta.analyze ~protocol:Aadl.Props.Rate_monotonic
                  crossover_tasks)));
      Test.make ~name:"e1_simulator_baseline"
        (Staged.stage (fun () ->
             ignore
               (Analysis.Simulator.simulate ~protocol:Aadl.Props.Rate_monotonic
                  crossover_tasks)));
      Test.make ~name:"e2_crossover_edf"
        (Staged.stage (fun () ->
             ignore (analyze_text ~protocol:Aadl.Props.Edf crossover)));
      Test.make ~name:"e6_four_threads"
        (Staged.stage (fun () -> ignore (analyze_text e6_4)));
      Test.make ~name:"e7_queue_overflow"
        (Staged.stage (fun () -> ignore (analyze_text (Gen.event_driven ()))));
      Test.make ~name:"e8_shared_data"
        (Staged.stage (fun () ->
             ignore (analyze_text (Gen.shared_data_system ()))));
      Test.make ~name:"e9_modal_system"
        (Staged.stage (fun () -> ignore (analyze_text (Gen.modal_system ()))));
      Test.make ~name:"e10_hierarchical"
        (Staged.stage (fun () ->
             ignore (analyze_text (Gen.hierarchical_system ()))));
      Test.make ~name:"e11_sensitivity_breakdown"
        (Staged.stage (fun () ->
             let root =
               Aadl.Instantiate.of_string (Gen.periodic_system Gen.light_set)
             in
             ignore
               (Analysis.Sensitivity.breakdown ~thread:[ "t2_i" ] root)));
      Test.make ~name:"e12_avionics_8_threads"
        (Staged.stage (fun () -> ignore (analyze_text (Gen.avionics ()))));
    ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  Fmt.pr "%-32s %14s %8s@." "benchmark" "time/run" "r^2";
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let raw = Benchmark.run cfg Toolkit.Instance.[ monotonic_clock ] elt in
          let est = Analyze.one ols Toolkit.Instance.monotonic_clock raw in
          let time_ns =
            match Analyze.OLS.estimates est with
            | Some [ t ] -> t
            | Some _ | None -> nan
          in
          let r2 =
            match Analyze.OLS.r_square est with Some r -> r | None -> nan
          in
          let pp_time ppf ns =
            if ns >= 1e9 then Fmt.pf ppf "%10.3f s " (ns /. 1e9)
            else if ns >= 1e6 then Fmt.pf ppf "%10.3f ms" (ns /. 1e6)
            else Fmt.pf ppf "%10.3f us" (ns /. 1e3)
          in
          Fmt.pr "%-32s %a %8.4f@." (Test.Elt.name elt) pp_time time_ns r2)
        (Test.elements test))
    tests

(* {1 Exploration engines: baseline structural hashing vs hash-consing}

   Runs the seed explorer ([Baseline.explore]) and the current engine at
   jobs=1 and jobs=4 on the larger examples, exhaustively, and records
   the telemetry in BENCH_explore.json.  The engines must agree exactly
   on states, transitions and deadlocks — the speedup is only meaningful
   if the answer is identical. *)

type engine_sample = {
  engine : string;
  states : int;
  transitions : int;
  deadlocks : int;
  wall_s : float;
  states_per_sec : float;
}

let time_run f =
  (* settle GC debt from previous runs so single-shot timings don't
     charge one engine with another's garbage *)
  Gc.full_major ();
  let t0 = Timed.Clock.gettimeofday () in
  let r = f () in
  (r, Timed.Clock.gettimeofday () -. t0)

let translate_text text =
  let root = Aadl.Instantiate.of_string text in
  let tr = Translate.Pipeline.translate root in
  (tr.Translate.Pipeline.defs, tr.Translate.Pipeline.system)

let explore_model (name, text) =
  let defs, system = translate_text text in
  let config =
    {
      Versa.Lts.default_config with
      max_states = Some 2_000_000;
      stop_at_deadlock = false;
    }
  in
  (* Warm the global hash-cons table before timing: the first engine to
     intern a model's terms would otherwise be charged the one-time
     shard-resize cost of growing the shared table — a process-global
     side effect, not an engine property. *)
  ignore (Versa.Lts.check ~config defs system);
  let base_r, base_wall = time_run (fun () -> Baseline.explore defs system) in
  let base =
    {
      engine = "baseline_structural";
      states = base_r.Baseline.states;
      transitions = base_r.Baseline.transitions;
      deadlocks = base_r.Baseline.deadlocks;
      wall_s = base_wall;
      states_per_sec = float_of_int base_r.Baseline.states /. max base_wall 1e-9;
    }
  in
  let run_jobs jobs =
    Gc.full_major ();
    let lts = Versa.Lts.build ~config ~jobs defs system in
    let st = Versa.Lts.stats lts in
    {
      engine = Printf.sprintf "hashcons_jobs%d" jobs;
      states = Versa.Lts.num_states lts;
      transitions = Versa.Lts.num_transitions lts;
      deadlocks = List.length (Versa.Lts.deadlocks lts);
      wall_s = st.Versa.Lts.wall_s;
      states_per_sec = Versa.Lts.states_per_sec st;
    }
  in
  (* the on-the-fly checker, run exhaustively so its counts must coincide
     with the graph builders' *)
  let run_otf jobs =
    Gc.full_major ();
    let c = Versa.Lts.check ~config ~jobs defs system in
    let st = Versa.Lts.check_stats c in
    {
      engine = Printf.sprintf "on_the_fly_jobs%d" jobs;
      states = Versa.Lts.check_num_states c;
      transitions = Versa.Lts.check_num_transitions c;
      deadlocks = List.length (Versa.Lts.check_deadlocks c);
      wall_s = st.Versa.Lts.wall_s;
      states_per_sec = Versa.Lts.states_per_sec st;
    }
  in
  let samples = [ base; run_jobs 1; run_jobs 4; run_otf 1 ] in
  let agree f = List.for_all (fun s -> f s = f base) samples in
  (name, samples, agree (fun s -> s.states) && agree (fun s -> s.transitions),
   agree (fun s -> s.deadlocks > 0))

(* Early exit: the unschedulable variant of the largest model.  The full
   graph is built exhaustively; the on-the-fly checker stops at the first
   deadlock and must visit a strict fraction of the space while raising
   the identical shortest failing scenario. *)
type early_exit_sample = {
  ee_full_states : int;
  ee_full_wall : float;
  ee_otf_states : int;
  ee_otf_wall : float;
  ee_fraction : float;
  ee_traces_agree : bool;
}

let early_exit_model text =
  let defs, system = translate_text text in
  let full_cfg =
    {
      Versa.Lts.default_config with
      max_states = Some 2_000_000;
      stop_at_deadlock = false;
    }
  in
  let full, ee_full_wall =
    time_run (fun () -> Versa.Lts.build ~config:full_cfg defs system)
  in
  let otf, ee_otf_wall =
    time_run (fun () ->
        Versa.Lts.check
          ~config:{ full_cfg with stop_at_deadlock = true }
          defs system)
  in
  let ee_full_states = Versa.Lts.num_states full in
  let ee_otf_states = Versa.Lts.check_num_states otf in
  let steps_full =
    match Versa.Lts.deadlocks full with
    | [] -> None
    | d :: _ -> Some (Versa.Trace.steps (Versa.Trace.to_deadlock full d))
  in
  let steps_otf =
    match Versa.Lts.check_deadlocks otf with
    | [] -> None
    | d :: _ ->
        Some
          (Versa.Trace.steps
             (Versa.Trace.of_path (Versa.Lts.check_path_to otf d)))
  in
  {
    ee_full_states;
    ee_full_wall;
    ee_otf_states;
    ee_otf_wall;
    ee_fraction = float_of_int ee_otf_states /. float_of_int ee_full_states;
    ee_traces_agree = steps_full <> None && steps_full = steps_otf;
  }

(* {1 Scaling: work-stealing speedup, jobs x model}

   The on-the-fly checker run exhaustively at jobs 1, 2 and 4 over
   models of increasing size.  Every run must report identical states,
   transitions and deadlock ids — the speedup table is only meaningful
   under bit-identical results, which the work-stealing engine
   guarantees by construction (prefetch + sequential replay).

   The jobs4/jobs1 ratio on the largest model is a CI gate, but only on
   hosts that can physically exhibit scaling: OCaml domains are
   preemptively timesliced on a starved host, so on fewer than 4 cores
   the ratio measures scheduler contention and GC rendezvous overhead,
   not the work-stealing design.  The core count is recorded in the
   telemetry either way, so a table produced on a 1-core container is
   distinguishable from one produced on real hardware. *)

type scaling_sample = { sj_jobs : int; sj_wall : float; sj_per_sec : float }

type scaling_row = {
  sc_model : string;
  sc_states : int;
  sc_transitions : int;
  sc_deadlocks : int;
  sc_samples : scaling_sample list;
  sc_identical : bool;  (** states, transitions and deadlock ids agree *)
}

type scaling_report = {
  sr_cores : int;
  sr_rows : scaling_row list;
  sr_largest : string;
  sr_speedup4 : float;  (** jobs4/jobs1 states/sec on the largest model *)
  sr_gate : [ `Passed | `Failed_speedup | `Failed_identity | `Skipped ];
}

let scaling_jobs = [ 1; 2; 4 ]
let scaling_gate_threshold = 2.0

let scaling_row (name, text) =
  let defs, system = translate_text text in
  let config =
    {
      Versa.Lts.default_config with
      max_states = Some 2_000_000;
      stop_at_deadlock = false;
    }
  in
  (* warm the global hash-cons table once so the jobs=1 run (always
     first) is not charged the one-time intern-table growth *)
  ignore (Versa.Lts.check ~config defs system);
  let runs =
    List.map
      (fun jobs ->
        Gc.full_major ();
        let c = Versa.Lts.check ~config ~jobs defs system in
        (jobs, c, (Versa.Lts.check_stats c).Versa.Lts.wall_s))
      scaling_jobs
  in
  let _, c1, _ = List.hd runs in
  let fingerprint c =
    ( Versa.Lts.check_num_states c,
      Versa.Lts.check_num_transitions c,
      Versa.Lts.check_deadlocks c )
  in
  {
    sc_model = name;
    sc_states = Versa.Lts.check_num_states c1;
    sc_transitions = Versa.Lts.check_num_transitions c1;
    sc_deadlocks = List.length (Versa.Lts.check_deadlocks c1);
    sc_samples =
      List.map
        (fun (jobs, c, wall) ->
          {
            sj_jobs = jobs;
            sj_wall = wall;
            sj_per_sec =
              float_of_int (Versa.Lts.check_num_states c) /. max wall 1e-9;
          })
        runs;
    sc_identical =
      List.for_all (fun (_, c, _) -> fingerprint c = fingerprint c1) runs;
  }

let scaling_speedup row jobs =
  let per j = (List.find (fun s -> s.sj_jobs = j) row.sc_samples).sj_per_sec in
  per jobs /. per 1

let measure_scaling () =
  let rows =
    List.map scaling_row
      [
        ("e6_six_threads", e6_model 6);
        ("e6_seven_threads", e6_model 7);
        ("e6_seven_unsched", e6_unsched 7);
      ]
  in
  let largest =
    List.fold_left (fun a r -> if r.sc_states > a.sc_states then r else a)
      (List.hd rows) rows
  in
  let cores = Domain.recommended_domain_count () in
  let sr_speedup4 = scaling_speedup largest 4 in
  let sr_gate =
    if not (List.for_all (fun r -> r.sc_identical) rows) then `Failed_identity
    else if cores < 4 then `Skipped
    else if sr_speedup4 >= scaling_gate_threshold then `Passed
    else `Failed_speedup
  in
  {
    sr_cores = cores;
    sr_rows = rows;
    sr_largest = largest.sc_model;
    sr_speedup4;
    sr_gate;
  }

let scaling_gate_label = function
  | `Passed -> "passed"
  | `Failed_speedup -> "failed_speedup"
  | `Failed_identity -> "failed_identity"
  | `Skipped -> "skipped_insufficient_cores"

let print_scaling r =
  hr "SCALING: work-stealing speedup, jobs x model";
  Fmt.pr "cores available: %d@." r.sr_cores;
  Fmt.pr "%-18s %8s %6s %9s %12s %9s@." "model" "states" "jobs" "wall (s)"
    "states/sec" "speedup";
  List.iter
    (fun row ->
      List.iter
        (fun s ->
          Fmt.pr "%-18s %8d %6d %9.3f %12.0f %8.2fx@." row.sc_model
            row.sc_states s.sj_jobs s.sj_wall s.sj_per_sec
            (scaling_speedup row s.sj_jobs))
        row.sc_samples;
      Fmt.pr "%-18s results identical across jobs: %b@." row.sc_model
        row.sc_identical)
    r.sr_rows

(* Emits the scaling object ({ "cores": ..., "models": [...] }); [indent]
   is the prefix of the lines inside the object, the closing brace sits
   at [indent] minus one level (matching the manual-JSON style above). *)
let bprint_scaling buf ~indent r =
  let pf fmt = Printf.bprintf buf fmt in
  pf "{\n";
  pf "%s  \"cores\": %d,\n" indent r.sr_cores;
  pf "%s  \"jobs\": [%s],\n" indent
    (String.concat ", " (List.map string_of_int scaling_jobs));
  pf "%s  \"gate\": %S,\n" indent (scaling_gate_label r.sr_gate);
  pf "%s  \"gate_threshold_jobs4_vs_jobs1\": %.1f,\n" indent
    scaling_gate_threshold;
  pf "%s  \"largest_model\": %S,\n" indent r.sr_largest;
  pf "%s  \"largest_speedup_jobs4_vs_jobs1\": %.3f,\n" indent r.sr_speedup4;
  pf "%s  \"models\": [\n" indent;
  List.iteri
    (fun i row ->
      pf "%s    {\n" indent;
      pf "%s      \"model\": %S,\n" indent row.sc_model;
      pf "%s      \"states\": %d, \"transitions\": %d, \"deadlocks\": %d,\n"
        indent row.sc_states row.sc_transitions row.sc_deadlocks;
      pf "%s      \"identical_across_jobs\": %b,\n" indent row.sc_identical;
      pf "%s      \"samples\": [\n" indent;
      List.iteri
        (fun j s ->
          pf
            "%s        { \"jobs\": %d, \"wall_s\": %.6f, \"states_per_sec\": \
             %.1f, \"speedup_vs_jobs1\": %.3f }%s\n"
            indent s.sj_jobs s.sj_wall s.sj_per_sec
            (scaling_speedup row s.sj_jobs)
            (if j < List.length row.sc_samples - 1 then "," else ""))
        row.sc_samples;
      pf "%s      ]\n" indent;
      pf "%s    }%s\n" indent
        (if i < List.length r.sr_rows - 1 then "," else ""))
    r.sr_rows;
  pf "%s  ]\n" indent;
  pf "%s}" indent

(* Prints the verdict and exits non-zero on a failed gate; call last so
   the telemetry file is written even when the gate trips. *)
let enforce_scaling_gate r =
  match r.sr_gate with
  | `Passed ->
      Fmt.pr "scaling gate: jobs4/jobs1 %.2fx >= %.1fx on %s — OK@."
        r.sr_speedup4 scaling_gate_threshold r.sr_largest
  | `Skipped ->
      Fmt.pr
        "scaling gate: skipped — %d core(s) available; on fewer than 4 \
         cores the ratio measures timeslicing, not scaling@."
        r.sr_cores
  | `Failed_speedup ->
      Fmt.pr
        "scaling gate: FAILED — jobs4/jobs1 %.2fx < %.1fx on %s with %d \
         cores@."
        r.sr_speedup4 scaling_gate_threshold r.sr_largest r.sr_cores;
      exit 1
  | `Failed_identity ->
      Fmt.pr
        "scaling gate: FAILED — results differ across jobs (determinism \
         contract violated)@.";
      exit 1

let scaling_section ~json_path () =
  let r = measure_scaling () in
  print_scaling r;
  let buf = Buffer.create 2048 in
  let pf fmt = Printf.bprintf buf fmt in
  pf "{\n  \"benchmark\": \"work-stealing scaling\",\n";
  pf "  \"note\": \"exhaustive on-the-fly checks at jobs 1/2/4; results \
      asserted identical across jobs; the gate is enforced only on hosts \
      with >= 4 cores\",\n";
  pf "  \"scaling\": ";
  bprint_scaling buf ~indent:"  " r;
  pf "\n}\n";
  let oc = open_out json_path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (Buffer.contents buf));
  Fmt.pr "telemetry written to %s@." json_path;
  enforce_scaling_gate r

let explore_section ~json_path () =
  hr "EXPLORE: baseline (structural hashing) vs hash-consed engine";
  let results =
    List.map explore_model
      [
        ("e6_seven_threads", e6_model 7);
        ("e6_six_threads", e6_model 6);
        ("avionics", Gen.avionics ());
      ]
  in
  (* scaling before the early-exit full build: the 96k-state graph it
     retains would otherwise depress the scaling rows' absolute
     throughput relative to the engine table above *)
  let scaling = measure_scaling () in
  let ee_name = "e6_seven_threads_unsched" in
  let ee = early_exit_model (e6_unsched 7) in
  Fmt.pr "%-16s %-20s %8s %11s %9s %12s@." "model" "engine" "states"
    "transitions" "wall (s)" "states/sec";
  List.iter
    (fun (name, samples, _, _) ->
      List.iter
        (fun s ->
          Fmt.pr "%-16s %-20s %8d %11d %9.3f %12.0f@." name s.engine s.states
            s.transitions s.wall_s s.states_per_sec)
        samples)
    results;
  List.iter
    (fun (name, samples, counts_ok, verdicts_ok) ->
      let per e = (List.nth samples e).states_per_sec in
      Fmt.pr
        "%s: speedup jobs1=%.2fx jobs4=%.2fx vs baseline; counts agree: %b; \
         verdicts agree: %b@."
        name
        (per 1 /. per 0)
        (per 2 /. per 0)
        counts_ok verdicts_ok)
    results;
  Fmt.pr
    "%s: full %d states (%.3fs) vs on-the-fly early exit %d states \
     (%.3fs) — %.1f%% of the space visited; scenarios agree: %b@."
    ee_name ee.ee_full_states ee.ee_full_wall ee.ee_otf_states ee.ee_otf_wall
    (100. *. ee.ee_fraction) ee.ee_traces_agree;
  print_scaling scaling;
  (* manual JSON — no JSON library in the dependency set *)
  let buf = Buffer.create 2048 in
  let pf fmt = Printf.bprintf buf fmt in
  pf "{\n  \"benchmark\": \"exploration engines\",\n";
  pf "  \"note\": \"exhaustive prioritized exploration; baseline is the \
      pre-hash-consing structural-Hashtbl explorer\",\n";
  pf "  \"models\": [\n";
  List.iteri
    (fun i (name, samples, counts_ok, verdicts_ok) ->
      let per e = (List.nth samples e).states_per_sec in
      pf "    {\n      \"model\": %S,\n      \"engines\": [\n" name;
      List.iteri
        (fun j s ->
          pf
            "        { \"engine\": %S, \"states\": %d, \"transitions\": %d, \
             \"deadlocks\": %d, \"wall_s\": %.6f, \"states_per_sec\": %.1f \
             }%s\n"
            s.engine s.states s.transitions s.deadlocks s.wall_s
            s.states_per_sec
            (if j < List.length samples - 1 then "," else ""))
        samples;
      pf "      ],\n";
      pf "      \"speedup_jobs1_vs_baseline\": %.3f,\n" (per 1 /. per 0);
      pf "      \"speedup_jobs4_vs_baseline\": %.3f,\n" (per 2 /. per 0);
      pf "      \"state_counts_agree\": %b,\n" counts_ok;
      pf "      \"verdicts_agree\": %b\n" verdicts_ok;
      pf "    }%s\n" (if i < List.length results - 1 then "," else ""))
    results;
  pf "  ],\n";
  pf "  \"early_exit\": {\n";
  pf "    \"model\": %S,\n" ee_name;
  pf "    \"full_states\": %d, \"full_wall_s\": %.6f,\n" ee.ee_full_states
    ee.ee_full_wall;
  pf "    \"on_the_fly_states\": %d, \"on_the_fly_wall_s\": %.6f,\n"
    ee.ee_otf_states ee.ee_otf_wall;
  pf "    \"visited_fraction\": %.4f,\n" ee.ee_fraction;
  pf "    \"scenarios_agree\": %b\n" ee.ee_traces_agree;
  pf "  },\n";
  pf "  \"scaling\": ";
  bprint_scaling buf ~indent:"  " scaling;
  pf "\n}\n";
  let oc = open_out json_path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (Buffer.contents buf));
  Fmt.pr "telemetry written to %s@." json_path;
  enforce_scaling_gate scaling

(* {1 Service: batch throughput with the verdict cache on vs off}

   A duplicate-heavy manifest (every distinct model submitted several
   times — the shape of parameter sweeps and CI re-runs) pushed through
   the service scheduler.  Records models/sec for cache off/on at 1 and
   4 workers in BENCH_service.json, asserting that every configuration
   produces identical verdicts. *)

let service_manifest () =
  let distinct =
    [
      ("cruise", Gen.cruise_control ());
      ("cruise_over", Gen.cruise_control ~overload:true ());
      ("crossover", Gen.periodic_system Gen.crossover_set);
      ("light", Gen.periodic_system Gen.light_set);
      ("e6_four", e6_model 4);
      ("e6_five", e6_model 5);
    ]
  in
  let repeats = 6 in
  ( List.length distinct,
    List.concat
      (List.init repeats (fun round ->
           List.map
             (fun (name, text) ->
               Service.Job.request
                 ~id:(Printf.sprintf "%s_%d" name round)
                 (Service.Job.Inline text))
             distinct)) )

let service_run ~cache ~workers requests =
  Gc.full_major ();
  let config =
    if cache then Service.Runner.with_cache Service.Runner.default_config
    else Service.Runner.default_config
  in
  let scheduler = Service.Scheduler.create ~workers config in
  List.iter (fun r -> ignore (Service.Scheduler.submit scheduler r)) requests;
  let t0 = Timed.Clock.gettimeofday () in
  let outcomes = Service.Scheduler.run_all scheduler in
  let wall = Timed.Clock.gettimeofday () -. t0 in
  let counters = Option.map Service.Lru.counters config.Service.Runner.cache in
  (outcomes, wall, counters)

let service_section ~json_path () =
  hr "SERVICE: batch throughput, verdict cache off vs on";
  let num_distinct, requests = service_manifest () in
  let n = List.length requests in
  let configs =
    [
      ("cache_off_workers1", false, 1);
      ("cache_on_workers1", true, 1);
      ("cache_off_workers4", false, 4);
      ("cache_on_workers4", true, 4);
    ]
  in
  let runs =
    List.map
      (fun (name, cache, workers) ->
        let outcomes, wall, counters = service_run ~cache ~workers requests in
        (name, cache, workers, outcomes, wall, counters))
      configs
  in
  let verdicts (outcomes : Service.Job.outcome list) =
    List.map
      (fun (o : Service.Job.outcome) ->
        (o.Service.Job.id, Service.Job.verdict_tag o.Service.Job.verdict))
      outcomes
  in
  let reference =
    match runs with
    | (_, _, _, outcomes, _, _) :: _ -> verdicts outcomes
    | [] -> []
  in
  let verdicts_agree =
    List.for_all
      (fun (_, _, _, outcomes, _, _) -> verdicts outcomes = reference)
      runs
  in
  Fmt.pr "manifest: %d jobs over %d distinct models@." n num_distinct;
  Fmt.pr "cores available: %d@." (Domain.recommended_domain_count ());
  Fmt.pr "%-22s %8s %12s %s@." "config" "wall (s)" "models/sec" "cache";
  List.iter
    (fun (name, _, _, _, wall, counters) ->
      Fmt.pr "%-22s %8.3f %12.1f %a@." name wall
        (float_of_int n /. max wall 1e-9)
        (Fmt.option Service.Lru.pp_counters)
        counters)
    runs;
  Fmt.pr "verdicts agree across configurations: %b@." verdicts_agree;
  let counters_json = function
    | None -> Service.Json.Null
    | Some (c : Service.Lru.counters) ->
        Service.Json.Obj
          [
            ("hits", Service.Json.Int c.Service.Lru.hits);
            ("misses", Service.Json.Int c.Service.Lru.misses);
            ("evictions", Service.Json.Int c.Service.Lru.evictions);
            ("size", Service.Json.Int c.Service.Lru.size);
          ]
  in
  let json =
    Service.Json.Obj
      [
        ("benchmark", Service.Json.String "analysis service batch throughput");
        ( "note",
          Service.Json.String
            "duplicate-heavy manifest: every distinct model submitted 6 \
             times; cache hits skip exploration entirely" );
        ("jobs", Service.Json.Int n);
        ("distinct_models", Service.Json.Int num_distinct);
        (* host attribution, as in the scaling gate: worker-count
           comparisons are only meaningful relative to the cores the
           host actually had (on a 1-core container, 4 workers measure
           timeslicing, not parallelism) *)
        ("cores", Service.Json.Int (Domain.recommended_domain_count ()));
        ( "runs",
          Service.Json.List
            (List.map
               (fun (name, cache, workers, _, wall, counters) ->
                 Service.Json.Obj
                   [
                     ("config", Service.Json.String name);
                     ("cache", Service.Json.Bool cache);
                     ("workers", Service.Json.Int workers);
                     ("wall_s", Service.Json.Float wall);
                     ( "models_per_sec",
                       Service.Json.Float (float_of_int n /. max wall 1e-9) );
                     ("cache_counters", counters_json counters);
                   ])
               runs) );
        ("verdicts_agree", Service.Json.Bool verdicts_agree);
      ]
  in
  let oc = open_out json_path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Service.Json.to_string json);
      output_char oc '\n');
  Fmt.pr "telemetry written to %s@." json_path

(* {1 Dist: shard-count throughput over loopback sockets (the
   [make bench-dist] target)}

   The same duplicate-heavy manifest pushed through a socket router
   fronting 1, 2 and 4 owner shards, each shard in its own domain with
   its own verdict cache and journal — the smallest honest model of a
   multi-process deployment that still fits in one bench binary.  A
   small pool of client threads (each with its own connection pool, so
   calls overlap) drives the router; rows are merged into the "dist"
   section of BENCH_service.json, and verdicts must match a direct
   in-process run.  The shards4/shards1 >= 1.2 speedup gate is
   enforced only on hosts with >= 4 cores; elsewhere the rows are
   still recorded and the gate marked skipped. *)

let dist_clients = 4

(* shard domains bind their listeners asynchronously: poll an endpoint
   with the cheap stats op until it answers (or give up loudly) *)
let dist_await_endpoint socket addr =
  let deadline = Timed.Clock.gettimeofday () +. 10.0 in
  let rec loop () =
    match
      Service.Transport_socket.call socket ~timeout:1.0 ~src:"bench-probe"
        ~dst:addr {|{"op":"stats"}|}
    with
    | Ok _ -> ()
    | Error _ when Timed.Clock.gettimeofday () < deadline ->
        Thread.delay 0.05;
        loop ()
    | Error e ->
        failwith
          (Fmt.str "bench dist: %s never came up: %s" addr
             (Service.Transport.error_message e))
  in
  loop ()

let dist_run ~shards:count requests =
  let tmp = Filename.get_temp_dir_name () in
  let pid = Unix.getpid () in
  let shard_addr i = Fmt.str "unix:%s/aadl_bench_%d_%d_s%d.sock" tmp pid count i in
  let journal_path i = Fmt.str "%s/aadl_bench_%d_%d_s%d.journal" tmp pid count i in
  let shard_addrs = List.init count shard_addr in
  (* one domain per shard: exploration on shard A must not share a
     runtime lock with shard B, or adding shards measures nothing *)
  let domains =
    List.init count (fun i ->
        Domain.spawn (fun () ->
            let socket = Service.Transport_socket.create () in
            let transport = Service.Transport_socket.make socket in
            match
              Service.Shard.create ~journal:(journal_path i)
                ~name:(shard_addr i) Service.Runner.default_config
            with
            | Error e -> failwith ("bench dist: shard: " ^ e)
            | Ok shard ->
                Service.Shard.register shard transport;
                while not (Service.Shard.stopping shard) do
                  Thread.delay 0.02
                done;
                (* give the in-flight quit reply a beat to flush *)
                Thread.delay 0.1;
                Service.Transport_socket.stop socket;
                Service.Shard.close shard))
  in
  let socket = Service.Transport_socket.create () in
  let transport = Service.Transport_socket.make socket in
  List.iter (dist_await_endpoint socket) shard_addrs;
  let router_addr = Fmt.str "unix:%s/aadl_bench_%d_%d_router.sock" tmp pid count in
  let router =
    Service.Router.create ~name:router_addr ~retries:3 ~call_timeout:60.0
      ~shards:shard_addrs transport
  in
  Service.Router.register router transport;
  dist_await_endpoint socket router_addr;
  let reqs = Array.of_list requests in
  let n = Array.length reqs in
  let outcomes = Array.make n None in
  let next = Atomic.make 0 in
  let client () =
    (* own transport per client: the pooled per-destination connection
       serializes its calls, so a shared pool would serialize the whole
       client side *)
    let socket = Service.Transport_socket.create () in
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        let line =
          Service.Json.to_string (Service.Job.request_to_json reqs.(i))
        in
        (match
           Service.Transport_socket.call socket ~timeout:120.0 ~src:"bench"
             ~dst:router_addr line
         with
        | Error e ->
            failwith ("bench dist: " ^ Service.Transport.error_message e)
        | Ok reply -> (
            match Service.Json.parse reply with
            | Error e -> failwith ("bench dist: bad reply: " ^ e)
            | Ok j -> (
                match Service.Job.outcome_of_json j with
                | Error e -> failwith ("bench dist: bad outcome: " ^ e)
                | Ok o -> outcomes.(i) <- Some o)));
        loop ()
      end
    in
    Fun.protect ~finally:(fun () -> Service.Transport_socket.stop socket) loop
  in
  Gc.full_major ();
  let t0 = Timed.Clock.gettimeofday () in
  let clients = List.init dist_clients (fun _ -> Thread.create client ()) in
  List.iter Thread.join clients;
  let wall = Timed.Clock.gettimeofday () -. t0 in
  let stats =
    match
      Service.Transport_socket.call socket ~timeout:30.0 ~src:"bench"
        ~dst:router_addr {|{"op":"stats"}|}
    with
    | Ok s ->
        Option.value ~default:Service.Json.Null
          (Result.to_option (Service.Json.parse s))
    | Error _ -> Service.Json.Null
  in
  ignore
    (Service.Transport_socket.call socket ~timeout:30.0 ~src:"bench"
       ~dst:router_addr {|{"op":"quit"}|});
  List.iter Domain.join domains;
  Service.Transport_socket.stop socket;
  List.iteri
    (fun i _ -> try Sys.remove (journal_path i) with Sys_error _ -> ())
    shard_addrs;
  let outcomes =
    Array.to_list outcomes
    |> List.map (function
         | Some o -> o
         | None -> failwith "bench dist: request never answered")
  in
  (outcomes, wall, stats)

let dist_section ~json_path () =
  hr "DIST: duplicate-heavy load over 1/2/4 socket shards behind a router";
  let num_distinct, requests = service_manifest () in
  let n = List.length requests in
  let cores = Domain.recommended_domain_count () in
  (* reference verdicts from the plain in-process runner; order-free
     comparison because the client pool races *)
  let reference_outcomes, _, _ = service_run ~cache:true ~workers:1 requests in
  let verdicts (outcomes : Service.Job.outcome list) =
    List.sort compare
      (List.map
         (fun (o : Service.Job.outcome) ->
           (o.Service.Job.id, Service.Job.verdict_tag o.Service.Job.verdict))
         outcomes)
  in
  let reference = verdicts reference_outcomes in
  Fmt.pr "manifest: %d jobs over %d distinct models, %d client threads@." n
    num_distinct dist_clients;
  Fmt.pr "cores available: %d@." cores;
  Fmt.pr "%-8s %8s %12s %s@." "shards" "wall (s)" "models/sec" "verdicts";
  let rows =
    List.map
      (fun count ->
        let outcomes, wall, stats = dist_run ~shards:count requests in
        let agree = verdicts outcomes = reference in
        Fmt.pr "%-8d %8.3f %12.1f %s@." count wall
          (float_of_int n /. max wall 1e-9)
          (if agree then "agree" else "MISMATCH");
        (count, wall, stats, agree))
      [ 1; 2; 4 ]
  in
  let agree_all = List.for_all (fun (_, _, _, a) -> a) rows in
  let speedup =
    match rows with
    | (_, w1, _, _) :: _ -> (
        match List.rev rows with (_, w4, _, _) :: _ -> w1 /. max w4 1e-9 | [] -> 0.)
    | [] -> 0.
  in
  let gate_enforced = cores >= 4 in
  let gate_ok = (not gate_enforced) || speedup >= 1.2 in
  Fmt.pr "speedup shards4 vs shards1: %.2fx (%s)@." speedup
    (if not gate_enforced then "gate skipped: fewer than 4 cores"
     else if gate_ok then "OK"
     else "FAIL");
  let ok = agree_all && gate_ok in
  let open Service.Json in
  let dist =
    Obj
      [
        ( "note",
          String
            "duplicate-heavy manifest through a socket router onto 1/2/4 \
             shards, each shard a separate domain with its own verdict \
             cache and journal, driven over loopback unix sockets by a \
             small client thread pool" );
        ("jobs", Int n);
        ("distinct_models", Int num_distinct);
        ("clients", Int dist_clients);
        ("cores", Int cores);
        ( "runs",
          List
            (List.map
               (fun (count, wall, stats, agree) ->
                 Obj
                   [
                     ("shards", Int count);
                     ("wall_s", Float wall);
                     ( "models_per_sec",
                       Float (float_of_int n /. max wall 1e-9) );
                     ("merged_stats", stats);
                     ("verdicts_agree", Bool agree);
                   ])
               rows) );
        ("speedup_shards4_vs_shards1", Float speedup);
        ( "gate",
          String
            (if not gate_enforced then "skipped_insufficient_cores"
             else if gate_ok then "enforced_ok"
             else "enforced_fail") );
        ("ok", Bool ok);
      ]
  in
  (* merge into BENCH_service.json, preserving the other sections *)
  let base_fields =
    if Sys.file_exists json_path then
      match
        parse (In_channel.with_open_text json_path In_channel.input_all)
      with
      | Ok (Obj fields) -> fields
      | Ok _ | Error _ -> []
    else []
  in
  let fields =
    List.filter (fun (k, _) -> not (String.equal k "dist")) base_fields
    @ [ ("dist", dist) ]
  in
  let oc = open_out json_path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (to_string (Obj fields));
      output_char oc '\n');
  Fmt.pr "telemetry merged into %s@." json_path;
  if not ok then exit 1

(* {1 Sweep: incremental sensitivity with fragment reuse on vs off}

   The fragment IR's motivating workload: a cet sweep re-translates the
   model once per point with exactly one thread perturbed, so with
   reuse every other translation unit comes out of the fragment cache.
   Records sweep wall-clock and reuse counters for both modes in
   BENCH_sweep.json, asserting point-for-point verdict agreement. *)

(* best of three: single sweeps run in milliseconds, where scheduler
   noise would otherwise drown the translation-time difference *)
let sweep_run ~reuse ~thread ~cets root =
  let once () =
    Gc.full_major ();
    let t0 = Timed.Clock.gettimeofday () in
    let points =
      Analysis.Sensitivity.sweep
        ~options:{ Analysis.Sensitivity.default_options with reuse }
        ~thread ~cets root
    in
    (points, Timed.Clock.gettimeofday () -. t0)
  in
  let runs = List.init 3 (fun _ -> once ()) in
  let points, wall =
    List.fold_left
      (fun (bp, bw) (p, w) -> if w < bw then (p, w) else (bp, bw))
      (List.hd runs) (List.tl runs)
  in
  let reused, rebuilt =
    List.fold_left
      (fun (re, rb) (p : Analysis.Sensitivity.point) ->
        ( re + p.Analysis.Sensitivity.fragments_reused,
          rb + p.Analysis.Sensitivity.fragments_rebuilt ))
      (0, 0) points
  in
  (points, wall, reused, rebuilt)

let sweep_section ~json_path () =
  hr "SWEEP: incremental sensitivity, fragment reuse on vs off";
  let systems =
    [
      ("cruise_control", Gen.cruise_control (), [ "hci"; "ref_speed" ]);
      ("e6_five", e6_model 5, [ "t1_i" ]);
    ]
  in
  let cets = [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let runs =
    List.map
      (fun (name, text, thread) ->
        let root = Aadl.Instantiate.of_string text in
        let on = sweep_run ~reuse:true ~thread ~cets root in
        let off = sweep_run ~reuse:false ~thread ~cets root in
        let verdicts (ps, _, _, _) =
          List.map (fun (p : Analysis.Sensitivity.point) -> p.Analysis.Sensitivity.schedulable) ps
        in
        if verdicts on <> verdicts off then begin
          Fmt.pr "%s: REUSE CHANGES VERDICTS@." name;
          exit 1
        end;
        (name, thread, on, off))
      systems
  in
  Fmt.pr "%-16s %10s %10s %8s %s@." "system" "reuse (s)" "scratch (s)"
    "speedup" "fragments";
  List.iter
    (fun (name, _, (_, w_on, reused, rebuilt), (_, w_off, _, rebuilt_off)) ->
      Fmt.pr "%-16s %10.3f %10.3f %8.2fx %d reused, %d rebuilt (vs %d)@." name
        w_on w_off
        (w_off /. max w_on 1e-9)
        reused rebuilt rebuilt_off)
    runs;
  let json =
    Service.Json.Obj
      [
        ("benchmark", Service.Json.String "incremental sensitivity sweep");
        ( "note",
          Service.Json.String
            "one thread's cet swept over 8 points; with reuse only the \
             perturbed thread's fragment is regenerated per point" );
        ("points", Service.Json.Int (List.length cets));
        ( "runs",
          Service.Json.List
            (List.map
               (fun ( name,
                      thread,
                      (_, w_on, reused, rebuilt),
                      (_, w_off, reused_off, rebuilt_off) ) ->
                 Service.Json.Obj
                   [
                     ("system", Service.Json.String name);
                     ( "thread",
                       Service.Json.String (String.concat "." thread) );
                     ( "reuse_on",
                       Service.Json.Obj
                         [
                           ("wall_s", Service.Json.Float w_on);
                           ("fragments_reused", Service.Json.Int reused);
                           ("fragments_rebuilt", Service.Json.Int rebuilt);
                         ] );
                     ( "reuse_off",
                       Service.Json.Obj
                         [
                           ("wall_s", Service.Json.Float w_off);
                           ("fragments_reused", Service.Json.Int reused_off);
                           ("fragments_rebuilt", Service.Json.Int rebuilt_off);
                         ] );
                     ( "speedup",
                       Service.Json.Float (w_off /. max w_on 1e-9) );
                     ("verdicts_agree", Service.Json.Bool true);
                   ])
               runs) );
      ]
  in
  let oc = open_out json_path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Service.Json.to_string json);
      output_char oc '\n');
  Fmt.pr "telemetry written to %s@." json_path

(* {1 Obs: instrumentation overhead gate (the [make bench-obs] target)}

   The observability layer must be effectively free when nobody is
   looking: counters/histograms are always on (sharded atomics), spans
   cost one atomic load while tracing is inactive.  This gate explores
   the largest example model (avionics, exhaustive on-the-fly check)
   with metrics enabled and with the registry muted ([Obs.set_enabled
   false]) and fails if the instrumented run is more than 5% slower
   (plus a small absolute slack so millisecond-scale noise cannot fail
   CI).  Run shape is read back from the registry itself — the same
   counters `--stats` and the serve 'metrics' op render. *)

let obs_counter name =
  match Obs.find name with
  | Some { Obs.value = Obs.Counter_value n; _ } -> n
  | _ -> 0

let obs_gauge name =
  match Obs.find name with
  | Some { Obs.value = Obs.Gauge_value v; _ } -> v
  | _ -> 0.

let obs_section ~json_path () =
  hr "OBS: instrumentation overhead (muted vs metrics vs metrics+tracing)";
  let defs, system = translate_text (Gen.avionics ()) in
  let config =
    {
      Versa.Lts.default_config with
      max_states = Some 2_000_000;
      stop_at_deadlock = false;
    }
  in
  (* warm the hash-cons table and code paths outside the timings *)
  ignore (Versa.Lts.check ~config defs system);
  let rounds = 5 in
  let best_of f =
    let best = ref infinity in
    for _ = 1 to rounds do
      Gc.full_major ();
      let t0 = Timed.Clock.gettimeofday () in
      ignore (f ());
      let w = Timed.Clock.gettimeofday () -. t0 in
      if w < !best then best := w
    done;
    !best
  in
  let run () = Versa.Lts.check ~config defs system in
  let states_before = obs_counter "versa_explore_states_total" in
  Obs.set_enabled true;
  let wall_on = best_of run in
  Obs.set_enabled false;
  let wall_off = best_of run in
  Obs.set_enabled true;
  (* third row: metrics AND span tracing on — the tracer buffers events
     in memory, and buffering a full exploration must also stay inside
     the same envelope *)
  Obs.Trace.start ();
  let wall_trace = best_of run in
  Obs.Trace.stop ();
  let states_per_run =
    (obs_counter "versa_explore_states_total" - states_before) / (2 * rounds)
  in
  let overhead = (wall_on -. wall_off) /. max wall_off 1e-9 in
  let overhead_trace = (wall_trace -. wall_off) /. max wall_off 1e-9 in
  (* 5% relative + 50ms absolute: the relative bound is the contract,
     the absolute slack keeps sub-second runs from failing on scheduler
     noise *)
  let ok_metrics = wall_on <= (wall_off *. 1.05) +. 0.05 in
  let ok_trace = wall_trace <= (wall_off *. 1.05) +. 0.05 in
  let ok = ok_metrics && ok_trace in
  Fmt.pr "model: avionics, %d states per exhaustive check (from registry)@."
    states_per_run;
  Fmt.pr "metrics on:    best of %d  %.3fs@." rounds wall_on;
  Fmt.pr "metrics muted: best of %d  %.3fs@." rounds wall_off;
  Fmt.pr "tracing on:    best of %d  %.3fs@." rounds wall_trace;
  Fmt.pr "overhead: metrics %+.1f%%, tracing %+.1f%% (gate: <= 5%% + 50ms \
          slack) — %s@."
    (100. *. overhead)
    (100. *. overhead_trace)
    (if ok then "OK" else "FAIL");
  Fmt.pr "registry after the instrumented runs: %d explorations, last at \
          %.0f states/sec, peak frontier %.0f@."
    (obs_counter "versa_explore_runs_total")
    (obs_gauge "versa_explore_states_per_sec")
    (obs_gauge "versa_explore_peak_frontier");
  let json =
    Service.Json.Obj
      [
        ("benchmark", Service.Json.String "observability overhead gate");
        ( "note",
          Service.Json.String
            "exhaustive on-the-fly check of the avionics model: metrics \
             registry muted vs enabled vs enabled-with-span-tracing; \
             best-of-N wall times, each instrumented row gated against \
             the muted baseline" );
        ("model", Service.Json.String "avionics");
        ("rounds", Service.Json.Int rounds);
        ("states_per_run", Service.Json.Int states_per_run);
        ("wall_on_s", Service.Json.Float wall_on);
        ("wall_off_s", Service.Json.Float wall_off);
        ("wall_trace_s", Service.Json.Float wall_trace);
        ("overhead_fraction", Service.Json.Float overhead);
        ("tolerance_fraction", Service.Json.Float 0.05);
        ("absolute_slack_s", Service.Json.Float 0.05);
        ( "rows",
          Service.Json.List
            [
              Service.Json.Obj
                [
                  ("row", Service.Json.String "metrics");
                  ("wall_s", Service.Json.Float wall_on);
                  ("overhead_fraction", Service.Json.Float overhead);
                  ("ok", Service.Json.Bool ok_metrics);
                ];
              Service.Json.Obj
                [
                  ("row", Service.Json.String "metrics+tracing");
                  ("wall_s", Service.Json.Float wall_trace);
                  ("overhead_fraction", Service.Json.Float overhead_trace);
                  ("ok", Service.Json.Bool ok_trace);
                ];
            ] );
        ("ok", Service.Json.Bool ok);
      ]
  in
  let oc = open_out json_path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Service.Json.to_string json);
      output_char oc '\n');
  Fmt.pr "telemetry written to %s@." json_path;
  if not ok then exit 1

(* {1 Smoke: fast engine-agreement gate (the [make bench-smoke] target)}

   Runs in seconds, not minutes: both engines on a handful of small
   schedulable and unschedulable models, with early exit on and off,
   asserting identical verdicts, state/transition counts, deadlock ids
   and failing-scenario steps.  Exits non-zero on any mismatch. *)

let smoke () =
  hr "SMOKE: full vs on-the-fly engine agreement";
  let failures = ref 0 in
  let models =
    [
      ("cruise", Gen.cruise_control ());
      ("cruise_overloaded", Gen.cruise_control ~overload:true ());
      ("crossover", Gen.periodic_system Gen.crossover_set);
      ("e6_four_threads", e6_model 4);
      ("e6_four_unsched", e6_unsched 4);
    ]
  in
  List.iter
    (fun (name, text) ->
      let defs, system = translate_text text in
      List.iter
        (fun stop ->
          let run engine =
            Versa.Explorer.check_deadlock ~engine ~stop_at_deadlock:stop defs
              system
          in
          let rf = run Versa.Explorer.Full in
          let ro = run Versa.Explorer.On_the_fly in
          let verdicts_agree =
            match (rf.Versa.Explorer.verdict, ro.Versa.Explorer.verdict) with
            | Versa.Explorer.Deadlock_free, Versa.Explorer.Deadlock_free ->
                true
            | Versa.Explorer.Deadlock a, Versa.Explorer.Deadlock b ->
                a.state = b.state
                && Versa.Trace.steps a.trace = Versa.Trace.steps b.trace
            | Versa.Explorer.Inconclusive _, Versa.Explorer.Inconclusive _ ->
                true
            | _ -> false
          in
          let counts_agree =
            Versa.Explorer.num_states rf = Versa.Explorer.num_states ro
            && Versa.Explorer.num_transitions rf
               = Versa.Explorer.num_transitions ro
            && Versa.Explorer.deadlocks rf = Versa.Explorer.deadlocks ro
          in
          let ok = verdicts_agree && counts_agree in
          if not ok then incr failures;
          Fmt.pr "%-18s stop_at_deadlock=%-5b %s@." name stop
            (if ok then "OK" else "MISMATCH"))
        [ true; false ])
    models;
  (* parallelism must not change on-the-fly results either *)
  let defs, system = translate_text (e6_model 4) in
  let otf jobs =
    Versa.Explorer.check_deadlock ~engine:Versa.Explorer.On_the_fly
      ~stop_at_deadlock:false ~jobs defs system
  in
  let r1 = otf 1 and r4 = otf 4 in
  let jobs_ok =
    Versa.Explorer.num_states r1 = Versa.Explorer.num_states r4
    && Versa.Explorer.deadlocks r1 = Versa.Explorer.deadlocks r4
  in
  if not jobs_ok then incr failures;
  Fmt.pr "%-18s jobs1-vs-jobs4        %s@." "e6_four_threads"
    (if jobs_ok then "OK" else "MISMATCH");
  if !failures = 0 then Fmt.pr "smoke: all engines agree@."
  else begin
    Fmt.pr "smoke: %d mismatches@." !failures;
    exit 1
  end

(* {1 Reduction: the orbit (symmetry) reduction gate (the
   [make bench-reduction] target)}

   Exhaustively explores each model with the orbit reduction off and on
   and records raw vs reduced visited-state counts, the compression
   factor and verdict agreement, merged into the "reduction" section of
   BENCH_explore.json (read-modify-write: the other sections survive).
   Gates (exit 1 on violation):
   - reduced <= raw and identical verdicts on every row;
   - strict reduction (reduced < raw) on the generated replicated EDF
     families, where every thread is identical up to renaming;
   - under a small shared state budget the 12-thread family completes
     with the reduction on while exceeding the budget with it off.

   e6_seven_threads rides along with an exact ratio-1.0 expectation: its
   threads have pairwise distinct periods (4 + 2i), so no two are
   interchangeable and there is nothing to collapse — the row documents
   that the reduction is inert (identical space, not merely "no worse")
   on asymmetric models. *)

type red_sample = {
  red_states : int;
  red_wall : float;
  red_verdict : string;
  red_truncated : bool;
}

let reduction_run ?(max_states = 2_000_000) ~symmetry text =
  let root = Aadl.Instantiate.of_string text in
  let tr = Translate.Pipeline.translate root in
  let spec =
    if symmetry then tr.Translate.Pipeline.symmetry else Acsr.Symmetry.empty
  in
  Gc.full_major ();
  let r =
    Versa.Explorer.check_deadlock ~engine:Versa.Explorer.On_the_fly ~max_states
      ~stop_at_deadlock:false ~symmetry:spec tr.Translate.Pipeline.defs
      tr.Translate.Pipeline.system
  in
  {
    red_states = Versa.Explorer.num_states r;
    red_wall = r.Versa.Explorer.elapsed;
    red_verdict =
      (match r.Versa.Explorer.verdict with
      | Versa.Explorer.Deadlock_free -> "schedulable"
      | Versa.Explorer.Deadlock _ -> "not schedulable"
      | Versa.Explorer.Inconclusive _ -> "inconclusive");
    red_truncated = Versa.Explorer.truncated r;
  }

let reduction_section ~json_path () =
  hr "REDUCTION: orbit (symmetry) reduction, raw vs reduced state spaces";
  let rows =
    [
      (* distinct periods 4+2i: no interchangeable threads, reduction
         must be exactly inert *)
      ("e6_seven_threads", e6_model 7, `Inert);
      ( "family_8_u080",
        Gen.replicated_family ~threads:8 ~utilization:0.8 (),
        `Strict );
      ( "family_8_u130",
        Gen.replicated_family ~threads:8 ~utilization:1.3 (),
        `Strict );
    ]
  in
  let failures = ref 0 in
  Fmt.pr "%-18s %9s %9s %12s %-16s %s@." "model" "raw" "reduced" "compression"
    "verdict" "gate";
  let measured =
    List.map
      (fun (name, text, expect) ->
        let raw = reduction_run ~symmetry:false text in
        let red = reduction_run ~symmetry:true text in
        let compression =
          float_of_int raw.red_states /. float_of_int (max red.red_states 1)
        in
        let agree = String.equal raw.red_verdict red.red_verdict in
        let ok =
          agree
          && red.red_states <= raw.red_states
          &&
          match expect with
          | `Inert -> red.red_states = raw.red_states
          | `Strict -> red.red_states < raw.red_states
        in
        if not ok then incr failures;
        Fmt.pr "%-18s %9d %9d %11.1fx %-16s %s@." name raw.red_states
          red.red_states compression red.red_verdict
          (if ok then "OK" else "FAIL");
        (name, raw, red, compression, agree, ok))
      rows
  in
  (* the budget demonstration: a shared state budget the reduced space
     fits in comfortably and the raw space cannot *)
  let demo_name = "family_12_u096" in
  let demo_budget = 2_000 in
  let demo_text = Gen.replicated_family ~threads:12 ~utilization:0.96 () in
  let demo_raw = reduction_run ~max_states:demo_budget ~symmetry:false demo_text in
  let demo_red = reduction_run ~max_states:demo_budget ~symmetry:true demo_text in
  let demo_ok =
    (not demo_red.red_truncated)
    && demo_raw.red_truncated
    && String.equal demo_red.red_verdict "schedulable"
  in
  if not demo_ok then incr failures;
  Fmt.pr
    "%s under a %d-state budget: reduced %d states (%s) vs raw %s — %s@."
    demo_name demo_budget demo_red.red_states demo_red.red_verdict
    (if demo_raw.red_truncated then
       Fmt.str "truncated at %d states" demo_raw.red_states
     else Fmt.str "%d states (completed)" demo_raw.red_states)
    (if demo_ok then "OK" else "FAIL");
  let ok = !failures = 0 in
  (* merge into BENCH_explore.json, preserving the other sections *)
  let open Service.Json in
  let reduction =
    Obj
      [
        ( "note",
          String
            "exhaustive on-the-fly exploration with orbit reduction off \
             (raw) vs on (reduced); families are replicated unit-cet EDF \
             threads from Gen.replicated_family; e6_seven_threads has \
             pairwise distinct periods, so the reduction is inert there \
             by design" );
        ( "models",
          List
            (List.map
               (fun (name, raw, red, compression, agree, row_ok) ->
                 Obj
                   [
                     ("model", String name);
                     ("raw_states", Int raw.red_states);
                     ("reduced_states", Int red.red_states);
                     ("compression", Float compression);
                     ("raw_wall_s", Float raw.red_wall);
                     ("reduced_wall_s", Float red.red_wall);
                     ("raw_verdict", String raw.red_verdict);
                     ("reduced_verdict", String red.red_verdict);
                     ("verdicts_agree", Bool agree);
                     ("ok", Bool row_ok);
                   ])
               measured) );
        ( "budget_demo",
          Obj
            [
              ("model", String demo_name);
              ("max_states", Int demo_budget);
              ("reduced_states", Int demo_red.red_states);
              ("reduced_completed", Bool (not demo_red.red_truncated));
              ("reduced_verdict", String demo_red.red_verdict);
              ("raw_states", Int demo_raw.red_states);
              ("raw_truncated", Bool demo_raw.red_truncated);
              ("ok", Bool demo_ok);
            ] );
        ("ok", Bool ok);
      ]
  in
  let base_fields =
    if Sys.file_exists json_path then
      match
        parse (In_channel.with_open_text json_path In_channel.input_all)
      with
      | Ok (Obj fields) -> fields
      | Ok _ | Error _ -> []
    else []
  in
  let fields =
    List.filter (fun (k, _) -> not (String.equal k "reduction")) base_fields
    @ [ ("reduction", reduction) ]
  in
  let oc = open_out json_path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (to_string (Obj fields));
      output_char oc '\n');
  Fmt.pr "telemetry merged into %s@." json_path;
  if not ok then exit 1

(* {1 Gen: print a parametric replicated family to stdout}

   [gen --threads N --utilization U] emits the textual AADL model of
   {!Gen.replicated_family}: N indistinguishable unit-cet EDF threads at
   total utilization ~U.  The fixture behind the orbit-reduction bench,
   also handy for ad-hoc CLI experiments:
   [bench/main.exe gen --threads 8 --utilization 0.8 > family.aadl]. *)

let gen_family rest =
  let threads = ref 8 and utilization = ref 0.8 in
  let usage () =
    Fmt.epr "usage: gen [--threads N] [--utilization U]@.";
    exit 2
  in
  let rec parse = function
    | [] -> ()
    | "--threads" :: v :: tl -> (
        match int_of_string_opt v with
        | Some n when n >= 1 ->
            threads := n;
            parse tl
        | _ -> usage ())
    | "--utilization" :: v :: tl -> (
        match float_of_string_opt v with
        | Some u when u > 0.0 ->
            utilization := u;
            parse tl
        | _ -> usage ())
    | _ -> usage ()
  in
  parse rest;
  print_string
    (Gen.replicated_family ~threads:!threads ~utilization:!utilization ())

let () =
  match Array.to_list Sys.argv with
  | _ :: "smoke" :: _ -> smoke ()
  | _ :: "gen" :: rest -> gen_family rest
  | _ :: "reduction" :: rest ->
      let json_path =
        match rest with p :: _ -> p | [] -> "BENCH_explore.json"
      in
      reduction_section ~json_path ()
  | _ :: "explore" :: rest ->
      let json_path =
        match rest with p :: _ -> p | [] -> "BENCH_explore.json"
      in
      explore_section ~json_path ()
  | _ :: "scaling" :: rest ->
      let json_path =
        match rest with p :: _ -> p | [] -> "BENCH_scaling.json"
      in
      scaling_section ~json_path ()
  | _ :: "service" :: rest ->
      let json_path =
        match rest with p :: _ -> p | [] -> "BENCH_service.json"
      in
      service_section ~json_path ()
  | _ :: "dist" :: rest ->
      let json_path =
        match rest with p :: _ -> p | [] -> "BENCH_service.json"
      in
      dist_section ~json_path ()
  | _ :: "sweep" :: rest ->
      let json_path =
        match rest with p :: _ -> p | [] -> "BENCH_sweep.json"
      in
      sweep_section ~json_path ()
  | _ :: "obs" :: rest ->
      let json_path = match rest with p :: _ -> p | [] -> "BENCH_obs.json" in
      obs_section ~json_path ()
  | _ ->
  exp_f1 ();
  exp_f2_f3 ();
  exp_f5 ();
  exp_e1 ();
  exp_e2 ();
  exp_e3 ();
  exp_e4 ();
  exp_e5 ();
  exp_e6 ();
  exp_e7 ();
  exp_e8 ();
  exp_e9 ();
  exp_e10 ();
  bechamel_section ();
  Fmt.pr "@.done.@."
