(* The pre-hash-consing explorer, kept verbatim from the original
   [Versa.Lts.build] as the benchmark baseline: a structural [Hashtbl]
   over [Proc.t] terms fed by the reference [Semantics.prioritized]
   relation.  Every cost the current engine removes — full-depth
   [Hashtbl.hash] over deep [Par] trees, structural equality on bucket
   collisions, re-instantiation of process calls — is still paid here,
   so (baseline states/sec) vs ([Versa.Lts.build] states/sec) measures
   exactly the tentpole optimization. *)

open Acsr

type result = {
  states : int;
  transitions : int;
  deadlocks : int;
  truncated : bool;
}

module Table = struct
  type entry = {
    mutable row_len : int;
    mutable was_expanded : bool;
    tm : Proc.t;
  }

  type nonrec t = {
    ids : (Proc.t, int) Hashtbl.t;
    mutable entries : entry array;
    mutable len : int;
  }

  let dummy_entry = { row_len = 0; was_expanded = false; tm = Proc.Nil }

  let create () =
    { ids = Hashtbl.create 4096; entries = Array.make 1024 dummy_entry; len = 0 }

  let get t id = t.entries.(id)

  let intern t term =
    match Hashtbl.find_opt t.ids term with
    | Some id -> (id, false)
    | None ->
        if t.len = Array.length t.entries then begin
          let bigger = Array.make (2 * t.len) dummy_entry in
          Array.blit t.entries 0 bigger 0 t.len;
          t.entries <- bigger
        end;
        let id = t.len in
        t.entries.(id) <- { row_len = 0; was_expanded = false; tm = term };
        Hashtbl.add t.ids term id;
        t.len <- t.len + 1;
        (id, true)
end

let explore ?(max_states = 2_000_000) ?(stop_at_deadlock = false) defs root :
    result =
  let next = Semantics.prioritized defs in
  let table = Table.create () in
  let queue = Queue.create () in
  let truncated = ref false in
  let deadlock_found = ref false in
  let root_id, _ = Table.intern table root in
  Queue.add root_id queue;
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    if (stop_at_deadlock && !deadlock_found) || table.Table.len >= max_states
    then truncated := true
    else begin
      let entry = Table.get table id in
      let succs = next entry.Table.tm in
      if succs = [] then deadlock_found := true;
      List.iter
        (fun (_, term') ->
          let id', fresh = Table.intern table term' in
          if fresh then Queue.add id' queue)
        succs;
      entry.Table.row_len <- List.length succs;
      entry.Table.was_expanded <- true
    end
  done;
  let states = table.Table.len in
  let transitions = ref 0 and deadlocks = ref 0 in
  for id = 0 to states - 1 do
    let e = Table.get table id in
    transitions := !transitions + e.Table.row_len;
    if e.Table.was_expanded && e.Table.row_len = 0 then incr deadlocks
  done;
  {
    states;
    transitions = !transitions;
    deadlocks = !deadlocks;
    truncated = !truncated;
  }
