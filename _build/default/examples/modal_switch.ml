(* Multi-modal systems (extension beyond the paper's translation scope;
   the paper describes AADL modes in Section 2 but leaves them out of
   Algorithm 1).

   A controller thread raises an alarm that switches the system from a
   nominal to a degraded mode; one worker runs per mode.  Running both
   workers together would overload the processor, so the schedulable
   verdict of the nominal variant demonstrates that mode exclusion is
   honored by the generated mode-manager process.  The overloaded variant
   shows a failing scenario that walks through the mode switch:
   deactivation of the nominal worker, activation of the degraded one,
   and the deadline miss that follows.

   Run with: dune exec examples/modal_switch.exe *)

let () =
  let root = Aadl.Instantiate.of_string (Gen.modal_system ()) in
  let wl = Translate.Workload.extract ~quantum:(Aadl.Time.of_ms 1) root in
  Fmt.pr "threads and their mode activity:@.";
  let modal =
    Translate.Modal.analyze ~root ~quantum:(Aadl.Time.of_ms 1)
      (Option.get (Translate.Modal.find root))
  in
  List.iter
    (fun (task : Translate.Workload.task) ->
      let modes =
        List.assoc task.Translate.Workload.path
          modal.Translate.Modal.thread_activity
      in
      Fmt.pr "  %a: %s@." Aadl.Instance.pp_path task.Translate.Workload.path
        (match modes with
        | [] -> "all modes"
        | ms -> String.concat ", " ms))
    wl.Translate.Workload.tasks;
  Fmt.pr "combined utilization if all were active: %.2f (> 1)@.@."
    (Translate.Workload.utilization wl.Translate.Workload.tasks);
  let feasible = Analysis.Schedulability.analyze root in
  Fmt.pr "== nominal variant ==@.%a@.@." Analysis.Schedulability.pp feasible;
  assert (Analysis.Schedulability.is_schedulable feasible);
  let overloaded =
    Analysis.Schedulability.analyze
      (Aadl.Instantiate.of_string (Gen.modal_system ~degraded_cet_ms:9 ()))
  in
  Fmt.pr "== degraded-mode overload ==@.%a@." Analysis.Schedulability.pp
    overloaded;
  assert (not (Analysis.Schedulability.is_schedulable overloaded))
