(* Quickstart: write a small AADL model as text, analyze its
   schedulability, and inspect the failing scenario if there is one.

   Run with: dune exec examples/quickstart.exe *)

let model =
  {|
processor cpu
properties
  Scheduling_Protocol => RATE_MONOTONIC_PROTOCOL;
end cpu;

thread control
properties
  Dispatch_Protocol => Periodic;
  Period => 10 ms;
  Compute_Execution_Time => 3 ms;
  Compute_Deadline => 10 ms;
end control;

thread telemetry
properties
  Dispatch_Protocol => Periodic;
  Period => 25 ms;
  Compute_Execution_Time => 8 ms;
  Compute_Deadline => 25 ms;
end telemetry;

system avionics
end avionics;

system implementation avionics.impl
subcomponents
  cpu1: processor cpu;
  control: thread control;
  telemetry: thread telemetry;
properties
  Actual_Processor_Binding => reference (cpu1) applies to control;
  Actual_Processor_Binding => reference (cpu1) applies to telemetry;
end avionics.impl;
|}

let () =
  (* parse + instantiate the root system *)
  let root = Aadl.Instantiate.of_string model in
  (* legality diagnostics (the paper's translation preconditions) *)
  let diags = Aadl.Check.run root in
  Fmt.pr "check: %a@.@." Aadl.Check.pp_report diags;
  (* translate to ACSR and explore the prioritized state space *)
  let result = Analysis.Schedulability.analyze root in
  Fmt.pr "%a@.@." Analysis.Schedulability.pp result;
  (* the same verdict from the classical side, for comparison *)
  let wl = result.Analysis.Schedulability.translation.Translate.Pipeline.workload in
  List.iter
    (fun (_, tasks) ->
      Fmt.pr "RTA baseline: %a@." Analysis.Rta.pp
        (Analysis.Rta.analyze ~protocol:Aadl.Props.Rate_monotonic tasks))
    wl.Translate.Workload.by_processor
