(* The cruise-control system of the paper's Figure 1: two processors
   connected by a bus, an HCI subsystem (ButtonPanel, DriverModeLogic,
   InstrumentPanel, RefSpeed) and a CruiseControlLaws subsystem (Cruise1,
   Cruise2).  All connections are data connections, two of which cross the
   bus — so the translation produces six thread processes, six dispatchers
   and no queues, exactly as stated in Section 4.1 of the paper.

   The example analyzes the nominal model and an overloaded variant, and
   prints the failing scenario of the latter raised to AADL terms.

   Run with: dune exec examples/cruise_control.exe *)

let analyze_variant name text =
  Fmt.pr "=== %s ===@." name;
  let root = Aadl.Instantiate.of_string text in
  let result = Analysis.Schedulability.analyze root in
  let tr = result.Analysis.Schedulability.translation in
  Fmt.pr "translation: %a@." Translate.Pipeline.pp_summary tr;
  let wl = tr.Translate.Pipeline.workload in
  List.iter
    (fun ((proc : Aadl.Instance.t), tasks) ->
      Fmt.pr "processor %a: %d threads, U = %.2f@." Aadl.Instance.pp_path
        proc.Aadl.Instance.path (List.length tasks)
        (Translate.Workload.utilization tasks))
    wl.Translate.Workload.by_processor;
  Fmt.pr "%a@.@." Analysis.Schedulability.pp_verdict
    result.Analysis.Schedulability.verdict;
  result

let () =
  let ok = analyze_variant "cruise control (nominal)" (Gen.cruise_control ()) in
  assert (Analysis.Schedulability.is_schedulable ok);
  let bad =
    analyze_variant "cruise control (Cruise1 overloaded)"
      (Gen.cruise_control ~overload:true ())
  in
  assert (not (Analysis.Schedulability.is_schedulable bad));
  (* the semantic connections resolved through the two-level hierarchy *)
  let root = Aadl.Instantiate.of_string (Gen.cruise_control ()) in
  let sconns = Aadl.Semconn.resolve root in
  Fmt.pr "=== semantic connections ===@.";
  List.iter
    (fun sc ->
      let bus = Aadl.Binding.bus_of ~root sc in
      Fmt.pr "%a%a@." Aadl.Semconn.pp sc
        Fmt.(
          option (fun ppf (b : Aadl.Instance.t) ->
              Fmt.pf ppf " [bus %a]" Aadl.Instance.pp_path b.Aadl.Instance.path))
        bus)
    sconns
