(* A larger end-to-end example: an avionics-flavoured system with three
   processors (rate-monotonic I/O and mission partitions, an EDF flight
   partition) and a shared bus carrying the sensing-to-actuation and
   guidance-to-mission data flows.

   The example runs the full tool-chain: legality checks, schedulability
   by state exploration, end-to-end latency of the sensor->actuator flow,
   and sensitivity (breakdown execution times) of the flight-control
   threads.

   Run with: dune exec examples/avionics.exe *)

let () =
  let root = Aadl.Instantiate.of_string (Gen.avionics ()) in
  (* 1. legality *)
  let diags = Aadl.Check.run root in
  assert (Aadl.Check.is_ok diags);
  (* 2. schedulability *)
  let r = Analysis.Schedulability.analyze root in
  Fmt.pr "%a@.@." Analysis.Schedulability.pp r;
  assert (Analysis.Schedulability.is_schedulable r);
  let wl = r.Analysis.Schedulability.translation.Translate.Pipeline.workload in
  List.iter
    (fun ((proc : Aadl.Instance.t), tasks) ->
      Fmt.pr "%a: U = %.2f (%d threads)@." Aadl.Instance.pp_path
        proc.Aadl.Instance.path
        (Translate.Workload.utilization tasks)
        (List.length tasks))
    wl.Translate.Workload.by_processor;
  (* 3. end-to-end latency: dispatch(sensor_poll) to complete(actuator_drive) *)
  Fmt.pr "@.sensing-to-actuation latency:@.";
  List.iter
    (fun bound_ms ->
      let l =
        Analysis.Latency.check
          ~from_thread:[ "sensor_poll" ]
          ~to_thread:[ "actuator_drive" ]
          ~bound:(Aadl.Time.of_ms bound_ms) root
      in
      Fmt.pr "  %2d ms: %s@." bound_ms
        (match l.Analysis.Latency.verdict with
        | Analysis.Latency.Latency_met -> "met"
        | Analysis.Latency.Latency_violated _ -> "violated"
        | Analysis.Latency.Latency_inconclusive w -> "inconclusive: " ^ w))
    [ 16; 8; 6; 4 ];
  (* 4. sensitivity of the flight partition *)
  Fmt.pr "@.breakdown execution times (flight partition):@.";
  List.iter
    (fun thread ->
      Fmt.pr "  %a@." Analysis.Sensitivity.pp
        (Analysis.Sensitivity.breakdown ~thread root))
    [ [ "rate_damping" ]; [ "attitude_control" ]; [ "guidance" ] ]
