examples/avionics.mli:
