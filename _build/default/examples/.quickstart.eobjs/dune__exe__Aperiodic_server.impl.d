examples/aperiodic_server.ml: Aadl Analysis Buffer Fmt Gen List String Versa
