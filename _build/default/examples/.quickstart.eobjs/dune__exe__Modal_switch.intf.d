examples/modal_switch.mli:
