examples/flow_latency.ml: Aadl Analysis Fmt Gen List
