examples/aperiodic_server.mli:
