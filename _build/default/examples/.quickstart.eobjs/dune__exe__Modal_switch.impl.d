examples/modal_switch.ml: Aadl Analysis Fmt Gen List Option String Translate
