examples/acsr_composition.ml: Acsr Action Array Fmt Gen List Proc Semantics Step Versa
