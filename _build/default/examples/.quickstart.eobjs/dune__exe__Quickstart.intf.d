examples/quickstart.mli:
