examples/flow_latency.mli:
