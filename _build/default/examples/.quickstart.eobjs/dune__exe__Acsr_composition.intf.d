examples/acsr_composition.mli:
