examples/quickstart.ml: Aadl Analysis Fmt List Translate
