examples/cruise_control.ml: Aadl Analysis Fmt Gen List Translate
