examples/avionics.ml: Aadl Analysis Fmt Gen List Translate
