(* The ACSR examples of the paper's Figures 2 and 3, built directly with
   the process-algebra kernel.

   Figure 2: the process Simple performs a computation step on the cpu,
   a step needing both cpu and bus, announces completion with done!, and
   restarts; the (b) variant adds an idling step so Simple can wait for
   the bus instead of deadlocking.

   Figure 3: Simple composed with a driver that claims the bus at a higher
   priority (preempting Simple's second step for one quantum), then either
   forces an interrupt or keeps preempting until Simple takes its
   exception exit.  We explore each composition, print reachable-state
   counts, and show the diagnostic traces VERSA-style.

   Run with: dune exec examples/acsr_composition.exe *)

open Acsr
module F = Gen.Paper_figs

let cpu = F.cpu

let explore name defs root =
  let lts = Versa.Lts.build defs root in
  Fmt.pr "%-28s %a@." name Versa.Lts.pp_summary lts;
  lts

let () =
  Fmt.pr "== Figure 2: computation and communication ==@.";
  let l2a = explore "Simple (fig 2a), alone" F.fig2a_defs F.fig2a_initial in
  ignore (explore "Simple (fig 2b), with idling" F.fig2b_defs F.fig2b_initial);
  (* step through one iteration of fig 2a *)
  Fmt.pr "@.one iteration of Simple:@.";
  let rec show p n =
    if n > 0 then
      match Semantics.steps F.fig2a_defs p with
      | (step, p') :: _ ->
          Fmt.pr "  %a@." Step.pp step;
          show p' (n - 1)
      | [] -> ()
  in
  show (Proc.call "Simple" []) 3;
  Fmt.pr "@.== Figure 3: parallel composition with the driver ==@.";
  let lts = explore "Simple || SimpleDriver" F.fig3_defs F.fig3_system in
  Fmt.pr "deadlocks: %d@." (List.length (Versa.Lts.deadlocks lts));
  Fmt.pr "interrupt path reachable: %b@."
    (F.label_reachable lts F.interrupt_handled);
  Fmt.pr "exception path reachable: %b@."
    (F.label_reachable lts F.exception_handled);
  (* the documented preemption: in the second quantum the driver holds the
     bus, so Simple's cpu+bus step is excluded for one time step *)
  let q0 = Versa.Lts.successors lts (Versa.Lts.initial lts) in
  (match q0 with
  | [| (Step.Action a, s1) |] ->
      Fmt.pr "quantum 0 action: %a@." Action.pp_ground a;
      let timed_at_1 =
        Array.to_list (Versa.Lts.successors lts s1)
        |> List.filter_map (fun (s, _) ->
               match s with Step.Action a -> Some a | _ -> None)
      in
      List.iter
        (fun a ->
          Fmt.pr "quantum 1 action: %a (Simple preempted: %b)@."
            Action.pp_ground a
            (Action.Ground.priority_of a cpu = 0))
        timed_at_1
  | _ -> Fmt.pr "unexpected initial fanout@.");
  (* bisimulation reduction of the fig 2a process *)
  let bq = Versa.Bisim.quotient l2a in
  Fmt.pr "@.fig 2a quotient: %a@." Versa.Bisim.pp_quotient bq
