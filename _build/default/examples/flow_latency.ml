(* End-to-end latency analysis with observer processes (paper, Section 5):
   an observer is triggered by the dispatch of the flow's first thread and
   deadlocks if the completion of the last thread is not observed within
   the bound.

   We check the RefSpeed -> Cruise1 -> Cruise2 flow of the cruise-control
   system against a sweep of bounds, locating the tightest bound that
   holds on every path.

   Run with: dune exec examples/flow_latency.exe *)

let () =
  let root = Aadl.Instantiate.of_string (Gen.cruise_control ()) in
  let check bound_ms =
    let r =
      Analysis.Latency.check
        ~from_thread:[ "hci"; "ref_speed" ]
        ~to_thread:[ "ccl"; "cruise2" ]
        ~bound:(Aadl.Time.of_ms bound_ms) root
    in
    (bound_ms, r)
  in
  Fmt.pr "flow: dispatch(hci.ref_speed) ~~> complete(ccl.cruise2)@.@.";
  let results = List.map check [ 100; 80; 60; 50; 40; 30; 20; 10 ] in
  List.iter
    (fun (bound_ms, (r : Analysis.Latency.t)) ->
      let verdict =
        match r.Analysis.Latency.verdict with
        | Analysis.Latency.Latency_met -> "met"
        | Analysis.Latency.Latency_violated _ -> "VIOLATED"
        | Analysis.Latency.Latency_inconclusive why -> "inconclusive: " ^ why
      in
      Fmt.pr "bound %3d ms: %s@." bound_ms verdict)
    results;
  (* show the counterexample for the tightest violated bound *)
  match
    List.find_opt
      (fun (_, (r : Analysis.Latency.t)) ->
        match r.Analysis.Latency.verdict with
        | Analysis.Latency.Latency_violated _ -> true
        | _ -> false)
      results
  with
  | Some (bound_ms, r) -> (
      match r.Analysis.Latency.verdict with
      | Analysis.Latency.Latency_violated { scenario; _ } ->
          Fmt.pr "@.witness for the %d ms violation:@.%a@." bound_ms
            Analysis.Raise_trace.pp scenario
      | _ -> ())
  | None -> Fmt.pr "@.every checked bound holds@."
