(** Lexer for the textual AADL subset. *)

type token =
  | IDENT of string
  | INT of int
  | REAL of float
  | STRING of string
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | COLON
  | SEMI
  | COMMA
  | DOT
  | DOTDOT
  | ARROW
  | BIARROW
  | DARROW
  | PLUSDARROW
  | STAR
  | LBRACKET
  | RBRACKET
  | TRANSL
  | EOF

exception Error of string * Ast.srcloc

val pp_token : token Fmt.t

val tokenize : string -> (token * Ast.srcloc) list
(** Tokenize a whole compilation unit; the result always ends with [EOF].
    @raise Error on malformed input. *)
