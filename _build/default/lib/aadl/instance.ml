(* The instance model: the tree obtained by instantiating a root system
   implementation.  The paper's translation applies to "completely
   instantiated and bound" models (Section 4.1); this is that object. *)

type t = {
  name : string;  (** subcomponent name; root carries the impl name *)
  path : string list;  (** path from the root, [] for the root itself *)
  category : Ast.category;
  classifier : string option;
  features : Ast.feature list;
  props : Ast.prop list;
      (** merged associations, ordered weakest-to-strongest: component
          type, implementation, subcomponent, contained (applies to) *)
  connections : Ast.connection list;
      (** connections declared by this instance's implementation *)
  modes : Ast.mode list;
  transitions : Ast.mode_transition list;
  in_modes : string list;
      (** modes of the parent in which this instance is active;
          empty = all *)
  children : t list;
}

let initial_mode inst =
  match List.find_opt (fun m -> m.Ast.mode_initial) inst.modes with
  | Some m -> Some m.Ast.mode_name
  | None -> (
      match inst.modes with m :: _ -> Some m.Ast.mode_name | [] -> None)

let is_modal inst = List.length inst.modes > 1

let pp_path ppf path =
  match path with
  | [] -> Fmt.string ppf "<root>"
  | _ -> Fmt.(list ~sep:(any ".") string) ppf path

let path_to_string path = Fmt.str "%a" pp_path path

let rec find inst = function
  | [] -> Some inst
  | name :: rest -> (
      match
        List.find_opt
          (fun c -> String.lowercase_ascii c.name = String.lowercase_ascii name)
          inst.children
      with
      | Some child -> find child rest
      | None -> None)

let find_exn inst path =
  match find inst path with
  | Some i -> i
  | None ->
      invalid_arg (Fmt.str "Instance.find_exn: no instance %a" pp_path path)

(* Pre-order fold over the instance tree. *)
let rec fold f acc inst = List.fold_left (fold f) (f acc inst) inst.children

let iter f inst = fold (fun () i -> f i) () inst

let all inst = List.rev (fold (fun acc i -> i :: acc) [] inst)

let by_category cat inst =
  List.filter (fun i -> i.category = cat) (all inst)

let threads inst = by_category Ast.Thread inst
let processors inst = by_category Ast.Processor inst
let buses inst = by_category Ast.Bus inst
let devices inst = by_category Ast.Device inst
let data_components inst = by_category Ast.Data inst

let feature_opt inst name =
  List.find_opt
    (fun f -> String.lowercase_ascii f.Ast.fname = String.lowercase_ascii name)
    inst.features

let is_thread_or_device inst =
  match inst.category with
  | Ast.Thread | Ast.Device -> true
  | Ast.System | Ast.Process | Ast.Thread_group | Ast.Subprogram | Ast.Data
  | Ast.Processor | Ast.Memory | Ast.Bus ->
      false

(* Resolve a reference path: first as absolute from [root], then relative
   to [from] and each of its ancestors, mirroring how AADL name resolution
   searches enclosing namespaces. *)
let resolve_reference ~root ~from path =
  let drop_last p = List.filteri (fun i _ -> i < List.length p - 1) p in
  (* prefixes of [from], longest (innermost namespace) first, ending with
     [] which resolves the path absolutely from the root *)
  let rec all_prefixes p =
    match p with [] -> [ [] ] | p -> p :: all_prefixes (drop_last p)
  in
  let rec first = function
    | [] -> None
    | prefix :: rest -> (
        match find root (prefix @ path) with
        | Some i -> Some i
        | None -> first rest)
  in
  first (all_prefixes from)

let rec pp ppf inst =
  Fmt.pf ppf "@[<v 2>%s: %a%a%s@,%a@]" inst.name Ast.pp_category inst.category
    Fmt.(option (any " " ++ string))
    inst.classifier
    (if inst.children = [] then "" else " {")
    Fmt.(list ~sep:cut pp)
    inst.children;
  if inst.children <> [] then Fmt.pf ppf "}"
