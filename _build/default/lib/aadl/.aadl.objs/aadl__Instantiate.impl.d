lib/aadl/instantiate.ml: Ast Decls Fmt Hashtbl Instance List Option Parser String
