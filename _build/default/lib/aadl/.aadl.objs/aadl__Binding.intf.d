lib/aadl/binding.mli: Instance Semconn
