lib/aadl/semconn.mli: Ast Fmt Instance
