lib/aadl/instance.mli: Ast Fmt
