lib/aadl/props.ml: Ast Fmt List Option String Time
