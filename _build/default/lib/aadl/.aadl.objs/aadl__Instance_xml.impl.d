lib/aadl/instance_xml.ml: Ast Fmt Fun Instance List Option String Time Xml
