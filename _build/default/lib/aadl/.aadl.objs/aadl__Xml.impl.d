lib/aadl/xml.ml: Buffer Fmt List String
