lib/aadl/instance_xml.mli: Instance Xml
