lib/aadl/decls.mli: Ast
