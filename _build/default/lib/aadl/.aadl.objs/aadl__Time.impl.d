lib/aadl/time.ml: Fmt Int String
