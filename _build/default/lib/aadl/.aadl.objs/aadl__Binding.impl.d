lib/aadl/binding.ml: Ast Fmt Instance List Props Semconn
