lib/aadl/instance.ml: Ast Fmt List String
