lib/aadl/decls.ml: Ast Hashtbl List String
