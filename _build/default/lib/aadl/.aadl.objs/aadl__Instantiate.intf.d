lib/aadl/instantiate.mli: Ast Instance
