lib/aadl/props.mli: Ast Fmt Time
