lib/aadl/time.mli: Fmt
