lib/aadl/ast.ml: Fmt Time
