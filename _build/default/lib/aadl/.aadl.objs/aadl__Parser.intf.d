lib/aadl/parser.mli: Ast
