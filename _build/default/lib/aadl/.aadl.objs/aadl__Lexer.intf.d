lib/aadl/lexer.mli: Ast Fmt
