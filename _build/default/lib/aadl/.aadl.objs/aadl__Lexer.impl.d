lib/aadl/lexer.ml: Ast Buffer Fmt List String
