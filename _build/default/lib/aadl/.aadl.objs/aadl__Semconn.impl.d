lib/aadl/semconn.ml: Ast Fmt Hashtbl Instance List String
