lib/aadl/check.ml: Ast Binding Fmt Hashtbl Instance List Props Semconn String Time
