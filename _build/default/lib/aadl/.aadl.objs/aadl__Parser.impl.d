lib/aadl/parser.ml: Array Ast Fmt Fun Lexer List String Time
