lib/aadl/xml.mli: Fmt
