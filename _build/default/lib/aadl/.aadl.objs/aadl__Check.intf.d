lib/aadl/check.mli: Fmt Instance
